// replicatedkv runs a three-node replicated key-value store in real time
// on the from-scratch Raft substrate — the same consensus core that
// backs the two-layer aggregation system. Commands are proposed to the
// live leader, replicate with wall-clock timers, and survive a leader
// crash.
//
//	go run ./examples/replicatedkv
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/kvstore"
	"repro/internal/live"
	"repro/internal/raft"
)

func main() {
	router := live.NewRouter()
	ids := []uint64{1, 2, 3}
	stores := map[uint64]*kvstore.Store{}
	var drivers []*live.Driver
	for _, id := range ids {
		st := kvstore.New()
		stores[id] = st
		node, err := raft.NewNode(raft.Config{
			ID: id, Peers: ids,
			ElectionTickMin: 30, ElectionTickMax: 60, HeartbeatTick: 8, // ×2ms ticks
			Rng:               rand.New(rand.NewSource(int64(id))),
			SnapshotThreshold: 64,
			SnapshotState:     st.Snapshot,
		})
		if err != nil {
			log.Fatal(err)
		}
		d, err := live.NewDriver(node, router, 2*time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		d.OnCommit = st.Apply
		drivers = append(drivers, d)
	}
	for _, d := range drivers {
		d.Start()
	}
	defer func() {
		for _, d := range drivers {
			d.Stop()
		}
	}()

	lead, err := live.WaitLeader(drivers, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node %d elected leader\n", lead.ID())

	for i, kv := range [][2]string{{"paper", "two-layer SAC"}, {"backend", "two-layer Raft"}, {"peers", "30"}} {
		if err := lead.Propose(kvstore.EncodeSet(kv[0], kv[1])); err != nil {
			log.Fatal(err)
		}
		_ = i
	}
	waitReplicated(stores, "peers", 10*time.Second)
	fmt.Println("all replicas converged:")
	for _, id := range ids {
		v, _ := stores[id].Get("paper")
		fmt.Printf("  node %d: paper=%q (%d keys)\n", id, v, stores[id].Len())
	}

	fmt.Printf("\nkilling leader %d...\n", lead.ID())
	lead.Stop()
	var rest []*live.Driver
	for _, d := range drivers {
		if d != lead {
			rest = append(rest, d)
		}
	}
	start := time.Now()
	newLead, err := live.WaitLeader(rest, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node %d took over after %v\n", newLead.ID(), time.Since(start).Round(time.Millisecond))
	if err := newLead.Propose(kvstore.EncodeSet("status", "still available")); err != nil {
		log.Fatal(err)
	}
	restStores := map[uint64]*kvstore.Store{}
	for _, d := range rest {
		restStores[d.ID()] = stores[d.ID()]
	}
	waitReplicated(restStores, "status", 10*time.Second)
	v, _ := stores[newLead.ID()].Get("status")
	fmt.Printf("after the crash: status=%q on the surviving majority\n", v)
}

func waitReplicated(stores map[uint64]*kvstore.Store, key string, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ok := true
		for _, st := range stores {
			if _, found := st.Get(key); !found {
				ok = false
			}
		}
		if ok {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	log.Fatalf("key %q did not replicate in time", key)
}
