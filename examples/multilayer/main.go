// Multi-layer aggregation (Sec. VII-C): the paper generalizes the
// two-layer design to X layers and shows the total cost stays O(nN) —
// Eq. 10: (N−1)(n+2)|w|. This example prints the cost and per-peer cost
// as the hierarchy deepens, verifying the closed form against the
// first-principles derivation at every depth.
//
//	go run ./examples/multilayer
package main

import (
	"fmt"
	"log"

	"repro/internal/costmodel"
)

func main() {
	w := costmodel.WeightBytes(costmodel.PaperCNNParams, costmodel.BytesPerParam32)
	for _, n := range []int{3, 5} {
		fmt.Printf("subgroup size n = %d (per-peer cost approaches n+2 = %d units):\n", n, n+2)
		fmt.Printf("  %-3s %12s %14s %12s %12s\n", "X", "peers N", "units (|w|)", "Gb", "units/peer")
		for x := 1; x <= 5; x++ {
			peers, err := costmodel.MultiLayerPeers(n, x)
			must(err)
			closed, err := costmodel.MultiLayerUnits(n, x)
			must(err)
			derived, err := costmodel.MultiLayerUnitsDerived(n, x)
			must(err)
			if closed != derived {
				log.Fatalf("Eq. 10 disagrees with the derivation at n=%d X=%d: %d vs %d", n, x, closed, derived)
			}
			fmt.Printf("  %-3d %12d %14d %12.2f %12.2f\n",
				x, peers, closed, costmodel.Gigabits(closed*w), float64(closed)/float64(peers))
		}
		fmt.Println()
	}
	fmt.Println("Eq. 10 matches the Eqs. 7–9 derivation at every depth; cost per peer")
	fmt.Println("is bounded by n+2 model transfers per round no matter how large N grows.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
