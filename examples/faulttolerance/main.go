// Fault tolerance demo, in two acts:
//
//  1. The paper's Fig. 3 — a peer drops out in the middle of a
//     2-out-of-3 SAC aggregation, and the survivors still reconstruct
//     the exact average (including the dropout's model).
//
//  2. The paper's Sec. V — a two-layer Raft deployment (N=25, n=5) in
//     which the FedAvg leader is killed; both layers re-elect and the
//     new subgroup leader rejoins the FedAvg group, with the recovery
//     timeline printed in virtual milliseconds.
//
//     go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/sac"
	"repro/internal/simnet"
	"repro/internal/transport"
)

func main() {
	sacDropout()
	fmt.Println()
	raftRecovery()
}

func sacDropout() {
	fmt.Println("=== Act 1: 2-out-of-3 SAC with a mid-protocol dropout (Fig. 3) ===")
	rng := rand.New(rand.NewSource(42))
	models := [][]float64{
		{1, 10, 100}, // peer 0 ("Bob", the leader)
		{2, 20, 200}, // peer 1 ("Charlie")
		{3, 30, 300}, // peer 2 ("Alice" — will drop out)
	}
	mesh := transport.NewMesh(3, nil)
	res, err := sac.Run(mesh, sac.Config{N: 3, K: 2, Leader: 0, Mode: sac.ModeLeader, Rng: rng},
		models, sac.CrashPlan{2: sac.AfterShares})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice crashed after distributing her shares\n")
	fmt.Printf("contributors: %v (alice's model still counts)\n", res.Contributors)
	fmt.Printf("recovered subtotals for share indices %v from replica holders\n", res.Recovered)
	fmt.Printf("secure average: %.1f (true average: [2.0 20.0 200.0])\n", res.Avg)
	fmt.Printf("traffic: %d bytes over %d messages\n",
		mesh.Counter().TotalBytes(), mesh.Counter().TotalMessages())
}

func raftRecovery() {
	fmt.Println("=== Act 2: two-layer Raft recovery from a FedAvg-leader crash ===")
	sys, err := cluster.New(cluster.Options{
		NumSubgroups:    5,
		SubgroupSize:    5,
		ElectionTickMin: 100, // U(100, 200) ms, as in the paper
		ElectionTickMax: 200,
		Latency:         15 * simnet.Millisecond,
		Seed:            7,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Bootstrap(30 * simnet.Second); err != nil {
		log.Fatal(err)
	}
	sys.Sim.RunFor(500 * simnet.Millisecond)

	victim := sys.FedAvgLeader()
	sub := sys.Peer(victim).Subgroup
	fmt.Printf("t=%7.1f ms  FedAvg leader is peer %d (subgroup %d); killing it\n",
		sys.Sim.Now().Ms(), victim, sub)
	crashAt := sys.Sim.Now()
	if err := sys.CrashPeer(victim); err != nil {
		log.Fatal(err)
	}

	newFed, fedAt, err := sys.WaitFedAvgLeader(victim, 30*simnet.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%7.1f ms  new FedAvg leader: peer %d (+%.1f ms)\n",
		fedAt.Ms(), newFed, simnet.Duration(fedAt-crashAt).Ms())

	newSub, electAt, err := sys.WaitSubgroupLeader(sub, victim, 30*simnet.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%7.1f ms  subgroup %d elected new leader: peer %d (+%.1f ms)\n",
		electAt.Ms(), sub, newSub, simnet.Duration(electAt-crashAt).Ms())

	joinAt, err := sys.WaitJoined(newSub, 60*simnet.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%7.1f ms  peer %d joined the FedAvg layer (+%.1f ms total)\n",
		joinAt.Ms(), newSub, simnet.Duration(joinAt-crashAt).Ms())
	fmt.Printf("FedAvg members now: %v\n", sys.FedAvgMembers())
	fmt.Println("downtime is far below one federated round — learning continues.")
}
