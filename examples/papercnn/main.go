// papercnn trains the paper's exact Fig. 5 architecture — the CIFAR-10
// CNN with 1,250,858 parameters — for a few steps on the synthetic
// CIFAR-10 substitute, then runs one secure two-layer aggregation of the
// full 1.25M-dimensional weight vector across three peers. This is the
// "full-scale" path: the experiment drivers default to smaller models so
// thousand-round sweeps stay fast, but nothing in the stack is limited
// to them.
//
//	go run ./examples/papercnn
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/optim"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	model, err := nn.PaperCNN(3, 32, 10, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s\n", model.Summary())
	if model.ParamCount() != costmodel.PaperCNNParams {
		log.Fatalf("parameter count %d != %d", model.ParamCount(), costmodel.PaperCNNParams)
	}

	train, _, err := dataset.Generate(dataset.CIFAR10Like(64, 32, 2))
	if err != nil {
		log.Fatal(err)
	}
	opt := optim.NewAdam(1e-4) // the paper's optimizer and learning rate
	fmt.Println("\ntraining (batch 8, Adam lr=1e-4):")
	for step := 0; step < 4; step++ {
		lo := step * 8 % train.Len()
		x, labels, err := train.Batch(lo, lo+8)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		model.ZeroGrad()
		loss, err := model.Loss(x, labels)
		if err != nil {
			log.Fatal(err)
		}
		if err := model.Backward(); err != nil {
			log.Fatal(err)
		}
		if err := opt.Step(model.Params()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  step %d: loss %.4f (%.1fs)\n", step, loss, time.Since(start).Seconds())
	}

	// One secure aggregation of the full weight vector across 3 peers.
	fmt.Println("\ntwo-layer SAC over the full 1.25M-weight vector (3 peers, 2-out-of-3):")
	w := model.WeightVector()
	models := [][]float64{w, w, w}
	sys, err := core.NewSystem(core.Config{Sizes: []int{3}, K: []int{2}}, rng)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, err := sys.Aggregate(models, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  aggregated %d weights in %.2fs, traffic %.3f GB\n",
		len(res.Global), time.Since(start).Seconds(), float64(res.Bytes)/1e9)
	if err := model.SetWeightVector(res.Global); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  aggregated model reinstalled — ready for the next round.")
}
