// Scalability: the paper's communication-cost story (Sec. VII).
//
// Prints the Fig. 13 m-sweep at N=30, the Fig. 14 k-n comparison, and
// the headline reduction factors (10.36× at n,k,N = 3,2,30) — each
// cross-validated against a byte-accounted aggregation run.
//
//	go run ./examples/scalability
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/costmodel"
)

func main() {
	const N = 30
	w := costmodel.WeightBytes(costmodel.PaperCNNParams, costmodel.BytesPerParam32)
	fmt.Printf("model: paper CNN, %d params, |w| = %.4f Gb\n\n", costmodel.PaperCNNParams, costmodel.Gigabits(w))

	fmt.Println("Fig. 13 — total cost per aggregation vs m (N=30, n-out-of-n):")
	base, err := costmodel.BaselineUnits(N)
	must(err)
	fmt.Printf("  m=%-3d %8.2f Gb   (original one-layer SAC)\n", 1, costmodel.Gigabits(base*w))
	for _, m := range []int{2, 3, 4, 6, 10, 15, 30} {
		sizes, err := core.SplitPeers(N, m)
		must(err)
		units, err := costmodel.TwoLayerUnevenUnits(sizes)
		must(err)
		measured := measure(sizes, 0)
		fmt.Printf("  m=%-3d %8.2f Gb   (analytic %d units, measured %d units)\n",
			m, costmodel.Gigabits(units*w), units, measured)
	}

	fmt.Println("\nFig. 14 — k-out-of-n settings at N=30:")
	for _, nk := range [][2]int{{3, 3}, {3, 2}, {5, 5}, {5, 3}} {
		n, k := nk[0], nk[1]
		m := (N + n - 1) / n
		sizes, err := core.SplitPeers(N, m)
		must(err)
		units, err := costmodel.TwoLayerUnevenKNUnits(sizes, k)
		must(err)
		fmt.Printf("  %d-%d: %8.2f Gb   (%.2fx below the %.2f Gb baseline)\n",
			k, n, costmodel.Gigabits(units*w), float64(base)/float64(units), costmodel.Gigabits(base*w))
	}

	fmt.Println("\nheadline (paper Sec. VII-B):")
	r, err := costmodel.Reduction(30, 10, 3, 2)
	must(err)
	fmt.Printf("  n,k,N = 3,2,30 → %.2fx cost reduction (paper: 10.36x)\n", r)
	r, err = costmodel.Reduction(30, 10, 3, 3)
	must(err)
	fmt.Printf("  n,k,N = 3,3,30 → %.2fx cost reduction (paper: 14.75x)\n", r)
}

// measure runs a real two-layer aggregation over byte-counting meshes and
// converts its traffic back to |w| units.
func measure(sizes []int, k int) int64 {
	cfg := core.Config{Sizes: sizes}
	if k > 0 {
		cfg.K = []int{k}
	}
	sys, err := core.NewSystem(cfg, rand.New(rand.NewSource(1)))
	must(err)
	total := 0
	for _, s := range sizes {
		total += s
	}
	const dim = 32
	rng := rand.New(rand.NewSource(2))
	models := make([][]float64, total)
	for i := range models {
		m := make([]float64, dim)
		for j := range m {
			m[j] = rng.NormFloat64()
		}
		models[i] = m
	}
	res, err := sys.Aggregate(models, nil, nil)
	must(err)
	return res.Bytes / int64(8*dim)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
