// Quickstart: federated training of 6 peers in two SAC subgroups with a
// FedAvg layer on top — the paper's two-layer aggregation — compared
// against the original one-layer SAC on the same workload.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
)

func main() {
	factory := func(rng *rand.Rand) (*nn.Model, error) {
		return nn.MLP(64, []int{32}, 4, rng), nil
	}
	base := core.TrainerConfig{
		Model:        factory,
		Flat:         true,
		Data:         dataset.Tiny(4, 360, 200, 7),
		Dist:         dataset.IID,
		Rounds:       30,
		EvalEvery:    5,
		LearningRate: 2e-3,
		BatchSize:    20,
		Seed:         7,
	}

	// Two-layer: 6 peers in two subgroups of 3, fault-tolerant 2-out-of-3 SAC.
	twoLayer := base
	twoLayer.Core = core.Config{Sizes: []int{3, 3}, K: []int{2}}
	ts, err := core.RunTraining(twoLayer)
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: the original one-layer SAC over all 6 peers.
	baseline := base
	baseline.Core = core.Config{Sizes: []int{6}}
	baseline.Baseline = true
	bs, err := core.RunTraining(baseline)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("round  two-layer acc  baseline acc")
	for i := range ts.Round {
		fmt.Printf("%5d %13.1f%% %12.1f%%\n", ts.Round[i], 100*ts.TestAcc[i], 100*bs.TestAcc[i])
	}
	tb := ts.Bytes[len(ts.Bytes)-1]
	bb := bs.Bytes[len(bs.Bytes)-1]
	fmt.Printf("\naggregation traffic: two-layer %d bytes, baseline %d bytes (%.2fx reduction)\n",
		tb, bb, float64(bb)/float64(tb))
	fmt.Println("both reach comparable accuracy; the two-layer system moves far fewer bytes.")
}
