package main

import (
	"path/filepath"
	"testing"

	"repro/internal/chaos"
)

func TestCampaignFlagMapping(t *testing.T) {
	c := campaign(9, 12, "crash", "raft-kv", 7, 2, 4)
	if c.Seed != 9 || c.Steps != 12 || c.Nodes != 7 {
		t.Fatalf("campaign = %+v", c)
	}
	if c.Mix != chaos.CrashHeavyMix || c.Target != chaos.TargetRaftKV {
		t.Fatalf("mix/target = %v/%v", c.Mix, c.Target)
	}
	c = campaign(1, 8, "partition", "two-layer", 5, 3, 3)
	if c.Mix != chaos.PartitionHeavyMix || c.Target != chaos.TargetTwoLayer {
		t.Fatalf("mix/target = %v/%v", c.Mix, c.Target)
	}
	if c.Subgroups != 3 || c.SubgroupSize != 3 {
		t.Fatalf("m/n = %d/%d", c.Subgroups, c.SubgroupSize)
	}
}

// The dump/replay loop the CLI offers: a passing campaign dumped with
// -dump must re-execute from its replay file to the same verdict.
func TestDumpedScheduleReplays(t *testing.T) {
	c := campaign(4, 10, "mixed", "raft-kv", 5, 3, 3)
	c.SACRounds = -1 // keep the smoke test quick
	rep := c.Run()
	if !rep.Passed() {
		t.Fatalf("campaign failed: %v", rep.Violations)
	}
	path := filepath.Join(t.TempDir(), "replay.json")
	if err := chaos.WriteReplay(path, rep); err != nil {
		t.Fatal(err)
	}
	c2, actions, err := chaos.LoadReplay(path)
	if err != nil {
		t.Fatal(err)
	}
	rep2 := c2.Execute(actions)
	if !rep2.Passed() {
		t.Fatalf("replay failed: %v", rep2.Violations)
	}
	if rep2.Stats != rep.Stats {
		t.Fatalf("replay stats %+v differ from original %+v", rep2.Stats, rep.Stats)
	}
}
