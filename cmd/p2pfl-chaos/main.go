// Command p2pfl-chaos runs deterministic fault campaigns against the
// virtual-time protocol stack and checks the protocol invariants
// continuously (see internal/chaos):
//
//	p2pfl-chaos -seed 42                       one mixed campaign, raft-kv target
//	p2pfl-chaos -seed 7 -mix crash -steps 40   crash-heavy campaign
//	p2pfl-chaos -target two-layer -m 3 -n 3    two-layer cluster campaign
//	p2pfl-chaos -target two-layer -mix flap -detector
//	                                           flapping links + failure-detector
//	                                           invariants (false-Down accuracy,
//	                                           bounded re-convergence)
//	p2pfl-chaos -target two-layer -mix byzantine -n 4
//	                                           adversarial peers + robust
//	                                           aggregation invariants
//	p2pfl-chaos -byzantine -seed 11            Byzantine oracle rounds on any
//	                                           campaign (robustness, detection,
//	                                           equivocation, privacy, sharpness)
//	p2pfl-chaos -target two-layer -mix churn   continuous churn: joins, graceful
//	                                           departures and handoffs against
//	                                           the live control plane, with the
//	                                           directory and accuracy invariants
//	p2pfl-chaos -churn -seeds 20               churn acceptance sweep: every seed
//	                                           must pass all churn invariants and
//	                                           the sweep must exercise real
//	                                           membership change (else exit 1)
//	p2pfl-chaos -shard -seeds 12               elastic-sharding sweep: equal-seed
//	                                           split-vs-static oracle episodes;
//	                                           real splits and merges must occur
//	                                           and accuracy must hold (else exit 1)
//	p2pfl-chaos -topology wan50 -prevote -checkquorum
//	                                           campaign on the multi-region WAN
//	                                           latency model with the stability
//	                                           flags armed
//	p2pfl-chaos -wan -seeds 20                 WAN stability sweep: flags-on must
//	                                           stay election-quiet with bounded
//	                                           failover, flags-off must show the
//	                                           spurious elections the flags fix
//	p2pfl-chaos -soak 30s                      seed sweep until the wall clock runs out
//	p2pfl-chaos -seed 9 -out fail.json         dump a replay file for the run
//	p2pfl-chaos -replay fail.json              re-execute a dumped schedule exactly
//
// On an invariant violation the failing schedule is minimized by
// bisection, written to -out (default chaos-replay.json) and the process
// exits 1. Identical seeds always produce identical schedules and
// verdicts, so any red run reported by CI reproduces locally from its
// seed alone.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/chaos"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "campaign seed (ignored with -replay)")
		steps   = flag.Int("steps", 24, "number of fault actions in the schedule")
		mix     = flag.String("mix", "mixed", "fault mix: mixed | crash | partition | flap | byzantine | churn")
		target  = flag.String("target", "raft-kv", "system under test: raft-kv | two-layer")
		detect  = flag.Bool("detector", false, "enable the failure detector and its invariant checkers (two-layer target)")
		byz     = flag.Bool("byzantine", false, "run Byzantine adversary oracle rounds and their invariant checkers")
		nodes   = flag.Int("nodes", 5, "raft group size (raft-kv target)")
		m       = flag.Int("m", 3, "number of subgroups (two-layer target)")
		n       = flag.Int("n", 3, "peers per subgroup (two-layer target)")
		topo    = flag.String("topology", "", "latency preset replacing the uniform 15 ms link: lan15 | wan50 | wan200")
		prevote = flag.Bool("prevote", false, "enable raft pre-vote on every node")
		chkq    = flag.Bool("checkquorum", false, "enable raft check-quorum on every node")
		wan     = flag.Bool("wan", false, "run the WAN stability sweep instead of a fault campaign")
		churn   = flag.Bool("churn", false, "run the continuous-churn acceptance sweep instead of a fault campaign")
		shard   = flag.Bool("shard", false, "run the elastic-sharding acceptance sweep (split-vs-static oracle) instead of a fault campaign")
		seeds   = flag.Int("seeds", 20, "number of consecutive seeds in the -wan / -churn / -shard sweeps")
		soak    = flag.Duration("soak", 0, "keep running campaigns with consecutive seeds for this long")
		out     = flag.String("out", "chaos-replay.json", "replay file written on failure (or with -dump)")
		dump    = flag.Bool("dump", false, "write the replay file even when the campaign passes")
		replay  = flag.String("replay", "", "re-execute the schedule from a replay file instead of generating one")
		budget  = flag.Int("min-budget", 64, "max campaign executions spent minimizing a failure")
		verbose = flag.Bool("v", false, "print per-campaign stats")
	)
	flag.Parse()

	if *replay != "" {
		c, actions, err := chaos.LoadReplay(*replay)
		if err != nil {
			log.Fatal(err)
		}
		rep := c.Execute(actions)
		printReport(rep, true)
		if !rep.Passed() {
			os.Exit(1)
		}
		return
	}

	if *wan {
		runWANSweep(*seed, *seeds, *verbose)
		return
	}

	if *churn {
		runChurnSweep(*seed, *seeds, *steps, *m, *n, *verbose)
		return
	}

	if *shard {
		runShardSweep(*seed, *seeds, *verbose)
		return
	}

	base := campaign(*seed, *steps, *mix, *target, *nodes, *m, *n)
	base.Detector = *detect
	base.Topology = *topo
	base.PreVote = *prevote
	base.CheckQuorum = *chkq
	if *byz {
		base.Byzantine = true
	}
	if *soak <= 0 {
		runOne(base, *out, *dump, *budget, true)
		return
	}

	// Soak mode: sweep consecutive seeds until the wall-clock budget is
	// spent; first failure stops the sweep.
	start := time.Now()
	ran := 0
	for time.Since(start) < *soak {
		c := base
		c.Seed = *seed + int64(ran)
		runOne(c, *out, false, *budget, *verbose)
		ran++
	}
	fmt.Printf("soak: %d campaigns (seeds %d..%d) in %v, all invariants held\n",
		ran, *seed, *seed+int64(ran-1), time.Since(start).Round(time.Millisecond))
}

// runWANSweep is the -wan mode: the ISSUE's two-sided acceptance check.
// Seeds seed..seed+n-1 run the 50 ms WAN stability scenario twice — with
// pre-vote, check-quorum, leases and auto-tuning armed (must be
// election-quiet with bounded failover) and with everything off (must
// show at least one spurious election across the sweep, or the checker
// proves nothing). Any flags-on violation or a vacuous flags-off sweep
// exits 1.
func runWANSweep(seed int64, n int, verbose bool) {
	failed := false
	spuriousOff := 0
	for i := 0; i < n; i++ {
		s := seed + int64(i)
		on, err := chaos.RunWANStability(chaos.StabilityOptions{
			Seed: s, PreVote: true, CheckQuorum: true, LeaderLease: true, AutoTune: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !on.Passed() {
			failed = true
			fmt.Printf("seed %-6d wan FAIL\n", s)
			for _, v := range on.Violations {
				fmt.Printf("  %s\n", v)
			}
		} else if verbose {
			fmt.Printf("seed %-6d wan PASS: 0 spurious elections, failover %d ticks (bound %d)\n",
				s, on.FailoverTicks, on.FailoverBound)
		}
		off, err := chaos.RunWANStability(chaos.StabilityOptions{Seed: s})
		if err != nil {
			log.Fatal(err)
		}
		spuriousOff += off.SpuriousElections
	}
	if spuriousOff == 0 {
		fmt.Printf("wan sweep: flags-off control showed zero spurious elections across %d seeds — checker is vacuous\n", n)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("wan sweep: %d seeds quiet with flags on; flags-off control: %d spurious elections\n",
		n, spuriousOff)
}

// runChurnSweep is the -churn mode: the continuous-churn acceptance
// check. Seeds seed..seed+n-1 run full two-layer ChurnMix campaigns with
// the churn oracle and failure detector armed. Every seed must pass all
// invariants (directory convergence, share-index soundness, churn
// accuracy, plus the standing safety/liveness/exactness checks), and the
// sweep as a whole must exercise real joins, departures and handoffs —
// a sweep that never changed the membership proves nothing and exits 1.
func runChurnSweep(seed int64, n, steps, m, sub int, verbose bool) {
	failed := false
	joins, departs, handoffs := 0, 0, 0
	for i := 0; i < n; i++ {
		c := chaos.Campaign{
			Seed: seed + int64(i), Steps: steps, Target: chaos.TargetTwoLayer,
			Mix: chaos.ChurnMix, Churn: true, Detector: true,
			Subgroups: m, SubgroupSize: sub, SACRounds: -1,
		}
		rep := c.Run()
		joins += rep.Stats.Joins
		departs += rep.Stats.Departs
		handoffs += rep.Stats.Handoffs
		if !rep.Passed() {
			failed = true
			printReport(rep, true)
		} else if verbose {
			fmt.Printf("seed %-6d churn PASS: %d joins, %d departs, %d handoffs\n",
				c.Seed, rep.Stats.Joins, rep.Stats.Departs, rep.Stats.Handoffs)
		}
	}
	if joins == 0 || departs == 0 || handoffs == 0 {
		fmt.Printf("churn sweep: %d joins, %d departs, %d handoffs across %d seeds — membership never fully exercised, checker is vacuous\n",
			joins, departs, handoffs, n)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("churn sweep: %d seeds green with %d joins, %d departs, %d handoffs; directory and accuracy invariants held\n",
		n, joins, departs, handoffs)
}

// runShardSweep is the -shard mode: the elastic-sharding acceptance
// check. Seeds seed..seed+n-1 run shard oracle campaigns (equal-seed
// split-vs-static aggregation, see internal/chaos/shardoracle.go).
// Every seed must stay green on shard-balance, share-index-soundness
// and shard-accuracy, and the sweep as a whole must perform real splits
// and merges — a sweep that never re-sharded proves nothing and exits 1.
func runShardSweep(seed int64, n int, verbose bool) {
	failed := false
	splits, merges := 0, 0
	for i := 0; i < n; i++ {
		c := chaos.Campaign{Seed: seed + int64(i), Steps: 1, SACRounds: -1, Shard: true}
		rep := c.Run()
		splits += rep.Stats.Splits
		merges += rep.Stats.Merges
		if !rep.Passed() {
			failed = true
			printReport(rep, true)
		} else if verbose {
			fmt.Printf("seed %-6d shard PASS: %d splits, %d merges, %d joins, %d departs\n",
				c.Seed, rep.Stats.Splits, rep.Stats.Merges, rep.Stats.Joins, rep.Stats.Departs)
		}
	}
	if splits == 0 || merges == 0 {
		fmt.Printf("shard sweep: %d splits, %d merges across %d seeds — re-sharding never fully exercised, checker is vacuous\n",
			splits, merges, n)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("shard sweep: %d seeds green with %d splits and %d merges; split-vs-static accuracy held\n",
		n, splits, merges)
}

func campaign(seed int64, steps int, mix, target string, nodes, m, n int) chaos.Campaign {
	c := chaos.Campaign{Seed: seed, Steps: steps, Nodes: nodes, Subgroups: m, SubgroupSize: n}
	switch mix {
	case "mixed":
		c.Mix = chaos.DefaultMix
	case "crash":
		c.Mix = chaos.CrashHeavyMix
	case "partition":
		c.Mix = chaos.PartitionHeavyMix
	case "flap":
		c.Mix = chaos.FlappingMix
	case "byzantine":
		c.Mix = chaos.ByzantineMix
		c.Byzantine = true
	case "churn":
		c.Mix = chaos.ChurnMix
		c.Churn = true
	default:
		log.Fatalf("unknown mix %q (want mixed | crash | partition | flap | byzantine | churn)", mix)
	}
	switch target {
	case "raft-kv":
		c.Target = chaos.TargetRaftKV
	case "two-layer":
		c.Target = chaos.TargetTwoLayer
	default:
		log.Fatalf("unknown target %q (want raft-kv | two-layer)", target)
	}
	return c
}

// runOne executes a campaign; on failure it minimizes the schedule,
// writes the replay file and exits 1.
func runOne(c chaos.Campaign, out string, dump bool, budget int, verbose bool) {
	rep := c.Run()
	if verbose || !rep.Passed() {
		printReport(rep, !rep.Passed())
	}
	if rep.Passed() {
		if dump {
			if err := chaos.WriteReplay(out, rep); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("schedule dumped to %s\n", out)
		}
		return
	}
	minActions, minRep := chaos.Minimize(c, rep.Actions, budget)
	fmt.Printf("minimized %d-action schedule to %d actions (%d violations persist)\n",
		len(rep.Actions), len(minActions), len(minRep.Violations))
	if err := chaos.WriteReplay(out, minRep); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay file written to %s — reproduce with: p2pfl-chaos -replay %s\n", out, out)
	os.Exit(1)
}

func printReport(rep *chaos.Report, showViolations bool) {
	s := rep.Stats
	verdict := "PASS"
	if !rep.Passed() {
		verdict = "FAIL"
	}
	fmt.Printf("seed %-6d %s  %s: %d crashes, %d restarts, %d partitions, %d net faults, %d flaps, %d leader changes, %d commits, %d SAC rounds, %d virtual ms\n",
		rep.Campaign.Seed, string(rep.Campaign.Target), verdict,
		s.Crashes, s.Restarts, s.Partitions, s.NetFaults, s.Flaps, s.LeaderChanges, s.Commits, s.SACRounds, s.FinalVirtualMs)
	if s.Byzantines > 0 || s.ByzantineDetections > 0 {
		fmt.Printf("           byzantine: %d adversaries, %d detections\n", s.Byzantines, s.ByzantineDetections)
	}
	if s.Joins > 0 || s.Departs > 0 || s.Handoffs > 0 {
		fmt.Printf("           churn: %d joins, %d departs, %d handoffs\n", s.Joins, s.Departs, s.Handoffs)
	}
	if showViolations {
		for _, v := range rep.Violations {
			fmt.Printf("  %s\n", v)
		}
	}
}
