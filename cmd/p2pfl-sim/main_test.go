package main

import (
	"testing"
	"time"
)

func TestRunTrialScenarios(t *testing.T) {
	elect, rejoin, err := runTrial("subgroup-leader", 3, 3, 50, 15*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	if elect <= 0 || rejoin <= elect {
		t.Fatalf("elect=%v rejoin=%v", elect, rejoin)
	}

	elect, rejoin, err = runTrial("fedavg-leader", 3, 3, 50, 15*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	if elect <= 0 || rejoin <= 0 {
		t.Fatalf("elect=%v rejoin=%v", elect, rejoin)
	}

	e, j, err := runTrial("follower", 3, 5, 50, 15*time.Millisecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e != -1 || j != -1 {
		t.Fatalf("follower scenario returned times: %v %v", e, j)
	}
}
