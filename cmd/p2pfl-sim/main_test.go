package main

import (
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestRunTrialScenarios(t *testing.T) {
	elect, rejoin, err := runTrial("subgroup-leader", 3, 3, 50, 15*time.Millisecond, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if elect <= 0 || rejoin <= elect {
		t.Fatalf("elect=%v rejoin=%v", elect, rejoin)
	}

	elect, rejoin, err = runTrial("fedavg-leader", 3, 3, 50, 15*time.Millisecond, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if elect <= 0 || rejoin <= 0 {
		t.Fatalf("elect=%v rejoin=%v", elect, rejoin)
	}

	e, j, err := runTrial("follower", 3, 5, 50, 15*time.Millisecond, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e != -1 || j != -1 {
		t.Fatalf("follower scenario returned times: %v %v", e, j)
	}
}

// TestRunTrialTelemetry: a registry threaded through runTrial must see
// the crash scenario — elections (bootstrap + re-election) and cluster
// events — and accumulate across trials.
func TestRunTrialTelemetry(t *testing.T) {
	reg := telemetry.New()
	if _, _, err := runTrial("subgroup-leader", 3, 3, 50, 15*time.Millisecond, 1, reg); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	// 3 subgroups + FedAvg layer + the forced re-election ≥ 5 wins.
	if got := snap.Counters["raft/elections_won"]; got < 5 {
		t.Errorf("raft/elections_won = %d, want >= 5", got)
	}
	if got := snap.Counters["cluster/ev/subgroup-leader"]; got < 1 {
		t.Errorf("cluster/ev/subgroup-leader = %d, want >= 1", got)
	}
	first := snap.Counters["raft/msgs_sent"]
	if first == 0 {
		t.Fatal("raft/msgs_sent = 0 after a trial")
	}
	if _, _, err := runTrial("subgroup-leader", 3, 3, 50, 15*time.Millisecond, 2, reg); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["raft/msgs_sent"]; got <= first {
		t.Errorf("registry did not accumulate across trials: msgs_sent %d -> %d", first, got)
	}
}
