// Command p2pfl-sim runs custom crash scenarios on the virtual-time
// two-layer Raft — the machinery behind Figs. 10–12 with every knob
// exposed:
//
//	p2pfl-sim -m 5 -n 5 -t 100 -latency 15ms -scenario fedavg-leader
//	p2pfl-sim -scenario subgroup-leader -trials 200
//	p2pfl-sim -scenario follower -trials 50
//
// Scenarios:
//
//	subgroup-leader  crash a (non-FedAvg) subgroup leader; measure the
//	                 election and the FedAvg-layer rejoin (Figs. 10–11)
//	fedavg-leader    crash the FedAvg leader; measure full recovery (Fig. 12)
//	follower         crash a subgroup follower; confirm nothing happens
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/raft"
	"repro/internal/simnet"
	"repro/internal/telemetry"
)

func main() {
	var (
		m        = flag.Int("m", 5, "number of subgroups")
		n        = flag.Int("n", 5, "peers per subgroup")
		tMs      = flag.Int("t", 100, "election timeout T (ms); timeouts ~ U(T, 2T)")
		latency  = flag.Duration("latency", 15*time.Millisecond, "one-way link latency")
		trials   = flag.Int("trials", 100, "number of independent trials")
		seed     = flag.Int64("seed", 1, "base random seed")
		scenario = flag.String("scenario", "subgroup-leader", "subgroup-leader | fedavg-leader | follower")
		telemOut = flag.String("telemetry", "", "write the aggregate telemetry snapshot as JSON to this file ('-' for stdout)")
	)
	flag.Parse()

	// One registry accumulates across all trials; its clock follows each
	// trial's virtual sim, so a fixed -seed yields byte-identical dumps.
	var reg *telemetry.Registry
	if *telemOut != "" {
		reg = telemetry.New()
	}

	var elect, rejoin []float64
	for trial := 0; trial < *trials; trial++ {
		e, j, err := runTrial(*scenario, *m, *n, *tMs, *latency, *seed+int64(trial), reg)
		if err != nil {
			log.Fatalf("trial %d: %v", trial, err)
		}
		if e >= 0 {
			elect = append(elect, e)
		}
		if j >= 0 {
			rejoin = append(rejoin, j)
		}
	}
	fmt.Printf("scenario %s: %d trials, N=%d (m=%d × n=%d), T=%dms, latency=%v\n",
		*scenario, *trials, *m**n, *m, *n, *tMs, *latency)
	if len(elect) > 0 {
		fmt.Printf("  new leader elected: %s\n", metrics.Summarize(elect))
	}
	if len(rejoin) > 0 {
		fmt.Printf("  FedAvg rejoin done: %s\n", metrics.Summarize(rejoin))
	}
	if *scenario == "follower" {
		fmt.Println("  follower crashes are absorbed: no election, no rejoin (Sec. V-A2)")
	}
	if *telemOut != "" {
		if err := writeTelemetry(*telemOut, reg); err != nil {
			log.Fatalf("write -telemetry %s: %v", *telemOut, err)
		}
	}
}

// writeTelemetry dumps the registry snapshot to path ('-' = stdout).
func writeTelemetry(path string, reg *telemetry.Registry) error {
	if path == "-" {
		return reg.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runTrial returns (electionMs, rejoinMs); −1 where not applicable.
// reg, when non-nil, accumulates telemetry across trials.
func runTrial(scenario string, m, n, tMs int, latency time.Duration, seed int64, reg *telemetry.Registry) (float64, float64, error) {
	sys, err := cluster.New(cluster.Options{
		NumSubgroups:    m,
		SubgroupSize:    n,
		ElectionTickMin: tMs,
		ElectionTickMax: 2 * tMs,
		Latency:         simnet.Duration(latency.Microseconds()),
		Seed:            seed,
		Telemetry:       reg,
	})
	if err != nil {
		return 0, 0, err
	}
	if err := sys.Bootstrap(120 * simnet.Second); err != nil {
		return 0, 0, err
	}
	sys.Sim.RunFor(simnet.Duration(4*tMs) * simnet.Millisecond)

	fed := sys.FedAvgLeader()
	limit := 600 * simnet.Second
	switch scenario {
	case "subgroup-leader", "fedavg-leader":
		victim := fed
		if scenario == "subgroup-leader" {
			victim = raft.None
			for g := 0; g < m; g++ {
				if l := sys.SubgroupLeader(g); l != fed && l != raft.None {
					victim = l
					break
				}
			}
			if victim == raft.None {
				return 0, 0, fmt.Errorf("no non-FedAvg subgroup leader found")
			}
		}
		victimSub := sys.Peer(victim).Subgroup
		crashAt := sys.Sim.Now()
		if err := sys.CrashPeer(victim); err != nil {
			return 0, 0, err
		}
		newLeader, electAt, err := sys.WaitSubgroupLeader(victimSub, victim, limit)
		if err != nil {
			return 0, 0, err
		}
		joinAt, err := sys.WaitJoined(newLeader, limit)
		if err != nil {
			return 0, 0, err
		}
		return simnet.Duration(electAt - crashAt).Ms(), simnet.Duration(joinAt - crashAt).Ms(), nil

	case "follower":
		// Crash one follower; leadership must not change anywhere.
		lead0 := sys.SubgroupLeader(0)
		var victim uint64 = raft.None
		for _, id := range sys.SubgroupPeers(0) {
			if id != lead0 && id != fed {
				victim = id
				break
			}
		}
		if victim == raft.None {
			return 0, 0, fmt.Errorf("no follower to crash")
		}
		if err := sys.CrashPeer(victim); err != nil {
			return 0, 0, err
		}
		sys.Sim.RunFor(simnet.Duration(6*tMs) * simnet.Millisecond)
		if sys.SubgroupLeader(0) != lead0 || sys.FedAvgLeader() != fed {
			return 0, 0, fmt.Errorf("leadership changed after a follower crash")
		}
		return -1, -1, nil

	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", scenario)
		os.Exit(2)
		return 0, 0, nil
	}
}
