// Command p2pfl-experiments regenerates every table and figure of the
// paper's evaluation, plus the extension experiments of this
// reproduction:
//
//	p2pfl-experiments -exp all
//	p2pfl-experiments -exp fig10 -trials 1000
//	p2pfl-experiments -exp fig6 -rounds 1000 -csv out/
//	p2pfl-experiments -exp ext2          # DP utility sweep
//
// Accuracy figures (6–9) run the CI-scale synthetic workload by default;
// raise -rounds for longer curves. Recovery figures (10–12) run on the
// virtual-time simulator, so -trials 1000 (the paper's count) finishes in
// minutes, not hours.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiments ("+strings.Join(experiments.Names(), ",")+") or 'all'")
		rounds   = flag.Int("rounds", 120, "federated training rounds for figs 6-9 (paper: 1000)")
		trials   = flag.Int("trials", 100, "trials per timeout setting for figs 10-12 (paper: 1000)")
		maxN     = flag.Int("maxn", 50, "largest N for fig 14")
		workers  = flag.Int("workers", 0, "concurrent clients/trials per driver (0 = GOMAXPROCS); results are identical at any value")
		seed     = flag.Int64("seed", 1, "random seed")
		csvDir   = flag.String("csv", "", "also write full data series as <dir>/<fig>.csv")
		markdown = flag.String("markdown", "", "write a self-contained markdown report to this file instead of stdout tables")
	)
	flag.Parse()

	p := experiments.Params{Rounds: *rounds, Trials: *trials, MaxN: *maxN, Workers: *workers, Seed: *seed}
	if *markdown != "" {
		f, err := os.Create(*markdown)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := experiments.WriteReport(f, strings.Split(*exp, ","), p); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *markdown)
		return
	}
	want := strings.Split(*exp, ",")
	matches := func(name string) bool {
		for _, w := range want {
			if w == "all" || w == name {
				return true
			}
		}
		return false
	}

	ran := 0
	for _, name := range experiments.Names() {
		if !matches(name) {
			continue
		}
		res, err := experiments.Run(name, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		res.Print(os.Stdout)
		fmt.Println()
		if *csvDir != "" {
			if cw, ok := res.(experiments.CSVWriter); ok {
				if err := cw.WriteCSV(*csvDir); err != nil {
					fmt.Fprintf(os.Stderr, "%s: csv: %v\n", name, err)
					os.Exit(1)
				}
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (have %s)\n", *exp, strings.Join(experiments.Names(), ","))
		os.Exit(2)
	}
}
