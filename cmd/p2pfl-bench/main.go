// Command p2pfl-bench is a communication-cost calculator for the paper's
// closed forms (Sec. VII): given N, m (or n) and k it prints the
// baseline, two-layer and multi-layer costs and the reduction factor.
//
//	p2pfl-bench -N 30 -n 3 -k 2
//	p2pfl-bench -N 30 -sweep            # the Fig. 13 style m-sweep
//	p2pfl-bench -params 1250858 -bits 32
//	p2pfl-bench -churn 10               # directory + handoff traffic for
//	                                    # 10 joins and 10 leaves (DESIGN.md §14)
//	p2pfl-bench -multilayer             # run the 1k/10k/100k scale tiers for
//	                                    # real and cross-check measured bytes
//	                                    # against Eq. 10 (exit 1 on mismatch)
//	p2pfl-bench -multilayer -peers 50000 -n 4
//	                                    # same check on a custom tier: the
//	                                    # shallowest degree-4 tree ≥ 50k peers
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/transport"
)

func main() {
	var (
		N      = flag.Int("N", 30, "total number of peers")
		n      = flag.Int("n", 3, "subgroup size")
		k      = flag.Int("k", 0, "SAC threshold (0: n-out-of-n)")
		params = flag.Int("params", costmodel.PaperCNNParams, "model parameter count")
		bits   = flag.Int("bits", 32, "bits per parameter (32 or 64)")
		sweep  = flag.Bool("sweep", false, "sweep m = 1..N (Fig. 13 style)")
		layers = flag.Int("layers", 0, "if > 0, print X-layer costs up to this depth (Sec. VII-C)")
		churn  = flag.Int("churn", 0, "if > 0, print continuous-churn control-plane costs for this many joins and leaves")

		multilayer = flag.Bool("multilayer", false, "run the X-layer scale tiers for real and cross-check measured bytes against Eq. 10")
		tiers      = flag.String("tiers", "1k,10k,100k", "comma-separated tier names to run with -multilayer")
		peers      = flag.Int64("peers", 0, "if > 0 with -multilayer, run one custom tier: the shallowest degree-n tree holding this many peers")
		dim        = flag.Int("dim", 64, "model dimension for -multilayer aggregations")
		workers    = flag.Int("workers", 4, "parallel subgroup workers for -multilayer aggregations")
	)
	flag.Parse()

	if *multilayer {
		runMultiLayerTiers(*tiers, *peers, *n, *dim, *workers)
		return
	}

	bytesPer := costmodel.BytesPerParam32
	if *bits == 64 {
		bytesPer = costmodel.BytesPerParam64
	} else if *bits != 32 {
		fmt.Fprintln(os.Stderr, "bits must be 32 or 64")
		os.Exit(2)
	}
	w := costmodel.WeightBytes(*params, bytesPer)
	fmt.Printf("|w| = %d bytes (%.4f Gb) for %d params at %d bits\n\n", w, costmodel.Gigabits(w), *params, *bits)

	if *sweep {
		base, err := costmodel.BaselineUnits(*N)
		check(err)
		fmt.Printf("%-6s %-14s %12s %10s\n", "m", "sizes", "units(|w|)", "Gb")
		fmt.Printf("%-6d %-14s %12d %10.2f   (one-layer SAC)\n", 1, fmt.Sprintf("[%d]", *N), base, costmodel.Gigabits(base*w))
		for m := 2; m <= *N; m++ {
			sizes, err := core.SplitPeers(*N, m)
			check(err)
			units, err := costmodel.TwoLayerUnevenUnits(sizes)
			check(err)
			fmt.Printf("%-6d %-14s %12d %10.2f\n", m, compact(sizes), units, costmodel.Gigabits(units*w))
		}
		return
	}

	if *layers > 0 {
		fmt.Printf("%-4s %10s %14s %10s\n", "X", "peers N", "units(|w|)", "Gb")
		for x := 1; x <= *layers; x++ {
			peers, err := costmodel.MultiLayerPeers(*n, x)
			check(err)
			units, err := costmodel.MultiLayerUnits(*n, x)
			check(err)
			fmt.Printf("%-4d %10d %14d %10.2f\n", x, peers, units, costmodel.Gigabits(units*w))
		}
		return
	}

	if *churn > 0 {
		// Control-plane traffic for a churn episode: each committed
		// directory update replicates once to each of the FedAvg layer's
		// m−1 followers, and each departure's graceful handoff ships one
		// checkpoint-framed model. Address length matches the cluster
		// layer's "peer-<id>:7100" convention at 4-digit ids.
		const addrLen = len("peer-1000:7100")
		m := (*N + *n - 1) / *n
		dir, err := costmodel.DirectoryChurnBytes(*churn, *churn, m, addrLen)
		check(err)
		hand, err := costmodel.HandoffModelBytes(*params)
		check(err)
		joinB, err := costmodel.DirectoryUpdateBytes(addrLen)
		check(err)
		leaveB, _ := costmodel.DirectoryUpdateBytes(0)
		fmt.Printf("directory update:       %8d B per join, %d B per leave (wire frames)\n", joinB, leaveB)
		fmt.Printf("directory replication:  %8d B for %d joins + %d leaves across the m=%d FedAvg layer\n",
			dir, *churn, *churn, m)
		fmt.Printf("graceful handoff:       %8d B per departure (%d-param model checkpoint)\n", hand, *params)
		fmt.Printf("handoff total:          %8d B (%.4f Gb) for %d departures\n",
			hand*int64(*churn), costmodel.Gigabits(hand*int64(*churn)), *churn)
		return
	}

	kk := *k
	if kk == 0 {
		kk = *n
	}
	m := (*N + *n - 1) / *n
	sizes, err := core.SplitPeers(*N, m)
	check(err)
	base, err := costmodel.BaselineUnits(*N)
	check(err)
	two, err := costmodel.TwoLayerUnevenKNUnits(sizes, kk)
	check(err)
	fmt.Printf("baseline one-layer SAC: %8d units  %8.2f Gb\n", base, costmodel.Gigabits(base*w))
	fmt.Printf("two-layer %d-out-of-%d:  %8d units  %8.2f Gb  (m=%d, sizes %s)\n",
		kk, *n, two, costmodel.Gigabits(two*w), m, compact(sizes))
	fmt.Printf("reduction: %.2fx\n", float64(base)/float64(two))
}

// runMultiLayerTiers is the -multilayer mode: it executes one real
// X-layer aggregation per scale tier and cross-checks the transport
// counter against the Eq. 10 closed form, exactly — measured bytes must
// equal MultiLayerUnits(n, X) · 8 · dim, and the global must equal the
// plain mean of the inputs to floating-point tolerance. Any mismatch
// exits 1: the closed form and the engine are not allowed to drift.
func runMultiLayerTiers(tierNames string, customPeers int64, degree, dim, workers int) {
	var run []costmodel.ScaleTier
	if customPeers > 0 {
		tier, err := costmodel.TierFor(degree, customPeers)
		check(err)
		run = append(run, tier)
	} else {
		byName := make(map[string]costmodel.ScaleTier)
		for _, t := range costmodel.ScaleTiers() {
			byName[t.Name] = t
		}
		for _, name := range strings.Split(tierNames, ",") {
			name = strings.TrimSpace(name)
			t, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown tier %q (have 1k, 10k, 100k)\n", name)
				os.Exit(2)
			}
			run = append(run, t)
		}
	}

	fmt.Printf("%-14s %6s %3s %10s %16s %16s %10s %9s\n",
		"tier", "n", "X", "peers", "measured B", "closed-form B", "max|err|", "wall")
	scratch := &core.MultiLayerScratch{}
	failed := false
	for _, tier := range run {
		topo, err := core.BuildMultiLayerTopology(tier.Degree, tier.Layers)
		check(err)
		rng := rand.New(rand.NewSource(1))
		models := make([][]float64, topo.N)
		mean := make([]float64, dim)
		for i := range models {
			models[i] = make([]float64, dim)
			for d := range models[i] {
				models[i][d] = rng.NormFloat64()
				mean[d] += models[i][d]
			}
		}
		for d := range mean {
			mean[d] /= float64(topo.N)
		}

		counter := transport.NewCounter()
		start := time.Now()
		res, err := core.AggregateMultiLayerOpts(topo, models, nil, rand.New(rand.NewSource(2)), counter,
			core.MultiLayerOptions{Workers: workers, Scratch: scratch})
		check(err)
		wall := time.Since(start)

		units, err := costmodel.MultiLayerUnits(tier.Degree, tier.Layers)
		check(err)
		want := units * 8 * int64(dim)
		maxErr := 0.0
		for d := range mean {
			if e := math.Abs(res.Global[d] - mean[d]); e > maxErr {
				maxErr = e
			}
		}
		status := ""
		if res.Bytes != want {
			status = "  MISMATCH"
			failed = true
		}
		if tol := 1e-8 * math.Sqrt(float64(topo.N)); maxErr > tol {
			status += "  INEXACT"
			failed = true
		}
		fmt.Printf("%-14s %6d %3d %10d %16d %16d %10.2e %9s%s\n",
			tier.Name, tier.Degree, tier.Layers, topo.N, res.Bytes, want, maxErr,
			wall.Round(time.Millisecond), status)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "multilayer tier check FAILED: measured traffic or accuracy drifted from the closed form")
		os.Exit(1)
	}
	fmt.Printf("\nall tiers: measured bytes = (N−1)(n+2)·|w| exactly (Eq. 10, |w| = %d B)\n", 8*dim)
}

func compact(sizes []int) string {
	s := "["
	for i, v := range sizes {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprint(v)
		if i == 5 && len(sizes) > 7 {
			return s + fmt.Sprintf(" …×%d]", len(sizes)-6)
		}
	}
	return s + "]"
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
