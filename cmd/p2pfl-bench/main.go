// Command p2pfl-bench is a communication-cost calculator for the paper's
// closed forms (Sec. VII): given N, m (or n) and k it prints the
// baseline, two-layer and multi-layer costs and the reduction factor.
//
//	p2pfl-bench -N 30 -n 3 -k 2
//	p2pfl-bench -N 30 -sweep            # the Fig. 13 style m-sweep
//	p2pfl-bench -params 1250858 -bits 32
//	p2pfl-bench -churn 10               # directory + handoff traffic for
//	                                    # 10 joins and 10 leaves (DESIGN.md §14)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/costmodel"
)

func main() {
	var (
		N      = flag.Int("N", 30, "total number of peers")
		n      = flag.Int("n", 3, "subgroup size")
		k      = flag.Int("k", 0, "SAC threshold (0: n-out-of-n)")
		params = flag.Int("params", costmodel.PaperCNNParams, "model parameter count")
		bits   = flag.Int("bits", 32, "bits per parameter (32 or 64)")
		sweep  = flag.Bool("sweep", false, "sweep m = 1..N (Fig. 13 style)")
		layers = flag.Int("layers", 0, "if > 0, print X-layer costs up to this depth (Sec. VII-C)")
		churn  = flag.Int("churn", 0, "if > 0, print continuous-churn control-plane costs for this many joins and leaves")
	)
	flag.Parse()

	bytesPer := costmodel.BytesPerParam32
	if *bits == 64 {
		bytesPer = costmodel.BytesPerParam64
	} else if *bits != 32 {
		fmt.Fprintln(os.Stderr, "bits must be 32 or 64")
		os.Exit(2)
	}
	w := costmodel.WeightBytes(*params, bytesPer)
	fmt.Printf("|w| = %d bytes (%.4f Gb) for %d params at %d bits\n\n", w, costmodel.Gigabits(w), *params, *bits)

	if *sweep {
		base, err := costmodel.BaselineUnits(*N)
		check(err)
		fmt.Printf("%-6s %-14s %12s %10s\n", "m", "sizes", "units(|w|)", "Gb")
		fmt.Printf("%-6d %-14s %12d %10.2f   (one-layer SAC)\n", 1, fmt.Sprintf("[%d]", *N), base, costmodel.Gigabits(base*w))
		for m := 2; m <= *N; m++ {
			sizes, err := core.SplitPeers(*N, m)
			check(err)
			units, err := costmodel.TwoLayerUnevenUnits(sizes)
			check(err)
			fmt.Printf("%-6d %-14s %12d %10.2f\n", m, compact(sizes), units, costmodel.Gigabits(units*w))
		}
		return
	}

	if *layers > 0 {
		fmt.Printf("%-4s %10s %14s %10s\n", "X", "peers N", "units(|w|)", "Gb")
		for x := 1; x <= *layers; x++ {
			peers, err := costmodel.MultiLayerPeers(*n, x)
			check(err)
			units, err := costmodel.MultiLayerUnits(*n, x)
			check(err)
			fmt.Printf("%-4d %10d %14d %10.2f\n", x, peers, units, costmodel.Gigabits(units*w))
		}
		return
	}

	if *churn > 0 {
		// Control-plane traffic for a churn episode: each committed
		// directory update replicates once to each of the FedAvg layer's
		// m−1 followers, and each departure's graceful handoff ships one
		// checkpoint-framed model. Address length matches the cluster
		// layer's "peer-<id>:7100" convention at 4-digit ids.
		const addrLen = len("peer-1000:7100")
		m := (*N + *n - 1) / *n
		dir, err := costmodel.DirectoryChurnBytes(*churn, *churn, m, addrLen)
		check(err)
		hand, err := costmodel.HandoffModelBytes(*params)
		check(err)
		joinB, err := costmodel.DirectoryUpdateBytes(addrLen)
		check(err)
		leaveB, _ := costmodel.DirectoryUpdateBytes(0)
		fmt.Printf("directory update:       %8d B per join, %d B per leave (wire frames)\n", joinB, leaveB)
		fmt.Printf("directory replication:  %8d B for %d joins + %d leaves across the m=%d FedAvg layer\n",
			dir, *churn, *churn, m)
		fmt.Printf("graceful handoff:       %8d B per departure (%d-param model checkpoint)\n", hand, *params)
		fmt.Printf("handoff total:          %8d B (%.4f Gb) for %d departures\n",
			hand*int64(*churn), costmodel.Gigabits(hand*int64(*churn)), *churn)
		return
	}

	kk := *k
	if kk == 0 {
		kk = *n
	}
	m := (*N + *n - 1) / *n
	sizes, err := core.SplitPeers(*N, m)
	check(err)
	base, err := costmodel.BaselineUnits(*N)
	check(err)
	two, err := costmodel.TwoLayerUnevenKNUnits(sizes, kk)
	check(err)
	fmt.Printf("baseline one-layer SAC: %8d units  %8.2f Gb\n", base, costmodel.Gigabits(base*w))
	fmt.Printf("two-layer %d-out-of-%d:  %8d units  %8.2f Gb  (m=%d, sizes %s)\n",
		kk, *n, two, costmodel.Gigabits(two*w), m, compact(sizes))
	fmt.Printf("reduction: %.2fx\n", float64(base)/float64(two))
}

func compact(sizes []int) string {
	s := "["
	for i, v := range sizes {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprint(v)
		if i == 5 && len(sizes) > 7 {
			return s + fmt.Sprintf(" …×%d]", len(sizes)-6)
		}
	}
	return s + "]"
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
