package main

import "testing"

func TestCompact(t *testing.T) {
	if got := compact([]int{3, 3, 4}); got != "[3 3 4]" {
		t.Fatalf("compact = %q", got)
	}
	if got := compact([]int{1, 2, 3, 4, 5, 6, 7, 8, 9}); got != "[1 2 3 4 5 6 …×3]" {
		t.Fatalf("compact long = %q", got)
	}
	if got := compact(nil); got != "[" {
		// Degenerate but never reached: SplitPeers always returns ≥ 1.
		t.Logf("compact(nil) = %q", got)
	}
}
