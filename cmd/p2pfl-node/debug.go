package main

import (
	"log"
	"net/http"

	"repro/internal/telemetry"
)

// newDebugMux builds the node's debug HTTP surface. /debug/telemetry
// serves the registry's JSON snapshot — counters, gauges, histograms
// and the recent trace ring — so an operator can watch a live node
// without attaching a debugger:
//
//	curl -s http://127.0.0.1:6060/debug/telemetry | jq .counters
func newDebugMux(reg *telemetry.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/telemetry", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// serveDebug starts the debug listener in the background; failures are
// logged, not fatal — telemetry must never take the node down.
func serveDebug(addr string, reg *telemetry.Registry) {
	go func() {
		if err := http.ListenAndServe(addr, newDebugMux(reg)); err != nil {
			log.Printf("debug server on %s: %v", addr, err)
		}
	}()
}
