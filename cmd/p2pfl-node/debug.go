package main

import (
	"encoding/json"
	"log"
	"net/http"

	"repro/internal/health"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// healthView is the JSON document served by /debug/health: this node's
// failure-detector verdicts about its peers plus the transport's
// per-peer circuit states.
type healthView struct {
	Node     uint64                  `json:"node"`
	Detector []health.PeerStatus     `json:"detector"`
	Circuits []transport.PeerCircuit `json:"circuits"`
}

// newDebugMux builds the node's debug HTTP surface. /debug/telemetry
// serves the registry's JSON snapshot — counters, gauges, histograms
// and the recent trace ring; /debug/metrics serves the same registry in
// the Prometheus text exposition format (0.0.4) so a fleet scrapes
// nodes with stock Prometheus; /debug/health serves the failure
// detector's current verdicts and the transport circuit breakers — so
// an operator can watch a live node without attaching a debugger:
//
//	curl -s http://127.0.0.1:6060/debug/telemetry | jq .counters
//	curl -s http://127.0.0.1:6060/debug/metrics
//	curl -s http://127.0.0.1:6060/debug/health
func newDebugMux(reg *telemetry.Registry, id uint64, det *health.Detector, tr *transport.RaftTCP) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/telemetry", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", telemetry.PrometheusContentType)
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/health", func(w http.ResponseWriter, r *http.Request) {
		v := healthView{Node: id, Detector: []health.PeerStatus{}, Circuits: []transport.PeerCircuit{}}
		if det != nil {
			v.Detector = det.Snapshot()
		}
		if tr != nil {
			v.Circuits = tr.PeerStates()
		}
		w.Header().Set("Content-Type", "application/json")
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		data = append(data, '\n')
		_, _ = w.Write(data)
	})
	return mux
}

// serveDebug starts the debug listener in the background; failures are
// logged, not fatal — telemetry must never take the node down.
func serveDebug(addr string, reg *telemetry.Registry, id uint64, det *health.Detector, tr *transport.RaftTCP) {
	go func() {
		if err := http.ListenAndServe(addr, newDebugMux(reg, id, det, tr)); err != nil {
			log.Printf("debug server on %s: %v", addr, err)
		}
	}()
}
