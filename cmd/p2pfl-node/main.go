// Command p2pfl-node runs one real peer of a Raft group over TCP — the
// real-time counterpart of the discrete-event simulation used by the
// recovery experiments. Start one process per peer:
//
//	p2pfl-node -id 1 -peers "1=127.0.0.1:9101,2=127.0.0.1:9102,3=127.0.0.1:9103"
//	p2pfl-node -id 2 -peers "..." &
//	p2pfl-node -id 3 -peers "..." &
//
// The node logs state transitions and committed entries. Lines typed on
// stdin are proposed to the replicated log when this node is the leader
// (in the aggregation system these entries carry the FedAvg-layer
// configuration, Sec. V-A1). Kill the leader process and watch the
// remaining peers elect a replacement — the built-in failure detector
// (internal/health) declares the silent leader Down after a few missed
// heartbeats and campaigns immediately instead of waiting out the full
// U(T, 2T) timeout. With -debug-addr set, /debug/health serves the
// detector's verdicts and the transport's per-peer circuit states.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/health"
	"repro/internal/raft"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

func main() {
	var (
		id        = flag.Uint64("id", 0, "this node's ID (required, non-zero)")
		peersFlag = flag.String("peers", "", "comma-separated id=host:port list for ALL peers (required)")
		tMs       = flag.Int("t", 150, "election timeout T in ms; timeouts sampled from U(T, 2T)")
		tickMs    = flag.Int("tick", 10, "raft tick interval in ms")
		statePath = flag.String("state", "", "path for durable raft state; enables crash-restart rejoin")
		snapEvery = flag.Int("snapshot", 256, "auto-compact the log after this many applied entries (0: never)")
		debugAddr = flag.String("debug-addr", "", "host:port for the debug HTTP server (/debug/telemetry); empty disables")
	)
	flag.Parse()
	if *id == 0 || *peersFlag == "" {
		flag.Usage()
		os.Exit(2)
	}
	addrs, ids, err := parsePeers(*peersFlag)
	if err != nil {
		log.Fatalf("bad -peers: %v", err)
	}
	if _, ok := addrs[*id]; !ok {
		log.Fatalf("-id %d not present in -peers", *id)
	}

	ticksPerT := *tMs / *tickMs
	if ticksPerT < 3 {
		log.Fatalf("-t %dms must be at least 3 ticks (%dms)", *tMs, 3**tickMs)
	}
	var reg *telemetry.Registry // nil unless -debug-addr: every hook no-ops
	if *debugAddr != "" {
		reg = telemetry.New()
	}
	cfg := raft.Config{
		ID:                *id,
		Peers:             ids,
		ElectionTickMin:   ticksPerT,
		ElectionTickMax:   2 * ticksPerT,
		HeartbeatTick:     maxInt(1, ticksPerT/5),
		SnapshotThreshold: *snapEvery,
		Telemetry:         reg,
	}
	var node *raft.Node
	if *statePath != "" {
		if ps, err := raft.LoadStateFile(*statePath); err == nil {
			node, err = raft.Restore(cfg, ps)
			if err != nil {
				log.Fatalf("restore from %s: %v", *statePath, err)
			}
			log.Printf("restored durable state: term=%d commit=%d log=%d entries",
				ps.Hard.Term, ps.Hard.Commit, len(ps.Log))
		} else if !os.IsNotExist(err) {
			log.Fatalf("load %s: %v", *statePath, err)
		}
	}
	if node == nil {
		var err error
		node, err = raft.NewNode(cfg)
		if err != nil {
			log.Fatal(err)
		}
	}
	tr, err := transport.NewRaftTCP(*id, addrs, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()
	tr.SetTelemetry(reg)
	log.Printf("node %d listening on %s (T=%dms, tick=%dms)", *id, tr.Addr(), *tMs, *tickMs)

	// Failure detector over the co-peers, driven by the same wall clock
	// as live telemetry and fed by transport activity. Its silence
	// thresholds derive from the heartbeat interval: Suspect after 2
	// missed heartbeats, Down after 3.
	var others []uint64
	for _, pid := range ids {
		if pid != *id {
			others = append(others, pid)
		}
	}
	det, err := health.New(others, health.Options{
		TickIntervalUs: int64(cfg.HeartbeatTick) * int64(*tickMs) * 1000,
		Clock:          telemetry.WallClock,
		Telemetry:      reg,
		Owner:          *id,
		OnTransition: func(ht health.Transition) {
			log.Printf("health: peer %d %s -> %s (silent %dms)", ht.Peer, ht.From, ht.To, ht.SinceActivityUs/1000)
			// Down verdicts are only emitted from det.Tick, which runs on
			// the main loop goroutine, so touching the node here is safe.
			if ht.To == health.Down && node.Leader() == ht.Peer && node.State() != raft.Leader {
				log.Printf("health: leader %d is down, campaigning now", ht.Peer)
				node.Campaign()
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Before a first leader is known there is no one whose silence would
	// be meaningful; watch sets follow role changes below.
	det.SetWatch(nil)
	tr.SetActivityFunc(det.Observe)

	if *debugAddr != "" {
		serveDebug(*debugAddr, reg, *id, det, tr)
		log.Printf("telemetry at http://%s/debug/telemetry, health at http://%s/debug/health", *debugAddr, *debugAddr)
	}

	proposeCh := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			if line := strings.TrimSpace(sc.Text()); line != "" {
				proposeCh <- line
			}
		}
	}()

	ticker := time.NewTicker(time.Duration(*tickMs) * time.Millisecond)
	defer ticker.Stop()
	lastState, lastLeader := raft.Follower, raft.None
	for {
		select {
		case <-ticker.C:
			node.Tick()
			det.Tick()
		case m := <-tr.Recv():
			if err := node.Step(m); err != nil {
				log.Printf("step: %v", err)
			}
		case line := <-proposeCh:
			if err := node.Propose([]byte(line)); err != nil {
				log.Printf("propose: %v (leader is node %d)", err, node.Leader())
			}
		}
		rd := node.Ready()
		if *statePath != "" && (len(rd.Messages) > 0 || len(rd.Committed) > 0 || rd.InstalledSnapshot != nil) {
			// Persist before messages hit the wire, as Raft requires.
			if err := node.Persist().SaveFile(*statePath); err != nil {
				log.Printf("persist: %v", err)
			}
		}
		for _, m := range rd.Messages {
			if err := tr.Send(m); err != nil {
				// Message loss is tolerated; raft retries via timeouts.
				continue
			}
		}
		for _, e := range rd.Committed {
			switch e.Type {
			case raft.EntryNormal:
				if len(e.Data) > 0 {
					log.Printf("committed [%d] %q", e.Index, e.Data)
				}
			case raft.EntryConfChange:
				if cc, err := raft.DecodeConfChange(e.Data); err == nil {
					log.Printf("conf change: add=%v node=%d; members now %v", cc.Add, cc.NodeID, node.Members())
				}
			}
		}
		if rd.State != lastState || rd.Leader != lastLeader {
			log.Printf("state=%s term=%d leader=%d", rd.State, rd.Term, rd.Leader)
			lastState, lastLeader = rd.State, rd.Leader
			// Watch sets follow Raft's traffic asymmetry: a leader hears
			// from everyone (AppendResponses), a follower only from its
			// leader, a candidate from no one in particular.
			det.SetWatch(watchSet(rd.State, *id, rd.Leader, ids))
		}
	}
}

// watchSet picks which peers' silence is meaningful for the given role.
func watchSet(st raft.State, self, leader uint64, ids []uint64) []uint64 {
	switch {
	case st == raft.Leader:
		var others []uint64
		for _, pid := range ids {
			if pid != self {
				others = append(others, pid)
			}
		}
		return others
	case leader != raft.None && leader != self:
		return []uint64{leader}
	default:
		return nil
	}
}

func parsePeers(s string) (map[uint64]string, []uint64, error) {
	addrs := map[uint64]string{}
	var ids []uint64
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, nil, fmt.Errorf("entry %q is not id=host:port", part)
		}
		id, err := strconv.ParseUint(kv[0], 10, 64)
		if err != nil || id == 0 {
			return nil, nil, fmt.Errorf("bad id %q", kv[0])
		}
		if _, dup := addrs[id]; dup {
			return nil, nil, fmt.Errorf("duplicate id %d", id)
		}
		addrs[id] = kv[1]
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, nil, fmt.Errorf("no peers")
	}
	return addrs, ids, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
