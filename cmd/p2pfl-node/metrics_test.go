package main

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// promFamily is one metric family reconstructed by the grammar checker.
type promFamily struct {
	typ     string // counter | gauge | histogram
	hasHelp bool
	samples []promSample
}

type promSample struct {
	name   string // full sample name (may carry _bucket/_sum/_count)
	labels map[string]string
	value  float64
}

func isPromNameStart(r byte) bool {
	return r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
}

func isPromNameRune(r byte) bool {
	return isPromNameStart(r) || (r >= '0' && r <= '9')
}

func validPromName(s string) bool {
	if s == "" || !isPromNameStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isPromNameRune(s[i]) {
			return false
		}
	}
	return true
}

// parsePromText is a hand-rolled checker for the text exposition format
// (version 0.0.4): it validates every line and reconstructs metric
// families, failing on anything a real Prometheus scraper would reject.
func parsePromText(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	families := map[string]*promFamily{}
	get := func(name string) *promFamily {
		f, ok := families[name]
		if !ok {
			f = &promFamily{}
			families[name] = f
		}
		return f
	}

	for lineNo, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !validPromName(name) {
				t.Fatalf("line %d: malformed HELP line %q", lineNo+1, line)
			}
			get(name).hasHelp = true
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || !validPromName(name) {
				t.Fatalf("line %d: malformed TYPE line %q", lineNo+1, line)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: invalid metric type %q", lineNo+1, typ)
			}
			f := get(name)
			if f.typ != "" {
				t.Fatalf("line %d: duplicate TYPE for %q", lineNo+1, name)
			}
			if len(f.samples) > 0 {
				t.Fatalf("line %d: TYPE for %q after its samples", lineNo+1, name)
			}
			f.typ = typ
		case strings.HasPrefix(line, "#"):
			// Bare comments are legal.
		default:
			s := parsePromSample(t, lineNo+1, line)
			base := s.name
			for _, suffix := range []string{"_bucket", "_sum", "_count", "_total"} {
				if trimmed, ok := strings.CutSuffix(base, suffix); ok {
					if _, isFam := families[s.name]; suffix == "_total" && isFam {
						break // counter families are registered with _total
					}
					base = trimmed
					break
				}
			}
			f, ok := families[base]
			if !ok {
				f, ok = families[s.name]
				base = s.name
			}
			if !ok {
				t.Fatalf("line %d: sample %q has no TYPE/HELP family", lineNo+1, s.name)
			}
			f.samples = append(f.samples, s)
		}
	}
	return families
}

func parsePromSample(t *testing.T, lineNo int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	rest := line
	// Metric name.
	i := 0
	for i < len(rest) && isPromNameRune(rest[i]) {
		i++
	}
	s.name = rest[:i]
	if !validPromName(s.name) {
		t.Fatalf("line %d: invalid metric name in %q", lineNo, line)
	}
	rest = rest[i:]
	// Optional label set.
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			t.Fatalf("line %d: unterminated label set in %q", lineNo, line)
		}
		for _, pair := range strings.Split(rest[1:end], ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || !validPromName(k) || strings.Contains(k, ":") {
				t.Fatalf("line %d: malformed label pair %q in %q", lineNo, pair, line)
			}
			unq, err := strconv.Unquote(v)
			if err != nil {
				t.Fatalf("line %d: label value %q not a quoted string: %v", lineNo, v, err)
			}
			s.labels[k] = unq
		}
		rest = rest[end+1:]
	}
	// Value (a space then a float; +Inf/NaN allowed).
	rest = strings.TrimPrefix(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional timestamp
		t.Fatalf("line %d: malformed sample %q", lineNo, line)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		t.Fatalf("line %d: bad sample value %q: %v", lineNo, fields[0], err)
	}
	s.value = v
	return s
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// TestDebugMetricsGolden pins the Prometheus exposition of the pinned
// registry to a golden file and validates it against the hand-rolled
// text-format grammar: HELP/TYPE before samples, valid names and label
// syntax, cumulative histogram buckets, +Inf bucket equal to _count.
func TestDebugMetricsGolden(t *testing.T) {
	srv := httptest.NewServer(newDebugMux(populatedRegistry(), 1, nil, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.PrometheusContentType {
		t.Errorf("Content-Type = %q, want %q", ct, telemetry.PrometheusContentType)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with `go test -run Golden -update ./cmd/p2pfl-node`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("/debug/metrics drifted from golden exposition\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	families := parsePromText(t, string(got))
	lintPromFamilies(t, families)

	// Spot-check the pinned registry's content survived the mapping.
	cnt, ok := families["p2pfl_raft_elections_won_total"]
	if !ok || cnt.typ != "counter" || len(cnt.samples) != 1 || cnt.samples[0].value != 3 {
		t.Errorf("p2pfl_raft_elections_won_total family wrong: %+v", cnt)
	}
	hist, ok := families["p2pfl_sac_phase_share_us"]
	if !ok || hist.typ != "histogram" {
		t.Fatalf("p2pfl_sac_phase_share_us family missing or wrong type: %+v", hist)
	}
	checkHistogramShape(t, "p2pfl_sac_phase_share_us", hist)
}

// checkHistogramShape asserts cumulative buckets: values non-decreasing
// in le order, a +Inf bucket present and equal to _count.
func checkHistogramShape(t *testing.T, name string, f *promFamily) {
	t.Helper()
	var count float64
	haveCount := false
	var prev float64
	var lastLe float64 = -1
	sawInf := false
	var infVal float64
	for _, s := range f.samples {
		switch s.name {
		case name + "_count":
			count, haveCount = s.value, true
		case name + "_bucket":
			le, ok := s.labels["le"]
			if !ok {
				t.Fatalf("%s_bucket sample without le label", name)
			}
			if le == "+Inf" {
				sawInf, infVal = true, s.value
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("%s_bucket le=%q not a float: %v", name, le, err)
			}
			if bound <= lastLe {
				t.Errorf("%s buckets out of order: le=%v after le=%v", name, bound, lastLe)
			}
			if s.value < prev {
				t.Errorf("%s buckets not cumulative: %v after %v", name, s.value, prev)
			}
			prev, lastLe = s.value, bound
		}
	}
	if !haveCount {
		t.Fatalf("%s has no _count sample", name)
	}
	if !sawInf {
		t.Fatalf("%s has no +Inf bucket", name)
	}
	if infVal != count {
		t.Errorf("%s +Inf bucket %v != _count %v", name, infVal, count)
	}
	if prev > count {
		t.Errorf("%s largest finite bucket %v exceeds _count %v", name, prev, count)
	}
}

// lintPromFamilies is the promtool-style naming lint: every family has
// HELP and TYPE, counter families end in _total, non-counters do not,
// names stay in the conventional lowercase charset with the p2pfl
// namespace, and histogram reserved suffixes are not abused.
func lintPromFamilies(t *testing.T, families map[string]*promFamily) {
	t.Helper()
	for name, f := range families {
		if f.typ == "" {
			t.Errorf("lint: family %q has samples but no TYPE", name)
			continue
		}
		if !f.hasHelp {
			t.Errorf("lint: family %q has no HELP", name)
		}
		if !strings.HasPrefix(name, "p2pfl_") {
			t.Errorf("lint: family %q outside the p2pfl namespace", name)
		}
		if strings.ToLower(name) != name {
			t.Errorf("lint: family %q is not lowercase", name)
		}
		switch f.typ {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				t.Errorf("lint: counter %q does not end in _total", name)
			}
		case "gauge", "histogram":
			if strings.HasSuffix(name, "_total") {
				// promtool lints this as a warning, not an error: a gauge
				// legitimately named "…_weight_total" (a summed quantity,
				// not a monotone count) is allowed through.
				t.Logf("lint warning: %s %q ends in _total", f.typ, name)
			}
		}
		if f.typ != "histogram" {
			for _, s := range f.samples {
				if strings.HasSuffix(s.name, "_bucket") {
					t.Errorf("lint: non-histogram %q emits _bucket sample %q", name, s.name)
				}
			}
		}
		if len(f.samples) == 0 {
			t.Errorf("lint: family %q has metadata but no samples", name)
		}
		for _, s := range f.samples {
			for k := range s.labels {
				if strings.HasPrefix(k, "__") {
					t.Errorf("lint: label %q on %q uses the reserved __ prefix", k, s.name)
				}
			}
		}
	}
}
