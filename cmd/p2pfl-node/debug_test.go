package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/health"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// populatedRegistry builds a registry on a fixed clock exercising every
// element of the exposition schema: counters, a gauge, a histogram with
// an overflow observation, and trace events with and without fields.
func populatedRegistry() *telemetry.Registry {
	reg := telemetry.New()
	reg.SetClock(func() int64 { return 1234567 })
	reg.Counter("raft/elections_won").Add(3)
	reg.Counter("transport/msgs_sent").Add(42)
	reg.Gauge("round/fedavg_weight_total").Set(0.75)
	h := reg.Histogram("sac/phase_share_us", []float64{100, 1000, 10000})
	h.Observe(50)
	h.Observe(500)
	h.Observe(99999) // overflow bucket
	reg.Trace("raft/leader_elected", 2, 0, telemetry.F("term", 4))
	reg.Trace("round/aggregate", 1, -1)
	return reg
}

// TestDebugTelemetryGolden pins the /debug/telemetry JSON schema to a
// golden file: any change to field names, ordering or layout — the
// exposition contract external scrapers depend on — fails this test
// until the golden is regenerated with -update.
func TestDebugTelemetryGolden(t *testing.T) {
	srv := httptest.NewServer(newDebugMux(populatedRegistry(), 1, nil, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	golden := filepath.Join("testdata", "telemetry.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with `go test -run Golden -update ./cmd/p2pfl-node`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("/debug/telemetry drifted from golden schema\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The document must also be structurally valid for scrapers that
	// parse rather than diff.
	var doc struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]float64
		Histograms map[string]struct {
			Bounds []float64 `json:"bounds"`
			Counts []int64   `json:"counts"`
			Count  int64     `json:"count"`
			Sum    float64   `json:"sum"`
		} `json:"histograms"`
		Trace      []json.RawMessage `json:"trace"`
		TraceTotal int               `json:"trace_total"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("response is not valid JSON: %v", err)
	}
	if doc.Counters["raft/elections_won"] != 3 {
		t.Errorf("counters[raft/elections_won] = %d, want 3", doc.Counters["raft/elections_won"])
	}
	h := doc.Histograms["sac/phase_share_us"]
	if h.Count != 3 || len(h.Counts) != len(h.Bounds)+1 {
		t.Errorf("histogram snapshot malformed: %+v", h)
	}
	if doc.TraceTotal != 2 || len(doc.Trace) != 2 {
		t.Errorf("trace_total = %d with %d events, want 2/2", doc.TraceTotal, len(doc.Trace))
	}
}

// TestDebugHealthEndpoint: /debug/health reports the failure detector's
// verdicts and the transport's circuit states as one JSON document.
func TestDebugHealthEndpoint(t *testing.T) {
	now := int64(0)
	det, err := health.New([]uint64{2, 3}, health.Options{
		TickIntervalUs: 1000,
		Clock:          func() int64 { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := transport.NewRaftTCP(1, map[uint64]string{1: "127.0.0.1:0", 2: "127.0.0.1:1"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// Leave peer 3 silent past the Down threshold so the document shows
	// a non-trivial verdict.
	det.Observe(2)
	now = 5000
	det.Observe(2)
	det.Tick()

	rr := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/debug/health", nil)
	newDebugMux(nil, 1, det, tr).ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rr.Code)
	}
	var doc struct {
		Node     uint64 `json:"node"`
		Detector []struct {
			Peer            uint64 `json:"peer"`
			State           string `json:"state"`
			Watched         bool   `json:"watched"`
			SinceActivityUs int64  `json:"since_activity_us"`
		} `json:"detector"`
		Circuits []struct {
			Peer  uint64 `json:"peer"`
			State string `json:"state"`
		} `json:"circuits"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("response is not valid JSON: %v\n%s", err, rr.Body.Bytes())
	}
	if doc.Node != 1 {
		t.Errorf("node = %d, want 1", doc.Node)
	}
	if len(doc.Detector) != 2 {
		t.Fatalf("detector entries = %d, want 2", len(doc.Detector))
	}
	if doc.Detector[0].Peer != 2 || doc.Detector[0].State != "up" {
		t.Errorf("peer 2 status = %+v, want up", doc.Detector[0])
	}
	if doc.Detector[1].Peer != 3 || doc.Detector[1].State != "down" {
		t.Errorf("peer 3 status = %+v, want down", doc.Detector[1])
	}
	// No sends yet, so no per-peer senders have spun up — the circuit
	// list is present but empty.
	if doc.Circuits == nil {
		t.Error("circuits key missing from document")
	}
}

// TestDebugHealthNilDetector: with no detector or transport wired the
// endpoint still serves a valid empty document.
func TestDebugHealthNilDetector(t *testing.T) {
	rr := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/debug/health", nil)
	newDebugMux(nil, 7, nil, nil).ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rr.Code)
	}
	var doc map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("response is not valid JSON: %v", err)
	}
	for _, key := range []string{"node", "detector", "circuits"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("document missing %q key", key)
		}
	}
}

// TestDebugTelemetryNilRegistry: the handler must serve the canonical
// empty document (not crash, not 500) when built with a nil registry.
func TestDebugTelemetryNilRegistry(t *testing.T) {
	rr := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/debug/telemetry", nil)
	newDebugMux(nil, 1, nil, nil).ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rr.Code)
	}
	var doc map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("nil-registry response is not valid JSON: %v", err)
	}
	for _, key := range []string{"counters", "gauges", "histograms", "trace", "trace_total"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("empty document missing %q key", key)
		}
	}
}
