package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// populatedRegistry builds a registry on a fixed clock exercising every
// element of the exposition schema: counters, a gauge, a histogram with
// an overflow observation, and trace events with and without fields.
func populatedRegistry() *telemetry.Registry {
	reg := telemetry.New()
	reg.SetClock(func() int64 { return 1234567 })
	reg.Counter("raft/elections_won").Add(3)
	reg.Counter("transport/msgs_sent").Add(42)
	reg.Gauge("round/fedavg_weight_total").Set(0.75)
	h := reg.Histogram("sac/phase_share_us", []float64{100, 1000, 10000})
	h.Observe(50)
	h.Observe(500)
	h.Observe(99999) // overflow bucket
	reg.Trace("raft/leader_elected", 2, 0, telemetry.F("term", 4))
	reg.Trace("round/aggregate", 1, -1)
	return reg
}

// TestDebugTelemetryGolden pins the /debug/telemetry JSON schema to a
// golden file: any change to field names, ordering or layout — the
// exposition contract external scrapers depend on — fails this test
// until the golden is regenerated with -update.
func TestDebugTelemetryGolden(t *testing.T) {
	srv := httptest.NewServer(newDebugMux(populatedRegistry()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	golden := filepath.Join("testdata", "telemetry.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with `go test -run Golden -update ./cmd/p2pfl-node`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("/debug/telemetry drifted from golden schema\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The document must also be structurally valid for scrapers that
	// parse rather than diff.
	var doc struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]float64
		Histograms map[string]struct {
			Bounds []float64 `json:"bounds"`
			Counts []int64   `json:"counts"`
			Count  int64     `json:"count"`
			Sum    float64   `json:"sum"`
		} `json:"histograms"`
		Trace      []json.RawMessage `json:"trace"`
		TraceTotal int               `json:"trace_total"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("response is not valid JSON: %v", err)
	}
	if doc.Counters["raft/elections_won"] != 3 {
		t.Errorf("counters[raft/elections_won] = %d, want 3", doc.Counters["raft/elections_won"])
	}
	h := doc.Histograms["sac/phase_share_us"]
	if h.Count != 3 || len(h.Counts) != len(h.Bounds)+1 {
		t.Errorf("histogram snapshot malformed: %+v", h)
	}
	if doc.TraceTotal != 2 || len(doc.Trace) != 2 {
		t.Errorf("trace_total = %d with %d events, want 2/2", doc.TraceTotal, len(doc.Trace))
	}
}

// TestDebugTelemetryNilRegistry: the handler must serve the canonical
// empty document (not crash, not 500) when built with a nil registry.
func TestDebugTelemetryNilRegistry(t *testing.T) {
	rr := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/debug/telemetry", nil)
	newDebugMux(nil).ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rr.Code)
	}
	var doc map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("nil-registry response is not valid JSON: %v", err)
	}
	for _, key := range []string{"counters", "gauges", "histograms", "trace", "trace_total"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("empty document missing %q key", key)
		}
	}
}
