package main

import "testing"

func TestParsePeers(t *testing.T) {
	addrs, ids, err := parsePeers("1=127.0.0.1:9101, 2=127.0.0.1:9102,3=host:9103")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Fatalf("ids = %v", ids)
	}
	if addrs[2] != "127.0.0.1:9102" || addrs[3] != "host:9103" {
		t.Fatalf("addrs = %v", addrs)
	}
}

func TestParsePeersErrors(t *testing.T) {
	cases := []string{
		"",
		"1",
		"x=host:1",
		"0=host:1",
		"1=a:1,1=b:2", // duplicate
	}
	for _, c := range cases {
		if _, _, err := parsePeers(c); err == nil {
			t.Fatalf("want error for %q", c)
		}
	}
}

func TestMaxInt(t *testing.T) {
	if maxInt(2, 3) != 3 || maxInt(5, -1) != 5 {
		t.Fatal("maxInt broken")
	}
}
