// Command p2pfl-benchjson turns `go test -bench` output into versioned
// JSON snapshots and guards against performance regressions:
//
//	go test -run '^$' -bench <tier1> -benchmem ./... | p2pfl-benchjson -write
//	go test -run '^$' -bench <tier1> -benchmem ./... | p2pfl-benchjson -check
//
// -write stores the parsed results as BENCH_<n>.json at the next free
// index (BENCH_1.json, BENCH_2.json, …), stamped with the date, git
// commit, Go version and GOMAXPROCS, so the repo accumulates a
// machine-readable performance history alongside the code.
//
// -check compares the piped results against the latest snapshot and
// exits non-zero if any benchmark present in both regressed in ns/op by
// more than -tolerance (default 20%). Benchmarks only on one side are
// reported but never fail the check, so adding or retiring benchmarks
// doesn't break CI.
//
// -pairs adds same-run ratio checks. Each entry is
//
//	[metric:]A=B[@budget]
//
// The plain form "A=B" asserts ns/op(A) stays within -pair-tolerance
// (default 5%) of ns/op(B) in the CURRENT run. Unlike the snapshot
// comparison, machine-speed drift cancels out, so this is the right
// guard for "instrumented vs uninstrumented" overhead contracts (e.g.
// RaftTickLive=RaftTickNil). "@budget" replaces the implicit 1+tol
// ceiling with an absolute ratio: "EncodeModelWire=EncodeModelGob@0.5"
// demands the wire codec run in at most half the gob time. A metric
// prefix selects what is compared — "allocs:" gates allocs/op instead
// of ns/op, e.g. "allocs:SACRoundAllocsPooled=SACRoundAllocsFresh@0.5"
// demands the pooled round allocate at most half as often, and "bytes:"
// gates B/op — encode benchmarks that b.ReportMetric their frame size as
// B/op turn this into an exact wire-size contract, e.g.
// "bytes:EncodeDeltaQuant8=EncodeDeltaFloat64@0.25". A pair with
// either member missing from the run fails the check — a silently
// skipped gate is a broken gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the on-disk BENCH_<n>.json document.
type Snapshot struct {
	Date       string      `json:"date"`
	GitSHA     string      `json:"git_sha,omitempty"`
	GoVersion  string      `json:"go_version"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkMatMul-4   100   12345 ns/op   678 B/op   9 allocs/op   1.2 acc-%
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parse(r *bufio.Scanner) ([]Benchmark, error) {
	var out []Benchmark
	for r.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(r.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: strings.TrimPrefix(m[1], "Benchmark"), Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[fields[i+1]] = v
			}
		}
		out = append(out, b)
	}
	return out, r.Err()
}

// snapshots returns the existing BENCH_<n>.json files in dir, sorted by
// index, along with the largest index found.
func snapshots(dir string) (paths []string, maxIdx int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	re := regexp.MustCompile(`^BENCH_(\d+)\.json$`)
	idx := map[int]string{}
	var order []int
	for _, e := range entries {
		m := re.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, _ := strconv.Atoi(m[1])
		idx[n] = filepath.Join(dir, e.Name())
		order = append(order, n)
		if n > maxIdx {
			maxIdx = n
		}
	}
	sort.Ints(order)
	for _, n := range order {
		paths = append(paths, idx[n])
	}
	return paths, maxIdx, nil
}

func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func check(latest string, current []Benchmark, tolerance float64) error {
	data, err := os.ReadFile(latest)
	if err != nil {
		return err
	}
	var prev Snapshot
	if err := json.Unmarshal(data, &prev); err != nil {
		return fmt.Errorf("%s: %w", latest, err)
	}
	prevBy := map[string]Benchmark{}
	for _, b := range prev.Benchmarks {
		prevBy[b.Name] = b
	}
	failed := 0
	for _, b := range current {
		p, ok := prevBy[b.Name]
		if !ok {
			fmt.Printf("  new       %-40s %.0f ns/op (no baseline)\n", b.Name, b.NsPerOp)
			continue
		}
		delete(prevBy, b.Name)
		ratio := b.NsPerOp / p.NsPerOp
		status := "ok"
		if ratio > 1+tolerance {
			status = "REGRESSED"
			failed++
		}
		fmt.Printf("  %-9s %-40s %.0f → %.0f ns/op (%+.1f%%)\n",
			status, b.Name, p.NsPerOp, b.NsPerOp, 100*(ratio-1))
	}
	for name := range prevBy {
		fmt.Printf("  missing   %-40s (in %s but not in this run)\n", name, filepath.Base(latest))
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%% vs %s", failed, 100*tolerance, filepath.Base(latest))
	}
	fmt.Printf("no regressions beyond %.0f%% vs %s\n", 100*tolerance, filepath.Base(latest))
	return nil
}

// pairSpec is one parsed -pairs entry: [metric:]A=B[@budget].
type pairSpec struct {
	metric string // "ns" (default), "allocs" or "bytes"
	a, b   string
	budget float64 // max allowed metric(A)/metric(B)
}

// parsePair parses one -pairs entry. defaultBudget applies when no
// explicit @budget is given.
func parsePair(entry string, defaultBudget float64) (pairSpec, error) {
	p := pairSpec{metric: "ns", budget: defaultBudget}
	s := strings.TrimSpace(entry)
	if metric, rest, ok := strings.Cut(s, ":"); ok {
		switch metric {
		case "ns", "allocs", "bytes":
			p.metric = metric
		default:
			return p, fmt.Errorf("bad -pairs entry %q: unknown metric %q (want ns, allocs or bytes)", entry, metric)
		}
		s = rest
	}
	if body, budget, ok := strings.Cut(s, "@"); ok {
		v, err := strconv.ParseFloat(budget, 64)
		if err != nil || v <= 0 {
			return p, fmt.Errorf("bad -pairs entry %q: budget %q is not a positive number", entry, budget)
		}
		p.budget = v
		s = body
	}
	var ok bool
	p.a, p.b, ok = strings.Cut(s, "=")
	if !ok || p.a == "" || p.b == "" {
		return p, fmt.Errorf("bad -pairs entry %q: want [metric:]Name=Baseline[@budget]", entry)
	}
	return p, nil
}

func (p pairSpec) value(b Benchmark) float64 {
	switch p.metric {
	case "allocs":
		return b.AllocsPerOp
	case "bytes":
		return b.BytesPerOp
	}
	return b.NsPerOp
}

// checkPairs enforces same-run ratio contracts parsed from
// "[metric:]A=B[@budget],...": metric(A)/metric(B) must not exceed the
// budget (default 1+tolerance).
func checkPairs(spec string, current []Benchmark, tolerance float64) error {
	byName := map[string]Benchmark{}
	for _, b := range current {
		byName[b.Name] = b
	}
	failed := 0
	for _, entry := range strings.Split(spec, ",") {
		p, err := parsePair(entry, 1+tolerance)
		if err != nil {
			return err
		}
		a, okA := byName[p.a]
		base, okB := byName[p.b]
		if !okA || !okB {
			fmt.Printf("  MISSING   %s=%s: benchmark not in this run\n", p.a, p.b)
			failed++
			continue
		}
		va, vb := p.value(a), p.value(base)
		unit := "ns/op"
		switch p.metric {
		case "allocs":
			unit = "allocs/op"
		case "bytes":
			unit = "B/op"
		}
		if vb == 0 {
			// Ratio is undefined; the contract degenerates to "A must be
			// zero too" (a zero-alloc baseline gates a zero-alloc subject).
			status := "ok"
			if va != 0 {
				status = "EXCEEDED"
				failed++
			}
			fmt.Printf("  %-9s %s=%v vs zero-%s baseline %s\n", status, p.a, va, unit, p.b)
			continue
		}
		ratio := va / vb
		status := "ok"
		if ratio > p.budget {
			status = "EXCEEDED"
			failed++
		}
		fmt.Printf("  %-9s %s / %s = %.3f %s ratio (budget %.3f)\n",
			status, p.a, p.b, ratio, unit, p.budget)
	}
	if failed > 0 {
		return fmt.Errorf("%d pair(s) exceeded their same-run ratio budget", failed)
	}
	return nil
}

func main() {
	var (
		write     = flag.Bool("write", false, "write results to the next free BENCH_<n>.json")
		checkFlag = flag.Bool("check", false, "compare results against the latest BENCH_<n>.json")
		dir       = flag.String("dir", ".", "directory holding BENCH_<n>.json snapshots")
		tolerance = flag.Float64("tolerance", 0.20, "allowed fractional ns/op regression for -check")
		pairs     = flag.String("pairs", "", "same-run ratio contracts 'A=B,C=D' checked with -check")
		pairTol   = flag.Float64("pair-tolerance", 0.05, "allowed fractional ns/op excess of A over B for -pairs")
	)
	flag.Parse()
	if *write == *checkFlag {
		fmt.Fprintln(os.Stderr, "usage: exactly one of -write or -check (benchmark output on stdin)")
		os.Exit(2)
	}

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<20)
	benches, err := parse(scanner)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "no benchmark lines found on stdin")
		os.Exit(1)
	}

	paths, maxIdx, err := snapshots(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *checkFlag {
		if len(paths) == 0 {
			fmt.Fprintf(os.Stderr, "no BENCH_<n>.json snapshot in %s to check against\n", *dir)
			os.Exit(1)
		}
		// Run both checks before exiting so a snapshot regression never
		// hides the pair-gate verdict (and vice versa).
		checkErr := check(paths[len(paths)-1], benches, *tolerance)
		var pairErr error
		if *pairs != "" {
			pairErr = checkPairs(*pairs, benches, *pairTol)
		}
		for _, err := range []error{checkErr, pairErr} {
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
		if checkErr != nil || pairErr != nil {
			os.Exit(1)
		}
		return
	}

	snap := Snapshot{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GitSHA:     gitSHA(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: benches,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	out := filepath.Join(*dir, fmt.Sprintf("BENCH_%d.json", maxIdx+1))
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", out, len(benches))
}
