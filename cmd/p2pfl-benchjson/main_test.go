package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchLines(t *testing.T) {
	in := `goos: linux
BenchmarkRaftTickNil-4   	      10	   1299996 ns/op	 1192000 B/op	   10000 allocs/op
BenchmarkRaftTickLive   	      10	   1216683 ns/op
PASS
`
	benches, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(benches))
	}
	if benches[0].Name != "RaftTickNil" || benches[0].NsPerOp != 1299996 || benches[0].AllocsPerOp != 10000 {
		t.Errorf("first line parsed as %+v", benches[0])
	}
	if benches[1].Name != "RaftTickLive" || benches[1].NsPerOp != 1216683 {
		t.Errorf("second line parsed as %+v", benches[1])
	}
}

func TestCheckPairs(t *testing.T) {
	cur := []Benchmark{
		{Name: "TickNil", NsPerOp: 1000},
		{Name: "TickLive", NsPerOp: 1040},
		{Name: "RoundNil", NsPerOp: 500},
		{Name: "RoundLive", NsPerOp: 600},
	}
	if err := checkPairs("TickLive=TickNil", cur, 0.05); err != nil {
		t.Errorf("4%% overhead within a 5%% budget failed: %v", err)
	}
	if err := checkPairs("RoundLive=RoundNil", cur, 0.05); err == nil {
		t.Error("20% overhead passed a 5% budget")
	}
	if err := checkPairs("TickLive=TickNil,RoundLive=RoundNil", cur, 0.05); err == nil {
		t.Error("one exceeded pair in a list passed")
	}
	// A pair member missing from the run must fail, not silently skip.
	if err := checkPairs("TickLive=Gone", cur, 0.05); err == nil {
		t.Error("missing baseline passed")
	}
	if err := checkPairs("garbage", cur, 0.05); err == nil {
		t.Error("malformed spec passed")
	}
	// A faster instrumented variant is always within budget.
	if err := checkPairs("RoundNil=RoundLive", cur, 0.05); err != nil {
		t.Errorf("ratio < 1 failed: %v", err)
	}
}

func TestCheckPairsBudgetAndMetric(t *testing.T) {
	cur := []Benchmark{
		{Name: "EncWire", NsPerOp: 400, AllocsPerOp: 0, BytesPerOp: 200},
		{Name: "EncGob", NsPerOp: 1000, AllocsPerOp: 50, BytesPerOp: 1000},
		{Name: "Pooled", NsPerOp: 800, AllocsPerOp: 20, BytesPerOp: 900},
		{Name: "Fresh", NsPerOp: 900, AllocsPerOp: 100},
		{Name: "ZeroBase", NsPerOp: 100, AllocsPerOp: 0},
	}
	// Absolute budget: 0.4× passes @0.5, fails @0.3.
	if err := checkPairs("EncWire=EncGob@0.5", cur, 0.05); err != nil {
		t.Errorf("0.4 ratio failed a 0.5 budget: %v", err)
	}
	if err := checkPairs("EncWire=EncGob@0.3", cur, 0.05); err == nil {
		t.Error("0.4 ratio passed a 0.3 budget")
	}
	// allocs metric: 20/100 = 0.2 passes @0.5; 20/50 = 0.4 fails @0.3.
	if err := checkPairs("allocs:Pooled=Fresh@0.5", cur, 0.05); err != nil {
		t.Errorf("0.2 allocs ratio failed a 0.5 budget: %v", err)
	}
	if err := checkPairs("allocs:Pooled=EncGob@0.3", cur, 0.05); err == nil {
		t.Error("0.4 allocs ratio passed a 0.3 budget")
	}
	// Metric prefix without budget keeps the default 1+tol ceiling.
	if err := checkPairs("allocs:EncWire=ZeroBase", cur, 0.05); err != nil {
		t.Errorf("0 vs 0 allocs failed: %v", err)
	}
	if err := checkPairs("allocs:Pooled=ZeroBase", cur, 0.05); err == nil {
		t.Error("nonzero allocs passed against a zero-alloc baseline")
	}
	// bytes metric: 200/1000 = 0.2 passes @0.25; 900/1000 = 0.9 fails it.
	if err := checkPairs("bytes:EncWire=EncGob@0.25", cur, 0.05); err != nil {
		t.Errorf("0.2 bytes ratio failed a 0.25 budget: %v", err)
	}
	if err := checkPairs("bytes:Pooled=EncGob@0.25", cur, 0.05); err == nil {
		t.Error("0.9 bytes ratio passed a 0.25 budget")
	}
	// Mixed list: one bad entry still fails the whole check.
	if err := checkPairs("EncWire=EncGob@0.5,allocs:Pooled=EncGob@0.3", cur, 0.05); err == nil {
		t.Error("list with one exceeded entry passed")
	}
	// Malformed variants.
	for _, bad := range []string{"acc:EncWire=EncGob", "EncWire=EncGob@", "EncWire=EncGob@-1", "ns:=EncGob"} {
		if err := checkPairs(bad, cur, 0.05); err == nil {
			t.Errorf("malformed entry %q passed", bad)
		}
	}
}
