package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchLines(t *testing.T) {
	in := `goos: linux
BenchmarkRaftTickNil-4   	      10	   1299996 ns/op	 1192000 B/op	   10000 allocs/op
BenchmarkRaftTickLive   	      10	   1216683 ns/op
PASS
`
	benches, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(benches))
	}
	if benches[0].Name != "RaftTickNil" || benches[0].NsPerOp != 1299996 || benches[0].AllocsPerOp != 10000 {
		t.Errorf("first line parsed as %+v", benches[0])
	}
	if benches[1].Name != "RaftTickLive" || benches[1].NsPerOp != 1216683 {
		t.Errorf("second line parsed as %+v", benches[1])
	}
}

func TestCheckPairs(t *testing.T) {
	cur := []Benchmark{
		{Name: "TickNil", NsPerOp: 1000},
		{Name: "TickLive", NsPerOp: 1040},
		{Name: "RoundNil", NsPerOp: 500},
		{Name: "RoundLive", NsPerOp: 600},
	}
	if err := checkPairs("TickLive=TickNil", cur, 0.05); err != nil {
		t.Errorf("4%% overhead within a 5%% budget failed: %v", err)
	}
	if err := checkPairs("RoundLive=RoundNil", cur, 0.05); err == nil {
		t.Error("20% overhead passed a 5% budget")
	}
	if err := checkPairs("TickLive=TickNil,RoundLive=RoundNil", cur, 0.05); err == nil {
		t.Error("one exceeded pair in a list passed")
	}
	// A pair member missing from the run must fail, not silently skip.
	if err := checkPairs("TickLive=Gone", cur, 0.05); err == nil {
		t.Error("missing baseline passed")
	}
	if err := checkPairs("garbage", cur, 0.05); err == nil {
		t.Error("malformed spec passed")
	}
	// A faster instrumented variant is always within budget.
	if err := checkPairs("RoundNil=RoundLive", cur, 0.05); err != nil {
		t.Errorf("ratio < 1 failed: %v", err)
	}
}
