GO ?= go

.PHONY: all build vet test race chaos-smoke check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# 30-second deterministic chaos sweep. The start seed is pinned so CI
# failures reproduce locally: any red seed reruns exactly with
#   go run ./cmd/p2pfl-chaos -seed <seed>
chaos-smoke:
	$(GO) run ./cmd/p2pfl-chaos -seed 1 -soak 30s
	$(GO) run ./cmd/p2pfl-chaos -seed 1 -target two-layer -steps 12

check: vet build test race chaos-smoke
