GO ?= go

# Tier-1 benchmarks: the compute hot path (matmul, im2col, one training
# step), the per-client and 15-peer round loops, the aggregation
# engine, the wire/gob checkpoint codecs, and the telemetry overhead
# pairs. `make bench` snapshots them as BENCH_<n>.json; `make
# bench-check` fails on a >20% ns/op regression vs the latest snapshot,
# on an instrumented/nil telemetry pair exceeding its same-run 5%
# overhead budget, or on a wire-pipeline pair missing its absolute
# ratio budget (wire encode ≤ 0.5× gob; pooled SAC round ≤ 0.5× the
# fresh round's allocs/op; int8 delta frame ≤ 0.25× the float64 frame's
# bytes; the parallel Divide kernel allocation-free vs serial).
BENCH_PATTERN := 'BenchmarkMatMul|BenchmarkIm2Col|BenchmarkCol2Im|BenchmarkPaperCNNTrainStep|BenchmarkClientTrainRound|BenchmarkRound15Peers|BenchmarkAggregate|BenchmarkRaftTick|BenchmarkSACRound|BenchmarkRaftTCPSend|BenchmarkEncodeModel|BenchmarkDecodeModelWire|BenchmarkEncodeDelta|BenchmarkDequantize|BenchmarkDivide|BenchmarkMultiLayer|BenchmarkSimSchedule'
BENCH_ARGS := -run '^$$' -bench $(BENCH_PATTERN) -benchmem -benchtime 10x ./...
TELEMETRY_PAIRS := 'RaftTickLive=RaftTickNil,SACRoundLive=SACRoundNil,RaftTCPSendHealthyPeerAsync=RaftTCPSendHealthyPeerSync'
WIRE_PAIRS := 'EncodeModelWire=EncodeModelGob@0.5,allocs:SACRoundAllocsPooled=SACRoundAllocsFresh@0.5'
COMPRESS_PAIRS := 'bytes:EncodeDeltaQuant8=EncodeDeltaFloat64@0.25,allocs:DivideParallel/dim1e6=DivideSerial/dim1e6@1.0'
# Scale-engine pairs: the parallel X-layer aggregation must not allocate
# more than the serial one — the pooled scratch absorbs the fan-out —
# with 0.1% headroom (~12 of ~12k allocs/op) because GC-conditional
# runtime allocations smear strict equality by ±1 alloc; and the
# measured traffic of a real aggregation must equal the Eq. 10 closed
# form exactly (ReportMetric-pinned, gated from both sides).
SCALE_PAIRS := 'allocs:MultiLayerAggregateWorkers4=MultiLayerAggregateSerial@1.001,bytes:MultiLayerBytesMeasured=MultiLayerBytesClosedForm@1.0,bytes:MultiLayerBytesClosedForm=MultiLayerBytesMeasured@1.0'

.PHONY: all build vet test race chaos-smoke check bench bench-check test-telemetry test-health test-wire test-byzantine test-compress test-wan test-churn test-scale

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
	$(GO) run -race ./cmd/p2pfl-chaos -seed 1 -soak 10s
	$(GO) run -race ./cmd/p2pfl-chaos -seed 1 -target two-layer -steps 12
	$(GO) run -race ./cmd/p2pfl-chaos -seed 1 -target two-layer -mix flap -detector -steps 12
	$(GO) run -race ./cmd/p2pfl-chaos -seed 1 -target two-layer -mix byzantine -n 4 -steps 12
	$(GO) run -race ./cmd/p2pfl-chaos -seed 1 -target two-layer -mix churn -steps 12
	$(GO) run -race ./cmd/p2pfl-chaos -wan -seeds 5
	$(GO) run -race ./cmd/p2pfl-chaos -churn -seeds 5

# 30-second deterministic chaos sweep. The start seed is pinned so CI
# failures reproduce locally: any red seed reruns exactly with
#   go run ./cmd/p2pfl-chaos -seed <seed> [-target two-layer -mix flap -detector]
chaos-smoke:
	$(GO) run ./cmd/p2pfl-chaos -seed 1 -soak 30s
	$(GO) run ./cmd/p2pfl-chaos -seed 1 -target two-layer -steps 12
	$(GO) run ./cmd/p2pfl-chaos -seed 1 -target two-layer -mix flap -detector -steps 12
	$(GO) run ./cmd/p2pfl-chaos -seed 1 -target two-layer -mix byzantine -n 4 -steps 12
	$(GO) run ./cmd/p2pfl-chaos -seed 1 -byzantine -steps 12
	$(GO) run ./cmd/p2pfl-chaos -seed 1 -target two-layer -topology wan50 -prevote -checkquorum -steps 12
	$(GO) run ./cmd/p2pfl-chaos -seed 1 -target two-layer -mix churn -steps 12

# WAN/multi-region profile suite under -race: latency topologies, the
# raft pre-vote/check-quorum/lease safety tests, the RTT-driven timeout
# tuner, the WAN-tuned cluster failover bound, and the 20-seed WAN
# stability sweep with its flags-off spurious-election contrast
# (DESIGN.md §13). The sweep also runs standalone via
#   go run ./cmd/p2pfl-chaos -wan -seeds 20 -v
test-wan:
	$(GO) test -race ./internal/simnet/ ./internal/health/
	$(GO) test -race -run 'WAN|PreVote|CheckQuorum|ReadIndex|Tuning|Topology|Jitter|Preset|Metrics' \
		./internal/raft/ ./internal/cluster/ ./internal/chaos/ ./cmd/p2pfl-node/

bench:
	$(GO) test $(BENCH_ARGS) | $(GO) run ./cmd/p2pfl-benchjson -write

bench-check:
	$(GO) test $(BENCH_ARGS) | $(GO) run ./cmd/p2pfl-benchjson -check -pairs $(TELEMETRY_PAIRS),$(WIRE_PAIRS),$(COMPRESS_PAIRS),$(SCALE_PAIRS) -pair-tolerance 0.05

# Telemetry exposition suite under -race: the registry package in
# full, the wired subsystems' counting/determinism regressions, and the
# /debug/telemetry schema golden.
test-telemetry:
	$(GO) test -race ./internal/telemetry/ ./cmd/p2pfl-node/ ./cmd/p2pfl-benchjson/
	$(GO) test -race -run 'Telemetry' \
		./internal/transport/ ./internal/live/ ./internal/cluster/ \
		./internal/chaos/ ./cmd/p2pfl-sim/

# Self-healing suite under -race: the failure detector, the resilient
# transport (circuit breakers, head-of-line regression), and the
# cluster/chaos recovery paths that consume their verdicts.
test-health:
	$(GO) test -race ./internal/health/ ./internal/transport/
	$(GO) test -race -run 'Detector|AutoFedRevive|Degraded|Flapping|HeadOfLine' \
		./internal/cluster/ ./internal/chaos/ ./internal/core/

# Wire-codec suite under -race: the codec itself (golden files, fuzz
# corpus regressions, truncation/corruption rejection, hostile frames),
# the transports that frame with it, the nn checkpoint round-trip/compat
# tests, and the SAC scratch determinism tests that share its pooled
# buffers.
test-wire:
	$(GO) test -race ./internal/wire/ ./internal/transport/ ./internal/nn/ \
		./internal/secretshare/ ./internal/sac/ ./internal/simnet/

# Compression suite under -race: the quantize/top-k kernels (bit
# determinism at any worker count, error bounds), the wire v2 delta
# kinds, the parallel Divide kernel's bit-identity, the opt-in
# transport/core compression paths, and the closed-form byte accounting
# cross-checks (DESIGN.md §12).
test-compress:
	$(GO) test -race ./internal/compress/ ./internal/secretshare/
	$(GO) test -race -run 'Delta|Quant|Sparse|Compress|TopK|DistributionBytes|BlockBytes' \
		./internal/wire/ ./internal/transport/ ./internal/sac/ \
		./internal/core/ ./internal/costmodel/ ./internal/nn/

# Continuous-churn suite under -race: the replicated directory state
# machine, the cluster join/depart/handoff control plane, the departed-
# peer teardown paths (transport RemovePeer, detector Forget, raft
# ConfChange × snapshot × restart), the core reconfiguration seam, the
# closed-form directory/handoff byte accounting, and the chaos churn
# track with its 20-seed acceptance sweep (DESIGN.md §14). The sweep
# also runs standalone via
#   go run ./cmd/p2pfl-chaos -churn -seeds 20 -v
test-churn:
	$(GO) test -race ./internal/directory/
	$(GO) test -race -run 'Churn|AddPeer|Depart|Handoff|Replace|Directory|Forget|RemovePeer|ConfChangeSnapshotRestart|Reconfigure' \
		./internal/cluster/ ./internal/chaos/ ./internal/transport/ \
		./internal/health/ ./internal/raft/ ./internal/core/ ./internal/costmodel/
	$(GO) run -race ./cmd/p2pfl-chaos -churn -seeds 20

# Massive-scale suite: the X-layer engine's scale tiers and parallel
# bit-identity under -race (short mode caps the tier sweep at 2k peers),
# the lazy fleet and telemetry sampling, the elastic split/merge control
# plane and its chaos oracle, then the full 1k/10k/100k tier sweep
# without -race and the real-aggregation byte cross-check against Eq. 10
# (DESIGN.md §15). The tier table also prints standalone via
#   go run ./cmd/p2pfl-bench -multilayer
test-scale:
	$(GO) test -race -short -run 'MultiLayerScale|MultiLayerParallel|MultiLayerBorrow|MultiLayerScratch|MultiLayerOpts|Fleet|Sampler|Shard|Split|Merge|Rebalance' \
		./internal/core/ ./internal/simnet/ ./internal/cluster/ \
		./internal/telemetry/ ./internal/chaos/ ./internal/costmodel/
	$(GO) test -run 'MultiLayerScaleTiers' ./internal/core/
	$(GO) run ./cmd/p2pfl-bench -multilayer
	$(GO) run ./cmd/p2pfl-chaos -shard -seeds 12

# Byzantine adversary suite under -race: robust SAC aggregation (range
# guard, subtotal cross-check, leader audit), its core-layer
# integration, and the chaos oracle's 20-seed deterministic sweep with
# the plain-mean sharpness contrast (DESIGN.md §11).
test-byzantine:
	$(GO) test -race -run 'Byzantine|Guard|Equivocat|PoisonScale|SignFlip|CorruptShares|InflatedSubtotals|HonestWitness|Robust' \
		./internal/sac/ ./internal/core/ ./internal/chaos/

check: vet build test race chaos-smoke
