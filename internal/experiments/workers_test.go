package experiments

import "testing"

// TestRecoveryWorkersDeterministic checks the parallel trial loop of the
// recovery figures: Workers > 1 must reproduce the serial samples
// exactly, because every trial owns a fresh, independently seeded
// simulation and lands at its own index.
func TestRecoveryWorkersDeterministic(t *testing.T) {
	serial, err := Fig10(Params{Rounds: 5, Trials: 4, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig10(Params{Rounds: 5, Trials: 4, Seed: 11, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Rows) != len(par.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(serial.Rows), len(par.Rows))
	}
	for i, row := range serial.Rows {
		prow := par.Rows[i]
		if len(row.Samples) != len(prow.Samples) {
			t.Fatalf("T=%d: sample counts differ", row.TMs)
		}
		for j := range row.Samples {
			if row.Samples[j] != prow.Samples[j] {
				t.Fatalf("T=%d trial %d: %v (serial) vs %v (workers=3)",
					row.TMs, j, row.Samples[j], prow.Samples[j])
			}
		}
	}
}
