package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/raft"
	"repro/internal/simnet"
)

// TimeoutRanges are the paper's four U(T, 2T) follower/candidate timeout
// settings, in milliseconds (Sec. VI-B1: T = 50, 100, 150, 200).
var TimeoutRanges = []int{50, 100, 150, 200}

// RecoveryRow aggregates one timeout setting's trials.
type RecoveryRow struct {
	TMs     int // timeouts sampled from U(T, 2T)
	Stats   metrics.Stats
	Samples []float64 // recovery times in ms
}

// RecoveryResult holds the rows of one of Figs. 10–12.
type RecoveryResult struct {
	Fig   string
	Note  string
	Rows  []RecoveryRow
	Paper map[int]float64 // the paper's reported averages, for reference
}

// Name implements Result.
func (r *RecoveryResult) Name() string { return r.Fig }

// Print implements Result.
func (r *RecoveryResult) Print(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", r.Fig, r.Note)
	fmt.Fprintf(w, "  %-12s %-10s %-62s %s\n", "timeout", "paper avg", "measured (ms)", "")
	for _, row := range r.Rows {
		paper := "-"
		if v, ok := r.Paper[row.TMs]; ok {
			paper = fmt.Sprintf("%.2f ms", v)
		}
		fmt.Fprintf(w, "  %3d–%3d ms   %-10s %s\n", row.TMs, 2*row.TMs, paper, row.Stats)
	}
	// The paper's Figs. 10–12 are per-trial scatter plots; render the
	// distribution of the first and last timeout settings as histograms.
	for _, i := range []int{0, len(r.Rows) - 1} {
		if i < 0 || i >= len(r.Rows) || len(r.Rows[i].Samples) < 10 {
			continue
		}
		row := r.Rows[i]
		h, err := metrics.NewHistogram(row.Stats.Min, row.Stats.Max+1e-9, 10)
		if err != nil {
			continue
		}
		for _, s := range row.Samples {
			h.Add(s)
		}
		fmt.Fprintf(w, "  distribution, U(%d,%d) ms:\n", row.TMs, 2*row.TMs)
		for _, line := range strings.Split(strings.TrimRight(h.Render(32), "\n"), "\n") {
			fmt.Fprintf(w, "    %s\n", line)
		}
	}
}

// recoveryScenario measures one crash-recovery time on a fresh N=25,
// n=5 system (the paper's Sec. VI-B setup). kind selects the scenario:
//
//	"elect":  Fig. 10 — subgroup-leader crash → new subgroup leader.
//	"join":   Fig. 11 — subgroup-leader crash → new leader joined FedAvg.
//	"fedavg": Fig. 12 — FedAvg-leader crash → both layers recovered and
//	          the new subgroup leader joined.
func recoveryScenario(kind string, tMs int, seed int64) (float64, error) {
	return recoveryScenarioAt(kind, tMs, 15, seed)
}

// recoveryScenarioAt is recoveryScenario with an explicit one-way link
// latency in milliseconds (the paper fixes 15 ms; ext5 sweeps it).
func recoveryScenarioAt(kind string, tMs, latencyMs int, seed int64) (float64, error) {
	sys, err := cluster.New(cluster.Options{
		NumSubgroups:    5,
		SubgroupSize:    5,
		ElectionTickMin: tMs,
		ElectionTickMax: 2 * tMs,
		Latency:         simnet.Duration(latencyMs) * simnet.Millisecond,
		Seed:            seed,
	})
	if err != nil {
		return 0, err
	}
	if err := sys.Bootstrap(60 * simnet.Second); err != nil {
		return 0, err
	}
	// Let configuration commits propagate before injecting the fault.
	sys.Sim.RunFor(simnet.Duration(4*tMs) * simnet.Millisecond)

	fed := sys.FedAvgLeader()
	var victim uint64
	var victimSub int
	if kind == "fedavg" {
		victim = fed
		victimSub = sys.Peer(victim).Subgroup
	} else {
		for g := 0; ; g++ {
			if l := sys.SubgroupLeader(g); l != fed && l != raft.None {
				victim, victimSub = l, g
				break
			}
		}
	}
	crashAt := sys.Sim.Now()
	if err := sys.CrashPeer(victim); err != nil {
		return 0, err
	}
	limit := 120 * simnet.Second
	newLeader, electAt, err := sys.WaitSubgroupLeader(victimSub, victim, limit)
	if err != nil {
		return 0, err
	}
	switch kind {
	case "elect":
		return simnet.Duration(electAt - crashAt).Ms(), nil
	case "join", "fedavg":
		joinAt, err := sys.WaitJoined(newLeader, limit)
		if err != nil {
			return 0, err
		}
		return simnet.Duration(joinAt - crashAt).Ms(), nil
	default:
		return 0, fmt.Errorf("experiments: unknown scenario %q", kind)
	}
}

func runRecovery(fig, note, kind string, paper map[int]float64, p Params) (*RecoveryResult, error) {
	p = p.Defaults()
	res := &RecoveryResult{Fig: fig, Note: note, Paper: paper}
	for _, tMs := range TimeoutRanges {
		// Trials are independent simulations with per-trial seeds, so
		// they fan out across p.Workers goroutines; samples land at
		// their trial index, keeping the result order (and therefore the
		// stats and histograms) identical to a serial run.
		samples := make([]float64, p.Trials)
		errs := make([]error, p.Trials)
		runTrial := func(trial int) {
			seed := p.Seed + int64(tMs)*100000 + int64(trial)
			ms, err := recoveryScenario(kind, tMs, seed)
			if err != nil {
				errs[trial] = fmt.Errorf("%s T=%d trial=%d: %w", fig, tMs, trial, err)
				return
			}
			samples[trial] = ms
		}
		workers := p.Workers
		if workers > p.Trials {
			workers = p.Trials
		}
		if workers <= 1 {
			for trial := 0; trial < p.Trials; trial++ {
				runTrial(trial)
			}
		} else {
			trialCh := make(chan int)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for trial := range trialCh {
						runTrial(trial)
					}
				}()
			}
			for trial := 0; trial < p.Trials; trial++ {
				trialCh <- trial
			}
			close(trialCh)
			wg.Wait()
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		res.Rows = append(res.Rows, RecoveryRow{TMs: tMs, Stats: metrics.Summarize(samples), Samples: samples})
	}
	return res, nil
}

// Fig10 measures the time to detect a crashed subgroup leader and elect
// a new one (paper averages: 214.30 / 401.04 / 580.74 / 749.07 ms).
func Fig10(p Params) (*RecoveryResult, error) {
	return runRecovery("fig10",
		"subgroup-leader crash → new subgroup leader elected (N=25, n=5, 15 ms links)",
		"elect",
		map[int]float64{50: 214.30, 100: 401.04, 150: 580.74, 200: 749.07}, p)
}

// Fig11 additionally measures the new leader joining the FedAvg group
// (paper: Fig. 10 averages + 122.98 / 125.8 / 144.70 / 166.09 ms).
func Fig11(p Params) (*RecoveryResult, error) {
	return runRecovery("fig11",
		"subgroup-leader crash → new leader elected and joined FedAvg layer",
		"join",
		map[int]float64{50: 337.28, 100: 526.84, 150: 725.44, 200: 915.16}, p)
}

// Fig12 measures recovery from a FedAvg-leader crash: elections in both
// layers plus the FedAvg-group rebuild.
func Fig12(p Params) (*RecoveryResult, error) {
	return runRecovery("fig12",
		"FedAvg-leader crash → both layers recovered, new subgroup leader joined",
		"fedavg",
		map[int]float64{50: 432.35, 100: 641.49, 150: 855.74, 200: 1073.69}, p)
}
