package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReport(&buf, []string{"tab1", "ext1"}, tiny); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# Experiment report", "## tab1", "## ext1", "```"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out[:min(400, len(out))])
		}
	}
}

func TestWriteReportUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReport(&buf, []string{"nope"}, tiny); err == nil {
		t.Fatal("want error for unknown experiment")
	}
}

func TestFenceWriterEscapes(t *testing.T) {
	var buf bytes.Buffer
	fw := &fenceWriter{w: &buf}
	n, err := fw.Write([]byte("a ``` b"))
	if err != nil || n != 7 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if strings.Contains(buf.String(), "```") {
		t.Fatal("fence not escaped")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
