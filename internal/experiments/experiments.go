// Package experiments contains one driver per table and figure of the
// paper's evaluation (Sec. VI) and analysis (Sec. VII). Each driver
// returns a printable result and is shared by the CLI
// (cmd/p2pfl-experiments) and the benchmark harness (bench_test.go).
//
// Scale knobs: the paper trains the 1.25M-parameter CNN for 1000 rounds
// and runs 1000 recovery trials. Params lets CI-scale runs use the same
// code paths at reduced rounds/trials; the communication-cost figures
// (13, 14) are exact at any scale because they combine closed forms with
// byte-accounted aggregation runs.
package experiments

import (
	"fmt"
	"io"
	"runtime"
)

// Params scales the experiment drivers.
type Params struct {
	// Rounds of federated training for Figs. 6–9 (paper: 1000).
	Rounds int
	// PeersScale optionally overrides nothing for Figs. 6–9 (the peer
	// counts are fixed by the paper) but bounds the Fig. 14 sweep.
	MaxN int
	// Trials per timeout setting for Figs. 10–12 (paper: 1000).
	Trials int
	// Workers bounds concurrency inside the drivers: recovery trials
	// (Figs. 10–12) run Workers simulations at a time, and the training
	// figures pass it through to core.TrainerConfig.Workers. Every
	// driver is deterministic at any worker count — trials and clients
	// are independently seeded and reduced in index order. 0 defaults
	// to GOMAXPROCS.
	Workers int
	// Seed makes every driver deterministic.
	Seed int64
}

// Defaults fills zero fields with CI-scale values.
func (p Params) Defaults() Params {
	if p.Rounds <= 0 {
		p.Rounds = 120
	}
	if p.Trials <= 0 {
		p.Trials = 100
	}
	if p.MaxN <= 0 {
		p.MaxN = 50
	}
	if p.Workers <= 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	return p
}

// Result is a printable experiment outcome.
type Result interface {
	// Name returns the table/figure identifier (e.g. "fig10").
	Name() string
	// Print renders the paper-style rows.
	Print(w io.Writer)
}

// Table1 reports the evaluation environment, standing in for the paper's
// Table I (machine specification).
type Table1Result struct {
	GoVersion string
	OS, Arch  string
	CPUs      int
}

// Table1 collects the runtime environment.
func Table1() *Table1Result {
	return &Table1Result{
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
}

// Name implements Result.
func (r *Table1Result) Name() string { return "tab1" }

// Print implements Result.
func (r *Table1Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table I — evaluation environment (this reproduction)")
	fmt.Fprintf(w, "  Go        %s\n", r.GoVersion)
	fmt.Fprintf(w, "  OS/Arch   %s/%s\n", r.OS, r.Arch)
	fmt.Fprintf(w, "  CPUs      %d\n", r.CPUs)
	fmt.Fprintln(w, "  Network   discrete-event simulation, 15 ms one-way latency")
	fmt.Fprintln(w, "  Datasets  synthetic MNIST/CIFAR-10 substitutes (see DESIGN.md §3)")
}
