package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/costmodel"
)

// CostRow is one point of a communication-cost figure.
type CostRow struct {
	Label string
	// Units is the analytic cost in multiples of |w|.
	Units int64
	// Gb is the analytic cost for the paper's CNN (1.25M params, 32-bit).
	Gb float64
	// MeasuredUnits is the byte-accounted cost of an actual aggregation
	// run divided by the model size in bytes (−1 when not measured).
	MeasuredUnits float64
}

// CostResult holds the rows of Fig. 13 or Fig. 14.
type CostResult struct {
	Fig  string
	Note string
	Rows []CostRow
}

// Name implements Result.
func (r *CostResult) Name() string { return r.Fig }

// Print implements Result.
func (r *CostResult) Print(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", r.Fig, r.Note)
	fmt.Fprintf(w, "  %-24s %12s %12s %16s\n", "setting", "units (|w|)", "Gb (paper CNN)", "measured units")
	for _, row := range r.Rows {
		measured := "-"
		if row.MeasuredUnits >= 0 {
			measured = fmt.Sprintf("%.2f", row.MeasuredUnits)
		}
		fmt.Fprintf(w, "  %-24s %12d %12.2f %16s\n", row.Label, row.Units, row.Gb, measured)
	}
}

// paperWeightBytes is |w| for the paper's CNN at 32-bit floats.
var paperWeightBytes = costmodel.WeightBytes(costmodel.PaperCNNParams, costmodel.BytesPerParam32)

// measureUnits runs one real two-layer aggregation over byte-counting
// transports with a small weight vector and converts the traffic to |w|
// units.
func measureUnits(sizes []int, k int, seed int64) (float64, error) {
	dim := 16
	cfg := core.Config{Sizes: sizes}
	if k > 0 {
		cfg.K = []int{k}
	}
	sys, err := core.NewSystem(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		return 0, err
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	rng := rand.New(rand.NewSource(seed + 1))
	models := make([][]float64, total)
	for i := range models {
		m := make([]float64, dim)
		for j := range m {
			m[j] = rng.NormFloat64()
		}
		models[i] = m
	}
	res, err := sys.Aggregate(models, nil, nil)
	if err != nil {
		return 0, err
	}
	return float64(res.Bytes) / float64(8*dim), nil
}

// measureBaselineUnits measures the one-layer SAC cost in |w| units.
func measureBaselineUnits(n int, seed int64) (float64, error) {
	dim := 16
	sys, err := core.NewSystem(core.Config{Sizes: []int{n}}, rand.New(rand.NewSource(seed)))
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	models := make([][]float64, n)
	for i := range models {
		m := make([]float64, dim)
		for j := range m {
			m[j] = rng.NormFloat64()
		}
		models[i] = m
	}
	res, err := sys.BaselineAggregate(models)
	if err != nil {
		return 0, err
	}
	return float64(res.Bytes) / float64(8*dim), nil
}

// Fig13 sweeps the number of subgroups m for N = 30 peers (n-out-of-n
// sharing) and reports total communication per aggregation. m = 1 is the
// original one-layer SAC; m = N is plain FedAvg without SAC.
func Fig13(p Params) (*CostResult, error) {
	p = p.Defaults()
	res := &CostResult{
		Fig:  "fig13",
		Note: "total communication per aggregation vs. m (N=30, paper CNN |w| ≈ 0.04 Gb)",
	}
	const N = 30
	for m := 1; m <= N; m++ {
		var units int64
		var measured float64 = -1
		if m == 1 {
			u, err := costmodel.BaselineUnits(N)
			if err != nil {
				return nil, err
			}
			units = u
			mu, err := measureBaselineUnits(N, p.Seed)
			if err != nil {
				return nil, err
			}
			measured = mu
		} else {
			sizes, err := core.SplitPeers(N, m)
			if err != nil {
				return nil, err
			}
			units, err = costmodel.TwoLayerUnevenUnits(sizes)
			if err != nil {
				return nil, err
			}
			mu, err := measureUnits(sizes, 0, p.Seed+int64(m))
			if err != nil {
				return nil, err
			}
			measured = mu
		}
		res.Rows = append(res.Rows, CostRow{
			Label:         fmt.Sprintf("m=%d", m),
			Units:         units,
			Gb:            costmodel.Gigabits(units * paperWeightBytes),
			MeasuredUnits: measured,
		})
	}
	return res, nil
}

// Fig14 compares k-out-of-n settings across N: the paper's 3-3, 2-3,
// 5-5, 3-5 curves plus the one-layer baseline (n = N).
func Fig14(p Params) (*CostResult, error) {
	p = p.Defaults()
	res := &CostResult{
		Fig:  "fig14",
		Note: "total communication per aggregation for k-n settings (k-out-of-n, paper CNN |w|)",
	}
	type setting struct {
		label string
		n, k  int
	}
	settings := []setting{
		{"3-3 (n=3, k=3)", 3, 3},
		{"2-3 (n=3, k=2)", 3, 2},
		{"5-5 (n=5, k=5)", 5, 5},
		{"3-5 (n=5, k=3)", 5, 3},
	}
	for N := 10; N <= p.MaxN; N += 10 {
		for _, st := range settings {
			m := (N + st.n - 1) / st.n
			sizes, err := core.SplitPeers(N, m)
			if err != nil {
				return nil, err
			}
			units, err := costmodel.TwoLayerUnevenKNUnits(sizes, st.k)
			if err != nil {
				return nil, err
			}
			var measured float64 = -1
			if N <= 30 {
				measured, err = measureUnits(sizes, st.k, p.Seed+int64(N))
				if err != nil {
					return nil, err
				}
			}
			res.Rows = append(res.Rows, CostRow{
				Label:         fmt.Sprintf("N=%d %s", N, st.label),
				Units:         units,
				Gb:            costmodel.Gigabits(units * paperWeightBytes),
				MeasuredUnits: measured,
			})
		}
		baseUnits, err := costmodel.BaselineUnits(N)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, CostRow{
			Label:         fmt.Sprintf("N=%d baseline (n=N)", N),
			Units:         baseUnits,
			Gb:            costmodel.Gigabits(baseUnits * paperWeightBytes),
			MeasuredUnits: -1,
		})
	}
	return res, nil
}
