package experiments

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/dataset"
)

// Ext6CompressionCurve sweeps the accuracy-vs-bytes trade-off of the
// compressed model-delta extension (internal/compress): every setting
// trains the same workload on identical data and model seeds (N=10
// two-layer IID, as Fig. 6), varying only Config.Compression across
// quantization widths and top-k fractions. The "none" row is the exact
// reference; compressed rows shrink the FedAvg-layer traffic (SAC
// shares stay at the 8·dim unit) at a lossy-distribution accuracy cost.
func Ext6CompressionCurve(p Params) (*AccuracyResult, error) {
	p = p.Defaults()
	res := &AccuracyResult{
		Fig:  "ext6",
		Note: "extension: accuracy vs. bytes under compressed model distribution (quant width × top-k fraction; N=10 two-layer IID, equal seeds)",
	}
	spec, factory, flat := accuracyWorkload(10, p.Seed)
	for _, cc := range []compress.Config{
		{},
		{Scheme: compress.Quant16},
		{Scheme: compress.Quant8},
		{Scheme: compress.TopK, Frac: 0.25},
		{Scheme: compress.TopKQuant16, Frac: 0.25},
		{Scheme: compress.TopKQuant8, Frac: 0.25},
		{Scheme: compress.TopKQuant8, Frac: 0.1},
	} {
		label := cc.Scheme.String()
		if cc.Frac > 0 {
			label = fmt.Sprintf("%s k=%.0f%%", cc.Scheme, 100*cc.Frac)
		}
		cfg := core.TrainerConfig{
			Core:         core.Config{Sizes: []int{4, 3, 3}, Compression: cc},
			Model:        factory,
			Flat:         flat,
			Data:         spec,
			Dist:         dataset.IID,
			Rounds:       p.Rounds,
			EvalEvery:    maxInt(1, p.Rounds/25),
			LearningRate: 2e-3,
			BatchSize:    50,
			Workers:      p.Workers,
			Seed:         p.Seed + 1,
			DataSeed:     p.Seed,
		}
		series, err := core.RunTraining(cfg)
		if err != nil {
			return nil, fmt.Errorf("ext6 %s: %w", label, err)
		}
		lossMA := core.MovingAverage(series.TrainLoss, 5)
		res.Rows = append(res.Rows, AccuracyRow{
			Setting:     label,
			Dist:        dataset.IID,
			Series:      series,
			FinalAcc:    series.FinalAcc(),
			FinalLossMA: lossMA[len(lossMA)-1],
			Bytes:       series.Bytes[len(series.Bytes)-1],
		})
	}
	return res, nil
}
