package experiments

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"testing"
)

func readCSV(t *testing.T, path string) [][]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestAccuracyCSV(t *testing.T) {
	dir := t.TempDir()
	res, err := Fig6(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	rows := readCSV(t, filepath.Join(dir, "fig6.csv"))
	if len(rows) < 2 {
		t.Fatal("no data rows")
	}
	if rows[0][0] != "setting" || len(rows[0]) != 6 {
		t.Fatalf("header = %v", rows[0])
	}
	// 9 settings × number of eval points.
	evals := len(res.Rows[0].Series.Round)
	if want := 1 + 9*evals; len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
}

func TestRecoveryCSV(t *testing.T) {
	dir := t.TempDir()
	res, err := Fig10(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	rows := readCSV(t, filepath.Join(dir, "fig10.csv"))
	if want := 1 + 4*tiny.Trials; len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
}

func TestCostCSV(t *testing.T) {
	dir := t.TempDir()
	res, err := Fig13(Params{Seed: 1}.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	rows := readCSV(t, filepath.Join(dir, "fig13.csv"))
	if len(rows) != 31 { // header + m=1..30
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestCSVBadDir(t *testing.T) {
	res := &CostResult{Fig: "figX"}
	if err := res.WriteCSV("/proc/definitely/not/writable"); err == nil {
		t.Fatal("want error for unwritable dir")
	}
}
