package experiments

import (
	"fmt"
	"sort"
)

// runners maps experiment names to their drivers. Extension experiments
// (ext*) explore the features this reproduction adds beyond the paper's
// evaluation; see EXPERIMENTS.md.
var runners = map[string]func(Params) (Result, error){
	"tab1":  func(Params) (Result, error) { return Table1(), nil },
	"fig6":  func(p Params) (Result, error) { return Fig6(p) },
	"fig7":  func(p Params) (Result, error) { return Fig7(p) },
	"fig8":  func(p Params) (Result, error) { return Fig8(p) },
	"fig9":  func(p Params) (Result, error) { return Fig9(p) },
	"fig10": func(p Params) (Result, error) { return Fig10(p) },
	"fig11": func(p Params) (Result, error) { return Fig11(p) },
	"fig12": func(p Params) (Result, error) { return Fig12(p) },
	"fig13": func(p Params) (Result, error) { return Fig13(p) },
	"fig14": func(p Params) (Result, error) { return Fig14(p) },
	"ext1":  func(p Params) (Result, error) { return Ext1SecureUpperCost(p) },
	"ext2":  func(p Params) (Result, error) { return Ext2DPUtility(p) },
	"ext3":  func(p Params) (Result, error) { return Ext3RobustAggregation(p) },
	"ext4":  func(p Params) (Result, error) { return Ext4RoundTime(p) },
	"ext5":  func(p Params) (Result, error) { return Ext5LatencySweep(p) },
	"ext6":  func(p Params) (Result, error) { return Ext6CompressionCurve(p) },
}

// Names lists all registered experiments in order.
func Names() []string {
	out := make([]string, 0, len(runners))
	for name := range runners {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by name.
func Run(name string, p Params) (Result, error) {
	r, ok := runners[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r(p)
}
