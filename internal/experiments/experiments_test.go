package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tiny keeps CI runtime low; the CLI uses larger defaults.
var tiny = Params{Rounds: 10, Trials: 2, MaxN: 20, Seed: 1}

func TestDefaults(t *testing.T) {
	p := Params{}.Defaults()
	if p.Rounds <= 0 || p.Trials <= 0 || p.MaxN <= 0 {
		t.Fatalf("defaults not filled: %+v", p)
	}
	// Explicit values survive.
	p = Params{Rounds: 7, Trials: 3, MaxN: 10}.Defaults()
	if p.Rounds != 7 || p.Trials != 3 || p.MaxN != 10 {
		t.Fatalf("defaults overwrote explicit values: %+v", p)
	}
}

func TestTable1(t *testing.T) {
	r := Table1()
	if r.Name() != "tab1" {
		t.Fatal("name wrong")
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Go") {
		t.Fatalf("table1 output: %s", buf.String())
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := Fig6(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name() != "fig6" {
		t.Fatal("name wrong")
	}
	if len(res.Rows) != 9 { // 3 settings × 3 distributions
		t.Fatalf("rows = %d, want 9", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.FinalAcc < 0 || row.FinalAcc > 1 {
			t.Fatalf("accuracy out of range: %+v", row)
		}
		if row.Bytes <= 0 {
			t.Fatalf("no traffic recorded: %+v", row)
		}
		if len(row.Series.Round) == 0 {
			t.Fatal("empty series")
		}
	}
	// Two-layer must use less traffic than the baseline at equal rounds.
	var twoLayer, baseline int64
	for _, row := range res.Rows {
		if row.Dist.String() != "IID" {
			continue
		}
		if strings.HasPrefix(row.Setting, "two-layer n=3") {
			twoLayer = row.Bytes
		}
		if strings.HasPrefix(row.Setting, "baseline") {
			baseline = row.Bytes
		}
	}
	if twoLayer == 0 || baseline == 0 || twoLayer >= baseline {
		t.Fatalf("traffic: two-layer %d vs baseline %d", twoLayer, baseline)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "fig6") {
		t.Fatal("print missing header")
	}
}

func TestFig7And9AreViews(t *testing.T) {
	r7, err := Fig7(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if r7.Name() != "fig7" {
		t.Fatal("fig7 name")
	}
	r9, err := Fig9(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if r9.Name() != "fig9" {
		t.Fatal("fig9 name")
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := Fig8(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 { // 2 fractions × 3 distributions
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
}

func TestFig10Recovery(t *testing.T) {
	res, err := Fig10(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 timeout settings", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row.Stats.N != tiny.Trials {
			t.Fatalf("row %d: %d samples", i, row.Stats.N)
		}
		// Recovery cannot be faster than the minimum follower timeout.
		if row.Stats.Min < float64(row.TMs) {
			t.Fatalf("T=%d: min recovery %.1f ms below timeout", row.TMs, row.Stats.Min)
		}
	}
	// The paper's headline trend: larger timeouts → slower recovery.
	if res.Rows[0].Stats.Mean >= res.Rows[3].Stats.Mean {
		t.Fatalf("recovery time must grow with timeout: %v vs %v",
			res.Rows[0].Stats.Mean, res.Rows[3].Stats.Mean)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "paper avg") {
		t.Fatal("print missing paper reference")
	}
}

func TestFig11JoinSlowerThanElect(t *testing.T) {
	elect, err := Fig10(tiny)
	if err != nil {
		t.Fatal(err)
	}
	join, err := Fig11(tiny)
	if err != nil {
		t.Fatal(err)
	}
	// Joining the FedAvg layer includes the election, so it takes
	// longer on average at every timeout setting.
	for i := range elect.Rows {
		if join.Rows[i].Stats.Mean <= elect.Rows[i].Stats.Mean {
			t.Fatalf("T=%d: join %.1f ms not above elect %.1f ms",
				elect.Rows[i].TMs, join.Rows[i].Stats.Mean, elect.Rows[i].Stats.Mean)
		}
	}
}

func TestFig12FedAvgCrash(t *testing.T) {
	res, err := Fig12(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Stats.Mean <= 0 {
			t.Fatalf("T=%d: non-positive recovery", row.TMs)
		}
	}
}

func TestFig13ShapeAndCrossValidation(t *testing.T) {
	res, err := Fig13(Params{Seed: 2}.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 30 {
		t.Fatalf("rows = %d, want 30 (m=1..30)", len(res.Rows))
	}
	// Measured units must equal analytic units (± the one metadata-free
	// design: they are exactly equal).
	for _, row := range res.Rows {
		if row.MeasuredUnits >= 0 && row.MeasuredUnits != float64(row.Units) {
			t.Fatalf("%s: measured %.2f != analytic %d", row.Label, row.MeasuredUnits, row.Units)
		}
	}
	// Paper shape: m=6 ≈ 7.12 Gb, about one-tenth of m=1.
	var m1, m6 float64
	for _, row := range res.Rows {
		if row.Label == "m=1" {
			m1 = row.Gb
		}
		if row.Label == "m=6" {
			m6 = row.Gb
		}
	}
	if m6 < 6.5 || m6 > 7.8 {
		t.Fatalf("m=6 cost = %.2f Gb, want ≈ 7.12", m6)
	}
	if r := m1 / m6; r < 8 || r > 12 {
		t.Fatalf("m=1/m=6 ratio = %.2f, want ≈ 10", r)
	}
}

func TestFig14ShapeAndHeadline(t *testing.T) {
	res, err := Fig14(Params{Seed: 3, MaxN: 30}.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	// 3 N values × (4 settings + baseline) = 15 rows.
	if len(res.Rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(res.Rows))
	}
	byLabel := map[string]CostRow{}
	for _, row := range res.Rows {
		byLabel[row.Label] = row
	}
	// Headline: at N=30 the 2-3 setting is ≈10.36× below the baseline.
	two := byLabel["N=30 2-3 (n=3, k=2)"]
	base := byLabel["N=30 baseline (n=N)"]
	if two.Units == 0 || base.Units == 0 {
		t.Fatalf("missing rows: %v", byLabel)
	}
	ratio := float64(base.Units) / float64(two.Units)
	if ratio < 10.0 || ratio > 10.7 {
		t.Fatalf("N=30 2-3 reduction = %.2f, want ≈ 10.36", ratio)
	}
	// Fault tolerance costs more: k<n is above k=n at every N.
	for _, N := range []string{"N=10", "N=20", "N=30"} {
		kn := byLabel[N+" 2-3 (n=3, k=2)"]
		nn := byLabel[N+" 3-3 (n=3, k=3)"]
		if kn.Units <= nn.Units {
			t.Fatalf("%s: k-out-of-n (%d) not above n-out-of-n (%d)", N, kn.Units, nn.Units)
		}
	}
	// Measured equals analytic where measured.
	for _, row := range res.Rows {
		if row.MeasuredUnits >= 0 && row.MeasuredUnits != float64(row.Units) {
			t.Fatalf("%s: measured %.2f != analytic %d", row.Label, row.MeasuredUnits, row.Units)
		}
	}
}
