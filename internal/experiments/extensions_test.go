package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryNamesAndRun(t *testing.T) {
	names := Names()
	if len(names) != 16 {
		t.Fatalf("registered %d experiments: %v", len(names), names)
	}
	res, err := Run("tab1", tiny)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name() != "tab1" {
		t.Fatal("wrong result")
	}
	if _, err := Run("nope", tiny); err == nil {
		t.Fatal("want error for unknown experiment")
	}
}

func TestExt1SecureUpperCost(t *testing.T) {
	res, err := Ext1SecureUpperCost(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 { // 6 m values × 2 variants
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Secure upper always costs at least as much as plain.
	for i := 0; i < len(res.Rows); i += 2 {
		plain, secure := res.Rows[i], res.Rows[i+1]
		if secure.Units < plain.Units {
			t.Fatalf("%s (%d) cheaper than %s (%d)", secure.Label, secure.Units, plain.Label, plain.Units)
		}
	}
}

func TestExt2DPUtility(t *testing.T) {
	res, err := Ext2DPUtility(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].Setting != "no DP" {
		t.Fatalf("first row = %q", res.Rows[0].Setting)
	}
	// The strongest privacy (last row) must not beat no-DP by much; on
	// tiny runs noise dominates, so just require valid accuracies.
	for _, row := range res.Rows {
		if row.FinalAcc < 0 || row.FinalAcc > 1 {
			t.Fatalf("accuracy out of range: %+v", row)
		}
	}
}

func TestExt3RobustAggregation(t *testing.T) {
	res, err := Ext3RobustAggregation(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Data) != 3 {
		t.Fatalf("rows = %d", len(res.Data))
	}
	dev := func(i int) float64 {
		v, err := strconv.ParseFloat(res.Data[i][1], 64)
		if err != nil {
			t.Fatalf("bad deviation %q", res.Data[i][1])
		}
		return v
	}
	// FedAvg is corrupted by the poisoned subgroup; median/trimmed are not.
	if dev(0) < 1e4 {
		t.Fatalf("fedavg deviation %v should be huge", dev(0))
	}
	if dev(1) > 10 || dev(2) > 10 {
		t.Fatalf("robust rules leaked the poison: %v / %v", dev(1), dev(2))
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "coordinate-median") {
		t.Fatal("print missing rows")
	}
}

func TestRecoveryPrintIncludesDistribution(t *testing.T) {
	res, err := Fig10(Params{Rounds: 5, Trials: 12, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "distribution") {
		t.Fatal("print missing histogram section")
	}
}
