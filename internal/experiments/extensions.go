package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dataset"
	"repro/internal/dp"
	"repro/internal/fl"
	"repro/internal/metrics"
)

// Ext1SecureUpperCost quantifies the Sec. IV-D "SAC in the higher layer"
// option: the extra communication of a fully secure two-layer system
// versus the default FedAvg upper layer, across m at N=30.
func Ext1SecureUpperCost(p Params) (*CostResult, error) {
	p = p.Defaults()
	res := &CostResult{
		Fig:  "ext1",
		Note: "extension: SAC in the upper layer (Sec. IV-D) vs. plain FedAvg upper layer (N=30)",
	}
	const N = 30
	for _, m := range []int{2, 3, 5, 6, 10, 15} {
		n := N / m
		plain, err := costmodel.TwoLayerUnits(m, n)
		if err != nil {
			return nil, err
		}
		secure, err := costmodel.TwoLayerSecureUpperUnits(m, n)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows,
			CostRow{
				Label:         fmt.Sprintf("m=%d plain upper", m),
				Units:         plain,
				Gb:            costmodel.Gigabits(plain * paperWeightBytes),
				MeasuredUnits: -1,
			},
			CostRow{
				Label:         fmt.Sprintf("m=%d secure upper", m),
				Units:         secure,
				Gb:            costmodel.Gigabits(secure * paperWeightBytes),
				MeasuredUnits: -1,
			})
	}
	return res, nil
}

// Ext2DPUtility sweeps the differential-privacy budget ε and reports the
// accuracy cost of the Sec. IV-D noise option on the standard two-layer
// workload (N=10, n∈{4,3,3}, IID).
func Ext2DPUtility(p Params) (*AccuracyResult, error) {
	p = p.Defaults()
	res := &AccuracyResult{
		Fig:  "ext2",
		Note: "extension: accuracy under per-peer DP noise (Gaussian, clip 1, δ=1e-5; N=10 two-layer IID)",
	}
	spec, factory, flat := accuracyWorkload(10, p.Seed)
	// Per-round releases compose, and the noise norm grows with √dim, so
	// usable budgets are large on this small workload; the sweep shows
	// the graceful accuracy/privacy trade-off rather than a tuned
	// production accounting.
	for _, eps := range []float64{0, 300, 100, 30} {
		cfg := core.TrainerConfig{
			Core:         core.Config{Sizes: []int{4, 3, 3}},
			Model:        factory,
			Flat:         flat,
			Data:         spec,
			Dist:         dataset.IID,
			Rounds:       p.Rounds,
			EvalEvery:    maxInt(1, p.Rounds/25),
			LearningRate: 2e-3,
			BatchSize:    50,
			Seed:         p.Seed + 1,
			DataSeed:     p.Seed,
		}
		label := "no DP"
		if eps > 0 {
			cfg.DP = dp.Gaussian{Epsilon: eps, Delta: 1e-5, Clip: 1}
			cfg.DPClip = 1
			label = fmt.Sprintf("ε=%g", eps)
		}
		series, err := core.RunTraining(cfg)
		if err != nil {
			return nil, fmt.Errorf("ext2 %s: %w", label, err)
		}
		lossMA := core.MovingAverage(series.TrainLoss, 5)
		res.Rows = append(res.Rows, AccuracyRow{
			Setting:     label,
			Dist:        dataset.IID,
			Series:      series,
			FinalAcc:    series.FinalAcc(),
			FinalLossMA: lossMA[len(lossMA)-1],
			Bytes:       series.Bytes[len(series.Bytes)-1],
		})
	}
	return res, nil
}

// TableResult is a free-form result table for extension experiments.
type TableResult struct {
	Fig    string
	Note   string
	Header []string
	Data   [][]string
}

// Name implements Result.
func (r *TableResult) Name() string { return r.Fig }

// Print implements Result.
func (r *TableResult) Print(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", r.Fig, r.Note)
	fmt.Fprint(w, " ")
	for _, h := range r.Header {
		fmt.Fprintf(w, " %-22s", h)
	}
	fmt.Fprintln(w)
	for _, row := range r.Data {
		fmt.Fprint(w, " ")
		for _, cell := range row {
			fmt.Fprintf(w, " %-22s", cell)
		}
		fmt.Fprintln(w)
	}
}

// Ext4RoundTime estimates the wall-clock duration of one aggregation
// round across m (N=30, 1 Gb/s links, 15 ms latency, paper CNN) — the
// time dimension the paper's byte analysis leaves implicit: subgroup
// SACs run in parallel, so subgrouping shortens rounds by more than the
// byte reduction alone.
func Ext4RoundTime(p Params) (*TableResult, error) {
	p = p.Defaults()
	res := &TableResult{
		Fig:    "ext4",
		Note:   "extension: estimated round time vs. m (N=30, paper CNN, 1 Gb/s per-peer links, 15 ms latency)",
		Header: []string{"setting", "round time", "vs. baseline"},
	}
	link := costmodel.LinkModel{BandwidthBps: 125e6, Latency: 15 * time.Millisecond}
	w := costmodel.WeightBytes(costmodel.PaperCNNParams, costmodel.BytesPerParam32)
	const N = 30
	base, err := costmodel.BaselineRoundTime(N, w, link)
	if err != nil {
		return nil, err
	}
	res.Data = append(res.Data, []string{"baseline one-layer SAC", base.Round(time.Millisecond).String(), "1.00x"})
	for _, m := range []int{2, 3, 5, 6, 10, 15} {
		n := N / m
		k := n
		total, _, err := costmodel.RoundTime(m, n, k, w, link)
		if err != nil {
			return nil, err
		}
		res.Data = append(res.Data, []string{
			fmt.Sprintf("two-layer m=%d (n=%d)", m, n),
			total.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx faster", float64(base)/float64(total)),
		})
	}
	return res, nil
}

// Ext5LatencySweep re-runs the Fig. 10 subgroup-leader recovery at
// different link latencies (the paper fixes 15 ms): detection is
// timeout-bound, so recovery should be nearly flat until the latency
// approaches the election timeout itself.
func Ext5LatencySweep(p Params) (*TableResult, error) {
	p = p.Defaults()
	res := &TableResult{
		Fig:    "ext5",
		Note:   "extension: Fig. 10 recovery vs. link latency (N=25, n=5, T=100 ms)",
		Header: []string{"one-way latency", "mean recovery", "p90"},
	}
	// Latencies stay below the paper's "broadcast time ≪ candidate
	// timeout" requirement; beyond ~T/2 the vote round trip exceeds
	// typical timeout draws and elections churn (the Sec. VI-B2
	// instability that TestShortTimeoutsCauseInstability reproduces).
	for _, latMs := range []int{1, 5, 15, 30, 45} {
		var samples []float64
		for trial := 0; trial < p.Trials; trial++ {
			ms, err := recoveryScenarioAt("elect", 100, latMs, p.Seed+int64(latMs)*1e6+int64(trial))
			if err != nil {
				return nil, fmt.Errorf("ext5 lat=%dms trial=%d: %w", latMs, trial, err)
			}
			samples = append(samples, ms)
		}
		st := metrics.Summarize(samples)
		res.Data = append(res.Data, []string{
			fmt.Sprintf("%d ms", latMs),
			fmt.Sprintf("%.1f ms", st.Mean),
			fmt.Sprintf("%.1f ms", st.P90),
		})
	}
	return res, nil
}

// Ext3RobustAggregation demonstrates the pluggable upper-layer rule: a
// poisoned subgroup corrupts FedAvg but not the coordinate median.
func Ext3RobustAggregation(p Params) (*TableResult, error) {
	p = p.Defaults()
	res := &TableResult{
		Fig:    "ext3",
		Note:   "extension: upper-layer rule vs. one poisoned subgroup (N=15, m=5; deviation from honest mean)",
		Header: []string{"aggregator", "max |dev| from honest mean"},
	}
	r := rand.New(rand.NewSource(p.Seed))
	const m, n, dim = 5, 3, 64
	models := make([][]float64, m*n)
	honestMean := make([]float64, dim)
	for i := range models {
		v := make([]float64, dim)
		for j := range v {
			v[j] = r.NormFloat64()
		}
		models[i] = v
	}
	for i := 0; i < (m-1)*n; i++ {
		for j := range honestMean {
			honestMean[j] += models[i][j] / float64((m-1)*n)
		}
	}
	// Poison the last subgroup.
	for i := (m - 1) * n; i < m*n; i++ {
		for j := range models[i] {
			models[i][j] = 1e6
		}
	}
	for _, agg := range []fl.Aggregator{fl.FedAvg{}, fl.CoordinateMedian{}, fl.TrimmedMean{Trim: 0.2}} {
		sys, err := core.NewSystem(core.Config{
			Sizes:      []int{n, n, n, n, n},
			Aggregator: agg,
		}, rand.New(rand.NewSource(p.Seed+1)))
		if err != nil {
			return nil, err
		}
		out, err := sys.Aggregate(models, nil, nil)
		if err != nil {
			return nil, err
		}
		dev := 0.0
		for j := range honestMean {
			d := out.Global[j] - honestMean[j]
			if d < 0 {
				d = -d
			}
			if d > dev {
				dev = d
			}
		}
		res.Data = append(res.Data, []string{agg.Name(), fmt.Sprintf("%.4g", dev)})
	}
	return res, nil
}
