package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// CSVWriter is implemented by results that can export their full data
// series (not just the printed summary) for external plotting.
type CSVWriter interface {
	Result
	// WriteCSV writes <dir>/<name>.csv.
	WriteCSV(dir string) error
}

func writeCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }

// WriteCSV implements CSVWriter: one row per (setting, distribution,
// round) with accuracy, loss and cumulative traffic.
func (r *AccuracyResult) WriteCSV(dir string) error {
	header := []string{"setting", "distribution", "round", "test_acc", "train_loss_ma", "cum_bytes"}
	var rows [][]string
	for _, row := range r.Rows {
		lossMA := movingAvg(row.Series.TrainLoss, 5)
		for i, round := range row.Series.Round {
			rows = append(rows, []string{
				row.Setting, row.Dist.String(), strconv.Itoa(round),
				ftoa(row.Series.TestAcc[i]), ftoa(lossMA[i]),
				strconv.FormatInt(row.Series.Bytes[i], 10),
			})
		}
	}
	return writeCSV(dir, r.Fig, header, rows)
}

func movingAvg(xs []float64, window int) []float64 {
	out := make([]float64, len(xs))
	sum := 0.0
	for i, x := range xs {
		sum += x
		if i >= window {
			sum -= xs[i-window]
		}
		n := window
		if i+1 < window {
			n = i + 1
		}
		out[i] = sum / float64(n)
	}
	return out
}

// WriteCSV implements CSVWriter: one row per trial.
func (r *RecoveryResult) WriteCSV(dir string) error {
	header := []string{"timeout_t_ms", "trial", "recovery_ms"}
	var rows [][]string
	for _, row := range r.Rows {
		for i, s := range row.Samples {
			rows = append(rows, []string{strconv.Itoa(row.TMs), strconv.Itoa(i), ftoa(s)})
		}
	}
	return writeCSV(dir, r.Fig, header, rows)
}

// WriteCSV implements CSVWriter: one row per cost point.
func (r *CostResult) WriteCSV(dir string) error {
	header := []string{"setting", "units_w", "gb_paper_cnn", "measured_units"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Label, strconv.FormatInt(row.Units, 10), ftoa(row.Gb), ftoa(row.MeasuredUnits),
		})
	}
	return writeCSV(dir, r.Fig, header, rows)
}
