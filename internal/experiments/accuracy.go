package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
)

// AccuracyRow is one training run of an accuracy/loss figure.
type AccuracyRow struct {
	Setting  string
	Dist     dataset.Distribution
	Series   *core.Series
	FinalAcc float64
	// FinalLossMA is the moving-average training loss at the end.
	FinalLossMA float64
	// Bytes is the cumulative aggregation traffic of the run.
	Bytes int64
}

// AccuracyResult holds all rows of Figs. 6–9.
type AccuracyResult struct {
	Fig  string
	Note string
	Rows []AccuracyRow
}

// Name implements Result.
func (r *AccuracyResult) Name() string { return r.Fig }

// Print implements Result.
func (r *AccuracyResult) Print(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", r.Fig, r.Note)
	fmt.Fprintf(w, "  %-22s %-14s %10s %12s %14s\n", "setting", "distribution", "final acc", "final loss", "traffic bytes")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-22s %-14s %9.2f%% %12.4f %14d\n",
			row.Setting, row.Dist, 100*row.FinalAcc, row.FinalLossMA, row.Bytes)
	}
}

// accuracyWorkload is the CI-scale stand-in for the paper's CIFAR-10
// training: 10 classes at 8×8 grayscale with an MLP, so 100+ federated
// rounds finish in seconds while preserving the comparisons the figures
// make (two-layer vs. baseline; IID vs. non-IID; p=0.5 vs. p=1).
func accuracyWorkload(numPeers int, seed int64) (dataset.Spec, core.ModelFactory, bool) {
	spec := dataset.Tiny(10, numPeers*60, 600, seed)
	factory := func(rng *rand.Rand) (*nn.Model, error) {
		return nn.MLP(spec.Channels*spec.Size*spec.Size, []int{32}, spec.Classes, rng), nil
	}
	return spec, factory, true
}

func runAccuracy(setting string, sizes []int, baseline bool, fraction float64, dist dataset.Distribution, rounds, workers int, dataSeed, trainSeed int64) (AccuracyRow, error) {
	total := 0
	for _, s := range sizes {
		total += s
	}
	spec, factory, flat := accuracyWorkload(total, dataSeed)
	cfg := core.TrainerConfig{
		Core:         core.Config{Sizes: sizes, Fraction: fraction},
		Baseline:     baseline,
		Model:        factory,
		Flat:         flat,
		Data:         spec,
		Dist:         dist,
		Rounds:       rounds,
		EvalEvery:    maxInt(1, rounds/25),
		LearningRate: 2e-3,
		Epochs:       1,
		BatchSize:    50,
		Workers:      workers,
		Seed:         trainSeed,
		DataSeed:     dataSeed,
	}
	series, err := core.RunTraining(cfg)
	if err != nil {
		return AccuracyRow{}, err
	}
	lossMA := core.MovingAverage(series.TrainLoss, 5)
	row := AccuracyRow{
		Setting:     setting,
		Dist:        dist,
		Series:      series,
		FinalAcc:    series.FinalAcc(),
		FinalLossMA: lossMA[len(lossMA)-1],
		Bytes:       series.Bytes[len(series.Bytes)-1],
	}
	return row, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Fig6 reproduces the test-accuracy comparison: N = 10 peers total,
// subgroups of n = 3 (sizes 4,3,3), n = 5 (5,5) and n = 10 (the original
// one-layer SAC), under IID / non-IID(5%) / non-IID(0%).
func Fig6(p Params) (*AccuracyResult, error) {
	p = p.Defaults()
	res := &AccuracyResult{
		Fig:  "fig6",
		Note: "test accuracy, two-layer SAC vs. original SAC (N=10; CI-scale synthetic workload)",
	}
	type setting struct {
		label    string
		sizes    []int
		baseline bool
	}
	settings := []setting{
		{"two-layer n=3", []int{4, 3, 3}, false},
		{"two-layer n=5", []int{5, 5}, false},
		{"baseline n=10 (SAC)", []int{10}, true},
	}
	dists := []dataset.Distribution{dataset.IID, dataset.NonIID5, dataset.NonIID0}
	for _, st := range settings {
		for _, d := range dists {
			// Shared data seed (same dataset + partitions across all
			// settings, as in the paper's comparisons); training seed
			// varies per setting, so rows differ only by the topology
			// plus ordinary SGD stochasticity.
			row, err := runAccuracy(st.label, st.sizes, st.baseline, 1, d, p.Rounds, p.Workers, p.Seed, p.Seed+int64(len(res.Rows))+1)
			if err != nil {
				return nil, fmt.Errorf("fig6 %s/%s: %w", st.label, d, err)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Fig7 is the training-loss view of the Fig. 6 runs.
func Fig7(p Params) (*AccuracyResult, error) {
	res, err := Fig6(p)
	if err != nil {
		return nil, err
	}
	res.Fig = "fig7"
	res.Note = "training loss (moving average), same runs as Fig. 6"
	return res, nil
}

// Fig8 reproduces the slow-subgroup experiment: N = 20, n = 5 (four
// subgroups) with fraction p ∈ {0.5, 1}.
func Fig8(p Params) (*AccuracyResult, error) {
	p = p.Defaults()
	res := &AccuracyResult{
		Fig:  "fig8",
		Note: "test accuracy under subgroup fraction p (N=20, n=5; CI-scale synthetic workload)",
	}
	dists := []dataset.Distribution{dataset.IID, dataset.NonIID5, dataset.NonIID0}
	for _, frac := range []float64{1, 0.5} {
		for _, d := range dists {
			label := fmt.Sprintf("p=%.1f", frac)
			row, err := runAccuracy(label, []int{5, 5, 5, 5}, false, frac, d, p.Rounds, p.Workers, p.Seed, p.Seed+int64(len(res.Rows))+1)
			if err != nil {
				return nil, fmt.Errorf("fig8 %s/%s: %w", label, d, err)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Fig9 is the training-loss view of the Fig. 8 runs.
func Fig9(p Params) (*AccuracyResult, error) {
	res, err := Fig8(p)
	if err != nil {
		return nil, err
	}
	res.Fig = "fig9"
	res.Note = "training loss (moving average), same runs as Fig. 8"
	return res, nil
}
