package experiments

import "testing"

func TestExt6CompressionCurve(t *testing.T) {
	res, err := Ext6CompressionCurve(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].Setting != "none" {
		t.Fatalf("first row = %q", res.Rows[0].Setting)
	}
	ref := res.Rows[0]
	for _, row := range res.Rows[1:] {
		if row.Bytes >= ref.Bytes {
			t.Fatalf("%s used %dB, not cheaper than uncompressed %dB", row.Setting, row.Bytes, ref.Bytes)
		}
		if row.FinalAcc < 0 || row.FinalAcc > 1 {
			t.Fatalf("accuracy out of range: %+v", row)
		}
	}
	// Deeper compression must strictly shrink traffic: quant8 < quant16,
	// and the sparse-quantized settings below both.
	byLabel := map[string]int64{}
	for _, row := range res.Rows {
		byLabel[row.Setting] = row.Bytes
	}
	if byLabel["quant8"] >= byLabel["quant16"] {
		t.Fatal("quant8 not cheaper than quant16")
	}
	if byLabel["topk-quant8 k=10%"] >= byLabel["topk-quant8 k=25%"] {
		t.Fatal("k=10% not cheaper than k=25%")
	}
}
