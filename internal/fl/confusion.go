package fl

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// ConfusionMatrix counts predictions: Counts[true][predicted].
type ConfusionMatrix struct {
	Classes int
	Counts  [][]int
}

// NewConfusionMatrix creates an empty matrix for `classes` classes.
func NewConfusionMatrix(classes int) (*ConfusionMatrix, error) {
	if classes < 2 {
		return nil, fmt.Errorf("fl: confusion matrix needs ≥ 2 classes")
	}
	m := &ConfusionMatrix{Classes: classes, Counts: make([][]int, classes)}
	for i := range m.Counts {
		m.Counts[i] = make([]int, classes)
	}
	return m, nil
}

// Add records one (true, predicted) pair.
func (m *ConfusionMatrix) Add(truth, pred int) error {
	if truth < 0 || truth >= m.Classes || pred < 0 || pred >= m.Classes {
		return fmt.Errorf("fl: labels (%d,%d) out of [0,%d)", truth, pred, m.Classes)
	}
	m.Counts[truth][pred]++
	return nil
}

// Accuracy is the trace over the total.
func (m *ConfusionMatrix) Accuracy() float64 {
	diag, total := 0, 0
	for i, row := range m.Counts {
		for j, c := range row {
			total += c
			if i == j {
				diag += c
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(diag) / float64(total)
}

// PerClassRecall returns recall for each true class (NaN-free: classes
// with no samples report 0).
func (m *ConfusionMatrix) PerClassRecall() []float64 {
	out := make([]float64, m.Classes)
	for i, row := range m.Counts {
		total := 0
		for _, c := range row {
			total += c
		}
		if total > 0 {
			out[i] = float64(row[i]) / float64(total)
		}
	}
	return out
}

// String renders a compact table.
func (m *ConfusionMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "confusion (%d classes, acc %.1f%%):\n", m.Classes, 100*m.Accuracy())
	for i, row := range m.Counts {
		fmt.Fprintf(&b, "  true %2d:", i)
		for _, c := range row {
			fmt.Fprintf(&b, " %5d", c)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Confusion evaluates model over test and returns the confusion matrix.
func Confusion(model *nn.Model, test *dataset.Dataset, flat bool) (*ConfusionMatrix, error) {
	if test.Len() == 0 {
		return nil, fmt.Errorf("fl: empty test set")
	}
	cm, err := NewConfusionMatrix(test.Classes)
	if err != nil {
		return nil, err
	}
	const batchSize = 256
	for lo := 0; lo < test.Len(); lo += batchSize {
		hi := lo + batchSize
		if hi > test.Len() {
			hi = test.Len()
		}
		var x *tensor.Tensor
		var labels []int
		var err error
		if flat {
			x, labels, err = test.FlatBatch(lo, hi)
		} else {
			x, labels, err = test.Batch(lo, hi)
		}
		if err != nil {
			return nil, err
		}
		logits, err := model.Forward(x, false)
		if err != nil {
			return nil, err
		}
		classes := logits.Dim(1)
		data := logits.Data()
		for i, truth := range labels {
			row := data[i*classes : (i+1)*classes]
			best, bi := row[0], 0
			for j, v := range row {
				if v > best {
					best, bi = v, j
				}
			}
			if err := cm.Add(truth, bi); err != nil {
				return nil, err
			}
		}
	}
	return cm, nil
}
