package fl

import (
	"math"
	"math/rand"
	"testing"
)

func TestFedAvgAggregatorMatchesWeightedAverage(t *testing.T) {
	models := [][]float64{{1, 2}, {3, 4}}
	counts := []float64{1, 3}
	a, err := FedAvg{}.Aggregate(models, counts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := WeightedAverage(models, counts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("FedAvg aggregator must match WeightedAverage")
		}
	}
}

func TestCoordinateMedianKnown(t *testing.T) {
	models := [][]float64{{1, 10}, {2, 20}, {100, -5}}
	got, err := CoordinateMedian{}.Aggregate(models, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 10 {
		t.Fatalf("median = %v, want [2 10]", got)
	}
	// Even count: midpoint.
	models = [][]float64{{1}, {3}, {5}, {7}}
	got, err = CoordinateMedian{}.Aggregate(models, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 4 {
		t.Fatalf("even median = %v, want 4", got[0])
	}
}

func TestMedianRobustToOutlier(t *testing.T) {
	// One poisoned model must not move the median beyond the honest
	// models' range, while it drags the mean arbitrarily far.
	honest := [][]float64{{1.0}, {1.1}, {0.9}, {1.05}}
	poisoned := append(append([][]float64{}, honest...), []float64{1e9})
	med, err := CoordinateMedian{}.Aggregate(poisoned, nil)
	if err != nil {
		t.Fatal(err)
	}
	if med[0] < 0.9 || med[0] > 1.1 {
		t.Fatalf("median %v outside honest range", med[0])
	}
	mean, err := UniformAverage(poisoned)
	if err != nil {
		t.Fatal(err)
	}
	if mean[0] < 1e8 {
		t.Fatalf("mean %v should be dominated by the outlier", mean[0])
	}
}

func TestTrimmedMean(t *testing.T) {
	models := [][]float64{{-1000}, {1}, {2}, {3}, {1000}}
	got, err := TrimmedMean{Trim: 0.2}.Aggregate(models, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-2) > 1e-12 {
		t.Fatalf("trimmed mean = %v, want 2", got[0])
	}
	// Trim 0 = plain mean.
	got, err = TrimmedMean{}.Aggregate([][]float64{{1}, {3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Fatalf("untrimmed mean = %v", got[0])
	}
	if _, err := (TrimmedMean{Trim: 0.5}).Aggregate(models, nil); err == nil {
		t.Fatal("want error for trim ≥ 0.5")
	}
	if _, err := (TrimmedMean{Trim: -0.1}).Aggregate(models, nil); err == nil {
		t.Fatal("want error for negative trim")
	}
}

func TestTrimmedMeanKeepsMajority(t *testing.T) {
	// Trim that would remove everything is clamped to keep ≥ 1 value.
	models := [][]float64{{1}, {2}, {3}}
	got, err := TrimmedMean{Trim: 0.49}.Aggregate(models, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(got[0]) {
		t.Fatal("NaN from over-trimming")
	}
}

func TestAggregatorValidation(t *testing.T) {
	for _, a := range []Aggregator{FedAvg{}, CoordinateMedian{}, TrimmedMean{Trim: 0.1}} {
		if a.Name() == "" {
			t.Fatal("empty name")
		}
		if _, err := a.Aggregate(nil, nil); err == nil {
			t.Fatalf("%s: want error for empty input", a.Name())
		}
		if _, err := a.Aggregate([][]float64{{1}, {1, 2}}, nil); err == nil {
			t.Fatalf("%s: want error for ragged input", a.Name())
		}
	}
	if _, err := (CoordinateMedian{}).Aggregate([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("want count-mismatch error")
	}
}

// All three rules agree on symmetric, outlier-free input.
func TestAggregatorsAgreeOnCleanData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := []float64{5, -3, 2}
	var models [][]float64
	for i := 0; i < 101; i++ { // odd count, symmetric noise
		m := make([]float64, 3)
		for j := range m {
			noise := rng.NormFloat64() * 0.01
			m[j] = base[j] + noise
		}
		models = append(models, m)
	}
	mean, _ := UniformAverage(models)
	med, _ := CoordinateMedian{}.Aggregate(models, nil)
	trim, _ := TrimmedMean{Trim: 0.1}.Aggregate(models, nil)
	for j := range base {
		if math.Abs(mean[j]-med[j]) > 0.01 || math.Abs(mean[j]-trim[j]) > 0.01 {
			t.Fatalf("rules disagree on clean data: mean=%v med=%v trim=%v", mean[j], med[j], trim[j])
		}
	}
}
