package fl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/optim"
)

func TestWeightedAverageKnown(t *testing.T) {
	models := [][]float64{{1, 2}, {3, 4}}
	avg, err := WeightedAverage(models, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2.5, 3.5}
	for i := range want {
		if math.Abs(avg[i]-want[i]) > 1e-12 {
			t.Fatalf("avg = %v, want %v", avg, want)
		}
	}
}

func TestWeightedAverageErrors(t *testing.T) {
	if _, err := WeightedAverage(nil, nil); err == nil {
		t.Fatal("want error for empty input")
	}
	if _, err := WeightedAverage([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("want count-mismatch error")
	}
	if _, err := WeightedAverage([][]float64{{1}, {1, 2}}, []float64{1, 1}); err == nil {
		t.Fatal("want dim-mismatch error")
	}
	if _, err := WeightedAverage([][]float64{{1}}, []float64{-1}); err == nil {
		t.Fatal("want negative-count error")
	}
	if _, err := WeightedAverage([][]float64{{1}}, []float64{0}); err == nil {
		t.Fatal("want zero-total error")
	}
}

func TestUniformAverageMatchesMean(t *testing.T) {
	f := func(a, b, c float64) bool {
		// Bound magnitudes so the reference (a+b+c)/3 cannot overflow.
		bound := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(x, 1e6)
		}
		a, b, c = bound(a), bound(b), bound(c)
		avg, err := UniformAverage([][]float64{{a}, {b}, {c}})
		if err != nil {
			return false
		}
		return math.Abs(avg[0]-(a+b+c)/3) < 1e-9*(1+math.Abs(a)+math.Abs(b)+math.Abs(c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// FedAvg with equal counts must equal SAC's uniform average: the paper's
// claim that the two layers compose without changing the aggregate.
func TestWeightedEqualsUniformForEqualCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	models := make([][]float64, 4)
	counts := make([]float64, 4)
	for i := range models {
		models[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		counts[i] = 7
	}
	w, err := WeightedAverage(models, counts)
	if err != nil {
		t.Fatal(err)
	}
	u, err := UniformAverage(models)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if math.Abs(w[i]-u[i]) > 1e-12 {
			t.Fatal("weighted avg with equal counts must equal uniform avg")
		}
	}
}

func newTinyClient(t *testing.T, id int, data *dataset.Dataset, seed int64) *Client {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	model := nn.MLP(data.PixelDim(), []int{16}, data.Classes, rng)
	opt := optim.NewAdam(1e-3)
	return NewClient(id, model, opt, data,
		TrainConfig{Epochs: 1, BatchSize: 10, Flat: true}, rng)
}

func TestClientTrainRoundReducesLoss(t *testing.T) {
	train, test, err := dataset.Generate(dataset.Tiny(3, 120, 60, 42))
	if err != nil {
		t.Fatal(err)
	}
	c := newTinyClient(t, 0, train, 1)
	_, loss0, err := c.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		if _, err := c.TrainRound(); err != nil {
			t.Fatal(err)
		}
	}
	acc, loss1, err := c.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if loss1 >= loss0 {
		t.Fatalf("loss did not decrease: %v → %v", loss0, loss1)
	}
	if acc < 0.5 {
		t.Fatalf("accuracy after training = %v", acc)
	}
}

func TestClientWeightsRoundTrip(t *testing.T) {
	train, _, err := dataset.Generate(dataset.Tiny(3, 30, 10, 43))
	if err != nil {
		t.Fatal(err)
	}
	a := newTinyClient(t, 0, train, 2)
	b := newTinyClient(t, 1, train, 3)
	if err := b.SetWeights(a.Weights()); err != nil {
		t.Fatal(err)
	}
	wa, wb := a.Weights(), b.Weights()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("SetWeights must copy weights exactly")
		}
	}
	if a.SampleCount() != 30 {
		t.Fatalf("sample count = %d", a.SampleCount())
	}
}

func TestClientEmptyDataErrors(t *testing.T) {
	train, _, err := dataset.Generate(dataset.Tiny(3, 30, 10, 44))
	if err != nil {
		t.Fatal(err)
	}
	empty := train.Subset(nil)
	c := newTinyClient(t, 0, empty, 4)
	if _, err := c.TrainRound(); err == nil {
		t.Fatal("want error training on empty shard")
	}
}

func TestEvaluateModelEmptyTest(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := nn.MLP(4, nil, 2, rng)
	if _, _, err := EvaluateModel(m, &dataset.Dataset{Channels: 1, Size: 2, Classes: 2}, true); err == nil {
		t.Fatal("want error for empty test set")
	}
}

// Federated smoke test: 4 IID clients + FedAvg beat a single client
// trained on only a quarter of the data... at minimum, they must learn.
func TestFedAvgRoundsImproveGlobalModel(t *testing.T) {
	train, test, err := dataset.Generate(dataset.Tiny(4, 400, 100, 45))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	parts, err := dataset.Partition(train, 4, dataset.IID, rng)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*Client, 4)
	for i := range clients {
		clients[i] = newTinyClient(t, i, parts[i], int64(10+i))
	}
	global := clients[0].Weights()
	for r := 0; r < 12; r++ {
		models := make([][]float64, len(clients))
		counts := make([]float64, len(clients))
		for i, c := range clients {
			if err := c.SetWeights(global); err != nil {
				t.Fatal(err)
			}
			if _, err := c.TrainRound(); err != nil {
				t.Fatal(err)
			}
			models[i] = c.Weights()
			counts[i] = float64(c.SampleCount())
		}
		global, err = WeightedAverage(models, counts)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := clients[0].SetWeights(global); err != nil {
		t.Fatal(err)
	}
	acc, _, err := clients[0].Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.6 {
		t.Fatalf("federated accuracy = %v, want ≥ 0.6", acc)
	}
}
