// Package fl implements the federated-learning building blocks from
// Sec. III-A of the paper: sample-count-weighted Federated Averaging and
// the per-peer local training step (one or more epochs of minibatch
// optimization on the peer's private shard).
//
// Models are exchanged as flat weight vectors (nn.Model.WeightVector),
// which is also the representation the SAC protocols secret-share.
package fl

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// WeightedAverage computes the FedAvg update
// w ← Σ_k (n_k / n) · w_k over flat weight vectors, where n_k is the
// sample count backing model k. All vectors must share a length and at
// least one weight must be positive.
func WeightedAverage(models [][]float64, counts []float64) ([]float64, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("fl: no models to average")
	}
	if len(counts) != len(models) {
		return nil, fmt.Errorf("fl: %d counts for %d models", len(counts), len(models))
	}
	dim := len(models[0])
	total := 0.0
	for i, m := range models {
		if len(m) != dim {
			return nil, fmt.Errorf("fl: model %d has %d weights, want %d", i, len(m), dim)
		}
		if counts[i] < 0 {
			return nil, fmt.Errorf("fl: negative sample count %v", counts[i])
		}
		total += counts[i]
	}
	if total == 0 {
		return nil, fmt.Errorf("fl: all sample counts are zero")
	}
	out := make([]float64, dim)
	for i, m := range models {
		f := counts[i] / total
		if f == 0 {
			continue
		}
		for j, v := range m {
			out[j] += f * v
		}
	}
	return out, nil
}

// UniformAverage averages flat weight vectors with equal weights — the
// aggregation SAC computes (Eq. 1–3 of the paper).
func UniformAverage(models [][]float64) ([]float64, error) {
	counts := make([]float64, len(models))
	for i := range counts {
		counts[i] = 1
	}
	return WeightedAverage(models, counts)
}

// TrainConfig controls one local-update step.
type TrainConfig struct {
	Epochs    int  // paper: 1 epoch per round
	BatchSize int  // paper: 50
	Flat      bool // feed [batch, pixels] instead of [batch, C, H, W]
}

// Client is one federated-learning peer: a model, an optimizer and a
// private training shard.
type Client struct {
	ID    int
	Model *nn.Model
	Opt   optim.Optimizer
	Data  *dataset.Dataset
	Cfg   TrainConfig
	rng   *rand.Rand
}

// NewClient builds a client. rng drives data shuffling between epochs.
func NewClient(id int, model *nn.Model, opt optim.Optimizer, data *dataset.Dataset, cfg TrainConfig, rng *rand.Rand) *Client {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 50
	}
	return &Client{ID: id, Model: model, Opt: opt, Data: data, Cfg: cfg, rng: rng}
}

// SampleCount returns the number of local training samples (n_k).
func (c *Client) SampleCount() int { return c.Data.Len() }

// Weights returns the client's current flat weight vector.
func (c *Client) Weights() []float64 { return c.Model.WeightVector() }

// SetWeights installs a (typically aggregated) flat weight vector.
func (c *Client) SetWeights(w []float64) error { return c.Model.SetWeightVector(w) }

// TrainRound runs the local update: Cfg.Epochs epochs of minibatch
// training on the client's shard. It returns the mean training loss
// across all optimizer steps of the round.
func (c *Client) TrainRound() (float64, error) {
	if c.Data.Len() == 0 {
		return 0, fmt.Errorf("fl: client %d has no data", c.ID)
	}
	totalLoss, steps := 0.0, 0
	for e := 0; e < c.Cfg.Epochs; e++ {
		c.Data.Shuffle(c.rng)
		for lo := 0; lo < c.Data.Len(); lo += c.Cfg.BatchSize {
			hi := lo + c.Cfg.BatchSize
			if hi > c.Data.Len() {
				hi = c.Data.Len()
			}
			x, labels, err := c.batch(lo, hi)
			if err != nil {
				return 0, err
			}
			c.Model.ZeroGrad()
			loss, err := c.Model.Loss(x, labels)
			if err != nil {
				return 0, err
			}
			if err := c.Model.Backward(); err != nil {
				return 0, err
			}
			if err := c.Opt.Step(c.Model.Params()); err != nil {
				return 0, err
			}
			totalLoss += loss
			steps++
		}
	}
	return totalLoss / float64(steps), nil
}

func (c *Client) batch(lo, hi int) (*tensor.Tensor, []int, error) {
	if c.Cfg.Flat {
		return c.Data.FlatBatch(lo, hi)
	}
	return c.Data.Batch(lo, hi)
}

// Evaluate measures accuracy and loss of the client's model over test.
func (c *Client) Evaluate(test *dataset.Dataset) (acc, loss float64, err error) {
	return EvaluateModel(c.Model, test, c.Cfg.Flat)
}

// EvaluateModel measures accuracy and mean loss of model over an entire
// dataset, batched to bound memory.
func EvaluateModel(model *nn.Model, test *dataset.Dataset, flat bool) (acc, loss float64, err error) {
	if test.Len() == 0 {
		return 0, 0, fmt.Errorf("fl: empty test set")
	}
	const evalBatch = 256
	var accSum, lossSum float64
	n := 0
	for lo := 0; lo < test.Len(); lo += evalBatch {
		hi := lo + evalBatch
		if hi > test.Len() {
			hi = test.Len()
		}
		var a, l float64
		if flat {
			x, labels, err := test.FlatBatch(lo, hi)
			if err != nil {
				return 0, 0, err
			}
			a, l, err = model.Evaluate(x, labels)
			if err != nil {
				return 0, 0, err
			}
		} else {
			x, labels, err := test.Batch(lo, hi)
			if err != nil {
				return 0, 0, err
			}
			a, l, err = model.Evaluate(x, labels)
			if err != nil {
				return 0, 0, err
			}
		}
		w := hi - lo
		accSum += a * float64(w)
		lossSum += l * float64(w)
		n += w
	}
	return accSum / float64(n), lossSum / float64(n), nil
}
