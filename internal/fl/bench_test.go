package fl

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/optim"
)

// BenchmarkClientTrainRound measures one client's full local update —
// shuffle, minibatch forward/backward, optimizer steps — on the reduced
// CNN, i.e. the per-peer unit of work the parallel round loop fans out.
func BenchmarkClientTrainRound(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	spec := dataset.Tiny(4, 120, 10, 1)
	train, _, err := dataset.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	model, err := nn.TinyCNN(spec.Channels, spec.Size, spec.Classes, rng)
	if err != nil {
		b.Fatal(err)
	}
	c := NewClient(0, model, optim.NewAdam(1e-3), train,
		TrainConfig{Epochs: 1, BatchSize: 30}, rand.New(rand.NewSource(2)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.TrainRound(); err != nil {
			b.Fatal(err)
		}
	}
}
