package fl

import (
	"fmt"
	"sort"
)

// Aggregator combines the (SAC-protected) subgroup models into a global
// model. The paper's Alg. 3 notes the system "is agnostic to the
// aggregation algorithm, which can be chosen appropriately for each use
// case"; FedAvg is the default, and the robust alternatives below resist
// outlier subgroup models.
type Aggregator interface {
	// Aggregate combines models with per-model weights (sample counts).
	Aggregate(models [][]float64, counts []float64) ([]float64, error)
	// Name identifies the rule for logs.
	Name() string
}

// FedAvg is the paper's default: the sample-count-weighted average.
type FedAvg struct{}

// Name implements Aggregator.
func (FedAvg) Name() string { return "fedavg" }

// Aggregate implements Aggregator.
func (FedAvg) Aggregate(models [][]float64, counts []float64) ([]float64, error) {
	return WeightedAverage(models, counts)
}

// CoordinateMedian aggregates by the per-coordinate median, ignoring the
// sample counts — a classic robust rule that tolerates up to half the
// inputs being arbitrary.
type CoordinateMedian struct{}

// Name implements Aggregator.
func (CoordinateMedian) Name() string { return "coordinate-median" }

// Aggregate implements Aggregator.
func (CoordinateMedian) Aggregate(models [][]float64, counts []float64) ([]float64, error) {
	if err := checkModels(models, counts); err != nil {
		return nil, err
	}
	dim := len(models[0])
	out := make([]float64, dim)
	col := make([]float64, len(models))
	for j := 0; j < dim; j++ {
		for i, m := range models {
			col[i] = m[j]
		}
		sort.Float64s(col)
		mid := len(col) / 2
		if len(col)%2 == 1 {
			out[j] = col[mid]
		} else {
			out[j] = (col[mid-1] + col[mid]) / 2
		}
	}
	return out, nil
}

// TrimmedMean drops the Trim fraction of extreme values on each side of
// every coordinate before averaging the rest (uniformly weighted).
type TrimmedMean struct {
	// Trim is the fraction removed from EACH side, in [0, 0.5).
	Trim float64
}

// Name implements Aggregator.
func (t TrimmedMean) Name() string { return fmt.Sprintf("trimmed-mean(%.2f)", t.Trim) }

// Aggregate implements Aggregator.
func (t TrimmedMean) Aggregate(models [][]float64, counts []float64) ([]float64, error) {
	if t.Trim < 0 || t.Trim >= 0.5 {
		return nil, fmt.Errorf("fl: trim fraction %v out of [0, 0.5)", t.Trim)
	}
	if err := checkModels(models, counts); err != nil {
		return nil, err
	}
	k := int(t.Trim * float64(len(models)))
	if 2*k >= len(models) {
		k = (len(models) - 1) / 2
	}
	dim := len(models[0])
	out := make([]float64, dim)
	col := make([]float64, len(models))
	for j := 0; j < dim; j++ {
		for i, m := range models {
			col[i] = m[j]
		}
		sort.Float64s(col)
		kept := col[k : len(col)-k]
		sum := 0.0
		for _, v := range kept {
			sum += v
		}
		out[j] = sum / float64(len(kept))
	}
	return out, nil
}

func checkModels(models [][]float64, counts []float64) error {
	if len(models) == 0 {
		return fmt.Errorf("fl: no models to aggregate")
	}
	if counts != nil && len(counts) != len(models) {
		return fmt.Errorf("fl: %d counts for %d models", len(counts), len(models))
	}
	dim := len(models[0])
	for i, m := range models {
		if len(m) != dim {
			return fmt.Errorf("fl: model %d has %d weights, want %d", i, len(m), dim)
		}
	}
	return nil
}
