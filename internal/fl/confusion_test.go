package fl

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestConfusionMatrixBasics(t *testing.T) {
	cm, err := NewConfusionMatrix(3)
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]int{{0, 0}, {0, 0}, {0, 1}, {1, 1}, {2, 2}, {2, 0}}
	for _, p := range pairs {
		if err := cm.Add(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	if got := cm.Accuracy(); math.Abs(got-4.0/6.0) > 1e-12 {
		t.Fatalf("accuracy = %v", got)
	}
	rec := cm.PerClassRecall()
	if math.Abs(rec[0]-2.0/3.0) > 1e-12 || rec[1] != 1 || rec[2] != 0.5 {
		t.Fatalf("recall = %v", rec)
	}
	if !strings.Contains(cm.String(), "acc 66.7%") {
		t.Fatalf("string:\n%s", cm.String())
	}
}

func TestConfusionMatrixValidation(t *testing.T) {
	if _, err := NewConfusionMatrix(1); err == nil {
		t.Fatal("want error for 1 class")
	}
	cm, err := NewConfusionMatrix(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.Add(2, 0); err == nil {
		t.Fatal("want range error")
	}
	if err := cm.Add(0, -1); err == nil {
		t.Fatal("want range error")
	}
	if cm.Accuracy() != 0 {
		t.Fatal("empty matrix accuracy must be 0")
	}
	if cm.PerClassRecall()[0] != 0 {
		t.Fatal("empty class recall must be 0")
	}
}

func TestConfusionOnTrainedModel(t *testing.T) {
	train, test, err := dataset.Generate(dataset.Tiny(3, 150, 90, 71))
	if err != nil {
		t.Fatal(err)
	}
	c := newTinyClient(t, 0, train, 72)
	for r := 0; r < 6; r++ {
		if _, err := c.TrainRound(); err != nil {
			t.Fatal(err)
		}
	}
	cm, err := Confusion(c.Model, test, true)
	if err != nil {
		t.Fatal(err)
	}
	// The matrix's accuracy must agree with EvaluateModel.
	acc, _, err := EvaluateModel(c.Model, test, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cm.Accuracy()-acc) > 1e-9 {
		t.Fatalf("confusion accuracy %v != evaluate %v", cm.Accuracy(), acc)
	}
	total := 0
	for _, row := range cm.Counts {
		for _, n := range row {
			total += n
		}
	}
	if total != test.Len() {
		t.Fatalf("matrix covers %d of %d samples", total, test.Len())
	}
	if _, err := Confusion(c.Model, &dataset.Dataset{Channels: 1, Size: 8, Classes: 3}, true); err == nil {
		t.Fatal("want error for empty test set")
	}
}
