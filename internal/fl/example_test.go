package fl_test

import (
	"fmt"

	"repro/internal/fl"
)

// FedAvg weights each model by its sample count (Sec. III-A).
func ExampleWeightedAverage() {
	models := [][]float64{
		{1.0, 0.0}, // peer with 100 samples
		{0.0, 1.0}, // peer with 300 samples
	}
	avg, err := fl.WeightedAverage(models, []float64{100, 300})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.2f\n", avg)
	// Output: [0.25 0.75]
}

// Robust upper-layer rules survive a poisoned input that would dominate
// the mean.
func ExampleCoordinateMedian() {
	models := [][]float64{{1.0}, {1.1}, {0.9}, {1e9}}
	med, _ := fl.CoordinateMedian{}.Aggregate(models, nil)
	avg, _ := fl.UniformAverage(models)
	fmt.Printf("median %.2f vs mean %.0f\n", med[0], avg[0])
	// Output: median 1.05 vs mean 250000001
}
