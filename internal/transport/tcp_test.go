package transport

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/raft"
)

// newPair starts two transports on loopback with dynamic ports.
func newPair(t *testing.T) (*RaftTCP, *RaftTCP) {
	t.Helper()
	// Bootstrap with port 0, then exchange real addresses.
	t1, err := NewRaftTCP(1, map[uint64]string{1: "127.0.0.1:0", 2: "127.0.0.1:1"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := NewRaftTCP(2, map[uint64]string{1: t1.Addr(), 2: "127.0.0.1:0"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t1.RegisterAddr(2, t2.Addr())
	t.Cleanup(func() {
		t1.Close()
		t2.Close()
	})
	return t1, t2
}

func recvWithTimeout(t *testing.T, ch <-chan raft.Message) raft.Message {
	t.Helper()
	select {
	case m := <-ch:
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for message")
		return raft.Message{}
	}
}

func TestTCPRoundTrip(t *testing.T) {
	t1, t2 := newPair(t)
	msg := raft.Message{
		Type: raft.MsgAppend, From: 1, To: 2, Term: 7,
		Entries: []raft.Entry{{Index: 1, Term: 7, Data: []byte("hello")}},
		Commit:  1,
	}
	if err := t1.Send(msg); err != nil {
		t.Fatal(err)
	}
	got := recvWithTimeout(t, t2.Recv())
	if got.Term != 7 || got.From != 1 || len(got.Entries) != 1 || string(got.Entries[0].Data) != "hello" {
		t.Fatalf("got %+v", got)
	}
	// And the reverse direction.
	if err := t2.Send(raft.Message{Type: raft.MsgAppendResponse, From: 2, To: 1, Term: 7, Match: 1}); err != nil {
		t.Fatal(err)
	}
	back := recvWithTimeout(t, t1.Recv())
	if back.Match != 1 || back.From != 2 {
		t.Fatalf("got %+v", back)
	}
}

func TestTCPManyMessages(t *testing.T) {
	t1, t2 := newPair(t)
	const n = 200
	for i := 0; i < n; i++ {
		if err := t1.Send(raft.Message{Type: raft.MsgVoteRequest, From: 1, To: 2, Term: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		m := recvWithTimeout(t, t2.Recv())
		if m.Term != uint64(i) {
			t.Fatalf("message %d: term %d (reordered?)", i, m.Term)
		}
	}
	if t1.Counter().TotalMessages() != n {
		t.Fatalf("counted %d messages", t1.Counter().TotalMessages())
	}
}

func TestTCPSendToUnknownPeer(t *testing.T) {
	t1, _ := newPair(t)
	if err := t1.Send(raft.Message{To: 99}); err == nil {
		t.Fatal("want error for unknown peer")
	}
}

func TestTCPDialFailure(t *testing.T) {
	tr, err := NewRaftTCP(1, map[uint64]string{1: "127.0.0.1:0", 2: "127.0.0.1:1"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// Port 1 is almost certainly closed; the send must fail cleanly.
	if err := tr.Send(raft.Message{To: 2}); err == nil {
		t.Fatal("want dial error")
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	t1, t2 := newPair(t)
	if err := t1.Send(raft.Message{Type: raft.MsgVoteRequest, From: 1, To: 2, Term: 1}); err != nil {
		t.Fatal(err)
	}
	recvWithTimeout(t, t2.Recv())
	// Restart peer 2 on a new port.
	addr2old := t2.Addr()
	t2.Close()
	t2b, err := NewRaftTCP(2, map[uint64]string{1: t1.Addr(), 2: "127.0.0.1:0"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer t2b.Close()
	t1.RegisterAddr(2, t2b.Addr())
	if t2b.Addr() == addr2old {
		t.Log("reused port (fine)")
	}
	// The first send may fail on the stale connection; poll the
	// send-then-receive condition under a deadline (mimicking the raft
	// driver's retries) instead of sleeping a fixed backoff and hoping.
	deadline := time.Now().Add(10 * time.Second)
	delivered := false
	for !delivered {
		if time.Now().After(deadline) {
			t.Fatal("message not delivered after reconnect")
		}
		if err := t1.Send(raft.Message{Type: raft.MsgVoteRequest, From: 1, To: 2, Term: 2}); err != nil {
			time.Sleep(time.Millisecond) // redial immediately after a short breather
			continue
		}
		select {
		case m := <-t2b.Recv():
			if m.Term == 2 {
				delivered = true
			}
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// Full integration: three real raft nodes over loopback TCP elect a
// leader and replicate an entry, driven by real-time tickers.
func TestTCPRaftCluster(t *testing.T) {
	ids := []uint64{1, 2, 3}
	addrs := map[uint64]string{}
	transports := map[uint64]*RaftTCP{}
	// Listen first with dynamic ports.
	for _, id := range ids {
		boot := map[uint64]string{}
		for _, j := range ids {
			boot[j] = "127.0.0.1:1" // placeholder
		}
		boot[id] = "127.0.0.1:0"
		tr, err := NewRaftTCP(id, boot, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		transports[id] = tr
		addrs[id] = tr.Addr()
	}
	for _, tr := range transports {
		for id, a := range addrs {
			tr.RegisterAddr(id, a)
		}
	}

	// Each node is owned by exactly one driver goroutine (raft.Node is
	// not thread-safe); the main goroutine communicates via channels and
	// per-node leadership flags.
	stop := make(chan struct{})
	committed := make(chan string, 16)
	isLeader := map[uint64]*atomic.Bool{}
	proposeCh := map[uint64]chan []byte{}
	for _, id := range ids {
		isLeader[id] = &atomic.Bool{}
		proposeCh[id] = make(chan []byte, 4)
	}
	for _, id := range ids {
		id := id
		n, err := raft.NewNode(raft.Config{
			ID: id, Peers: ids,
			ElectionTickMin: 20, ElectionTickMax: 40, HeartbeatTick: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			tick := time.NewTicker(5 * time.Millisecond) // 1 tick = 5ms
			defer tick.Stop()
			tr := transports[id]
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					n.Tick()
				case m := <-tr.Recv():
					_ = n.Step(m)
				case data := <-proposeCh[id]:
					_ = n.Propose(data)
				}
				rd := n.Ready()
				isLeader[id].Store(rd.State == raft.Leader)
				for _, m := range rd.Messages {
					_ = tr.Send(m) // drops on failure; raft retries
				}
				for _, e := range rd.Committed {
					if e.Type == raft.EntryNormal && len(e.Data) > 0 {
						select {
						case committed <- fmt.Sprintf("%d:%s", id, e.Data):
						default:
						}
					}
				}
			}
		}()
	}
	defer close(stop)

	// Wait for a leader, then propose through its driver.
	deadline := time.After(15 * time.Second)
	var leaderID uint64
	for leaderID == 0 {
		select {
		case <-deadline:
			t.Fatal("no leader elected over TCP")
		case <-time.After(20 * time.Millisecond):
			for _, id := range ids {
				if isLeader[id].Load() {
					leaderID = id
				}
			}
		}
	}
	proposeCh[leaderID] <- []byte("tcp-entry")
	seen := map[string]bool{}
	for len(seen) < 3 {
		select {
		case s := <-committed:
			seen[s] = true
		case <-time.After(15 * time.Second):
			t.Fatalf("only %d/3 nodes committed: %v", len(seen), seen)
		}
	}
}
