package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/raft"
	"repro/internal/wire"
)

// newPair starts two transports on loopback with dynamic ports.
func newPair(t *testing.T) (*RaftTCP, *RaftTCP) {
	t.Helper()
	// Bootstrap with port 0, then exchange real addresses.
	t1, err := NewRaftTCP(1, map[uint64]string{1: "127.0.0.1:0", 2: "127.0.0.1:1"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := NewRaftTCP(2, map[uint64]string{1: t1.Addr(), 2: "127.0.0.1:0"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t1.RegisterAddr(2, t2.Addr())
	t.Cleanup(func() {
		t1.Close()
		t2.Close()
	})
	return t1, t2
}

func recvWithTimeout(t *testing.T, ch <-chan raft.Message) raft.Message {
	t.Helper()
	select {
	case m := <-ch:
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for message")
		return raft.Message{}
	}
}

func TestTCPRoundTrip(t *testing.T) {
	t1, t2 := newPair(t)
	msg := raft.Message{
		Type: raft.MsgAppend, From: 1, To: 2, Term: 7,
		Entries: []raft.Entry{{Index: 1, Term: 7, Data: []byte("hello")}},
		Commit:  1,
	}
	if err := t1.Send(msg); err != nil {
		t.Fatal(err)
	}
	got := recvWithTimeout(t, t2.Recv())
	if got.Term != 7 || got.From != 1 || len(got.Entries) != 1 || string(got.Entries[0].Data) != "hello" {
		t.Fatalf("got %+v", got)
	}
	// And the reverse direction.
	if err := t2.Send(raft.Message{Type: raft.MsgAppendResponse, From: 2, To: 1, Term: 7, Match: 1}); err != nil {
		t.Fatal(err)
	}
	back := recvWithTimeout(t, t1.Recv())
	if back.Match != 1 || back.From != 2 {
		t.Fatalf("got %+v", back)
	}
}

func TestTCPManyMessages(t *testing.T) {
	t1, t2 := newPair(t)
	const n = 200
	for i := 0; i < n; i++ {
		if err := t1.Send(raft.Message{Type: raft.MsgVoteRequest, From: 1, To: 2, Term: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		m := recvWithTimeout(t, t2.Recv())
		if m.Term != uint64(i) {
			t.Fatalf("message %d: term %d (reordered?)", i, m.Term)
		}
	}
	if t1.Counter().TotalMessages() != n {
		t.Fatalf("counted %d messages", t1.Counter().TotalMessages())
	}
}

func TestTCPSendToUnknownPeer(t *testing.T) {
	t1, _ := newPair(t)
	if err := t1.Send(raft.Message{To: 99}); err == nil {
		t.Fatal("want error for unknown peer")
	}
}

func TestTCPDialFailure(t *testing.T) {
	tr, err := NewRaftTCP(1, map[uint64]string{1: "127.0.0.1:0", 2: "127.0.0.1:1"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// Port 1 is almost certainly closed. Sends are asynchronous: they
	// must not error or block; instead the peer's circuit opens after
	// repeated dial failures and the dropped messages are counted.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			st, _ := tr.PeerState(2)
			t.Fatalf("circuit never opened; state %v", st)
		}
		if err := tr.Send(raft.Message{To: 2}); err != nil {
			t.Fatal(err)
		}
		if st, ok := tr.PeerState(2); ok && (st == CircuitDown || st == CircuitProbing) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	states := tr.PeerStates()
	if len(states) != 1 || states[0].Peer != 2 {
		t.Fatalf("PeerStates = %+v", states)
	}
	if states[0].Drops == 0 {
		t.Fatal("expected dropped messages toward the dead peer")
	}
}

// TestTCPHeadOfLineBlocking is the regression test for the synchronous
// transport's worst failure mode: one dark peer stalling traffic to
// everyone else. Peer 3 accepts connections but never reads, so the
// sender's conn.Write blocks once kernel buffers fill — under the old
// design that happened while holding the transport-wide mutex, freezing
// sends to the healthy peer 2. With per-peer senders, only peer 3's
// goroutine stalls: Send stays non-blocking and healthy round-trips
// stay fast.
func TestTCPHeadOfLineBlocking(t *testing.T) {
	t1, t2 := newPair(t)
	// Dark peer: a raw listener that accepts and then ignores the conn.
	dark, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dark.Close()
	var darkConns []net.Conn
	var darkMu sync.Mutex
	go func() {
		for {
			c, err := dark.Accept()
			if err != nil {
				return
			}
			darkMu.Lock()
			darkConns = append(darkConns, c)
			darkMu.Unlock()
		}
	}()
	defer func() {
		darkMu.Lock()
		for _, c := range darkConns {
			c.Close()
		}
		darkMu.Unlock()
	}()
	t1.RegisterAddr(3, dark.Addr().String())

	// Saturate the path to the dark peer: big entries fill the kernel
	// buffers within a few messages, wedging peer 3's sender in Write.
	big := raft.Message{
		Type: raft.MsgAppend, From: 1, To: 3,
		Entries: []raft.Entry{{Data: make([]byte, 64<<10)}},
	}
	start := time.Now()
	for i := 0; i < 600; i++ {
		if err := t1.Send(big); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("600 sends to a wedged peer took %v; Send must not block", d)
	}
	// The bounded queue must be shedding, not growing without bound.
	states := t1.PeerStates()
	var darkDrops int64
	for _, s := range states {
		if s.Peer == 3 {
			darkDrops = s.Drops
			if s.QueueLen > 512 {
				t.Fatalf("queue exceeded its bound: %+v", s)
			}
		}
	}
	if darkDrops == 0 {
		t.Fatalf("expected queue-overflow drops toward the wedged peer; states %+v", states)
	}

	// Healthy round-trips while peer 3 is wedged: each must complete
	// promptly (they take microseconds; seconds would mean HOL blocking).
	for i := 0; i < 50; i++ {
		sendStart := time.Now()
		if err := t1.Send(raft.Message{Type: raft.MsgVoteRequest, From: 1, To: 2, Term: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(sendStart); d > 250*time.Millisecond {
			t.Fatalf("Send to healthy peer took %v while another peer is dark", d)
		}
		m := recvWithTimeout(t, t2.Recv())
		if m.Term != uint64(i) {
			t.Fatalf("round %d: got term %d", i, m.Term)
		}
	}
}

// TestTCPExactByteAccounting checks the counter records real encoded
// sizes: the transport's byte total must equal the sum of the wire
// codec's frame sizes for the same messages — computable without
// encoding, which is what makes exact accounting free.
func TestTCPExactByteAccounting(t *testing.T) {
	t1, t2 := newPair(t)
	msgs := []raft.Message{
		{Type: raft.MsgVoteRequest, From: 1, To: 2, Term: 3},
		{Type: raft.MsgAppend, From: 1, To: 2, Term: 3,
			Entries: []raft.Entry{{Index: 1, Term: 3, Data: []byte("weights")}}, Commit: 1},
		{Type: raft.MsgAppend, From: 1, To: 2, Term: 4,
			Entries: []raft.Entry{{Index: 2, Term: 4}, {Index: 3, Term: 4, Data: make([]byte, 100)}}},
	}
	var want int64
	for _, m := range msgs {
		if err := t1.Send(m); err != nil {
			t.Fatal(err)
		}
		want += int64(wire.RaftFrameSize(m))
	}
	for range msgs {
		recvWithTimeout(t, t2.Recv())
	}
	if got := t1.Counter().TotalBytes(); got != want {
		t.Fatalf("counted %d bytes, want exact wire frame size %d", got, want)
	}
	if got := t1.Counter().TotalMessages(); got != int64(len(msgs)) {
		t.Fatalf("counted %d messages, want %d", got, len(msgs))
	}
}

// TestTCPReconnectNoStreamWarmupTax is the regression contract for the
// reconnect cost fix: with per-connection gob encoders, every redial
// resent the stream's type preamble, so the first message after a
// reconnect cost more bytes than steady state. Wire frames are
// stateless — the first frame on a fresh connection must cost exactly
// as many bytes as the same message at steady state.
func TestTCPReconnectNoStreamWarmupTax(t *testing.T) {
	t1, t2 := newPair(t)
	msg := raft.Message{Type: raft.MsgAppend, From: 1, To: 2, Term: 3,
		Entries: []raft.Entry{{Index: 1, Term: 3, Data: []byte("weights")}}, Commit: 1}

	perMessage := func() int64 {
		before := t1.Counter().TotalBytes()
		if err := t1.Send(msg); err != nil {
			t.Fatal(err)
		}
		recvWithTimeout(t, t2.Recv())
		return t1.Counter().TotalBytes() - before
	}

	first := perMessage() // first message ever: fresh connection
	var steady int64
	for i := 0; i < 5; i++ {
		steady = perMessage()
		if steady != first {
			t.Fatalf("steady-state message cost %d bytes, first message cost %d", steady, first)
		}
	}

	// Restart peer 2 so the sender must redial, then compare the first
	// post-reconnect message's bytes against steady state.
	t2.Close()
	t2b, err := NewRaftTCP(2, map[uint64]string{1: t1.Addr(), 2: "127.0.0.1:0"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer t2b.Close()
	t1.RegisterAddr(2, t2b.Addr())

	// The stale connection may eat one send; poll until a message gets
	// through, then measure the NEXT delivered message cleanly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no delivery after reconnect")
		}
		if err := t1.Send(msg); err != nil {
			t.Fatal(err)
		}
		received := false
		select {
		case <-t2b.Recv():
			received = true
		case <-time.After(100 * time.Millisecond):
		}
		if received {
			break
		}
	}
	before := t1.Counter().TotalBytes()
	if err := t1.Send(msg); err != nil {
		t.Fatal(err)
	}
	recvWithTimeout(t, t2b.Recv())
	if got := t1.Counter().TotalBytes() - before; got != steady {
		t.Fatalf("first message after reconnect cost %d bytes, steady state costs %d (stream warmup tax)", got, steady)
	}
}

// TestTCPMeshSendToCrashedPeer covers the synchronous mesh's crashed
// paths: sends toward a crashed receiver are silently dropped (bytes
// still counted — the sender can't know), sends from a crashed peer
// fail with ErrCrashed, and the crashed peer's inbox stays empty.
func TestTCPMeshSendToCrashedPeer(t *testing.T) {
	m, err := NewTCPMesh(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Send(Message{From: 0, To: 2, Kind: "pre", Payload: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Crash(2); err != nil {
		t.Fatal(err)
	}
	before := m.Counter().TotalBytes()
	if err := m.Send(Message{From: 0, To: 2, Kind: "post", Payload: []float64{1, 2}}); err != nil {
		t.Fatalf("send to crashed peer must drop silently, got %v", err)
	}
	if got := m.Counter().TotalBytes(); got != before+16 {
		t.Fatalf("bytes to crashed peer not counted: %d → %d", before, got)
	}
	if msgs, _ := m.Drain(2); len(msgs) != 0 {
		t.Fatalf("crashed peer's inbox should be empty, got %d", len(msgs))
	}
	if err := m.Send(Message{From: 2, To: 0, Kind: "x"}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("send from crashed peer: got %v, want ErrCrashed", err)
	}
	// Healthy pair still works end to end.
	if err := m.Send(Message{From: 0, To: 1, Kind: "ok", Payload: []float64{3}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if msgs, _ := m.Drain(1); len(msgs) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthy peer never received")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	t1, t2 := newPair(t)
	if err := t1.Send(raft.Message{Type: raft.MsgVoteRequest, From: 1, To: 2, Term: 1}); err != nil {
		t.Fatal(err)
	}
	recvWithTimeout(t, t2.Recv())
	// Restart peer 2 on a new port.
	addr2old := t2.Addr()
	t2.Close()
	t2b, err := NewRaftTCP(2, map[uint64]string{1: t1.Addr(), 2: "127.0.0.1:0"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer t2b.Close()
	t1.RegisterAddr(2, t2b.Addr())
	if t2b.Addr() == addr2old {
		t.Log("reused port (fine)")
	}
	// The first send may fail on the stale connection; poll the
	// send-then-receive condition under a deadline (mimicking the raft
	// driver's retries) instead of sleeping a fixed backoff and hoping.
	deadline := time.Now().Add(10 * time.Second)
	delivered := false
	for !delivered {
		if time.Now().After(deadline) {
			t.Fatal("message not delivered after reconnect")
		}
		if err := t1.Send(raft.Message{Type: raft.MsgVoteRequest, From: 1, To: 2, Term: 2}); err != nil {
			time.Sleep(time.Millisecond) // redial immediately after a short breather
			continue
		}
		select {
		case m := <-t2b.Recv():
			if m.Term == 2 {
				delivered = true
			}
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// Full integration: three real raft nodes over loopback TCP elect a
// leader and replicate an entry, driven by real-time tickers.
func TestTCPRaftCluster(t *testing.T) {
	ids := []uint64{1, 2, 3}
	addrs := map[uint64]string{}
	transports := map[uint64]*RaftTCP{}
	// Listen first with dynamic ports.
	for _, id := range ids {
		boot := map[uint64]string{}
		for _, j := range ids {
			boot[j] = "127.0.0.1:1" // placeholder
		}
		boot[id] = "127.0.0.1:0"
		tr, err := NewRaftTCP(id, boot, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		transports[id] = tr
		addrs[id] = tr.Addr()
	}
	for _, tr := range transports {
		for id, a := range addrs {
			tr.RegisterAddr(id, a)
		}
	}

	// Each node is owned by exactly one driver goroutine (raft.Node is
	// not thread-safe); the main goroutine communicates via channels and
	// per-node leadership flags.
	stop := make(chan struct{})
	committed := make(chan string, 16)
	isLeader := map[uint64]*atomic.Bool{}
	proposeCh := map[uint64]chan []byte{}
	for _, id := range ids {
		isLeader[id] = &atomic.Bool{}
		proposeCh[id] = make(chan []byte, 4)
	}
	for _, id := range ids {
		id := id
		n, err := raft.NewNode(raft.Config{
			ID: id, Peers: ids,
			ElectionTickMin: 20, ElectionTickMax: 40, HeartbeatTick: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			tick := time.NewTicker(5 * time.Millisecond) // 1 tick = 5ms
			defer tick.Stop()
			tr := transports[id]
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					n.Tick()
				case m := <-tr.Recv():
					_ = n.Step(m)
				case data := <-proposeCh[id]:
					_ = n.Propose(data)
				}
				rd := n.Ready()
				isLeader[id].Store(rd.State == raft.Leader)
				for _, m := range rd.Messages {
					_ = tr.Send(m) // drops on failure; raft retries
				}
				for _, e := range rd.Committed {
					if e.Type == raft.EntryNormal && len(e.Data) > 0 {
						select {
						case committed <- fmt.Sprintf("%d:%s", id, e.Data):
						default:
						}
					}
				}
			}
		}()
	}
	defer close(stop)

	// Wait for a leader, then propose through its driver.
	deadline := time.After(15 * time.Second)
	var leaderID uint64
	for leaderID == 0 {
		select {
		case <-deadline:
			t.Fatal("no leader elected over TCP")
		case <-time.After(20 * time.Millisecond):
			for _, id := range ids {
				if isLeader[id].Load() {
					leaderID = id
				}
			}
		}
	}
	proposeCh[leaderID] <- []byte("tcp-entry")
	seen := map[string]bool{}
	for len(seen) < 3 {
		select {
		case s := <-committed:
			seen[s] = true
		case <-time.After(15 * time.Second):
			t.Fatalf("only %d/3 nodes committed: %v", len(seen), seen)
		}
	}
}
