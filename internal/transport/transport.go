// Package transport provides the message-passing substrate shared by the
// aggregation protocols: an in-memory mesh with exact byte accounting
// (used by the SAC engines and the two-layer system, and to cross-check
// the paper's closed-form communication-cost formulas) and a gob-over-TCP
// transport for running real peers (cmd/p2pfl-node).
package transport

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/compress"
	"repro/internal/telemetry"
)

// Message is one protocol message between peers. Payload is a flat vector
// of model weights (or shares/subtotals thereof); its wire size is
// 8·len(Payload) bytes, matching the paper's cost unit |w| = bytes of the
// weight tensor.
type Message struct {
	From, To int
	Kind     string
	ShareIdx int
	Payload  []float64
}

// WireBytes returns the accounted size of the message payload.
func (m Message) WireBytes() int64 { return int64(8 * len(m.Payload)) }

// Counter accumulates traffic statistics, categorized by message kind.
// It is safe for concurrent use.
type Counter struct {
	mu    sync.Mutex
	bytes map[string]int64
	msgs  map[string]int64
}

// NewCounter creates an empty traffic counter.
func NewCounter() *Counter {
	return &Counter{bytes: make(map[string]int64), msgs: make(map[string]int64)}
}

// Record adds one message of the given kind and size.
func (c *Counter) Record(kind string, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bytes[kind] += bytes
	c.msgs[kind]++
}

// Bytes returns the byte total for one kind.
func (c *Counter) Bytes(kind string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes[kind]
}

// Messages returns the message count for one kind.
func (c *Counter) Messages(kind string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.msgs[kind]
}

// TotalBytes returns the byte total across all kinds.
func (c *Counter) TotalBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t int64
	for _, b := range c.bytes {
		t += b
	}
	return t
}

// TotalMessages returns the message total across all kinds.
func (c *Counter) TotalMessages() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t int64
	for _, n := range c.msgs {
		t += n
	}
	return t
}

// Kinds returns the recorded kinds in sorted order.
func (c *Counter) Kinds() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.bytes))
	for k := range c.bytes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Reset clears all counts.
func (c *Counter) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bytes = make(map[string]int64)
	c.msgs = make(map[string]int64)
}

// Network is the fully connected peer fabric the round-synchronous SAC
// engines run on: a protocol phase Sends messages, then each peer Drains
// its inbox. Send must be synchronous — a message is in the receiver's
// inbox (or dropped at a crashed receiver) when Send returns. Mesh is
// the in-memory implementation; TCPMesh moves the same messages over
// real sockets.
type Network interface {
	// N returns the number of peers.
	N() int
	// Alive reports whether the peer has not crashed.
	Alive(peer int) bool
	// AlivePeers lists non-crashed peers in order.
	AlivePeers() []int
	// Crash marks a peer failed: it can no longer send, and messages to
	// it are dropped (after byte accounting — the sender cannot know).
	Crash(peer int) error
	// Send delivers a message to the destination peer's inbox.
	Send(Message) error
	// Drain removes and returns all messages queued for peer.
	Drain(peer int) ([]Message, error)
	// Counter exposes the traffic counter.
	Counter() *Counter
}

// Mesh is an in-memory, fully connected network of n peers with per-peer
// inboxes, crash simulation and byte accounting. It is the substrate for
// the round-synchronous SAC engines: a protocol phase Sends messages,
// then each peer Drains its inbox.
type Mesh struct {
	mu       sync.Mutex
	n        int
	inboxes  [][]Message
	crashed  []bool
	counter  *Counter
	observer func(Message)
	tel      meshTel
	comp     *compression
}

// meshTel holds the mesh's pre-resolved telemetry handles: aggregate
// send/receive/drop counters plus per-sender message and byte counts.
// All handles are nil (no-op) until SetTelemetry installs a registry.
type meshTel struct {
	msgsSent     *telemetry.Counter
	bytesSent    *telemetry.Counter
	msgsReceived *telemetry.Counter
	msgsDropped  *telemetry.Counter
	bytesSaved   *telemetry.Counter // uncompressed − accounted, per compressed send
	peerMsgs     []*telemetry.Counter // indexed by sender
	peerBytes    []*telemetry.Counter
}

// SetTelemetry wires the mesh into a registry, resolving aggregate
// transport/* counters and per-peer transport/peer<i>/* counters once
// up front. A nil registry resets the mesh to no-op instrumentation.
func (m *Mesh) SetTelemetry(reg *telemetry.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if reg == nil {
		m.tel = meshTel{}
		return
	}
	t := meshTel{
		msgsSent:     reg.Counter("transport/msgs_sent"),
		bytesSent:    reg.Counter("transport/bytes_sent"),
		msgsReceived: reg.Counter("transport/msgs_received"),
		msgsDropped:  reg.Counter("transport/msgs_dropped"),
		bytesSaved:   reg.Counter("transport/bytes_saved_compression"),
		peerMsgs:     make([]*telemetry.Counter, m.n),
		peerBytes:    make([]*telemetry.Counter, m.n),
	}
	for i := 0; i < m.n; i++ {
		t.peerMsgs[i] = reg.Counter(fmt.Sprintf("transport/peer%d/msgs_sent", i))
		t.peerBytes[i] = reg.Counter(fmt.Sprintf("transport/peer%d/bytes_sent", i))
	}
	m.tel = t
}

// NewMesh creates a mesh of n peers recording traffic into counter
// (which may be shared across meshes; nil allocates a private one).
func NewMesh(n int, counter *Counter) *Mesh {
	if counter == nil {
		counter = NewCounter()
	}
	return &Mesh{
		n:       n,
		inboxes: make([][]Message, n),
		crashed: make([]bool, n),
		counter: counter,
	}
}

// N returns the number of peers.
func (m *Mesh) N() int { return m.n }

// Counter returns the mesh's traffic counter.
func (m *Mesh) Counter() *Counter { return m.counter }

// Observe installs a callback invoked (under the mesh lock) for every
// message accepted by Send, including messages to crashed receivers.
// Protocol audits — e.g. verifying what an honest-but-curious leader
// gets to see — use this to capture traffic without altering it.
func (m *Mesh) Observe(fn func(Message)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.observer = fn
}

// SetCompression turns lossy compression on for the given message kinds
// (or off again: scheme None or an empty kind list). A compressed Send
// accounts the encoded block size instead of 8·dim and delivers the
// decoded (lossy) payload, so inboxes see exactly what a receiver could
// reconstruct from the wire. Kinds not listed — in particular the SAC
// share/subtotal/audit traffic, which must stay bit-exact — are
// untouched. Call between rounds, not concurrently with Send.
func (m *Mesh) SetCompression(cfg compress.Config, kinds ...string) error {
	comp, err := newCompression(cfg, kinds)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.comp = comp
	return nil
}

// Crash marks a peer as crashed: it can no longer send, and messages to
// it are dropped (but still counted as sent — the sender cannot know the
// receiver is down, so the bytes hit the wire).
func (m *Mesh) Crash(peer int) error {
	if err := m.check(peer); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashed[peer] = true
	if q := len(m.inboxes[peer]); q > 0 {
		m.tel.msgsDropped.Add(int64(q))
	}
	m.inboxes[peer] = nil
	return nil
}

// Alive reports whether a peer has not crashed.
func (m *Mesh) Alive(peer int) bool {
	if peer < 0 || peer >= m.n {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.crashed[peer]
}

// AlivePeers returns the IDs of all non-crashed peers in order.
func (m *Mesh) AlivePeers() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []int
	for i, c := range m.crashed {
		if !c {
			out = append(out, i)
		}
	}
	return out
}

// Send delivers msg to its destination's inbox. A crashed sender returns
// ErrCrashed; a crashed receiver silently drops the message after the
// bytes are counted.
func (m *Mesh) Send(msg Message) error {
	if err := m.check(msg.From); err != nil {
		return err
	}
	if err := m.check(msg.To); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed[msg.From] {
		return fmt.Errorf("transport: %w: peer %d", ErrCrashed, msg.From)
	}
	wireBytes := msg.WireBytes()
	if m.comp.applies(msg.Kind) {
		d, err := m.comp.cfg.Compress(msg.Payload)
		if err != nil {
			return fmt.Errorf("transport: compress %s: %w", msg.Kind, err)
		}
		wireBytes = d.EncodedBytes()
		m.tel.bytesSaved.Add(msg.WireBytes() - wireBytes)
		// Deliver what the receiver could reconstruct from the wire.
		msg.Payload = d.Dense(nil)
	}
	m.counter.Record(msg.Kind, wireBytes)
	m.tel.msgsSent.Inc()
	m.tel.bytesSent.Add(wireBytes)
	if m.tel.peerMsgs != nil {
		m.tel.peerMsgs[msg.From].Inc()
		m.tel.peerBytes[msg.From].Add(wireBytes)
	}
	if m.observer != nil {
		m.observer(msg)
	}
	if m.crashed[msg.To] {
		m.tel.msgsDropped.Inc()
		return nil
	}
	m.inboxes[msg.To] = append(m.inboxes[msg.To], msg)
	return nil
}

// Drain removes and returns all messages queued for peer.
func (m *Mesh) Drain(peer int) ([]Message, error) {
	if err := m.check(peer); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.inboxes[peer]
	m.inboxes[peer] = nil
	if len(out) > 0 {
		m.tel.msgsReceived.Add(int64(len(out)))
	}
	return out, nil
}

func (m *Mesh) check(peer int) error {
	if peer < 0 || peer >= m.n {
		return fmt.Errorf("transport: peer %d out of [0,%d)", peer, m.n)
	}
	return nil
}

// compression is the shared per-fabric compression state: a validated
// config plus the set of message kinds it applies to. A nil *compression
// means "off" — the hot send path pays one nil check.
type compression struct {
	cfg   compress.Config
	kinds map[string]bool
}

// applies reports whether messages of this kind are compressed.
func (c *compression) applies(kind string) bool {
	return c != nil && c.kinds[kind]
}

// newCompression validates and builds the per-fabric state; it returns
// nil (off) when the config is None or no kinds are listed.
func newCompression(cfg compress.Config, kinds []string) (*compression, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() || len(kinds) == 0 {
		return nil, nil
	}
	set := make(map[string]bool, len(kinds))
	for _, k := range kinds {
		set[k] = true
	}
	return &compression{cfg: cfg, kinds: set}, nil
}

// ErrCrashed is returned when a crashed peer attempts to send.
var ErrCrashed = errCrashed{}

type errCrashed struct{}

func (errCrashed) Error() string { return "peer crashed" }
