package transport

import (
	"errors"
	"sync"
	"testing"
)

func TestCounterRecords(t *testing.T) {
	c := NewCounter()
	c.Record("a", 100)
	c.Record("a", 50)
	c.Record("b", 8)
	if c.Bytes("a") != 150 || c.Bytes("b") != 8 {
		t.Fatalf("bytes: a=%d b=%d", c.Bytes("a"), c.Bytes("b"))
	}
	if c.Messages("a") != 2 || c.Messages("b") != 1 {
		t.Fatal("message counts wrong")
	}
	if c.TotalBytes() != 158 || c.TotalMessages() != 3 {
		t.Fatalf("totals: %d bytes, %d msgs", c.TotalBytes(), c.TotalMessages())
	}
	kinds := c.Kinds()
	if len(kinds) != 2 || kinds[0] != "a" || kinds[1] != "b" {
		t.Fatalf("kinds = %v", kinds)
	}
	c.Reset()
	if c.TotalBytes() != 0 || len(c.Kinds()) != 0 {
		t.Fatal("reset failed")
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Record("x", 1)
			}
		}()
	}
	wg.Wait()
	if c.Bytes("x") != 8000 {
		t.Fatalf("bytes = %d, want 8000", c.Bytes("x"))
	}
}

func TestMessageWireBytes(t *testing.T) {
	m := Message{Payload: make([]float64, 10)}
	if m.WireBytes() != 80 {
		t.Fatalf("wire bytes = %d", m.WireBytes())
	}
}

func TestMeshSendDrain(t *testing.T) {
	m := NewMesh(3, nil)
	if m.N() != 3 {
		t.Fatal("N wrong")
	}
	msg := Message{From: 0, To: 2, Kind: "k", Payload: []float64{1, 2}}
	if err := m.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := m.Drain(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].From != 0 || got[0].Payload[1] != 2 {
		t.Fatalf("drained %v", got)
	}
	// Drain empties the inbox.
	got, err = m.Drain(2)
	if err != nil || len(got) != 0 {
		t.Fatalf("second drain: %v, %v", got, err)
	}
	if m.Counter().Bytes("k") != 16 {
		t.Fatalf("counted %d bytes", m.Counter().Bytes("k"))
	}
}

func TestMeshCrashSemantics(t *testing.T) {
	m := NewMesh(3, nil)
	if err := m.Crash(1); err != nil {
		t.Fatal(err)
	}
	if m.Alive(1) {
		t.Fatal("crashed peer reported alive")
	}
	// Crashed sender errors.
	err := m.Send(Message{From: 1, To: 0, Kind: "k", Payload: []float64{1}})
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	// Crashed receiver: message counted but dropped.
	before := m.Counter().TotalBytes()
	if err := m.Send(Message{From: 0, To: 1, Kind: "k", Payload: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if m.Counter().TotalBytes() != before+8 {
		t.Fatal("bytes to crashed receiver must still be counted")
	}
	alive := m.AlivePeers()
	if len(alive) != 2 || alive[0] != 0 || alive[1] != 2 {
		t.Fatalf("alive = %v", alive)
	}
}

func TestMeshRangeErrors(t *testing.T) {
	m := NewMesh(2, nil)
	if err := m.Send(Message{From: -1, To: 0}); err == nil {
		t.Fatal("want error for negative sender")
	}
	if err := m.Send(Message{From: 0, To: 5}); err == nil {
		t.Fatal("want error for receiver out of range")
	}
	if _, err := m.Drain(9); err == nil {
		t.Fatal("want error for drain out of range")
	}
	if err := m.Crash(9); err == nil {
		t.Fatal("want error for crash out of range")
	}
	if m.Alive(-2) {
		t.Fatal("out-of-range peer cannot be alive")
	}
}

func TestSharedCounterAcrossMeshes(t *testing.T) {
	c := NewCounter()
	m1 := NewMesh(2, c)
	m2 := NewMesh(2, c)
	_ = m1.Send(Message{From: 0, To: 1, Kind: "k", Payload: []float64{1}})
	_ = m2.Send(Message{From: 0, To: 1, Kind: "k", Payload: []float64{1, 2}})
	if c.TotalBytes() != 24 {
		t.Fatalf("shared counter = %d", c.TotalBytes())
	}
}
