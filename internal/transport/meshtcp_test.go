package transport

import (
	"errors"
	"testing"
)

func newTCPMesh(t *testing.T, n int) *TCPMesh {
	t.Helper()
	m, err := NewTCPMesh(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func TestTCPMeshSendDrain(t *testing.T) {
	m := newTCPMesh(t, 3)
	msg := Message{From: 0, To: 2, Kind: "k", ShareIdx: 1, Payload: []float64{1, 2, 3}}
	if err := m.Send(msg); err != nil {
		t.Fatal(err)
	}
	// Send is synchronous: the message is already in the inbox.
	got, err := m.Drain(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ShareIdx != 1 || got[0].Payload[2] != 3 {
		t.Fatalf("drained %v", got)
	}
	if m.Counter().Bytes("k") != 24 {
		t.Fatalf("counted %d bytes", m.Counter().Bytes("k"))
	}
}

func TestTCPMeshOrderingPreserved(t *testing.T) {
	m := newTCPMesh(t, 2)
	for i := 0; i < 50; i++ {
		if err := m.Send(Message{From: 0, To: 1, Kind: "seq", ShareIdx: i, Payload: []float64{0}}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := m.Drain(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("got %d messages", len(got))
	}
	for i, msg := range got {
		if msg.ShareIdx != i {
			t.Fatalf("message %d has index %d", i, msg.ShareIdx)
		}
	}
}

func TestTCPMeshCrashSemantics(t *testing.T) {
	m := newTCPMesh(t, 3)
	if err := m.Crash(1); err != nil {
		t.Fatal(err)
	}
	if m.Alive(1) {
		t.Fatal("crashed peer alive")
	}
	// Crashed sender errors.
	if err := m.Send(Message{From: 1, To: 0, Kind: "k", Payload: []float64{1}}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	// Crashed receiver: counted, dropped, no error.
	before := m.Counter().TotalBytes()
	if err := m.Send(Message{From: 0, To: 1, Kind: "k", Payload: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if m.Counter().TotalBytes() != before+8 {
		t.Fatal("bytes to crashed receiver must be counted")
	}
	alive := m.AlivePeers()
	if len(alive) != 2 || alive[0] != 0 || alive[1] != 2 {
		t.Fatalf("alive = %v", alive)
	}
}

func TestTCPMeshValidation(t *testing.T) {
	if _, err := NewTCPMesh(0, nil); err == nil {
		t.Fatal("want error for 0 peers")
	}
	m := newTCPMesh(t, 2)
	if err := m.Send(Message{From: -1, To: 0}); err == nil {
		t.Fatal("want endpoint error")
	}
	if _, err := m.Drain(5); err == nil {
		t.Fatal("want range error")
	}
	if err := m.Crash(9); err == nil {
		t.Fatal("want range error")
	}
	if m.Alive(-1) {
		t.Fatal("out of range cannot be alive")
	}
	m.Close()
	if err := m.Send(Message{From: 0, To: 1}); err == nil {
		t.Fatal("want closed error")
	}
	if err := m.Close(); err != nil {
		t.Fatal("Close must be idempotent")
	}
}
