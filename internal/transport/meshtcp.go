package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"repro/internal/compress"
	"repro/internal/wire"
)

// Compile-time checks: both fabrics implement Network.
var (
	_ Network = (*Mesh)(nil)
	_ Network = (*TCPMesh)(nil)
)

// TCPMesh is a Network whose messages travel over real TCP sockets (one
// loopback listener per peer) in wire-codec frames. Send is synchronous:
// it blocks until the receiver has decoded the message into its inbox
// and acknowledged it, preserving the round-synchronous semantics the
// SAC engines rely on.
//
// The protocol logic is identical to the in-memory Mesh; this fabric
// exists to demonstrate the aggregation running over an actual network
// stack (the paper's system used gRPC between layers). The traffic
// counter still records the paper's cost unit 8·dim per payload, so the
// closed-form checks hold over sockets too.
type TCPMesh struct {
	mu        sync.Mutex
	n         int
	counter   *Counter
	crashed   []bool
	removed   []bool
	inboxes   [][]Message
	listeners []net.Listener
	addrs     []string
	served    []map[net.Conn]struct{} // live inbound conns per peer

	conns map[int]*tcpConn // keyed by destination peer
	comp  *compression

	closed bool
	wg     sync.WaitGroup
}

type tcpConn struct {
	c   net.Conn
	buf []byte // reused wire frame encode buffer
	br  *bufio.Reader
}

// NewTCPMesh creates a mesh of n peers listening on loopback with
// dynamic ports. Call Close when done.
func NewTCPMesh(n int, counter *Counter) (*TCPMesh, error) {
	if n < 1 {
		return nil, fmt.Errorf("transport: tcp mesh needs ≥ 1 peer")
	}
	if counter == nil {
		counter = NewCounter()
	}
	m := &TCPMesh{
		n:         n,
		counter:   counter,
		crashed:   make([]bool, n),
		removed:   make([]bool, n),
		inboxes:   make([][]Message, n),
		listeners: make([]net.Listener, n),
		addrs:     make([]string, n),
		served:    make([]map[net.Conn]struct{}, n),
		conns:     make(map[int]*tcpConn),
	}
	for i := 0; i < n; i++ {
		m.served[i] = make(map[net.Conn]struct{})
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("transport: tcp mesh listen: %w", err)
		}
		m.listeners[i] = ln
		m.addrs[i] = ln.Addr().String()
		m.wg.Add(1)
		go m.acceptLoop(i, ln)
	}
	return m, nil
}

func (m *TCPMesh) acceptLoop(peer int, ln net.Listener) {
	defer m.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		m.wg.Add(1)
		go m.serveConn(peer, conn)
	}
}

func (m *TCPMesh) serveConn(peer int, conn net.Conn) {
	defer m.wg.Done()
	defer conn.Close()
	m.mu.Lock()
	m.served[peer][conn] = struct{}{}
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.served[peer], conn)
		m.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var scratch []byte
	for {
		// Accept plain mesh frames and the compressed v2 delta kinds on
		// the same socket; a compressed block is reconstructed into the
		// dense payload the protocol layer expects.
		wm, qd, sd, next, err := wire.ReadAnyMeshFrame(br, scratch)
		if err != nil {
			return
		}
		scratch = next
		payload := wm.Payload
		if qd != nil {
			payload = qd.Dense(nil)
		} else if sd != nil {
			payload = sd.Dense(nil)
		}
		msg := Message{From: wm.From, To: wm.To, Kind: wm.Kind, ShareIdx: wm.ShareIdx, Payload: payload}
		m.mu.Lock()
		if !m.crashed[peer] {
			m.inboxes[peer] = append(m.inboxes[peer], msg)
		}
		m.mu.Unlock()
		if err := bw.WriteByte(1); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// N implements Network.
func (m *TCPMesh) N() int { return m.n }

// Counter implements Network.
func (m *TCPMesh) Counter() *Counter { return m.counter }

// Alive implements Network.
func (m *TCPMesh) Alive(peer int) bool {
	if peer < 0 || peer >= m.n {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.crashed[peer]
}

// AlivePeers implements Network.
func (m *TCPMesh) AlivePeers() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []int
	for i, c := range m.crashed {
		if !c {
			out = append(out, i)
		}
	}
	return out
}

// Crash implements Network: the peer's listener closes and its inbox is
// dropped.
func (m *TCPMesh) Crash(peer int) error {
	if peer < 0 || peer >= m.n {
		return fmt.Errorf("transport: peer %d out of [0,%d)", peer, m.n)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashed[peer] = true
	m.inboxes[peer] = nil
	m.listeners[peer].Close()
	return nil
}

// RemovePeer permanently detaches a peer from the mesh: its listener
// closes, every inbound connection serving it is torn down (the serve
// goroutines exit), the cached outbound connection toward it is dropped
// and its inbox is discarded. Unlike Crash — a fault the fabric keeps
// accounting bytes toward, because the sender cannot know the receiver
// is gone — sends to or from a removed peer fail loudly: the membership
// no longer contains it, so traffic toward it is a protocol bug.
func (m *TCPMesh) RemovePeer(peer int) error {
	if peer < 0 || peer >= m.n {
		return fmt.Errorf("transport: peer %d out of [0,%d)", peer, m.n)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.removed[peer] = true
	m.crashed[peer] = true
	m.inboxes[peer] = nil
	m.listeners[peer].Close()
	for c := range m.served[peer] {
		c.Close()
	}
	if c, ok := m.conns[peer]; ok {
		c.c.Close()
		delete(m.conns, peer)
	}
	return nil
}

// SetCompression mirrors Mesh.SetCompression for the socket fabric: a
// compressed Send puts an actual quantized/sparse wire frame on the
// socket (the receiver reconstructs the dense payload on decode) and
// accounts the encoded block size in the counter, keeping byte totals
// identical to the in-memory Mesh. Call between rounds, not
// concurrently with Send.
func (m *TCPMesh) SetCompression(cfg compress.Config, kinds ...string) error {
	comp, err := newCompression(cfg, kinds)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.comp = comp
	return nil
}

// Send implements Network with per-message acknowledgement.
func (m *TCPMesh) Send(msg Message) error {
	if msg.From < 0 || msg.From >= m.n || msg.To < 0 || msg.To >= m.n {
		return fmt.Errorf("transport: bad endpoints %d→%d", msg.From, msg.To)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return fmt.Errorf("transport: tcp mesh closed")
	}
	if m.removed[msg.From] || m.removed[msg.To] {
		gone := msg.To
		if m.removed[msg.From] {
			gone = msg.From
		}
		m.mu.Unlock()
		return fmt.Errorf("transport: peer %d removed from mesh", gone)
	}
	if m.crashed[msg.From] {
		m.mu.Unlock()
		return fmt.Errorf("transport: %w: peer %d", ErrCrashed, msg.From)
	}
	comp := m.comp
	toCrashed := m.crashed[msg.To]
	m.mu.Unlock()
	var delta compress.Delta
	compressed := false
	wireBytes := msg.WireBytes()
	if comp.applies(msg.Kind) {
		var err error
		delta, err = comp.cfg.Compress(msg.Payload)
		if err != nil {
			return fmt.Errorf("transport: compress %s: %w", msg.Kind, err)
		}
		compressed = true
		wireBytes = delta.EncodedBytes()
	}
	m.counter.Record(msg.Kind, wireBytes)
	if toCrashed {
		// Bytes hit the wire toward a dead peer; nothing arrives.
		return nil
	}
	conn, err := m.dial(msg.To)
	if err != nil {
		// The receiver may have crashed between the check and the dial.
		if !m.Alive(msg.To) {
			return nil
		}
		return err
	}
	env := wire.MeshMessage{From: msg.From, To: msg.To, Kind: msg.Kind, ShareIdx: msg.ShareIdx}
	if compressed {
		conn.buf = delta.AppendFrame(conn.buf[:0], env)
	} else {
		env.Payload = msg.Payload
		conn.buf = wire.AppendMeshFrame(conn.buf[:0], env)
	}
	if _, err := conn.c.Write(conn.buf); err != nil {
		m.dropConn(msg.To)
		if !m.Alive(msg.To) {
			return nil
		}
		return fmt.Errorf("transport: tcp send: %w", err)
	}
	if _, err := conn.br.ReadByte(); err != nil {
		m.dropConn(msg.To)
		if !m.Alive(msg.To) {
			return nil
		}
		return fmt.Errorf("transport: tcp ack: %w", err)
	}
	return nil
}

// dial returns a cached connection to the destination peer.
func (m *TCPMesh) dial(to int) (*tcpConn, error) {
	m.mu.Lock()
	if c, ok := m.conns[to]; ok {
		m.mu.Unlock()
		return c, nil
	}
	addr := m.addrs[to]
	m.mu.Unlock()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: tcp dial %s: %w", addr, err)
	}
	c := &tcpConn{c: raw, br: bufio.NewReader(raw)}
	m.mu.Lock()
	m.conns[to] = c
	m.mu.Unlock()
	return c, nil
}

func (m *TCPMesh) dropConn(to int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.conns[to]; ok {
		c.c.Close()
		delete(m.conns, to)
	}
}

// Drain implements Network.
func (m *TCPMesh) Drain(peer int) ([]Message, error) {
	if peer < 0 || peer >= m.n {
		return nil, fmt.Errorf("transport: peer %d out of [0,%d)", peer, m.n)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.inboxes[peer]
	m.inboxes[peer] = nil
	return out, nil
}

// Close shuts all listeners and connections down.
func (m *TCPMesh) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	for _, ln := range m.listeners {
		if ln != nil {
			ln.Close()
		}
	}
	for to, c := range m.conns {
		c.c.Close()
		delete(m.conns, to)
	}
	m.mu.Unlock()
	m.wg.Wait()
	return nil
}
