package transport

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/raft"
)

// waitGoroutinesBelow polls until the process goroutine count drops to
// at most want, failing the test after the deadline. Goroutine counts
// are global, so callers must make their deltas unambiguous (spawn the
// goroutines under test, measure, tear down, expect the exact drop).
func waitGoroutinesBelow(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("still %d goroutines, want ≤ %d — sender/serve goroutine leaked", runtime.NumGoroutine(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRaftTCPRemovePeerStopsSender is the goroutine-leak regression for
// peer removal: the departed peer's sender goroutine must exit, its
// circuit state must disappear, queued messages must drain as drops, and
// a later re-registration must start from a clean circuit.
func TestRaftTCPRemovePeerStopsSender(t *testing.T) {
	tr, err := NewRaftTCP(1, map[uint64]string{1: "127.0.0.1:0"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	base := runtime.NumGoroutine()

	// Point peer 2 at a dead port and push traffic until its circuit
	// opens — the sender goroutine is now alive with failure count and
	// dial backoff accumulated.
	tr.RegisterAddr(2, "127.0.0.1:1")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			st, _ := tr.PeerState(2)
			t.Fatalf("circuit never opened; state %v", st)
		}
		if err := tr.Send(raft.Message{Type: raft.MsgAppend, From: 1, To: 2}); err != nil {
			t.Fatal(err)
		}
		if st, ok := tr.PeerState(2); ok && (st == CircuitDown || st == CircuitProbing) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	tr.RemovePeer(2)

	// All per-peer state is gone: no circuit, no address, and the sender
	// goroutine exits (back to the pre-sender goroutine count).
	if _, ok := tr.PeerState(2); ok {
		t.Fatal("removed peer still has circuit state")
	}
	if err := tr.Send(raft.Message{Type: raft.MsgAppend, From: 1, To: 2}); err == nil {
		t.Fatal("send to removed peer must fail with unknown destination")
	}
	waitGoroutinesBelow(t, base)

	// Removing again (or an id that never had a sender) is a no-op.
	tr.RemovePeer(2)
	tr.RemovePeer(99)

	// Readopt under the same id: a real peer registered after removal
	// gets a fresh sender — clean circuit, no inherited backoff — and
	// traffic flows immediately.
	t2, err := NewRaftTCP(2, map[uint64]string{1: tr.Addr(), 2: "127.0.0.1:0"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer t2.Close()
	tr.RegisterAddr(2, t2.Addr())
	if err := tr.Send(raft.Message{Type: raft.MsgAppend, From: 1, To: 2, Term: 9}); err != nil {
		t.Fatal(err)
	}
	got := recvWithTimeout(t, t2.Recv())
	if got.Term != 9 {
		t.Fatalf("readopted peer received %+v", got)
	}
	if st, ok := tr.PeerState(2); !ok || st != CircuitUp {
		t.Fatalf("readopted peer circuit = %v (ok=%v), want fresh CircuitUp", st, ok)
	}
}

// TestTCPMeshRemovePeer checks the synchronous fabric: removal tears
// down the peer's listener, serve goroutines and the cached outbound
// connection; sends touching the removed peer fail loudly while the
// rest of the mesh keeps working.
func TestTCPMeshRemovePeer(t *testing.T) {
	m, err := NewTCPMesh(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Establish a live connection toward peer 2 (spawns its serveConn).
	if err := m.Send(Message{From: 0, To: 2, Kind: "share", Payload: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()

	if err := m.RemovePeer(2); err != nil {
		t.Fatal(err)
	}
	// Accept loop + serve goroutine for peer 2 both exit.
	waitGoroutinesBelow(t, base-2)

	if m.Alive(2) {
		t.Fatal("removed peer reported alive")
	}
	if err := m.Send(Message{From: 0, To: 2, Kind: "share", Payload: []float64{3}}); err == nil {
		t.Fatal("send to removed peer must fail")
	}
	if err := m.Send(Message{From: 2, To: 0, Kind: "share", Payload: []float64{3}}); err == nil {
		t.Fatal("send from removed peer must fail")
	}
	if msgs, err := m.Drain(2); err != nil || len(msgs) != 0 {
		t.Fatalf("removed peer inbox = %v (err %v), want empty", msgs, err)
	}

	// Survivors still talk.
	if err := m.Send(Message{From: 0, To: 1, Kind: "share", Payload: []float64{4, 5}}); err != nil {
		t.Fatal(err)
	}
	msgs, err := m.Drain(1)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("survivor drain = %v (err %v)", msgs, err)
	}
	if err := m.RemovePeer(2); err != nil {
		t.Fatal("second removal must be a no-op, got", err)
	}
}
