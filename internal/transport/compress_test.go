package transport

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/compress"
	"repro/internal/telemetry"
)

func compressTestVec(dim int) []float64 {
	rng := rand.New(rand.NewSource(77))
	w := make([]float64, dim)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	return w
}

// TestMeshCompressionAccounting: a compressed kind is charged the
// encoded block size, an unlisted kind keeps the 8·dim unit, and the
// delivered payload is the lossy reconstruction.
func TestMeshCompressionAccounting(t *testing.T) {
	const dim = 500
	w := compressTestVec(dim)
	cfg := compress.Config{Scheme: compress.Quant8}
	mesh := NewMesh(2, nil)
	reg := telemetry.New()
	mesh.SetTelemetry(reg)
	if err := mesh.SetCompression(cfg, "fedavg/download"); err != nil {
		t.Fatal(err)
	}

	if err := mesh.Send(Message{From: 0, To: 1, Kind: "fedavg/download", Payload: w}); err != nil {
		t.Fatal(err)
	}
	if err := mesh.Send(Message{From: 0, To: 1, Kind: "sac/share", Payload: w}); err != nil {
		t.Fatal(err)
	}

	wantComp := cfg.MessageBytes(dim)
	if got := mesh.Counter().Bytes("fedavg/download"); got != wantComp {
		t.Fatalf("compressed kind charged %d, want %d", got, wantComp)
	}
	if got := mesh.Counter().Bytes("sac/share"); got != int64(8*dim) {
		t.Fatalf("unlisted kind charged %d, want %d", got, 8*dim)
	}
	if saved := reg.Counter("transport/bytes_saved_compression").Value(); saved != int64(8*dim)-wantComp {
		t.Fatalf("bytes_saved_compression = %d, want %d", saved, int64(8*dim)-wantComp)
	}

	msgs, err := mesh.Drain(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 {
		t.Fatalf("drained %d messages, want 2", len(msgs))
	}
	// The compressed message arrives lossy (but within the quant bound);
	// the exact kind arrives bit-identical.
	d, err := cfg.Compress(w)
	if err != nil {
		t.Fatal(err)
	}
	wantDec := d.Dense(nil)
	for j := range w {
		if msgs[0].Payload[j] != wantDec[j] {
			t.Fatalf("compressed payload coord %d: %g, want decoded %g", j, msgs[0].Payload[j], wantDec[j])
		}
		if msgs[1].Payload[j] != w[j] {
			t.Fatalf("exact payload coord %d mutated", j)
		}
	}

	// Turning compression off restores the original accounting.
	if err := mesh.SetCompression(compress.Config{}); err != nil {
		t.Fatal(err)
	}
	mesh.Counter().Reset()
	if err := mesh.Send(Message{From: 0, To: 1, Kind: "fedavg/download", Payload: w}); err != nil {
		t.Fatal(err)
	}
	if got := mesh.Counter().Bytes("fedavg/download"); got != int64(8*dim) {
		t.Fatalf("after disable: charged %d, want %d", got, 8*dim)
	}
}

func TestMeshSetCompressionValidates(t *testing.T) {
	mesh := NewMesh(2, nil)
	if err := mesh.SetCompression(compress.Config{Scheme: compress.Scheme(42)}, "x"); err == nil {
		t.Fatal("invalid scheme accepted")
	}
	tcp, err := NewTCPMesh(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	if err := tcp.SetCompression(compress.Config{Scheme: compress.TopK, Frac: 7}, "x"); err == nil {
		t.Fatal("invalid fraction accepted")
	}
}

// TestTCPMeshCompressionMatchesMesh drives the same traffic through the
// in-memory mesh and the socket fabric under every scheme and demands
// identical byte accounting and bit-identical delivered payloads — the
// socket round-trip through real quantized/sparse wire frames must lose
// exactly as much as the in-memory model says it does.
func TestTCPMeshCompressionMatchesMesh(t *testing.T) {
	const dim = 257
	w := compressTestVec(dim)
	kinds := []string{"fedavg/upload", "fedavg/download"}
	for _, cfg := range []compress.Config{
		{Scheme: compress.Quant8},
		{Scheme: compress.Quant16},
		{Scheme: compress.TopK, Frac: 0.2},
		{Scheme: compress.TopKQuant8, Frac: 0.2},
	} {
		mem := NewMesh(3, nil)
		tcp, err := NewTCPMesh(3, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := mem.SetCompression(cfg, kinds...); err != nil {
			t.Fatal(err)
		}
		if err := tcp.SetCompression(cfg, kinds...); err != nil {
			t.Fatal(err)
		}
		for _, kind := range []string{"fedavg/upload", "fedavg/download", "sac/subtotal"} {
			msg := Message{From: 0, To: 2, Kind: kind, ShareIdx: 1, Payload: w}
			if err := mem.Send(msg); err != nil {
				t.Fatal(err)
			}
			if err := tcp.Send(msg); err != nil {
				t.Fatal(err)
			}
		}
		memMsgs, err := mem.Drain(2)
		if err != nil {
			t.Fatal(err)
		}
		tcpMsgs, err := tcp.Drain(2)
		if err != nil {
			t.Fatal(err)
		}
		if len(memMsgs) != 3 || len(tcpMsgs) != 3 {
			t.Fatalf("%v: drained %d/%d messages, want 3/3", cfg, len(memMsgs), len(tcpMsgs))
		}
		for i := range memMsgs {
			a, b := memMsgs[i], tcpMsgs[i]
			if a.Kind != b.Kind || a.ShareIdx != b.ShareIdx || len(a.Payload) != len(b.Payload) {
				t.Fatalf("%v: message %d envelope mismatch", cfg, i)
			}
			for j := range a.Payload {
				if math.Float64bits(a.Payload[j]) != math.Float64bits(b.Payload[j]) {
					t.Fatalf("%v: %s coord %d: mesh %g vs tcp %g", cfg, a.Kind, j, a.Payload[j], b.Payload[j])
				}
			}
		}
		for _, kind := range []string{"fedavg/upload", "fedavg/download", "sac/subtotal"} {
			if mem.Counter().Bytes(kind) != tcp.Counter().Bytes(kind) {
				t.Fatalf("%v: %s bytes diverge: mesh %d vs tcp %d",
					cfg, kind, mem.Counter().Bytes(kind), tcp.Counter().Bytes(kind))
			}
		}
		if got := mem.Counter().Bytes("sac/subtotal"); got != int64(8*dim) {
			t.Fatalf("%v: sac kind compressed: %d bytes", cfg, got)
		}
		if got := mem.Counter().Bytes("fedavg/upload"); got != cfg.MessageBytes(dim) {
			t.Fatalf("%v: upload charged %d, want closed form %d", cfg, got, cfg.MessageBytes(dim))
		}
		tcp.Close()
	}
}
