package transport

import (
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/raft"
	"repro/internal/wire"
)

// syncSender replicates the pre-async transport's happy path — one
// shared mutex, a wire-frame encode straight onto the connection — as
// the baseline for the overhead contract: the per-peer queue+goroutine
// design must not cost the healthy path more than 5% (checked by
// cmd/p2pfl-benchjson -pairs
// 'RaftTCPSendHealthyPeerAsync=RaftTCPSendHealthyPeerSync'). It uses
// the same codec as the real sender so the pair isolates the queue
// design, not the serialization format.
type syncSender struct {
	mu      sync.Mutex
	conn    net.Conn
	buf     []byte
	counter *Counter
}

func newSyncSender(conn net.Conn) *syncSender {
	return &syncSender{conn: conn, counter: NewCounter()}
}

func (s *syncSender) send(m raft.Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = wire.AppendRaftFrame(s.buf[:0], m)
	s.counter.Record("raft/"+m.Type.String(), int64(len(s.buf)))
	_, err := s.conn.Write(s.buf)
	return err
}

// senderBench is one loopback sender/receiver pair with a delivery-ack
// channel, driven in short timed slices.
type senderBench struct {
	send func(raft.Message) error
	acks <-chan struct{}
	msg  raft.Message
}

// slice sends msgs messages and waits until all of them have been
// decoded at the receiver, returning the elapsed time. End-to-end
// completion is the honest unit: the async variant must not win by
// merely enqueueing. The wait must park, not spin or poll — a spinning
// waiter steals CPU from exactly the goroutines still doing the async
// variant's work (its sender drains the queue after Send returns,
// while the sync variant's writes all finish before the wait begins),
// and a sleep-poll quantizes every slice by the timer resolution.
// Blocking on one ack per message wakes the waiter exactly when the
// receiver decodes.
func (sb *senderBench) slice(b *testing.B, msgs int) time.Duration {
	start := time.Now()
	for i := 0; i < msgs; i++ {
		if err := sb.send(sb.msg); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < msgs; i++ {
		<-sb.acks
	}
	return time.Since(start)
}

// Both benchmarks report from ONE shared interleaved measurement taken
// on first use. The gated quantity is the Async/Sync ratio
// (cmd/p2pfl-benchjson -pairs): measuring each variant in its own
// invocation would compare two different time windows — different GC
// heap, different background load — and re-introduce exactly the noise
// the slice-by-slice interleave exists to remove. The sync baseline
// reports its median slice; the async variant reports baseline times
// the median per-round ratio (see measureTCPSendHealthy).
var (
	sendBenchOnce  sync.Once
	sendBenchAsync float64 // median async slice group, ns
	sendBenchSync  float64 // median sync slice group, ns
	sendBenchErr   error
)

const (
	sendMsgsPerSlice = 32
	sendSlicesPerOp  = 20
	sendBlocks       = 6  // connection re-rolls per measurement
	sendBlockRounds  = 30 // interleaved rounds per block
)

func measureTCPSendHealthy(b *testing.B) {
	recv, err := NewRaftTCP(2, map[uint64]string{2: "127.0.0.1:0"}, nil)
	if err != nil {
		sendBenchErr = err
		return
	}
	defer recv.Close()
	// Drains until the process exits; nothing arrives after recv.Close.
	acks := make(chan struct{}, 4096)
	go func() {
		for range recv.Recv() {
			acks <- struct{}{}
		}
	}()

	// A 16 KB append mirrors real traffic — entries carry model-update
	// and SAC-share payloads, which run to tens of kilobytes. The
	// per-message constant costs — the channel handoff in the async
	// path — must be judged against realistic encode/write/decode work,
	// not against near-empty messages.
	msg := raft.Message{
		Type: raft.MsgAppend, From: 1, To: 2, Term: 5,
		Entries: []raft.Entry{{Index: 1, Term: 5, Data: make([]byte, 16384)}},
		Commit:  1,
	}

	// Paired statistic over re-rolled connections: within a block, each
	// round runs the two variants back to back (~1ms apart), so a slow
	// regime spanning seconds — GC heap growth, neighbour load on this
	// shared core — inflates both slices of a round and cancels in that
	// round's ratio. A regime that sticks to one CONNECTION (kernel
	// buffer autotuning, netpoller placement) does not cancel that way,
	// so both endpoints are torn down and re-dialed every block and the
	// reported overhead is the median ratio across all rounds of all
	// blocks. A minimum or a per-variant median would re-expose the
	// ratio to whichever regime a single connection pair happened to
	// draw.
	var syncDurs []time.Duration
	var ratios []float64
	for blk := 0; blk < sendBlocks; blk++ {
		asyncTr, err := NewRaftTCP(1, map[uint64]string{1: "127.0.0.1:0", 2: recv.Addr()}, nil)
		if err != nil {
			sendBenchErr = err
			return
		}
		conn, err := net.DialTimeout("tcp", recv.Addr(), 2*time.Second)
		if err != nil {
			asyncTr.Close()
			sendBenchErr = err
			return
		}
		syncTr := newSyncSender(conn)
		asyncBench := &senderBench{send: asyncTr.Send, acks: acks, msg: msg}
		syncBench := &senderBench{send: syncTr.send, acks: acks, msg: msg}
		asyncBench.slice(b, sendMsgsPerSlice*2) // warm: conns dialed, buffers grown
		syncBench.slice(b, sendMsgsPerSlice*2)
		for s := 0; s < sendBlockRounds; s++ {
			a := asyncBench.slice(b, sendMsgsPerSlice)
			y := syncBench.slice(b, sendMsgsPerSlice)
			syncDurs = append(syncDurs, y)
			ratios = append(ratios, float64(a)/float64(y))
		}
		conn.Close()
		asyncTr.Close()
	}
	sort.Slice(syncDurs, func(i, j int) bool { return syncDurs[i] < syncDurs[j] })
	sort.Float64s(ratios)
	sendBenchSync = float64(syncDurs[len(syncDurs)/2].Nanoseconds()) * sendSlicesPerOp
	sendBenchAsync = sendBenchSync * ratios[len(ratios)/2]
}

func benchmarkTCPSendHealthy(b *testing.B, async bool) {
	sendBenchOnce.Do(func() { measureTCPSendHealthy(b) })
	if sendBenchErr != nil {
		b.Fatal(sendBenchErr)
	}
	for i := 0; i < b.N; i++ {
		// The measurement is shared; iterations are intentionally empty.
	}
	if async {
		b.ReportMetric(sendBenchAsync, "ns/op")
	} else {
		b.ReportMetric(sendBenchSync, "ns/op")
	}
}

func BenchmarkRaftTCPSendHealthyPeerSync(b *testing.B)  { benchmarkTCPSendHealthy(b, false) }
func BenchmarkRaftTCPSendHealthyPeerAsync(b *testing.B) { benchmarkTCPSendHealthy(b, true) }
