package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/raft"
)

// RaftTCP moves raft.Messages between real processes over TCP with gob
// encoding — the real-time counterpart of the discrete-event simulator,
// used by cmd/p2pfl-node. One outbound connection per peer is dialed
// lazily and re-dialed on failure; inbound messages are fanned into a
// single receive channel.
type RaftTCP struct {
	id    uint64
	addrs map[uint64]string

	mu      sync.Mutex
	conns   map[uint64]*gob.Encoder
	raw     map[uint64]net.Conn
	inbound map[net.Conn]struct{}

	ln        net.Listener
	recvCh    chan raft.Message
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	counter *Counter
}

// NewRaftTCP starts a transport listening on addrs[id]. addrs maps every
// node ID (including this one) to host:port.
func NewRaftTCP(id uint64, addrs map[uint64]string, counter *Counter) (*RaftTCP, error) {
	self, ok := addrs[id]
	if !ok {
		return nil, fmt.Errorf("transport: no address for node %d", id)
	}
	ln, err := net.Listen("tcp", self)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", self, err)
	}
	if counter == nil {
		counter = NewCounter()
	}
	t := &RaftTCP{
		id:      id,
		addrs:   make(map[uint64]string, len(addrs)),
		conns:   make(map[uint64]*gob.Encoder),
		raw:     make(map[uint64]net.Conn),
		inbound: make(map[net.Conn]struct{}),
		ln:      ln,
		recvCh:  make(chan raft.Message, 1024),
		done:    make(chan struct{}),
		counter: counter,
	}
	for k, v := range addrs {
		t.addrs[k] = v
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's bound listen address (useful when the
// configured address had port 0).
func (t *RaftTCP) Addr() string { return t.ln.Addr().String() }

// Recv returns the channel of inbound messages.
func (t *RaftTCP) Recv() <-chan raft.Message { return t.recvCh }

// Counter returns the transport's traffic counter.
func (t *RaftTCP) Counter() *Counter { return t.counter }

func (t *RaftTCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
				continue
			}
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *RaftTCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	t.mu.Lock()
	t.inbound[conn] = struct{}{}
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	for {
		var m raft.Message
		if err := dec.Decode(&m); err != nil {
			return
		}
		select {
		case t.recvCh <- m:
		case <-t.done:
			return
		}
	}
}

// Send encodes m to its destination, dialing on demand. Failures close
// the cached connection so the next Send re-dials; the message is
// dropped (Raft tolerates message loss).
func (t *RaftTCP) Send(m raft.Message) error {
	addr, ok := t.addrs[m.To]
	if !ok {
		return fmt.Errorf("transport: no address for node %d", m.To)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	enc, ok := t.conns[m.To]
	if !ok {
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			return fmt.Errorf("transport: dial %s: %w", addr, err)
		}
		enc = gob.NewEncoder(conn)
		t.conns[m.To] = enc
		t.raw[m.To] = conn
	}
	if err := enc.Encode(m); err != nil {
		if c := t.raw[m.To]; c != nil {
			c.Close()
		}
		delete(t.conns, m.To)
		delete(t.raw, m.To)
		return fmt.Errorf("transport: send to %d: %w", m.To, err)
	}
	t.counter.Record("raft/"+m.Type.String(), int64(8*len(m.Entries)*16+64))
	return nil
}

// RegisterAddr adds or updates a peer address (e.g. a node added via a
// membership change).
func (t *RaftTCP) RegisterAddr(id uint64, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[id] = addr
}

// Close shuts the listener and all connections down. It is idempotent.
func (t *RaftTCP) Close() error {
	var err error
	t.closeOnce.Do(func() {
		close(t.done)
		err = t.ln.Close()
		t.mu.Lock()
		for id, c := range t.raw {
			c.Close()
			delete(t.raw, id)
			delete(t.conns, id)
		}
		// Unblock readLoops parked in Decode on accepted connections.
		for c := range t.inbound {
			c.Close()
		}
		t.mu.Unlock()
		t.wg.Wait()
	})
	return err
}
