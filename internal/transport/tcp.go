package transport

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/raft"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Tunables for the per-peer sender machinery. Raft tolerates message
// loss, so every bound here sheds load instead of blocking: a full
// queue drops the newest message, a dead peer's messages are dropped
// while its dial backs off, and the caller of Send never waits.
const (
	// senderQueueCap bounds each peer's outbound queue.
	senderQueueCap = 512
	// senderBatchBytes caps how many frame bytes one sender iteration
	// coalesces into a single conn.Write. Bursts (entry batches,
	// heartbeat fan-out behind a slow write) flush in one syscall
	// instead of one per message; the cap bounds the encode buffer a
	// sender goroutine can pin. Sized to swallow a full append burst of
	// large model-update entries (tens of 16 KB frames) in one write.
	senderBatchBytes = 1 << 20
	// dialTimeout caps one connection attempt. It only ever delays the
	// dead peer's own sender goroutine, never other peers or Send.
	dialTimeout = 500 * time.Millisecond
	// dialBackoffBase..dialBackoffCap bound the capped exponential
	// backoff between dial attempts to an unreachable peer.
	dialBackoffBase = 10 * time.Millisecond
	dialBackoffCap  = time.Second
	// acceptBackoffBase..acceptBackoffCap pace retries after transient
	// Accept errors (e.g. EMFILE) instead of busy-spinning.
	acceptBackoffBase = 5 * time.Millisecond
	acceptBackoffCap  = 500 * time.Millisecond
	// suspectAfterFailures / downAfterFailures are the consecutive
	// dial/write failure counts that open the circuit.
	suspectAfterFailures = 1
	downAfterFailures    = 3
)

// CircuitState is a peer connection's health as seen by its sender:
// Up (connected or never tried), Suspect (first failures), Down
// (persistently unreachable), Probing (Down, re-dial in flight).
type CircuitState int32

// Circuit states in escalation order.
const (
	CircuitUp CircuitState = iota
	CircuitSuspect
	CircuitDown
	CircuitProbing
)

// String returns the lowercase state name.
func (s CircuitState) String() string {
	switch s {
	case CircuitUp:
		return "up"
	case CircuitSuspect:
		return "suspect"
	case CircuitDown:
		return "down"
	case CircuitProbing:
		return "probing"
	default:
		return "unknown"
	}
}

// PeerCircuit is one peer's sender status, for /debug/health.
type PeerCircuit struct {
	Peer     uint64 `json:"peer"`
	State    string `json:"state"`
	QueueLen int    `json:"queue_len"`
	Drops    int64  `json:"drops"`
}

// raftTel holds pre-resolved telemetry handles; the zero value (all
// nil) is a valid no-op set.
type raftTel struct {
	msgsSent     *telemetry.Counter
	bytesSent    *telemetry.Counter
	msgsReceived *telemetry.Counter
	msgsDropped  *telemetry.Counter
	dialFailures *telemetry.Counter
	circuitDowns *telemetry.Counter
}

// RaftTCP moves raft.Messages between real processes over TCP in the
// wire codec's length-prefixed binary frames (internal/wire) — the
// real-time counterpart of the discrete-event simulator, used by
// cmd/p2pfl-node. Each peer gets its own sender goroutine with a
// bounded outbound queue, so Send never blocks and a dead peer's dial
// timeout cannot head-of-line block traffic to healthy peers. Dials
// back off exponentially (capped, deterministically jittered) and each
// peer carries a circuit state (up → suspect → down → probing) exposed
// for the health layer. Inbound messages fan into a single receive
// channel; per-message byte counts are exact frame sizes. Frames are
// stateless (no gob-style per-stream type preamble), so the first
// message after a reconnect costs exactly as many bytes as any other,
// and queued bursts coalesce into a single write without any framing
// ambiguity at the receiver.
type RaftTCP struct {
	id uint64

	mu      sync.Mutex
	addrs   map[uint64]string
	senders map[uint64]*peerSender
	inbound map[net.Conn]struct{}
	closed  bool

	ln        net.Listener
	recvCh    chan raft.Message
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	counter  *Counter
	tel      atomic.Pointer[raftTel]
	activity atomic.Pointer[func(peer uint64)]
}

// NewRaftTCP starts a transport listening on addrs[id]. addrs maps every
// node ID (including this one) to host:port.
func NewRaftTCP(id uint64, addrs map[uint64]string, counter *Counter) (*RaftTCP, error) {
	self, ok := addrs[id]
	if !ok {
		return nil, fmt.Errorf("transport: no address for node %d", id)
	}
	ln, err := net.Listen("tcp", self)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", self, err)
	}
	if counter == nil {
		counter = NewCounter()
	}
	t := &RaftTCP{
		id:      id,
		addrs:   make(map[uint64]string, len(addrs)),
		senders: make(map[uint64]*peerSender),
		inbound: make(map[net.Conn]struct{}),
		ln:      ln,
		recvCh:  make(chan raft.Message, 1024),
		done:    make(chan struct{}),
		counter: counter,
	}
	t.tel.Store(&raftTel{})
	for k, v := range addrs {
		t.addrs[k] = v
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's bound listen address (useful when the
// configured address had port 0).
func (t *RaftTCP) Addr() string { return t.ln.Addr().String() }

// Recv returns the channel of inbound messages.
func (t *RaftTCP) Recv() <-chan raft.Message { return t.recvCh }

// Counter returns the transport's traffic counter.
func (t *RaftTCP) Counter() *Counter { return t.counter }

// SetTelemetry wires the transport into a registry, resolving the
// transport/raft_* counters once. A nil registry resets to no-op.
func (t *RaftTCP) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		t.tel.Store(&raftTel{})
		return
	}
	t.tel.Store(&raftTel{
		msgsSent:     reg.Counter("transport/raft_msgs_sent"),
		bytesSent:    reg.Counter("transport/raft_bytes_sent"),
		msgsReceived: reg.Counter("transport/raft_msgs_received"),
		msgsDropped:  reg.Counter("transport/raft_msgs_dropped"),
		dialFailures: reg.Counter("transport/raft_dial_failures"),
		circuitDowns: reg.Counter("transport/raft_circuit_downs"),
	})
}

// SetActivityFunc installs a callback invoked (from the read goroutines)
// with the sender id of every decoded inbound message. The health
// detector hangs off this: message arrival is proof of life.
func (t *RaftTCP) SetActivityFunc(fn func(peer uint64)) {
	if fn == nil {
		t.activity.Store(nil)
		return
	}
	t.activity.Store(&fn)
}

func (t *RaftTCP) acceptLoop() {
	defer t.wg.Done()
	backoff := acceptBackoffBase
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
			}
			// Transient error (EMFILE, ECONNABORTED, ...): back off with a
			// capped doubling delay instead of spinning on Accept.
			timer := time.NewTimer(backoff)
			select {
			case <-t.done:
				timer.Stop()
				return
			case <-timer.C:
			}
			if backoff *= 2; backoff > acceptBackoffCap {
				backoff = acceptBackoffCap
			}
			continue
		}
		backoff = acceptBackoffBase
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *RaftTCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	t.mu.Lock()
	t.inbound[conn] = struct{}{}
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	var scratch []byte // payload read buffer, reused frame to frame
	for {
		var m raft.Message
		var err error
		if m, scratch, err = wire.ReadRaftFrame(br, scratch); err != nil {
			return
		}
		t.tel.Load().msgsReceived.Inc()
		if fn := t.activity.Load(); fn != nil {
			(*fn)(m.From)
		}
		select {
		case t.recvCh <- m:
		case <-t.done:
			return
		}
	}
}

// Send hands m to the destination peer's sender goroutine and returns
// immediately. It never blocks: a full queue drops the message (counted
// in telemetry — raft tolerates loss and retries). The only error is an
// unknown destination.
func (t *RaftTCP) Send(m raft.Message) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("transport: closed")
	}
	if _, ok := t.addrs[m.To]; !ok {
		t.mu.Unlock()
		return fmt.Errorf("transport: no address for node %d", m.To)
	}
	s, ok := t.senders[m.To]
	if !ok {
		s = &peerSender{t: t, id: m.To, ch: make(chan raft.Message, senderQueueCap), stop: make(chan struct{})}
		t.senders[m.To] = s
		t.wg.Add(1)
		go s.loop()
	}
	t.mu.Unlock()
	select {
	case s.ch <- m:
	default:
		s.drop()
	}
	return nil
}

// RegisterAddr adds or updates a peer address (e.g. a node added via a
// membership change, or one restarted on a new port). A changed address
// resets the peer's sender — connection, failure count and backoff — so
// the next message dials fresh.
func (t *RaftTCP) RegisterAddr(id uint64, addr string) {
	t.mu.Lock()
	old := t.addrs[id]
	t.addrs[id] = addr
	s := t.senders[id]
	t.mu.Unlock()
	if s != nil && old != addr {
		s.reset.Store(true)
	}
}

// RemovePeer forgets a peer removed from the membership: its address
// mapping is deleted, its sender goroutine is stopped (closing any open
// connection) and whatever was still queued toward it is drained and
// counted as dropped. Circuit state, failure counts and dial backoff go
// away with the sender, so a later RegisterAddr + Send toward a reused
// id starts from a clean circuit. Safe to call for ids that never had a
// sender, and idempotent.
func (t *RaftTCP) RemovePeer(id uint64) {
	t.mu.Lock()
	delete(t.addrs, id)
	s := t.senders[id]
	delete(t.senders, id)
	t.mu.Unlock()
	if s == nil {
		return
	}
	s.stopOnce.Do(func() { close(s.stop) })
	for {
		select {
		case <-s.ch:
			s.drop()
		default:
			return
		}
	}
}

func (t *RaftTCP) addrOf(id uint64) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	a, ok := t.addrs[id]
	return a, ok
}

// PeerState returns the circuit state of the sender for peer id. The
// second result is false if no message was ever sent toward that peer.
func (t *RaftTCP) PeerState(id uint64) (CircuitState, bool) {
	t.mu.Lock()
	s, ok := t.senders[id]
	t.mu.Unlock()
	if !ok {
		return CircuitUp, false
	}
	return CircuitState(s.state.Load()), true
}

// PeerStates returns every active sender's status in ascending peer-id
// order, for the /debug/health endpoint.
func (t *RaftTCP) PeerStates() []PeerCircuit {
	t.mu.Lock()
	out := make([]PeerCircuit, 0, len(t.senders))
	for id, s := range t.senders {
		out = append(out, PeerCircuit{
			Peer:     id,
			State:    CircuitState(s.state.Load()).String(),
			QueueLen: len(s.ch),
			Drops:    s.drops.Load(),
		})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// Close shuts the listener, sender goroutines and inbound connections
// down. It is idempotent.
func (t *RaftTCP) Close() error {
	var err error
	t.closeOnce.Do(func() {
		t.mu.Lock()
		t.closed = true
		t.mu.Unlock()
		close(t.done)
		err = t.ln.Close()
		// Unblock readLoops parked in Decode on accepted connections;
		// sender loops see done and close their own conns.
		t.mu.Lock()
		for c := range t.inbound {
			c.Close()
		}
		t.mu.Unlock()
		t.wg.Wait()
	})
	return err
}

// peerSender owns all traffic toward one peer: a bounded queue drained
// by a single goroutine that dials, encodes and writes. Everything
// slow — dialing a dead host, a stalled TCP window — happens here, on
// this peer's goroutine only.
type peerSender struct {
	t        *RaftTCP
	id       uint64
	ch       chan raft.Message
	stop     chan struct{} // closed by RemovePeer; ends this sender only
	stopOnce sync.Once
	state    atomic.Int32 // CircuitState
	drops    atomic.Int64
	reset    atomic.Bool // set by RegisterAddr on an address change
}

func (s *peerSender) drop() {
	s.drops.Add(1)
	s.t.tel.Load().msgsDropped.Inc()
}

func (s *peerSender) setState(st CircuitState) {
	if CircuitState(s.state.Swap(int32(st))) != st && st == CircuitDown {
		s.t.tel.Load().circuitDowns.Inc()
	}
}

// onFailure escalates the circuit after a failed dial or write.
func (s *peerSender) onFailure(failures int) {
	s.t.tel.Load().dialFailures.Inc()
	switch {
	case failures >= downAfterFailures:
		s.setState(CircuitDown)
	case failures >= suspectAfterFailures:
		s.setState(CircuitSuspect)
	}
}

func (s *peerSender) loop() {
	defer s.t.wg.Done()
	buf := wire.GetBuffer() // reused frame encode buffer
	defer buf.Release()
	var (
		conn     net.Conn
		failures int
		nextDial time.Time
	)
	closeConn := func() {
		if conn != nil {
			conn.Close()
			conn = nil
		}
	}
	defer closeConn()
	for {
		select {
		case <-s.t.done:
			return
		case <-s.stop:
			return
		case m := <-s.ch:
			if s.reset.CompareAndSwap(true, false) {
				closeConn()
				failures = 0
				nextDial = time.Time{}
				s.setState(CircuitUp)
			}
			if conn == nil {
				if time.Now().Before(nextDial) {
					s.drop() // still backing off: shed instead of blocking the queue
					continue
				}
				if failures >= downAfterFailures {
					s.setState(CircuitProbing)
				}
				addr, ok := s.t.addrOf(s.id)
				if !ok {
					s.drop()
					continue
				}
				c, err := net.DialTimeout("tcp", addr, dialTimeout)
				if err != nil {
					failures++
					s.onFailure(failures)
					nextDial = time.Now().Add(backoffFor(s.id, failures))
					s.drop()
					continue
				}
				conn = c
				failures = 0
				nextDial = time.Time{}
				s.setState(CircuitUp)
			}
			// Record each exact frame size BEFORE the bytes hit the wire,
			// so a receiver can never observe a message the sender's counter
			// has not yet accounted for.
			tel := s.t.tel.Load()
			record := func(m raft.Message, frameBytes int64) {
				s.t.counter.Record("raft/"+m.Type.String(), frameBytes)
				tel.msgsSent.Inc()
				tel.bytesSent.Add(frameBytes)
			}
			buf.B = wire.AppendRaftFrame(buf.B[:0], m)
			record(m, int64(len(buf.B)))
			// Coalesce whatever else is already queued into the same
			// write: frames are stateless, so back-to-back frames in one
			// syscall are indistinguishable from separate writes to the
			// receiver, and a burst costs one syscall instead of one per
			// message.
		coalesce:
			for len(buf.B) < senderBatchBytes {
				select {
				case m2 := <-s.ch:
					start := len(buf.B)
					buf.B = wire.AppendRaftFrame(buf.B, m2)
					record(m2, int64(len(buf.B)-start))
				default:
					break coalesce
				}
			}
			if _, err := conn.Write(buf.B); err != nil {
				closeConn()
				failures++
				s.onFailure(failures)
				nextDial = time.Now().Add(backoffFor(s.id, failures))
				// Counted but lost in transit — raft retries.
			}
		}
	}
}

// backoffFor returns the capped exponential delay before dial attempt
// failures+1, jittered ±25% by a hash of (peer, failures) — fully
// deterministic, so a test replaying the same failure sequence sees the
// same schedule, while distinct peers still desynchronize.
func backoffFor(peer uint64, failures int) time.Duration {
	d := dialBackoffBase
	for i := 1; i < failures && d < dialBackoffCap; i++ {
		d *= 2
	}
	if d > dialBackoffCap {
		d = dialBackoffCap
	}
	h := peer*0x9E3779B97F4A7C15 + uint64(failures)*0xFF51AFD7ED558CCD
	h ^= h >> 33
	h *= 0xC4CEB9FE1A85EC53
	h ^= h >> 29
	frac := int64(h%513) - 256 // uniform-ish in [-256, 256]
	return d + time.Duration(int64(d)*frac/1024)
}
