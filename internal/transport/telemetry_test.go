package transport

import (
	"testing"

	"repro/internal/telemetry"
)

// TestMeshTelemetry pins the transport/* counter semantics: sends count
// bytes and messages per sender, crashed receivers count drops (both
// in-flight sends and already-queued inbox contents), and Drain counts
// receptions.
func TestMeshTelemetry(t *testing.T) {
	reg := telemetry.New()
	m := NewMesh(3, nil)
	m.SetTelemetry(reg)

	pay := []float64{1, 2, 3} // 24 wire bytes
	if err := m.Send(Message{From: 0, To: 1, Kind: "x", Payload: pay}); err != nil {
		t.Fatal(err)
	}
	if err := m.Send(Message{From: 0, To: 2, Kind: "x", Payload: pay}); err != nil {
		t.Fatal(err)
	}
	if err := m.Send(Message{From: 1, To: 2, Kind: "x", Payload: pay}); err != nil {
		t.Fatal(err)
	}

	// Peer 2 crashes with 2 queued messages; a further send to it drops.
	if err := m.Crash(2); err != nil {
		t.Fatal(err)
	}
	if err := m.Send(Message{From: 0, To: 2, Kind: "x", Payload: pay}); err != nil {
		t.Fatal(err)
	}

	if _, err := m.Drain(1); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	want := map[string]int64{
		"transport/msgs_sent":        4,
		"transport/bytes_sent":       96,
		"transport/msgs_dropped":     3, // 2 queued at crash + 1 sent after
		"transport/msgs_received":    1,
		"transport/peer0/msgs_sent":  3,
		"transport/peer0/bytes_sent": 72,
		"transport/peer1/msgs_sent":  1,
		"transport/peer1/bytes_sent": 24,
	}
	for name, v := range want {
		if got := s.Counters[name]; got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
}

// TestMeshNoTelemetry: a mesh without a registry must behave exactly as
// before (no panics, normal delivery).
func TestMeshNoTelemetry(t *testing.T) {
	m := NewMesh(2, nil)
	if err := m.Send(Message{From: 0, To: 1, Kind: "x", Payload: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	got, err := m.Drain(1)
	if err != nil || len(got) != 1 {
		t.Fatalf("Drain = %v, %v", got, err)
	}
	m.SetTelemetry(nil) // explicit nil is also fine
	if err := m.Send(Message{From: 0, To: 1, Kind: "x", Payload: []float64{1}}); err != nil {
		t.Fatal(err)
	}
}
