package kvstore

import (
	"math/rand"
	"testing"

	"repro/internal/raft"
	"repro/internal/simnet"
)

func TestApplyBasics(t *testing.T) {
	s := New()
	s.Apply(raft.Entry{Index: 1, Type: raft.EntryNormal, Data: EncodeSet("a", "1")})
	s.Apply(raft.Entry{Index: 2, Type: raft.EntryNormal, Data: EncodeSet("b", "2")})
	s.Apply(raft.Entry{Index: 3, Type: raft.EntryNormal, Data: EncodeDelete("a")})
	if _, ok := s.Get("a"); ok {
		t.Fatal("deleted key still present")
	}
	if v, ok := s.Get("b"); !ok || v != "2" {
		t.Fatalf("b = %q, %v", v, ok)
	}
	if s.Len() != 1 || s.AppliedIndex() != 3 {
		t.Fatalf("len=%d applied=%d", s.Len(), s.AppliedIndex())
	}
	keys := s.Keys()
	if len(keys) != 1 || keys[0] != "b" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestApplyIgnoresNoiseAndReplays(t *testing.T) {
	s := New()
	s.Apply(raft.Entry{Index: 1, Type: raft.EntryNormal, Data: EncodeSet("k", "v1")})
	// Replay of an old index must not regress state.
	s.Apply(raft.Entry{Index: 1, Type: raft.EntryNormal, Data: EncodeSet("k", "stale")})
	if v, _ := s.Get("k"); v != "v1" {
		t.Fatalf("replay applied: %q", v)
	}
	// Conf changes, no-ops and garbage are skipped.
	s.Apply(raft.Entry{Index: 2, Type: raft.EntryConfChange, Data: []byte("{}")})
	s.Apply(raft.Entry{Index: 3, Type: raft.EntryNoop})
	s.Apply(raft.Entry{Index: 4, Type: raft.EntryNormal, Data: []byte("not json")})
	if s.Len() != 1 {
		t.Fatal("noise mutated the store")
	}
}

func TestSnapshotRestore(t *testing.T) {
	a := New()
	a.Apply(raft.Entry{Index: 1, Type: raft.EntryNormal, Data: EncodeSet("x", "1")})
	a.Apply(raft.Entry{Index: 2, Type: raft.EntryNormal, Data: EncodeSet("y", "2")})
	b := New()
	if err := b.Restore(a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !Equal(a, b) {
		t.Fatal("restored replica differs")
	}
	if b.AppliedIndex() != 2 {
		t.Fatalf("applied = %d", b.AppliedIndex())
	}
	if err := b.Restore([]byte("garbage")); err == nil {
		t.Fatal("want restore error")
	}
}

// Full replication: three stores driven by a simulated raft group
// converge to identical state, including a replica that catches up
// purely via InstallSnapshot.
func TestReplicatedStoreConverges(t *testing.T) {
	sim := simnet.New()
	g := simnet.NewGroup(sim, "kv", 5*simnet.Millisecond, rand.New(rand.NewSource(1)))
	ids := []uint64{1, 2, 3}
	stores := map[uint64]*Store{}
	for _, id := range ids {
		id := id
		st := New()
		stores[id] = st
		node, err := raft.NewNode(raft.Config{
			ID: id, Peers: ids,
			ElectionTickMin: 50, ElectionTickMax: 100, HeartbeatTick: 15,
			Rng:               rand.New(rand.NewSource(int64(id))),
			SnapshotThreshold: 8,
			SnapshotState:     st.Snapshot,
		})
		if err != nil {
			t.Fatal(err)
		}
		h, err := g.Add(node)
		if err != nil {
			t.Fatal(err)
		}
		h.OnCommit = st.Apply
		h.OnSnapshot = func(s *raft.Snapshot) {
			if err := st.Restore(s.Data); err != nil {
				t.Errorf("restore: %v", err)
			}
		}
	}
	if !sim.RunWhileNot(func() bool { return g.Leader() != raft.None }, simnet.Time(10*simnet.Second)) {
		t.Fatal("no leader")
	}
	// Crash a follower so it must later catch up (possibly by snapshot,
	// given the low compaction threshold).
	var lag uint64
	for _, id := range ids {
		if id != g.Leader() {
			lag = id
			break
		}
	}
	g.Host(lag).Crash()

	lead := g.Host(g.Leader())
	for i := 0; i < 30; i++ {
		key := string(rune('a' + i%7))
		if err := lead.Node.Propose(EncodeSet(key, key+key)); err != nil {
			t.Fatal(err)
		}
		lead.Pump()
		sim.RunFor(30 * simnet.Millisecond)
	}
	if err := lead.Node.Propose(EncodeDelete("a")); err != nil {
		t.Fatal(err)
	}
	lead.Pump()
	sim.RunFor(500 * simnet.Millisecond)

	// Restart the lagging replica from its (stale) persisted state; the
	// leader has compacted far past it, forcing an InstallSnapshot.
	if err := g.Host(lag).Restart(raft.Config{
		ID: lag, ElectionTickMin: 50, ElectionTickMax: 100, HeartbeatTick: 15,
		Rng:               rand.New(rand.NewSource(99)),
		SnapshotThreshold: 8,
		SnapshotState:     stores[lag].Snapshot,
	}); err != nil {
		t.Fatal(err)
	}
	// Re-wire callbacks on the restarted host (Restart replaces Node,
	// keeps the Host and its hooks — but our hooks captured the store,
	// which is still correct).
	sim.RunFor(3 * simnet.Second)

	leaderStore := stores[g.Leader()]
	for _, id := range ids {
		if !Equal(stores[id], leaderStore) {
			t.Fatalf("replica %d diverged: %v vs %v", id, stores[id].Keys(), leaderStore.Keys())
		}
	}
	if _, ok := leaderStore.Get("a"); ok {
		t.Fatal("deleted key survived")
	}
	if leaderStore.Len() != 6 {
		t.Fatalf("keys = %v", leaderStore.Keys())
	}
}
