// Package kvstore is a replicated key-value state machine on top of the
// raft substrate — the canonical consensus application, included to
// validate (and demonstrate) the full raft contract: commands enter via
// Propose, replicas apply committed entries in order, and snapshots
// capture/restore the state for log compaction and slow-follower
// catch-up. The two-layer cluster uses the same contract for its
// FedAvg-configuration log.
package kvstore

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"repro/internal/raft"
)

// Op is one state-machine command.
type Op struct {
	// Kind is "set" or "delete".
	Kind  string `json:"kind"`
	Key   string `json:"key"`
	Value string `json:"value,omitempty"`
}

// EncodeSet builds the payload of a set command.
func EncodeSet(key, value string) []byte {
	b, err := json.Marshal(Op{Kind: "set", Key: key, Value: value})
	if err != nil {
		panic(err) // three string fields cannot fail to marshal
	}
	return b
}

// EncodeDelete builds the payload of a delete command.
func EncodeDelete(key string) []byte {
	b, err := json.Marshal(Op{Kind: "delete", Key: key})
	if err != nil {
		panic(err)
	}
	return b
}

// Store is one replica's state machine. It is safe for concurrent reads
// while a driver goroutine applies entries.
type Store struct {
	mu      sync.RWMutex
	data    map[string]string
	applied uint64
}

// New creates an empty store.
func New() *Store {
	return &Store{data: make(map[string]string)}
}

// Apply consumes one committed entry (in log order). Non-normal entries
// and undecodable payloads are ignored, matching a state machine that
// shares the log with other concerns.
func (s *Store) Apply(e raft.Entry) {
	if e.Type != raft.EntryNormal || len(e.Data) == 0 {
		return
	}
	var op Op
	if err := json.Unmarshal(e.Data, &op); err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.Index <= s.applied {
		return // replay protection
	}
	s.applied = e.Index
	switch op.Kind {
	case "set":
		s.data[op.Key] = op.Value
	case "delete":
		delete(s.data, op.Key)
	}
}

// Get reads one key.
func (s *Store) Get(key string) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	return v, ok
}

// Len returns the number of keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Keys returns all keys, sorted.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.data))
	for k := range s.data {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// AppliedIndex returns the last applied log index.
func (s *Store) AppliedIndex() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.applied
}

// snapshotState is the serialized form for raft snapshots.
type snapshotState struct {
	Applied uint64            `json:"applied"`
	Data    map[string]string `json:"data"`
}

// Snapshot serializes the full state, suitable for raft.Config's
// SnapshotState callback or an explicit Compact.
func (s *Store) Snapshot() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, err := json.Marshal(snapshotState{Applied: s.applied, Data: s.data})
	if err != nil {
		panic(err) // map[string]string cannot fail to marshal
	}
	return b
}

// Restore replaces the state with a Snapshot payload (as delivered by
// raft.Ready.InstalledSnapshot).
func (s *Store) Restore(data []byte) error {
	var st snapshotState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("kvstore: restore: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applied = st.Applied
	s.data = st.Data
	if s.data == nil {
		s.data = make(map[string]string)
	}
	return nil
}

// Equal reports whether two replicas hold identical state (for tests).
func Equal(a, b *Store) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	b.mu.RLock()
	defer b.mu.RUnlock()
	if len(a.data) != len(b.data) {
		return false
	}
	for k, v := range a.data {
		if b.data[k] != v {
			return false
		}
	}
	return true
}
