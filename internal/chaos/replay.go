package chaos

import (
	"encoding/json"
	"fmt"
	"os"
)

// replayFile is the on-disk format: the campaign configuration plus the
// exact schedule that produced a verdict. ExtraCheckers are code, not
// data — a test that injected one re-attaches it after LoadReplay.
type replayFile struct {
	Campaign Campaign `json:"campaign"`
	Actions  []Action `json:"actions"`
	// Violations are included for the reader's benefit; Replay ignores
	// them and re-derives the verdict.
	Violations []Violation `json:"violations,omitempty"`
}

// WriteReplay dumps a report's campaign and schedule as JSON so the run
// can be reproduced later (or on another machine) with LoadReplay.
func WriteReplay(path string, rep *Report) error {
	b, err := json.MarshalIndent(replayFile{
		Campaign:   rep.Campaign,
		Actions:    rep.Actions,
		Violations: rep.Violations,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("chaos: encode replay: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadReplay reads a replay file back. Execute the returned schedule
// under the returned campaign to reproduce the original run exactly.
func LoadReplay(path string) (Campaign, []Action, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Campaign{}, nil, fmt.Errorf("chaos: read replay: %w", err)
	}
	var rf replayFile
	if err := json.Unmarshal(b, &rf); err != nil {
		return Campaign{}, nil, fmt.Errorf("chaos: decode replay %s: %w", path, err)
	}
	return rf.Campaign, rf.Actions, nil
}
