package chaos

import (
	"fmt"
	"math/rand"

	"repro/internal/kvstore"
	"repro/internal/raft"
	"repro/internal/simnet"
)

// Intervals of the world's periodic machinery, in virtual time.
const (
	workloadEvery = 75 * simnet.Millisecond  // client proposals
	sweepEvery    = 50 * simnet.Millisecond  // invariant sweeps
	retryEvery    = 100 * simnet.Millisecond // quiesce restart/marker retries
)

// kvWorld is the TargetRaftKV system under test: one raft group whose
// committed entries drive per-node kvstore replicas, plus a deterministic
// client workload.
type kvWorld struct {
	c       Campaign
	rep     *Report
	led     *ledger
	sim     *simnet.Sim
	g       *simnet.Group
	stores  map[uint64]*kvstore.Store
	incarn  map[uint64]int
	propSeq int
	// workStopped halts the client workload at quiesce (the liveness
	// check needs a closed set of proposals to converge on); stopped
	// additionally halts the invariant sweeps at the end of the run.
	workStopped bool
	stopped     bool
	// frozen strands in-flight flap cycles once quiesce heals the net.
	frozen bool
}

// nodeRng derives the per-node timeout rng. Folding in the incarnation
// count keeps restarts deterministic without replaying the original
// timeout sequence.
func (w *kvWorld) nodeRng(id uint64) *rand.Rand {
	seed := w.c.Seed ^ (int64(id) * 0x9e3779b9) ^ (int64(w.incarn[id]) * 0x85ebca77)
	return rand.New(rand.NewSource(seed))
}

func (w *kvWorld) nodeConfig(id uint64, peers []uint64) raft.Config {
	st := w.stores[id]
	return raft.Config{
		ID:                id,
		Peers:             peers,
		ElectionTickMin:   w.c.ElectionTickMin,
		ElectionTickMax:   w.c.ElectionTickMax,
		HeartbeatTick:     w.c.HeartbeatTick,
		PreVote:           w.c.PreVote,
		CheckQuorum:       w.c.CheckQuorum,
		Rng:               w.nodeRng(id),
		SnapshotThreshold: 64,
		SnapshotState:     st.Snapshot,
		Telemetry:         w.c.Telemetry,
	}
}

// hook wires a host's callbacks into the ledger and its kvstore. The
// callbacks live on the Host, which survives Restart, so one hookup
// covers every incarnation.
func (w *kvWorld) hook(h *simnet.Host, id uint64) {
	st := w.stores[id]
	h.OnCommit = func(e raft.Entry) {
		w.rep.Stats.Commits++
		w.led.noteCommit(int64(w.sim.Now()), "raft", id, e)
		st.Apply(e)
	}
	h.OnSnapshot = func(s *raft.Snapshot) {
		if s.Data != nil {
			_ = st.Restore(s.Data)
		}
	}
	h.OnStateChange = func(state raft.State, term, leader uint64) {
		if state == raft.Leader {
			w.rep.Stats.LeaderChanges++
			w.led.noteLeader(int64(w.sim.Now()), "raft", term, id)
		}
	}
}

func newKVWorld(c Campaign, rep *Report) *kvWorld {
	w := &kvWorld{
		c:      c,
		rep:    rep,
		led:    newLedger(rep),
		sim:    simnet.New(),
		stores: make(map[uint64]*kvstore.Store),
		incarn: make(map[uint64]int),
	}
	// Telemetry timestamps follow the campaign's virtual clock, keeping
	// equal-seed snapshots byte-identical.
	c.Telemetry.SetClock(func() int64 { return int64(w.sim.Now()) })
	w.g = simnet.NewGroup(w.sim, "chaos", simnet.Duration(c.LatencyUs),
		rand.New(rand.NewSource(c.Seed^0x51ed2701)))
	if c.Topology != "" {
		topo, err := simnet.Preset(c.Topology)
		if err != nil {
			panic(fmt.Sprintf("chaos: %v", err)) // Execute validates the name up front
		}
		w.g.Topo = topo
	}
	peers := make([]uint64, c.Nodes)
	for i := range peers {
		peers[i] = uint64(i + 1)
	}
	for _, id := range peers {
		w.stores[id] = kvstore.New()
		node, err := raft.NewNode(w.nodeConfig(id, peers))
		if err != nil {
			panic(fmt.Sprintf("chaos: node config invalid: %v", err)) // normalize() guarantees validity
		}
		h, err := w.g.Add(node)
		if err != nil {
			panic(fmt.Sprintf("chaos: duplicate host: %v", err))
		}
		w.hook(h, id)
	}
	return w
}

// liveIDs returns sorted IDs filtered by down state.
func liveIDs(g *simnet.Group, down bool) []uint64 {
	var out []uint64
	for _, id := range g.IDs() {
		if g.Host(id).Down() == down {
			out = append(out, id)
		}
	}
	return out
}

// apply executes one resolved action against the group.
func (w *kvWorld) apply(a Action) {
	s := &w.rep.Stats
	switch a.Kind {
	case ActCrash:
		if live := liveIDs(w.g, false); len(live) > 0 {
			w.g.Host(live[a.Rank%len(live)]).Crash()
			s.Crashes++
		}
	case ActRestart:
		if down := liveIDs(w.g, true); len(down) > 0 {
			w.restart(down[a.Rank%len(down)])
		}
	case ActLeaderKill:
		if id := w.g.Leader(); id != raft.None {
			w.g.Host(id).Crash()
			s.Crashes++
		}
	case ActPartition:
		ids := w.g.IDs()
		side := make(map[uint64]bool, len(ids))
		aCount := 0
		for i, id := range ids {
			side[id] = a.Side>>(uint(i)%64)&1 == 1
			if side[id] {
				aCount++
			}
		}
		if aCount == 0 || aCount == len(ids) {
			return // degenerate mask — not a partition
		}
		w.g.Partition(side)
		s.Partitions++
	case ActBlackhole:
		ids := w.g.IDs()
		id := ids[a.Rank%len(ids)]
		w.g.DropFilter = func(m raft.Message) bool { return m.From == id }
		s.NetFaults++
	case ActLoss:
		w.g.LossRate = a.Rate
		s.NetFaults++
	case ActDelay:
		w.g.Jitter = simnet.Duration(a.DelayUs)
		s.NetFaults++
	case ActHeal:
		w.g.Calm()
		s.Heals++
	case ActFlap:
		ids := w.g.IDs()
		id := ids[a.Rank%len(ids)]
		s.Flaps++
		w.flap(id, 2+a.Rank%3)
	}
}

// flap cycles id's outbound links dark/clear, abandoning itself once
// quiesce freezes the world (see twWorld.flap for the timing rationale).
func (w *kvWorld) flap(id uint64, cycles int) {
	if w.frozen {
		return
	}
	w.g.DropFilter = func(m raft.Message) bool { return m.From == id }
	w.sim.Schedule(flapDark, func() {
		if w.frozen {
			return
		}
		w.g.DropFilter = nil
		if cycles > 1 {
			w.sim.Schedule(flapClear, func() { w.flap(id, cycles-1) })
		}
	})
}

func (w *kvWorld) restart(id uint64) {
	w.incarn[id]++
	h := w.g.Host(id)
	// Peers are fixed in this world; the restored node re-reads its own
	// persisted membership anyway.
	if err := h.Restart(w.nodeConfig(id, nil)); err != nil {
		w.incarn[id]--
		return
	}
	w.rep.Stats.Restarts++
}

// workload proposes one key-value write to the current leader.
func (w *kvWorld) propose() {
	id := w.g.Leader()
	if id == raft.None {
		return
	}
	h := w.g.Host(id)
	w.propSeq++
	key := fmt.Sprintf("k%03d", w.propSeq%37)
	if err := h.Node.Propose(kvstore.EncodeSet(key, fmt.Sprintf("v%d", w.propSeq))); err != nil {
		return
	}
	h.Pump()
}

// view snapshots all nodes for extra checkers.
func (w *kvWorld) view() View {
	v := View{NowUs: int64(w.sim.Now())}
	for _, id := range w.g.IDs() {
		h := w.g.Host(id)
		v.Nodes = append(v.Nodes, NodeView{
			ID:        id,
			Group:     "raft",
			Down:      h.Down(),
			State:     h.Node.State(),
			Term:      h.Node.Term(),
			Leader:    h.Node.Leader(),
			Commit:    h.Node.CommitIndex(),
			LastIndex: h.Node.LastIndex(),
		})
	}
	return v
}

// sweep runs the history-independent safety checks over current state.
func (w *kvWorld) sweep() {
	now := int64(w.sim.Now())
	var nodes []*raft.Node
	for _, id := range w.g.IDs() {
		h := w.g.Host(id)
		if h.Down() {
			continue
		}
		nodes = append(nodes, h.Node)
		w.led.noteCommitIndex(now, "raft", id, h.Node.CommitIndex())
		if h.Node.CommitIndex() > h.Node.LastIndex() {
			w.led.violate(now, "commit-bound",
				fmt.Sprintf("node %d commit index %d beyond last log index %d", id, h.Node.CommitIndex(), h.Node.LastIndex()))
		}
	}
	w.led.checkLogMatching(now, "raft", nodes)
	w.led.runExtra(w.c.ExtraCheckers, w.view())
}

// executeRaftKV runs one schedule against a fresh raft-kv world and
// appends its findings to rep.
func executeRaftKV(c Campaign, actions []Action, rep *Report) {
	w := newKVWorld(c, rep)
	step := simnet.Duration(c.StepEveryUs)

	// Schedule the fault actions, the workload and the sweeps up front;
	// recurring events re-arm themselves until the world stops.
	for _, a := range actions {
		a := a
		w.sim.Schedule(simnet.Duration(a.Step+1)*step, func() { w.apply(a) })
	}
	var pump, check func()
	pump = func() {
		if w.stopped || w.workStopped {
			return
		}
		w.propose()
		w.sim.Schedule(workloadEvery, pump)
	}
	check = func() {
		if w.stopped {
			return
		}
		w.sweep()
		w.sim.Schedule(sweepEvery, check)
	}
	w.sim.Schedule(workloadEvery, pump)
	w.sim.Schedule(sweepEvery, check)

	end := simnet.Time(simnet.Duration(lastStep(actions, c.Steps)+1) * step)
	w.sim.RunUntil(end)
	quiesceKV(w)
	rep.Stats.FinalVirtualMs = int64(w.sim.Now()) / 1000
}

// lastStep sizes the schedule window: one StepEvery past the last action
// (or the nominal step count for an empty schedule, so liveness is still
// exercised against an undisturbed run).
func lastStep(actions []Action, steps int) int {
	last := steps
	for _, a := range actions {
		if a.Step+1 > last {
			last = a.Step + 1
		}
	}
	return last
}

// quiesceKV is the liveness phase: all faults lifted, all nodes revived,
// the group must elect a leader, commit a marker entry and converge every
// replica onto identical state within the quiesce timeout.
func quiesceKV(w *kvWorld) {
	w.frozen = true
	w.g.Calm()
	w.workStopped = true
	deadline := w.sim.Now() + simnet.Time(w.c.QuiesceTimeoutUs)
	now := func() int64 { return int64(w.sim.Now()) }

	// Revive crashed nodes, retrying in case a restart races a pending
	// crash action that shares its virtual timestamp.
	var revive func()
	revive = func() {
		for _, id := range liveIDs(w.g, true) {
			w.restart(id)
		}
		if len(liveIDs(w.g, true)) > 0 && w.sim.Now() < deadline {
			w.sim.Schedule(retryEvery, revive)
		}
	}
	revive()

	if !w.sim.RunWhileNot(func() bool { return w.g.Leader() != raft.None }, deadline) {
		w.led.violate(now(), "liveness", "no leader elected after schedule quiesced")
		w.stopped = true
		return
	}

	// Drive a marker entry through the log until every replica applies
	// it; re-proposing tolerates leader churn during convergence.
	marker := fmt.Sprintf("seed-%d", w.c.Seed)
	var prod func()
	prod = func() {
		if w.stopped {
			return
		}
		if id := w.g.Leader(); id != raft.None {
			h := w.g.Host(id)
			if err := h.Node.Propose(kvstore.EncodeSet("__chaos_marker", marker)); err == nil {
				h.Pump()
			}
		}
		w.sim.Schedule(retryEvery, prod)
	}
	prod()
	converged := func() bool {
		ids := w.g.IDs()
		for _, id := range ids {
			if w.g.Host(id).Down() {
				return false
			}
			if v, ok := w.stores[id].Get("__chaos_marker"); !ok || v != marker {
				return false
			}
		}
		for _, id := range ids[1:] {
			if !kvstore.Equal(w.stores[ids[0]], w.stores[id]) {
				return false
			}
		}
		return true
	}
	if !w.sim.RunWhileNot(converged, deadline) {
		w.led.violate(now(), "liveness",
			fmt.Sprintf("replicas did not all apply the marker entry within %.0fms of quiesce",
				simnet.Duration(w.c.QuiesceTimeoutUs).Ms()))
		w.stopped = true
		return
	}

	// With the marker applied everywhere, full state-machine agreement
	// must hold (any divergence would also be a commit-safety breach —
	// this is the end-to-end restatement).
	ids := w.g.IDs()
	for _, id := range ids[1:] {
		if !kvstore.Equal(w.stores[ids[0]], w.stores[id]) {
			w.led.violate(now(), "state-machine-agreement",
				fmt.Sprintf("kvstore replicas %d and %d diverged after quiesce", ids[0], id))
		}
	}
	w.sweep()
	w.stopped = true
}
