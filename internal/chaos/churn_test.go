package chaos

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

// churnCampaign is the continuous-churn acceptance configuration: full
// two-layer schedules drawn from ChurnMix (joins, graceful departures,
// same-identity handoffs interleaved with crashes and leader kills),
// the failure detector armed, and the churn oracle episodes running the
// round-boundary reconfiguration path.
func churnCampaign(seed int64) Campaign {
	return Campaign{
		Seed:      seed,
		Steps:     24,
		Target:    TargetTwoLayer,
		Mix:       ChurnMix,
		Churn:     true,
		Detector:  true,
		SACRounds: -1,
	}
}

// TestChurnCampaignSweep is the headline acceptance run: twenty seeds
// of continuous churn against the live control plane plus the churn
// oracle, every invariant green — directory convergence, share-index
// soundness and churn accuracy included — and with enough actual
// membership change to prove the checkers saw churn.
func TestChurnCampaignSweep(t *testing.T) {
	joins, departs, handoffs := 0, 0, 0
	for seed := int64(1); seed <= 20; seed++ {
		rep := churnCampaign(seed).Run()
		if len(rep.Violations) > 0 {
			t.Fatalf("seed %d: %d violations, first: %s", seed, len(rep.Violations), rep.Violations[0])
		}
		joins += rep.Stats.Joins
		departs += rep.Stats.Departs
		handoffs += rep.Stats.Handoffs
	}
	if joins == 0 || departs == 0 || handoffs == 0 {
		t.Fatalf("sweep exercised %d joins, %d departs, %d handoffs — every kind must occur", joins, departs, handoffs)
	}
}

// TestChurnOracleDeterministic pins seed-replayability of the oracle
// track: identical campaigns must agree on every stat and violation.
func TestChurnOracleDeterministic(t *testing.T) {
	run := func() *Report {
		return Campaign{Seed: 42, Steps: 1, SACRounds: -1, Churn: true}.Run()
	}
	a, b := run(), run()
	aj, _ := json.Marshal(struct {
		S Stats
		V []Violation
	}{a.Stats, a.Violations})
	bj, _ := json.Marshal(struct {
		S Stats
		V []Violation
	}{b.Stats, b.Violations})
	if string(aj) != string(bj) {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", aj, bj)
	}
	if a.Stats.Joins+a.Stats.Departs == 0 {
		t.Fatal("oracle episodes applied no membership changes")
	}
}

// TestChurnReplayRoundTrip dumps a churn campaign to a replay file and
// re-executes it from disk: the Churn flag and the ActChurn actions must
// survive serialization and reproduce the identical verdict and stats.
func TestChurnReplayRoundTrip(t *testing.T) {
	c := churnCampaign(3)
	rep := c.Run()
	if !rep.Passed() {
		t.Fatalf("campaign failed: %v", rep.Violations)
	}
	path := filepath.Join(t.TempDir(), "churn-replay.json")
	if err := WriteReplay(path, rep); err != nil {
		t.Fatal(err)
	}
	lc, actions, err := LoadReplay(path)
	if err != nil {
		t.Fatal(err)
	}
	if !lc.Churn {
		t.Fatal("Churn flag lost in the replay file")
	}
	churns := 0
	for _, a := range actions {
		if a.Kind == ActChurn {
			churns++
		}
	}
	if churns == 0 {
		t.Fatal("replay file carries no ActChurn actions")
	}
	rep2 := lc.Execute(actions)
	aj, _ := json.Marshal(struct {
		S Stats
		V []Violation
	}{rep.Stats, rep.Violations})
	bj, _ := json.Marshal(struct {
		S Stats
		V []Violation
	}{rep2.Stats, rep2.Violations})
	if string(aj) != string(bj) {
		t.Fatalf("replayed run diverged from the original:\n%s\nvs\n%s", aj, bj)
	}
}

// TestChurnTelemetryDeterministic is the churn half of the telemetry
// determinism regression: equal-seed churn campaigns against fresh
// registries serialize to byte-identical snapshots (virtual-time clock,
// deterministic control plane), different seeds do not, and the churn
// counters actually reach the registry.
func TestChurnTelemetryDeterministic(t *testing.T) {
	run := func(seed int64) ([]byte, *telemetry.Registry) {
		reg := telemetry.New()
		c := churnCampaign(seed)
		c.Telemetry = reg
		rep := c.Run()
		if !rep.Passed() {
			t.Fatalf("seed %d campaign failed: %v", seed, rep.Violations)
		}
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), reg
	}
	a, rega := run(2)
	b, _ := run(2)
	if !bytes.Equal(a, b) {
		t.Fatalf("identical seeds produced different telemetry JSON:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	if c, _ := run(4); bytes.Equal(a, c) {
		t.Fatal("different seeds produced byte-identical telemetry")
	}
	snap := rega.Snapshot()
	if snap.Counters["cluster/churn/joins"] == 0 && snap.Counters["cluster/churn/departs"] == 0 {
		t.Error("no cluster churn counters reached the registry")
	}
	if snap.Counters["cluster/churn/directory_applied"] == 0 {
		t.Error("no committed directory updates reached the registry")
	}
}

// TestChurnScheduleProperties checks the generator: ChurnMix emits
// ActChurn actions, and every legacy mix — ByzantineMix now included —
// keeps its exact roll mapping, never emitting one.
func TestChurnScheduleProperties(t *testing.T) {
	c := Campaign{Seed: 6, Steps: 60, Target: TargetTwoLayer, Mix: ChurnMix}
	churns := 0
	for _, a := range c.Generate() {
		if a.Kind == ActChurn {
			churns++
		}
	}
	if churns == 0 {
		t.Fatal("ChurnMix generated no ActChurn actions in 60 steps")
	}
	for _, mix := range []FaultMix{DefaultMix, CrashHeavyMix, PartitionHeavyMix, FlappingMix, ByzantineMix} {
		for _, a := range (Campaign{Seed: 9, Steps: 40, Mix: mix}).Generate() {
			if a.Kind == ActChurn {
				t.Fatalf("legacy mix %+v generated an ActChurn action", mix)
			}
		}
	}
}
