package chaos

import (
	"encoding/json"
	"testing"

	"repro/internal/telemetry"
)

// wanSweepSeeds is the pinned 20-seed acceptance sweep.
func wanSweepSeeds() []int64 {
	seeds := make([]int64, 20)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

// TestWANStabilitySweepFlagsOn is the acceptance sweep: 5-node Raft on
// the 50 ms asymmetric WAN topology with pre-vote, check-quorum and
// RTT-tuned timeouts records zero spurious elections at steady state
// and bounded failover after a leader kill, for all 20 seeds.
func TestWANStabilitySweepFlagsOn(t *testing.T) {
	for _, seed := range wanSweepSeeds() {
		rep, err := RunWANStability(StabilityOptions{
			Seed:        seed,
			PreVote:     true,
			CheckQuorum: true,
			LeaderLease: true,
			AutoTune:    true,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.SpuriousElections != 0 {
			t.Errorf("seed %d: %d spurious elections at steady state with flags on", seed, rep.SpuriousElections)
		}
		if rep.FinalSteadyTerm != rep.BaselineTerm {
			t.Errorf("seed %d: term advanced %d → %d during steady state", seed, rep.BaselineTerm, rep.FinalSteadyTerm)
		}
		if !rep.Passed() {
			for _, v := range rep.Violations {
				t.Errorf("seed %d: %v", seed, v)
			}
		}
		if rep.FailoverTicks > rep.FailoverBound {
			t.Errorf("seed %d: failover took %d ticks, bound %d", seed, rep.FailoverTicks, rep.FailoverBound)
		}
		// The tuner must actually have engaged somewhere: a follower in
		// the leader's region legitimately keeps a LAN-ish band (its
		// observed path really is ~2 ms), but the cross-region followers
		// must have tuned up — an all-stock sweep would prove nothing
		// about the feedback loop.
		tuned := 0
		for _, band := range rep.TunedBands {
			if band[0] > 100 {
				tuned++
			}
		}
		if tuned == 0 {
			t.Errorf("seed %d: no node left the stock LAN band: %v", seed, rep.TunedBands)
		}
	}
}

// TestWANStabilityFlagsOffContrast proves the checker is not vacuous:
// the identical 20-seed campaign with the new machinery disabled (stock
// paper-default timeouts, no pre-vote/check-quorum) must show at least
// one spurious election — the WAN jitter tail really does break stock
// Raft, and the sweep above really is measuring the fix.
func TestWANStabilityFlagsOffContrast(t *testing.T) {
	total := 0
	for _, seed := range wanSweepSeeds() {
		rep, err := RunWANStability(StabilityOptions{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		total += rep.SpuriousElections
	}
	if total == 0 {
		t.Fatalf("flags-off sweep recorded zero spurious elections across 20 seeds — the wan-stability checker is vacuous")
	}
	t.Logf("flags-off sweep: %d spurious elections across 20 seeds", total)
}

// TestWANStabilityDeterministic: equal seeds and options produce
// byte-identical reports (and byte-identical telemetry snapshots), the
// replay contract every chaos track honors.
func TestWANStabilityDeterministic(t *testing.T) {
	run := func() ([]byte, []byte) {
		reg := telemetry.New()
		rep, err := RunWANStability(StabilityOptions{
			Seed: 7, PreVote: true, CheckQuorum: true, LeaderLease: true, AutoTune: true,
			Telemetry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		repJSON, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		snapJSON, err := json.Marshal(reg.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return repJSON, snapJSON
	}
	r1, s1 := run()
	r2, s2 := run()
	if string(r1) != string(r2) {
		t.Errorf("equal-seed stability reports differ:\n%s\n---\n%s", r1, r2)
	}
	if string(s1) != string(s2) {
		t.Errorf("equal-seed telemetry snapshots differ")
	}
}
