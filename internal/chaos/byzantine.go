package chaos

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/sac"
	"repro/internal/transport"
)

// The Byzantine oracle pits seed-derived adversary plans against the
// robust SAC/two-layer stack and checks four invariant families:
//
//   - byzantine-robust: with f = 1 adversaries per subgroup (< n/3, and
//     within the guard's honest-majority precondition n−k+1 ≥ 2f+1 at
//     k = n−2), the guarded aggregation's global model stays within
//     byzOracleBound of the equal-seed clean baseline (the same models
//     aggregated with no adversary — verified against the plaintext
//     mean, which the sac-exactness invariant pins the clean run to).
//   - byzantine-detection: forged (out-of-range) shares get their
//     sender excluded, inflated subtotal copies surface as mismatches,
//     and honest peers are never excluded or accused.
//   - byzantine-equivocation: a leader announcing divergent results is
//     convicted by the audit exactly when it actually equivocated.
//   - byzantine-privacy: the adversary coalition observes strictly
//     fewer than n share indices of every honest peer's model.
//   - byzantine-vacuous (sharpness): the identical campaign re-run
//     under plain-mean (unguarded) aggregation must leave the
//     tolerance — every plan carries at least one strong attacker, so
//     a plain run that still "passes" means the checkers check
//     nothing, which is itself reported as a violation.
//
// Everything derives from Campaign.Seed, so a red seed replays exactly.

const (
	// byzOracleW bounds oracle model coordinates: |w[d]| ∈ [1, byzOracleW].
	// The lower bound 1 makes poison-scale shares provably out of range
	// (1000·1/n > byzOracleW for n ≤ 6) so detection is deterministic.
	byzOracleW = 10.0
	// byzOracleBound is the honest-convergence tolerance for the global
	// model. Worst-case honest deviation (one sign-flipped or excluded
	// model per subgroup plus cross-subgroup median-vs-mean spread) stays
	// under 2.2·W; strong attacks under plain mean shift the global by
	// ≥ 55 (poison-scale) up to ~55 000 (inflate), so the bound cleanly
	// separates robust from unguarded runs.
	byzOracleBound = 3 * byzOracleW
	// byzCorruptTol bounds the residual deviation a corrupt-shares
	// adversary can smuggle past the median (one perturbed share per
	// subtotal, ≤ sac.CorruptNoiseAmp per coordinate).
	byzCorruptTol = 1.0
)

// scheduleBehaviors are the behaviors ActByzantine draws from when a
// schedule is generated. Equivocation is excluded: it only manifests in
// a peer that happens to lead, which the oracle exercises directly.
var scheduleBehaviors = []sac.Behavior{
	sac.ByzCorruptShares, sac.ByzInflateSubtotal, sac.ByzZeroSubtotal,
	sac.ByzPoisonScale, sac.ByzPoisonSignFlip,
}

// oracleBehaviors additionally include leader equivocation.
var oracleBehaviors = append(scheduleBehaviors[:len(scheduleBehaviors):len(scheduleBehaviors)], sac.ByzEquivocate)

// strongBehavior reports whether b shifts a plain mean beyond
// byzOracleBound deterministically (the sharpness witnesses).
func strongBehavior(b sac.Behavior) bool {
	switch b {
	case sac.ByzInflateSubtotal, sac.ByzPoisonScale, sac.ByzEquivocate:
		return true
	}
	return false
}

// runByzantineOracle executes Campaign.ByzantineRounds adversarial
// aggregation rounds.
func runByzantineOracle(c Campaign, rep *Report) {
	led := newLedger(rep)
	rng := rand.New(rand.NewSource(c.Seed*2862933555777941757 + 3037000493))
	for round := 0; round < c.ByzantineRounds; round++ {
		byzantineRound(c, rep, led, rng, round)
	}
}

// byzAdversary is one subgroup's marked peer for an oracle round.
type byzAdversary struct {
	peer     int // local index within the subgroup
	behavior sac.Behavior
}

func byzantineRound(c Campaign, rep *Report, led *ledger, rng *rand.Rand, round int) {
	m := 2 + rng.Intn(2)   // subgroups
	n := 4 + rng.Intn(3)   // peers per subgroup
	k := n - 2             // 3-way replication: honest majority vs f = 1
	dim := 2 + rng.Intn(2) // small models keep campaigns fast

	// One adversary per subgroup (f = 1 < n/3), at least one of them
	// strong (the sharpness witness), and never all of them equivocating
	// leaders — an honest-majority system must keep at least one
	// unaccused subgroup.
	advs := make([]byzAdversary, m)
	anyStrong := false
	for g := range advs {
		advs[g] = byzAdversary{peer: rng.Intn(n), behavior: oracleBehaviors[rng.Intn(len(oracleBehaviors))]}
		if strongBehavior(advs[g].behavior) {
			anyStrong = true
		}
	}
	if !anyStrong {
		advs[0].behavior = sac.ByzInflateSubtotal
	}
	allEquivocate := true
	for _, a := range advs {
		if a.behavior != sac.ByzEquivocate {
			allEquivocate = false
		}
	}
	if allEquivocate {
		advs[m-1].behavior = sac.ByzInflateSubtotal
	}
	rep.Stats.Byzantines += m

	// Leaders: an honest neighbour of the adversary — except the
	// equivocation case, which puts the adversary itself in charge.
	leaders := make([]int, m)
	plans := make(map[int]sac.AdversaryPlan, m)
	for g, a := range advs {
		plans[g] = sac.AdversaryPlan{a.peer: a.behavior}
		if a.behavior == sac.ByzEquivocate {
			leaders[g] = a.peer
		} else {
			leaders[g] = (a.peer + 1) % n
		}
	}

	// Models with |w[d]| ∈ [1, byzOracleW]: the nonzero floor keeps
	// poison-scale detection deterministic (see byzOracleW).
	models := make([][]float64, m*n)
	for i := range models {
		models[i] = make([]float64, dim)
		for d := range models[i] {
			sign := 1.0
			if rng.Intn(2) == 1 {
				sign = -1
			}
			models[i][d] = sign * math.Round((1+9*rng.Float64())*1024) / 1024
		}
	}
	guard := &sac.Guard{ShareBound: byzOracleW, CrossCheck: true}

	// Part A — SAC-level probes: one guarded aggregation per subgroup
	// plan, with a mesh observer feeding the coalition-privacy checker.
	for g := 0; g < m; g++ {
		byzantineSACProbe(led, rng, round, g, n, k, dim, leaders[g], advs[g],
			models[g*n:(g+1)*n], guard, c, rep)
	}

	// Part B — two-layer: clean baseline, robust run, plain-mean shadow.
	tag := fmt.Sprintf("byz round %d (m=%d n=%d k=%d)", round, m, n, k)
	now := int64(round)
	sizes := make([]int, m)
	for g := range sizes {
		sizes[g] = n
	}
	sysSeed := rng.Int63()

	// Clean baseline at equal seed: same models, no adversary, no guard.
	// The sac-exactness invariant pins it to the plaintext global mean.
	clean := make([]float64, dim)
	for _, w := range models {
		for d, v := range w {
			clean[d] += v
		}
	}
	for d := range clean {
		clean[d] /= float64(len(models))
	}
	cleanSys, err := core.NewSystem(core.Config{Sizes: sizes, K: []int{k}, Telemetry: c.Telemetry},
		rand.New(rand.NewSource(sysSeed)))
	if err != nil {
		led.violate(now, "byzantine-robust", tag+": clean config invalid: "+err.Error())
		return
	}
	cleanRes, err := cleanSys.AggregateRound(models, core.RoundSpec{Leaders: leaders, FedLeader: -1})
	if err != nil {
		led.violate(now, "byzantine-robust", tag+": clean baseline failed: "+err.Error())
		return
	}
	if d := linf(cleanRes.Global, clean); d > 1e-9 {
		led.violate(now, "byzantine-robust",
			fmt.Sprintf("%s: clean baseline off plaintext mean by %g", tag, d))
	}

	robustSys, err := core.NewSystem(core.Config{
		Sizes: sizes, K: []int{k}, Guard: guard, Aggregator: fl.CoordinateMedian{}, Telemetry: c.Telemetry,
	}, rand.New(rand.NewSource(sysSeed)))
	if err != nil {
		led.violate(now, "byzantine-robust", tag+": robust config invalid: "+err.Error())
		return
	}
	spec := core.RoundSpec{Leaders: leaders, FedLeader: -1, Adversary: plans}
	robustRes, err := robustSys.AggregateRound(models, spec)
	if err != nil {
		led.violate(now, "byzantine-robust", tag+": robust round failed: "+err.Error())
		return
	}

	// Honest-majority convergence: the robust global stays within
	// tolerance of the clean baseline despite every subgroup hosting an
	// adversary.
	if d := linf(robustRes.Global, clean); d > byzOracleBound {
		led.violate(now, "byzantine-robust",
			fmt.Sprintf("%s: robust global deviates %.2f > %.2f from clean baseline", tag, d, byzOracleBound))
	}

	// Per-behavior structural checks on the robust round.
	accusedSubs := make(map[int]bool, len(robustRes.ByzantineExcluded))
	for _, g := range robustRes.ByzantineExcluded {
		accusedSubs[g] = true
	}
	rep.Stats.ByzantineDetections += len(robustRes.ByzantineExcluded)
	for g, a := range advs {
		switch a.behavior {
		case sac.ByzEquivocate:
			if !accusedSubs[g] {
				led.violate(now, "byzantine-equivocation",
					fmt.Sprintf("%s: equivocating leader of subgroup %d escaped the audit", tag, g))
			}
		case sac.ByzPoisonScale:
			if !containsInt(robustRes.ExcludedPeers[g], a.peer) {
				led.violate(now, "byzantine-detection",
					fmt.Sprintf("%s: poison-scale peer %d of subgroup %d escaped the range guard", tag, a.peer, g))
			}
			rep.Stats.ByzantineDetections += len(robustRes.ExcludedPeers[g])
		default:
			if accusedSubs[g] {
				led.violate(now, "byzantine-equivocation",
					fmt.Sprintf("%s: honest leader of subgroup %d falsely accused", tag, g))
			}
		}
	}

	// Sharpness: the identical campaign under plain-mean aggregation
	// must leave the tolerance — otherwise the invariants above are
	// vacuously green and that is itself a finding.
	plainSys, err := core.NewSystem(core.Config{Sizes: sizes, K: []int{k}, Telemetry: c.Telemetry},
		rand.New(rand.NewSource(sysSeed)))
	if err != nil {
		led.violate(now, "byzantine-vacuous", tag+": plain config invalid: "+err.Error())
		return
	}
	plainRes, err := plainSys.AggregateRound(models, spec)
	if err == nil {
		if d := linf(plainRes.Global, clean); d <= byzOracleBound {
			led.violate(now, "byzantine-vacuous",
				fmt.Sprintf("%s: plain-mean aggregation stayed within tolerance (dev %.2f ≤ %.2f) — checkers prove nothing",
					tag, d, byzOracleBound))
		}
	}
	// A plain run that errors outright is also damage, hence also sharp.
}

// byzantineSACProbe runs one guarded subgroup SAC under a single
// adversary and checks detection, bounded deviation and coalition
// privacy at the share level.
func byzantineSACProbe(led *ledger, rng *rand.Rand, round, g, n, k, dim, leader int,
	adv byzAdversary, models [][]float64, guard *sac.Guard, c Campaign, rep *Report) {
	now := int64(round)
	tag := fmt.Sprintf("byz round %d sub %d (n=%d k=%d leader=%d %s)", round, g, n, k, leader, adv.behavior)

	// Coalition privacy probe: which of each victim's share indices the
	// adversary observed.
	seen := make(map[int]map[int]bool) // victim → share indices
	mesh := transport.NewMesh(n, nil)
	mesh.Observe(func(msg transport.Message) {
		if msg.Kind != sac.KindShare || msg.To != adv.peer || msg.From == msg.To {
			return
		}
		if seen[msg.From] == nil {
			seen[msg.From] = make(map[int]bool)
		}
		seen[msg.From][msg.ShareIdx] = true
	})

	cfg := sac.Config{
		N: n, K: k, Leader: leader, Mode: sac.ModeLeader,
		Rng: rand.New(rand.NewSource(rng.Int63())), Telemetry: c.Telemetry,
		Adversary: sac.AdversaryPlan{adv.peer: adv.behavior}, Guard: guard,
	}
	res, err := sac.Run(mesh, cfg, models, nil)
	if err != nil {
		led.violate(now, "byzantine-robust", tag+": guarded aggregation failed: "+err.Error())
		return
	}

	for victim, idxs := range seen {
		if victim != adv.peer && len(idxs) >= n {
			led.violate(now, "byzantine-privacy",
				fmt.Sprintf("%s: coalition observed all %d share indices of honest peer %d", tag, n, victim))
		}
	}

	// Detection per behavior, and no false flags on the honest side.
	detections := res.Mismatches + len(res.Excluded)
	if res.LeaderAccused {
		detections++
	}
	rep.Stats.ByzantineDetections += detections
	switch adv.behavior {
	case sac.ByzInflateSubtotal:
		if res.Mismatches == 0 {
			led.violate(now, "byzantine-detection", tag+": inflated subtotal copies raised no mismatch")
		}
	case sac.ByzCorruptShares:
		if res.Mismatches == 0 && len(res.Excluded) == 0 {
			led.violate(now, "byzantine-detection", tag+": corrupted shares raised neither mismatch nor exclusion")
		}
	case sac.ByzPoisonScale:
		if !containsInt(res.Excluded, adv.peer) {
			led.violate(now, "byzantine-detection", tag+": poison-scale shares escaped the range guard")
		}
	case sac.ByzEquivocate:
		if !res.LeaderAccused {
			led.violate(now, "byzantine-equivocation", tag+": equivocating leader escaped the audit")
		}
	case sac.ByzZeroSubtotal, sac.ByzPoisonSignFlip:
		if len(res.Excluded) != 0 {
			led.violate(now, "byzantine-detection",
				fmt.Sprintf("%s: in-range behavior falsely excluded peers %v", tag, res.Excluded))
		}
	}
	if adv.behavior != sac.ByzEquivocate && res.LeaderAccused {
		led.violate(now, "byzantine-equivocation", tag+": honest leader falsely accused")
	}
	for _, p := range res.Excluded {
		if p != adv.peer {
			led.violate(now, "byzantine-detection",
				fmt.Sprintf("%s: honest peer %d falsely excluded", tag, p))
		}
	}

	// Bounded deviation: the guarded average must equal the mean of the
	// contributors' effective models — exactly for consistent behaviors
	// (the median outvotes a single liar bit-for-bit), and within
	// byzCorruptTol for corrupt-shares (one perturbed share per sum).
	want := make([]float64, dim)
	for _, p := range res.Contributors {
		w := models[p]
		if p == adv.peer && adv.behavior == sac.ByzPoisonSignFlip {
			w = attackedCopy(w, -1)
		}
		if p == adv.peer && adv.behavior == sac.ByzPoisonScale {
			w = attackedCopy(w, sac.PoisonScaleFactor)
		}
		for d, v := range w {
			want[d] += v
		}
	}
	for d := range want {
		want[d] /= float64(len(res.Contributors))
	}
	tol := 1e-9
	if adv.behavior == sac.ByzCorruptShares {
		tol = byzCorruptTol
	}
	if d := linf(res.Avg, want); d > tol {
		led.violate(now, "byzantine-robust",
			fmt.Sprintf("%s: guarded avg deviates %g > %g from effective contributor mean", tag, d, tol))
	}
}

func attackedCopy(w []float64, factor float64) []float64 {
	out := make([]float64, len(w))
	for i, v := range w {
		out[i] = factor * v
	}
	return out
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func linf(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	max := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}
