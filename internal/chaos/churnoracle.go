package chaos

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/secretshare"
	"repro/internal/wire"
)

// The churn oracle (Campaign.Churn) drives mid-training membership
// changes through the round-boundary reconfiguration path — exactly the
// contract the control plane promises: the directory reassigns share
// indices between rounds, never mid-round — and checks the churn
// invariants the issue names:
//
//   - share-index-soundness: after every membership change the
//     directory mirror assigns no duplicate share index within a
//     subgroup, and the membership each round aggregates with covers
//     all shares of its k-of-n geometry (secretshare.CoversAllShares).
//   - churn-accuracy: the training curve under churn stays within
//     churnAccuracyTol of the equal-seed fixed-membership baseline at
//     every round — joining and leaving peers shift the global mean by
//     at most the peer-deviation bound, they never corrupt it.
//   - sac-exactness: every round's aggregate — churned or not — equals
//     the plaintext mean of that round's membership to floating-point
//     tolerance.
//
// Everything derives from Campaign.Seed, so a red seed replays exactly.

const (
	// churnOracleSpread bounds each oracle peer's deviation from the
	// shared per-round target model. Any membership's mean then stays
	// within churnOracleSpread of the target, so two memberships' means
	// differ by at most 2·churnOracleSpread.
	churnOracleSpread = 0.5
	// churnAccuracyTol is the curve tolerance implied by the spread.
	churnAccuracyTol = 2*churnOracleSpread + 1e-9
	// churnOracleRounds is the training-curve length per episode.
	churnOracleRounds = 4
)

// runChurnOracle executes Campaign.ChurnRounds churn episodes.
func runChurnOracle(c Campaign, rep *Report) {
	led := newLedger(rep)
	rng := rand.New(rand.NewSource(c.Seed*5417 + 7))
	for ep := 0; ep < c.ChurnRounds; ep++ {
		churnEpisode(c, rep, led, rng, ep)
	}
}

// churnTrace is one episode's membership schedule: event r fires at the
// boundary before round r+1.
type churnTrace struct {
	join bool
	g    int
}

func churnEpisode(c Campaign, rep *Report, led *ledger, rng *rand.Rand, ep int) {
	m := 2 + rng.Intn(2)   // subgroups
	n0 := 3 + rng.Intn(2)  // initial peers per subgroup
	dim := 2 + rng.Intn(3) // small models keep campaigns fast
	now := int64(ep)
	tag := fmt.Sprintf("churn episode %d (m=%d n0=%d)", ep, m, n0)

	// Directory mirror seeded with the initial membership — the same
	// state machine the cluster replicates, driven here without the log.
	dir := directory.New()
	nextID := uint64(1)
	for g := 0; g < m; g++ {
		for i := 0; i < n0; i++ {
			if _, err := dir.Apply(wire.DirectoryUpdate{
				Op: wire.DirJoin, ID: nextID, Subgroup: g, ShareIndex: i,
				Addr: fmt.Sprintf("oracle-%d", nextID),
			}); err != nil {
				led.violate(now, "share-index-soundness", tag+": seeding rejected: "+err.Error())
				return
			}
			nextID++
		}
	}

	trace := make([]churnTrace, churnOracleRounds-1)
	for r := range trace {
		trace[r] = churnTrace{join: rng.Intn(2) == 0, g: rng.Intn(m)}
	}
	jitterSeed := rng.Int63()
	sysSeed := rng.Int63()

	fixedSizes := make([]int, m)
	for g := range fixedSizes {
		fixedSizes[g] = n0
	}

	// Fixed-membership baseline at equal seed: same per-round targets,
	// same jitter bound, no churn.
	baseline, ok := churnCurve(c, rep, led, now, tag+" baseline", fixedSizes, nil, nil, 0, dim, jitterSeed, sysSeed)
	if !ok {
		return
	}

	// Churned run: the trace mutates the directory between rounds and
	// core.Reconfigure re-shapes the aggregation to match.
	curve, ok := churnCurve(c, rep, led, now, tag, fixedSizes, dir, trace, nextID, dim, jitterSeed, sysSeed)
	if !ok {
		return
	}
	for r := range curve {
		for d := range curve[r] {
			if diff := math.Abs(curve[r][d] - baseline[r][d]); diff > churnAccuracyTol {
				led.violate(now, "churn-accuracy",
					fmt.Sprintf("%s: round %d global[%d] deviates %.4f > %.4f from the fixed-membership baseline",
						tag, r, d, diff, churnAccuracyTol))
				return
			}
		}
	}
	rep.Stats.SACRounds += 2 * churnOracleRounds
}

// churnCurve runs one training curve of churnOracleRounds aggregation
// rounds and returns the per-round globals. A nil dir runs the
// fixed-membership baseline; otherwise trace events mutate the directory
// at round boundaries and the system is reconfigured from its state.
func churnCurve(c Campaign, rep *Report, led *ledger, now int64, tag string, sizes []int,
	dir *directory.Directory, trace []churnTrace, nextID uint64, dim int,
	jitterSeed, sysSeed int64) ([][]float64, bool) {
	m := len(sizes)
	cur := append([]int(nil), sizes...)
	sys, err := core.NewSystem(core.Config{Sizes: cur, K: kFor(cur), Telemetry: c.Telemetry},
		rand.New(rand.NewSource(sysSeed)))
	if err != nil {
		led.violate(now, "churn-accuracy", tag+": config invalid: "+err.Error())
		return nil, false
	}
	jitter := rand.New(rand.NewSource(jitterSeed))
	curve := make([][]float64, 0, churnOracleRounds)
	for round := 0; round < churnOracleRounds; round++ {
		if dir != nil && round > 0 {
			nextID = applyChurnEvent(c, rep, led, now, tag, dir, trace[round-1], nextID)
			cur = directorySizes(dir, m)
			if err := sys.Reconfigure(cur, kFor(cur)); err != nil {
				led.violate(now, "share-index-soundness",
					fmt.Sprintf("%s: round %d reconfigure rejected directory geometry %v: %v", tag, round, cur, err))
				return nil, false
			}
		}
		// Round-start soundness: no duplicate indices, and the live
		// membership covers all shares of this round's k-of-n geometry.
		if dir != nil {
			for g := 0; g < m; g++ {
				if !dir.ShareIndexesSound(g) {
					led.violate(now, "share-index-soundness",
						fmt.Sprintf("%s: round %d subgroup %d holds duplicate or negative share indices", tag, round, g))
					return nil, false
				}
			}
		}
		k := kFor(cur)
		for g := 0; g < m; g++ {
			alive := make([]int, cur[g])
			for i := range alive {
				alive[i] = i
			}
			if covered, err := secretshare.CoversAllShares(alive, cur[g], k[g]); err != nil || !covered {
				led.violate(now, "share-index-soundness",
					fmt.Sprintf("%s: round %d subgroup %d (n=%d k=%d) does not cover all shares (err=%v)",
						tag, round, g, cur[g], k[g], err))
				return nil, false
			}
		}

		models := churnModels(jitter, cur, round, dim)
		res, err := sys.Aggregate(models, nil, nil)
		if err != nil {
			led.violate(now, "churn-accuracy",
				fmt.Sprintf("%s: round %d aggregation failed: %v", tag, round, err))
			return nil, false
		}
		want := plainMean(models)
		for d := range want {
			if math.Abs(res.Global[d]-want[d]) > 1e-9 {
				led.violate(now, "sac-exactness",
					fmt.Sprintf("%s: round %d global[%d] = %g, plaintext mean %g", tag, round, d, res.Global[d], want[d]))
				return nil, false
			}
		}
		curve = append(curve, res.Global)
	}
	return curve, true
}

// applyChurnEvent mutates the directory mirror with one trace event: a
// join takes the lowest free share index (the control plane's
// assignment rule), a leave removes the subgroup's lowest-index member.
// Leaves that would breach the two-member floor become joins, keeping
// the trace meaningful at every geometry.
func applyChurnEvent(c Campaign, rep *Report, led *ledger, now int64, tag string,
	dir *directory.Directory, ev churnTrace, nextID uint64) uint64 {
	members := dir.Subgroup(ev.g)
	if !ev.join && len(members) > 2 {
		if _, err := dir.Apply(wire.DirectoryUpdate{Op: wire.DirLeave, ID: members[0].ID}); err != nil {
			led.violate(now, "share-index-soundness", tag+": leave rejected: "+err.Error())
			return nextID
		}
		rep.Stats.Departs++
		if c.Telemetry != nil {
			c.Telemetry.Counter("chaos/churn/oracle_departs").Inc()
		}
		return nextID
	}
	if _, err := dir.Apply(wire.DirectoryUpdate{
		Op: wire.DirJoin, ID: nextID, Subgroup: ev.g,
		ShareIndex: dir.NextShareIndex(ev.g),
		Addr:       fmt.Sprintf("oracle-%d", nextID),
	}); err != nil {
		led.violate(now, "share-index-soundness", tag+": join rejected: "+err.Error())
		return nextID
	}
	rep.Stats.Joins++
	if c.Telemetry != nil {
		c.Telemetry.Counter("chaos/churn/oracle_joins").Inc()
	}
	return nextID + 1
}

// directorySizes reads the per-subgroup membership counts off the mirror.
func directorySizes(dir *directory.Directory, m int) []int {
	out := make([]int, m)
	for g := range out {
		out[g] = len(dir.Subgroup(g))
	}
	return out
}

// kFor derives each subgroup's sharing threshold from its size: k = n−1
// (the replication the cluster rounds use), floored at 1.
func kFor(sizes []int) []int {
	out := make([]int, len(sizes))
	for g, n := range sizes {
		out[g] = n - 1
		if out[g] < 1 {
			out[g] = 1
		}
	}
	return out
}

// churnModels draws one round's models: every peer sits within
// churnOracleSpread of the shared round target, so the membership's mean
// is target-bound regardless of who joined or left.
func churnModels(jitter *rand.Rand, sizes []int, round, dim int) [][]float64 {
	total := 0
	for _, n := range sizes {
		total += n
	}
	models := make([][]float64, total)
	for i := range models {
		models[i] = make([]float64, dim)
		for d := range models[i] {
			target := float64(round+1) + float64(d)/8
			models[i][d] = target + churnOracleSpread*math.Round((2*jitter.Float64()-1)*1024)/1024
		}
	}
	return models
}

func plainMean(models [][]float64) []float64 {
	out := make([]float64, len(models[0]))
	for _, w := range models {
		for d, v := range w {
			out[d] += v
		}
	}
	for d := range out {
		out[d] /= float64(len(models))
	}
	return out
}
