package chaos

import (
	"encoding/json"
	"testing"
)

// shardCampaign is the elastic-sharding acceptance configuration: the
// shard oracle's equal-seed split-vs-static episodes on top of a short
// schedule.
func shardCampaign(seed int64) Campaign {
	return Campaign{Seed: seed, Steps: 1, SACRounds: -1, Shard: true}
}

// TestShardOracleSweep runs the split-vs-static accuracy oracle over a
// seed sweep: every episode must stay green on shard-balance,
// share-index-soundness and shard-accuracy, and the sweep as a whole
// must have exercised both the split and the merge path.
func TestShardOracleSweep(t *testing.T) {
	splits, merges, joins, departs := 0, 0, 0, 0
	for seed := int64(1); seed <= 12; seed++ {
		rep := shardCampaign(seed).Run()
		if len(rep.Violations) > 0 {
			t.Fatalf("seed %d: %d violations, first: %s", seed, len(rep.Violations), rep.Violations[0])
		}
		splits += rep.Stats.Splits
		merges += rep.Stats.Merges
		joins += rep.Stats.Joins
		departs += rep.Stats.Departs
	}
	if splits == 0 || merges == 0 {
		t.Fatalf("sweep exercised %d splits, %d merges — both re-sharding paths must occur", splits, merges)
	}
	if joins == 0 || departs == 0 {
		t.Fatalf("sweep exercised %d joins, %d departs — membership must actually change", joins, departs)
	}
}

// TestShardOracleDeterministic pins seed-replayability: identical
// campaigns agree on every stat and violation, and the fixed boundary
// schedule guarantees a split in every single campaign.
func TestShardOracleDeterministic(t *testing.T) {
	run := func() *Report { return shardCampaign(42).Run() }
	a, b := run(), run()
	aj, _ := json.Marshal(struct {
		S Stats
		V []Violation
	}{a.Stats, a.Violations})
	bj, _ := json.Marshal(struct {
		S Stats
		V []Violation
	}{b.Stats, b.Violations})
	if string(aj) != string(bj) {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", aj, bj)
	}
	if a.Stats.Splits == 0 {
		t.Fatal("grow-burst boundary produced no split")
	}
}

// TestShardFlagSerializes checks the Shard knobs survive a campaign
// JSON round-trip, so replay files capture the oracle configuration.
func TestShardFlagSerializes(t *testing.T) {
	c := Campaign{Seed: 7, Shard: true, ShardRounds: 5}
	buf, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back Campaign
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Shard || back.ShardRounds != 5 {
		t.Fatalf("round-tripped campaign %+v lost the shard knobs", back)
	}
}
