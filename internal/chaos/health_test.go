package chaos

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

// flapCampaign is the failure-detector stress profile: flapping links,
// slow peers and leader kill storms against the two-layer cluster with
// the self-healing layer on, screened by the health-false-down and
// health-reconvergence checkers on top of the protocol invariants.
func flapCampaign(seed int64, reg *telemetry.Registry) Campaign {
	return Campaign{
		Seed:      seed,
		Steps:     12,
		Mix:       FlappingMix,
		Target:    TargetTwoLayer,
		Detector:  true,
		SACRounds: -1, // the oracle has its own tests; keep this one on the live cluster
		Telemetry: reg,
	}
}

// TestFlappingCampaignSweep is the acceptance sweep: the flapping
// campaign must pass both health checkers across 20 consecutive seeds,
// and every seed run twice must serialize byte-identical telemetry —
// schedule expansion, fault execution, detector verdicts and recovery
// are all pure functions of the seed.
func TestFlappingCampaignSweep(t *testing.T) {
	var flaps, downs, proactive int64
	for seed := int64(1); seed <= 20; seed++ {
		run := func() ([]byte, *Report) {
			reg := telemetry.New()
			rep := flapCampaign(seed, reg).Run()
			var buf bytes.Buffer
			if err := reg.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes(), rep
		}
		snap1, rep := run()
		requireClean(t, rep)
		snap2, _ := run()
		if !bytes.Equal(snap1, snap2) {
			t.Fatalf("seed %d: two runs produced different telemetry snapshots", seed)
		}
		flaps += int64(rep.Stats.Flaps)

		var snap telemetry.Snapshot
		if err := json.Unmarshal(snap1, &snap); err != nil {
			t.Fatal(err)
		}
		downs += snap.Counters["health/transitions_down"]
		proactive += snap.Counters["cluster/ev/proactive-campaign"]
	}
	// The sweep must actually exercise the mechanism under test: links
	// flapped, detectors issued (true) Down verdicts, and at least one
	// of those verdicts forced a proactive election.
	if flaps == 0 {
		t.Fatal("sweep flapped no links")
	}
	if downs == 0 {
		t.Fatal("sweep produced no Down verdicts — thresholds never tripped")
	}
	if proactive == 0 {
		t.Fatal("sweep triggered no proactive campaigns")
	}
}

// TestFlappingReplayRoundTrip: a detector campaign's replay file
// preserves the Detector/ReconvergeBoundUs configuration, so a red run
// re-executes with the same checkers armed.
func TestFlappingReplayRoundTrip(t *testing.T) {
	c := flapCampaign(3, nil)
	rep := c.Run()
	requireClean(t, rep)
	path := filepath.Join(t.TempDir(), "flap-replay.json")
	if err := WriteReplay(path, rep); err != nil {
		t.Fatal(err)
	}
	c2, actions, err := LoadReplay(path)
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Detector {
		t.Fatal("replay dropped Campaign.Detector")
	}
	rep2 := c2.Execute(actions)
	requireClean(t, rep2)
	if rep2.Stats.Flaps != rep.Stats.Flaps {
		t.Fatalf("replay flapped %d links, original %d", rep2.Stats.Flaps, rep.Stats.Flaps)
	}
}
