package chaos

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/telemetry"
)

// counterMonotonicityChecker samples the registry at every invariant
// sweep and reports any counter that regressed — counters are defined
// as monotone, so a decrease means a lost or double-applied update.
type counterMonotonicityChecker struct {
	reg  *telemetry.Registry
	last map[string]int64
}

func (c *counterMonotonicityChecker) Name() string { return "telemetry-monotonic" }

func (c *counterMonotonicityChecker) Check(v View) []string {
	snap := c.reg.Snapshot()
	var breaches []string
	for name, val := range snap.Counters {
		if prev, ok := c.last[name]; ok && val < prev {
			breaches = append(breaches,
				fmt.Sprintf("counter %s regressed %d -> %d", name, prev, val))
		}
		c.last[name] = val
	}
	return breaches
}

// telemetryCampaign is the partitioned/crash-heavy configuration the
// ISSUE's chaos hook is pinned on: enough fault pressure to force
// re-elections, plus SAC oracle rounds whose crash plans exercise
// share recovery.
func telemetryCampaign(seed int64, reg *telemetry.Registry) Campaign {
	return Campaign{
		Seed:      seed,
		Steps:     12,
		Mix:       PartitionHeavyMix,
		Target:    TargetRaftKV,
		SACRounds: 6,
		Telemetry: reg,
	}
}

// TestChaosTelemetryCampaign runs a partitioned campaign with a
// registry attached and a monotonicity checker sampling it at every
// sweep, and asserts the run recorded at least one election and at
// least one recovered subtotal (the ISSUE's chaos-hook acceptance).
func TestChaosTelemetryCampaign(t *testing.T) {
	reg := telemetry.New()
	c := telemetryCampaign(11, reg)
	c.ExtraCheckers = []Checker{&counterMonotonicityChecker{reg: reg, last: map[string]int64{}}}
	rep := c.Run()
	if !rep.Passed() {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
		t.Fatal("campaign failed")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["raft/elections_won"]; got < 1 {
		t.Errorf("raft/elections_won = %d, want >= 1", got)
	}
	if got := snap.Counters["sac/subtotals_recovered"]; got < 1 {
		t.Errorf("sac/subtotals_recovered = %d, want >= 1", got)
	}
	if got := snap.Counters["sac/rounds_started"]; got == 0 {
		t.Error("sac/rounds_started = 0: oracle rounds did not reach the registry")
	}
	if rep.Stats.Partitions+rep.Stats.Crashes == 0 {
		t.Error("campaign applied no partitions or crashes — scenario is not exercising faults")
	}
}

// TestChaosTelemetryDeterministic is the chaos half of the determinism
// regression: two identical-seed campaigns against fresh registries
// must serialize to byte-identical JSON, and a different seed must not.
func TestChaosTelemetryDeterministic(t *testing.T) {
	run := func(seed int64) []byte {
		reg := telemetry.New()
		rep := telemetryCampaign(seed, reg).Run()
		if !rep.Passed() {
			t.Fatalf("seed %d campaign failed: %v", seed, rep.Violations)
		}
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(11), run(11)
	if !bytes.Equal(a, b) {
		t.Fatalf("identical seeds produced different telemetry JSON:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	if c := run(12); bytes.Equal(a, c) {
		t.Fatal("different seeds produced byte-identical telemetry")
	}
}

// TestChaosTelemetryTwoLayer smoke-checks the two-layer target: the
// full cluster plus the post-chaos aggregation round must reach the
// registry through cluster.Options, core.Config and sac.Config.
func TestChaosTelemetryTwoLayer(t *testing.T) {
	reg := telemetry.New()
	c := Campaign{
		Seed:      5,
		Steps:     8,
		Mix:       CrashHeavyMix,
		Target:    TargetTwoLayer,
		SACRounds: -1, // isolate the two-layer path from the oracle
		Telemetry: reg,
	}
	rep := c.Run()
	if !rep.Passed() {
		t.Fatalf("campaign failed: %v", rep.Violations)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["raft/elections_won"]; got < 4 {
		t.Errorf("raft/elections_won = %d, want >= 4 (3 subgroups + fed layer)", got)
	}
	if got := snap.Counters["round/completed"]; got < 1 {
		t.Errorf("round/completed = %d, want >= 1 (post-chaos aggregation round)", got)
	}
	if got := snap.Counters["sac/rounds_ok"]; got < 1 {
		t.Errorf("sac/rounds_ok = %d, want >= 1", got)
	}
}
