package chaos

import (
	"fmt"
	"hash/fnv"

	"repro/internal/raft"
)

// NodeView is one node's externally visible consensus state, as exposed
// to Checkers.
type NodeView struct {
	// ID is the raft node ID.
	ID uint64
	// Group labels the consensus group the node belongs to ("raft" for
	// TargetRaftKV; "sub<g>" / "fed" for TargetTwoLayer).
	Group string
	// Down reports whether the node is currently crashed.
	Down bool
	// State/Term/Leader/Commit/LastIndex mirror raft.Status.
	State     raft.State
	Term      uint64
	Leader    uint64
	Commit    uint64
	LastIndex uint64
}

// View is a consistent snapshot of the whole system handed to Checkers
// at every check interval and once more after quiesce.
type View struct {
	// NowUs is the virtual time of the snapshot in microseconds.
	NowUs int64
	// Nodes lists every node in deterministic (group, ID) order.
	Nodes []NodeView
}

// Checker is a user-supplied invariant. Check returns one description
// per breach it observes in the view (nil/empty when the invariant
// holds).
type Checker interface {
	Name() string
	Check(v View) []string
}

type funcChecker struct {
	name string
	fn   func(View) []string
}

func (c funcChecker) Name() string          { return c.name }
func (c funcChecker) Check(v View) []string { return c.fn(v) }

// NewChecker wraps a function as a named Checker.
func NewChecker(name string, fn func(View) []string) Checker {
	return funcChecker{name: name, fn: fn}
}

// maxViolations caps the report so a badly broken run stays readable.
const maxViolations = 200

// entryFP fingerprints a committed entry for the commit-safety ledger.
type entryFP struct {
	term uint64
	typ  raft.EntryType
	sum  uint64
}

func fingerprint(e raft.Entry) entryFP {
	h := fnv.New64a()
	h.Write(e.Data)
	return entryFP{term: e.Term, typ: e.Type, sum: h.Sum64()}
}

// ledger accumulates the cross-node safety invariants that must be
// checked against history, not just current state: which node won each
// term, what every committed index contained, and each node's
// high-water commit index. One ledger serves all groups of a world;
// keys are namespaced by group label.
type ledger struct {
	rep     *Report
	dedup   map[string]bool
	leaders map[string]uint64  // "group/term" → leader ID
	commits map[string]entryFP // "group/index" → entry fingerprint
	hiwater map[string]uint64  // "group/id" → max observed commit index
}

func newLedger(rep *Report) *ledger {
	return &ledger{
		rep:     rep,
		dedup:   make(map[string]bool),
		leaders: make(map[string]uint64),
		commits: make(map[string]entryFP),
		hiwater: make(map[string]uint64),
	}
}

// violate records one breach, deduplicating identical reports (a broken
// invariant re-observed at every sweep would otherwise drown the run).
func (l *ledger) violate(atUs int64, invariant, detail string) {
	key := invariant + "|" + detail
	if l.dedup[key] || len(l.rep.Violations) >= maxViolations {
		return
	}
	l.dedup[key] = true
	l.rep.Violations = append(l.rep.Violations, Violation{AtUs: atUs, Invariant: invariant, Detail: detail})
}

// noteLeader checks election safety: at most one leader per (group, term).
func (l *ledger) noteLeader(atUs int64, group string, term, id uint64) {
	key := fmt.Sprintf("%s/%d", group, term)
	if prev, ok := l.leaders[key]; ok {
		if prev != id {
			l.violate(atUs, "election-safety",
				fmt.Sprintf("group %s term %d has two leaders: %d and %d", group, term, prev, id))
		}
		return
	}
	l.leaders[key] = id
}

// noteCommit checks commit safety: every node that commits index i must
// commit the identical entry.
func (l *ledger) noteCommit(atUs int64, group string, node uint64, e raft.Entry) {
	key := fmt.Sprintf("%s/%d", group, e.Index)
	fp := fingerprint(e)
	if prev, ok := l.commits[key]; ok {
		if prev != fp {
			l.violate(atUs, "commit-safety",
				fmt.Sprintf("group %s index %d committed divergently (node %d: term %d vs recorded term %d)",
					group, e.Index, node, e.Term, prev.term))
		}
		return
	}
	l.commits[key] = fp
}

// noteCommitIndex checks commit monotonicity: a node's commit index never
// regresses, not even across crash/restart (commit is persisted).
func (l *ledger) noteCommitIndex(atUs int64, group string, id, commit uint64) {
	key := fmt.Sprintf("%s/%d", group, id)
	if commit < l.hiwater[key] {
		l.violate(atUs, "commit-monotonicity",
			fmt.Sprintf("group %s node %d commit index regressed %d → %d", group, id, l.hiwater[key], commit))
		return
	}
	l.hiwater[key] = commit
}

// checkLogMatching verifies the Log Matching property over one group's
// live nodes: any two logs holding an entry at the same index with the
// same term must hold the identical entry.
func (l *ledger) checkLogMatching(atUs int64, group string, nodes []*raft.Node) {
	type logView struct {
		node *raft.Node
		snap uint64
		log  []raft.Entry
	}
	views := make([]logView, 0, len(nodes))
	for _, n := range nodes {
		views = append(views, logView{node: n, snap: n.SnapshotIndex(), log: n.Log()})
	}
	for i := 0; i < len(views); i++ {
		for j := i + 1; j < len(views); j++ {
			a, b := views[i], views[j]
			lo := a.snap
			if b.snap > lo {
				lo = b.snap
			}
			hi := a.snap + uint64(len(a.log))
			if bh := b.snap + uint64(len(b.log)); bh < hi {
				hi = bh
			}
			for idx := lo + 1; idx <= hi; idx++ {
				ea, eb := a.log[idx-a.snap-1], b.log[idx-b.snap-1]
				if ea.Term != eb.Term {
					continue // divergent uncommitted suffix — legal, truncated later
				}
				if fingerprint(ea) != fingerprint(eb) {
					l.violate(atUs, "log-matching",
						fmt.Sprintf("group %s index %d term %d differs between nodes %d and %d",
							group, idx, ea.Term, a.node.ID(), b.node.ID()))
				}
			}
		}
	}
}

// checkCommittedAgreement verifies that two nodes' committed log
// prefixes agree entry-for-entry — the state-machine safety property,
// checked directly on the logs so it works even where commit callbacks
// are owned by the system under test.
func (l *ledger) checkCommittedAgreement(atUs int64, group string, nodes []*raft.Node) {
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			a, b := nodes[i], nodes[j]
			la, lb := a.Log(), b.Log()
			sa, sb := a.SnapshotIndex(), b.SnapshotIndex()
			lo := sa
			if sb > lo {
				lo = sb
			}
			hi := a.CommitIndex()
			for _, bound := range []uint64{b.CommitIndex(), sa + uint64(len(la)), sb + uint64(len(lb))} {
				if bound < hi {
					hi = bound
				}
			}
			for idx := lo + 1; idx <= hi; idx++ {
				ea, eb := la[idx-sa-1], lb[idx-sb-1]
				if ea.Term != eb.Term || fingerprint(ea) != fingerprint(eb) {
					l.violate(atUs, "commit-safety",
						fmt.Sprintf("group %s committed index %d differs between nodes %d and %d (terms %d vs %d)",
							group, idx, a.ID(), b.ID(), ea.Term, eb.Term))
				}
			}
		}
	}
}

// runExtra evaluates the campaign's extra checkers against a view.
func (l *ledger) runExtra(checkers []Checker, v View) {
	for _, c := range checkers {
		for _, d := range c.Check(v) {
			l.violate(v.NowUs, c.Name(), d)
		}
	}
}
