package chaos

// Minimize shrinks a failing schedule to a (locally) minimal one by
// delta-debugging over complements: repeatedly re-execute the campaign
// with chunks of the schedule removed and keep any reduction that still
// violates an invariant, halving the chunk size when no removal at the
// current granularity reproduces the failure. budget caps the number of
// campaign executions (≤ 0 means a default of 64).
//
// It returns the reduced schedule and the report of its last failing
// execution; if the input schedule does not fail at all, it is returned
// unchanged with its (passing) report.
func Minimize(c Campaign, actions []Action, budget int) ([]Action, *Report) {
	if budget <= 0 {
		budget = 64
	}
	runs := 0
	fails := func(as []Action) (*Report, bool) {
		runs++
		rep := c.Execute(as)
		return rep, !rep.Passed()
	}

	curRep, bad := fails(actions)
	if !bad {
		return actions, curRep
	}
	// A failure that needs no faults at all (a broken base protocol, or
	// an oracle breach) minimizes straight to the empty schedule.
	if rep, b := fails(nil); b {
		return nil, rep
	}

	cur := append([]Action(nil), actions...)
	chunk := (len(cur) + 1) / 2
	for chunk >= 1 && runs < budget {
		reduced := false
		for i := 0; i < len(cur) && runs < budget; i += chunk {
			end := i + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := append(append([]Action(nil), cur[:i]...), cur[end:]...)
			if len(cand) == len(cur) {
				continue
			}
			if rep, b := fails(cand); b {
				cur, curRep = cand, rep
				reduced = true
				break // rescan the smaller schedule at the same granularity
			}
		}
		if reduced {
			if chunk > len(cur) {
				chunk = len(cur)
			}
			continue
		}
		if chunk == 1 {
			break
		}
		chunk /= 2
	}
	return cur, curRep
}
