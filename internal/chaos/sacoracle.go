package chaos

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sac"
	"repro/internal/secretshare"
	"repro/internal/transport"
)

// runSACOracle runs Campaign.SACRounds randomized k-out-of-n aggregations
// with seed-derived crash plans and checks the two SAC invariants the
// issue names:
//
//   - Exactness: whenever the surviving peers still cover all n shares
//     (≥ k-wise survivability), the recovered average equals the plain
//     arithmetic mean of the contributors' models, to floating-point
//     tolerance. When coverage is lost, the engine must say so with
//     ErrInsufficientPeers rather than return a silently wrong value.
//   - Privacy: reconstructing a model needs all n of its shares, so for
//     k ≥ 2 no single peer may observe every share of another peer's
//     model during the exchange.
//
// The oracle drives transport.Mesh directly (SAC is round-synchronous,
// not clocked), so it composes with either execution target.
func runSACOracle(c Campaign, rep *Report) {
	led := newLedger(rep)
	rng := rand.New(rand.NewSource(c.Seed*6364136223846793005 + 1442695040888963407))
	for round := 0; round < c.SACRounds; round++ {
		oracleRound(c, rep, led, rng, round)
		rep.Stats.SACRounds++
	}
}

func oracleRound(c Campaign, rep *Report, led *ledger, rng *rand.Rand, round int) {
	n := 3 + rng.Intn(4) // 3..6 peers
	// Keep 2 ≤ k < n: k ≥ 2 so privacy applies, k < n so replication is
	// active and crashes are tolerable rather than (legitimately) fatal.
	k := 2
	if n > 3 {
		k += rng.Intn(n - 2)
	}
	dim := 2 + rng.Intn(3) // small models keep campaigns fast
	leader := rng.Intn(n)
	models := make([][]float64, n)
	for i := range models {
		models[i] = make([]float64, dim)
		for d := range models[i] {
			models[i][d] = math.Round(rng.Float64()*2000-1000) / 16
		}
	}

	// Crash up to n−1 peers at seed-chosen phase boundaries.
	plan := sac.CrashPlan{}
	for _, p := range rng.Perm(n)[:rng.Intn(n)] {
		phase := sac.BeforeShares
		if rng.Intn(2) == 1 {
			phase = sac.AfterShares
		}
		plan[p] = phase
	}

	// Privacy probe: record which peers each observer could reconstruct —
	// an observer holding every one of a victim's n share indices has the
	// full secret. seen[observer][victim] is the set of share indices of
	// victim's model that observer received.
	seen := make([]map[int]map[int]bool, n)
	for i := range seen {
		seen[i] = make(map[int]map[int]bool)
	}
	mesh := transport.NewMesh(n, nil)
	mesh.Observe(func(m transport.Message) {
		if m.Kind != sac.KindShare || m.From == m.To {
			return
		}
		if seen[m.To][m.From] == nil {
			seen[m.To][m.From] = make(map[int]bool)
		}
		seen[m.To][m.From][m.ShareIdx] = true
	})

	cfg := sac.Config{N: n, K: k, Leader: leader, Mode: sac.ModeLeader,
		Rng: rand.New(rand.NewSource(rng.Int63())), Telemetry: c.Telemetry}
	res, err := sac.Run(mesh, cfg, models, plan)
	now := int64(round) // oracle rounds are unclocked; index stands in for time

	tag := fmt.Sprintf("round %d (n=%d k=%d leader=%d crashes=%d)", round, n, k, leader, len(plan))
	switch {
	case err == nil:
		checkExactness(led, now, tag, models, res)
	case errors.Is(err, sac.ErrLeaderCrashed):
		if _, crashed := plan[leader]; !crashed {
			led.violate(now, "sac-exactness", tag+": ErrLeaderCrashed without a leader crash")
		}
	case errors.Is(err, sac.ErrInsufficientPeers):
		// Only legitimate when the survivors genuinely lost share coverage.
		alive := alivePeers(n, plan)
		if covered, cerr := secretshare.CoversAllShares(alive, n, k); cerr == nil && covered {
			led.violate(now, "sac-exactness",
				tag+": ErrInsufficientPeers although surviving peers cover all shares")
		}
	default:
		led.violate(now, "sac-exactness", fmt.Sprintf("%s: unexpected error %v", tag, err))
	}

	checkPrivacy(led, now, tag, n, k, seen)
}

func alivePeers(n int, plan sac.CrashPlan) []int {
	var out []int
	for p := 0; p < n; p++ {
		if _, crashed := plan[p]; !crashed {
			out = append(out, p)
		}
	}
	return out
}

// checkExactness compares the SAC average against the plaintext mean of
// the contributors the engine reports.
func checkExactness(led *ledger, now int64, tag string, models [][]float64, res *sac.Result) {
	if len(res.Contributors) == 0 {
		led.violate(now, "sac-exactness", tag+": success with zero contributors")
		return
	}
	dim := len(models[0])
	want := make([]float64, dim)
	for _, p := range res.Contributors {
		for d, v := range models[p] {
			want[d] += v
		}
	}
	for d := range want {
		want[d] /= float64(len(res.Contributors))
	}
	if len(res.Avg) != dim {
		led.violate(now, "sac-exactness", fmt.Sprintf("%s: average has dim %d, want %d", tag, len(res.Avg), dim))
		return
	}
	for d := range want {
		if math.Abs(res.Avg[d]-want[d]) > 1e-9 {
			led.violate(now, "sac-exactness",
				fmt.Sprintf("%s: avg[%d] = %g, plaintext mean %g", tag, d, res.Avg[d], want[d]))
			return
		}
	}
}

// checkPrivacy asserts that no single observer accumulated all n share
// indices of another peer's model.
func checkPrivacy(led *ledger, now int64, tag string, n, k int, seen []map[int]map[int]bool) {
	if k < 2 {
		return // k = 1 shares are the plaintext; nothing to check
	}
	for observer := 0; observer < n; observer++ {
		for victim, idxs := range seen[observer] {
			if len(idxs) >= n {
				led.violate(now, "sac-privacy",
					fmt.Sprintf("%s: peer %d observed all %d shares of peer %d's model",
						tag, observer, n, victim))
			}
		}
	}
}
