package chaos

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
)

// requireClean fails the test with the full violation list when a
// campaign that must pass did not.
func requireClean(t *testing.T, rep *Report) {
	t.Helper()
	if rep.Passed() {
		return
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	t.Fatalf("campaign seed=%d failed with %d violations", rep.Campaign.Seed, len(rep.Violations))
}

// The three seeded campaigns the acceptance criteria name: crash-heavy,
// partition-heavy and mixed. Each must run green and must actually have
// exercised its fault class (a schedule of no-ops proves nothing).

func TestCrashHeavyCampaign(t *testing.T) {
	rep := Campaign{Seed: 1, Steps: 24, Mix: CrashHeavyMix, Nodes: 5}.Run()
	requireClean(t, rep)
	if rep.Stats.Crashes == 0 {
		t.Fatal("crash-heavy campaign performed no crashes")
	}
	if rep.Stats.Commits == 0 {
		t.Fatal("campaign committed nothing")
	}
}

func TestPartitionHeavyCampaign(t *testing.T) {
	rep := Campaign{Seed: 2, Steps: 24, Mix: PartitionHeavyMix, Nodes: 5}.Run()
	requireClean(t, rep)
	if rep.Stats.Partitions == 0 {
		t.Fatal("partition-heavy campaign created no partitions")
	}
	if rep.Stats.Commits == 0 {
		t.Fatal("campaign committed nothing")
	}
}

func TestMixedCampaign(t *testing.T) {
	rep := Campaign{Seed: 3, Steps: 30, Nodes: 5}.Run() // zero Mix → DefaultMix
	requireClean(t, rep)
	if rep.Stats.Crashes+rep.Stats.Partitions+rep.Stats.NetFaults == 0 {
		t.Fatal("mixed campaign injected no faults")
	}
	if rep.Stats.SACRounds == 0 {
		t.Fatal("SAC oracle did not run")
	}
}

// Same seed ⇒ identical schedule and identical verdict, byte for byte.
func TestSameSeedSameScheduleAndVerdict(t *testing.T) {
	c := Campaign{Seed: 7, Steps: 20, Nodes: 5}
	if !reflect.DeepEqual(c.Generate(), c.Generate()) {
		t.Fatal("Generate is not deterministic")
	}
	a, b := c.Run(), c.Run()
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("same seed produced different reports:\n%s\nvs\n%s", ja, jb)
	}
	// And a different seed must not degenerate to the same schedule.
	if reflect.DeepEqual(c.Generate(), Campaign{Seed: 8, Steps: 20, Nodes: 5}.Generate()) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// The two-layer target: subgroup + FedAvg faults, then a full aggregation
// round with the elected leaders.
func TestTwoLayerCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("two-layer campaign is slow in -short mode")
	}
	rep := Campaign{Seed: 11, Steps: 12, Target: TargetTwoLayer, Subgroups: 3, SubgroupSize: 3}.Run()
	requireClean(t, rep)
	if rep.Stats.SACRounds == 0 {
		t.Fatal("no aggregation round completed after quiesce")
	}
}

// A deliberately broken invariant must be (a) caught, (b) minimized to a
// smaller schedule that still fails, and (c) reproducible from its
// replay file.
func TestBrokenInvariantCaughtMinimizedReplayed(t *testing.T) {
	// "No node's term ever exceeds 3" is false under any schedule with
	// leader churn — a stand-in for a real protocol bug with a known
	// fault-dependent trigger.
	lowTerm := NewChecker("max-term", func(v View) []string {
		var out []string
		for _, n := range v.Nodes {
			if n.Term > 3 {
				out = append(out, fmt.Sprintf("node %d reached term %d", n.ID, n.Term))
			}
		}
		return out
	})
	c := Campaign{Seed: 5, Steps: 24, Mix: CrashHeavyMix, Nodes: 5, SACRounds: -1,
		ExtraCheckers: []Checker{lowTerm}}

	full := c.Generate()
	rep := c.Execute(full)
	if rep.Passed() {
		t.Fatal("broken invariant was not caught")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Invariant == "max-term" {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations %v do not name the broken checker", rep.Violations)
	}

	min, minRep := Minimize(c, full, 40)
	if minRep.Passed() {
		t.Fatal("minimized schedule no longer fails")
	}
	if len(min) >= len(full) {
		t.Fatalf("minimization did not shrink the schedule: %d → %d actions", len(full), len(min))
	}

	path := filepath.Join(t.TempDir(), "replay.json")
	if err := WriteReplay(path, minRep); err != nil {
		t.Fatal(err)
	}
	rc, ractions, err := LoadReplay(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ractions, min) {
		t.Fatal("replay file did not round-trip the schedule")
	}
	// Checkers are code, not data: re-attach before re-executing.
	rc.ExtraCheckers = []Checker{lowTerm}
	again := rc.Execute(ractions)
	if again.Passed() {
		t.Fatal("replayed schedule did not reproduce the failure")
	}
	if !reflect.DeepEqual(again.Violations, minRep.Violations) {
		t.Fatalf("replay verdict differs:\n%v\nvs\n%v", again.Violations, minRep.Violations)
	}
}

// An empty schedule is the no-fault baseline: it must always pass, and
// liveness must still be exercised.
func TestNoFaultBaseline(t *testing.T) {
	rep := Campaign{Seed: 42, Steps: 6, Nodes: 3}.Execute(nil)
	requireClean(t, rep)
	if rep.Stats.Commits == 0 {
		t.Fatal("baseline run committed nothing")
	}
}

// Replay files must round-trip campaign configuration exactly.
func TestReplayRoundTrip(t *testing.T) {
	c := Campaign{Seed: 9, Steps: 8, Mix: PartitionHeavyMix, Nodes: 4}
	rep := c.Run()
	path := filepath.Join(t.TempDir(), "r.json")
	if err := WriteReplay(path, rep); err != nil {
		t.Fatal(err)
	}
	rc, actions, err := LoadReplay(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rc, c) {
		t.Fatalf("campaign round-trip: %+v vs %+v", rc, c)
	}
	if !reflect.DeepEqual(actions, rep.Actions) {
		t.Fatal("actions round-trip mismatch")
	}
	again := rc.Execute(actions)
	if again.Passed() != rep.Passed() {
		t.Fatal("replayed verdict differs from original")
	}
}
