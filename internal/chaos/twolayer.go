package chaos

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/health"
	"repro/internal/raft"
	"repro/internal/sac"
	"repro/internal/simnet"
)

// Byzantine two-layer rounds draw model coordinates from [16, 141]: the
// nonzero floor makes poison-scale shares provably out of range (the
// largest of a peer's shares carries ≥ 1/n of its model, so a ×1000
// model pushes it past any honest share), which keeps range-guard
// detection deterministic. The tolerance allows one sign-flipped or
// excluded model per subgroup plus median-vs-mean spread.
const (
	byzModelMax      = 141.0
	byzTwoLayerBound = 2 * byzModelMax
)

// Flap cycle timing: the dark window exceeds the detector's default
// silence threshold (3 heartbeats ≈ 48 ms at the smallest healthy
// setting), so each flap produces genuine Down verdicts that the
// recovery half of the cycle must retract.
const (
	flapDark  = 60 * simnet.Millisecond
	flapClear = 40 * simnet.Millisecond
)

// twWorld is the TargetTwoLayer system under test: the paper's two-layer
// Raft deployment (internal/cluster) — m subgroup groups plus the FedAvg
// layer formed from their leaders — subjected to the same fault schedule
// vocabulary as the raft-kv world, with group-qualified targets.
type twWorld struct {
	c       Campaign
	rep     *Report
	led     *ledger
	sys     *cluster.System
	m       int // number of subgroups; group index m addresses the FedAvg layer
	stopped bool
	// frozen is raised when quiesce begins: in-flight flap cycles must
	// not re-darken a link the liveness phase just healed.
	frozen bool
	// healthSeen indexes into sys.HealthTransitions(): verdicts before
	// it have already been screened by the false-Down checker.
	healthSeen int
	// byz maps subgroup index → adversary plan (local peer index →
	// behavior) accumulated from ActByzantine actions. A non-empty map
	// switches the quiesce aggregation round into robust mode.
	byz map[int]sac.AdversaryPlan
	// churned is raised by the first completed ActChurn operation: the
	// quiesce phase then waits for in-flight admissions/departures to
	// settle before judging liveness.
	churned bool
}

// executeTwoLayer runs one schedule against a fresh two-layer cluster.
func executeTwoLayer(c Campaign, actions []Action, rep *Report) {
	var topo *simnet.Topology
	if c.Topology != "" {
		var err error
		if topo, err = simnet.Preset(c.Topology); err != nil {
			panic(fmt.Sprintf("chaos: %v", err)) // Execute validates the name up front
		}
	}
	sys, err := cluster.New(cluster.Options{
		NumSubgroups:    c.Subgroups,
		SubgroupSize:    c.SubgroupSize,
		ElectionTickMin: c.ElectionTickMin,
		ElectionTickMax: c.ElectionTickMax,
		HeartbeatTick:   c.HeartbeatTick,
		Latency:         simnet.Duration(c.LatencyUs),
		Topology:        topo,
		PreVote:         c.PreVote,
		CheckQuorum:     c.CheckQuorum,
		Seed:            c.Seed,
		Detector:        c.Detector,
		Telemetry:       c.Telemetry, // cluster.New pins its clock to the sim
	})
	if err != nil {
		panic(fmt.Sprintf("chaos: two-layer options invalid: %v", err)) // normalize() guarantees validity
	}
	w := &twWorld{c: c, rep: rep, led: newLedger(rep), sys: sys, m: sys.NumSubgroups(),
		byz: make(map[int]sac.AdversaryPlan)}

	// Election safety is checked from raw role transitions on both layers.
	sys.SetObserver(cluster.Observer{
		SubgroupState: func(peer uint64, subgroup int, st raft.State, term, leader uint64) {
			if st == raft.Leader {
				rep.Stats.LeaderChanges++
				w.led.noteLeader(int64(sys.Sim.Now()), fmt.Sprintf("sub%d", subgroup), term, peer)
			}
		},
		FedState: func(peer uint64, st raft.State, term, leader uint64) {
			if st == raft.Leader {
				rep.Stats.LeaderChanges++
				w.led.noteLeader(int64(sys.Sim.Now()), "fed", term, peer)
			}
		},
	})

	if err := sys.Bootstrap(60 * simnet.Second); err != nil {
		w.led.violate(int64(sys.Sim.Now()), "liveness", fmt.Sprintf("bootstrap on a healthy network failed: %v", err))
		return
	}

	step := simnet.Duration(c.StepEveryUs)
	for _, a := range actions {
		a := a
		sys.Sim.Schedule(simnet.Duration(a.Step+1)*step, func() { w.apply(a) })
	}
	var check func()
	check = func() {
		if w.stopped {
			return
		}
		w.sweep()
		sys.Sim.Schedule(sweepEvery, check)
	}
	sys.Sim.Schedule(sweepEvery, check)

	end := sys.Sim.Now() + simnet.Time(simnet.Duration(lastStep(actions, c.Steps)+1)*step)
	sys.Sim.RunUntil(end)
	w.quiesce()
	w.stopped = true
	rep.Stats.FinalVirtualMs = int64(sys.Sim.Now()) / 1000
}

// net resolves an action's group index to the sub-network it targets.
func (w *twWorld) net(group int) *simnet.Group {
	g := group % (w.m + 1)
	if g == w.m {
		return w.sys.FedNet()
	}
	return w.sys.SubgroupNet(g)
}

// peerPool lists the action's candidate peers: the members of the
// targeted subgroup, or every peer when the action addresses the FedAvg
// layer (whose membership is the floating set of subgroup leaders).
func (w *twWorld) peerPool(group int) []uint64 {
	g := group % (w.m + 1)
	if g == w.m {
		return w.sys.PeerIDs()
	}
	return w.sys.SubgroupPeers(g)
}

func (w *twWorld) apply(a Action) {
	s := &w.rep.Stats
	switch a.Kind {
	case ActCrash:
		var live []uint64
		for _, id := range w.peerPool(a.Group) {
			if !w.sys.Peer(id).Down() {
				live = append(live, id)
			}
		}
		if len(live) > 0 {
			_ = w.sys.CrashPeer(live[a.Rank%len(live)])
			s.Crashes++
		}
	case ActRestart:
		var down []uint64
		for _, id := range w.peerPool(a.Group) {
			if w.sys.Peer(id).Down() {
				down = append(down, id)
			}
		}
		if len(down) > 0 {
			if err := w.sys.RestartPeer(down[a.Rank%len(down)]); err == nil {
				s.Restarts++
			}
		}
	case ActLeaderKill:
		g := a.Group % (w.m + 1)
		var id uint64
		if g == w.m {
			id = w.sys.FedAvgLeader()
		} else {
			id = w.sys.SubgroupLeader(g)
		}
		if id != raft.None {
			_ = w.sys.CrashPeer(id)
			s.Crashes++
		}
	case ActPartition:
		net := w.net(a.Group)
		ids := net.IDs()
		side := make(map[uint64]bool, len(ids))
		aCount := 0
		for i, id := range ids {
			side[id] = a.Side>>(uint(i)%64)&1 == 1
			if side[id] {
				aCount++
			}
		}
		if aCount == 0 || aCount == len(ids) {
			return
		}
		net.Partition(side)
		s.Partitions++
	case ActBlackhole:
		net := w.net(a.Group)
		ids := net.IDs()
		if len(ids) == 0 {
			return
		}
		id := ids[a.Rank%len(ids)]
		net.DropFilter = func(m raft.Message) bool { return m.From == id }
		s.NetFaults++
	case ActLoss:
		w.net(a.Group).LossRate = a.Rate
		s.NetFaults++
	case ActDelay:
		w.net(a.Group).Jitter = simnet.Duration(a.DelayUs)
		s.NetFaults++
	case ActHeal:
		w.calmAll()
		s.Heals++
	case ActFlap:
		net := w.net(a.Group)
		ids := net.IDs()
		if len(ids) == 0 {
			return
		}
		id := ids[a.Rank%len(ids)]
		s.Flaps++
		w.flap(net, id, 2+a.Rank%3)
	case ActByzantine:
		g := a.Group % w.m
		n := len(w.sys.SubgroupPeers(g))
		// One adversary per subgroup, and only where the honest-majority
		// precondition 3f < n holds at f = 1.
		if len(w.byz[g]) > 0 || n < 4 {
			return
		}
		b := sac.Behavior(a.Behavior)
		if b == sac.ByzNone {
			b = sac.ByzInflateSubtotal
		}
		w.byz[g] = sac.AdversaryPlan{a.Rank % n: b}
		s.Byzantines++
	case ActChurn:
		// Rank selects both the operation and (for departures and
		// handoffs) the target among the eligible members. Operations
		// that are currently impossible — floor reached, no live target —
		// simply skip; the schedule stays deterministic because
		// eligibility is itself a deterministic function of the run.
		g := a.Group % w.m // churn addresses subgroups, never the fed layer
		switch a.Rank % 3 {
		case 0: // admit a brand-new peer
			if _, err := w.sys.AddPeer(g); err == nil {
				s.Joins++
				w.churned = true
			}
		case 1: // graceful departure (model handoff + directory leave)
			cands := w.churnCandidates(g, false)
			if len(cands) > 0 {
				if err := w.sys.DepartPeer(cands[(a.Rank/3)%len(cands)]); err == nil {
					s.Departs++
					w.churned = true
				}
			}
		default: // same-identity handoff to a successor process
			cands := w.churnCandidates(g, true)
			if len(cands) > 0 {
				if _, err := w.sys.ReplacePeer(cands[(a.Rank/3)%len(cands)]); err == nil {
					s.Handoffs++
					w.churned = true
				}
			}
		}
	}
}

// churnCandidates lists subgroup g's members eligible for a departure or
// (mustLive) a same-identity handoff: admitted, not already departing,
// and live when the operation needs a running process.
func (w *twWorld) churnCandidates(g int, mustLive bool) []uint64 {
	var out []uint64
	for _, id := range w.sys.SubgroupPeers(g) {
		p := w.sys.Peer(id)
		if p == nil || p.Departing() {
			continue
		}
		if mustLive && p.Down() {
			continue
		}
		out = append(out, id)
	}
	return out
}

// flap darkens id's outbound links on net for flapDark, releases them
// for flapClear, and repeats. Cycles abandon themselves once quiesce
// freezes the world.
func (w *twWorld) flap(net *simnet.Group, id uint64, cycles int) {
	if w.frozen {
		return
	}
	net.DropFilter = func(m raft.Message) bool { return m.From == id }
	w.sys.Sim.Schedule(flapDark, func() {
		if w.frozen {
			return
		}
		net.DropFilter = nil
		if cycles > 1 {
			w.sys.Sim.Schedule(flapClear, func() { w.flap(net, id, cycles-1) })
		}
	})
}

func (w *twWorld) calmAll() {
	for g := 0; g < w.m; g++ {
		w.sys.SubgroupNet(g).Calm()
	}
	w.sys.FedNet().Calm()
}

// sweep checks log matching, committed-prefix agreement and commit
// monotonicity on every subgroup, and log matching plus committed-prefix
// agreement on the FedAvg layer. (FedAvg-layer commit monotonicity per
// peer is deliberately not asserted: a peer that loses leadership and
// later rejoins starts a fresh fed node, which is correct behaviour.)
func (w *twWorld) sweep() {
	now := int64(w.sys.Sim.Now())
	for g := 0; g < w.m; g++ {
		label := fmt.Sprintf("sub%d", g)
		net := w.sys.SubgroupNet(g)
		var nodes []*raft.Node
		for _, id := range net.IDs() {
			h := net.Host(id)
			if h.Down() {
				continue
			}
			nodes = append(nodes, h.Node)
			w.led.noteCommitIndex(now, label, id, h.Node.CommitIndex())
		}
		w.led.checkLogMatching(now, label, nodes)
		w.led.checkCommittedAgreement(now, label, nodes)
	}
	fed := w.sys.FedNet()
	var fedNodes []*raft.Node
	for _, id := range fed.IDs() {
		if h := fed.Host(id); !h.Down() {
			fedNodes = append(fedNodes, h.Node)
		}
	}
	w.led.checkLogMatching(now, "fed", fedNodes)
	w.led.checkCommittedAgreement(now, "fed", fedNodes)
	w.checkHealth()
	w.led.runExtra(w.c.ExtraCheckers, w.view())
}

// checkHealth screens detector verdicts issued since the last sweep
// against the cluster's shadow delivery ledger: a Down verdict whose
// shadow silence gap is below the detector's threshold condemned a peer
// whose messages were still arriving — a false positive.
func (w *twWorld) checkHealth() {
	if !w.c.Detector {
		return
	}
	trans := w.sys.HealthTransitions()
	for _, tr := range trans[w.healthSeen:] {
		if tr.To == health.Down && tr.ShadowGapUs < tr.ThresholdUs {
			w.led.violate(tr.AtUs, "health-false-down",
				fmt.Sprintf("peer %d declared %d Down with delivery gap %dµs < threshold %dµs",
					tr.Owner, tr.Peer, tr.ShadowGapUs, tr.ThresholdUs))
		}
	}
	w.healthSeen = len(trans)
}

func (w *twWorld) view() View {
	v := View{NowUs: int64(w.sys.Sim.Now())}
	for _, id := range w.sys.PeerIDs() {
		p := w.sys.Peer(id)
		st := p.SubStatus()
		v.Nodes = append(v.Nodes, NodeView{
			ID:        id,
			Group:     fmt.Sprintf("sub%d", p.Subgroup),
			Down:      p.Down(),
			State:     st.State,
			Term:      st.Term,
			Leader:    st.Leader,
			Commit:    st.CommitIndex,
			LastIndex: st.LastIndex,
		})
		if fst, ok := p.FedStatus(); ok && !p.Down() {
			v.Nodes = append(v.Nodes, NodeView{
				ID:        id,
				Group:     "fed",
				Down:      p.Down(),
				State:     fst.State,
				Term:      fst.Term,
				Leader:    fst.Leader,
				Commit:    fst.CommitIndex,
				LastIndex: fst.LastIndex,
			})
		}
	}
	return v
}

// quiesce is the two-layer liveness phase: faults lifted and peers
// revived, every subgroup and the FedAvg layer must re-elect leaders, and
// a full two-layer aggregation round using exactly those leaders must
// complete and equal the plaintext global mean — the paper's end-to-end
// recovery claim made literal.
func (w *twWorld) quiesce() {
	sys := w.sys
	w.frozen = true // strands in-flight flap cycles
	w.calmAll()
	deadline := sys.Sim.Now() + simnet.Time(w.c.QuiesceTimeoutUs)
	// Re-convergence is bounded from the moment the last fault lifts,
	// not from whenever the liveness waits happen to finish.
	reconvergeBy := sys.Sim.Now() + simnet.Time(w.c.ReconvergeBoundUs)
	now := func() int64 { return int64(sys.Sim.Now()) }

	// Revive every crashed peer, and every crashed FedAvg-layer node: a
	// schedule may have felled a majority of the layer's members, which
	// the join protocol alone cannot recover from.
	var revive func()
	revive = func() {
		anyDown := false
		for _, id := range sys.PeerIDs() {
			if sys.Peer(id).Down() {
				if err := sys.RestartPeer(id); err != nil {
					anyDown = true
					continue
				}
			}
			_ = sys.ReviveFedNode(id)
		}
		if anyDown && sys.Sim.Now() < deadline {
			sys.Sim.Schedule(retryEvery, revive)
		}
	}
	revive()

	// Continuous churn must settle before liveness is judged: an
	// admission or departure still in flight keeps changing membership,
	// and its retry loops only need the leaders that the calm network is
	// now re-electing.
	if w.churned && !sys.Sim.RunWhileNot(sys.ChurnIdle, deadline) {
		w.led.violate(now(), "churn-liveness",
			"admissions/departures still in flight after the schedule quiesced")
		return
	}

	elected := func() bool {
		for g := 0; g < w.m; g++ {
			if sys.SubgroupLeader(g) == raft.None {
				return false
			}
		}
		return sys.FedAvgLeader() != raft.None
	}
	if !sys.Sim.RunWhileNot(elected, deadline) {
		missing := "FedAvg layer"
		for g := 0; g < w.m; g++ {
			if sys.SubgroupLeader(g) == raft.None {
				missing = fmt.Sprintf("subgroup %d", g)
				break
			}
		}
		w.led.violate(now(), "liveness", fmt.Sprintf("%s had no leader after schedule quiesced", missing))
		return
	}
	// Let the freshly elected leaders finish joining the FedAvg layer so
	// the round spec reflects a settled configuration.
	fedID := sys.FedAvgLeader()
	sys.Sim.RunWhileNot(func() bool {
		for g := 0; g < w.m; g++ {
			l := sys.SubgroupLeader(g)
			if l == raft.None || !sys.Peer(l).Joined() {
				return false
			}
		}
		return true
	}, deadline)

	// Directory invariants: every live FedAvg-layer replica must agree
	// (equal checksums — replicas lag commits only while appends are in
	// flight, so the calm network converges them), and the agreed state
	// must record exactly the admitted membership with sound share
	// indices. Checked on every campaign: the directory is seeded at
	// bootstrap, so a fault-only schedule must preserve it too.
	if !sys.Sim.RunWhileNot(sys.DirectoryConverged, deadline) {
		detail := "live directory replicas still disagree after the schedule quiesced:"
		for _, id := range sys.DirectoryReplicas() {
			d := sys.Peer(id).DirectoryReplica()
			detail += fmt.Sprintf(" peer%d{v%d len%d sum%x}", id, d.Version(), d.Len(), d.Checksum())
		}
		w.led.violate(now(), "directory-convergence", detail)
	} else if !sys.DirectoryMatchesMembership() {
		w.led.violate(now(), "share-index-soundness",
			"FedAvg leader's directory does not match the admitted membership (or assigns unsound share indices)")
	}

	// Bounded re-convergence: with the network calm and every peer
	// revived, no live detector may keep a stale Suspect/Down verdict
	// about a live peer.
	if w.c.Detector && !sys.Sim.RunWhileNot(sys.DetectorsConverged, reconvergeBy) {
		w.led.violate(now(), "health-reconvergence",
			fmt.Sprintf("detectors still hold non-Up verdicts about live peers %.0fms after the last fault",
				simnet.Duration(w.c.ReconvergeBoundUs).Ms()))
	}

	w.aggregationRound(fedID)
	w.sweep()
}

// aggregationRound runs one two-layer SAC round with the leaders the
// chaos left in place and checks its exactness against the plaintext
// global mean.
func (w *twWorld) aggregationRound(fedID uint64) {
	sys := w.sys
	now := int64(sys.Sim.Now())
	sizes := make([]int, w.m)
	offsets := make([]int, w.m)
	total := 0
	for g := 0; g < w.m; g++ {
		offsets[g] = total
		sizes[g] = len(sys.SubgroupPeers(g))
		total += sizes[g]
	}

	// Map elected leaders (global peer IDs) to in-subgroup indices.
	leaders := make([]int, w.m)
	for g := 0; g < w.m; g++ {
		id := sys.SubgroupLeader(g)
		idx := -1
		for i, pid := range sys.SubgroupPeers(g) {
			if pid == id {
				idx = i
			}
		}
		if idx < 0 {
			w.led.violate(now, "liveness", fmt.Sprintf("subgroup %d leader %d not among its peers", g, id))
			return
		}
		leaders[g] = idx
	}
	fedSub := -1
	if p := sys.Peer(fedID); p != nil {
		fedSub = p.Subgroup
	}

	guarded := len(w.byz) > 0
	cfg := core.Config{
		Sizes:     sizes,
		K:         []int{w.c.SubgroupSize - 1}, // k-out-of-n where sizes allow; clamped to n below that
		Telemetry: w.c.Telemetry,
	}
	if guarded {
		// Robust mode needs 3-way share replication (k = n−2) so the
		// holder cross-check can outvote the marked adversaries.
		cfg.K = []int{w.c.SubgroupSize - 2}
		cfg.Guard = &sac.Guard{ShareBound: byzModelMax, CrossCheck: true}
		cfg.Aggregator = fl.CoordinateMedian{}
	}
	coreSys, err := core.NewSystem(cfg, rand.New(rand.NewSource(w.c.Seed^0x7f4a7c15)))
	if err != nil {
		w.led.violate(now, "liveness", fmt.Sprintf("aggregation config invalid: %v", err))
		return
	}
	models := make([][]float64, total)
	rng := rand.New(rand.NewSource(w.c.Seed ^ 0x2545f491))
	for i := range models {
		models[i] = []float64{math.Round(rng.Float64()*1000) / 8, math.Round(rng.Float64()*1000) / 8}
		if guarded {
			// Lift coordinates to [16, 141] so poison-scale shares are
			// provably forged (see byzModelMax).
			models[i][0] += 16
			models[i][1] += 16
		}
	}
	res, err := coreSys.AggregateRound(models, core.RoundSpec{Leaders: leaders, FedLeader: fedSub, Adversary: w.byz})
	if err != nil {
		w.led.violate(now, "liveness", fmt.Sprintf("aggregation round with elected leaders failed: %v", err))
		return
	}
	w.rep.Stats.SACRounds++
	if guarded {
		w.checkByzantineRound(now, sizes, offsets, models, res)
		return
	}
	want := make([]float64, len(models[0]))
	for _, m := range models {
		for d, v := range m {
			want[d] += v
		}
	}
	for d := range want {
		want[d] /= float64(total)
	}
	for d := range want {
		if math.Abs(res.Global[d]-want[d]) > 1e-9 {
			w.led.violate(now, "sac-exactness",
				fmt.Sprintf("post-quiesce round: global[%d] = %g, plaintext mean %g", d, res.Global[d], want[d]))
			return
		}
	}
}

// checkByzantineRound replaces the exactness check when the schedule
// marked adversaries: the robust global must stay within
// byzTwoLayerBound of the honest-only plaintext mean, and provably
// forged (poison-scale) peers must appear among the excluded.
func (w *twWorld) checkByzantineRound(now int64, sizes, offsets []int, models [][]float64, res *core.RoundResult) {
	want := make([]float64, len(models[0]))
	cnt := 0
	for g := 0; g < w.m; g++ {
		plan := w.byz[g]
		for i := 0; i < sizes[g]; i++ {
			if _, bad := plan[i]; bad {
				continue
			}
			for d, v := range models[offsets[g]+i] {
				want[d] += v
			}
			cnt++
		}
	}
	for d := range want {
		want[d] /= float64(cnt)
	}
	for d := range want {
		if math.Abs(res.Global[d]-want[d]) > byzTwoLayerBound {
			w.led.violate(now, "byzantine-robust",
				fmt.Sprintf("post-quiesce robust round: global[%d] = %g deviates > %g from honest mean %g",
					d, res.Global[d], byzTwoLayerBound, want[d]))
			return
		}
	}
	for g, plan := range w.byz {
		for p, b := range plan {
			if b == sac.ByzPoisonScale && !containsInt(res.ExcludedPeers[g], p) {
				w.led.violate(now, "byzantine-detection",
					fmt.Sprintf("post-quiesce robust round: poison-scale peer %d of subgroup %d escaped the range guard", p, g))
			}
		}
		w.rep.Stats.ByzantineDetections += len(res.ExcludedPeers[g])
	}
}
