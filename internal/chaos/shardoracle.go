package chaos

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/secretshare"
	"repro/internal/wire"
)

// The shard oracle (Campaign.Shard) is the accuracy proof for elastic
// sharding: splitting an oversized subgroup or merging an undersized
// one must be invisible to training. Each episode runs two equal-seed
// deployments over the identical membership history — a static mirror
// that never re-shards, and an elastic mirror that applies the same
// split/merge policy the cluster uses (split above 2n−1 members, merge
// below n/2) at every round boundary — and aggregates the same models
// through both geometries. Invariants:
//
//   - shard-balance: after rebalancing, every live subgroup respects
//     the size bounds (no subgroup above 2n−1, none below n/2 unless it
//     is the only one), and rebalancing converges in bounded passes.
//   - share-index-soundness: a split re-registers its movers densely
//     and a merge re-registers at the target's lowest free slots, so no
//     subgroup ever holds a duplicate share index and each round's
//     k-of-n geometry covers all shares.
//   - shard-accuracy: the elastic run's global equals the static run's
//     global at every round — the partition of the same membership
//     cannot move the FedAvg mean — and both equal the plaintext mean
//     (sac-exactness).
//
// Everything derives from Campaign.Seed, so a red seed replays exactly.

const (
	// shardOracleRounds is the training-curve length per episode. The
	// boundary schedule within it is fixed (grow burst, mixed churn,
	// shrink burst, mixed churn), so every episode exercises at least
	// one split and, membership permitting, one merge.
	shardOracleRounds = 5
	// shardOraclePasses bounds the rebalance fixpoint loop. A split
	// never produces a merge candidate and a merge at most one split, so
	// real schedules settle in two or three passes.
	shardOraclePasses = 16
)

// runShardOracle executes Campaign.ShardRounds elastic-sharding
// episodes.
func runShardOracle(c Campaign, rep *Report) {
	led := newLedger(rep)
	rng := rand.New(rand.NewSource(c.Seed*6779 + 11))
	for ep := 0; ep < c.ShardRounds; ep++ {
		shardEpisode(c, rep, led, rng, ep)
	}
}

func shardEpisode(c Campaign, rep *Report, led *ledger, rng *rand.Rand, ep int) {
	n := 3 + rng.Intn(2)   // healthy subgroup degree
	dim := 2 + rng.Intn(3) // small models keep campaigns fast
	now := int64(ep)
	tag := fmt.Sprintf("shard episode %d (n=%d)", ep, n)

	// Two directory mirrors over the identical initial membership: the
	// static one keeps its two seed subgroups forever, the elastic one
	// re-shards at round boundaries.
	static, elastic := directory.New(), directory.New()
	nextID := uint64(1)
	for g := 0; g < 2; g++ {
		for i := 0; i < n; i++ {
			for _, d := range []*directory.Directory{static, elastic} {
				if _, err := d.Apply(wire.DirectoryUpdate{
					Op: wire.DirJoin, ID: nextID, Subgroup: g, ShareIndex: i,
					Addr: fmt.Sprintf("shard-%d", nextID),
				}); err != nil {
					led.violate(now, "share-index-soundness", tag+": seeding rejected: "+err.Error())
					return
				}
			}
			nextID++
		}
	}

	jitter := rand.New(rand.NewSource(rng.Int63()))
	sysElastic, err := core.NewSystem(core.Config{
		Sizes: shardSizes(elastic), K: kFor(shardSizes(elastic)), Telemetry: c.Telemetry,
	}, rand.New(rand.NewSource(rng.Int63())))
	if err != nil {
		led.violate(now, "shard-accuracy", tag+": elastic config invalid: "+err.Error())
		return
	}
	sysStatic, err := core.NewSystem(core.Config{
		Sizes: shardSizes(static), K: kFor(shardSizes(static)), Telemetry: c.Telemetry,
	}, rand.New(rand.NewSource(rng.Int63())))
	if err != nil {
		led.violate(now, "shard-accuracy", tag+": static config invalid: "+err.Error())
		return
	}

	for round := 0; round < shardOracleRounds; round++ {
		if round > 0 {
			nextID = shardBoundary(rep, rng, static, elastic, n, round, nextID)
			if !rebalanceMirror(rep, led, now, tag, elastic, n) {
				return
			}
			es, ss := shardSizes(elastic), shardSizes(static)
			if err := sysElastic.Reconfigure(es, kFor(es)); err != nil {
				led.violate(now, "share-index-soundness",
					fmt.Sprintf("%s: round %d elastic reconfigure rejected geometry %v: %v", tag, round, es, err))
				return
			}
			if err := sysStatic.Reconfigure(ss, kFor(ss)); err != nil {
				led.violate(now, "share-index-soundness",
					fmt.Sprintf("%s: round %d static reconfigure rejected geometry %v: %v", tag, round, ss, err))
				return
			}
		}
		if !checkShardRound(led, now, tag, round, static, elastic, n) {
			return
		}

		// One model draw serves both runs: same members, same weights —
		// only the subgroup partition differs.
		models := churnModels(jitter, shardSizes(elastic), round, dim)
		resE, err := sysElastic.Aggregate(models, nil, nil)
		if err != nil {
			led.violate(now, "shard-accuracy",
				fmt.Sprintf("%s: round %d elastic aggregation failed: %v", tag, round, err))
			return
		}
		resS, err := sysStatic.Aggregate(models, nil, nil)
		if err != nil {
			led.violate(now, "shard-accuracy",
				fmt.Sprintf("%s: round %d static aggregation failed: %v", tag, round, err))
			return
		}
		want := plainMean(models)
		for d := range want {
			if diff := math.Abs(resE.Global[d] - resS.Global[d]); diff > 2e-9 {
				led.violate(now, "shard-accuracy",
					fmt.Sprintf("%s: round %d global[%d] differs %.3g between elastic and static partitions",
						tag, round, d, diff))
				return
			}
			if math.Abs(resE.Global[d]-want[d]) > 1e-9 {
				led.violate(now, "sac-exactness",
					fmt.Sprintf("%s: round %d elastic global[%d] = %g, plaintext mean %g",
						tag, round, d, resE.Global[d], want[d]))
				return
			}
		}
	}
	rep.Stats.SACRounds += 2 * shardOracleRounds
}

// shardBoundary applies one round boundary's membership deltas to both
// mirrors — identical member sets, mirror-specific placement. The
// schedule is fixed by boundary index so every episode provably drives
// the split path (boundary 1) and the merge path (boundary 3):
//
//	boundary 1: grow burst — join peers until the elastic mirror's
//	            largest subgroup exceeds 2n−1 (forces a split)
//	boundary 3: shrink burst — drain the elastic mirror's smallest
//	            subgroup below n/2 (forces a merge), static floor
//	            permitting
//	otherwise:  one or two random joins/leaves
func shardBoundary(rep *Report, rng *rand.Rand, static, elastic *directory.Directory,
	n, round int, nextID uint64) uint64 {
	switch round {
	case 1:
		g := largestSubgroup(elastic)
		for len(elastic.Subgroup(g)) <= 2*n-1 {
			nextID = shardJoin(rep, rng, static, elastic, g, nextID)
		}
	case 3:
		g := smallestSubgroup(elastic, -1)
		for 2*len(elastic.Subgroup(g)) >= n {
			if !shardLeave(rep, rng, static, elastic, g) {
				break // no member removable under the static two-peer floor
			}
		}
	default:
		for i := 0; i < 1+rng.Intn(2); i++ {
			if rng.Intn(2) == 0 || !shardLeave(rep, rng, static, elastic, smallestSubgroup(elastic, -1)) {
				gs := elastic.Subgroups()
				nextID = shardJoin(rep, rng, static, elastic, gs[rng.Intn(len(gs))], nextID)
			}
		}
	}
	return nextID
}

// shardJoin registers a fresh peer in both mirrors: the elastic mirror
// at subgroup eg, the static mirror at a seed-chosen original subgroup.
func shardJoin(rep *Report, rng *rand.Rand, static, elastic *directory.Directory,
	eg int, nextID uint64) uint64 {
	addr := fmt.Sprintf("shard-%d", nextID)
	sg := rng.Intn(2)
	static.Apply(wire.DirectoryUpdate{
		Op: wire.DirJoin, ID: nextID, Subgroup: sg,
		ShareIndex: static.NextShareIndex(sg), Addr: addr,
	})
	elastic.Apply(wire.DirectoryUpdate{
		Op: wire.DirJoin, ID: nextID, Subgroup: eg,
		ShareIndex: elastic.NextShareIndex(eg), Addr: addr,
	})
	rep.Stats.Joins++
	return nextID + 1
}

// shardLeave removes one member of the elastic mirror's subgroup eg
// from both mirrors. The victim must leave at least two peers behind in
// its static subgroup (the static run never re-shards, so it cannot
// absorb a collapsed subgroup); the elastic side may drop below the
// merge threshold — that is the point.
func shardLeave(rep *Report, rng *rand.Rand, static, elastic *directory.Directory, eg int) bool {
	members := elastic.Subgroup(eg)
	start := rng.Intn(len(members))
	for i := 0; i < len(members); i++ {
		e := members[(start+i)%len(members)]
		se, ok := static.Lookup(e.ID)
		if !ok || len(static.Subgroup(se.Subgroup)) <= 2 {
			continue
		}
		static.Apply(wire.DirectoryUpdate{Op: wire.DirLeave, ID: e.ID})
		elastic.Apply(wire.DirectoryUpdate{Op: wire.DirLeave, ID: e.ID})
		rep.Stats.Departs++
		return true
	}
	return false
}

// rebalanceMirror drives the elastic mirror to its size-bound fixpoint:
// split any subgroup above 2n−1 (movers re-registered densely in a new
// subgroup, exactly the cluster's SplitSubgroup rule), merge any
// subgroup below n/2 into the smallest sibling at its lowest free
// slots (MergeSubgroup's rule).
func rebalanceMirror(rep *Report, led *ledger, now int64, tag string,
	dir *directory.Directory, n int) bool {
	for pass := 0; pass < shardOraclePasses; pass++ {
		if g := oversizedSubgroup(dir, n); g >= 0 {
			entries := dir.Subgroup(g)
			keep := (len(entries) + 1) / 2
			ng := dir.Subgroups()[len(dir.Subgroups())-1] + 1
			for i, e := range entries[keep:] {
				dir.Apply(wire.DirectoryUpdate{
					Op: wire.DirJoin, ID: e.ID, Subgroup: ng, ShareIndex: i, Addr: e.Addr,
				})
			}
			rep.Stats.Splits++
			continue
		}
		if g := undersizedSubgroup(dir, n); g >= 0 {
			target := smallestSubgroup(dir, g)
			for _, e := range dir.Subgroup(g) {
				dir.Apply(wire.DirectoryUpdate{
					Op: wire.DirJoin, ID: e.ID, Subgroup: target,
					ShareIndex: dir.NextShareIndex(target), Addr: e.Addr,
				})
			}
			rep.Stats.Merges++
			continue
		}
		return true
	}
	led.violate(now, "shard-balance",
		fmt.Sprintf("%s: rebalance did not converge in %d passes (sizes %v)",
			tag, shardOraclePasses, shardSizes(dir)))
	return false
}

// checkShardRound asserts the round-start invariants: size bounds on
// the elastic mirror, identical membership across mirrors, share-index
// soundness, and full share coverage for both geometries.
func checkShardRound(led *ledger, now int64, tag string, round int,
	static, elastic *directory.Directory, n int) bool {
	gs := elastic.Subgroups()
	for _, g := range gs {
		size := len(elastic.Subgroup(g))
		if size > 2*n-1 {
			led.violate(now, "shard-balance",
				fmt.Sprintf("%s: round %d subgroup %d holds %d > 2n−1 = %d members", tag, round, g, size, 2*n-1))
			return false
		}
		if 2*size < n && len(gs) > 1 {
			led.violate(now, "shard-balance",
				fmt.Sprintf("%s: round %d subgroup %d holds %d < n/2 members unmerged", tag, round, g, size))
			return false
		}
	}
	if static.Len() != elastic.Len() {
		led.violate(now, "shard-accuracy",
			fmt.Sprintf("%s: round %d mirrors diverged: %d static vs %d elastic members",
				tag, round, static.Len(), elastic.Len()))
		return false
	}
	for _, e := range elastic.Members() {
		if _, ok := static.Lookup(e.ID); !ok {
			led.violate(now, "shard-accuracy",
				fmt.Sprintf("%s: round %d peer %d exists only in the elastic mirror", tag, round, e.ID))
			return false
		}
	}
	for _, d := range []*directory.Directory{static, elastic} {
		for _, g := range d.Subgroups() {
			if !d.ShareIndexesSound(g) {
				led.violate(now, "share-index-soundness",
					fmt.Sprintf("%s: round %d subgroup %d holds duplicate share indices", tag, round, g))
				return false
			}
		}
		sizes := shardSizes(d)
		k := kFor(sizes)
		for g, size := range sizes {
			alive := make([]int, size)
			for i := range alive {
				alive[i] = i
			}
			if covered, err := secretshare.CoversAllShares(alive, size, k[g]); err != nil || !covered {
				led.violate(now, "share-index-soundness",
					fmt.Sprintf("%s: round %d subgroup %d (n=%d k=%d) does not cover all shares (err=%v)",
						tag, round, g, size, k[g], err))
				return false
			}
		}
	}
	return true
}

// shardSizes reads the nonempty subgroup sizes off the mirror in
// ascending subgroup order — the geometry handed to core.Reconfigure.
func shardSizes(dir *directory.Directory) []int {
	gs := dir.Subgroups()
	out := make([]int, len(gs))
	for i, g := range gs {
		out[i] = len(dir.Subgroup(g))
	}
	return out
}

// oversizedSubgroup returns the lowest subgroup above the split
// threshold 2n−1, or −1.
func oversizedSubgroup(dir *directory.Directory, n int) int {
	for _, g := range dir.Subgroups() {
		if len(dir.Subgroup(g)) > 2*n-1 {
			return g
		}
	}
	return -1
}

// undersizedSubgroup returns the lowest subgroup below the merge
// threshold n/2 that has a sibling to merge into, or −1.
func undersizedSubgroup(dir *directory.Directory, n int) int {
	gs := dir.Subgroups()
	if len(gs) < 2 {
		return -1
	}
	for _, g := range gs {
		if 2*len(dir.Subgroup(g)) < n {
			return g
		}
	}
	return -1
}

// smallestSubgroup returns the nonempty subgroup with the fewest
// members (lowest index ties), skipping subgroup `except`.
func smallestSubgroup(dir *directory.Directory, except int) int {
	best, bestSize := -1, 0
	for _, g := range dir.Subgroups() {
		if g == except {
			continue
		}
		if size := len(dir.Subgroup(g)); best < 0 || size < bestSize {
			best, bestSize = g, size
		}
	}
	return best
}

// largestSubgroup returns the subgroup with the most members (lowest
// index ties; Subgroups is ascending).
func largestSubgroup(dir *directory.Directory) int {
	gs := dir.Subgroups()
	best, bestSize := gs[0], len(dir.Subgroup(gs[0]))
	for _, g := range gs[1:] {
		if size := len(dir.Subgroup(g)); size > bestSize {
			best, bestSize = g, size
		}
	}
	return best
}
