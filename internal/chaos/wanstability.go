package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/health"
	"repro/internal/raft"
	"repro/internal/simnet"
	"repro/internal/telemetry"
)

// WAN stability track: a single Raft group on a multi-region latency
// topology (internal/simnet.Topology), driven to steady state and then
// through a leader kill, with a dedicated wan-stability invariant:
//
//	wan-stability   at steady state on a healthy WAN, no live node ever
//	                campaigns (enters Candidate) and no term advances
//	                past the steady baseline — every election would be
//	                spurious, caused by jitter alone
//
// plus a bounded-failover liveness check after the leader kill. The
// point of the track is the contrast the acceptance test pins: with the
// paper-default 50-tick timeouts the 50 ms topology's lognormal jitter
// tail fires spurious elections, while pre-vote + check-quorum +
// RTT-tuned timeouts (StabilityOptions.PreVote/CheckQuorum/AutoTune)
// keep the same 20 seeds perfectly quiet.

// StabilityOptions parameterizes one WAN stability run. The zero value
// of every optional field has a default (see normalize); Seed alone
// defines the run for a given configuration.
type StabilityOptions struct {
	// Seed drives every rng in the run.
	Seed int64 `json:"seed"`
	// Nodes is the raft group size (default 5).
	Nodes int `json:"nodes,omitempty"`
	// Topology names a simnet preset (default "wan50").
	Topology string `json:"topology,omitempty"`

	// PreVote / CheckQuorum / LeaderLease arm the corresponding raft
	// Config flags on every node.
	PreVote     bool `json:"pre_vote,omitempty"`
	CheckQuorum bool `json:"check_quorum,omitempty"`
	LeaderLease bool `json:"leader_lease,omitempty"`
	// AutoTune arms the health→raft feedback loop: per-node RTT stats
	// fed from delivery observations, retuning election timeouts every
	// RetuneEveryUs (health.Tuning with its defaults: 10× the p99 RTT,
	// clamped to [50, 5000] ticks).
	AutoTune bool `json:"auto_tune,omitempty"`

	// ElectionTickMin/Max and HeartbeatTick are the *initial* raft
	// timeouts (defaults 50/100/15, the paper's LAN setting — exactly
	// what misfires on a WAN until AutoTune lifts it).
	ElectionTickMin int `json:"election_tick_min,omitempty"`
	ElectionTickMax int `json:"election_tick_max,omitempty"`
	HeartbeatTick   int `json:"heartbeat_tick,omitempty"`

	// WarmupUs runs before the steady-state window opens: leader
	// election, tuner sample collection and retuning all happen here
	// (default 10 s virtual).
	WarmupUs int64 `json:"warmup_us,omitempty"`
	// SteadyUs is the monitored steady-state window (default 30 s).
	SteadyUs int64 `json:"steady_us,omitempty"`
	// RetuneEveryUs is the AutoTune cadence (default 500 ms).
	RetuneEveryUs int64 `json:"retune_every_us,omitempty"`
	// FailoverBoundTicks bounds leader-kill failover. 0 derives the
	// stated bound 3×ElectionTickMax′ + 2000, where ElectionTickMax′ is
	// the largest (possibly retuned) max timeout across survivors at
	// kill time: detection needs at most one full max timeout, and two
	// more cover a split first round plus commit of the no-op.
	FailoverBoundTicks int `json:"failover_bound_ticks,omitempty"`

	// Telemetry, when non-nil, is threaded into every node with its
	// clock pinned to virtual time (equal seeds ⇒ byte-identical
	// snapshots).
	Telemetry *telemetry.Registry `json:"-"`
}

func (o StabilityOptions) normalize() StabilityOptions {
	if o.Nodes <= 0 {
		o.Nodes = 5
	}
	if o.Topology == "" {
		o.Topology = "wan50"
	}
	if o.ElectionTickMin <= 0 {
		o.ElectionTickMin = 50
	}
	if o.ElectionTickMax <= o.ElectionTickMin {
		o.ElectionTickMax = 2 * o.ElectionTickMin
	}
	if o.HeartbeatTick <= 0 {
		o.HeartbeatTick = 15
	}
	if o.WarmupUs <= 0 {
		o.WarmupUs = int64(10 * simnet.Second)
	}
	if o.SteadyUs <= 0 {
		o.SteadyUs = int64(30 * simnet.Second)
	}
	if o.RetuneEveryUs <= 0 {
		o.RetuneEveryUs = int64(500 * simnet.Millisecond)
	}
	return o
}

// StabilityReport is the outcome of one WAN stability run.
type StabilityReport struct {
	Options  StabilityOptions `json:"options"`
	Topology string           `json:"topology"`

	// SpuriousElections counts live nodes entering Candidate during the
	// steady window — on a healthy network every one of them is jitter-
	// induced disruption. Pre-vote probes (PreCandidate) are not
	// counted: probing without bumping terms is exactly the designed
	// non-disruptive behavior.
	SpuriousElections int `json:"spurious_elections"`
	// BaselineTerm / FinalSteadyTerm bracket the steady window; any
	// advance is a (possibly silent) election.
	BaselineTerm    uint64 `json:"baseline_term"`
	FinalSteadyTerm uint64 `json:"final_steady_term"`

	// FailoverTicks is how many ticks (virtual ms) the group needed to
	// elect a replacement after the leader kill; FailoverBound is the
	// bound it was held to.
	FailoverTicks int `json:"failover_ticks"`
	FailoverBound int `json:"failover_bound"`

	// TunedBands records each surviving node's final [min,max) election
	// band — stock (50,100) unless AutoTune retuned it.
	TunedBands map[uint64][2]int `json:"tuned_bands"`

	Violations []Violation `json:"violations"`
}

// Passed reports whether every invariant held.
func (r *StabilityReport) Passed() bool { return len(r.Violations) == 0 }

// NewWANStabilityChecker builds the wan-stability invariant over a
// steady-state baseline: no live node may be campaigning (Candidate)
// and no live node's term may exceed baselineTerm. It is exported as a
// Checker so chaos campaigns can attach it via ExtraCheckers too.
func NewWANStabilityChecker(baselineTerm uint64) Checker {
	return NewChecker("wan-stability", func(v View) []string {
		var out []string
		for _, n := range v.Nodes {
			if n.Down {
				continue
			}
			if n.State == raft.Candidate {
				out = append(out, fmt.Sprintf("node %d campaigning (term %d) at steady state", n.ID, n.Term))
			}
			if n.Term > baselineTerm {
				out = append(out, fmt.Sprintf("node %d term %d advanced past steady baseline %d", n.ID, n.Term, baselineTerm))
			}
		}
		return out
	})
}

// wanWorld is the minimal single-group world the stability run drives.
type wanWorld struct {
	o    StabilityOptions
	sim  *simnet.Sim
	g    *simnet.Group
	topo *simnet.Topology
	rtt  map[uint64]*health.RTTStats
	rep  *StabilityReport
}

func (w *wanWorld) view() View {
	v := View{NowUs: int64(w.sim.Now())}
	for _, id := range w.g.IDs() {
		h := w.g.Host(id)
		v.Nodes = append(v.Nodes, NodeView{
			ID:        id,
			Group:     "wan",
			Down:      h.Down(),
			State:     h.Node.State(),
			Term:      h.Node.Term(),
			Leader:    h.Node.Leader(),
			Commit:    h.Node.CommitIndex(),
			LastIndex: h.Node.LastIndex(),
		})
	}
	return v
}

func (w *wanWorld) violate(detail string) {
	w.rep.Violations = append(w.rep.Violations, Violation{
		AtUs: int64(w.sim.Now()), Invariant: "wan-stability", Detail: detail,
	})
}

// maxTerm returns the highest term across live nodes.
func (w *wanWorld) maxTerm() uint64 {
	var max uint64
	for _, id := range w.g.IDs() {
		if h := w.g.Host(id); !h.Down() && h.Node.Term() > max {
			max = h.Node.Term()
		}
	}
	return max
}

// retune applies the health tuning loop to every live node, in sorted
// id order for deterministic replay.
func (w *wanWorld) retune(tuning health.Tuning) {
	ids := w.g.IDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		h := w.g.Host(id)
		if h.Down() {
			continue
		}
		if min, max, ok := tuning.ElectionTicks(w.rtt[id]); ok {
			_ = h.Node.SetElectionTicks(min, max) // bounds are pre-validated by Tuning
		}
	}
}

// RunWANStability executes one WAN stability run: bootstrap and warmup
// on the named topology, a monitored steady-state window, then a leader
// kill with bounded failover. Deterministic per (options, seed).
func RunWANStability(o StabilityOptions) (*StabilityReport, error) {
	o = o.normalize()
	topo, err := simnet.Preset(o.Topology)
	if err != nil {
		return nil, err
	}
	rep := &StabilityReport{Options: o, Topology: topo.Name, TunedBands: map[uint64][2]int{}}
	w := &wanWorld{
		o:    o,
		sim:  simnet.New(),
		topo: topo,
		rtt:  make(map[uint64]*health.RTTStats),
		rep:  rep,
	}
	o.Telemetry.SetClock(func() int64 { return int64(w.sim.Now()) })
	w.g = simnet.NewGroup(w.sim, "wan", 0, rand.New(rand.NewSource(o.Seed^0x3a41c0de)))
	w.g.Topo = topo

	peers := make([]uint64, o.Nodes)
	for i := range peers {
		peers[i] = uint64(i + 1)
	}
	steadyOpen := false
	for _, id := range peers {
		id := id
		w.rtt[id] = health.NewRTTStats(0)
		node, err := raft.NewNode(raft.Config{
			ID:              id,
			Peers:           peers,
			ElectionTickMin: o.ElectionTickMin,
			ElectionTickMax: o.ElectionTickMax,
			HeartbeatTick:   o.HeartbeatTick,
			Rng:             rand.New(rand.NewSource(o.Seed ^ (int64(id) * 0x9e3779b9))),
			PreVote:         o.PreVote,
			CheckQuorum:     o.CheckQuorum,
			LeaderLease:     o.LeaderLease,
			Telemetry:       o.Telemetry,
		})
		if err != nil {
			return nil, err
		}
		h, err := w.g.Add(node)
		if err != nil {
			return nil, err
		}
		h.OnStateChange = func(state raft.State, term, leader uint64) {
			if steadyOpen && state == raft.Candidate {
				rep.SpuriousElections++
			}
		}
	}
	// Every delivered message is an RTT observation for its receiver:
	// the one-way delay doubled approximates the round trip on these
	// near-symmetric links, which is all the ×10 tuning rule needs.
	w.g.OnDeliver = func(m raft.Message, oneWay simnet.Duration) {
		if st, ok := w.rtt[m.To]; ok {
			st.Observe(m.From, 2*int64(oneWay))
		}
	}

	tuning := health.Tuning{TickUs: int64(w.g.TickInterval)}
	if o.AutoTune {
		var loop func()
		loop = func() {
			w.retune(tuning)
			w.sim.Schedule(simnet.Duration(o.RetuneEveryUs), loop)
		}
		w.sim.Schedule(simnet.Duration(o.RetuneEveryUs), loop)
	}

	// Bootstrap: a leader must emerge within the warmup window.
	warmupEnd := w.sim.Now() + simnet.Time(o.WarmupUs)
	if !w.sim.RunWhileNot(func() bool { return w.g.Leader() != raft.None }, warmupEnd) {
		w.violate("no leader elected during warmup")
		return rep, nil
	}
	w.sim.RunUntil(warmupEnd)
	if w.g.Leader() == raft.None {
		w.violate("no leader at end of warmup")
		return rep, nil
	}

	// Steady state: the wan-stability invariant sweeps the group while
	// nothing is wrong with the network — any election is spurious.
	rep.BaselineTerm = w.maxTerm()
	checker := NewWANStabilityChecker(rep.BaselineTerm)
	steadyOpen = true
	steadyEnd := w.sim.Now() + simnet.Time(o.SteadyUs)
	var sweep func()
	sweep = func() {
		if w.sim.Now() >= steadyEnd {
			return
		}
		for _, d := range checker.Check(w.view()) {
			w.rep.Violations = append(w.rep.Violations, Violation{
				AtUs: int64(w.sim.Now()), Invariant: checker.Name(), Detail: d,
			})
		}
		w.sim.Schedule(sweepEvery, sweep)
	}
	w.sim.Schedule(sweepEvery, sweep)
	w.sim.RunUntil(steadyEnd)
	steadyOpen = false
	rep.FinalSteadyTerm = w.maxTerm()
	if rep.SpuriousElections > 0 {
		w.violate(fmt.Sprintf("%d spurious election(s) during the steady window", rep.SpuriousElections))
	}

	// Leader kill: the survivors must elect a replacement within the
	// stated bound.
	leader := w.g.Leader()
	if leader == raft.None {
		w.violate("no leader at end of steady window")
		return rep, nil
	}
	bound := o.FailoverBoundTicks
	if bound <= 0 {
		worstMax := 0
		for _, id := range w.g.IDs() {
			if id == leader {
				continue
			}
			if _, max := w.g.Host(id).Node.ElectionTicks(); max > worstMax {
				worstMax = max
			}
		}
		bound = 3*worstMax + 2000
	}
	rep.FailoverBound = bound
	w.g.Host(leader).Crash()
	killAt := w.sim.Now()
	deadline := killAt + simnet.Time(bound)*simnet.Time(simnet.Millisecond)
	elected := func() bool {
		id := w.g.Leader()
		return id != raft.None && id != leader
	}
	if !w.sim.RunWhileNot(elected, deadline) {
		w.violate(fmt.Sprintf("no replacement leader within %d ticks of leader kill", bound))
	}
	rep.FailoverTicks = int(simnet.Duration(w.sim.Now()-killAt) / simnet.Millisecond)

	for _, id := range w.g.IDs() {
		if h := w.g.Host(id); !h.Down() {
			min, max := h.Node.ElectionTicks()
			rep.TunedBands[id] = [2]int{min, max}
		}
	}
	return rep, nil
}
