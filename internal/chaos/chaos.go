// Package chaos is a deterministic, seed-replayable fault-campaign
// engine for the protocols in this repository. A Campaign expands a seed
// into a randomized schedule of crashes, restarts, leader kills,
// partitions, message black-holes, loss and delay bursts, executes it
// against the virtual-clock simulator (internal/simnet) while a set of
// invariant checkers watch every transition, and renders a verdict:
//
//	Raft election safety    at most one leader per term, per group
//	Log matching            same (index, term) ⇒ same entry, everywhere
//	Commit safety           a committed index never changes content
//	Commit monotonicity     a node's commit index never regresses
//	State-machine agreement replicated kvstores converge to equal state
//	SAC exactness           recovered k-out-of-n sums equal the plaintext
//	                        sum whenever ≥ k shares survive
//	SAC privacy             no single peer observes all n shares of
//	                        another peer's model (k ≥ 2)
//	Liveness                after the schedule quiesces, a leader emerges
//	                        and a round/entry commits within a bound
//	Health accuracy         no failure detector declares a peer Down
//	                        whose messages were delivered within the
//	                        silence threshold (Campaign.Detector)
//	Health re-convergence   after the last fault lifts, every live
//	                        detector returns to all-Up verdicts about
//	                        live peers within a bound
//
// The Byzantine adversary track (Campaign.Byzantine, see byzantine.go)
// adds four more, checked against seed-derived adversary plans with
// f = 1 < n/3 marked peers per subgroup:
//
//	Byzantine robustness    guarded aggregation stays within a fixed
//	                        tolerance of the equal-seed clean baseline
//	Byzantine detection     forged shares are excluded, lying subtotal
//	                        copies are counted as mismatches, honest
//	                        peers are never falsely flagged
//	Equivocation detection  a leader announcing divergent results is
//	                        convicted by the audit; its subgroup is
//	                        dropped from the round
//	Coalition privacy       the adversary coalition never observes all
//	                        n share indices of an honest peer's model
//	Sharpness               the same campaign re-run under plain-mean
//	                        (unguarded) aggregation must violate the
//	                        tolerance — proof the checkers can fail
//
// The continuous-churn track (ActChurn actions on TargetTwoLayer plus
// Campaign.Churn oracle episodes, see churnoracle.go) adds three more:
//
//	Directory convergence   after quiesce, every live FedAvg-layer
//	                        directory replica holds identical state and
//	                        it matches the admitted membership exactly
//	Share-index soundness   membership changes never assign duplicate
//	                        share indices within a subgroup, and each
//	                        round's k-of-n geometry covers all shares
//	Churn accuracy          training curves under mid-training
//	                        join/leave stay within a fixed tolerance of
//	                        the equal-seed fixed-membership baseline
//
// Everything is derived from Campaign.Seed through dedicated rand
// streams and runs on one goroutine under virtual time, so the same seed
// always produces the identical schedule, the identical execution and
// the identical verdict — a red run is reproduced exactly by replaying
// its schedule (see WriteReplay/LoadReplay), and Minimize shrinks a
// failing schedule to a near-minimal one by bisection.
package chaos

import (
	"fmt"
	"math/rand"

	"repro/internal/simnet"
	"repro/internal/telemetry"
)

// Target selects the system a campaign drives.
type Target string

// Campaign targets.
const (
	// TargetRaftKV drives one raft group replicating a key-value store —
	// the sharpest lens on the consensus substrate's safety properties.
	TargetRaftKV Target = "raft-kv"
	// TargetTwoLayer drives the paper's two-layer Raft (internal/cluster)
	// and finishes with a full two-layer SAC aggregation round using the
	// leaders the chaos left behind.
	TargetTwoLayer Target = "two-layer"
)

// ActionKind enumerates fault types.
type ActionKind string

// Fault kinds. Each action is self-contained so schedules can be
// reordered and subsets re-executed by the minimizer.
const (
	// ActCrash fail-stops one live node.
	ActCrash ActionKind = "crash"
	// ActRestart revives one crashed node from its persisted state.
	ActRestart ActionKind = "restart"
	// ActLeaderKill fail-stops whichever node currently leads.
	ActLeaderKill ActionKind = "leader-kill"
	// ActPartition splits the network into two sides.
	ActPartition ActionKind = "partition"
	// ActBlackhole silently drops all messages sent by one node.
	ActBlackhole ActionKind = "blackhole"
	// ActLoss sets a uniform message-loss probability.
	ActLoss ActionKind = "loss"
	// ActDelay sets a uniform message-delay jitter bound.
	ActDelay ActionKind = "delay"
	// ActHeal removes all network faults (partitions, black-holes, loss,
	// delay). Crashed nodes stay crashed until ActRestart.
	ActHeal ActionKind = "heal"
	// ActFlap flaps one node's outbound links: its messages are black-
	// holed and released in several short cycles. Flapping is the
	// sharpest test of a failure detector — each dark window can exceed
	// the silence threshold (a true Down), and each recovery must be
	// observed as such, never condemned retroactively.
	ActFlap ActionKind = "flap"
	// ActByzantine marks one peer of the targeted subgroup as an active
	// adversary (Action.Behavior selects the attack, see sac.Behavior).
	// The mark persists for the campaign: the post-quiesce aggregation
	// round runs the marked peers' attacks against the robust (guarded,
	// median-combined) protocol. At most one peer per subgroup turns —
	// the guard's honest-majority precondition with 3-way replication —
	// and only subgroups of ≥ 4 peers can host one (f < n/3).
	ActByzantine ActionKind = "byzantine"
	// ActChurn fires one continuous-churn control-plane operation on the
	// targeted subgroup: Rank selects between admitting a brand-new peer
	// (cluster.AddPeer), gracefully departing a member (DepartPeer, with
	// model handoff and directory leave) and a same-identity handoff
	// (ReplacePeer: persisted raft state + model transferred to a
	// successor process). Two-layer target only; a no-op on raft-kv.
	ActChurn ActionKind = "churn"
)

// Action is one scheduled fault. Node-targeting actions carry a rank, not
// an ID: the executor resolves `Rank mod len(candidates)` against the
// sorted candidate set (live nodes for a crash, down nodes for a restart)
// at execution time, so an action generated without knowledge of the
// future state is always meaningful and the whole schedule stays
// deterministic under minimization.
type Action struct {
	// Step orders the action; it executes at (Step+1)·StepEvery.
	Step int `json:"step"`
	// Kind is the fault type.
	Kind ActionKind `json:"kind"`
	// Rank selects the target node among the sorted candidates.
	Rank int `json:"rank,omitempty"`
	// Side is a bitmask over sorted node positions choosing partition
	// membership (bit i set ⇒ node i on side A).
	Side uint64 `json:"side,omitempty"`
	// Rate is the loss probability for ActLoss.
	Rate float64 `json:"rate,omitempty"`
	// DelayUs is the jitter bound in virtual microseconds for ActDelay.
	DelayUs int64 `json:"delay_us,omitempty"`
	// Group selects the sub-network on TargetTwoLayer: 0..m−1 is a
	// subgroup, m is the FedAvg layer. Ignored by TargetRaftKV.
	Group int `json:"group,omitempty"`
	// Behavior is the adversarial strategy for ActByzantine (a
	// sac.Behavior string; empty defaults to inflate-subtotal).
	Behavior string `json:"behavior,omitempty"`
}

// FaultMix weights the fault kinds during schedule generation. Zero
// weights exclude a kind; the zero value of the whole struct falls back
// to DefaultMix.
type FaultMix struct {
	Crash      int `json:"crash"`
	Restart    int `json:"restart"`
	LeaderKill int `json:"leader_kill"`
	Partition  int `json:"partition"`
	Blackhole  int `json:"blackhole"`
	Loss       int `json:"loss"`
	Delay      int `json:"delay"`
	Heal       int `json:"heal"`
	Flap       int `json:"flap,omitempty"`
	Byzantine  int `json:"byzantine,omitempty"`
	Churn      int `json:"churn,omitempty"`
}

// DefaultMix is a balanced fault mix.
var DefaultMix = FaultMix{Crash: 3, Restart: 3, LeaderKill: 2, Partition: 2, Blackhole: 1, Loss: 1, Delay: 1, Heal: 3}

// CrashHeavyMix emphasizes fail-stop faults.
var CrashHeavyMix = FaultMix{Crash: 5, Restart: 5, LeaderKill: 3, Heal: 1}

// PartitionHeavyMix emphasizes network faults.
var PartitionHeavyMix = FaultMix{Partition: 5, Blackhole: 2, Loss: 2, Delay: 2, Heal: 4, Crash: 1, Restart: 1}

// FlappingMix emphasizes flapping links, slow peers and leader kill
// storms — the failure-detector stress profile.
var FlappingMix = FaultMix{Flap: 5, Delay: 3, LeaderKill: 3, Loss: 2, Heal: 2, Crash: 1, Restart: 2}

// ByzantineMix mixes adversarial peers with the crash/heal vocabulary —
// the robust-aggregation stress profile.
var ByzantineMix = FaultMix{Byzantine: 5, Crash: 2, Restart: 3, LeaderKill: 2, Partition: 1, Heal: 3}

// ChurnMix mixes continuous membership churn (joins, graceful
// departures, same-identity handoffs) with crashes and leader kills —
// the control-plane stress profile.
var ChurnMix = FaultMix{Churn: 5, Crash: 2, Restart: 3, LeaderKill: 2, Heal: 3}

func (m FaultMix) total() int {
	return m.Crash + m.Restart + m.LeaderKill + m.Partition + m.Blackhole + m.Loss + m.Delay + m.Heal + m.Flap + m.Byzantine + m.Churn
}

// pick maps a roll in [0, total) to a kind.
func (m FaultMix) pick(roll int) ActionKind {
	for _, kw := range []struct {
		k ActionKind
		w int
	}{
		{ActCrash, m.Crash}, {ActRestart, m.Restart}, {ActLeaderKill, m.LeaderKill},
		{ActPartition, m.Partition}, {ActBlackhole, m.Blackhole},
		{ActLoss, m.Loss}, {ActDelay, m.Delay}, {ActHeal, m.Heal},
		// Appended last so legacy mixes keep their roll mapping.
		{ActFlap, m.Flap}, {ActByzantine, m.Byzantine}, {ActChurn, m.Churn},
	} {
		if roll < kw.w {
			return kw.k
		}
		roll -= kw.w
	}
	return ActHeal // unreachable for roll < total()
}

// Campaign parameterizes one fault campaign. The zero value of every
// optional field has a sensible default (see normalize); Seed alone
// defines the schedule for a given configuration.
type Campaign struct {
	// Seed drives schedule generation and every rng in the world.
	Seed int64 `json:"seed"`
	// Steps is the number of fault actions in the schedule.
	Steps int `json:"steps"`
	// Mix weights the fault kinds (zero value: DefaultMix).
	Mix FaultMix `json:"mix"`
	// Target selects the driven system (default TargetRaftKV).
	Target Target `json:"target"`

	// Nodes is the raft group size for TargetRaftKV (default 5).
	Nodes int `json:"nodes,omitempty"`
	// Subgroups × SubgroupSize shape TargetTwoLayer (default 3×3).
	Subgroups    int `json:"subgroups,omitempty"`
	SubgroupSize int `json:"subgroup_size,omitempty"`

	// ElectionTickMin/Max and HeartbeatTick parameterize raft (defaults
	// 50/100/15 — the paper's smallest healthy setting).
	ElectionTickMin int `json:"election_tick_min,omitempty"`
	ElectionTickMax int `json:"election_tick_max,omitempty"`
	HeartbeatTick   int `json:"heartbeat_tick,omitempty"`
	// LatencyUs is the one-way link latency in virtual microseconds
	// (default 15 ms, as in the paper).
	LatencyUs int64 `json:"latency_us,omitempty"`
	// Topology, when non-empty, names a simnet latency preset ("lan15",
	// "wan50", "wan200") that replaces the uniform LatencyUs delay on
	// every raft network with a multi-region delay matrix plus jitter.
	// Serialized into replay files: a WAN campaign replays as one.
	Topology string `json:"topology,omitempty"`
	// PreVote/CheckQuorum arm the raft WAN-stability flags on every node
	// in the campaign (default off — stock paper behavior).
	PreVote     bool `json:"pre_vote,omitempty"`
	CheckQuorum bool `json:"check_quorum,omitempty"`

	// StepEveryUs spaces fault actions (default 200 ms virtual).
	StepEveryUs int64 `json:"step_every_us,omitempty"`
	// QuiesceTimeoutUs bounds the post-schedule liveness wait (default
	// 60 s virtual).
	QuiesceTimeoutUs int64 `json:"quiesce_timeout_us,omitempty"`
	// SACRounds is the number of SAC exactness/privacy oracle rounds run
	// per campaign (default 3; negative disables).
	SACRounds int `json:"sac_rounds,omitempty"`
	// Byzantine arms the Byzantine adversary track: ByzantineRounds
	// oracle rounds pitting seed-derived adversary plans against the
	// robust (guarded) aggregation, with convergence, detection,
	// coalition-privacy and sharpness invariants (see byzantine.go). It
	// also raises the default SubgroupSize to 4 so f = 1 < n/3 marks
	// are possible on the two-layer target.
	Byzantine bool `json:"byzantine,omitempty"`
	// ByzantineRounds is the number of Byzantine oracle rounds (default
	// 2 when Byzantine is set; negative disables).
	ByzantineRounds int `json:"byzantine_rounds,omitempty"`
	// Churn arms the continuous-churn oracle track: ChurnRounds episodes
	// of mid-training membership change driven through the
	// round-boundary reconfiguration path against a directory mirror,
	// with share-index-soundness and churn-accuracy invariants (see
	// churnoracle.go). ActChurn actions in the schedule exercise the
	// live control plane on TargetTwoLayer independently of this flag.
	Churn bool `json:"churn,omitempty"`
	// ChurnRounds is the number of churn oracle episodes (default 3 when
	// Churn is set; negative disables).
	ChurnRounds int `json:"churn_rounds,omitempty"`
	// Shard arms the elastic-sharding oracle track: ShardRounds episodes
	// of equal-seed split-vs-static aggregation against a directory
	// mirror that splits oversized subgroups and merges undersized ones
	// at round boundaries, with shard-balance, share-index-soundness and
	// shard-accuracy invariants (see shardoracle.go).
	Shard bool `json:"shard,omitempty"`
	// ShardRounds is the number of shard oracle episodes (default 3 when
	// Shard is set; negative disables).
	ShardRounds int `json:"shard_rounds,omitempty"`

	// Detector enables the self-healing layer on TargetTwoLayer
	// (cluster.Options.Detector) and arms two extra invariant checkers:
	//
	//	health-false-down      no detector may declare a peer Down whose
	//	                       messages were delivered within threshold
	//	                       (checked against the cluster's shadow
	//	                       delivery ledger, an independent data path)
	//	health-reconvergence   after the last fault lifts, every live
	//	                       detector returns to all-Up verdicts about
	//	                       live peers within ReconvergeBoundUs
	Detector bool `json:"detector,omitempty"`
	// ReconvergeBoundUs bounds detector re-convergence after quiesce
	// begins (default 30 s virtual).
	ReconvergeBoundUs int64 `json:"reconverge_bound_us,omitempty"`

	// ExtraCheckers run at every check interval and at quiesce on top of
	// the built-in invariants. Not serialized into replay files — a test
	// that injects a checker re-attaches it after LoadReplay.
	ExtraCheckers []Checker `json:"-"`

	// Telemetry, when non-nil, is threaded into every raft node, the
	// two-layer cluster, and the SAC rounds the campaign runs, with its
	// clock pinned to the campaign's virtual time — so identical seeds
	// yield byte-identical snapshots. Like ExtraCheckers it is code, not
	// schedule, and is not serialized into replay files.
	Telemetry *telemetry.Registry `json:"-"`
}

func (c Campaign) normalize() Campaign {
	if c.Steps <= 0 {
		c.Steps = 20
	}
	if c.Mix.total() <= 0 {
		c.Mix = DefaultMix
	}
	if c.Target == "" {
		c.Target = TargetRaftKV
	}
	if c.Nodes <= 0 {
		c.Nodes = 5
	}
	if c.Subgroups <= 0 {
		c.Subgroups = 3
	}
	if c.SubgroupSize <= 0 {
		c.SubgroupSize = 3
		if c.Byzantine {
			c.SubgroupSize = 4 // room for f = 1 < n/3 adversaries
		}
	}
	if c.ElectionTickMin <= 0 {
		c.ElectionTickMin = 50
	}
	if c.ElectionTickMax <= c.ElectionTickMin {
		c.ElectionTickMax = 2 * c.ElectionTickMin
	}
	if c.HeartbeatTick <= 0 {
		c.HeartbeatTick = c.ElectionTickMin / 3
		if c.HeartbeatTick < 1 {
			c.HeartbeatTick = 1
		}
	}
	if c.LatencyUs <= 0 {
		c.LatencyUs = int64(15 * simnet.Millisecond)
	}
	if c.StepEveryUs <= 0 {
		c.StepEveryUs = int64(200 * simnet.Millisecond)
	}
	if c.QuiesceTimeoutUs <= 0 {
		c.QuiesceTimeoutUs = int64(60 * simnet.Second)
	}
	if c.SACRounds == 0 {
		c.SACRounds = 3
	}
	if c.Byzantine && c.ByzantineRounds == 0 {
		c.ByzantineRounds = 2
	}
	if c.Churn && c.ChurnRounds == 0 {
		c.ChurnRounds = 3
	}
	if c.Shard && c.ShardRounds == 0 {
		c.ShardRounds = 3
	}
	if c.ReconvergeBoundUs <= 0 {
		c.ReconvergeBoundUs = int64(30 * simnet.Second)
	}
	return c
}

// Generate expands the campaign seed into its fault schedule. The
// expansion is a pure function of the (normalized) campaign, so equal
// campaigns always produce equal schedules.
func (c Campaign) Generate() []Action {
	c = c.normalize()
	rng := rand.New(rand.NewSource(c.Seed*7919 + 13))
	total := c.Mix.total()
	actions := make([]Action, 0, c.Steps)
	groups := 1
	if c.Target == TargetTwoLayer {
		groups = c.Subgroups + 1 // m subgroups + the FedAvg layer
	}
	for i := 0; i < c.Steps; i++ {
		a := Action{Step: i, Kind: c.Mix.pick(rng.Intn(total)), Group: rng.Intn(groups)}
		switch a.Kind {
		case ActCrash, ActRestart, ActLeaderKill, ActBlackhole, ActFlap, ActChurn:
			a.Rank = rng.Intn(1 << 16)
		case ActByzantine:
			a.Rank = rng.Intn(1 << 16)
			a.Behavior = string(scheduleBehaviors[rng.Intn(len(scheduleBehaviors))])
		case ActPartition:
			// Random non-trivial bitmask; the executor discards degenerate
			// sides, so any value is acceptable here.
			a.Side = uint64(rng.Int63())
		case ActLoss:
			a.Rate = 0.05 + 0.25*rng.Float64()
		case ActDelay:
			a.DelayUs = int64(simnet.Millisecond) * int64(1+rng.Intn(20))
		}
		actions = append(actions, a)
	}
	return actions
}

// Violation is one invariant breach observed during execution.
type Violation struct {
	// AtUs is the virtual time of the observation in microseconds.
	AtUs int64 `json:"at_us"`
	// Invariant names the breached checker.
	Invariant string `json:"invariant"`
	// Detail is a human-readable description.
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("[%8.1fms] %s: %s", float64(v.AtUs)/1000, v.Invariant, v.Detail)
}

// Stats summarizes what a campaign actually exercised — a schedule in
// which every action was a no-op proves nothing, so the counts are part
// of the report.
type Stats struct {
	Crashes        int   `json:"crashes"`
	Restarts       int   `json:"restarts"`
	Partitions     int   `json:"partitions"`
	NetFaults      int   `json:"net_faults"` // blackhole + loss + delay
	Heals          int   `json:"heals"`
	Flaps          int   `json:"flaps,omitempty"`
	LeaderChanges  int   `json:"leader_changes"`
	Commits        int   `json:"commits"`
	SACRounds      int   `json:"sac_rounds"`
	FinalVirtualMs int64 `json:"final_virtual_ms"`
	// Byzantines counts adversary marks deployed; ByzantineDetections
	// counts guard detections (exclusions, mismatching subtotal copies,
	// equivocation convictions) attributed to them.
	Byzantines          int `json:"byzantines,omitempty"`
	ByzantineDetections int `json:"byzantine_detections,omitempty"`
	// Joins/Departs/Handoffs count completed continuous-churn control-
	// plane operations (ActChurn actions plus churn oracle events).
	Joins    int `json:"joins,omitempty"`
	Departs  int `json:"departs,omitempty"`
	Handoffs int `json:"handoffs,omitempty"`
	// Splits/Merges count shard-oracle re-sharding actions (subgroup
	// splits and merges applied by the elastic directory mirror).
	Splits int `json:"splits,omitempty"`
	Merges int `json:"merges,omitempty"`
}

// Report is the outcome of one executed campaign.
type Report struct {
	Campaign   Campaign    `json:"campaign"`
	Actions    []Action    `json:"actions"`
	Violations []Violation `json:"violations"`
	Stats      Stats       `json:"stats"`
}

// Passed reports whether every invariant held.
func (r *Report) Passed() bool { return len(r.Violations) == 0 }

// Run generates the campaign's schedule and executes it.
func (c Campaign) Run() *Report { return c.Execute(c.Generate()) }

// Execute runs an explicit schedule (normally Generate's output, or a
// minimized subset of it) under this campaign's configuration.
func (c Campaign) Execute(actions []Action) *Report {
	n := c.normalize()
	rep := &Report{Campaign: c, Actions: actions}
	if n.Topology != "" {
		if _, err := simnet.Preset(n.Topology); err != nil {
			rep.Violations = append(rep.Violations, Violation{
				Invariant: "config", Detail: err.Error(),
			})
			return rep
		}
	}
	switch n.Target {
	case TargetTwoLayer:
		executeTwoLayer(n, actions, rep)
	default:
		executeRaftKV(n, actions, rep)
	}
	if n.SACRounds > 0 {
		runSACOracle(n, rep)
	}
	if n.Byzantine && n.ByzantineRounds > 0 {
		runByzantineOracle(n, rep)
	}
	if n.Churn && n.ChurnRounds > 0 {
		runChurnOracle(n, rep)
	}
	if n.Shard && n.ShardRounds > 0 {
		runShardOracle(n, rep)
	}
	return rep
}
