// Package dp implements the differential-privacy extension the paper
// points to in Sec. IV-D ("other techniques such as Differential Privacy
// [16] could be used to add noise to the weight of each peer"): per-peer
// weight perturbation before the SAC exchange, via the Gaussian or
// Laplace mechanism over L2-clipped updates.
//
// The mechanism operates on the model *delta* (the locally updated
// weights minus the distributed global weights), which is the quantity
// whose sensitivity clipping can bound; the noisy delta is re-applied to
// the global weights before aggregation.
package dp

import (
	"fmt"
	"math"
	"math/rand"
)

// Mechanism perturbs a weight vector in place.
type Mechanism interface {
	// Perturb adds calibrated noise to w.
	Perturb(w []float64, rng *rand.Rand)
	// Name identifies the mechanism for logs.
	Name() string
}

// Gaussian is the Gaussian mechanism: noise N(0, σ²) with
// σ = Clip·√(2·ln(1.25/δ))/ε, which is (ε, δ)-DP for one release of an
// L2-clipped vector (Dwork & Roth, Thm. A.1).
type Gaussian struct {
	Epsilon, Delta float64
	Clip           float64
}

// Name implements Mechanism.
func (g Gaussian) Name() string {
	return fmt.Sprintf("gaussian(ε=%g, δ=%g, C=%g)", g.Epsilon, g.Delta, g.Clip)
}

// Sigma returns the calibrated noise scale.
func (g Gaussian) Sigma() float64 {
	return g.Clip * math.Sqrt(2*math.Log(1.25/g.Delta)) / g.Epsilon
}

// Perturb implements Mechanism.
func (g Gaussian) Perturb(w []float64, rng *rand.Rand) {
	sigma := g.Sigma()
	for i := range w {
		w[i] += rng.NormFloat64() * sigma
	}
}

// Laplace is the Laplace mechanism with scale Clip/ε per coordinate
// (ε-DP for an L1-clipped vector).
type Laplace struct {
	Epsilon float64
	Clip    float64
}

// Name implements Mechanism.
func (l Laplace) Name() string {
	return fmt.Sprintf("laplace(ε=%g, C=%g)", l.Epsilon, l.Clip)
}

// Perturb implements Mechanism.
func (l Laplace) Perturb(w []float64, rng *rand.Rand) {
	b := l.Clip / l.Epsilon
	for i := range w {
		// Inverse-CDF sampling of Laplace(0, b).
		u := rng.Float64() - 0.5
		w[i] += -b * sign(u) * math.Log(1-2*math.Abs(u))
	}
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// ClipL2 scales v in place so its Euclidean norm is at most c, returning
// the applied factor (1 when no clipping was needed).
func ClipL2(v []float64, c float64) (float64, error) {
	if c <= 0 {
		return 0, fmt.Errorf("dp: clip bound %v must be positive", c)
	}
	var ss float64
	for _, x := range v {
		ss += x * x
	}
	norm := math.Sqrt(ss)
	if norm <= c || norm == 0 {
		return 1, nil
	}
	f := c / norm
	for i := range v {
		v[i] *= f
	}
	return f, nil
}

// PrivatizeUpdate produces the differentially private weights a peer
// submits to aggregation: delta = local − global is L2-clipped to
// mech's bound and perturbed, then re-applied to global. local and
// global are not modified.
func PrivatizeUpdate(local, global []float64, clip float64, mech Mechanism, rng *rand.Rand) ([]float64, error) {
	if len(local) != len(global) {
		return nil, fmt.Errorf("dp: local has %d weights, global %d", len(local), len(global))
	}
	if mech == nil {
		return nil, fmt.Errorf("dp: nil mechanism")
	}
	delta := make([]float64, len(local))
	for i := range delta {
		delta[i] = local[i] - global[i]
	}
	if _, err := ClipL2(delta, clip); err != nil {
		return nil, err
	}
	mech.Perturb(delta, rng)
	out := make([]float64, len(local))
	for i := range out {
		out[i] = global[i] + delta[i]
	}
	return out, nil
}
