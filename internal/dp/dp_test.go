package dp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClipL2(t *testing.T) {
	v := []float64{3, 4} // norm 5
	f, err := ClipL2(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-0.2) > 1e-12 {
		t.Fatalf("factor = %v", f)
	}
	if math.Abs(math.Hypot(v[0], v[1])-1) > 1e-12 {
		t.Fatalf("clipped norm = %v", math.Hypot(v[0], v[1]))
	}
	// Already inside the ball: unchanged.
	w := []float64{0.1, 0.1}
	f, err = ClipL2(w, 1)
	if err != nil || f != 1 {
		t.Fatalf("no-op clip: f=%v err=%v", f, err)
	}
	if _, err := ClipL2(v, 0); err == nil {
		t.Fatal("want error for non-positive bound")
	}
	// Zero vector stays zero without dividing by zero.
	z := []float64{0, 0}
	if _, err := ClipL2(z, 1); err != nil || z[0] != 0 {
		t.Fatal("zero vector must clip to itself")
	}
}

// Property: after clipping, the norm never exceeds the bound.
func TestClipL2Property(t *testing.T) {
	f := func(seed int64, cRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := float64(cRaw%50)/10 + 0.1
		v := make([]float64, 16)
		for i := range v {
			v[i] = rng.NormFloat64() * 100
		}
		if _, err := ClipL2(v, c); err != nil {
			return false
		}
		var ss float64
		for _, x := range v {
			ss += x * x
		}
		return math.Sqrt(ss) <= c*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGaussianSigma(t *testing.T) {
	g := Gaussian{Epsilon: 1, Delta: 1e-5, Clip: 1}
	// σ = √(2 ln(1.25e5)) ≈ 4.84.
	if s := g.Sigma(); math.Abs(s-4.84) > 0.02 {
		t.Fatalf("sigma = %v", s)
	}
	// Stronger privacy (smaller ε) → more noise.
	weaker := Gaussian{Epsilon: 10, Delta: 1e-5, Clip: 1}
	if weaker.Sigma() >= g.Sigma() {
		t.Fatal("sigma must shrink as epsilon grows")
	}
}

func TestGaussianNoiseDistribution(t *testing.T) {
	g := Gaussian{Epsilon: 1, Delta: 1e-5, Clip: 1}
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	w := make([]float64, n)
	g.Perturb(w, rng)
	mean, ss := 0.0, 0.0
	for _, x := range w {
		mean += x
	}
	mean /= n
	for _, x := range w {
		ss += (x - mean) * (x - mean)
	}
	std := math.Sqrt(ss / n)
	if math.Abs(mean) > 0.15 {
		t.Fatalf("noise mean = %v", mean)
	}
	if math.Abs(std-g.Sigma()) > 0.15 {
		t.Fatalf("noise std = %v, want %v", std, g.Sigma())
	}
}

func TestLaplaceNoiseDistribution(t *testing.T) {
	l := Laplace{Epsilon: 1, Clip: 2}
	rng := rand.New(rand.NewSource(2))
	const n = 20000
	w := make([]float64, n)
	l.Perturb(w, rng)
	// Laplace(0, b): mean 0, std b·√2 with b = Clip/ε = 2.
	mean, ss := 0.0, 0.0
	for _, x := range w {
		mean += x
	}
	mean /= n
	for _, x := range w {
		ss += (x - mean) * (x - mean)
	}
	std := math.Sqrt(ss / n)
	if math.Abs(mean) > 0.1 {
		t.Fatalf("noise mean = %v", mean)
	}
	if math.Abs(std-2*math.Sqrt2) > 0.15 {
		t.Fatalf("noise std = %v, want %v", std, 2*math.Sqrt2)
	}
}

func TestMechanismNames(t *testing.T) {
	if (Gaussian{}).Name() == "" || (Laplace{}).Name() == "" {
		t.Fatal("empty names")
	}
}

func TestPrivatizeUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	global := []float64{1, 1, 1, 1}
	local := []float64{2, 2, 2, 2} // delta norm = 2
	mech := Gaussian{Epsilon: 100, Delta: 1e-5, Clip: 1}
	out, err := PrivatizeUpdate(local, global, 1, mech, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Delta was clipped from norm 2 to 1, so out ≈ global + delta/2,
	// within the tiny ε=100 noise.
	for i := range out {
		if math.Abs(out[i]-1.5) > 0.2 {
			t.Fatalf("out = %v, want ≈ 1.5 each", out)
		}
	}
	// Inputs unmodified.
	if local[0] != 2 || global[0] != 1 {
		t.Fatal("inputs must not be mutated")
	}
}

func TestPrivatizeUpdateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := PrivatizeUpdate([]float64{1}, []float64{1, 2}, 1, Gaussian{Epsilon: 1, Delta: 1e-5, Clip: 1}, rng); err == nil {
		t.Fatal("want length error")
	}
	if _, err := PrivatizeUpdate([]float64{1}, []float64{1}, 1, nil, rng); err == nil {
		t.Fatal("want nil-mechanism error")
	}
	if _, err := PrivatizeUpdate([]float64{1}, []float64{1}, 0, Laplace{Epsilon: 1, Clip: 1}, rng); err == nil {
		t.Fatal("want clip error")
	}
}

// DP noise must average out across peers: aggregating many privatized
// updates approaches the aggregate of the raw updates (the utility side
// of the DP trade-off).
func TestNoiseAveragesOut(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const peers = 400
	global := []float64{0, 0}
	mech := Gaussian{Epsilon: 1, Delta: 1e-5, Clip: 1}
	sum := []float64{0, 0}
	for p := 0; p < peers; p++ {
		local := []float64{0.5, -0.25} // same true update everywhere
		out, err := PrivatizeUpdate(local, global, 1, mech, rng)
		if err != nil {
			t.Fatal(err)
		}
		sum[0] += out[0]
		sum[1] += out[1]
	}
	avg := []float64{sum[0] / peers, sum[1] / peers}
	// σ≈4.84, so the mean of 400 draws has std ≈ 0.24 per coordinate.
	if math.Abs(avg[0]-0.5) > 0.8 || math.Abs(avg[1]+0.25) > 0.8 {
		t.Fatalf("noisy average = %v, want ≈ [0.5 -0.25]", avg)
	}
}
