package simnet

import (
	"math/rand"
	"testing"

	"repro/internal/raft"
)

func lossyGroup(t *testing.T, sim *Sim, n int, loss float64, seed int64) *Group {
	t.Helper()
	g := NewGroup(sim, "lossy", 15*Millisecond, rand.New(rand.NewSource(seed)))
	g.LossRate = loss
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	for _, id := range ids {
		node, err := raft.NewNode(raft.Config{
			ID: id, Peers: ids,
			ElectionTickMin: 100, ElectionTickMax: 200, HeartbeatTick: 30,
			Rng: rand.New(rand.NewSource(seed*100 + int64(id))),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Add(node); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestRaftElectsUnder20PercentLoss(t *testing.T) {
	sim := New()
	g := lossyGroup(t, sim, 5, 0.2, 1)
	if !sim.RunWhileNot(func() bool { return g.Leader() != raft.None }, Time(30*Second)) {
		t.Fatal("no leader under 20% message loss within 30 virtual seconds")
	}
}

func TestRaftCommitsUnderLoss(t *testing.T) {
	sim := New()
	g := lossyGroup(t, sim, 5, 0.15, 2)
	if !sim.RunWhileNot(func() bool { return g.Leader() != raft.None }, Time(30*Second)) {
		t.Fatal("no leader")
	}
	commits := map[uint64]bool{}
	for id, h := range g.Hosts() {
		id := id
		h.OnCommit = func(e raft.Entry) {
			if e.Type == raft.EntryNormal && string(e.Data) == "lossy" {
				commits[id] = true
			}
		}
	}
	// Propose through whoever currently leads; re-propose on leadership
	// changes until the entry commits everywhere (loss may kill the
	// first attempts).
	for try := 0; try < 20; try++ {
		if l := g.Leader(); l != raft.None {
			lead := g.Host(l)
			already := false
			for _, e := range lead.Node.Log() {
				if string(e.Data) == "lossy" {
					already = true
				}
			}
			if !already {
				if err := lead.Node.Propose([]byte("lossy")); err == nil {
					lead.Pump()
				}
			}
		}
		sim.RunFor(2 * Second)
		if len(commits) == len(g.Hosts()) {
			break
		}
	}
	if len(commits) != len(g.Hosts()) {
		t.Fatalf("only %d/%d hosts committed under loss", len(commits), len(g.Hosts()))
	}
}

func TestRecoveryStillWorksWithJitter(t *testing.T) {
	sim := New()
	g := NewGroup(sim, "jitter", 15*Millisecond, rand.New(rand.NewSource(3)))
	g.Jitter = 5 * Millisecond
	ids := []uint64{1, 2, 3, 4, 5}
	for _, id := range ids {
		node, err := raft.NewNode(raft.Config{
			ID: id, Peers: ids,
			ElectionTickMin: 50, ElectionTickMax: 100, HeartbeatTick: 15,
			Rng: rand.New(rand.NewSource(300 + int64(id))),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Add(node); err != nil {
			t.Fatal(err)
		}
	}
	if !sim.RunWhileNot(func() bool { return g.Leader() != raft.None }, Time(10*Second)) {
		t.Fatal("no leader with jitter")
	}
	old := g.Leader()
	sim.RunFor(300 * Millisecond)
	g.Host(old).Crash()
	ok := sim.RunWhileNot(func() bool {
		l := g.Leader()
		return l != raft.None && l != old
	}, sim.Now()+Time(10*Second))
	if !ok {
		t.Fatal("no recovery with jitter")
	}
}

func TestTotalLossNeverElectsAcrossPeers(t *testing.T) {
	// With 100% loss no candidate can gather votes; only a single-node
	// cluster could self-elect, and this one has five nodes.
	sim := New()
	g := lossyGroup(t, sim, 5, 1.0, 4)
	sim.RunFor(5 * Second)
	if l := g.Leader(); l != raft.None {
		t.Fatalf("leader %d elected with zero connectivity", l)
	}
}
