package simnet

import (
	"testing"

	"repro/internal/raft"
)

func TestPartitionMajorityElectsMinorityCannot(t *testing.T) {
	sim := New()
	g := newGroupCluster(t, sim, 5, 50, 100, 15*Millisecond, 21)
	if !sim.RunWhileNot(func() bool { return g.Leader() != raft.None }, Time(5*Second)) {
		t.Fatal("no initial leader")
	}
	sim.RunFor(200 * Millisecond)
	old := g.Leader()

	// Partition the leader with one follower (minority side).
	var partner uint64
	for id := range g.Hosts() {
		if id != old {
			partner = id
			break
		}
	}
	side := map[uint64]bool{old: true, partner: true}
	g.Partition(side)

	// The majority side elects a new leader.
	ok := sim.RunWhileNot(func() bool {
		for id, h := range g.Hosts() {
			if side[id] || h.Down() {
				continue
			}
			if h.Node.State() == raft.Leader {
				return true
			}
		}
		return false
	}, sim.Now()+Time(10*Second))
	if !ok {
		t.Fatal("majority side did not elect")
	}
	var newLeader uint64
	for id, h := range g.Hosts() {
		if !side[id] && h.Node.State() == raft.Leader {
			newLeader = id
		}
	}

	// Commit on the majority side during the partition.
	nl := g.Host(newLeader)
	if err := nl.Node.Propose([]byte("majority-entry")); err != nil {
		t.Fatal(err)
	}
	nl.Pump()
	sim.RunFor(500 * Millisecond)
	if nl.Node.CommitIndex() == 0 {
		t.Fatal("majority could not commit during partition")
	}

	// Heal: the old leader must step down and adopt the new log.
	g.Heal()
	sim.RunFor(3 * Second)
	oldHost := g.Host(old)
	if oldHost.Node.State() == raft.Leader && oldHost.Node.Term() <= nl.Node.Term() {
		t.Fatal("stale leader survived healing")
	}
	found := false
	for _, e := range oldHost.Node.Log() {
		if string(e.Data) == "majority-entry" {
			found = true
		}
	}
	if !found {
		t.Fatal("healed minority did not adopt the majority's log")
	}
}

func TestMinorityCannotCommitDuringPartition(t *testing.T) {
	sim := New()
	g := newGroupCluster(t, sim, 5, 50, 100, 15*Millisecond, 22)
	if !sim.RunWhileNot(func() bool { return g.Leader() != raft.None }, Time(5*Second)) {
		t.Fatal("no leader")
	}
	sim.RunFor(200 * Millisecond)
	old := g.Leader()
	var partner uint64
	for id := range g.Hosts() {
		if id != old {
			partner = id
			break
		}
	}
	g.Partition(map[uint64]bool{old: true, partner: true})

	lead := g.Host(old)
	before := lead.Node.CommitIndex()
	if err := lead.Node.Propose([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	lead.Pump()
	sim.RunFor(2 * Second)
	if lead.Node.CommitIndex() > before {
		t.Fatal("minority leader committed without a quorum")
	}
}
