package simnet

import (
	"math/rand"
	"testing"

	"repro/internal/raft"
)

func TestSimOrdering(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(30*Millisecond, func() { got = append(got, 3) })
	s.Schedule(10*Millisecond, func() { got = append(got, 1) })
	s.Schedule(20*Millisecond, func() { got = append(got, 2) })
	s.RunUntil(Time(25 * Millisecond))
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("events up to 25ms: %v", got)
	}
	if s.Now() != Time(25*Millisecond) {
		t.Fatalf("now = %v", s.Now())
	}
	s.RunFor(10 * Millisecond)
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("all events: %v", got)
	}
}

func TestSimSameTimeFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		s.Schedule(Millisecond, func() { got = append(got, i) })
	}
	s.RunFor(2 * Millisecond)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of order: %v", got)
		}
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			s.Schedule(Millisecond, tick)
		}
	}
	s.Schedule(Millisecond, tick)
	s.RunUntil(Time(20 * Millisecond))
	if count != 10 {
		t.Fatalf("ticks = %d", count)
	}
}

func TestSimNegativeDelayClamped(t *testing.T) {
	s := New()
	s.RunFor(5 * Millisecond)
	ran := false
	s.Schedule(-Millisecond, func() { ran = true })
	s.RunFor(0)
	if !ran {
		t.Fatal("negative-delay event must run immediately")
	}
}

func TestRunWhileNot(t *testing.T) {
	s := New()
	x := 0
	s.Schedule(10*Millisecond, func() { x = 1 })
	if s.RunWhileNot(func() bool { return x == 1 }, Time(5*Millisecond)) {
		t.Fatal("condition cannot be met by 5ms")
	}
	if !s.RunWhileNot(func() bool { return x == 1 }, Time(20*Millisecond)) {
		t.Fatal("condition must be met by 20ms")
	}
}

func newGroupCluster(t *testing.T, sim *Sim, n int, electMin, electMax int, latency Duration, seed int64) *Group {
	t.Helper()
	g := NewGroup(sim, "test", latency, rand.New(rand.NewSource(seed)))
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	for _, id := range ids {
		node, err := raft.NewNode(raft.Config{
			ID:              id,
			Peers:           ids,
			ElectionTickMin: electMin,
			ElectionTickMax: electMax,
			HeartbeatTick:   electMin / 3,
			Rng:             rand.New(rand.NewSource(seed*100 + int64(id))),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Add(node); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestGroupElectsLeaderUnderLatency(t *testing.T) {
	sim := New()
	g := newGroupCluster(t, sim, 5, 50, 100, 15*Millisecond, 1)
	ok := sim.RunWhileNot(func() bool { return g.Leader() != raft.None }, Time(2*Second))
	if !ok {
		t.Fatal("no leader within 2 virtual seconds")
	}
	// Sanity: with T=50ms timeouts the first election cannot complete
	// before ~50ms (a timeout must fire plus a round trip).
	if sim.Now() < Time(50*Millisecond) {
		t.Fatalf("leader at %v ms — too fast to be real", sim.Now().Ms())
	}
}

func TestGroupLeaderCrashRecovery(t *testing.T) {
	sim := New()
	g := newGroupCluster(t, sim, 5, 50, 100, 15*Millisecond, 2)
	if !sim.RunWhileNot(func() bool { return g.Leader() != raft.None }, Time(2*Second)) {
		t.Fatal("no initial leader")
	}
	// Let leadership stabilize, then crash the leader.
	sim.RunFor(200 * Millisecond)
	old := g.Leader()
	if old == raft.None {
		t.Fatal("leadership lost during stable period")
	}
	g.Host(old).Crash()
	crashAt := sim.Now()
	ok := sim.RunWhileNot(func() bool {
		l := g.Leader()
		return l != raft.None && l != old
	}, crashAt+Time(5*Second))
	if !ok {
		t.Fatal("no recovery within 5 virtual seconds")
	}
	elapsed := Duration(sim.Now() - crashAt)
	// The paper reports ~214ms average for U(50,100)ms timeouts; any
	// recovery should land within the same order of magnitude.
	if elapsed < 50*Millisecond || elapsed > 2*Second {
		t.Fatalf("recovery took %v ms — outside plausible range", elapsed.Ms())
	}
}

func TestGroupCommitPropagatesWithLatency(t *testing.T) {
	sim := New()
	g := newGroupCluster(t, sim, 3, 50, 100, 15*Millisecond, 3)
	if !sim.RunWhileNot(func() bool { return g.Leader() != raft.None }, Time(2*Second)) {
		t.Fatal("no leader")
	}
	commits := map[uint64]int{}
	for id, h := range g.Hosts() {
		id := id
		h.OnCommit = func(e raft.Entry) {
			if e.Type == raft.EntryNormal && string(e.Data) == "x" {
				commits[id]++
			}
		}
	}
	lead := g.Host(g.Leader())
	if err := lead.Node.Propose([]byte("x")); err != nil {
		t.Fatal(err)
	}
	lead.Pump()
	sim.RunFor(500 * Millisecond)
	for id := range g.Hosts() {
		if commits[id] != 1 {
			t.Fatalf("host %d commits = %d, want 1", id, commits[id])
		}
	}
}

func TestOnStateChangeFires(t *testing.T) {
	sim := New()
	g := newGroupCluster(t, sim, 3, 50, 100, 15*Millisecond, 4)
	leaderEvents := 0
	for _, h := range g.Hosts() {
		h.OnStateChange = func(st raft.State, term, leader uint64) {
			if st == raft.Leader {
				leaderEvents++
			}
		}
	}
	sim.RunFor(2 * Second)
	if leaderEvents == 0 {
		t.Fatal("no leader state-change events observed")
	}
}

// A host restarted while still inside a partition must come back with
// exactly the log it persisted: messages dropped by the partition (or in
// flight at the crash) must not be resurrected by the restart. Only after
// the partition heals may the replicated entries reach it.
func TestRestartInsidePartitionNoResurrection(t *testing.T) {
	sim := New()
	g := newGroupCluster(t, sim, 5, 50, 100, 15*Millisecond, 6)
	if !sim.RunWhileNot(func() bool { return g.Leader() != raft.None }, Time(2*Second)) {
		t.Fatal("no leader")
	}
	sim.RunFor(200 * Millisecond)
	lead := g.Leader()
	if lead == raft.None {
		t.Fatal("leadership lost during stable period")
	}

	// Count payload commits per host; OnCommit lives on the Host, so the
	// hookup survives the restart below.
	commits := map[uint64]int{}
	for id, h := range g.Hosts() {
		id := id
		h.OnCommit = func(e raft.Entry) {
			if e.Type == raft.EntryNormal && len(e.Data) > 0 {
				commits[id]++
			}
		}
	}

	// Isolate one follower, then crash it inside the partition.
	var isolated uint64
	for _, id := range g.IDs() {
		if id != lead {
			isolated = id
			break
		}
	}
	g.Partition(map[uint64]bool{isolated: true})
	g.Host(isolated).Crash()
	baseIndex := g.Host(isolated).Node.LastIndex()

	// The majority side keeps committing.
	for i := 0; i < 3; i++ {
		h := g.Host(g.Leader())
		if err := h.Node.Propose([]byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
		h.Pump()
		sim.RunFor(200 * Millisecond)
	}
	for _, id := range g.IDs() {
		if id == isolated {
			continue
		}
		if commits[id] != 3 {
			t.Fatalf("majority host %d commits = %d, want 3", id, commits[id])
		}
	}

	// Restart the host with the partition still up: nothing the partition
	// dropped may appear — no new log entries, no new commits.
	err := g.Host(isolated).Restart(raft.Config{
		ID: isolated, Peers: g.IDs(),
		ElectionTickMin: 50, ElectionTickMax: 100, HeartbeatTick: 16,
		Rng: rand.New(rand.NewSource(600 + int64(isolated))),
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.RunFor(2 * Second)
	if got := commits[isolated]; got != 0 {
		t.Fatalf("partitioned host committed %d entries after restart, want 0", got)
	}
	if got := g.Host(isolated).Node.LastIndex(); got != baseIndex {
		t.Fatalf("partitioned host log grew to %d after restart, want %d", got, baseIndex)
	}

	// Heal, and the replicated entries finally arrive.
	g.Heal()
	ok := sim.RunWhileNot(func() bool { return commits[isolated] == 3 },
		sim.Now()+Time(10*Second))
	if !ok {
		t.Fatalf("isolated host commits = %d after heal, want 3", commits[isolated])
	}
}

func TestDuplicateHostRejected(t *testing.T) {
	sim := New()
	g := NewGroup(sim, "dup", 0, nil)
	n, err := raft.NewNode(raft.Config{
		ID: 1, Peers: []uint64{1},
		ElectionTickMin: 10, ElectionTickMax: 20, HeartbeatTick: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(n); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(n); err == nil {
		t.Fatal("want duplicate error")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (Time, uint64) {
		sim := New()
		g := newGroupCluster(t, sim, 5, 100, 200, 15*Millisecond, 42)
		if !sim.RunWhileNot(func() bool { return g.Leader() != raft.None }, Time(5*Second)) {
			t.Fatal("no leader")
		}
		return sim.Now(), g.Leader()
	}
	t1, l1 := run()
	t2, l2 := run()
	if t1 != t2 || l1 != l2 {
		t.Fatalf("runs differ: (%v,%d) vs (%v,%d)", t1, l1, t2, l2)
	}
}

func TestTimeRendering(t *testing.T) {
	if Time(1500).Ms() != 1.5 {
		t.Fatal("Time.Ms wrong")
	}
	if (2 * Millisecond).Ms() != 2 {
		t.Fatal("Duration.Ms wrong")
	}
}

func BenchmarkSimulatedElection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := New()
		g := NewGroup(sim, "bench", 15*Millisecond, rand.New(rand.NewSource(int64(i))))
		ids := []uint64{1, 2, 3, 4, 5}
		for _, id := range ids {
			n, err := raft.NewNode(raft.Config{
				ID: id, Peers: ids,
				ElectionTickMin: 50, ElectionTickMax: 100, HeartbeatTick: 15,
				Rng: rand.New(rand.NewSource(int64(i)*10 + int64(id))),
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := g.Add(n); err != nil {
				b.Fatal(err)
			}
		}
		if !sim.RunWhileNot(func() bool { return g.Leader() != raft.None }, Time(10*Second)) {
			b.Fatal("no leader")
		}
	}
}
