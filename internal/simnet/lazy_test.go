package simnet

import (
	"testing"

	"repro/internal/telemetry"
)

func TestFleetLazyMaterialization(t *testing.T) {
	sim := New()
	inits := 0
	f, err := NewFleet(sim, 1000000, FleetOptions{Init: func(p *PeerState) { inits++ }})
	if err != nil {
		t.Fatal(err)
	}
	if f.Materialized() != 0 {
		t.Fatalf("fresh fleet materialized %d peers", f.Materialized())
	}
	// Touch 3 peers out of a million; only those exist.
	for _, i := range []int{0, 499999, 999999} {
		if err := f.Schedule(i, Duration(i%7), func(p *PeerState) {}); err != nil {
			t.Fatal(err)
		}
	}
	if f.Materialized() != 0 {
		t.Fatal("scheduling alone must not materialize peers")
	}
	sim.RunFor(10)
	if f.Materialized() != 3 || inits != 3 {
		t.Fatalf("materialized %d peers (%d inits), want 3", f.Materialized(), inits)
	}
	if f.Lookup(1) != nil {
		t.Fatal("untouched peer has state")
	}
	p := f.Lookup(999999)
	if p == nil || p.Events != 1 {
		t.Fatalf("touched peer state %+v", p)
	}
}

func TestFleetEventCountsAndReuse(t *testing.T) {
	sim := New()
	f, err := NewFleet(sim, 10, FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := f.Schedule(3, Duration(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	sim.RunFor(10)
	p, err := f.Peer(3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Events != 5 {
		t.Fatalf("peer 3 saw %d events, want 5", p.Events)
	}
	if f.Materialized() != 1 {
		t.Fatalf("materialized %d, want 1", f.Materialized())
	}
	// Peer is idempotent: same pointer back.
	q, _ := f.Peer(3)
	if q != p {
		t.Fatal("Peer rematerialized an existing peer")
	}
}

func TestFleetBounds(t *testing.T) {
	sim := New()
	f, err := NewFleet(sim, 4, FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Peer(-1); err == nil {
		t.Fatal("Peer(-1) accepted")
	}
	if _, err := f.Peer(4); err == nil {
		t.Fatal("Peer(n) accepted")
	}
	if err := f.Schedule(4, 0, nil); err == nil {
		t.Fatal("Schedule(n) accepted")
	}
	if _, err := NewFleet(nil, 4, FleetOptions{}); err == nil {
		t.Fatal("nil sim accepted")
	}
	if _, err := NewFleet(sim, 0, FleetOptions{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
}

func TestFleetTelemetrySampling(t *testing.T) {
	sim := New()
	reg := telemetry.New()
	f, err := NewFleet(sim, 100000, FleetOptions{
		Telemetry:       reg,
		SampleThreshold: 1000,
		SampleEvery:     100,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Peer 200 is on the stride, 201 is not.
	if !f.Sampled(200) || f.Sampled(201) {
		t.Fatalf("sampling: Sampled(200)=%v Sampled(201)=%v", f.Sampled(200), f.Sampled(201))
	}
	f.Schedule(200, 0, nil)
	f.Schedule(201, 0, nil)
	sim.RunFor(1)
	if g := f.Lookup(200).gauge; g == nil || g.Value() != 1 {
		t.Fatal("sampled peer missing its gauge")
	}
	if f.Lookup(201).gauge != nil {
		t.Fatal("unsampled peer has a gauge")
	}
}

func TestFleetSmallPopulationFullyInstrumented(t *testing.T) {
	sim := New()
	reg := telemetry.New()
	f, err := NewFleet(sim, 100, FleetOptions{Telemetry: reg, SampleThreshold: 1000})
	if err != nil {
		t.Fatal(err)
	}
	f.Schedule(17, 0, nil)
	sim.RunFor(1)
	if f.Lookup(17).gauge == nil {
		t.Fatal("below threshold, every peer must be instrumented")
	}
}

// BenchmarkSimSchedule1e6 drives one million events through a
// million-peer fleet that only ever touches 1024 distinct peers —
// the memory-lean massive-scale claim in benchmark form (allocs stay
// O(touched), not O(population)).
func BenchmarkSimSchedule1e6(b *testing.B) {
	const events = 1_000_000
	const touched = 1024
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := New()
		f, err := NewFleet(sim, 1_000_000, FleetOptions{})
		if err != nil {
			b.Fatal(err)
		}
		for e := 0; e < events; e++ {
			if err := f.Schedule(e%touched, Duration(e%64), nil); err != nil {
				b.Fatal(err)
			}
		}
		sim.RunFor(64)
		if f.Materialized() != touched {
			b.Fatalf("materialized %d, want %d", f.Materialized(), touched)
		}
	}
}
