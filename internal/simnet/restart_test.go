package simnet

import (
	"math/rand"
	"testing"

	"repro/internal/raft"
)

func TestHostRestartRejoins(t *testing.T) {
	sim := New()
	g := newGroupCluster(t, sim, 5, 50, 100, 15*Millisecond, 7)
	if !sim.RunWhileNot(func() bool { return g.Leader() != raft.None }, Time(5*Second)) {
		t.Fatal("no leader")
	}
	sim.RunFor(300 * Millisecond)
	lead := g.Host(g.Leader())
	if err := lead.Node.Propose([]byte("pre-crash")); err != nil {
		t.Fatal(err)
	}
	lead.Pump()
	sim.RunFor(200 * Millisecond)

	// Crash a follower, keep running, then restart it.
	var victim *Host
	for id, h := range g.Hosts() {
		if id != g.Leader() {
			victim = h
			break
		}
	}
	victimID := victim.Node.ID()
	victim.Crash()
	sim.RunFor(500 * Millisecond)
	if err := lead.Node.Propose([]byte("while-down")); err != nil {
		t.Fatal(err)
	}
	lead.Pump()
	sim.RunFor(500 * Millisecond)

	err := victim.Restart(raft.Config{
		ID: victimID, ElectionTickMin: 50, ElectionTickMax: 100, HeartbeatTick: 15,
		Rng: rand.New(rand.NewSource(77)),
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.RunFor(2 * Second)

	// The restarted host caught up with entries committed while down.
	found := false
	for _, e := range victim.Node.Log() {
		if string(e.Data) == "while-down" {
			found = true
		}
	}
	if !found {
		t.Fatal("restarted host missing entries committed during downtime")
	}
	if victim.Down() {
		t.Fatal("host still marked down")
	}
}

func TestRestartValidation(t *testing.T) {
	sim := New()
	g := newGroupCluster(t, sim, 3, 50, 100, Millisecond, 8)
	h := g.Host(1)
	cfg := raft.Config{ID: 1, ElectionTickMin: 50, ElectionTickMax: 100, HeartbeatTick: 15}
	if err := h.Restart(cfg); err == nil {
		t.Fatal("want error restarting a live host")
	}
	h.Crash()
	bad := cfg
	bad.ID = 2
	if err := h.Restart(bad); err == nil {
		t.Fatal("want error for mismatched ID")
	}
	// A host that never pumped has no persisted state.
	sim2 := New()
	g2 := NewGroup(sim2, "fresh", 0, nil)
	n, err := raft.NewNode(raft.Config{ID: 9, Peers: []uint64{9}, ElectionTickMin: 10, ElectionTickMax: 20, HeartbeatTick: 2})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := g2.Add(n)
	if err != nil {
		t.Fatal(err)
	}
	h2.Crash()
	if err := h2.Restart(raft.Config{ID: 9, ElectionTickMin: 10, ElectionTickMax: 20, HeartbeatTick: 2}); err == nil {
		t.Fatal("want error for missing persisted state")
	}
}
