// Package simnet is a discrete-event network simulator with a virtual
// clock. It replaces the paper's single-machine testbed (virtual peers
// over TCP with tc-injected 15 ms latency): raft nodes are ticked every
// virtual millisecond and messages are delivered after a configurable
// one-way latency, so 1000 recovery-time trials run in seconds of wall
// clock while reporting virtual milliseconds directly comparable to the
// paper's Figs. 10–12.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/raft"
	"repro/internal/wire"
)

// Time is virtual time in microseconds since simulation start.
type Time int64

// Duration is a virtual duration in microseconds.
type Duration int64

// Common durations.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000
	Second      Duration = 1000 * Millisecond
)

// Ms renders a Time as fractional milliseconds.
func (t Time) Ms() float64 { return float64(t) / 1000 }

// Ms renders a Duration as fractional milliseconds.
func (d Duration) Ms() float64 { return float64(d) / 1000 }

type event struct {
	at  Time
	seq uint64 // tie-break so same-time events run in schedule order
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is the discrete-event scheduler. It is not safe for concurrent use:
// all event handlers run on the caller's goroutine, which is what makes
// runs deterministic.
type Sim struct {
	now    Time
	seq    uint64
	events eventHeap
}

// New creates an empty simulation at time zero.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Schedule runs fn after the given delay (clamped to ≥ 0).
func (s *Sim) Schedule(after Duration, fn func()) {
	if after < 0 {
		after = 0
	}
	s.seq++
	heap.Push(&s.events, event{at: s.now + Time(after), seq: s.seq, fn: fn})
}

// Step executes the next event; false when the queue is empty.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(event)
	s.now = e.at
	e.fn()
	return true
}

// RunUntil processes events until the virtual clock reaches t (events at
// exactly t still run) or the queue empties.
func (s *Sim) RunUntil(t Time) {
	for len(s.events) > 0 && s.events[0].at <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor advances the clock by d.
func (s *Sim) RunFor(d Duration) { s.RunUntil(s.now + Time(d)) }

// RunWhileNot steps events until cond() is true or the clock passes
// limit; it reports whether cond was met.
func (s *Sim) RunWhileNot(cond func() bool, limit Time) bool {
	for !cond() {
		if len(s.events) == 0 || s.events[0].at > limit {
			return false
		}
		s.Step()
	}
	return true
}

// Group drives a set of raft nodes that share one consensus group over
// the simulated network: each host is ticked every TickInterval and its
// outbound messages are delivered to group members after Latency.
type Group struct {
	sim  *Sim
	name string

	// Latency is the one-way message delay; the paper uses 15 ms.
	Latency Duration
	// Jitter adds U(0, Jitter) to each delivery.
	Jitter Duration
	// Topo, when non-nil, replaces the uniform Latency model with a
	// multi-region delay matrix (see topology.go): each message's base
	// delay and jitter come from its from→to link. The fault-injection
	// Jitter above still adds on top, so ActDelay composes with any
	// topology. A nil Topo is the legacy path, byte-for-byte.
	Topo *Topology
	// LossRate drops each message independently with this probability —
	// Raft tolerates loss via retransmission-by-timeout, which the
	// failure-injection tests exercise.
	LossRate float64
	// LinkFilter, if set, drops any message for which it returns false —
	// the hook for partitions and asymmetric link failures.
	LinkFilter func(from, to uint64) bool
	// DropFilter, if set, drops any message for which it returns true.
	// Unlike LinkFilter it sees the whole message, so fault campaigns
	// (internal/chaos) can target specific RPC types or directions —
	// e.g. black-holing all AppendEntries from one node.
	DropFilter func(m raft.Message) bool
	// TickInterval is the raft tick period (default 1 ms, so raft tick
	// counts are milliseconds).
	TickInterval Duration
	// OnDeliver, if set, observes every successfully scheduled delivery
	// with the one-way delay that was sampled for it — the feed for
	// RTT-estimating failure detectors (observed RTT ≈ 2× one-way).
	// It runs at delivery time, before the destination steps the message.
	OnDeliver func(m raft.Message, oneWay Duration)

	rng   *rand.Rand
	hosts map[uint64]*Host

	// Traffic accounting, in exact wire-codec frame bytes
	// (wire.RaftFrameSize) so simulated byte counts line up with what
	// the RaftTCP transport would put on a real socket. Offered counts
	// every message a host handed to the network; dropped counts the
	// subset lost to partitions, filters and random loss (the sender
	// cannot tell, so its bytes are offered either way).
	offeredMsgs  int64
	offeredBytes int64
	droppedMsgs  int64
	droppedBytes int64
}

// NewGroup creates a consensus group on sim with the given one-way
// latency and rng for jitter.
func NewGroup(sim *Sim, name string, latency Duration, rng *rand.Rand) *Group {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Group{
		sim:          sim,
		name:         name,
		Latency:      latency,
		TickInterval: Millisecond,
		rng:          rng,
		hosts:        make(map[uint64]*Host),
	}
}

// Name returns the group's label.
func (g *Group) Name() string { return g.name }

// Host wraps one raft node living in a Group.
type Host struct {
	Node  *raft.Node
	group *Group
	down  bool

	// OnCommit, if set, observes each committed entry.
	OnCommit func(e raft.Entry)
	// OnSnapshot, if set, observes installed snapshots; the state
	// machine must restore itself from the snapshot data before the
	// following commits.
	OnSnapshot func(s *raft.Snapshot)
	// OnStateChange, if set, observes role transitions.
	OnStateChange func(state raft.State, term, leader uint64)
	// OnMessage, if set, observes every message delivered to this host
	// (before the node steps it). Failure detectors hang off this: a
	// delivered message is proof of life for its sender.
	OnMessage func(m raft.Message)

	lastState  raft.State
	lastTerm   uint64
	lastLeader uint64

	persisted raft.PersistentState
	hasState  bool
}

// Add registers node in the group and starts ticking it.
func (g *Group) Add(node *raft.Node) (*Host, error) {
	id := node.ID()
	if _, ok := g.hosts[id]; ok {
		return nil, fmt.Errorf("simnet: duplicate host %d in group %s", id, g.name)
	}
	h := &Host{Node: node, group: g, lastLeader: raft.None}
	g.hosts[id] = h
	g.scheduleTick(h)
	return h, nil
}

// Remove unregisters a host from the group: its tick loop stops, no
// further messages are delivered to it, and its ID becomes free for a
// future Add. The continuous-churn control plane (internal/cluster)
// calls this after a peer's removal ConfChange commits; in-flight
// deliveries to the removed ID are dropped exactly like deliveries to
// an unknown host.
func (g *Group) Remove(id uint64) {
	h, ok := g.hosts[id]
	if !ok {
		return
	}
	h.down = true // strands the pending tick closure
	delete(g.hosts, id)
}

// Host returns the host for id, or nil.
func (g *Group) Host(id uint64) *Host { return g.hosts[id] }

// Hosts returns all hosts (including crashed ones).
func (g *Group) Hosts() map[uint64]*Host { return g.hosts }

// IDs returns all host IDs in sorted order. Fault campaigns iterate this
// instead of Hosts() so that target selection is deterministic.
func (g *Group) IDs() []uint64 {
	out := make([]uint64, 0, len(g.hosts))
	for id := range g.hosts {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Leader returns the ID of a live host currently in the Leader state with
// the highest term, or raft.None.
func (g *Group) Leader() uint64 {
	best := raft.None
	var bestTerm uint64
	for id, h := range g.hosts {
		if h.down || h.Node.State() != raft.Leader {
			continue
		}
		if best == raft.None || h.Node.Term() > bestTerm {
			best, bestTerm = id, h.Node.Term()
		}
	}
	return best
}

func (g *Group) scheduleTick(h *Host) {
	g.sim.Schedule(g.TickInterval, func() {
		if h.down {
			return
		}
		h.Node.Tick()
		h.Pump()
		g.scheduleTick(h)
	})
}

// Crash stops the host: no more ticks, inbound messages dropped. State
// persisted before the crash survives (see Restart).
func (h *Host) Crash() { h.down = true }

// Down reports whether the host has crashed.
func (h *Host) Down() bool { return h.down }

// Restart revives a crashed host from its last persisted state: the node
// rejoins as a follower with its durable term/vote/log intact, exactly
// the "crashed server rejoins the cluster at any time" behaviour of
// Raft. cfg supplies the timing parameters (ID must match).
func (h *Host) Restart(cfg raft.Config) error {
	if !h.down {
		return fmt.Errorf("simnet: host %d is not down", h.Node.ID())
	}
	if cfg.ID != h.Node.ID() {
		return fmt.Errorf("simnet: restart with ID %d on host %d", cfg.ID, h.Node.ID())
	}
	if !h.hasState {
		return fmt.Errorf("simnet: host %d has no persisted state", h.Node.ID())
	}
	return h.restartFrom(cfg, h.persisted)
}

// RestartFrom revives a crashed host from an explicitly transferred
// persisted state instead of its own — the graceful-handoff path: a
// departing peer hands its raft.PersistentState (and model checkpoint)
// to a successor process, which resumes the same logical node without
// replaying history. cfg supplies timing parameters; its ID must match.
func (h *Host) RestartFrom(cfg raft.Config, ps raft.PersistentState) error {
	if !h.down {
		return fmt.Errorf("simnet: host %d is not down", h.Node.ID())
	}
	if cfg.ID != h.Node.ID() {
		return fmt.Errorf("simnet: restart with ID %d on host %d", cfg.ID, h.Node.ID())
	}
	return h.restartFrom(cfg, ps)
}

func (h *Host) restartFrom(cfg raft.Config, ps raft.PersistentState) error {
	node, err := raft.Restore(cfg, ps)
	if err != nil {
		return err
	}
	h.persisted = ps
	h.hasState = true
	h.Node = node
	h.down = false
	h.lastState, h.lastTerm, h.lastLeader = raft.Follower, node.Term(), raft.None
	h.group.scheduleTick(h)
	return nil
}

// Pump drains the node's Ready set: messages are scheduled for delivery
// with the group latency, commits and state changes fire callbacks.
func (h *Host) Pump() {
	if !h.Node.HasPending() && !h.stateChanged() {
		return
	}
	rd := h.Node.Ready()
	// Persist before the messages "hit the wire", as Raft requires.
	h.persisted = h.Node.Persist()
	h.hasState = true
	for _, m := range rd.Messages {
		h.group.deliver(m)
	}
	if rd.InstalledSnapshot != nil && h.OnSnapshot != nil {
		h.OnSnapshot(rd.InstalledSnapshot)
	}
	if h.OnCommit != nil {
		for _, e := range rd.Committed {
			h.OnCommit(e)
		}
	}
	h.noteState(rd.State, rd.Term, rd.Leader)
}

func (h *Host) stateChanged() bool {
	return h.Node.State() != h.lastState || h.Node.Term() != h.lastTerm || h.Node.Leader() != h.lastLeader
}

func (h *Host) noteState(st raft.State, term, leader uint64) {
	if st == h.lastState && term == h.lastTerm && leader == h.lastLeader {
		return
	}
	h.lastState, h.lastTerm, h.lastLeader = st, term, leader
	if h.OnStateChange != nil {
		h.OnStateChange(st, term, leader)
	}
}

// Partition splits the group: messages only flow between hosts on the
// same side. Call Heal to reconnect.
func (g *Group) Partition(side map[uint64]bool) {
	g.LinkFilter = func(from, to uint64) bool { return side[from] == side[to] }
}

// Heal removes any partition or custom link filter.
func (g *Group) Heal() { g.LinkFilter = nil }

// Calm removes every injected network fault at once: partitions, message
// filters, loss and jitter. Fault campaigns call it when a schedule
// quiesces so liveness can be checked on a clean network.
func (g *Group) Calm() {
	g.LinkFilter = nil
	g.DropFilter = nil
	g.LossRate = 0
	g.Jitter = 0
}

// OfferedTraffic returns the number of messages hosts handed to the
// network and their total wire-frame bytes.
func (g *Group) OfferedTraffic() (msgs, bytes int64) {
	return g.offeredMsgs, g.offeredBytes
}

// DroppedTraffic returns the messages (and wire-frame bytes) lost to
// partitions, filters and random loss before delivery was scheduled.
func (g *Group) DroppedTraffic() (msgs, bytes int64) {
	return g.droppedMsgs, g.droppedBytes
}

func (g *Group) deliver(m raft.Message) {
	frame := int64(wire.RaftFrameSize(m))
	g.offeredMsgs++
	g.offeredBytes += frame
	if g.LinkFilter != nil && !g.LinkFilter(m.From, m.To) {
		g.droppedMsgs++
		g.droppedBytes += frame
		return
	}
	if g.DropFilter != nil && g.DropFilter(m) {
		g.droppedMsgs++
		g.droppedBytes += frame
		return
	}
	if g.LossRate > 0 && g.rng.Float64() < g.LossRate {
		g.droppedMsgs++
		g.droppedBytes += frame
		return
	}
	var delay Duration
	if g.Topo != nil {
		delay = g.Topo.SampleDelay(m.From, m.To, g.rng)
	} else {
		delay = g.Latency
	}
	if g.Jitter > 0 {
		delay += Duration(g.rng.Int63n(int64(g.Jitter)))
	}
	g.sim.Schedule(delay, func() {
		dst, ok := g.hosts[m.To]
		if !ok || dst.down {
			return
		}
		if g.OnDeliver != nil {
			g.OnDeliver(m, delay)
		}
		if dst.OnMessage != nil {
			dst.OnMessage(m)
		}
		if err := dst.Node.Step(m); err != nil {
			return
		}
		dst.Pump()
	})
}
