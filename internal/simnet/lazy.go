package simnet

import (
	"fmt"

	"repro/internal/telemetry"
)

// Fleet is a lazily materialized peer population for massive-scale
// simulations. A 100k–1M peer run cannot afford an up-front host,
// detector, and gauge per peer: most peers in any one scenario never do
// anything. A Fleet therefore allocates nothing per peer at creation —
// a PeerState materializes on the first event that touches it, and
// per-peer telemetry instruments only exist for peers the Sampler
// admits. Fleet-wide counters (events, materializations) are always on.
//
// Fleet is driven entirely from the Sim's event loop and is not
// goroutine-safe, matching the rest of the package.
type Fleet struct {
	sim     *Sim
	n       int
	states  map[int]*PeerState
	init    func(*PeerState)
	sampler telemetry.Sampler

	reg          *telemetry.Registry
	events       *telemetry.Counter
	materialized *telemetry.Gauge
}

// PeerState is one materialized peer. State carries whatever the caller
// hangs off the peer (host handle, detector, model shard); the Fleet
// itself only tracks identity and activity.
type PeerState struct {
	ID     int
	Born   Time  // virtual time of materialization
	Events int64 // events delivered to this peer
	State  any

	gauge *telemetry.Gauge // per-peer event gauge; nil if unsampled
}

// FleetOptions configures NewFleet.
type FleetOptions struct {
	// Telemetry enables instrumentation (nil: none).
	Telemetry *telemetry.Registry
	// SampleThreshold is the population above which per-peer gauges are
	// sampled instead of universal; 0 uses 10000.
	SampleThreshold int
	// SampleEvery is the sampling stride above the threshold; 0 uses 1000.
	SampleEvery int
	// Init, when set, runs once per peer at materialization — the hook
	// where callers build the peer's host/detector state on demand.
	Init func(*PeerState)
}

// NewFleet creates a fleet of n virtual peers with no per-peer
// allocation: memory is O(materialized), not O(n).
func NewFleet(sim *Sim, n int, opts FleetOptions) (*Fleet, error) {
	if sim == nil {
		return nil, fmt.Errorf("simnet: fleet needs a sim")
	}
	if n < 1 {
		return nil, fmt.Errorf("simnet: fleet size %d", n)
	}
	threshold := opts.SampleThreshold
	if threshold == 0 {
		threshold = 10000
	}
	every := opts.SampleEvery
	if every == 0 {
		every = 1000
	}
	f := &Fleet{
		sim:     sim,
		n:       n,
		states:  make(map[int]*PeerState),
		init:    opts.Init,
		sampler: telemetry.Sampler{Threshold: threshold, Every: every},
		reg:     opts.Telemetry,
	}
	if f.reg != nil {
		f.events = f.reg.Counter("fleet/events_total")
		f.materialized = f.reg.Gauge("fleet/materialized")
	}
	return f, nil
}

// Len returns the fleet's virtual population.
func (f *Fleet) Len() int { return f.n }

// Materialized returns how many peers have real state.
func (f *Fleet) Materialized() int { return len(f.states) }

// Sampled reports whether peer i carries per-peer telemetry.
func (f *Fleet) Sampled(i int) bool { return f.sampler.Sample(i, f.n) }

// Lookup returns peer i's state without materializing it (nil if the
// peer has never been touched).
func (f *Fleet) Lookup(i int) *PeerState { return f.states[i] }

// Peer returns peer i's state, materializing it on first touch.
func (f *Fleet) Peer(i int) (*PeerState, error) {
	if i < 0 || i >= f.n {
		return nil, fmt.Errorf("simnet: peer %d out of [0,%d)", i, f.n)
	}
	if p, ok := f.states[i]; ok {
		return p, nil
	}
	p := &PeerState{ID: i, Born: f.sim.Now()}
	if f.reg != nil && f.sampler.Sample(i, f.n) {
		p.gauge = f.reg.Gauge(fmt.Sprintf("fleet/peer%d/events", i))
	}
	f.states[i] = p
	if f.materialized != nil {
		f.materialized.Set(float64(len(f.states)))
	}
	if f.init != nil {
		f.init(p)
	}
	return p, nil
}

// Schedule queues fn against peer i after the given delay. The peer
// materializes when the event fires, not when it is scheduled, so a
// cancelled future (an event past the horizon the caller runs to) costs
// nothing.
func (f *Fleet) Schedule(i int, after Duration, fn func(*PeerState)) error {
	if i < 0 || i >= f.n {
		return fmt.Errorf("simnet: peer %d out of [0,%d)", i, f.n)
	}
	f.sim.Schedule(after, func() {
		p, err := f.Peer(i)
		if err != nil {
			return // bounds re-checked above; unreachable
		}
		p.Events++
		if f.events != nil {
			f.events.Inc()
		}
		if p.gauge != nil {
			p.gauge.Set(float64(p.Events))
		}
		if fn != nil {
			fn(p)
		}
	})
	return nil
}
