package simnet

import (
	"testing"

	"repro/internal/raft"
	"repro/internal/wire"
)

// trafficRun drives one 5-node cluster with loss and jitter through an
// election plus a stable period and returns the traffic counters.
func trafficRun(t *testing.T, seed int64) (om, ob, dm, db int64) {
	t.Helper()
	sim := New()
	g := newGroupCluster(t, sim, 5, 50, 100, 15*Millisecond, seed)
	g.LossRate = 0.1
	g.Jitter = 2 * Millisecond
	if !sim.RunWhileNot(func() bool { return g.Leader() != raft.None }, Time(5*Second)) {
		t.Fatal("no leader within 5 virtual seconds")
	}
	sim.RunFor(500 * Millisecond)
	om, ob = g.OfferedTraffic()
	dm, db = g.DroppedTraffic()
	return om, ob, dm, db
}

// TestGroupTrafficDeterministic: byte accounting is part of the
// simulator's deterministic surface — two runs with the same seed must
// report identical traffic down to the byte, and the counts must be
// plausible (heartbeats flowing, loss actually dropping some frames).
func TestGroupTrafficDeterministic(t *testing.T) {
	om1, ob1, dm1, db1 := trafficRun(t, 7)
	om2, ob2, dm2, db2 := trafficRun(t, 7)
	if om1 != om2 || ob1 != ob2 || dm1 != dm2 || db1 != db2 {
		t.Fatalf("same seed, different traffic: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			om1, ob1, dm1, db1, om2, ob2, dm2, db2)
	}
	if om1 == 0 || ob1 == 0 {
		t.Fatal("no traffic recorded for a live cluster")
	}
	if dm1 == 0 {
		t.Fatal("10% loss dropped nothing across a 500ms window")
	}
	if dm1 >= om1 || db1 >= ob1 {
		t.Fatalf("dropped (%d msgs/%d B) must be a strict subset of offered (%d msgs/%d B)", dm1, db1, om1, ob1)
	}
	// A different seed must still produce traffic (and, with jittered
	// elections, almost surely a different amount — but that is not a
	// contract worth flaking on).
	om3, ob3, _, _ := trafficRun(t, 8)
	if om3 == 0 || ob3 == 0 {
		t.Fatal("no traffic on second seed")
	}
}

// TestGroupTrafficMatchesFrameSizes cross-checks the accounting unit on
// a lossless two-node group: offered bytes must equal the sum of
// wire.RaftFrameSize over every delivered message — the exact bytes
// RaftTCP would write per message. Zero latency keeps send and delivery
// at the same virtual timestamp, so nothing is in flight when the run
// stops and the two tallies must agree exactly.
func TestGroupTrafficMatchesFrameSizes(t *testing.T) {
	sim := New()
	g := newGroupCluster(t, sim, 2, 50, 100, 0, 3)
	var want int64
	var seen int64
	for _, id := range g.IDs() {
		g.Host(id).OnMessage = func(m raft.Message) {
			want += int64(wire.RaftFrameSize(m))
			seen++
		}
	}
	if !sim.RunWhileNot(func() bool { return g.Leader() != raft.None }, Time(5*Second)) {
		t.Fatal("no leader")
	}
	sim.RunFor(300 * Millisecond)
	if dm, _ := g.DroppedTraffic(); dm != 0 {
		t.Fatalf("lossless group dropped %d messages", dm)
	}
	om, ob := g.OfferedTraffic()
	if om != seen {
		t.Fatalf("offered %d messages, observed %d deliveries", om, seen)
	}
	if ob != want {
		t.Fatalf("offered %d bytes, Σ RaftFrameSize = %d", ob, want)
	}
}
