package simnet

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// This file is the WAN/multi-region latency model. The paper's testbed
// injects one uniform 15 ms delay on every link; a production fleet
// spans regions whose pairwise delays are asymmetric (routing is not)
// and whose jitter is heavy-tailed (queueing is lognormal-ish, not
// uniform). A Topology names regions, assigns hosts to them, and gives
// every ordered region pair its own base delay and jitter distribution.
// Groups without a Topology keep the legacy uniform Latency/Jitter pair
// byte-for-byte: the zero value changes nothing.

// JitterKind selects a per-link jitter distribution.
type JitterKind int

// Jitter distributions.
const (
	// JitterNone adds no jitter (and consumes no randomness).
	JitterNone JitterKind = iota
	// JitterUniform adds U(0, Bound) — the legacy Group.Jitter shape.
	JitterUniform
	// JitterLognormal adds exp(N(ln Median, Sigma²)), clamped to Max —
	// the heavy-tailed shape of real WAN queueing delay.
	JitterLognormal
)

// String implements fmt.Stringer.
func (k JitterKind) String() string {
	switch k {
	case JitterNone:
		return "none"
	case JitterUniform:
		return "uniform"
	case JitterLognormal:
		return "lognormal"
	default:
		return fmt.Sprintf("jitter(%d)", int(k))
	}
}

// JitterSpec parameterizes one link's jitter distribution.
type JitterSpec struct {
	Kind JitterKind
	// Bound is the exclusive upper bound for JitterUniform.
	Bound Duration
	// Median and Sigma shape JitterLognormal: the sampled jitter's
	// median is Median and ln(jitter) has standard deviation Sigma.
	Median Duration
	Sigma  float64
	// Max clamps JitterLognormal samples (0: 20× Median). The clamp
	// keeps the tail heavy but bounded, so liveness bounds stay finite.
	Max Duration
}

// sample draws one jitter value. The rng consumption is part of the
// deterministic-replay contract: JitterNone consumes nothing,
// JitterUniform consumes exactly one Int63n (matching the legacy
// Group.Jitter path), JitterLognormal consumes one NormFloat64.
func (j JitterSpec) sample(rng *rand.Rand) Duration {
	switch j.Kind {
	case JitterUniform:
		if j.Bound <= 0 {
			return 0
		}
		return Duration(rng.Int63n(int64(j.Bound)))
	case JitterLognormal:
		if j.Median <= 0 {
			return 0
		}
		v := float64(j.Median) * math.Exp(j.Sigma*rng.NormFloat64())
		max := j.Max
		if max <= 0 {
			max = 20 * j.Median
		}
		if v > float64(max) {
			v = float64(max)
		}
		return Duration(v)
	default:
		return 0
	}
}

// Link is one ordered region pair's delay model: a fixed base delay plus
// a jitter distribution.
type Link struct {
	Delay  Duration
	Jitter JitterSpec
}

// Topology is a named multi-region latency model: an asymmetric
// region×region delay matrix with per-link jitter. Hosts map to regions
// explicitly (Assign) or, by default, round-robin over the region list
// by host ID — deterministic and balanced for the 1..n IDs the
// simulated groups use.
type Topology struct {
	Name    string
	regions []string
	links   [][]Link // [fromRegion][toRegion]
	hosts   map[uint64]int
}

// NewTopology creates a topology over the given regions with all links
// zero-delay; fill them in with SetLink/SetAllLinks.
func NewTopology(name string, regions ...string) (*Topology, error) {
	if len(regions) == 0 {
		return nil, fmt.Errorf("simnet: topology %q needs at least one region", name)
	}
	seen := map[string]bool{}
	for _, r := range regions {
		if r == "" || seen[r] {
			return nil, fmt.Errorf("simnet: topology %q has empty or duplicate region %q", name, r)
		}
		seen[r] = true
	}
	t := &Topology{
		Name:    name,
		regions: append([]string(nil), regions...),
		links:   make([][]Link, len(regions)),
		hosts:   make(map[uint64]int),
	}
	for i := range t.links {
		t.links[i] = make([]Link, len(regions))
	}
	return t, nil
}

// Regions returns the region names in declaration order.
func (t *Topology) Regions() []string { return append([]string(nil), t.regions...) }

func (t *Topology) regionIndex(region string) (int, error) {
	for i, r := range t.regions {
		if r == region {
			return i, nil
		}
	}
	return 0, fmt.Errorf("simnet: topology %q has no region %q", t.Name, region)
}

// SetLink sets the delay model for the ordered pair from→to. Asymmetric
// matrices are the point: SetLink(a, b, …) does not touch b→a.
func (t *Topology) SetLink(from, to string, l Link) error {
	fi, err := t.regionIndex(from)
	if err != nil {
		return err
	}
	ti, err := t.regionIndex(to)
	if err != nil {
		return err
	}
	t.links[fi][ti] = l
	return nil
}

// SetAllLinks sets every ordered pair (including self-pairs) to l.
func (t *Topology) SetAllLinks(l Link) {
	for i := range t.links {
		for j := range t.links[i] {
			t.links[i][j] = l
		}
	}
}

// Assign pins a host to a region, overriding the default round-robin
// placement.
func (t *Topology) Assign(host uint64, region string) error {
	ri, err := t.regionIndex(region)
	if err != nil {
		return err
	}
	t.hosts[host] = ri
	return nil
}

// regionOf resolves a host's region index: explicit assignment first,
// else round-robin by ID (host 1 → region 0, host 2 → region 1, …).
func (t *Topology) regionOf(host uint64) int {
	if ri, ok := t.hosts[host]; ok {
		return ri
	}
	if host == 0 {
		return 0
	}
	return int((host - 1) % uint64(len(t.regions)))
}

// RegionOf returns the region name a host resolves to.
func (t *Topology) RegionOf(host uint64) string { return t.regions[t.regionOf(host)] }

// LinkOf returns the delay model governing messages from→to.
func (t *Topology) LinkOf(from, to uint64) Link {
	return t.links[t.regionOf(from)][t.regionOf(to)]
}

// SampleDelay draws one delivery delay for a from→to message: the
// link's base delay plus one jitter sample.
func (t *Topology) SampleDelay(from, to uint64, rng *rand.Rand) Duration {
	l := t.LinkOf(from, to)
	return l.Delay + l.Jitter.sample(rng)
}

// RTT returns the base (jitter-free) round-trip time between two hosts:
// the a→b delay plus the b→a delay.
func (t *Topology) RTT(a, b uint64) Duration {
	return t.LinkOf(a, b).Delay + t.LinkOf(b, a).Delay
}

// MaxRTT returns the largest base RTT over all ordered host pairs — the
// number timeout bounds are stated against.
func (t *Topology) MaxRTT(hosts []uint64) Duration {
	var max Duration
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			if rtt := t.RTT(a, b); rtt > max {
				max = rtt
			}
		}
	}
	return max
}

// Uniform builds a single-region topology equivalent to the legacy
// Group.Latency/Group.Jitter pair: every message is delayed by latency
// plus U(0, jitter). With equal seeds it consumes the group rng
// identically to the legacy path, so the two are byte-for-byte
// interchangeable.
func Uniform(latency, jitter Duration) *Topology {
	t, err := NewTopology("uniform", "local")
	if err != nil {
		panic(err) // one non-empty region cannot fail
	}
	l := Link{Delay: latency}
	if jitter > 0 {
		l.Jitter = JitterSpec{Kind: JitterUniform, Bound: jitter}
	}
	t.SetAllLinks(l)
	return t
}

// wan50 builds the 50 ms-RTT three-region profile: asymmetric
// inter-region one-way delays of 21–30 ms (RTTs of 44–56 ms, like
// cross-cloud us-east↔eu-west↔ap-south routes), ~1 ms intra-region
// delay, and heavy-tailed lognormal jitter (σ=1.6, clamped at 250 ms —
// transient cross-continent congestion). The tail is calibrated so
// that runs of delayed heartbeats occasionally starve a follower past
// the paper-default 50-tick election timeout — the exact conditions
// under which stock Raft fires spurious elections on a WAN — while
// staying far under the ~10×RTT timeouts the self-tuning loop derives.
func wan50() *Topology {
	t, err := NewTopology("wan50", "us-east", "eu-west", "ap-south")
	if err != nil {
		panic(err)
	}
	intra := JitterSpec{Kind: JitterLognormal, Median: 200 * Microsecond, Sigma: 0.5, Max: 2 * Millisecond}
	inter := JitterSpec{Kind: JitterLognormal, Median: 3 * Millisecond, Sigma: 1.6, Max: 250 * Millisecond}
	for _, r := range t.regions {
		if err := t.SetLink(r, r, Link{Delay: 1 * Millisecond, Jitter: intra}); err != nil {
			panic(err)
		}
	}
	for _, e := range []struct {
		from, to string
		delay    Duration
	}{
		{"us-east", "eu-west", 24 * Millisecond},
		{"eu-west", "us-east", 27 * Millisecond},
		{"us-east", "ap-south", 30 * Millisecond},
		{"ap-south", "us-east", 26 * Millisecond},
		{"eu-west", "ap-south", 21 * Millisecond},
		{"ap-south", "eu-west", 23 * Millisecond},
	} {
		if err := t.SetLink(e.from, e.to, Link{Delay: e.delay, Jitter: inter}); err != nil {
			panic(err)
		}
	}
	return t
}

// wan200 builds a harsher two-region intercontinental profile: ~100 ms
// one-way delays (200 ms RTT) with heavy lognormal jitter — the regime
// where even generous static timeouts misfire and only RTT-derived
// tuning stays quiet.
func wan200() *Topology {
	t, err := NewTopology("wan200", "us-west", "ap-southeast")
	if err != nil {
		panic(err)
	}
	intra := JitterSpec{Kind: JitterLognormal, Median: 300 * Microsecond, Sigma: 0.6, Max: 3 * Millisecond}
	inter := JitterSpec{Kind: JitterLognormal, Median: 5 * Millisecond, Sigma: 1.2, Max: 150 * Millisecond}
	for _, r := range t.regions {
		if err := t.SetLink(r, r, Link{Delay: 1 * Millisecond, Jitter: intra}); err != nil {
			panic(err)
		}
	}
	if err := t.SetLink("us-west", "ap-southeast", Link{Delay: 96 * Millisecond, Jitter: inter}); err != nil {
		panic(err)
	}
	if err := t.SetLink("ap-southeast", "us-west", Link{Delay: 104 * Millisecond, Jitter: inter}); err != nil {
		panic(err)
	}
	return t
}

// presets maps topology names to constructors. Each call builds a fresh
// Topology so callers can Assign hosts without aliasing.
var presets = map[string]func() *Topology{
	"lan15":  func() *Topology { t := Uniform(15*Millisecond, 0); t.Name = "lan15"; return t },
	"wan50":  wan50,
	"wan200": wan200,
}

// Preset returns a fresh copy of a named topology: "lan15" (the paper's
// uniform 15 ms), "wan50" (three regions, ~50 ms RTTs, lognormal
// jitter), "wan200" (two regions, ~200 ms RTT).
func Preset(name string) (*Topology, error) {
	mk, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("simnet: unknown topology %q (have %v)", name, PresetNames())
	}
	return mk(), nil
}

// PresetNames lists the available topology presets, sorted.
func PresetNames() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
