package simnet

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/raft"
	"repro/internal/telemetry"
)

func TestTopologyAsymmetricDelays(t *testing.T) {
	topo, err := Preset("wan50")
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin placement: host 1 → us-east, host 2 → eu-west.
	if r := topo.RegionOf(1); r != "us-east" {
		t.Fatalf("host 1 region = %q", r)
	}
	if r := topo.RegionOf(2); r != "eu-west" {
		t.Fatalf("host 2 region = %q", r)
	}
	// Asymmetry is the point: the two directions of one pair differ.
	ab := topo.LinkOf(1, 2).Delay
	ba := topo.LinkOf(2, 1).Delay
	if ab == ba {
		t.Fatalf("us-east↔eu-west delays symmetric (%v) — topology must model asymmetric routes", ab)
	}
	if got := topo.RTT(1, 2); got != ab+ba {
		t.Fatalf("RTT(1,2) = %v, want %v", got, ab+ba)
	}
	// Explicit assignment overrides round-robin.
	if err := topo.Assign(2, "us-east"); err != nil {
		t.Fatal(err)
	}
	if d := topo.LinkOf(1, 2).Delay; d != topo.LinkOf(1, 1).Delay {
		t.Fatalf("after Assign, 1→2 should ride the intra-region link, got %v", d)
	}
	if err := topo.Assign(3, "no-such-region"); err == nil {
		t.Fatal("Assign to unknown region succeeded")
	}
}

func TestLognormalJitterDeterministic(t *testing.T) {
	spec := JitterSpec{Kind: JitterLognormal, Median: 3 * Millisecond, Sigma: 1.6, Max: 250 * Millisecond}
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for i := 0; i < 10_000; i++ {
		sa, sb := spec.sample(a), spec.sample(b)
		if sa != sb {
			t.Fatalf("draw %d: equal-seed lognormal samples differ: %v vs %v", i, sa, sb)
		}
		if sa < 0 || sa > 250*Millisecond {
			t.Fatalf("draw %d: sample %v outside [0, Max]", i, sa)
		}
	}
	// The default clamp is 20× the median.
	unclamped := JitterSpec{Kind: JitterLognormal, Median: Millisecond, Sigma: 3}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10_000; i++ {
		if s := unclamped.sample(rng); s > 20*Millisecond {
			t.Fatalf("draw %d: sample %v above the default 20×Median clamp", i, s)
		}
	}
}

// TestJitterRNGConsumption pins the rng-consumption contract replay
// depends on: none draws nothing, uniform draws exactly one Int63n,
// lognormal exactly one NormFloat64. If a refactor changed the draw
// count, every seeded WAN run in the repo would silently reshuffle.
func TestJitterRNGConsumption(t *testing.T) {
	next := func(rng *rand.Rand) int64 { return rng.Int63() }

	a, b := rand.New(rand.NewSource(5)), rand.New(rand.NewSource(5))
	JitterSpec{}.sample(a)
	if next(a) != next(b) {
		t.Fatal("JitterNone consumed randomness")
	}

	a, b = rand.New(rand.NewSource(5)), rand.New(rand.NewSource(5))
	JitterSpec{Kind: JitterUniform, Bound: Millisecond}.sample(a)
	b.Int63n(int64(Millisecond))
	if next(a) != next(b) {
		t.Fatal("JitterUniform did not consume exactly one Int63n")
	}

	a, b = rand.New(rand.NewSource(5)), rand.New(rand.NewSource(5))
	JitterSpec{Kind: JitterLognormal, Median: Millisecond, Sigma: 1}.sample(a)
	b.NormFloat64()
	if next(a) != next(b) {
		t.Fatal("JitterLognormal did not consume exactly one NormFloat64")
	}
}

// runTelemetrySnapshot drives a 5-node raft group for five virtual
// seconds with a leader kill in the middle, and returns the telemetry
// snapshot plus the final leader — the replay fingerprint.
func runTelemetrySnapshot(t *testing.T, configure func(*Group)) ([]byte, uint64) {
	t.Helper()
	sim := New()
	reg := telemetry.New()
	reg.SetClock(func() int64 { return int64(sim.Now()) })
	g := NewGroup(sim, "fingerprint", 0, rand.New(rand.NewSource(99)))
	configure(g)
	ids := []uint64{1, 2, 3, 4, 5}
	for _, id := range ids {
		node, err := raft.NewNode(raft.Config{
			ID: id, Peers: ids,
			ElectionTickMin: 50, ElectionTickMax: 100, HeartbeatTick: 15,
			Rng:       rand.New(rand.NewSource(99*100 + int64(id))),
			Telemetry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Add(node); err != nil {
			t.Fatal(err)
		}
	}
	if !sim.RunWhileNot(func() bool { return g.Leader() != raft.None }, Time(2*Second)) {
		t.Fatal("no leader within 2 virtual seconds")
	}
	first := g.Leader()
	g.Host(first).Crash()
	sim.RunFor(5 * Second)
	snap, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return snap, g.Leader()
}

// TestUniformTopologyMatchesLegacyPath: the Uniform(latency, jitter)
// topology must be byte-for-byte interchangeable with the legacy
// Group.Latency/Group.Jitter pair — same rng draws, same delivery
// times, so equal seeds yield identical telemetry snapshots and the
// same elected leaders. This is the zero-cost guarantee that lets the
// topology plumbing exist without invalidating any pinned seed.
func TestUniformTopologyMatchesLegacyPath(t *testing.T) {
	legacySnap, legacyLeader := runTelemetrySnapshot(t, func(g *Group) {
		g.Latency = 15 * Millisecond
		g.Jitter = 5 * Millisecond
	})
	topoSnap, topoLeader := runTelemetrySnapshot(t, func(g *Group) {
		g.Topo = Uniform(15*Millisecond, 5*Millisecond)
	})
	if legacyLeader != topoLeader {
		t.Fatalf("leaders diverge: legacy %d vs topology %d", legacyLeader, topoLeader)
	}
	if string(legacySnap) != string(topoSnap) {
		t.Fatalf("equal-seed telemetry snapshots diverge:\nlegacy: %s\ntopo:   %s", legacySnap, topoSnap)
	}
}

func TestPresetFreshCopies(t *testing.T) {
	a, err := Preset("wan50")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Preset("wan50")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("Preset returned a shared pointer")
	}
	if err := a.Assign(1, "ap-south"); err != nil {
		t.Fatal(err)
	}
	if b.RegionOf(1) != "us-east" {
		t.Fatal("Assign on one preset copy leaked into another")
	}
	if _, err := Preset("wan9000"); err == nil {
		t.Fatal("unknown preset name succeeded")
	}
	names := PresetNames()
	want := []string{"lan15", "wan200", "wan50"}
	if len(names) != len(want) {
		t.Fatalf("PresetNames = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("PresetNames = %v, want %v", names, want)
		}
	}
}
