package wire

import (
	"fmt"
	"io"
)

// Mesh payload layout (inside a KindMesh frame), version 1 — one SAC
// mesh message (share, subtotal, recovery request/response):
//
//	from      i64 (two's complement in a u64 word)
//	to        i64
//	shareIdx  i64
//	kind      string (u32 length + bytes)
//	payload   float64 vector (u32 count + count·8 bytes LE)
//
// MeshMessage mirrors transport.Message field for field; the transport
// package converts (it imports wire, so wire cannot import it back).
type MeshMessage struct {
	From, To int
	Kind     string
	ShareIdx int
	Payload  []float64
}

// MeshPayloadSize returns the exact encoded payload size of a mesh
// message with the given kind string and payload element count.
func MeshPayloadSize(kind string, payloadLen int) int {
	return 3*8 + 4 + len(kind) + Float64sSize(payloadLen)
}

// MeshFrameSize returns the exact on-wire frame size, header included.
func MeshFrameSize(kind string, payloadLen int) int {
	return HeaderSize + MeshPayloadSize(kind, payloadLen)
}

// AppendMeshFrame appends a complete frame for one mesh message.
func AppendMeshFrame(dst []byte, m MeshMessage) []byte {
	dst = AppendHeader(dst, KindMesh, MeshPayloadSize(m.Kind, len(m.Payload)))
	dst = appendUint64(dst, uint64(int64(m.From)))
	dst = appendUint64(dst, uint64(int64(m.To)))
	dst = appendUint64(dst, uint64(int64(m.ShareIdx)))
	dst = appendString(dst, m.Kind)
	return AppendFloat64s(dst, m.Payload)
}

// DecodeMeshPayload decodes a KindMesh payload. The kind string and
// payload vector are copied out of b.
func DecodeMeshPayload(b []byte) (MeshMessage, error) {
	var m MeshMessage
	u, b, err := readUint64(b)
	if err != nil {
		return m, err
	}
	m.From = int(int64(u))
	if u, b, err = readUint64(b); err != nil {
		return m, err
	}
	m.To = int(int64(u))
	if u, b, err = readUint64(b); err != nil {
		return m, err
	}
	m.ShareIdx = int(int64(u))
	if m.Kind, b, err = readString(b); err != nil {
		return m, err
	}
	if m.Payload, b, err = ReadFloat64s(b, nil); err != nil {
		return m, err
	}
	if len(b) != 0 {
		return m, fmt.Errorf("%w: %d trailing bytes after mesh payload", ErrBadFrame, len(b))
	}
	return m, nil
}

// ReadMeshFrame reads one complete mesh frame from r, reusing scratch
// as the payload read buffer.
func ReadMeshFrame(r io.Reader, scratch []byte) (MeshMessage, []byte, error) {
	kind, payload, scratch, err := readFrame(r, scratch)
	if err != nil {
		return MeshMessage{}, scratch, err
	}
	if kind != KindMesh {
		return MeshMessage{}, scratch, fmt.Errorf("%w: kind %s, want %s", ErrBadFrame, kind, KindMesh)
	}
	m, err := DecodeMeshPayload(payload)
	return m, scratch, err
}
