package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"repro/internal/raft"
)

// Adversarial-frame suite: every decoder must survive hostile input —
// lying length fields, bit-flipped headers and payloads, truncated float
// blocks — by returning an error (or, for semantically harmless payload
// flips, a different message), never by panicking or allocating on the
// attacker's say-so. Run under -race via make race.

func hostileSamples() map[string][]byte {
	mesh := AppendMeshFrame(nil, MeshMessage{
		From: 3, To: 1, Kind: "sac/share", ShareIdx: 2,
		Payload: []float64{1.5, -2.25, 1e9, 0.125},
	})
	rft := AppendRaftFrame(nil, raft.Message{
		Type: raft.MsgAppend, From: 1, To: 5, Term: 7, PrevLogIndex: 10, PrevLogTerm: 6, Commit: 9,
		Entries:  []raft.Entry{{Index: 11, Term: 7, Data: []byte("cmd")}, {Index: 12, Term: 7}},
		Snapshot: &raft.Snapshot{Index: 10, Term: 6, Peers: []uint64{1, 2, 5}, Data: []byte("snap")},
	})
	cp := AppendCheckpointFrame(nil, Checkpoint{
		Names: []string{"w0", "b0"}, Sizes: []int{3, 1},
		Weights: []float64{0.5, -0.5, 1, 2},
	})
	return map[string][]byte{"mesh": mesh, "raft": rft, "checkpoint": cp}
}

// decodeFrame drives the full io.Reader path for the sample's kind.
func decodeFrame(kind string, b []byte) error {
	r := bytes.NewReader(b)
	switch kind {
	case "mesh":
		_, _, err := ReadMeshFrame(r, nil)
		return err
	case "raft":
		_, _, err := ReadRaftFrame(r, nil)
		return err
	default:
		_, err := ReadCheckpointFrame(r)
		return err
	}
}

// TestBitFlipSweepNeverPanics flips every single bit of every valid
// frame and decodes the result: any outcome is acceptable except a
// panic. Header flips must error (magic, version, reserved bytes and
// length are all load-bearing); payload flips may legitimately decode
// to a different message.
func TestBitFlipSweepNeverPanics(t *testing.T) {
	for kind, frame := range hostileSamples() {
		for i := range frame {
			for bit := 0; bit < 8; bit++ {
				mutated := append([]byte(nil), frame...)
				mutated[i] ^= 1 << bit
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("%s: flip byte %d bit %d: panic %v", kind, i, bit, r)
						}
					}()
					err := decodeFrame(kind, mutated)
					if i < 8 && err == nil {
						// Magic, version, kind or reserved byte flipped:
						// the header validator must reject (a kind flip
						// decodes as the wrong frame type, also an error).
						t.Fatalf("%s: header flip byte %d bit %d accepted", kind, i, bit)
					}
				}()
			}
		}
	}
}

// TestEveryTruncationErrors streams every strict prefix of every valid
// frame: all must error cleanly, including cuts inside float blocks,
// entry batches and the snapshot peer list.
func TestEveryTruncationErrors(t *testing.T) {
	for kind, frame := range hostileSamples() {
		for i := 0; i < len(frame); i++ {
			if err := decodeFrame(kind, frame[:i]); err == nil {
				t.Fatalf("%s: %d-byte prefix of %d-byte frame accepted", kind, i, len(frame))
			}
		}
	}
}

// lieLength rewrites the header's payload-length field.
func lieLength(frame []byte, n uint32) []byte {
	out := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(out[8:12], n)
	return out
}

// TestLengthFieldLies covers both directions of a forged length: a
// shorter claim leaves trailing payload bytes (rejected), a longer claim
// starves the reader (rejected), and an absurd claim must not translate
// into an absurd allocation.
func TestLengthFieldLies(t *testing.T) {
	for kind, frame := range hostileSamples() {
		truth := binary.LittleEndian.Uint32(frame[8:12])
		for _, lie := range []uint32{0, truth - 1, truth + 1, truth * 2, MaxPayload} {
			if lie == truth {
				continue
			}
			if err := decodeFrame(kind, lieLength(frame, lie)); err == nil {
				t.Fatalf("%s: length lie %d (truth %d) accepted", kind, lie, truth)
			}
		}
	}
}

// shortStream yields a valid header claiming `claim` payload bytes but
// delivers only `deliver` of them before EOF.
func shortStream(claim uint32, deliver int) io.Reader {
	b := AppendHeader(nil, KindMesh, 0)
	binary.LittleEndian.PutUint32(b[8:12], claim)
	return bytes.NewReader(append(b, make([]byte, deliver)...))
}

// TestLyingLengthBoundsAllocation is the over-allocation guard: a header
// claiming MaxPayload on a nearly empty stream must fail with the read
// buffer still at the prealloc cap — the attacker's 12 bytes cannot buy
// a gigabyte of our memory.
func TestLyingLengthBoundsAllocation(t *testing.T) {
	_, scratch, err := ReadMeshFrame(shortStream(MaxPayload, 100), nil)
	if err == nil {
		t.Fatal("starved frame accepted")
	}
	if cap(scratch) > framePrealloc {
		t.Fatalf("lying header drove allocation to %d bytes (cap %d)", cap(scratch), framePrealloc)
	}

	// With real bytes arriving, growth must track what was actually
	// received (geometric, ≤ 2×), not the claim.
	const delivered = 200 << 10
	_, scratch, err = ReadMeshFrame(shortStream(MaxPayload, delivered), nil)
	if err == nil {
		t.Fatal("starved frame accepted")
	}
	if cap(scratch) > 2*delivered {
		t.Fatalf("allocation %d not bounded by twice the %d delivered bytes", cap(scratch), delivered)
	}
}

// TestHonestLargeFrameStillDecodes pins the other side of the prealloc
// cap: a genuine payload above framePrealloc must still round-trip
// through the growing reader.
func TestHonestLargeFrameStillDecodes(t *testing.T) {
	payload := make([]float64, (framePrealloc/8)*3) // ~3× the prealloc cap
	for i := range payload {
		payload[i] = float64(i)
	}
	frame := AppendMeshFrame(nil, MeshMessage{From: 1, To: 2, Kind: "sac/share", Payload: payload})
	m, _, err := ReadMeshFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatalf("honest large frame rejected: %v", err)
	}
	if len(m.Payload) != len(payload) || m.Payload[17] != 17 {
		t.Fatalf("large payload mangled: %d elements", len(m.Payload))
	}
}

// TestNestedLengthLies forges inner length prefixes (string and float
// counts) beyond the enclosing payload: decoders must reject before
// trusting them with an allocation.
func TestNestedLengthLies(t *testing.T) {
	// Mesh payload with a kind-string length claiming past the end.
	b := AppendHeader(nil, KindMesh, 8*3+4+4)
	b = appendUint64(b, 1)
	b = appendUint64(b, 2)
	b = appendUint64(b, 0)
	b = appendUint32(b, 1<<30) // kind-string length lie
	b = appendUint32(b, 0)
	if _, _, err := ReadMeshFrame(bytes.NewReader(b), nil); err == nil {
		t.Fatal("kind-string length lie accepted")
	}

	// Mesh payload whose float-count field claims 2^28 elements backed by
	// no bytes.
	b = AppendHeader(nil, KindMesh, 8*3+4+1+4)
	b = appendUint64(b, 1)
	b = appendUint64(b, 2)
	b = appendUint64(b, 0)
	b = appendString(b, "k")
	b = appendUint32(b, 1<<28) // float-count lie
	if _, _, err := ReadMeshFrame(bytes.NewReader(b), nil); err == nil {
		t.Fatal("float-count lie accepted")
	}

	// Raft entry batch claiming 2^30 entries in a tiny payload.
	b = AppendHeader(nil, KindRaft, raftFixedSize+4)
	b = append(b, make([]byte, raftFixedSize)...)
	b = appendUint32(b, 1<<30) // entry-count lie
	if _, _, err := ReadRaftFrame(bytes.NewReader(b), nil); err == nil {
		t.Fatal("entry-count lie accepted")
	}
}

// TestHostileFramesDoNotOverAllocate bounds allocation count on the
// rejection paths: refusing garbage must not cost buffers.
func TestHostileFramesDoNotOverAllocate(t *testing.T) {
	frame := hostileSamples()["mesh"]
	bad := lieLength(frame, MaxPayload)
	scratch := make([]byte, 0, framePrealloc)
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := ReadMeshFrame(bytes.NewReader(bad), scratch); err == nil {
			panic("accepted")
		}
	})
	// One reader + one wrapped error are tolerated; payload buffers are not.
	if allocs > 6 {
		t.Fatalf("rejection path allocates %v times per frame", allocs)
	}
}
