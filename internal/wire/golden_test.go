package wire

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/raft"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden wire frames")

// goldenFrames are the cross-version compatibility contract: these
// exact byte sequences are what version 1 of the format means. If an
// encoder change alters any of them, that change broke every stored
// checkpoint and every mixed-version deployment — bump Version and add
// a new golden set instead of regenerating these.
func goldenFrames() map[string][]byte {
	raftMsg := raft.Message{
		Type: raft.MsgAppend, From: 1, To: 2, Term: 7,
		PrevLogIndex: 10, PrevLogTerm: 6, Commit: 9,
		Entries: []raft.Entry{
			{Index: 11, Term: 7, Type: raft.EntryNormal, Data: []byte("model-weights")},
			{Index: 12, Term: 7, Type: raft.EntryNoop},
		},
	}
	snapMsg := raft.Message{
		Type: raft.MsgSnapshot, From: 3, To: 1, Term: 9,
		Snapshot: &raft.Snapshot{Index: 20, Term: 8, Peers: []uint64{1, 2, 3}, Data: []byte("state")},
	}
	mesh := MeshMessage{
		From: 0, To: 4, Kind: "sac/share", ShareIdx: 2,
		Payload: []float64{1.0, -0.5, 0.25, 1e-12, 3.14159265358979},
	}
	cp := Checkpoint{
		Names:   []string{"conv0/W", "conv0/b", "dense1/W"},
		Sizes:   []int{3, 2, 4},
		Weights: []float64{0.1, -0.2, 0.3, 0.4, -0.5, 1.5, -2.5, 0.75, 0.125},
	}
	quant := MeshMessage{From: 1, To: 3, Kind: "fedavg/download", ShareIdx: -1}
	q8 := QuantDelta{Width: 1, Scale: 0.0078125, Q: []int16{127, -128, 0, 64, -1}}
	q16 := QuantDelta{Width: 2, Scale: 3.0517578125e-05, Q: []int16{32767, -32768, 0, 12345, -7}}
	sparse := SparseDelta{Dim: 16, Idx: []int32{0, 3, 7, 15}, Width: 0,
		Vals: []float64{-0.5, 1.25, 1e-9, 2.0}}
	sparseQ := SparseDelta{Dim: 16, Idx: []int32{2, 5, 11}, Width: 1,
		Scale: 0.015625, Q: []int16{-128, 127, 3}}
	qcp := QuantCheckpoint{
		Names: []string{"conv0/W", "dense1/W"},
		Sizes: []int{3, 2},
		Delta: QuantDelta{Width: 2, Scale: 6.103515625e-05, Q: []int16{100, -200, 300, -400, 500}},
	}
	dirJoin := DirectoryUpdate{Op: DirJoin, ID: 10, Subgroup: 2, ShareIndex: 1, Addr: "peer-10:7100"}
	dirLeave := DirectoryUpdate{Op: DirLeave, ID: 4, Subgroup: 1, ShareIndex: 0, Addr: "peer-4:7100"}
	return map[string][]byte{
		"raft_append_v1.wire":      AppendRaftFrame(nil, raftMsg),
		"raft_snapshot_v1.wire":    AppendRaftFrame(nil, snapMsg),
		"mesh_share_v1.wire":       AppendMeshFrame(nil, mesh),
		"checkpoint_v1.wire":       AppendCheckpointFrame(nil, cp),
		"delta_quant8_v1.wire":     AppendQuantFrame(nil, quant, q8),
		"delta_quant16_v1.wire":    AppendQuantFrame(nil, quant, q16),
		"delta_sparse_v1.wire":     AppendSparseFrame(nil, quant, sparse),
		"delta_sparse_q8_v1.wire":  AppendSparseFrame(nil, quant, sparseQ),
		"checkpoint_quant_v1.wire": AppendQuantCheckpointFrame(nil, qcp),
		"directory_join_v1.wire":   AppendDirectoryFrame(nil, dirJoin),
		"directory_leave_v1.wire":  AppendDirectoryFrame(nil, dirLeave),
	}
}

func TestGoldenWireFiles(t *testing.T) {
	for name, frame := range goldenFrames() {
		path := filepath.Join("testdata", name)
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, frame, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run `go test ./internal/wire -run Golden -update` after an intentional format change)", name, err)
		}
		if !bytes.Equal(frame, want) {
			t.Errorf("%s: encoder output drifted from the v1 golden frame.\n got  % x\n want % x\n"+
				"This is a wire-format break: bump wire.Version instead of regenerating goldens.",
				name, frame, want)
		}
		// The checked-in frame must also still decode to the same value
		// the current encoder produces it from (decoder compatibility).
		kind, n, err := ParseHeader(want)
		if err != nil {
			t.Fatalf("%s: golden header: %v", name, err)
		}
		if n != len(want)-HeaderSize {
			t.Fatalf("%s: golden payload length %d, frame has %d", name, n, len(want)-HeaderSize)
		}
		switch kind {
		case KindRaft:
			m, err := DecodeRaftPayload(want[HeaderSize:])
			if err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			if re := AppendRaftFrame(nil, m); !bytes.Equal(re, want) {
				t.Errorf("%s: decode→re-encode not byte-identical", name)
			}
		case KindMesh:
			m, err := DecodeMeshPayload(want[HeaderSize:])
			if err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			if re := AppendMeshFrame(nil, m); !bytes.Equal(re, want) {
				t.Errorf("%s: decode→re-encode not byte-identical", name)
			}
		case KindCheckpoint:
			cp, err := DecodeCheckpointPayload(want[HeaderSize:])
			if err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			if re := AppendCheckpointFrame(nil, cp); !bytes.Equal(re, want) {
				t.Errorf("%s: decode→re-encode not byte-identical", name)
			}
		case KindDeltaQuant:
			m, q, err := DecodeQuantPayload(want[HeaderSize:])
			if err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			if re := AppendQuantFrame(nil, m, q); !bytes.Equal(re, want) {
				t.Errorf("%s: decode→re-encode not byte-identical", name)
			}
		case KindDeltaSparse:
			m, s, err := DecodeSparsePayload(want[HeaderSize:])
			if err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			if re := AppendSparseFrame(nil, m, s); !bytes.Equal(re, want) {
				t.Errorf("%s: decode→re-encode not byte-identical", name)
			}
		case KindCheckpointQuant:
			qcp, err := DecodeQuantCheckpointPayload(want[HeaderSize:])
			if err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			if re := AppendQuantCheckpointFrame(nil, qcp); !bytes.Equal(re, want) {
				t.Errorf("%s: decode→re-encode not byte-identical", name)
			}
		case KindDirectory:
			u, err := DecodeDirectoryPayload(want[HeaderSize:])
			if err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			if re := AppendDirectoryFrame(nil, u); !bytes.Equal(re, want) {
				t.Errorf("%s: decode→re-encode not byte-identical", name)
			}
		}
	}
}

// TestGoldenDecodeValues pins the decoded VALUES of the golden frames,
// not just their bytes: a decoder regression that still re-encodes
// consistently (e.g. swapped field order in both directions) would pass
// the byte check but corrupt every stored artifact.
func TestGoldenDecodeValues(t *testing.T) {
	if *updateGolden {
		t.Skip("updating goldens")
	}
	b, err := os.ReadFile(filepath.Join("testdata", "checkpoint_v1.wire"))
	if err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpointFrame(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	want := Checkpoint{
		Names:   []string{"conv0/W", "conv0/b", "dense1/W"},
		Sizes:   []int{3, 2, 4},
		Weights: []float64{0.1, -0.2, 0.3, 0.4, -0.5, 1.5, -2.5, 0.75, 0.125},
	}
	if !reflect.DeepEqual(cp, want) {
		t.Fatalf("golden checkpoint decoded to %+v", cp)
	}
}
