package wire

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestQuantFrameRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		q    QuantDelta
	}{
		{"int8", QuantDelta{Width: 1, Scale: 0.25, Q: []int16{127, -128, 0, 1, -1}}},
		{"int16", QuantDelta{Width: 2, Scale: 1e-4, Q: []int16{32767, -32768, 0, 999}}},
		{"empty8", QuantDelta{Width: 1, Scale: 0, Q: nil}},
		{"empty16", QuantDelta{Width: 2, Scale: 0, Q: nil}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := MeshMessage{From: 2, To: 5, Kind: "fedavg/download", ShareIdx: -1}
			frame := AppendQuantFrame(nil, m, tc.q)
			if got, want := len(frame), QuantFrameSize(m.Kind, tc.q.Width, len(tc.q.Q)); got != want {
				t.Fatalf("frame is %d bytes, QuantFrameSize says %d", got, want)
			}
			gotM, gotQ, err := DecodeQuantPayload(frame[HeaderSize:])
			if err != nil {
				t.Fatal(err)
			}
			m.Payload = nil
			if !reflect.DeepEqual(gotM, m) {
				t.Fatalf("envelope: got %+v want %+v", gotM, m)
			}
			if gotQ.Width != tc.q.Width || gotQ.Scale != tc.q.Scale || len(gotQ.Q) != len(tc.q.Q) {
				t.Fatalf("block: got %+v want %+v", gotQ, tc.q)
			}
			for i := range tc.q.Q {
				if gotQ.Q[i] != tc.q.Q[i] {
					t.Fatalf("Q[%d] = %d, want %d", i, gotQ.Q[i], tc.q.Q[i])
				}
			}
		})
	}
}

func TestSparseFrameRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    SparseDelta
	}{
		{"float64", SparseDelta{Dim: 10, Idx: []int32{0, 4, 9}, Width: 0, Vals: []float64{1.5, -2.5, 1e-300}}},
		{"int8", SparseDelta{Dim: 10, Idx: []int32{3, 7}, Width: 1, Scale: 0.5, Q: []int16{-128, 127}}},
		{"int16", SparseDelta{Dim: 100, Idx: []int32{99}, Width: 2, Scale: 0.125, Q: []int16{-32768}}},
		{"empty", SparseDelta{Dim: 10, Width: 0}},
		{"empty-dim0", SparseDelta{Dim: 0, Width: 0}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := MeshMessage{From: 0, To: 1, Kind: "fedavg/broadcast", ShareIdx: 0}
			frame := AppendSparseFrame(nil, m, tc.s)
			if got, want := len(frame), SparseFrameSize(m.Kind, tc.s.Width, len(tc.s.Idx)); got != want {
				t.Fatalf("frame is %d bytes, SparseFrameSize says %d", got, want)
			}
			_, gotS, err := DecodeSparsePayload(frame[HeaderSize:])
			if err != nil {
				t.Fatal(err)
			}
			if gotS.Dim != tc.s.Dim || gotS.Width != tc.s.Width || gotS.Scale != tc.s.Scale {
				t.Fatalf("block header: got %+v want %+v", gotS, tc.s)
			}
			if len(gotS.Idx) != len(tc.s.Idx) {
				t.Fatalf("got %d indices, want %d", len(gotS.Idx), len(tc.s.Idx))
			}
			for i := range tc.s.Idx {
				if gotS.Idx[i] != tc.s.Idx[i] {
					t.Fatalf("Idx[%d] = %d, want %d", i, gotS.Idx[i], tc.s.Idx[i])
				}
			}
			for i := range tc.s.Vals {
				if math.Float64bits(gotS.Vals[i]) != math.Float64bits(tc.s.Vals[i]) {
					t.Fatalf("Vals[%d] not bit-exact", i)
				}
			}
			for i := range tc.s.Q {
				if gotS.Q[i] != tc.s.Q[i] {
					t.Fatalf("Q[%d] = %d, want %d", i, gotS.Q[i], tc.s.Q[i])
				}
			}
		})
	}
}

func TestQuantCheckpointRoundTrip(t *testing.T) {
	cp := QuantCheckpoint{
		Names: []string{"conv0/W", "conv0/b"},
		Sizes: []int{4, 2},
		Delta: QuantDelta{Width: 1, Scale: 0.03125, Q: []int16{1, -2, 3, -4, 5, -6}},
	}
	frame := AppendQuantCheckpointFrame(nil, cp)
	if got, want := len(frame), QuantCheckpointFrameSize(cp); got != want {
		t.Fatalf("frame is %d bytes, QuantCheckpointFrameSize says %d", got, want)
	}
	got, err := DecodeQuantCheckpointPayload(frame[HeaderSize:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Fatalf("round trip: got %+v want %+v", got, cp)
	}
}

// TestDeltaStrictDecoding drives every malformed-block shape through the
// decoders: each must fail with a wire sentinel, never panic or accept.
func TestDeltaStrictDecoding(t *testing.T) {
	env := MeshMessage{From: 1, To: 2, Kind: "fedavg/download"}
	quant := AppendQuantFrame(nil, env, QuantDelta{Width: 1, Scale: 0.5, Q: []int16{1, 2, 3}})
	sparse := AppendSparseFrame(nil, env, SparseDelta{Dim: 8, Idx: []int32{2, 5}, Width: 0, Vals: []float64{1, 2}})
	envLen := 3*8 + 4 + len(env.Kind)

	mutate := func(frame []byte, off int, v byte) []byte {
		out := append([]byte(nil), frame...)
		out[HeaderSize+off] = v
		return out
	}
	cases := []struct {
		name    string
		payload []byte
		want    error
	}{
		{"quant-bad-width", mutate(quant, envLen, 3)[HeaderSize:], ErrBadFrame},
		{"quant-width-zero", mutate(quant, envLen, 0)[HeaderSize:], ErrBadFrame},
		{"quant-truncated-values", quant[HeaderSize : len(quant)-1], ErrTruncated},
		{"quant-trailing", append(append([]byte(nil), quant[HeaderSize:]...), 0), ErrBadFrame},
		{"quant-empty", nil, ErrTruncated},
		{"sparse-bad-width", mutate(sparse, envLen+8, 9)[HeaderSize:], ErrBadFrame},
		{"sparse-truncated", sparse[HeaderSize : len(sparse)-3], ErrTruncated},
		{"sparse-trailing", append(append([]byte(nil), sparse[HeaderSize:]...), 0), ErrBadFrame},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var err error
			if strings.HasPrefix(tc.name, "quant") {
				_, _, err = DecodeQuantPayload(tc.payload)
			} else {
				_, _, err = DecodeSparsePayload(tc.payload)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}

	t.Run("sparse-count-exceeds-dim", func(t *testing.T) {
		bad := SparseDelta{Dim: 2, Idx: []int32{0, 1, 1}, Width: 0, Vals: []float64{1, 2, 3}}
		// Encode by hand: AppendSparseFrame would also produce k > dim.
		frame := AppendSparseFrame(nil, env, bad)
		if _, _, err := DecodeSparsePayload(frame[HeaderSize:]); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("got %v, want ErrBadFrame", err)
		}
	})
	t.Run("sparse-index-out-of-range", func(t *testing.T) {
		bad := SparseDelta{Dim: 4, Idx: []int32{1, 4}, Width: 0, Vals: []float64{1, 2}}
		frame := AppendSparseFrame(nil, env, bad)
		if _, _, err := DecodeSparsePayload(frame[HeaderSize:]); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("got %v, want ErrBadFrame", err)
		}
	})
	t.Run("sparse-indices-not-ascending", func(t *testing.T) {
		bad := SparseDelta{Dim: 8, Idx: []int32{5, 2}, Width: 0, Vals: []float64{1, 2}}
		frame := AppendSparseFrame(nil, env, bad)
		if _, _, err := DecodeSparsePayload(frame[HeaderSize:]); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("got %v, want ErrBadFrame", err)
		}
	})
	t.Run("sparse-indices-duplicate", func(t *testing.T) {
		bad := SparseDelta{Dim: 8, Idx: []int32{3, 3}, Width: 0, Vals: []float64{1, 2}}
		frame := AppendSparseFrame(nil, env, bad)
		if _, _, err := DecodeSparsePayload(frame[HeaderSize:]); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("got %v, want ErrBadFrame", err)
		}
	})
	t.Run("quant-count-lies", func(t *testing.T) {
		// Claim 2^31 int8 values in a 3-byte tail: the count guard must
		// reject before allocating.
		p := append([]byte(nil), quant[HeaderSize:HeaderSize+envLen]...)
		p = append(p, 1)                      // width
		p = append(p, make([]byte, 8)...)     // scale
		p = appendUint32(p, 1<<31-1)          // count
		p = append(p, 1, 2, 3)                // only 3 bytes of values
		if _, _, err := DecodeQuantPayload(p); !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	})
}

func TestDeltaDense(t *testing.T) {
	q := QuantDelta{Width: 1, Scale: 0.5, Q: []int16{2, -4, 0, 127}}
	got := q.Dense(nil)
	want := []float64{1, -2, 0, 63.5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("quant Dense = %v, want %v", got, want)
	}
	// Capacity reuse: a big-enough dst must be reused, not reallocated.
	dst := make([]float64, 8)
	got = q.Dense(dst)
	if &got[0] != &dst[0] || len(got) != 4 {
		t.Fatal("quant Dense did not reuse dst capacity")
	}

	s := SparseDelta{Dim: 6, Idx: []int32{1, 4}, Width: 0, Vals: []float64{2.5, -1.5}}
	gotS := s.Dense(nil)
	wantS := []float64{0, 2.5, 0, 0, -1.5, 0}
	if !reflect.DeepEqual(gotS, wantS) {
		t.Fatalf("sparse Dense = %v, want %v", gotS, wantS)
	}
	// Reused dst must be zeroed where coordinates were dropped.
	dirty := []float64{9, 9, 9, 9, 9, 9}
	gotS = s.Dense(dirty)
	if !reflect.DeepEqual(gotS, wantS) {
		t.Fatalf("sparse Dense over dirty dst = %v, want %v", gotS, wantS)
	}

	sq := SparseDelta{Dim: 4, Idx: []int32{0, 3}, Width: 2, Scale: 0.25, Q: []int16{-8, 12}}
	gotQ := sq.Dense(nil)
	wantQ := []float64{-2, 0, 0, 3}
	if !reflect.DeepEqual(gotQ, wantQ) {
		t.Fatalf("sparse quant Dense = %v, want %v", gotQ, wantQ)
	}
}

func TestReadAnyMeshFrame(t *testing.T) {
	plain := MeshMessage{From: 1, To: 2, Kind: "sac/share", ShareIdx: 3, Payload: []float64{1, 2, 3}}
	env := MeshMessage{From: 4, To: 5, Kind: "fedavg/download", ShareIdx: -1}
	q := QuantDelta{Width: 1, Scale: 0.5, Q: []int16{1, -1}}
	s := SparseDelta{Dim: 4, Idx: []int32{2}, Width: 0, Vals: []float64{7}}

	var stream []byte
	stream = AppendMeshFrame(stream, plain)
	stream = AppendQuantFrame(stream, env, q)
	stream = AppendSparseFrame(stream, env, s)
	r := bytes.NewReader(stream)

	var scratch []byte
	m, gotQ, gotS, scratch, err := ReadAnyMeshFrame(r, scratch)
	if err != nil || gotQ != nil || gotS != nil {
		t.Fatalf("frame 1: %v %v %v", err, gotQ, gotS)
	}
	if !reflect.DeepEqual(m, plain) {
		t.Fatalf("frame 1: got %+v", m)
	}
	m, gotQ, gotS, scratch, err = ReadAnyMeshFrame(r, scratch)
	if err != nil || gotQ == nil || gotS != nil {
		t.Fatalf("frame 2: %v %v %v", err, gotQ, gotS)
	}
	if m.From != 4 || gotQ.Width != 1 || len(gotQ.Q) != 2 {
		t.Fatalf("frame 2: got %+v %+v", m, gotQ)
	}
	_, gotQ, gotS, _, err = ReadAnyMeshFrame(r, scratch)
	if err != nil || gotQ != nil || gotS == nil {
		t.Fatalf("frame 3: %v %v %v", err, gotQ, gotS)
	}
	if gotS.Dim != 4 || gotS.Idx[0] != 2 || gotS.Vals[0] != 7 {
		t.Fatalf("frame 3: got %+v", gotS)
	}

	// A raft frame on a mesh stream is rejected by kind, by name.
	raftish := AppendHeader(nil, KindRaft, 0)
	_, _, _, _, err = ReadAnyMeshFrame(bytes.NewReader(raftish), nil)
	if !errors.Is(err, ErrBadFrame) || !strings.Contains(err.Error(), "kind raft") {
		t.Fatalf("raft frame on mesh stream: %v", err)
	}
}

func TestKindStringAndDebugHeader(t *testing.T) {
	for k, want := range map[Kind]string{
		KindRaft: "raft", KindMesh: "mesh", KindCheckpoint: "checkpoint",
		KindDeltaQuant: "delta-quant", KindDeltaSparse: "delta-sparse",
		KindCheckpointQuant: "checkpoint-quant", Kind(0xAB): "kind(0xab)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", byte(k), got, want)
		}
	}
	h := AppendHeader(nil, KindMesh, 52)
	if got := DebugHeader(h); got != "P2FW v1 mesh 52B" {
		t.Errorf("DebugHeader = %q", got)
	}
	if got := DebugHeader([]byte("XXXX00000000")); !strings.Contains(got, "invalid frame header") {
		t.Errorf("DebugHeader on garbage = %q", got)
	}
}

// TestQuantSizeAdvantage pins the acceptance-criterion ratio in closed
// form: an int8 frame is ≤ 0.25× the float64 mesh frame at model
// dimensions (the bench pair checks the same on measured bytes).
func TestQuantSizeAdvantage(t *testing.T) {
	for _, dim := range []int{1000, 100000} {
		f64 := HeaderSize + MeshPayloadSize("fedavg/download", dim)
		q8 := QuantFrameSize("fedavg/download", 1, dim)
		if 4*q8 > f64 {
			t.Errorf("dim %d: int8 frame %dB > 0.25× float64 frame %dB", dim, q8, f64)
		}
	}
}
