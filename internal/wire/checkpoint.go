package wire

import (
	"fmt"
	"io"
)

// Checkpoint payload layout (inside a KindCheckpoint frame), version 1
// — one model checkpoint: the parameter schema (names and sizes, used
// to reject mismatched architectures on load) plus the flat weight
// vector:
//
//	params   u32 count, then per parameter:
//	           name string (u32 length + bytes), size u32
//	weights  float64 vector (u32 count + count·8 bytes LE)
//
// Checkpoint mirrors the nn package's gob checkpoint struct; nn imports
// wire for its Save/Load v2 paths.
type Checkpoint struct {
	Names   []string
	Sizes   []int
	Weights []float64
}

// CheckpointPayloadSize returns the exact encoded payload size.
func CheckpointPayloadSize(cp Checkpoint) int {
	n := 4
	for _, name := range cp.Names {
		n += 4 + len(name) + 4
	}
	return n + Float64sSize(len(cp.Weights))
}

// CheckpointFrameSize returns the exact frame size, header included.
func CheckpointFrameSize(cp Checkpoint) int {
	return HeaderSize + CheckpointPayloadSize(cp)
}

// AppendCheckpointFrame appends a complete checkpoint frame. Names and
// Sizes must be the same length.
func AppendCheckpointFrame(dst []byte, cp Checkpoint) []byte {
	dst = AppendHeader(dst, KindCheckpoint, CheckpointPayloadSize(cp))
	dst = appendUint32(dst, uint32(len(cp.Names)))
	for i, name := range cp.Names {
		dst = appendString(dst, name)
		dst = appendUint32(dst, uint32(cp.Sizes[i]))
	}
	return AppendFloat64s(dst, cp.Weights)
}

// DecodeCheckpointPayload decodes a KindCheckpoint payload, copying all
// contents out of b.
func DecodeCheckpointPayload(b []byte) (Checkpoint, error) {
	var cp Checkpoint
	nParams, b, err := readUint32(b)
	if err != nil {
		return cp, err
	}
	// Each parameter costs ≥ 8 bytes on the wire.
	if uint64(nParams)*8 > uint64(len(b)) {
		return cp, fmt.Errorf("%w: %d params in %d bytes", ErrTruncated, nParams, len(b))
	}
	if nParams > 0 {
		cp.Names = make([]string, nParams)
		cp.Sizes = make([]int, nParams)
		for i := range cp.Names {
			if cp.Names[i], b, err = readString(b); err != nil {
				return cp, err
			}
			var sz uint32
			if sz, b, err = readUint32(b); err != nil {
				return cp, err
			}
			cp.Sizes[i] = int(sz)
		}
	}
	if cp.Weights, b, err = ReadFloat64s(b, nil); err != nil {
		return cp, err
	}
	if len(b) != 0 {
		return cp, fmt.Errorf("%w: %d trailing bytes after checkpoint payload", ErrBadFrame, len(b))
	}
	return cp, nil
}

// ReadCheckpointFrame reads one complete checkpoint frame from r.
func ReadCheckpointFrame(r io.Reader) (Checkpoint, error) {
	kind, payload, _, err := readFrame(r, nil)
	if err != nil {
		return Checkpoint{}, err
	}
	if kind != KindCheckpoint {
		return Checkpoint{}, fmt.Errorf("%w: kind %s, want %s", ErrBadFrame, kind, KindCheckpoint)
	}
	return DecodeCheckpointPayload(payload)
}
