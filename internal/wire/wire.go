// Package wire is the dependency-free binary codec for the hot payload
// shapes the system moves between processes: raft messages (with entry
// batches and snapshots), SAC share/subtotal vectors, and nn model
// checkpoints. It replaces encoding/gob on every wire path where the
// paper's cost model says the bytes matter — model-dimension float
// vectors dominate per-round traffic (Sec. VI-B3), and gob's reflective
// encoder plus per-stream type preamble are pure tax on top of them.
//
// Every payload travels in one self-describing frame:
//
//	offset  size  field
//	0       4     magic "P2FW"
//	4       1     format version (currently 1)
//	5       1     payload kind (KindRaft | KindMesh | KindCheckpoint)
//	6       2     reserved, must be zero
//	8       4     payload length in bytes, uint32 little-endian
//	12      ...   payload (kind-specific layout, see raft.go/mesh.go/
//	              checkpoint.go and DESIGN.md §10)
//
// All integers are little-endian and fixed-width; []float64 vectors are
// encoded as a uint32 element count followed by 8·n bytes of IEEE-754
// bits (math.Float64bits), so a vector costs exactly the paper's cost
// unit |w| = 8·dim plus four bytes of length. Frames are stateless:
// unlike a gob stream there is no per-connection type preamble, so the
// first frame after a reconnect costs exactly as many bytes as every
// other frame, and a frame's size is computable without encoding it.
//
// Compatibility policy: the version byte covers the payload layouts.
// Decoders reject versions they do not know; layout changes bump the
// version and keep the old decoder path alive. Golden frames for each
// kind are checked into testdata/ so any accidental layout drift fails
// the cross-version golden tests.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Frame constants.
const (
	// Magic opens every frame; it doubles as the format sniff for
	// readers (nn.Load) that must also accept legacy gob streams.
	Magic = "P2FW"
	// Version is the current frame format version.
	Version = 1
	// HeaderSize is the fixed frame header length in bytes.
	HeaderSize = 12
)

// Kind identifies a frame's payload layout. It prints as the kind
// name ("raft", "mesh", …) so decoder errors and debug dumps stay
// readable; unknown values print as "kind(0xNN)".
type Kind byte

// Payload kinds. Kinds 1–3 are the original (v1) set; 4–6 are the v2
// compressed model-delta set (see delta.go).
const (
	// KindRaft frames carry one raft.Message.
	KindRaft Kind = 1
	// KindMesh frames carry one transport mesh message (SAC shares,
	// subtotals, recovery traffic).
	KindMesh Kind = 2
	// KindCheckpoint frames carry one nn model checkpoint.
	KindCheckpoint Kind = 3
	// KindDeltaQuant frames carry one mesh message whose model-delta
	// vector is fixed-point quantized (int8/int16 + per-tensor scale).
	KindDeltaQuant Kind = 4
	// KindDeltaSparse frames carry one mesh message whose model-delta
	// vector is top-k sparsified (index block + values, optionally
	// quantized).
	KindDeltaSparse Kind = 5
	// KindCheckpointQuant frames carry one nn model checkpoint with
	// fixed-point quantized weights.
	KindCheckpointQuant Kind = 6
	// KindDirectory frames carry one replicated peer-directory update
	// (join/leave with subgroup and share index) — the FedAvg-layer
	// log-entry payload of the continuous-churn control plane.
	KindDirectory Kind = 7
)

// String returns the kind's wire-format name.
func (k Kind) String() string {
	switch k {
	case KindRaft:
		return "raft"
	case KindMesh:
		return "mesh"
	case KindCheckpoint:
		return "checkpoint"
	case KindDeltaQuant:
		return "delta-quant"
	case KindDeltaSparse:
		return "delta-sparse"
	case KindCheckpointQuant:
		return "checkpoint-quant"
	case KindDirectory:
		return "directory"
	}
	return fmt.Sprintf("kind(0x%02x)", byte(k))
}

// MaxPayload bounds a single frame's payload: 1 GiB is far above any
// real model (a 16M-parameter vector is 128 MiB) but small enough that
// a corrupt length prefix cannot drive a multi-gigabyte allocation.
const MaxPayload = 1 << 30

// Errors returned by decoders. They wrap fmt errors with context; use
// errors.Is against these sentinels.
var (
	// ErrBadMagic reports a frame that does not open with Magic.
	ErrBadMagic = fmt.Errorf("wire: bad magic")
	// ErrBadVersion reports an unknown format version.
	ErrBadVersion = fmt.Errorf("wire: unsupported version")
	// ErrTruncated reports a payload shorter than its layout requires.
	ErrTruncated = fmt.Errorf("wire: truncated payload")
	// ErrBadFrame reports any other malformed header or payload field.
	ErrBadFrame = fmt.Errorf("wire: malformed frame")
)

// AppendHeader appends a frame header for a payload of payloadLen bytes
// and the given kind.
func AppendHeader(dst []byte, kind Kind, payloadLen int) []byte {
	dst = append(dst, Magic...)
	dst = append(dst, Version, byte(kind), 0, 0)
	return binary.LittleEndian.AppendUint32(dst, uint32(payloadLen))
}

// ParseHeader validates a 12-byte frame header and returns its kind and
// payload length.
func ParseHeader(h []byte) (kind Kind, payloadLen int, err error) {
	if len(h) < HeaderSize {
		return 0, 0, fmt.Errorf("%w: header is %d bytes, want %d", ErrTruncated, len(h), HeaderSize)
	}
	if string(h[:4]) != Magic {
		return 0, 0, fmt.Errorf("%w: % x", ErrBadMagic, h[:4])
	}
	if h[4] != Version {
		return 0, 0, fmt.Errorf("%w: %d", ErrBadVersion, h[4])
	}
	if h[6] != 0 || h[7] != 0 {
		return 0, 0, fmt.Errorf("%w: nonzero reserved bytes", ErrBadFrame)
	}
	n := binary.LittleEndian.Uint32(h[8:12])
	if n > MaxPayload {
		return 0, 0, fmt.Errorf("%w: payload length %d exceeds %d", ErrBadFrame, n, MaxPayload)
	}
	return Kind(h[5]), int(n), nil
}

// DebugHeader formats a frame header for logs and error dumps, e.g.
// "P2FW v1 mesh 52B". Malformed headers format as the validation error.
func DebugHeader(h []byte) string {
	kind, n, err := ParseHeader(h)
	if err != nil {
		return fmt.Sprintf("invalid frame header (%v)", err)
	}
	return fmt.Sprintf("%s v%d %s %dB", Magic, h[4], kind, n)
}

// ---- primitive appenders ----
//
// The appenders grow dst as needed and return the extended slice; the
// readers consume from the front of b and return the remainder. Sizing
// helpers let encoders pre-grow one buffer and telemetry account exact
// frame bytes without encoding twice.

func appendUint32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }
func appendUint64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }

func readUint32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, ErrTruncated
	}
	return binary.LittleEndian.Uint32(b), b[4:], nil
}

func readUint64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, ErrTruncated
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

// appendBytes appends a uint32-length-prefixed byte string.
func appendBytes(dst, v []byte) []byte {
	dst = appendUint32(dst, uint32(len(v)))
	return append(dst, v...)
}

// readBytes reads a length-prefixed byte string, copying it out of b so
// the caller may recycle the backing buffer.
func readBytes(b []byte) ([]byte, []byte, error) {
	n, b, err := readUint32(b)
	if err != nil {
		return nil, nil, err
	}
	if uint64(n) > uint64(len(b)) {
		return nil, nil, ErrTruncated
	}
	if n == 0 {
		return nil, b, nil
	}
	out := make([]byte, n)
	copy(out, b[:n])
	return out, b[n:], nil
}

// appendString appends a uint32-length-prefixed UTF-8 string.
func appendString(dst []byte, s string) []byte {
	dst = appendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

func readString(b []byte) (string, []byte, error) {
	n, b, err := readUint32(b)
	if err != nil {
		return "", nil, err
	}
	if uint64(n) > uint64(len(b)) {
		return "", nil, ErrTruncated
	}
	return string(b[:n]), b[n:], nil
}

// AppendFloat64s appends a float vector as a uint32 element count
// followed by len(v) little-endian IEEE-754 words — the contiguous
// block layout every model-dimension payload uses.
func AppendFloat64s(dst []byte, v []float64) []byte {
	dst = appendUint32(dst, uint32(len(v)))
	off := len(dst)
	dst = append(dst, make([]byte, 8*len(v))...)
	for i, x := range v {
		binary.LittleEndian.PutUint64(dst[off+8*i:], math.Float64bits(x))
	}
	return dst
}

// Float64sSize returns the encoded size of an n-element float vector.
func Float64sSize(n int) int { return 4 + 8*n }

// ReadFloat64s decodes a float vector into dst (reused when its
// capacity suffices, so steady-state decodes of a stable model
// dimension allocate nothing) and returns the vector and the rest of b.
func ReadFloat64s(b []byte, dst []float64) ([]float64, []byte, error) {
	n, b, err := readUint32(b)
	if err != nil {
		return nil, nil, err
	}
	if uint64(n)*8 > uint64(len(b)) {
		return nil, nil, ErrTruncated
	}
	if cap(dst) < int(n) {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return dst, b[8*n:], nil
}
