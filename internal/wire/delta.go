package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// The v2 payload kinds carry compressed model-delta vectors. A full-fat
// float64 vector costs the paper's unit |w| = 8·dim; the cost model's
// distribution terms (Eqs. 4/5/10) are dominated by exactly that unit,
// so these kinds replace it with:
//
//   - a fixed-point quantized block (KindDeltaQuant): every coordinate
//     becomes one int8 or int16 step count against a per-tensor scale,
//     8× or 4× smaller than float64;
//   - a top-k sparsified block (KindDeltaSparse): only the k
//     largest-magnitude coordinates travel, as an index block plus a
//     value block (full precision or quantized).
//
// Quantized block layout (shared by KindDeltaQuant frames and
// KindCheckpointQuant weight sections):
//
//	width   u8   bytes per element: 1 (int8) or 2 (int16)
//	scale   f64  step size; element i dequantizes to scale·q_i
//	count   u32
//	values  count·width bytes, little-endian two's complement
//
// Sparse block layout:
//
//	dim     u32  original dense dimension
//	count   u32  number of kept coordinates (k ≤ dim)
//	width   u8   0 (float64 values), 1 (int8) or 2 (int16)
//	scale   f64  only present when width > 0
//	indices count·u32, strictly ascending, all < dim
//	values  count·8 bytes (width 0) or count·width bytes
//
// Delta frames wrap a block in the same From/To/ShareIdx/Kind envelope
// as KindMesh, so a transport can swap the frame kind per message
// while the protocol layer keeps seeing transport.Message values.
// Decoders are strict (unknown width, non-ascending or out-of-range
// indices, counts that do not fit, trailing bytes all rejected) and
// encoding is canonical: decode→re-encode is byte-identical, enforced
// by the fuzz round-trip.

// QuantDelta is a dense fixed-point quantized vector: element i
// reconstructs to Scale·Q[i]. Width 1 stores int8 steps (Q values must
// fit [-128, 127] — the compress package's quantizer guarantees this),
// width 2 stores int16 steps.
type QuantDelta struct {
	Width int
	Scale float64
	Q     []int16
}

// Dense reconstructs the float64 vector into dst (reused when its
// capacity suffices).
func (q QuantDelta) Dense(dst []float64) []float64 {
	if cap(dst) < len(q.Q) {
		dst = make([]float64, len(q.Q))
	}
	dst = dst[:len(q.Q)]
	for i, v := range q.Q {
		dst[i] = q.Scale * float64(v)
	}
	return dst
}

// SparseDelta is a top-k sparsified vector of original dimension Dim:
// coordinate Idx[i] reconstructs to Vals[i] (Width 0) or Scale·Q[i]
// (Width 1 or 2); every other coordinate is zero. Idx is strictly
// ascending.
type SparseDelta struct {
	Dim   int
	Idx   []int32
	Width int
	Scale float64
	Vals  []float64
	Q     []int16
}

// Dense reconstructs the full vector into dst (reused when its
// capacity suffices); dropped coordinates are zero.
func (s SparseDelta) Dense(dst []float64) []float64 {
	if cap(dst) < s.Dim {
		dst = make([]float64, s.Dim)
	}
	dst = dst[:s.Dim]
	for i := range dst {
		dst[i] = 0
	}
	if s.Width == 0 {
		for i, ix := range s.Idx {
			dst[ix] = s.Vals[i]
		}
		return dst
	}
	for i, ix := range s.Idx {
		dst[ix] = s.Scale * float64(s.Q[i])
	}
	return dst
}

// ---- closed-form sizes ----

// QuantBlockSize returns the encoded size of an n-element quantized
// block at the given width (1 or 2 bytes per element).
func QuantBlockSize(width, n int) int { return 1 + 8 + 4 + width*n }

// SparseBlockSize returns the encoded size of a k-element sparse block.
// width 0 keeps float64 values; 1 or 2 quantizes them.
func SparseBlockSize(width, k int) int {
	n := 4 + 4 + 1 + k*4
	if width == 0 {
		return n + 8*k
	}
	return n + 8 + width*k
}

// QuantPayloadSize returns the exact payload size of a KindDeltaQuant
// frame with the given envelope kind string and element count.
func QuantPayloadSize(kind string, width, n int) int {
	return 3*8 + 4 + len(kind) + QuantBlockSize(width, n)
}

// QuantFrameSize returns the exact on-wire frame size, header included.
func QuantFrameSize(kind string, width, n int) int {
	return HeaderSize + QuantPayloadSize(kind, width, n)
}

// SparsePayloadSize returns the exact payload size of a KindDeltaSparse
// frame with the given envelope kind string and kept-coordinate count.
func SparsePayloadSize(kind string, width, k int) int {
	return 3*8 + 4 + len(kind) + SparseBlockSize(width, k)
}

// SparseFrameSize returns the exact on-wire frame size, header included.
func SparseFrameSize(kind string, width, k int) int {
	return HeaderSize + SparsePayloadSize(kind, width, k)
}

// ---- block codecs ----

func appendQuantBlock(dst []byte, q QuantDelta) []byte {
	dst = append(dst, byte(q.Width))
	dst = appendUint64(dst, math.Float64bits(q.Scale))
	dst = appendUint32(dst, uint32(len(q.Q)))
	if q.Width == 1 {
		for _, v := range q.Q {
			dst = append(dst, byte(int8(v)))
		}
		return dst
	}
	for _, v := range q.Q {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(v))
	}
	return dst
}

func readQuantBlock(b []byte) (QuantDelta, []byte, error) {
	var q QuantDelta
	if len(b) < 1 {
		return q, nil, ErrTruncated
	}
	q.Width = int(b[0])
	if q.Width != 1 && q.Width != 2 {
		return q, nil, fmt.Errorf("%w: quant width %d, want 1 or 2", ErrBadFrame, q.Width)
	}
	u, b, err := readUint64(b[1:])
	if err != nil {
		return q, nil, err
	}
	q.Scale = math.Float64frombits(u)
	n, b, err := readUint32(b)
	if err != nil {
		return q, nil, err
	}
	if uint64(n)*uint64(q.Width) > uint64(len(b)) {
		return q, nil, fmt.Errorf("%w: %d quant values in %d bytes", ErrTruncated, n, len(b))
	}
	q.Q = make([]int16, n)
	if q.Width == 1 {
		for i := range q.Q {
			q.Q[i] = int16(int8(b[i]))
		}
		return q, b[n:], nil
	}
	for i := range q.Q {
		q.Q[i] = int16(binary.LittleEndian.Uint16(b[2*i:]))
	}
	return q, b[2*n:], nil
}

func appendSparseBlock(dst []byte, s SparseDelta) []byte {
	dst = appendUint32(dst, uint32(s.Dim))
	dst = appendUint32(dst, uint32(len(s.Idx)))
	dst = append(dst, byte(s.Width))
	if s.Width != 0 {
		dst = appendUint64(dst, math.Float64bits(s.Scale))
	}
	for _, ix := range s.Idx {
		dst = appendUint32(dst, uint32(ix))
	}
	switch s.Width {
	case 0:
		for _, v := range s.Vals {
			dst = appendUint64(dst, math.Float64bits(v))
		}
	case 1:
		for _, v := range s.Q {
			dst = append(dst, byte(int8(v)))
		}
	default:
		for _, v := range s.Q {
			dst = binary.LittleEndian.AppendUint16(dst, uint16(v))
		}
	}
	return dst
}

func readSparseBlock(b []byte) (SparseDelta, []byte, error) {
	var s SparseDelta
	dim, b, err := readUint32(b)
	if err != nil {
		return s, nil, err
	}
	s.Dim = int(dim)
	k, b, err := readUint32(b)
	if err != nil {
		return s, nil, err
	}
	if uint64(k) > uint64(dim) {
		return s, nil, fmt.Errorf("%w: %d sparse values for dimension %d", ErrBadFrame, k, dim)
	}
	if len(b) < 1 {
		return s, nil, ErrTruncated
	}
	s.Width = int(b[0])
	b = b[1:]
	if s.Width < 0 || s.Width > 2 {
		return s, nil, fmt.Errorf("%w: sparse width %d, want 0, 1 or 2", ErrBadFrame, s.Width)
	}
	if s.Width != 0 {
		var u uint64
		if u, b, err = readUint64(b); err != nil {
			return s, nil, err
		}
		s.Scale = math.Float64frombits(u)
	}
	vbytes := 8
	if s.Width != 0 {
		vbytes = s.Width
	}
	if uint64(k)*uint64(4+vbytes) > uint64(len(b)) {
		return s, nil, fmt.Errorf("%w: %d sparse entries in %d bytes", ErrTruncated, k, len(b))
	}
	s.Idx = make([]int32, k)
	for i := range s.Idx {
		var u uint32
		u, b, _ = readUint32(b)
		ix := int32(u)
		if uint64(u) >= uint64(dim) {
			return s, nil, fmt.Errorf("%w: sparse index %d out of [0,%d)", ErrBadFrame, u, dim)
		}
		if i > 0 && ix <= s.Idx[i-1] {
			return s, nil, fmt.Errorf("%w: sparse indices not strictly ascending (%d after %d)", ErrBadFrame, ix, s.Idx[i-1])
		}
		s.Idx[i] = ix
	}
	switch s.Width {
	case 0:
		s.Vals = make([]float64, k)
		for i := range s.Vals {
			var u uint64
			u, b, _ = readUint64(b)
			s.Vals[i] = math.Float64frombits(u)
		}
	case 1:
		s.Q = make([]int16, k)
		for i := range s.Q {
			s.Q[i] = int16(int8(b[i]))
		}
		b = b[k:]
	default:
		s.Q = make([]int16, k)
		for i := range s.Q {
			s.Q[i] = int16(binary.LittleEndian.Uint16(b[2*i:]))
		}
		b = b[2*k:]
	}
	return s, b, nil
}

// ---- envelope frames ----

func appendMeshEnvelope(dst []byte, m MeshMessage) []byte {
	dst = appendUint64(dst, uint64(int64(m.From)))
	dst = appendUint64(dst, uint64(int64(m.To)))
	dst = appendUint64(dst, uint64(int64(m.ShareIdx)))
	return appendString(dst, m.Kind)
}

func readMeshEnvelope(b []byte) (MeshMessage, []byte, error) {
	var m MeshMessage
	u, b, err := readUint64(b)
	if err != nil {
		return m, nil, err
	}
	m.From = int(int64(u))
	if u, b, err = readUint64(b); err != nil {
		return m, nil, err
	}
	m.To = int(int64(u))
	if u, b, err = readUint64(b); err != nil {
		return m, nil, err
	}
	m.ShareIdx = int(int64(u))
	if m.Kind, b, err = readString(b); err != nil {
		return m, nil, err
	}
	return m, b, nil
}

// AppendQuantFrame appends a complete KindDeltaQuant frame: m's
// envelope (m.Payload is ignored) plus the quantized block.
func AppendQuantFrame(dst []byte, m MeshMessage, q QuantDelta) []byte {
	dst = AppendHeader(dst, KindDeltaQuant, QuantPayloadSize(m.Kind, q.Width, len(q.Q)))
	dst = appendMeshEnvelope(dst, m)
	return appendQuantBlock(dst, q)
}

// DecodeQuantPayload decodes a KindDeltaQuant payload. The returned
// MeshMessage carries the envelope with a nil Payload.
func DecodeQuantPayload(b []byte) (MeshMessage, QuantDelta, error) {
	m, b, err := readMeshEnvelope(b)
	if err != nil {
		return m, QuantDelta{}, err
	}
	q, b, err := readQuantBlock(b)
	if err != nil {
		return m, q, err
	}
	if len(b) != 0 {
		return m, q, fmt.Errorf("%w: %d trailing bytes after %s payload", ErrBadFrame, len(b), KindDeltaQuant)
	}
	return m, q, nil
}

// AppendSparseFrame appends a complete KindDeltaSparse frame: m's
// envelope (m.Payload is ignored) plus the sparse block.
func AppendSparseFrame(dst []byte, m MeshMessage, s SparseDelta) []byte {
	dst = AppendHeader(dst, KindDeltaSparse, SparsePayloadSize(m.Kind, s.Width, len(s.Idx)))
	dst = appendMeshEnvelope(dst, m)
	return appendSparseBlock(dst, s)
}

// DecodeSparsePayload decodes a KindDeltaSparse payload. The returned
// MeshMessage carries the envelope with a nil Payload.
func DecodeSparsePayload(b []byte) (MeshMessage, SparseDelta, error) {
	m, b, err := readMeshEnvelope(b)
	if err != nil {
		return m, SparseDelta{}, err
	}
	s, b, err := readSparseBlock(b)
	if err != nil {
		return m, s, err
	}
	if len(b) != 0 {
		return m, s, fmt.Errorf("%w: %d trailing bytes after %s payload", ErrBadFrame, len(b), KindDeltaSparse)
	}
	return m, s, nil
}

// ReadAnyMeshFrame reads one mesh-family frame (KindMesh,
// KindDeltaQuant or KindDeltaSparse) from r, reusing scratch as the
// payload read buffer. Exactly one of the three returns is populated:
// a plain mesh message carries its vector in MeshMessage.Payload;
// compressed frames return the envelope plus the block, which the
// caller reconstructs via Dense.
func ReadAnyMeshFrame(r io.Reader, scratch []byte) (MeshMessage, *QuantDelta, *SparseDelta, []byte, error) {
	kind, payload, scratch, err := readFrame(r, scratch)
	if err != nil {
		return MeshMessage{}, nil, nil, scratch, err
	}
	switch kind {
	case KindMesh:
		m, err := DecodeMeshPayload(payload)
		return m, nil, nil, scratch, err
	case KindDeltaQuant:
		m, q, err := DecodeQuantPayload(payload)
		if err != nil {
			return m, nil, nil, scratch, err
		}
		return m, &q, nil, scratch, nil
	case KindDeltaSparse:
		m, s, err := DecodeSparsePayload(payload)
		if err != nil {
			return m, nil, nil, scratch, err
		}
		return m, nil, &s, scratch, nil
	}
	return MeshMessage{}, nil, nil, scratch,
		fmt.Errorf("%w: kind %s, want %s, %s or %s", ErrBadFrame, kind, KindMesh, KindDeltaQuant, KindDeltaSparse)
}

// ---- quantized checkpoints ----

// QuantCheckpoint is a model checkpoint whose flat weight vector is
// fixed-point quantized: the schema travels as in Checkpoint, the
// weights as one quantized block.
type QuantCheckpoint struct {
	Names []string
	Sizes []int
	Delta QuantDelta
}

// QuantCheckpointPayloadSize returns the exact encoded payload size.
func QuantCheckpointPayloadSize(cp QuantCheckpoint) int {
	n := 4
	for _, name := range cp.Names {
		n += 4 + len(name) + 4
	}
	return n + QuantBlockSize(cp.Delta.Width, len(cp.Delta.Q))
}

// QuantCheckpointFrameSize returns the exact frame size, header
// included.
func QuantCheckpointFrameSize(cp QuantCheckpoint) int {
	return HeaderSize + QuantCheckpointPayloadSize(cp)
}

// AppendQuantCheckpointFrame appends a complete KindCheckpointQuant
// frame. Names and Sizes must be the same length.
func AppendQuantCheckpointFrame(dst []byte, cp QuantCheckpoint) []byte {
	dst = AppendHeader(dst, KindCheckpointQuant, QuantCheckpointPayloadSize(cp))
	dst = appendUint32(dst, uint32(len(cp.Names)))
	for i, name := range cp.Names {
		dst = appendString(dst, name)
		dst = appendUint32(dst, uint32(cp.Sizes[i]))
	}
	return appendQuantBlock(dst, cp.Delta)
}

// DecodeQuantCheckpointPayload decodes a KindCheckpointQuant payload,
// copying all contents out of b.
func DecodeQuantCheckpointPayload(b []byte) (QuantCheckpoint, error) {
	var cp QuantCheckpoint
	nParams, b, err := readUint32(b)
	if err != nil {
		return cp, err
	}
	if uint64(nParams)*8 > uint64(len(b)) {
		return cp, fmt.Errorf("%w: %d params in %d bytes", ErrTruncated, nParams, len(b))
	}
	if nParams > 0 {
		cp.Names = make([]string, nParams)
		cp.Sizes = make([]int, nParams)
		for i := range cp.Names {
			if cp.Names[i], b, err = readString(b); err != nil {
				return cp, err
			}
			var sz uint32
			if sz, b, err = readUint32(b); err != nil {
				return cp, err
			}
			cp.Sizes[i] = int(sz)
		}
	}
	if cp.Delta, b, err = readQuantBlock(b); err != nil {
		return cp, err
	}
	if len(b) != 0 {
		return cp, fmt.Errorf("%w: %d trailing bytes after %s payload", ErrBadFrame, len(b), KindCheckpointQuant)
	}
	return cp, nil
}

// ReadQuantCheckpointFrame reads one complete KindCheckpointQuant frame
// from r.
func ReadQuantCheckpointFrame(r io.Reader) (QuantCheckpoint, error) {
	kind, payload, _, err := readFrame(r, nil)
	if err != nil {
		return QuantCheckpoint{}, err
	}
	if kind != KindCheckpointQuant {
		return QuantCheckpoint{}, fmt.Errorf("%w: kind %s, want %s", ErrBadFrame, kind, KindCheckpointQuant)
	}
	return DecodeQuantCheckpointPayload(payload)
}
