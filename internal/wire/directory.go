package wire

import (
	"fmt"
	"io"
)

// Directory payload layout (inside a KindDirectory frame), version 1 —
// one replicated peer-directory update, the log-entry payload of the
// continuous-churn control plane (DESIGN.md §14). FedAvg-layer leaders
// propose these; every member applies them deterministically, so the
// byte layout is a compatibility contract exactly like the other kinds:
//
//	op        u8 (1 = join, 2 = leave)
//	id        u64 peer id
//	subgroup  u32
//	shareIdx  u32 (join: the index the proposer assigned; leave: the
//	          index being released)
//	addr      string (u32 length + bytes)
//
// DirectoryUpdate mirrors the directory package's update struct; that
// package imports wire (wire stays dependency-free).

// Directory update operations.
const (
	// DirJoin admits a peer into a subgroup with a share index.
	DirJoin uint8 = 1
	// DirLeave removes a peer and releases its share index.
	DirLeave uint8 = 2
)

// DirectoryUpdate is one peer-directory log entry.
type DirectoryUpdate struct {
	Op         uint8
	ID         uint64
	Subgroup   int
	ShareIndex int
	Addr       string
}

// DirectoryPayloadSize returns the exact encoded payload size of an
// update whose address has addrLen bytes.
func DirectoryPayloadSize(addrLen int) int {
	return 1 + 8 + 4 + 4 + 4 + addrLen
}

// DirectoryFrameSize returns the exact on-wire frame size, header
// included.
func DirectoryFrameSize(addrLen int) int {
	return HeaderSize + DirectoryPayloadSize(addrLen)
}

// AppendDirectoryFrame appends a complete frame for one directory
// update.
func AppendDirectoryFrame(dst []byte, u DirectoryUpdate) []byte {
	dst = AppendHeader(dst, KindDirectory, DirectoryPayloadSize(len(u.Addr)))
	dst = append(dst, u.Op)
	dst = appendUint64(dst, u.ID)
	dst = appendUint32(dst, uint32(u.Subgroup))
	dst = appendUint32(dst, uint32(u.ShareIndex))
	return appendString(dst, u.Addr)
}

// DecodeDirectoryPayload decodes a KindDirectory payload. The address
// string is copied out of b.
func DecodeDirectoryPayload(b []byte) (DirectoryUpdate, error) {
	var u DirectoryUpdate
	if len(b) < 1 {
		return u, fmt.Errorf("%w: empty directory payload", ErrTruncated)
	}
	u.Op = b[0]
	if u.Op != DirJoin && u.Op != DirLeave {
		return u, fmt.Errorf("%w: directory op %d", ErrBadFrame, u.Op)
	}
	b = b[1:]
	var err error
	if u.ID, b, err = readUint64(b); err != nil {
		return u, err
	}
	var v uint32
	if v, b, err = readUint32(b); err != nil {
		return u, err
	}
	u.Subgroup = int(v)
	if v, b, err = readUint32(b); err != nil {
		return u, err
	}
	u.ShareIndex = int(v)
	if u.Addr, b, err = readString(b); err != nil {
		return u, err
	}
	if len(b) != 0 {
		return u, fmt.Errorf("%w: %d trailing bytes after directory payload", ErrBadFrame, len(b))
	}
	return u, nil
}

// ReadDirectoryFrame reads one complete directory frame from r.
func ReadDirectoryFrame(r io.Reader) (DirectoryUpdate, error) {
	kind, payload, _, err := readFrame(r, nil)
	if err != nil {
		return DirectoryUpdate{}, err
	}
	if kind != KindDirectory {
		return DirectoryUpdate{}, fmt.Errorf("%w: kind %s, want %s", ErrBadFrame, kind, KindDirectory)
	}
	return DecodeDirectoryPayload(payload)
}
