package wire

import (
	"fmt"
	"io"

	"repro/internal/raft"
)

// Raft payload layout (inside a KindRaft frame), version 1:
//
//	type          u8      raft.MsgType
//	flags         u8      bit0 Granted, bit1 Reject, bit2 snapshot present
//	from          u64
//	to            u64
//	term          u64
//	lastLogIndex  u64
//	lastLogTerm   u64
//	prevLogIndex  u64
//	prevLogTerm   u64
//	commit        u64
//	match         u64
//	entries       u32 count, then per entry:
//	                index u64, term u64, type u8, data bytes
//	snapshot      (only if flag bit2) index u64, term u64,
//	                peers u32 count + count·u64, data bytes
//
// "bytes" is always a u32 length prefix followed by that many bytes.

const (
	raftFlagGranted  = 1 << 0
	raftFlagReject   = 1 << 1
	raftFlagSnapshot = 1 << 2

	raftFixedSize = 2 + 9*8 // type+flags then nine u64 fields
)

// RaftPayloadSize returns the exact encoded payload size of m, without
// encoding it.
func RaftPayloadSize(m raft.Message) int {
	n := raftFixedSize + 4
	for _, e := range m.Entries {
		n += 8 + 8 + 1 + 4 + len(e.Data)
	}
	if m.Snapshot != nil {
		n += 8 + 8 + 4 + 8*len(m.Snapshot.Peers) + 4 + len(m.Snapshot.Data)
	}
	return n
}

// RaftFrameSize returns the exact on-wire size of m's frame, header
// included — the number a byte counter records without encoding.
func RaftFrameSize(m raft.Message) int { return HeaderSize + RaftPayloadSize(m) }

// AppendRaftFrame appends a complete frame (header + payload) for m.
func AppendRaftFrame(dst []byte, m raft.Message) []byte {
	dst = AppendHeader(dst, KindRaft, RaftPayloadSize(m))
	var flags byte
	if m.Granted {
		flags |= raftFlagGranted
	}
	if m.Reject {
		flags |= raftFlagReject
	}
	if m.Snapshot != nil {
		flags |= raftFlagSnapshot
	}
	dst = append(dst, byte(m.Type), flags)
	dst = appendUint64(dst, m.From)
	dst = appendUint64(dst, m.To)
	dst = appendUint64(dst, m.Term)
	dst = appendUint64(dst, m.LastLogIndex)
	dst = appendUint64(dst, m.LastLogTerm)
	dst = appendUint64(dst, m.PrevLogIndex)
	dst = appendUint64(dst, m.PrevLogTerm)
	dst = appendUint64(dst, m.Commit)
	dst = appendUint64(dst, m.Match)
	dst = appendUint32(dst, uint32(len(m.Entries)))
	for _, e := range m.Entries {
		dst = appendUint64(dst, e.Index)
		dst = appendUint64(dst, e.Term)
		dst = append(dst, byte(e.Type))
		dst = appendBytes(dst, e.Data)
	}
	if m.Snapshot != nil {
		s := m.Snapshot
		dst = appendUint64(dst, s.Index)
		dst = appendUint64(dst, s.Term)
		dst = appendUint32(dst, uint32(len(s.Peers)))
		for _, p := range s.Peers {
			dst = appendUint64(dst, p)
		}
		dst = appendBytes(dst, s.Data)
	}
	return dst
}

// DecodeRaftPayload decodes a KindRaft payload. Entry data, snapshot
// contents and peer lists are copied out of b, so the caller may
// recycle the read buffer immediately.
func DecodeRaftPayload(b []byte) (raft.Message, error) {
	var m raft.Message
	if len(b) < raftFixedSize+4 {
		return m, fmt.Errorf("%w: raft payload is %d bytes", ErrTruncated, len(b))
	}
	m.Type = raft.MsgType(b[0])
	flags := b[1]
	if flags&^(raftFlagGranted|raftFlagReject|raftFlagSnapshot) != 0 {
		return m, fmt.Errorf("%w: unknown raft flags %#x", ErrBadFrame, flags)
	}
	m.Granted = flags&raftFlagGranted != 0
	m.Reject = flags&raftFlagReject != 0
	b = b[2:]
	var err error
	for _, dst := range []*uint64{
		&m.From, &m.To, &m.Term, &m.LastLogIndex, &m.LastLogTerm,
		&m.PrevLogIndex, &m.PrevLogTerm, &m.Commit, &m.Match,
	} {
		if *dst, b, err = readUint64(b); err != nil {
			return m, err
		}
	}
	nEntries, b, err := readUint32(b)
	if err != nil {
		return m, err
	}
	// Each entry costs ≥ 21 bytes on the wire; reject counts the
	// remaining payload cannot hold before allocating.
	if uint64(nEntries)*21 > uint64(len(b)) {
		return m, fmt.Errorf("%w: %d entries in %d bytes", ErrTruncated, nEntries, len(b))
	}
	if nEntries > 0 {
		m.Entries = make([]raft.Entry, nEntries)
		for i := range m.Entries {
			e := &m.Entries[i]
			if e.Index, b, err = readUint64(b); err != nil {
				return m, err
			}
			if e.Term, b, err = readUint64(b); err != nil {
				return m, err
			}
			if len(b) < 1 {
				return m, ErrTruncated
			}
			e.Type = raft.EntryType(b[0])
			b = b[1:]
			if e.Data, b, err = readBytes(b); err != nil {
				return m, err
			}
		}
	}
	if flags&raftFlagSnapshot != 0 {
		s := &raft.Snapshot{}
		if s.Index, b, err = readUint64(b); err != nil {
			return m, err
		}
		if s.Term, b, err = readUint64(b); err != nil {
			return m, err
		}
		nPeers, rest, err := readUint32(b)
		if err != nil {
			return m, err
		}
		b = rest
		if uint64(nPeers)*8 > uint64(len(b)) {
			return m, fmt.Errorf("%w: %d snapshot peers in %d bytes", ErrTruncated, nPeers, len(b))
		}
		if nPeers > 0 {
			s.Peers = make([]uint64, nPeers)
			for i := range s.Peers {
				s.Peers[i], b, _ = readUint64(b)
			}
		}
		if s.Data, b, err = readBytes(b); err != nil {
			return m, err
		}
		m.Snapshot = s
	}
	if len(b) != 0 {
		return m, fmt.Errorf("%w: %d trailing bytes after raft payload", ErrBadFrame, len(b))
	}
	return m, nil
}

// ReadRaftFrame reads one complete raft frame from r, reusing scratch
// as the payload read buffer (grown as needed, returned for the next
// call). It is the receive-loop counterpart of AppendRaftFrame.
func ReadRaftFrame(r io.Reader, scratch []byte) (raft.Message, []byte, error) {
	kind, payload, scratch, err := readFrame(r, scratch)
	if err != nil {
		return raft.Message{}, scratch, err
	}
	if kind != KindRaft {
		return raft.Message{}, scratch, fmt.Errorf("%w: kind %s, want %s", ErrBadFrame, kind, KindRaft)
	}
	m, err := DecodeRaftPayload(payload)
	return m, scratch, err
}

// framePrealloc caps what readFrame allocates on a header's say-so.
// Larger payloads grow the buffer geometrically, but only after the
// bytes already promised have actually arrived — so a length-field lie
// on a short stream costs at most framePrealloc (or double the bytes
// genuinely received), never a MaxPayload-sized allocation.
const framePrealloc = 64 << 10

// readFrame reads one header + payload from r into scratch.
func readFrame(r io.Reader, scratch []byte) (kind Kind, payload, grown []byte, err error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, scratch, err
	}
	kind, n, err := ParseHeader(hdr[:])
	if err != nil {
		return 0, nil, scratch, err
	}
	if cap(scratch) < n && cap(scratch) < framePrealloc {
		c := n
		if c > framePrealloc {
			c = framePrealloc
		}
		scratch = make([]byte, 0, c)
	}
	buf := scratch[:0]
	for len(buf) < n {
		if len(buf) == cap(buf) {
			c := 2 * cap(buf)
			if c > n {
				c = n
			}
			g := make([]byte, len(buf), c)
			copy(g, buf)
			buf = g
		}
		next := cap(buf)
		if next > n {
			next = n
		}
		start := len(buf)
		buf = buf[:next]
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return 0, nil, buf, fmt.Errorf("wire: short payload: %w", err)
		}
	}
	return kind, buf, buf, nil
}
