package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/raft"
)

// FuzzWireRoundTrip drives arbitrary bytes through every decoder (no
// panics, no absurd allocations) and, when the input parses, re-encodes
// the result and requires a byte-identical frame — the codec has exactly
// one encoding per value.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(AppendRaftFrame(nil, raft.Message{Type: raft.MsgAppend, From: 1, To: 2, Term: 3,
		Entries: []raft.Entry{{Index: 1, Term: 3, Data: []byte("d")}}}))
	f.Add(AppendMeshFrame(nil, MeshMessage{From: 1, To: 2, Kind: "sac/share", ShareIdx: 1, Payload: []float64{1, 2}}))
	f.Add(AppendCheckpointFrame(nil, Checkpoint{Names: []string{"w"}, Sizes: []int{1}, Weights: []float64{0.5}}))
	f.Add(AppendQuantFrame(nil, MeshMessage{From: 1, To: 2, Kind: "fedavg/download"},
		QuantDelta{Width: 1, Scale: 0.5, Q: []int16{1, -2, 3}}))
	f.Add(AppendSparseFrame(nil, MeshMessage{From: 1, To: 2, Kind: "fedavg/download"},
		SparseDelta{Dim: 8, Idx: []int32{1, 6}, Width: 0, Vals: []float64{0.5, -0.25}}))
	f.Add(AppendSparseFrame(nil, MeshMessage{From: 1, To: 2, Kind: "fedavg/download"},
		SparseDelta{Dim: 8, Idx: []int32{0, 7}, Width: 2, Scale: 0.125, Q: []int16{300, -300}}))
	f.Add(AppendQuantCheckpointFrame(nil, QuantCheckpoint{Names: []string{"w"}, Sizes: []int{2},
		Delta: QuantDelta{Width: 2, Scale: 0.25, Q: []int16{5, -5}}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, n, err := ParseHeader(data)
		if err != nil {
			return
		}
		if n > len(data)-HeaderSize {
			n = len(data) - HeaderSize
		}
		payload := data[HeaderSize : HeaderSize+n]
		switch kind {
		case KindRaft:
			m, err := DecodeRaftPayload(payload)
			if err != nil {
				return
			}
			re := AppendRaftFrame(nil, m)
			if !bytes.Equal(re[HeaderSize:], payload) {
				t.Fatalf("raft re-encode differs:\n in  % x\n out % x", payload, re[HeaderSize:])
			}
			m2, err := DecodeRaftPayload(re[HeaderSize:])
			if err != nil || !reflect.DeepEqual(m, m2) {
				t.Fatalf("raft second decode: %v", err)
			}
		case KindMesh:
			m, err := DecodeMeshPayload(payload)
			if err != nil {
				return
			}
			re := AppendMeshFrame(nil, m)
			if !bytes.Equal(re[HeaderSize:], payload) {
				t.Fatalf("mesh re-encode differs")
			}
		case KindCheckpoint:
			cp, err := DecodeCheckpointPayload(payload)
			if err != nil {
				return
			}
			re := AppendCheckpointFrame(nil, cp)
			if !bytes.Equal(re[HeaderSize:], payload) {
				t.Fatalf("checkpoint re-encode differs")
			}
		case KindDeltaQuant:
			m, q, err := DecodeQuantPayload(payload)
			if err != nil {
				return
			}
			re := AppendQuantFrame(nil, m, q)
			if !bytes.Equal(re[HeaderSize:], payload) {
				t.Fatalf("quant re-encode differs:\n in  % x\n out % x", payload, re[HeaderSize:])
			}
		case KindDeltaSparse:
			m, s, err := DecodeSparsePayload(payload)
			if err != nil {
				return
			}
			re := AppendSparseFrame(nil, m, s)
			if !bytes.Equal(re[HeaderSize:], payload) {
				t.Fatalf("sparse re-encode differs:\n in  % x\n out % x", payload, re[HeaderSize:])
			}
		case KindCheckpointQuant:
			qcp, err := DecodeQuantCheckpointPayload(payload)
			if err != nil {
				return
			}
			re := AppendQuantCheckpointFrame(nil, qcp)
			if !bytes.Equal(re[HeaderSize:], payload) {
				t.Fatalf("quant checkpoint re-encode differs")
			}
		}
	})
}

// FuzzFloat64sRoundTrip checks the float-block primitive in isolation:
// any vector round-trips bit-exactly through a (possibly reused) dst.
func FuzzFloat64sRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, raw []byte) {
		in := make([]float64, len(raw)/8)
		for i := range in {
			var u uint64
			for j := 0; j < 8; j++ {
				u = u<<8 | uint64(raw[8*i+j])
			}
			in[i] = math.Float64frombits(u)
		}
		enc := AppendFloat64s(nil, in)
		out, rest, err := ReadFloat64s(enc, make([]float64, 0, len(in)))
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 || len(out) != len(in) {
			t.Fatalf("rest=%d len=%d want len=%d", len(rest), len(out), len(in))
		}
		for i := range in {
			if math.Float64bits(out[i]) != math.Float64bits(in[i]) {
				t.Fatalf("element %d not bit-exact", i)
			}
		}
	})
}
