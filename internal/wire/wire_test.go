package wire

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/raft"
)

func sampleRaftMessages() []raft.Message {
	return []raft.Message{
		{},
		{Type: raft.MsgVoteRequest, From: 1, To: 2, Term: 3, LastLogIndex: 9, LastLogTerm: 2},
		{Type: raft.MsgVoteResponse, From: 2, To: 1, Term: 3, Granted: true},
		// Pre-vote probes (WAN stability): same shape as real votes, a
		// distinct type byte the codec must pass through untouched.
		{Type: raft.MsgPreVoteRequest, From: 3, To: 1, Term: 4, LastLogIndex: 9, LastLogTerm: 2},
		{Type: raft.MsgPreVoteResponse, From: 1, To: 3, Term: 4, Granted: true},
		{Type: raft.MsgPreVoteResponse, From: 2, To: 3, Term: 3},
		{Type: raft.MsgAppendResponse, From: 4, To: 1, Term: 7, Reject: true, Match: 42},
		{Type: raft.MsgAppend, From: 1, To: 5, Term: 7, PrevLogIndex: 10, PrevLogTerm: 6,
			Commit: 9, Entries: []raft.Entry{
				{Index: 11, Term: 7, Type: raft.EntryNormal, Data: []byte("weights")},
				{Index: 12, Term: 7, Type: raft.EntryNoop},
				{Index: 13, Term: 7, Type: raft.EntryConfChange, Data: []byte(`{"add":true,"node_id":9}`)},
			}},
		{Type: raft.MsgSnapshot, From: 1, To: 3, Term: 8, Snapshot: &raft.Snapshot{
			Index: 20, Term: 8, Peers: []uint64{1, 2, 3}, Data: bytes.Repeat([]byte{0xAB}, 100)}},
		{Type: raft.MsgSnapshot, From: 1, To: 3, Term: 8, Snapshot: &raft.Snapshot{Index: 1, Term: 1}},
	}
}

func TestRaftRoundTrip(t *testing.T) {
	for i, m := range sampleRaftMessages() {
		frame := AppendRaftFrame(nil, m)
		if len(frame) != RaftFrameSize(m) {
			t.Fatalf("msg %d: frame is %d bytes, RaftFrameSize says %d", i, len(frame), RaftFrameSize(m))
		}
		kind, n, err := ParseHeader(frame)
		if err != nil || kind != KindRaft || n != len(frame)-HeaderSize {
			t.Fatalf("msg %d: header kind=%d len=%d err=%v", i, kind, n, err)
		}
		got, err := DecodeRaftPayload(frame[HeaderSize:])
		if err != nil {
			t.Fatalf("msg %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("msg %d: round trip\n got %+v\nwant %+v", i, got, m)
		}
	}
}

func TestRaftStreamRoundTrip(t *testing.T) {
	msgs := sampleRaftMessages()
	var stream bytes.Buffer
	buf := GetBuffer()
	defer buf.Release()
	for _, m := range msgs {
		buf.B = AppendRaftFrame(buf.B[:0], m)
		stream.Write(buf.B)
	}
	var scratch []byte
	for i, want := range msgs {
		var got raft.Message
		var err error
		got, scratch, err = ReadRaftFrame(&stream, scratch)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("msg %d: stream round trip mismatch", i)
		}
	}
}

func TestMeshRoundTrip(t *testing.T) {
	msgs := []MeshMessage{
		{},
		{From: 0, To: 4, Kind: "sac/share", ShareIdx: 2, Payload: []float64{1.5, -2.25, math.Pi, 0}},
		{From: -1, To: -7, Kind: "", ShareIdx: -3, Payload: nil},
		{From: 3, To: 0, Kind: "sac/subtotal", ShareIdx: 3,
			Payload: []float64{math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64}},
	}
	for i, m := range msgs {
		frame := AppendMeshFrame(nil, m)
		if len(frame) != MeshFrameSize(m.Kind, len(m.Payload)) {
			t.Fatalf("msg %d: frame is %d bytes, MeshFrameSize says %d",
				i, len(frame), MeshFrameSize(m.Kind, len(m.Payload)))
		}
		got, _, err := ReadMeshFrame(bytes.NewReader(frame), nil)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if got.From != m.From || got.To != m.To || got.Kind != m.Kind || got.ShareIdx != m.ShareIdx {
			t.Fatalf("msg %d: fields: got %+v want %+v", i, got, m)
		}
		if len(got.Payload) != len(m.Payload) {
			t.Fatalf("msg %d: payload length %d, want %d", i, len(got.Payload), len(m.Payload))
		}
		for j := range m.Payload {
			if math.Float64bits(got.Payload[j]) != math.Float64bits(m.Payload[j]) {
				t.Fatalf("msg %d: payload[%d] = %v, want %v (bit-exact)", i, j, got.Payload[j], m.Payload[j])
			}
		}
	}
}

// NaN payloads must survive bit-exactly — models never contain NaN in
// healthy runs, but the codec must not silently canonicalize payloads.
func TestFloat64sNaNBitPatterns(t *testing.T) {
	in := []float64{math.NaN(), math.Float64frombits(0x7FF8_0000_0000_0001)}
	out, rest, err := ReadFloat64s(AppendFloat64s(nil, in), nil)
	if err != nil || len(rest) != 0 {
		t.Fatalf("err=%v rest=%d", err, len(rest))
	}
	for i := range in {
		if math.Float64bits(out[i]) != math.Float64bits(in[i]) {
			t.Fatalf("bit pattern %d: %x → %x", i, math.Float64bits(in[i]), math.Float64bits(out[i]))
		}
	}
}

func TestReadFloat64sReusesDst(t *testing.T) {
	frame := AppendFloat64s(nil, []float64{1, 2, 3})
	dst := make([]float64, 0, 8)
	out, _, err := ReadFloat64s(frame, dst)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &dst[:1][0] {
		t.Fatal("ReadFloat64s did not reuse the caller's buffer")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	cps := []Checkpoint{
		{},
		{Names: []string{"dense0/W", "dense0/b"}, Sizes: []int{128, 16},
			Weights: []float64{0.5, -0.25, 1e-9, 3}},
	}
	for i, cp := range cps {
		frame := AppendCheckpointFrame(nil, cp)
		if len(frame) != CheckpointFrameSize(cp) {
			t.Fatalf("cp %d: frame is %d bytes, CheckpointFrameSize says %d", i, len(frame), CheckpointFrameSize(cp))
		}
		got, err := ReadCheckpointFrame(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("cp %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, cp) {
			t.Fatalf("cp %d: round trip\n got %+v\nwant %+v", i, got, cp)
		}
	}
}

func TestParseHeaderRejects(t *testing.T) {
	good := AppendHeader(nil, KindRaft, 0)
	cases := map[string]func([]byte) []byte{
		"short":        func(h []byte) []byte { return h[:HeaderSize-1] },
		"magic":        func(h []byte) []byte { h[0] = 'X'; return h },
		"version":      func(h []byte) []byte { h[4] = 99; return h },
		"reserved":     func(h []byte) []byte { h[6] = 1; return h },
		"huge payload": func(h []byte) []byte { h[8], h[9], h[10], h[11] = 0xFF, 0xFF, 0xFF, 0xFF; return h },
	}
	for name, mutate := range cases {
		h := append([]byte(nil), good...)
		if _, _, err := ParseHeader(mutate(h)); err == nil {
			t.Fatalf("%s: corrupt header accepted", name)
		}
	}
	if _, _, err := ParseHeader(good); err != nil {
		t.Fatalf("pristine header rejected: %v", err)
	}
}

// Truncating an encoded frame at every possible byte boundary must
// produce an error, never a panic or a silent partial decode.
func TestTruncationNeverPanics(t *testing.T) {
	m := sampleRaftMessages()[4]
	frame := AppendRaftFrame(nil, m)
	for cut := HeaderSize; cut < len(frame); cut++ {
		if _, err := DecodeRaftPayload(frame[HeaderSize:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	mm := MeshMessage{From: 1, To: 2, Kind: "sac/share", ShareIdx: 0, Payload: []float64{1, 2}}
	mf := AppendMeshFrame(nil, mm)
	for cut := HeaderSize; cut < len(mf); cut++ {
		if _, err := DecodeMeshPayload(mf[HeaderSize:cut]); err == nil {
			t.Fatalf("mesh truncation at %d accepted", cut)
		}
	}
	cp := Checkpoint{Names: []string{"w"}, Sizes: []int{2}, Weights: []float64{1, 2}}
	cf := AppendCheckpointFrame(nil, cp)
	for cut := HeaderSize; cut < len(cf); cut++ {
		if _, err := DecodeCheckpointPayload(cf[HeaderSize:cut]); err == nil {
			t.Fatalf("checkpoint truncation at %d accepted", cut)
		}
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	frame := AppendRaftFrame(nil, raft.Message{Type: raft.MsgVoteRequest})
	if _, err := DecodeRaftPayload(append(frame[HeaderSize:], 0)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing byte: got %v, want ErrBadFrame", err)
	}
}

// A corrupt length prefix must not drive an absurd allocation: entry
// and parameter counts are validated against the remaining payload
// before any make().
func TestCorruptCountsRejectedBeforeAllocation(t *testing.T) {
	m := raft.Message{Type: raft.MsgAppend, Entries: []raft.Entry{{Index: 1, Term: 1}}}
	frame := AppendRaftFrame(nil, m)
	payload := append([]byte(nil), frame[HeaderSize:]...)
	// Entry count lives right after the fixed fields.
	off := raftFixedSize
	payload[off], payload[off+1], payload[off+2], payload[off+3] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, err := DecodeRaftPayload(payload); !errors.Is(err, ErrTruncated) {
		t.Fatalf("absurd entry count: got %v, want ErrTruncated", err)
	}
}

func TestBufferPoolReuse(t *testing.T) {
	b := GetBuffer()
	b.B = append(b.B, make([]byte, 4096)...)
	b.Release()
	b2 := GetBuffer()
	defer b2.Release()
	if len(b2.B) != 0 {
		t.Fatal("pooled buffer not reset to empty")
	}
}

func TestFrameSizeFunctionsMatchEncoding(t *testing.T) {
	for _, m := range sampleRaftMessages() {
		if got, want := len(AppendRaftFrame(nil, m)), RaftFrameSize(m); got != want {
			t.Fatalf("raft frame size mismatch: %d vs %d", got, want)
		}
	}
}
