package wire

import "sync"

// bufPool recycles encode buffers. Buffers grow to the largest frame
// they ever carried and stay that size, so a steady-state sender
// (encoding the same model dimension round after round) allocates
// nothing per message.
var bufPool = sync.Pool{New: func() any { return &Buffer{B: make([]byte, 0, 512)} }}

// Buffer is a pooled byte slice for frame encoding. Get one with
// GetBuffer, append frames into B, and Release it when the bytes have
// been written out. The slice must not be retained after Release.
type Buffer struct {
	B []byte
}

// GetBuffer returns an empty pooled buffer.
func GetBuffer() *Buffer {
	b := bufPool.Get().(*Buffer)
	b.B = b.B[:0]
	return b
}

// Release returns the buffer to the pool.
func (b *Buffer) Release() { bufPool.Put(b) }
