package health

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// fakeClock is a hand-advanced microsecond clock.
type fakeClock struct {
	mu sync.Mutex
	us int64
}

func (c *fakeClock) now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.us
}

func (c *fakeClock) advance(us int64) {
	c.mu.Lock()
	c.us += us
	c.mu.Unlock()
}

func newTestDetector(t *testing.T, clk *fakeClock, peers []uint64, onTr func(Transition)) *Detector {
	t.Helper()
	d, err := New(peers, Options{
		TickIntervalUs: 1000,
		Clock:          clk.now,
		OnTransition:   onTr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDetectorOptionValidation(t *testing.T) {
	clk := &fakeClock{}
	if _, err := New(nil, Options{Clock: clk.now}); err == nil {
		t.Fatal("want error for TickIntervalUs <= 0")
	}
	if _, err := New(nil, Options{TickIntervalUs: 1000}); err == nil {
		t.Fatal("want error for nil Clock")
	}
	if _, err := New(nil, Options{TickIntervalUs: 1000, Clock: clk.now, SuspectTicks: 3, DownTicks: 3}); err == nil {
		t.Fatal("want error for DownTicks <= SuspectTicks")
	}
}

func TestDetectorSilenceEscalates(t *testing.T) {
	clk := &fakeClock{}
	var trs []Transition
	d := newTestDetector(t, clk, []uint64{1, 2}, func(tr Transition) { trs = append(trs, tr) })

	// Peer 1 stays chatty; peer 2 goes silent.
	for i := 0; i < 4; i++ {
		clk.advance(1000)
		d.Observe(1)
		d.Tick()
	}
	want := []Transition{
		{Peer: 2, From: Up, To: Suspect, AtUs: 2000, SinceActivityUs: 2000, ThresholdUs: 2000},
		{Peer: 2, From: Suspect, To: Down, AtUs: 3000, SinceActivityUs: 3000, ThresholdUs: 3000},
	}
	if !reflect.DeepEqual(trs, want) {
		t.Fatalf("transitions = %+v, want %+v", trs, want)
	}
	if s, _ := d.State(1); s != Up {
		t.Fatalf("peer 1 state = %v, want Up", s)
	}
	if s, _ := d.State(2); s != Down {
		t.Fatalf("peer 2 state = %v, want Down", s)
	}
	if d.AllUp() {
		t.Fatal("AllUp should be false with peer 2 down")
	}
}

func TestDetectorObserveRecovers(t *testing.T) {
	clk := &fakeClock{}
	var trs []Transition
	d := newTestDetector(t, clk, []uint64{7}, func(tr Transition) { trs = append(trs, tr) })

	clk.advance(3000)
	d.Tick() // straight to Down (gap hits both thresholds; Down wins)
	if len(trs) != 1 || trs[0].To != Down || trs[0].From != Up {
		t.Fatalf("want single Up→Down, got %+v", trs)
	}
	clk.advance(10)
	d.Observe(7)
	if len(trs) != 2 || trs[1].To != Up || trs[1].From != Down {
		t.Fatalf("want Down→Up recovery, got %+v", trs)
	}
	if !d.AllUp() {
		t.Fatal("AllUp should be true after recovery")
	}
	// Recovery resets the silence timer: one more interval is not enough
	// to re-suspect.
	clk.advance(1000)
	d.Tick()
	if len(trs) != 2 {
		t.Fatalf("unexpected extra transitions: %+v", trs)
	}
}

func TestDetectorWatchSet(t *testing.T) {
	clk := &fakeClock{}
	var trs []Transition
	d := newTestDetector(t, clk, []uint64{1, 2, 3}, func(tr Transition) { trs = append(trs, tr) })

	d.SetWatch([]uint64{2}) // follower: watch only the leader
	if got := d.Watched(); !reflect.DeepEqual(got, []uint64{2}) {
		t.Fatalf("Watched = %v, want [2]", got)
	}
	clk.advance(5000)
	d.Tick()
	// Only peer 2 judged; peers 1 and 3 silent but unwatched.
	if len(trs) != 1 || trs[0].Peer != 2 || trs[0].To != Down {
		t.Fatalf("want only peer 2 Down, got %+v", trs)
	}

	// Re-watching a silent peer restarts it Up with a fresh timer and no
	// transition: watching is a decision, not evidence.
	d.SetWatch([]uint64{1, 3})
	if len(trs) != 1 {
		t.Fatalf("SetWatch must not emit transitions, got %+v", trs)
	}
	if s, _ := d.State(1); s != Up {
		t.Fatalf("newly watched peer state = %v, want Up", s)
	}
	clk.advance(1999)
	d.Tick()
	if len(trs) != 1 {
		t.Fatalf("fresh watch timer violated: %+v", trs)
	}
	clk.advance(1)
	d.Tick()
	if len(trs) != 3 { // peers 1 and 3 Suspect, ascending order
		t.Fatalf("want 3 transitions, got %+v", trs)
	}
	if trs[1].Peer != 1 || trs[2].Peer != 3 {
		t.Fatalf("Tick order must be ascending peer id, got %+v", trs[1:])
	}

	// Unknown ids in the watch set are added to the table.
	d.SetWatch([]uint64{9})
	if _, ok := d.State(9); !ok {
		t.Fatal("peer 9 should be known after SetWatch")
	}
}

func TestDetectorResetClearsVerdicts(t *testing.T) {
	clk := &fakeClock{}
	var trs []Transition
	d := newTestDetector(t, clk, []uint64{1, 2}, func(tr Transition) { trs = append(trs, tr) })
	clk.advance(4000)
	d.Tick()
	if len(trs) != 2 {
		t.Fatalf("want both peers Down, got %+v", trs)
	}
	d.Reset()
	if len(trs) != 2 {
		t.Fatalf("Reset must not emit transitions, got %+v", trs)
	}
	if !d.AllUp() {
		t.Fatal("AllUp should hold after Reset")
	}
	clk.advance(1000)
	d.Tick()
	if len(trs) != 2 {
		t.Fatalf("Reset must restart silence timers, got %+v", trs)
	}
}

func TestDetectorSnapshotAndTelemetry(t *testing.T) {
	clk := &fakeClock{}
	reg := telemetry.New()
	reg.SetClock(clk.now)
	d, err := New([]uint64{1, 2}, Options{
		TickIntervalUs: 1000,
		Clock:          clk.now,
		Telemetry:      reg,
		Owner:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(2500)
	d.Observe(1)
	d.Tick()
	snap := d.Snapshot()
	want := []PeerStatus{
		{Peer: 1, State: "up", Watched: true, SinceActivityUs: 0},
		{Peer: 2, State: "suspect", Watched: true, SinceActivityUs: 2500},
	}
	if !reflect.DeepEqual(snap, want) {
		t.Fatalf("Snapshot = %+v, want %+v", snap, want)
	}
	if got := reg.Counter("health/transitions_suspect").Value(); got != 1 {
		t.Fatalf("transitions_suspect = %d, want 1", got)
	}
	clk.advance(2999) // peer 2 hits Down; peer 1's gap stays below threshold
	d.Tick()
	d.Observe(2)
	if got := reg.Counter("health/transitions_down").Value(); got != 1 {
		t.Fatalf("transitions_down = %d, want 1", got)
	}
	if got := reg.Counter("health/transitions_up").Value(); got != 1 {
		t.Fatalf("transitions_up = %d, want 1", got)
	}
}

// TestDetectorConcurrentObserve exercises Observe/Tick/Snapshot races
// under -race.
func TestDetectorConcurrentObserve(t *testing.T) {
	clk := &fakeClock{}
	d := newTestDetector(t, clk, []uint64{1, 2, 3, 4}, nil)
	var wg sync.WaitGroup
	for p := uint64(1); p <= 4; p++ {
		wg.Add(1)
		go func(p uint64) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d.Observe(p)
			}
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			clk.advance(100)
			d.Tick()
			d.Snapshot()
			d.AllUp()
		}
	}()
	wg.Wait()
}
