package health

import (
	"math/rand"
	"testing"
)

// traceSamples generates n RTT samples (base plus seeded positive
// noise) per peer — a pure function of (seed, n, bases), the synthetic
// stand-ins for the LAN (15 ms), WAN (50 ms) and mixed link profiles
// the tuner must cover.
func traceSamples(seed int64, n int, baseUs map[uint64]int64) map[uint64][]int64 {
	out := make(map[uint64][]int64, len(baseUs))
	for peer, base := range baseUs {
		// Seeded per peer: map iteration order cannot leak into samples.
		prng := rand.New(rand.NewSource(seed ^ int64(peer)<<32))
		for i := 0; i < n; i++ {
			out[peer] = append(out[peer], base+prng.Int63n(base/4+1))
		}
	}
	return out
}

func trace(seed int64, n int, baseUs map[uint64]int64) *RTTStats {
	r := NewRTTStats(0)
	for peer, samples := range traceSamples(seed, n, baseUs) {
		for _, s := range samples {
			r.Observe(peer, s)
		}
	}
	return r
}

func lanTrace(seed int64) *RTTStats {
	return trace(seed, 64, map[uint64]int64{2: 15_000, 3: 15_000})
}

func wanTrace(seed int64) *RTTStats {
	return trace(seed, 64, map[uint64]int64{2: 50_000, 3: 56_000})
}

func mixedTrace(seed int64) *RTTStats {
	return trace(seed, 64, map[uint64]int64{2: 2_000, 3: 50_000, 4: 44_000})
}

// TestTuningBandsWithinClamp: for every profile and many seeds, the
// derived band stays inside [MinTicks, MaxTicks×Spread], is well-formed
// (min < max), and preserves the U(T, 2T) spread shape.
func TestTuningBandsWithinClamp(t *testing.T) {
	tun := Tuning{TickUs: 1000}
	profiles := map[string]func(int64) *RTTStats{
		"lan15": lanTrace, "wan50": wanTrace, "mixed": mixedTrace,
	}
	for name, mk := range profiles {
		for seed := int64(1); seed <= 20; seed++ {
			min, max, ok := tun.ElectionTicks(mk(seed))
			if !ok {
				t.Fatalf("%s seed %d: tuner refused a fully-populated trace", name, seed)
			}
			if min < 50 || min > 5000 {
				t.Errorf("%s seed %d: min %d outside clamp [50, 5000]", name, seed, min)
			}
			if max <= min {
				t.Errorf("%s seed %d: degenerate band [%d, %d)", name, seed, min, max)
			}
			if max > 2*min {
				t.Errorf("%s seed %d: band [%d, %d) wider than the U(T,2T) spread", name, seed, min, max)
			}
		}
	}
}

// TestTuningMonotoneInRTT: a strictly slower network never yields a
// smaller timeout. LAN ≤ mixed ≤ WAN for every seed (the mixed profile's
// worst link is within the WAN profile's), and scaling every sample up
// scales the band up.
func TestTuningMonotoneInRTT(t *testing.T) {
	tun := Tuning{TickUs: 1000}
	for seed := int64(1); seed <= 20; seed++ {
		lanMin, _, _ := tun.ElectionTicks(lanTrace(seed))
		mixMin, _, _ := tun.ElectionTicks(mixedTrace(seed))
		wanMin, _, _ := tun.ElectionTicks(wanTrace(seed))
		if lanMin > mixMin || mixMin > wanMin {
			t.Fatalf("seed %d: tuned mins not monotone: lan %d, mixed %d, wan %d", seed, lanMin, mixMin, wanMin)
		}
		// LAN p99 is ~18.75 ms → 10× is within [50, 5000]: the LAN band
		// must sit at (or barely above) the stock floor.
		if lanMin >= wanMin {
			t.Fatalf("seed %d: WAN band %d not above LAN band %d", seed, wanMin, lanMin)
		}

		double := NewRTTStats(0)
		for peer, samples := range traceSamples(seed, 64, map[uint64]int64{2: 50_000, 3: 56_000}) {
			for _, s := range samples {
				double.Observe(peer, 2*s)
			}
		}
		dblMin, _, _ := tun.ElectionTicks(double)
		if dblMin < wanMin {
			t.Fatalf("seed %d: doubling every RTT shrank the band %d → %d", seed, wanMin, dblMin)
		}
	}
}

// TestTuningDeterministicPerSeed: equal traces give byte-identical
// bands — the property that lets retuning live inside deterministic
// replay.
func TestTuningDeterministicPerSeed(t *testing.T) {
	tun := Tuning{TickUs: 1000}
	for seed := int64(1); seed <= 20; seed++ {
		aMin, aMax, aOK := tun.ElectionTicks(mixedTrace(seed))
		bMin, bMax, bOK := tun.ElectionTicks(mixedTrace(seed))
		if aMin != bMin || aMax != bMax || aOK != bOK {
			t.Fatalf("seed %d: equal traces produced different bands [%d,%d,%v] vs [%d,%d,%v]",
				seed, aMin, aMax, aOK, bMin, bMax, bOK)
		}
	}
}

// TestTuningRefusals: the tuner must decline — rather than emit a junk
// band — without a tick duration, without a tracker, or before any peer
// has MinSamples observations.
func TestTuningRefusals(t *testing.T) {
	if _, _, ok := (Tuning{}).ElectionTicks(lanTrace(1)); ok {
		t.Fatal("tuner produced a band with TickUs unset")
	}
	if _, _, ok := (Tuning{TickUs: 1000}).ElectionTicks(nil); ok {
		t.Fatal("tuner produced a band from a nil tracker")
	}
	thin := NewRTTStats(0)
	for i := 0; i < 15; i++ { // one below the default MinSamples=16
		thin.Observe(2, 50_000)
	}
	if _, _, ok := (Tuning{TickUs: 1000}).ElectionTicks(thin); ok {
		t.Fatal("tuner produced a band below MinSamples")
	}
	thin.Observe(2, 50_000)
	if min, _, ok := (Tuning{TickUs: 1000}).ElectionTicks(thin); !ok || min != 500 {
		t.Fatalf("tuner at exactly MinSamples: min=%d ok=%v, want 500 (10×50ms/1ms)", min, ok)
	}
}

// TestRTTStatsWindowAndQuantiles pins the tracker plumbing the tuner
// rides on: nearest-rank quantiles, bounded ring windows that forget old
// samples, per-peer isolation, and MaxQuantile's qualification rule.
func TestRTTStatsWindowAndQuantiles(t *testing.T) {
	r := NewRTTStats(4)
	for _, v := range []int64{40, 10, 30, 20} {
		r.Observe(2, v)
	}
	if q, ok := r.Quantile(2, 0); !ok || q != 10 {
		t.Fatalf("q0 = %d,%v want 10", q, ok)
	}
	if q, ok := r.Quantile(2, 1); !ok || q != 40 {
		t.Fatalf("q1 = %d,%v want 40", q, ok)
	}
	if q, ok := r.Quantile(2, 0.5); !ok || q != 30 {
		t.Fatalf("q0.5 = %d,%v want 30 (nearest rank, idx=ceil(0.5×3)=2)", q, ok)
	}
	// Window rolls: four more samples evict the originals entirely.
	for _, v := range []int64{100, 100, 100, 100} {
		r.Observe(2, v)
	}
	if q, ok := r.Quantile(2, 0); !ok || q != 100 {
		t.Fatalf("after roll, q0 = %d,%v want 100", q, ok)
	}
	// Ignored junk and peer isolation.
	r.Observe(2, 0)
	r.Observe(2, -5)
	if n := r.Samples(2); n != 4 {
		t.Fatalf("non-positive samples were recorded: window has %d", n)
	}
	if _, ok := r.Quantile(9, 0.5); ok {
		t.Fatal("quantile for unseen peer reported ok")
	}
	// MaxQuantile takes the worst qualifying peer and skips thin ones.
	r.Observe(3, 500)
	worst, qualified := r.MaxQuantile(0.99, 4)
	if qualified != 1 || worst != 100 {
		t.Fatalf("MaxQuantile(0.99, 4) = %d over %d peers, want 100 over 1 (peer 3 unqualified)", worst, qualified)
	}
	worst, qualified = r.MaxQuantile(0.99, 1)
	if qualified != 2 || worst != 500 {
		t.Fatalf("MaxQuantile(0.99, 1) = %d over %d peers, want 500 over 2", worst, qualified)
	}
	r.Reset()
	if len(r.Peers()) != 0 {
		t.Fatal("Reset left peers behind")
	}
}
