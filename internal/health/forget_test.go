package health

import "testing"

// TestDetectorForgetThenReadopt pins the departed-peer lifecycle: Forget
// erases verdict state, watch membership and RTT history without
// emitting a transition, and a later re-admission of the same id starts
// timing from scratch — no stale Down verdict, no inherited silence gap,
// no leftover RTT window.
func TestDetectorForgetThenReadopt(t *testing.T) {
	clk := &fakeClock{}
	var trs []Transition
	d := newTestDetector(t, clk, []uint64{1, 2}, func(tr Transition) { trs = append(trs, tr) })
	d.ObserveRTT(2, 500)
	d.ObserveRTT(2, 700)

	// Drive peer 2 to Down through silence while peer 1 stays chatty.
	for i := 0; i < 4; i++ {
		clk.advance(1000)
		d.Observe(1)
		d.Tick()
	}
	if s, _ := d.State(2); s != Down {
		t.Fatalf("peer 2 state = %v, want Down before Forget", s)
	}
	pre := len(trs) // Up→Suspect, Suspect→Down

	d.Forget(2)

	if len(trs) != pre {
		t.Fatalf("Forget emitted %d transitions", len(trs)-pre)
	}
	if _, known := d.State(2); known {
		t.Fatal("forgotten peer still known")
	}
	if got := d.Watched(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("watch set after Forget = %v, want [1]", got)
	}
	if n := d.RTT().Samples(2); n != 0 {
		t.Fatalf("forgotten peer still holds %d RTT samples", n)
	}
	if !d.AllUp() {
		t.Fatal("AllUp must hold once the Down peer is forgotten")
	}
	for _, st := range d.Snapshot() {
		if st.Peer == 2 {
			t.Fatal("forgotten peer still in Snapshot")
		}
	}

	// Readopt the same id, as the cluster does when a successor inherits
	// a departed peer's identity: the fresh row is Up with activity based
	// at re-admission, so the old silence cannot instantly re-condemn it.
	d.SetWatch([]uint64{1, 2})
	if s, known := d.State(2); !known || s != Up {
		t.Fatalf("readopted peer state = %v (known=%v), want fresh Up", s, known)
	}
	d.Tick()
	if len(trs) != pre {
		t.Fatalf("readopted peer drew an immediate verdict: %+v", trs[pre:])
	}

	// The fresh row escalates on its own schedule: silence counted from
	// re-admission, not from the forgotten row's last activity.
	clk.advance(2000)
	d.Observe(1)
	d.Tick()
	if len(trs) != pre+1 || trs[pre].Peer != 2 || trs[pre].To != Suspect {
		t.Fatalf("transitions after fresh silence = %+v, want one Up→Suspect for peer 2", trs[pre:])
	}
}
