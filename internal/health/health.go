// Package health is a last-activity failure detector: the layer that
// turns raw message arrivals into explicit Up / Suspect / Down verdicts
// about peers, so the rest of the system can *react* to a failed peer
// instead of waiting for a protocol timeout to limp past it. Bonawitz et
// al. (Practical Secure Aggregation) treat dropout detection as a
// first-class protocol input; this package is that input for both the
// live runtime (cmd/p2pfl-node, fed by transport activity) and the
// simulated two-layer cluster (internal/cluster, fed by simnet message
// delivery).
//
// Design rules (see DESIGN.md §9):
//
//   - The clock is pluggable (Options.Clock, microseconds): live
//     processes install telemetry.WallClock, simulations install the
//     virtual clock, so the same detector logic runs — and is tested —
//     under deterministic virtual time.
//
//   - Thresholds derive from the expected activity interval
//     (Options.TickIntervalUs, normally the raft heartbeat interval):
//     a peer is Suspect after SuspectTicks intervals without activity
//     and Down after DownTicks. Verdicts only change on Tick (and on
//     Observe for recovery), so a single-goroutine driver — the simnet
//     event loop or the node's main loop — sees fully deterministic
//     transition times; Tick evaluates peers in ascending id order so
//     callback order is deterministic too.
//
//   - Raft traffic is asymmetric: on a quiet group only the leader
//     talks, so a follower can only ever judge its leader, while the
//     leader (receiving AppendResponses) can judge everyone. The watch
//     set (SetWatch) encodes this: verdicts are evaluated only for
//     watched peers; activity is tracked for all known peers so a
//     watch-set change starts from real data.
package health

import (
	"errors"
	"sort"
	"sync"

	"repro/internal/telemetry"
)

// State is a peer's health verdict.
type State int32

// Peer states, ordered by increasing severity.
const (
	Up State = iota
	Suspect
	Down
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case Up:
		return "up"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	default:
		return "unknown"
	}
}

// Transition is one state change, delivered to Options.OnTransition.
// SinceActivityUs is the gap between the peer's last observed activity
// and the moment of the verdict; ThresholdUs is the bound that was
// crossed (0 for recoveries to Up). Invariant checkers use the pair to
// prove no false Down was ever issued.
type Transition struct {
	Peer            uint64
	From, To        State
	AtUs            int64
	SinceActivityUs int64
	ThresholdUs     int64
}

// Options configures a Detector.
type Options struct {
	// TickIntervalUs is the expected activity interval in microseconds
	// (normally the raft heartbeat interval). Required, must be > 0.
	TickIntervalUs int64
	// SuspectTicks intervals without activity mark a peer Suspect.
	// Default 2.
	SuspectTicks int
	// DownTicks intervals without activity mark a peer Down. Default 3;
	// must be > SuspectTicks.
	DownTicks int
	// Clock returns the current time in microseconds. Required: live
	// callers pass telemetry.WallClock, simulations the virtual clock.
	Clock func() int64
	// OnTransition, if set, is called for every state change. Calls are
	// made outside the detector lock, in deterministic order, from
	// whichever goroutine invoked Tick/Observe.
	OnTransition func(Transition)
	// Telemetry receives transition counters and trace events. A nil
	// registry is a valid no-op sink.
	Telemetry *telemetry.Registry
	// Owner tags telemetry trace events with the observing node's id.
	Owner uint64
}

// PeerStatus is one row of Snapshot.
type PeerStatus struct {
	Peer            uint64 `json:"peer"`
	State           string `json:"state"`
	Watched         bool   `json:"watched"`
	SinceActivityUs int64  `json:"since_activity_us"`
}

type peerInfo struct {
	lastActivity int64
	state        State
	watched      bool
}

// Detector tracks last-seen activity per peer and derives health
// verdicts. All methods are safe for concurrent use; verdict changes
// happen only inside Tick and Observe.
type Detector struct {
	mu    sync.Mutex
	opts  Options
	peers map[uint64]*peerInfo

	suspectAfter int64
	downAfter    int64

	// rtt aggregates per-peer round-trip samples (ObserveRTT) for the
	// self-tuning timeout loop; separate from the verdict state so RTT
	// feeds never perturb Up/Suspect/Down determinism.
	rtt *RTTStats

	transUp, transSuspect, transDown *telemetry.Counter
}

// New builds a detector over the given peer set. All peers start Up
// and watched, with last activity set to "now" so the first verdicts
// need a full threshold of real silence.
func New(peers []uint64, o Options) (*Detector, error) {
	if o.TickIntervalUs <= 0 {
		return nil, errors.New("health: TickIntervalUs must be > 0")
	}
	if o.Clock == nil {
		return nil, errors.New("health: Clock is required")
	}
	if o.SuspectTicks < 0 || o.DownTicks < 0 {
		return nil, errors.New("health: negative tick thresholds")
	}
	if o.SuspectTicks == 0 {
		o.SuspectTicks = 2
	}
	if o.DownTicks == 0 {
		o.DownTicks = 3
	}
	if o.DownTicks <= o.SuspectTicks {
		return nil, errors.New("health: DownTicks must be > SuspectTicks")
	}
	d := &Detector{
		opts:         o,
		peers:        make(map[uint64]*peerInfo, len(peers)),
		suspectAfter: int64(o.SuspectTicks) * o.TickIntervalUs,
		downAfter:    int64(o.DownTicks) * o.TickIntervalUs,
		rtt:          NewRTTStats(0),
		transUp:      o.Telemetry.Counter("health/transitions_up"),
		transSuspect: o.Telemetry.Counter("health/transitions_suspect"),
		transDown:    o.Telemetry.Counter("health/transitions_down"),
	}
	now := o.Clock()
	for _, p := range peers {
		d.peers[p] = &peerInfo{lastActivity: now, state: Up, watched: true}
	}
	return d, nil
}

// SuspectAfterUs returns the silence threshold for the Suspect verdict.
func (d *Detector) SuspectAfterUs() int64 { return d.suspectAfter }

// DownAfterUs returns the silence threshold for the Down verdict.
func (d *Detector) DownAfterUs() int64 { return d.downAfter }

// SetWatch replaces the watch set: verdicts are evaluated only for the
// given peers. A peer newly added to the watch set restarts Up with
// last activity "now" (no transition emitted) — watching is a decision
// to start timing a peer, not evidence about its past. Passing an empty
// slice watches nobody. Unknown ids are added to the peer table.
func (d *Detector) SetWatch(ids []uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.opts.Clock()
	want := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	for id, pi := range d.peers {
		if want[id] && !pi.watched {
			pi.watched = true
			pi.lastActivity = now
			pi.state = Up
		} else if !want[id] {
			pi.watched = false
		}
	}
	for id := range want {
		if _, ok := d.peers[id]; !ok {
			d.peers[id] = &peerInfo{lastActivity: now, state: Up, watched: true}
		}
	}
}

// Watched returns the current watch set in ascending id order.
func (d *Detector) Watched() []uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []uint64
	for id, pi := range d.peers {
		if pi.watched {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Observe records activity from a peer (a message arrived, a connection
// made progress). A watched peer that was Suspect or Down recovers to
// Up immediately. Unknown peers are added to the table so later watch
// changes can pick them up.
func (d *Detector) Observe(peer uint64) {
	d.mu.Lock()
	now := d.opts.Clock()
	pi, ok := d.peers[peer]
	if !ok {
		pi = &peerInfo{state: Up}
		d.peers[peer] = pi
	}
	since := now - pi.lastActivity
	pi.lastActivity = now
	var tr *Transition
	if pi.watched && pi.state != Up {
		tr = &Transition{Peer: peer, From: pi.state, To: Up, AtUs: now, SinceActivityUs: since}
		pi.state = Up
	}
	d.mu.Unlock()
	if tr != nil {
		d.emit(*tr)
	}
}

// ObserveRTT records a round-trip-time sample (microseconds) for a
// peer, feeding the self-tuning timeout loop (Tuning.ElectionTicks over
// RTT()). Callers typically pair it with Observe: the same message that
// proves liveness measures the link.
func (d *Detector) ObserveRTT(peer uint64, rttUs int64) { d.rtt.Observe(peer, rttUs) }

// RTT exposes the detector's round-trip-time tracker.
func (d *Detector) RTT() *RTTStats { return d.rtt }

// Tick evaluates watched peers against the silence thresholds and emits
// any Suspect/Down transitions, in ascending peer-id order. The caller
// drives it at roughly TickIntervalUs cadence; detection latency is
// bounded by threshold + one tick.
func (d *Detector) Tick() {
	d.mu.Lock()
	now := d.opts.Clock()
	ids := make([]uint64, 0, len(d.peers))
	for id, pi := range d.peers {
		if pi.watched {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var trs []Transition
	for _, id := range ids {
		pi := d.peers[id]
		gap := now - pi.lastActivity
		switch {
		case gap >= d.downAfter && pi.state != Down:
			trs = append(trs, Transition{Peer: id, From: pi.state, To: Down, AtUs: now, SinceActivityUs: gap, ThresholdUs: d.downAfter})
			pi.state = Down
		case gap >= d.suspectAfter && pi.state == Up:
			trs = append(trs, Transition{Peer: id, From: Up, To: Suspect, AtUs: now, SinceActivityUs: gap, ThresholdUs: d.suspectAfter})
			pi.state = Suspect
		}
	}
	d.mu.Unlock()
	for _, tr := range trs {
		d.emit(tr)
	}
}

// State returns the peer's current verdict and whether it is known.
func (d *Detector) State(peer uint64) (State, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	pi, ok := d.peers[peer]
	if !ok {
		return Up, false
	}
	return pi.state, true
}

// Snapshot returns every known peer's status in ascending id order,
// with silence gaps measured at a single clock read.
func (d *Detector) Snapshot() []PeerStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.opts.Clock()
	out := make([]PeerStatus, 0, len(d.peers))
	for id, pi := range d.peers {
		out = append(out, PeerStatus{
			Peer:            id,
			State:           pi.state.String(),
			Watched:         pi.watched,
			SinceActivityUs: now - pi.lastActivity,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// Reset marks every peer Up with last activity "now", without emitting
// transitions. Cluster drivers call it when the owning node restarts:
// a reborn node has no basis for old verdicts.
func (d *Detector) Reset() {
	d.mu.Lock()
	now := d.opts.Clock()
	for _, pi := range d.peers {
		pi.lastActivity = now
		pi.state = Up
	}
	d.mu.Unlock()
	d.rtt.Reset()
}

// Forget drops every trace of a departed peer: verdict state, watch
// membership and RTT history, without emitting a transition. Cluster
// drivers call it when a peer leaves the membership for good — keeping
// the row would both leak (the table otherwise only ever grows) and
// poison a future re-admission of the same id with a stale Down
// verdict. A later Observe or SetWatch of the id re-adds it fresh, with
// activity based at that moment.
func (d *Detector) Forget(peer uint64) {
	d.mu.Lock()
	delete(d.peers, peer)
	d.mu.Unlock()
	d.rtt.Forget(peer)
}

// AllUp reports whether every watched peer is currently Up. Chaos
// quiesce uses it as the detector re-convergence predicate.
func (d *Detector) AllUp() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, pi := range d.peers {
		if pi.watched && pi.state != Up {
			return false
		}
	}
	return true
}

func (d *Detector) emit(tr Transition) {
	switch tr.To {
	case Up:
		d.transUp.Inc()
	case Suspect:
		d.transSuspect.Inc()
	case Down:
		d.transDown.Inc()
	}
	d.opts.Telemetry.Trace("health/"+tr.To.String(), tr.Peer, -1,
		telemetry.F("owner", int64(d.opts.Owner)),
		telemetry.F("since_activity_us", tr.SinceActivityUs))
	if d.opts.OnTransition != nil {
		d.opts.OnTransition(tr)
	}
}
