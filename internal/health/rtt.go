package health

import (
	"sort"
	"sync"
)

// RTTStats tracks per-peer round-trip-time samples in bounded rings and
// answers quantile queries deterministically: at equal sample sequences
// every query returns byte-identical results, so the self-tuning
// timeout loop (Tuning) stays inside the deterministic-replay contract.
//
// The feed is whatever the embedding layer can observe: the simulated
// cluster reports 2× the one-way delivery delay from simnet's OnDeliver
// hook; a live node would time request/response pairs on its transport.
type RTTStats struct {
	mu      sync.Mutex
	cap     int
	rings   map[uint64]*rttRing
	scratch []int64 // pooled sort buffer; quantile queries allocate nothing at steady state
}

type rttRing struct {
	samples []int64 // ring buffer, len == cap once full
	next    int     // next write position
	full    bool
}

// DefaultRTTWindow is the per-peer sample window when NewRTTStats is
// given a non-positive capacity. 128 samples of heartbeat-paced traffic
// cover a few seconds — long enough to see jitter tails, short enough
// to track real route changes.
const DefaultRTTWindow = 128

// NewRTTStats creates a tracker keeping the last cap samples per peer.
func NewRTTStats(cap int) *RTTStats {
	if cap <= 0 {
		cap = DefaultRTTWindow
	}
	return &RTTStats{cap: cap, rings: make(map[uint64]*rttRing)}
}

// Observe records one RTT sample (microseconds) for a peer. Non-positive
// samples are ignored — a zero RTT is a measurement bug, not a network.
func (r *RTTStats) Observe(peer uint64, rttUs int64) {
	if rttUs <= 0 {
		return
	}
	r.mu.Lock()
	ring, ok := r.rings[peer]
	if !ok {
		ring = &rttRing{samples: make([]int64, 0, r.cap)}
		r.rings[peer] = ring
	}
	if len(ring.samples) < r.cap {
		ring.samples = append(ring.samples, rttUs)
	} else {
		ring.samples[ring.next] = rttUs
		ring.full = true
	}
	ring.next = (ring.next + 1) % r.cap
	r.mu.Unlock()
}

// Forget drops a single peer's samples — the departed-peer companion of
// Detector.Forget. A later Observe starts a fresh ring.
func (r *RTTStats) Forget(peer uint64) {
	r.mu.Lock()
	delete(r.rings, peer)
	r.mu.Unlock()
}

// Samples returns how many samples are currently held for a peer.
func (r *RTTStats) Samples(peer uint64) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ring, ok := r.rings[peer]; ok {
		return len(ring.samples)
	}
	return 0
}

// Peers returns the peers with at least one sample, in ascending order.
func (r *RTTStats) Peers() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]uint64, 0, len(r.rings))
	for p := range r.rings {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of a peer's current
// window, or ok=false with no samples. The estimator is the
// nearest-rank order statistic at index ceil(q·(n−1)): exact, branch-
// free and deterministic — no interpolation, so equal windows give
// equal bytes.
func (r *RTTStats) Quantile(peer uint64, q float64) (int64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ring, ok := r.rings[peer]
	if !ok || len(ring.samples) == 0 {
		return 0, false
	}
	return r.quantileLocked(ring, q), true
}

func (r *RTTStats) quantileLocked(ring *rttRing, q float64) int64 {
	n := len(ring.samples)
	r.scratch = append(r.scratch[:0], ring.samples...)
	sort.Slice(r.scratch, func(i, j int) bool { return r.scratch[i] < r.scratch[j] })
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	idx := int(q * float64(n-1))
	if float64(idx) < q*float64(n-1) {
		idx++ // ceil
	}
	if idx >= n {
		idx = n - 1
	}
	return r.scratch[idx]
}

// MaxQuantile returns the largest per-peer q-quantile over peers with at
// least minSamples samples, and how many peers qualified. Election
// timeouts must cover the *slowest* quorum path, so the tuner keys off
// the worst peer, not the mean.
func (r *RTTStats) MaxQuantile(q float64, minSamples int) (int64, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var max int64
	qualified := 0
	// Map iteration order is random, but max over a set is order-free:
	// the result is deterministic regardless.
	for _, ring := range r.rings {
		if len(ring.samples) < minSamples {
			continue
		}
		qualified++
		if v := r.quantileLocked(ring, q); v > max {
			max = v
		}
	}
	return max, qualified
}

// Reset drops all samples (cluster drivers call it on node restart,
// mirroring Detector.Reset: a reborn node re-measures its links).
func (r *RTTStats) Reset() {
	r.mu.Lock()
	clear(r.rings)
	r.mu.Unlock()
}
