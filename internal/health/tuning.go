package health

// Tuning derives Raft election-timeout bands from observed RTT
// quantiles — the internal/health → internal/raft feedback loop of the
// WAN profile (DESIGN.md §13). The rule is the classic deployment
// guidance made adaptive: the election timeout should be an order of
// magnitude above the broadcast time, so
//
//	minTicks = clamp(Multiple × RTT_q / TickUs, [MinTicks, MaxTicks])
//	maxTicks = min(minTicks × Spread, MaxTicks × Spread)
//
// where RTT_q is the worst per-peer q-quantile over peers with enough
// samples. Everything here is pure integer/float arithmetic over the
// RTTStats windows: equal sample sequences give byte-identical bands,
// so retuning composes with deterministic replay (and
// Node.SetElectionTicks rescales the armed timer without an rng draw).
type Tuning struct {
	// TickUs is the raft tick duration in microseconds (the simulated
	// fleet ticks every 1000 µs). Required, must be > 0.
	TickUs int64
	// Multiple scales the RTT quantile up to the minimum election
	// timeout. Default 10 — "an order of magnitude above broadcast time".
	Multiple float64
	// Quantile selects which per-peer RTT order statistic to cover.
	// Default 0.99: the band must cover jitter tails, not medians.
	Quantile float64
	// MinTicks / MaxTicks clamp the derived minimum timeout. Defaults
	// 50 (the paper's LAN default — tuning never goes below stock) and
	// 5000 (5 virtual seconds — a liveness floor even on broken links).
	MinTicks int
	MaxTicks int
	// Spread is maxTicks/minTicks, preserving the paper's U(T, 2T)
	// randomization shape. Default 2.
	Spread float64
	// MinSamples is how many samples a peer needs before it
	// participates; with no peer qualified, ElectionTicks reports !ok
	// and the caller keeps its current band. Default 16.
	MinSamples int
}

func (t Tuning) normalized() Tuning {
	if t.Multiple <= 0 {
		t.Multiple = 10
	}
	if t.Quantile <= 0 || t.Quantile > 1 {
		t.Quantile = 0.99
	}
	if t.MinTicks <= 0 {
		t.MinTicks = 50
	}
	if t.MaxTicks <= t.MinTicks {
		t.MaxTicks = 5000
		if t.MaxTicks <= t.MinTicks {
			t.MaxTicks = 2 * t.MinTicks
		}
	}
	if t.Spread <= 1 {
		t.Spread = 2
	}
	if t.MinSamples <= 0 {
		t.MinSamples = 16
	}
	return t
}

// ElectionTicks derives the [min, max) election band from the tracker's
// current windows. ok is false (and the returned band zero) when TickUs
// is unset or no peer has MinSamples samples yet — the caller keeps its
// current configuration.
func (t Tuning) ElectionTicks(r *RTTStats) (min, max int, ok bool) {
	t = t.normalized()
	if t.TickUs <= 0 || r == nil {
		return 0, 0, false
	}
	rtt, qualified := r.MaxQuantile(t.Quantile, t.MinSamples)
	if qualified == 0 || rtt <= 0 {
		return 0, 0, false
	}
	target := t.Multiple * float64(rtt) / float64(t.TickUs)
	min = int(target)
	if float64(min) < target {
		min++ // ceil: never tune *below* the multiple
	}
	if min < t.MinTicks {
		min = t.MinTicks
	}
	if min > t.MaxTicks {
		min = t.MaxTicks
	}
	max = int(float64(min) * t.Spread)
	if max <= min {
		max = min + 1
	}
	return min, max, true
}
