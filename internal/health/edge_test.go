package health

import (
	"sync"
	"testing"
)

// Edge-case suite for verdict transitions: threshold boundaries,
// Suspect→Up flap races, watch-set changes taken mid-Tick (from inside
// a transition callback), and degenerate tick configurations.

// TestVerdictBoundaries drives silence gaps right up to, onto, and past
// each threshold. Thresholds are inclusive (gap ≥ bound trips) and a gap
// that already exceeds downAfter jumps Up→Down without visiting Suspect.
func TestVerdictBoundaries(t *testing.T) {
	const interval = 1000 // suspectAfter = 2000, downAfter = 3000
	cases := []struct {
		name  string
		gaps  []int64 // silence before each successive Tick
		want  []State // state after each Tick
		trans int     // transitions emitted in total
	}{
		{"just below suspect", []int64{1999}, []State{Up}, 0},
		{"exactly suspect", []int64{2000}, []State{Suspect}, 1},
		{"between thresholds", []int64{2999}, []State{Suspect}, 1},
		{"exactly down", []int64{3000}, []State{Down}, 1},
		{"skip straight to down", []int64{10000}, []State{Down}, 1},
		{"escalate in steps", []int64{2000, 1000}, []State{Suspect, Down}, 2},
		{"suspect is sticky", []int64{2000, 500}, []State{Suspect, Suspect}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := &fakeClock{}
			var trans []Transition
			d := newTestDetector(t, clk, []uint64{1}, func(tr Transition) { trans = append(trans, tr) })
			elapsed := int64(0)
			for i, gap := range tc.gaps {
				elapsed += gap
				clk.advance(gap)
				d.Tick()
				if st, _ := d.State(1); st != tc.want[i] {
					t.Fatalf("after %dµs of silence: state %v, want %v", elapsed, st, tc.want[i])
				}
			}
			if len(trans) != tc.trans {
				t.Fatalf("emitted %d transitions, want %d: %+v", len(trans), tc.trans, trans)
			}
		})
	}
}

// TestSuspectUpFlapRace drives the full flap cycle repeatedly: silence
// to Suspect, one Observe back to Up, silence again. Every recovery must
// report From=Suspect, every relapse From=Up — no transition may ever
// skip a state it did not actually leave.
func TestSuspectUpFlapRace(t *testing.T) {
	clk := &fakeClock{}
	var trans []Transition
	d := newTestDetector(t, clk, []uint64{1}, func(tr Transition) { trans = append(trans, tr) })
	for cycle := 0; cycle < 5; cycle++ {
		clk.advance(2000)
		d.Tick()
		clk.advance(1)
		d.Observe(1)
	}
	if len(trans) != 10 {
		t.Fatalf("5 flap cycles emitted %d transitions, want 10", len(trans))
	}
	for i, tr := range trans {
		wantFrom, wantTo := Up, Suspect
		if i%2 == 1 {
			wantFrom, wantTo = Suspect, Up
		}
		if tr.From != wantFrom || tr.To != wantTo {
			t.Fatalf("transition %d: %v→%v, want %v→%v", i, tr.From, tr.To, wantFrom, wantTo)
		}
	}
	// A recovery seen by Observe must carry the real silence gap, so the
	// no-false-Down checkers can audit it.
	if trans[1].SinceActivityUs != 2001 {
		t.Fatalf("recovery reported %dµs of silence, want 2001", trans[1].SinceActivityUs)
	}
}

// TestObserveBeatsTickAtBoundary pins the race where activity arrives at
// the same instant a Tick would condemn the peer: the Observe rebases
// last-activity, so the Tick must see a zero gap and stay quiet.
func TestObserveBeatsTickAtBoundary(t *testing.T) {
	clk := &fakeClock{}
	d := newTestDetector(t, clk, []uint64{1}, func(tr Transition) {
		t.Fatalf("unexpected transition %+v", tr)
	})
	clk.advance(5000) // way past downAfter
	d.Observe(1)      // activity lands first
	d.Tick()
	if st, _ := d.State(1); st != Up {
		t.Fatalf("state %v after activity at the boundary, want Up", st)
	}
}

// TestSetWatchFromTransitionCallback changes the watch set from inside
// OnTransition — the exact mid-Tick re-entrancy a cluster manager hits
// when it reacts to a Down verdict by dropping the peer. Must not
// deadlock, and the dropped peer must stop being judged while the
// remaining watched peer still escalates in the same Tick sweep.
func TestSetWatchFromTransitionCallback(t *testing.T) {
	clk := &fakeClock{}
	var d *Detector
	var trans []Transition
	var err error
	d, err = New([]uint64{1, 2}, Options{
		TickIntervalUs: 1000,
		Clock:          clk.now,
		OnTransition: func(tr Transition) {
			trans = append(trans, tr)
			if tr.Peer == 1 && tr.To == Down {
				d.SetWatch([]uint64{2}) // evict the condemned peer mid-sweep
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(3000)
	d.Tick() // both peers cross downAfter; peer 1's callback evicts it
	if len(trans) != 2 {
		t.Fatalf("emitted %d transitions, want 2 (both peers were silent): %+v", len(trans), trans)
	}
	if got := d.Watched(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("watch set %v after eviction, want [2]", got)
	}
	// The evicted peer keeps its last verdict but is no longer judged…
	clk.advance(10000)
	d.Tick()
	if st, _ := d.State(1); st != Down {
		t.Fatalf("evicted peer state %v, want frozen Down", st)
	}
	// …and re-watching starts it Up from fresh activity, silently.
	before := len(trans)
	d.SetWatch([]uint64{1, 2})
	if st, _ := d.State(1); st != Up {
		t.Fatalf("re-watched peer state %v, want Up", st)
	}
	if len(trans) != before {
		t.Fatal("re-watching emitted a transition; watching is not evidence")
	}
}

// TestWatchUnknownPeerMidLife adds a peer the detector has never seen
// via SetWatch: it must be adopted Up with a fresh activity base, then
// escalate on real silence like any other peer.
func TestWatchUnknownPeerMidLife(t *testing.T) {
	clk := &fakeClock{}
	d := newTestDetector(t, clk, []uint64{1}, nil)
	clk.advance(2500)
	d.SetWatch([]uint64{1, 9}) // 9 unknown; 1 keeps its silence clock
	if st, known := d.State(9); !known || st != Up {
		t.Fatalf("adopted peer: state %v known %v, want Up true", st, known)
	}
	d.Tick()
	if st, _ := d.State(9); st != Up {
		t.Fatalf("adopted peer condemned with no real silence: %v", st)
	}
	if st, _ := d.State(1); st != Suspect {
		t.Fatalf("pre-existing peer state %v, want Suspect (2500µs of silence)", st)
	}
	clk.advance(2000)
	d.Tick()
	if st, _ := d.State(9); st != Suspect {
		t.Fatalf("adopted peer state %v after 2000µs silence, want Suspect", st)
	}
}

// TestDegenerateTickConfigs exercises the config floor: zero interval,
// negative interval, negative tick counts, and the inverted ordering are
// all rejected; the zero-tick defaults still apply above a valid floor.
func TestDegenerateTickConfigs(t *testing.T) {
	clk := &fakeClock{}
	bad := []Options{
		{TickIntervalUs: 0, Clock: clk.now},
		{TickIntervalUs: -5, Clock: clk.now},
		{TickIntervalUs: 1000, Clock: clk.now, SuspectTicks: -1},
		{TickIntervalUs: 1000, Clock: clk.now, DownTicks: -2},
		{TickIntervalUs: 1000, Clock: clk.now, SuspectTicks: 4, DownTicks: 4},
		{TickIntervalUs: 1000, Clock: clk.now, SuspectTicks: 4, DownTicks: 2},
	}
	for i, o := range bad {
		if _, err := New([]uint64{1}, o); err == nil {
			t.Errorf("case %d: options %+v accepted", i, o)
		}
	}
	d, err := New([]uint64{1}, Options{TickIntervalUs: 7, Clock: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	if d.SuspectAfterUs() != 14 || d.DownAfterUs() != 21 {
		t.Fatalf("defaults: suspectAfter %d downAfter %d, want 14/21", d.SuspectAfterUs(), d.DownAfterUs())
	}
}

// TestConcurrentFlapConvergence races Tick against Observe across many
// goroutine interleavings, then quiesces: whatever interleaving ran, a
// peer with fresh activity must end Up. Run under -race via make race.
func TestConcurrentFlapConvergence(t *testing.T) {
	clk := &fakeClock{}
	d := newTestDetector(t, clk, []uint64{1, 2, 3}, nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				clk.advance(700)
				d.Tick()
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				d.Observe(uint64(1 + i%3))
			}
		}
	}()
	for i := 0; i < 200; i++ {
		d.Snapshot()
	}
	close(stop)
	wg.Wait()
	for _, p := range []uint64{1, 2, 3} {
		d.Observe(p)
	}
	d.Tick()
	if !d.AllUp() {
		t.Fatalf("peers not Up after fresh activity: %+v", d.Snapshot())
	}
}
