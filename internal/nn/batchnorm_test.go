package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestBatchNormForwardNormalizes(t *testing.T) {
	bn := NewBatchNorm2D(2)
	rng := rand.New(rand.NewSource(1))
	x := randTensor(rng, 4, 2, 3, 3)
	// Shift channel 1 far away to verify per-channel normalization.
	for bi := 0; bi < 4; bi++ {
		for i := 0; i < 9; i++ {
			x.Data()[(bi*2+1)*9+i] += 100
		}
	}
	y, err := bn.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	// Per-channel mean ≈ 0, variance ≈ 1 (γ=1, β=0).
	for ch := 0; ch < 2; ch++ {
		var sum, ss float64
		for bi := 0; bi < 4; bi++ {
			for i := 0; i < 9; i++ {
				v := y.Data()[(bi*2+ch)*9+i]
				sum += v
				ss += v * v
			}
		}
		mean := sum / 36
		variance := ss/36 - mean*mean
		if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-3 {
			t.Fatalf("channel %d: mean=%v var=%v", ch, mean, variance)
		}
	}
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewModel(
		NewConv2D(1, 2, 3, PadSame, rng),
		NewBatchNorm2D(2),
		NewReLU(),
		NewFlatten(),
		NewDense(2*4*4, 3, rng),
	)
	x := randTensor(rng, 3, 1, 4, 4)
	labels := []int{0, 1, 2}
	checkGradients(t, m, x, labels, 2e-4)
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm2D(1)
	rng := rand.New(rand.NewSource(3))
	// Feed training batches with mean 5, std 2.
	for i := 0; i < 200; i++ {
		x := tensor.New(8, 1, 2, 2)
		for j := range x.Data() {
			x.Data()[j] = 5 + 2*rng.NormFloat64()
		}
		if _, err := bn.Forward(x, true); err != nil {
			t.Fatal(err)
		}
	}
	// Eval on a constant input equal to the running mean → output ≈ 0.
	x := tensor.New(1, 1, 2, 2)
	x.Fill(5)
	y, err := bn.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range y.Data() {
		if math.Abs(v) > 0.2 {
			t.Fatalf("eval output %v, want ≈ 0 (running stats off: mean %v var %v)", v, bn.runMean[0], bn.runVar[0])
		}
	}
}

func TestBatchNormValidation(t *testing.T) {
	bn := NewBatchNorm2D(3)
	if _, err := bn.Forward(tensor.New(2, 2, 4, 4), true); err == nil {
		t.Fatal("want channel-mismatch error")
	}
	if _, err := bn.Forward(tensor.New(2, 3), true); err == nil {
		t.Fatal("want rank error")
	}
	if _, err := bn.Backward(tensor.New(1, 3, 2, 2)); err == nil {
		t.Fatal("want backward-before-forward error")
	}
	// Eval mode leaves no cache: backward must fail cleanly.
	if _, err := bn.Forward(tensor.New(1, 3, 2, 2), false); err != nil {
		t.Fatal(err)
	}
	if _, err := bn.Backward(tensor.New(1, 3, 2, 2)); err == nil {
		t.Fatal("want error after eval-mode forward")
	}
	if got := bn.Name(); got != "BatchNorm2D(3)" {
		t.Fatalf("name = %q", got)
	}
	if len(bn.Params()) != 2 {
		t.Fatal("γ and β must be parameters")
	}
}

func TestBatchNormInModelTrains(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewModel(
		NewConv2D(1, 4, 3, PadSame, rng),
		NewBatchNorm2D(4),
		NewReLU(),
		NewFlatten(),
		NewDense(4*6*6, 2, rng),
	)
	x := tensor.New(8, 1, 6, 6)
	labels := make([]int, 8)
	for i := 0; i < 8; i++ {
		v := -1.0
		if i%2 == 0 {
			v, labels[i] = 1.0, 1
		}
		for j := 0; j < 36; j++ {
			x.Data()[i*36+j] = v + 0.2*rng.NormFloat64()
		}
	}
	var first, last float64
	for step := 0; step < 40; step++ {
		m.ZeroGrad()
		loss, err := m.Loss(x.Clone(), labels)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Backward(); err != nil {
			t.Fatal(err)
		}
		for _, p := range m.Params() {
			for i := range p.W.Data() {
				p.W.Data()[i] -= 0.05 * p.G.Data()[i]
			}
		}
		if step == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Fatalf("BN model did not learn: %v → %v", first, last)
	}
}
