package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// ReLU applies max(0, x) elementwise. The output and gradient tensors
// are layer-owned workspaces, reused across batches.
type ReLU struct {
	mask []bool
	y    tensor.Scratch
	dx   tensor.Scratch
}

// NewReLU creates a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "ReLU" }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	y := r.y.GetLike(x)
	n := x.Size()
	if cap(r.mask) < n {
		r.mask = make([]bool, n)
	}
	r.mask = r.mask[:n]
	xd, yd := x.Data(), y.Data()
	for i, v := range xd {
		if v > 0 {
			yd[i] = v
			r.mask[i] = true
		} else {
			yd[i] = 0
			r.mask[i] = false
		}
	}
	return y, nil
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if r.mask == nil {
		return nil, fmt.Errorf("nn: ReLU: Backward before Forward")
	}
	if grad.Size() != len(r.mask) {
		return nil, fmt.Errorf("nn: ReLU: bad gradient shape %v", grad.Shape())
	}
	dx := r.dx.GetLike(grad)
	gd, dd := grad.Data(), dx.Data()
	for i, keep := range r.mask {
		if keep {
			dd[i] = gd[i]
		} else {
			dd[i] = 0
		}
	}
	return dx, nil
}

// Flatten reshapes [batch, ...] activations to [batch, features].
type Flatten struct {
	lastShape []int
}

// NewFlatten creates a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "Flatten" }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() < 2 {
		return nil, fmt.Errorf("nn: Flatten: bad input shape %v", x.Shape())
	}
	f.lastShape = x.AppendShape(f.lastShape[:0])
	return x.Reshape(x.Dim(0), x.Size()/x.Dim(0))
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if f.lastShape == nil {
		return nil, fmt.Errorf("nn: Flatten: Backward before Forward")
	}
	return grad.Reshape(f.lastShape...)
}

// Dropout zeroes activations with probability Rate during training and
// scales survivors by 1/(1−Rate) (inverted dropout), so inference needs no
// rescaling. At evaluation time it is the identity.
type Dropout struct {
	Rate float64
	rng  *rand.Rand
	mask []float64
	y    tensor.Scratch
	dx   tensor.Scratch
}

// NewDropout creates a Dropout layer with the given drop rate in [0, 1).
func NewDropout(rate float64, rng *rand.Rand) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %v out of [0,1)", rate))
	}
	return &Dropout{Rate: rate, rng: rng}
}

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("Dropout(%.2f)", d.Rate) }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if !train || d.Rate == 0 {
		d.mask = nil
		return x, nil
	}
	keep := 1 - d.Rate
	n := x.Size()
	if cap(d.mask) < n {
		d.mask = make([]float64, n)
	}
	d.mask = d.mask[:n]
	y := d.y.GetLike(x)
	xd, yd := x.Data(), y.Data()
	for i := range d.mask {
		if d.rng.Float64() < keep {
			d.mask[i] = 1 / keep
		} else {
			d.mask[i] = 0
		}
		yd[i] = xd[i] * d.mask[i]
	}
	return y, nil
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if d.mask == nil {
		// Eval mode (or rate 0): identity.
		return grad, nil
	}
	if grad.Size() != len(d.mask) {
		return nil, fmt.Errorf("nn: Dropout: bad gradient shape %v", grad.Shape())
	}
	dx := d.dx.GetLike(grad)
	gd, dd := grad.Data(), dx.Data()
	for i, m := range d.mask {
		dd[i] = gd[i] * m
	}
	return dx, nil
}
