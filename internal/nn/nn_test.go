package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func randTensor(r *rand.Rand, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	for i := range t.Data() {
		t.Data()[i] = r.NormFloat64()
	}
	return t
}

// numGrad estimates dLoss/dw by central differences for one scalar weight.
func numGrad(t *testing.T, m *Model, x *tensor.Tensor, labels []int, w []float64, i int) float64 {
	t.Helper()
	const h = 1e-5
	orig := w[i]
	w[i] = orig + h
	lp, err := m.Loss(x.Clone(), labels)
	if err != nil {
		t.Fatal(err)
	}
	w[i] = orig - h
	lm, err := m.Loss(x.Clone(), labels)
	if err != nil {
		t.Fatal(err)
	}
	w[i] = orig
	return (lp - lm) / (2 * h)
}

func checkGradients(t *testing.T, m *Model, x *tensor.Tensor, labels []int, tol float64) {
	t.Helper()
	m.ZeroGrad()
	if _, err := m.Loss(x.Clone(), labels); err != nil {
		t.Fatal(err)
	}
	if err := m.Backward(); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(99))
	for _, p := range m.Params() {
		w, g := p.W.Data(), p.G.Data()
		// Spot-check a handful of coordinates per parameter.
		for c := 0; c < 5 && c < len(w); c++ {
			i := r.Intn(len(w))
			want := numGrad(t, m, x, labels, w, i)
			if math.Abs(g[i]-want) > tol*(1+math.Abs(want)) {
				t.Errorf("%s[%d]: analytic %v vs numeric %v", p.Name, i, g[i], want)
			}
		}
	}
}

func TestDenseForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(2, 2, rng)
	copy(d.w.W.Data(), []float64{1, 2, 3, 4}) // W = [[1,2],[3,4]]
	copy(d.b.W.Data(), []float64{10, 20})
	x := tensor.MustFromSlice([]float64{1, 1}, 1, 2)
	y, err := d.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.MustFromSlice([]float64{13, 27}, 1, 2)
	if !tensor.Equal(y, want) {
		t.Fatalf("dense forward = %v, want %v", y, want)
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewModel(NewDense(4, 6, rng), NewReLU(), NewDense(6, 3, rng))
	x := randTensor(rng, 5, 4)
	labels := []int{0, 1, 2, 0, 1}
	checkGradients(t, m, x, labels, 1e-4)
}

func TestConvGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewModel(
		NewConv2D(2, 3, 3, PadSame, rng),
		NewReLU(),
		NewConv2D(3, 2, 3, PadValid, rng),
		NewFlatten(),
		NewDense(2*4*4, 3, rng),
	)
	x := randTensor(rng, 2, 2, 6, 6)
	labels := []int{0, 2}
	checkGradients(t, m, x, labels, 1e-4)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewModel(
		NewConv2D(1, 2, 3, PadSame, rng),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(2*3*3, 2, rng),
	)
	x := randTensor(rng, 2, 1, 6, 6)
	labels := []int{0, 1}
	checkGradients(t, m, x, labels, 1e-4)
}

func TestConvForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewConv2D(1, 1, 3, PadValid, rng)
	// Averaging kernel, zero bias.
	for i := range c.w.W.Data() {
		c.w.W.Data()[i] = 1.0 / 9.0
	}
	c.b.W.Zero()
	x := tensor.New(1, 1, 3, 3)
	x.Fill(9)
	y, err := c.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if y.Size() != 1 || math.Abs(y.Data()[0]-9) > 1e-12 {
		t.Fatalf("conv forward = %v, want [9]", y)
	}
}

func TestMaxPoolForwardKnown(t *testing.T) {
	p := NewMaxPool2D(2)
	x := tensor.MustFromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	y, err := p.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.MustFromSlice([]float64{6, 8, 14, 16}, 1, 1, 2, 2)
	if !tensor.Equal(y, want) {
		t.Fatalf("maxpool = %v, want %v", y, want)
	}
}

func TestMaxPoolFloorSemantics(t *testing.T) {
	p := NewMaxPool2D(2)
	x := tensor.New(1, 1, 5, 5) // odd size: last row/col dropped
	y, err := p.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if y.Dim(2) != 2 || y.Dim(3) != 2 {
		t.Fatalf("pooled dims = %v, want 2x2", y.Shape())
	}
}

func TestDropoutTrainEval(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := NewDropout(0.5, rng)
	x := tensor.New(1, 1000)
	x.Fill(1)
	yEval, err := d.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(yEval, x) {
		t.Fatal("dropout must be identity in eval mode")
	}
	yTrain, err := d.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, v := range yTrain.Data() {
		switch v {
		case 0:
			zeros++
		case 2: // inverted dropout scale 1/(1-0.5)
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropped %d of 1000 at rate 0.5", zeros)
	}
	// Expectation preserved within sampling error.
	mean := yTrain.Sum() / 1000
	if math.Abs(mean-1) > 0.15 {
		t.Fatalf("dropout mean = %v, want ≈ 1", mean)
	}
}

func TestDropoutRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for rate 1.0")
		}
	}()
	NewDropout(1.0, rand.New(rand.NewSource(1)))
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	var l SoftmaxCrossEntropy
	// Uniform logits: loss = ln(classes).
	logits := tensor.New(2, 4)
	loss, probs, err := l.Forward(logits, []int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Fatalf("loss = %v, want ln 4", loss)
	}
	for _, p := range probs.Data() {
		if math.Abs(p-0.25) > 1e-12 {
			t.Fatalf("probs = %v, want uniform", probs)
		}
	}
}

func TestSoftmaxCrossEntropyStability(t *testing.T) {
	var l SoftmaxCrossEntropy
	logits := tensor.MustFromSlice([]float64{1000, 0, -1000}, 1, 3)
	loss, probs, err := l.Forward(logits, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss = %v with extreme logits", loss)
	}
	if math.Abs(probs.At(0, 0)-1) > 1e-9 {
		t.Fatalf("probs = %v", probs)
	}
}

func TestCrossEntropyErrors(t *testing.T) {
	var l SoftmaxCrossEntropy
	if _, _, err := l.Forward(tensor.New(2, 3), []int{0}); err == nil {
		t.Fatal("want label-count error")
	}
	if _, _, err := l.Forward(tensor.New(1, 3), []int{7}); err == nil {
		t.Fatal("want label-range error")
	}
	if _, err := Accuracy(tensor.New(3), nil); err == nil {
		t.Fatal("want rank error")
	}
}

func TestAccuracy(t *testing.T) {
	scores := tensor.MustFromSlice([]float64{
		0.9, 0.1,
		0.2, 0.8,
		0.6, 0.4,
	}, 3, 2)
	acc, err := Accuracy(scores, []int{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc-2.0/3.0) > 1e-12 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestPaperCNNParamCount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, err := PaperCNN(3, 32, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports "1.25M parameters" for its CIFAR-10 model; the
	// exact count of this architecture is 1,250,858.
	if got := m.ParamCount(); got != 1250858 {
		t.Fatalf("PaperCNN params = %d, want 1250858", got)
	}
}

func TestPaperCNNForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m, err := PaperCNN(1, 14, 10, rng) // smallest valid size
	if err != nil {
		t.Fatal(err)
	}
	y, err := m.Forward(tensor.New(2, 1, 14, 14), false)
	if err != nil {
		t.Fatal(err)
	}
	if y.Dim(0) != 2 || y.Dim(1) != 10 {
		t.Fatalf("output shape = %v", y.Shape())
	}
	if _, err := PaperCNN(1, 8, 10, rng); err == nil {
		t.Fatal("want error for too-small input")
	}
}

func TestWeightVectorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := MLP(4, []int{8}, 3, rng)
	b := MLP(4, []int{8}, 3, rng)
	w := a.WeightVector()
	if len(w) != a.ParamCount() {
		t.Fatalf("weight vector length %d, want %d", len(w), a.ParamCount())
	}
	if err := b.SetWeightVector(w); err != nil {
		t.Fatal(err)
	}
	x := randTensor(rng, 3, 4)
	ya, err := a.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	yb, err := b.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(ya, yb, 1e-12) {
		t.Fatal("models with identical weights must agree")
	}
	if err := b.SetWeightVector(w[:len(w)-1]); err == nil {
		t.Fatal("want length error")
	}
}

func TestWeightVectorIsCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := MLP(2, nil, 2, rng)
	w := m.WeightVector()
	w[0] += 100
	if m.WeightVector()[0] == w[0] {
		t.Fatal("WeightVector must return a copy")
	}
}

func TestBackwardBeforeLossErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := MLP(2, nil, 2, rng)
	if err := m.Backward(); err == nil {
		t.Fatal("want error calling Backward before Loss")
	}
}

func TestTinyCNNTrains(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m, err := TinyCNN(1, 8, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Two linearly separable image classes: bright vs dark.
	x := tensor.New(8, 1, 8, 8)
	labels := make([]int, 8)
	for i := 0; i < 8; i++ {
		v := -1.0
		if i%2 == 0 {
			v, labels[i] = 1.0, 1
		}
		for j := 0; j < 64; j++ {
			x.Data()[i*64+j] = v + 0.1*rng.NormFloat64()
		}
	}
	first := -1.0
	var last float64
	for step := 0; step < 60; step++ {
		m.ZeroGrad()
		loss, err := m.Loss(x.Clone(), labels)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Backward(); err != nil {
			t.Fatal(err)
		}
		for _, p := range m.Params() {
			for i := range p.W.Data() {
				p.W.Data()[i] -= 0.05 * p.G.Data()[i]
			}
		}
		if first < 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v → %v", first, last)
	}
}

func TestModelSummary(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := MLP(2, []int{3}, 2, rng)
	s := m.Summary()
	if s == "" {
		t.Fatal("empty summary")
	}
}
