package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// directConv2D is a naive quadruple-loop convolution used as a reference
// implementation for the im2col-based Conv2D.
func directConv2D(x *tensor.Tensor, w []float64, b []float64, inC, outC, k, pad int) *tensor.Tensor {
	batch, h, wd := x.Dim(0), x.Dim(2), x.Dim(3)
	outH := h + 2*pad - k + 1
	outW := wd + 2*pad - k + 1
	out := tensor.New(batch, outC, outH, outW)
	for bi := 0; bi < batch; bi++ {
		for oc := 0; oc < outC; oc++ {
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					sum := b[oc]
					for ic := 0; ic < inC; ic++ {
						for ky := 0; ky < k; ky++ {
							iy := oy + ky - pad
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < k; kx++ {
								ix := ox + kx - pad
								if ix < 0 || ix >= wd {
									continue
								}
								sum += x.At(bi, ic, iy, ix) * w[(oc*inC+ic)*k*k+ky*k+kx]
							}
						}
					}
					out.Set(sum, bi, oc, oy, ox)
				}
			}
		}
	}
	return out
}

func TestConvMatchesDirectImplementation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		inC, outC, k int
		pad          Padding
		size         int
	}{
		{1, 1, 3, PadValid, 5},
		{2, 3, 3, PadSame, 6},
		{3, 2, 3, PadValid, 7},
		{1, 4, 3, PadSame, 4},
	}
	for _, tc := range cases {
		c := NewConv2D(tc.inC, tc.outC, tc.k, tc.pad, rng)
		x := randTensor(rng, 2, tc.inC, tc.size, tc.size)
		got, err := c.Forward(x, false)
		if err != nil {
			t.Fatal(err)
		}
		pad := 0
		if tc.pad == PadSame {
			pad = (tc.k - 1) / 2
		}
		want := directConv2D(x, c.w.W.Data(), c.b.W.Data(), tc.inC, tc.outC, tc.k, pad)
		if !tensor.AllClose(got, want, 1e-10) {
			t.Fatalf("conv(%d→%d,k=%d,pad=%v) disagrees with direct convolution", tc.inC, tc.outC, tc.k, tc.pad)
		}
	}
}

func BenchmarkPaperCNNForward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m, err := PaperCNN(3, 32, 10, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := randTensor(rng, 4, 3, 32, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Forward(x, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPaperCNNForwardBackward covers the gradient path alone; the
// full step (with the optimizer update) is BenchmarkPaperCNNTrainStep
// in trainstep_bench_test.go.
func BenchmarkPaperCNNForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m, err := PaperCNN(3, 32, 10, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := randTensor(rng, 4, 3, 32, 32)
	labels := []int{0, 1, 2, 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ZeroGrad()
		if _, err := m.Loss(x.Clone(), labels); err != nil {
			b.Fatal(err)
		}
		if err := m.Backward(); err != nil {
			b.Fatal(err)
		}
	}
}
