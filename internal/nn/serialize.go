package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// checkpoint is the wire format of a model's weights: a schema of
// parameter names/sizes (to reject mismatched architectures) plus the
// flat weight vector.
type checkpoint struct {
	Names   []string
	Sizes   []int
	Weights []float64
}

func (m *Model) schema() ([]string, []int) {
	params := m.Params()
	names := make([]string, len(params))
	sizes := make([]int, len(params))
	for i, p := range params {
		names[i] = p.Name
		sizes[i] = p.W.Size()
	}
	return names, sizes
}

// Save writes the model's weights with gob. The architecture itself is
// not serialized — loading requires a model built with the same
// constructor (peers in federated learning all share the architecture
// and exchange only weights).
func (m *Model) Save(w io.Writer) error {
	names, sizes := m.schema()
	cp := checkpoint{Names: names, Sizes: sizes, Weights: m.WeightVector()}
	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("nn: save: %w", err)
	}
	return nil
}

// Load restores weights written by Save into this model, verifying that
// the parameter schema matches exactly.
func (m *Model) Load(r io.Reader) error {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return fmt.Errorf("nn: load: %w", err)
	}
	names, sizes := m.schema()
	if len(cp.Names) != len(names) {
		return fmt.Errorf("nn: load: checkpoint has %d params, model has %d", len(cp.Names), len(names))
	}
	for i := range names {
		if cp.Names[i] != names[i] || cp.Sizes[i] != sizes[i] {
			return fmt.Errorf("nn: load: param %d is %s[%d], model expects %s[%d]",
				i, cp.Names[i], cp.Sizes[i], names[i], sizes[i])
		}
	}
	return m.SetWeightVector(cp.Weights)
}
