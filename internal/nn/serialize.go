package nn

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/compress"
	"repro/internal/wire"
)

// checkpoint is the legacy (v1) gob wire format of a model's weights: a
// schema of parameter names/sizes (to reject mismatched architectures)
// plus the flat weight vector. Save now writes the wire-codec frame
// format (internal/wire, DESIGN.md §10); this struct remains so Load
// can read checkpoints written before the format change.
type checkpoint struct {
	Names   []string
	Sizes   []int
	Weights []float64
}

func (m *Model) schema() ([]string, []int) {
	params := m.Params()
	names := make([]string, len(params))
	sizes := make([]int, len(params))
	for i, p := range params {
		names[i] = p.Name
		sizes[i] = p.W.Size()
	}
	return names, sizes
}

// Save writes the model's weights as one wire-codec checkpoint frame
// (v2 format — length-prefixed binary, ~8 bytes per weight instead of
// gob's reflective encoding). The architecture itself is not
// serialized — loading requires a model built with the same
// constructor (peers in federated learning all share the architecture
// and exchange only weights). Models saved by older builds (gob) are
// still readable via Load.
func (m *Model) Save(w io.Writer) error {
	names, sizes := m.schema()
	cp := wire.Checkpoint{Names: names, Sizes: sizes, Weights: m.WeightVector()}
	buf := wire.GetBuffer()
	defer buf.Release()
	buf.B = wire.AppendCheckpointFrame(buf.B[:0], cp)
	if _, err := w.Write(buf.B); err != nil {
		return fmt.Errorf("nn: save: %w", err)
	}
	return nil
}

// AppendCheckpoint appends the model's current checkpoint as a wire
// frame to dst — the allocation-free path for senders that ship
// checkpoints every round into a reused buffer. weights is an optional
// scratch vector for the flat weights (reused when its capacity
// suffices); pass nil to allocate.
func (m *Model) AppendCheckpoint(dst []byte, weights []float64) ([]byte, []float64) {
	names, sizes := m.schema()
	if cap(weights) < m.ParamCount() {
		weights = make([]float64, 0, m.ParamCount())
	}
	weights = weights[:0]
	for _, p := range m.Params() {
		weights = append(weights, p.W.Data()...)
	}
	cp := wire.Checkpoint{Names: names, Sizes: sizes, Weights: weights}
	return wire.AppendCheckpointFrame(dst, cp), weights
}

// SaveQuantized writes the model's weights as one quantized checkpoint
// frame (KindCheckpointQuant): the schema travels exactly as in Save,
// the weight vector as a fixed-point block at the given width (1: int8,
// ~8× smaller than Save; 2: int16, ~4×). The compression is lossy —
// every weight reconstructs within the returned bound's MaxCoordErr —
// and deterministic. Load accepts both formats transparently.
func (m *Model) SaveQuantized(w io.Writer, width int) (compress.Bound, error) {
	names, sizes := m.schema()
	q, bound, err := compress.Quantize(m.WeightVector(), width, nil)
	if err != nil {
		return bound, fmt.Errorf("nn: save quantized: %w", err)
	}
	cp := wire.QuantCheckpoint{Names: names, Sizes: sizes, Delta: q}
	buf := wire.GetBuffer()
	defer buf.Release()
	buf.B = wire.AppendQuantCheckpointFrame(buf.B[:0], cp)
	if _, err := w.Write(buf.B); err != nil {
		return bound, fmt.Errorf("nn: save quantized: %w", err)
	}
	return bound, nil
}

// Load restores weights written by Save or SaveQuantized into this
// model, verifying that the parameter schema matches exactly. All
// checkpoint formats are accepted: the current wire-codec frames
// (sniffed by magic, dispatched on the header kind) and the legacy gob
// encoding.
func (m *Model) Load(r io.Reader) error {
	br := bufio.NewReader(r)
	header, err := br.Peek(wire.HeaderSize)
	if err == nil && string(header[:len(wire.Magic)]) == wire.Magic {
		kind, _, err := wire.ParseHeader(header)
		if err != nil {
			return fmt.Errorf("nn: load: %w", err)
		}
		switch kind {
		case wire.KindCheckpointQuant:
			cp, err := wire.ReadQuantCheckpointFrame(br)
			if err != nil {
				return fmt.Errorf("nn: load: %w", err)
			}
			return m.restore(cp.Names, cp.Sizes, cp.Delta.Dense(nil))
		default:
			cp, err := wire.ReadCheckpointFrame(br)
			if err != nil {
				return fmt.Errorf("nn: load: %w", err)
			}
			return m.restore(cp.Names, cp.Sizes, cp.Weights)
		}
	}
	var cp checkpoint
	if err := gob.NewDecoder(br).Decode(&cp); err != nil {
		return fmt.Errorf("nn: load: %w", err)
	}
	return m.restore(cp.Names, cp.Sizes, cp.Weights)
}

// restore validates a decoded checkpoint's schema against the model and
// installs its weights.
func (m *Model) restore(names []string, sizes []int, weights []float64) error {
	wantNames, wantSizes := m.schema()
	if len(names) != len(wantNames) {
		return fmt.Errorf("nn: load: checkpoint has %d params, model has %d", len(names), len(wantNames))
	}
	for i := range wantNames {
		if names[i] != wantNames[i] || sizes[i] != wantSizes[i] {
			return fmt.Errorf("nn: load: param %d is %s[%d], model expects %s[%d]",
				i, names[i], sizes[i], wantNames[i], wantSizes[i])
		}
	}
	return m.SetWeightVector(weights)
}
