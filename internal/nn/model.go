package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Model is a sequential stack of layers. The zero value is unusable; build
// models with NewModel or the architecture constructors (PaperCNN, MLP).
type Model struct {
	layers []Layer
	loss   SoftmaxCrossEntropy

	params []*Param // cached flat parameter list (layers are immutable)

	lastProbs  *tensor.Tensor
	lastLabels []int
}

// NewModel creates a sequential model from the given layers.
func NewModel(layers ...Layer) *Model {
	return &Model{layers: layers}
}

// Layers returns the layer stack.
func (m *Model) Layers() []Layer { return m.layers }

// Params returns every trainable parameter in layer order. The slice is
// computed once and cached — the layer stack never changes after
// NewModel — so the optimizer and weight-vector hot paths don't rebuild
// it every step. Callers must not mutate it.
func (m *Model) Params() []*Param {
	if m.params == nil {
		for _, l := range m.layers {
			m.params = append(m.params, l.Params()...)
		}
	}
	return m.params
}

// ParamCount returns the total number of scalar weights.
func (m *Model) ParamCount() int {
	n := 0
	for _, p := range m.Params() {
		n += p.W.Size()
	}
	return n
}

// Forward runs the layer stack; train selects training-mode behaviour
// (dropout sampling, backward caches).
func (m *Model) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	var err error
	for _, l := range m.layers {
		x, err = l.Forward(x, train)
		if err != nil {
			return nil, err
		}
	}
	return x, nil
}

// Loss runs a training-mode forward pass and the loss; Backward may be
// called afterwards to accumulate gradients.
func (m *Model) Loss(x *tensor.Tensor, labels []int) (float64, error) {
	logits, err := m.Forward(x, true)
	if err != nil {
		return 0, err
	}
	loss, probs, err := m.loss.Forward(logits, labels)
	if err != nil {
		return 0, err
	}
	m.lastProbs, m.lastLabels = probs, labels
	return loss, nil
}

// Backward back-propagates the loss gradient from the last Loss call
// through every layer, accumulating parameter gradients.
func (m *Model) Backward() error {
	if m.lastProbs == nil {
		return fmt.Errorf("nn: Backward before Loss")
	}
	grad, err := m.loss.Backward(m.lastProbs, m.lastLabels)
	if err != nil {
		return err
	}
	for i := len(m.layers) - 1; i >= 0; i-- {
		grad, err = m.layers[i].Backward(grad)
		if err != nil {
			return err
		}
	}
	m.lastProbs, m.lastLabels = nil, nil
	return nil
}

// ZeroGrad clears every parameter gradient.
func (m *Model) ZeroGrad() {
	for _, p := range m.Params() {
		p.G.Zero()
	}
}

// Evaluate returns mean accuracy and mean loss over inputs x with the
// given labels, in evaluation mode (no dropout).
func (m *Model) Evaluate(x *tensor.Tensor, labels []int) (acc, loss float64, err error) {
	logits, err := m.Forward(x, false)
	if err != nil {
		return 0, 0, err
	}
	loss, probs, err := m.loss.Forward(logits, labels)
	if err != nil {
		return 0, 0, err
	}
	acc, err = Accuracy(probs, labels)
	if err != nil {
		return 0, 0, err
	}
	return acc, loss, nil
}

// WeightVector flattens every parameter into a single []float64 in layer
// order. This is the representation the aggregation protocols exchange:
// SAC secret-shares it and FedAvg averages it.
func (m *Model) WeightVector() []float64 {
	out := make([]float64, 0, m.ParamCount())
	for _, p := range m.Params() {
		out = append(out, p.W.Data()...)
	}
	return out
}

// SetWeightVector loads a flat weight vector produced by WeightVector
// (possibly from another replica of the same architecture).
func (m *Model) SetWeightVector(w []float64) error {
	want := m.ParamCount()
	if len(w) != want {
		return fmt.Errorf("nn: weight vector has %d elements, model has %d", len(w), want)
	}
	off := 0
	for _, p := range m.Params() {
		n := p.W.Size()
		copy(p.W.Data(), w[off:off+n])
		off += n
	}
	return nil
}

// GradVector flattens every parameter gradient, mirroring WeightVector.
func (m *Model) GradVector() []float64 {
	out := make([]float64, 0, m.ParamCount())
	for _, p := range m.Params() {
		out = append(out, p.G.Data()...)
	}
	return out
}

// Summary returns a human-readable architecture description.
func (m *Model) Summary() string {
	s := ""
	for i, l := range m.layers {
		if i > 0 {
			s += " → "
		}
		s += l.Name()
	}
	return fmt.Sprintf("%s (%d params)", s, m.ParamCount())
}
