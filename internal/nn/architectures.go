package nn

import (
	"fmt"
	"math/rand"
)

// PaperCNN builds the CNN of the paper's Fig. 5 for inputs of shape
// [batch, channels, size, size]: two blocks of (same-pad conv, ReLU,
// valid-pad conv, ReLU, 2×2 max-pool, dropout 0.25) with 32 then 64
// filters, followed by Flatten, Dense(512), ReLU, Dropout(0.5) and a
// Dense output over `classes` logits (softmax lives in the loss).
//
// For CIFAR-10 (channels=3, size=32, classes=10) the parameter count is
// 1,250,858 — the paper's "1.25M parameters".
func PaperCNN(channels, size, classes int, rng *rand.Rand) (*Model, error) {
	// Block 1: size → size (same) → size−2 (valid) → (size−2)/2 (pool).
	s1 := (size - 2) / 2
	// Block 2: s1 → s1 (same) → s1−2 (valid) → (s1−2)/2 (pool).
	s2 := (s1 - 2) / 2
	if s2 < 1 {
		return nil, fmt.Errorf("nn: PaperCNN: input size %d too small (need ≥ 14)", size)
	}
	return NewModel(
		NewConv2D(channels, 32, 3, PadSame, rng),
		NewReLU(),
		NewConv2D(32, 32, 3, PadValid, rng),
		NewReLU(),
		NewMaxPool2D(2),
		NewDropout(0.25, rng),

		NewConv2D(32, 64, 3, PadSame, rng),
		NewReLU(),
		NewConv2D(64, 64, 3, PadValid, rng),
		NewReLU(),
		NewMaxPool2D(2),
		NewDropout(0.25, rng),

		NewFlatten(),
		NewDense(64*s2*s2, 512, rng),
		NewReLU(),
		NewDropout(0.5, rng),
		NewDense(512, classes, rng),
	), nil
}

// MLP builds a small multi-layer perceptron over flattened inputs. The
// accuracy/loss experiments (Figs. 6–9) default to this model at reduced
// input sizes so that 1000-round federated sweeps complete quickly; the
// aggregation protocols are agnostic to the architecture, exchanging only
// the flat weight vector.
func MLP(in int, hidden []int, classes int, rng *rand.Rand) *Model {
	var layers []Layer
	prev := in
	for _, h := range hidden {
		layers = append(layers, NewDense(prev, h, rng), NewReLU())
		prev = h
	}
	layers = append(layers, NewDense(prev, classes, rng))
	return NewModel(layers...)
}

// TinyCNN builds a reduced convolutional model with the paper CNN's layer
// pattern at a fraction of the width, for integration tests that exercise
// the convolutional path end to end without the full 1.25M parameters.
func TinyCNN(channels, size, classes int, rng *rand.Rand) (*Model, error) {
	s1 := (size - 2) / 2
	if s1 < 1 {
		return nil, fmt.Errorf("nn: TinyCNN: input size %d too small (need ≥ 4)", size)
	}
	return NewModel(
		NewConv2D(channels, 4, 3, PadSame, rng),
		NewReLU(),
		NewConv2D(4, 4, 3, PadValid, rng),
		NewReLU(),
		NewMaxPool2D(2),
		NewDropout(0.25, rng),
		NewFlatten(),
		NewDense(4*s1*s1, 32, rng),
		NewReLU(),
		NewDense(32, classes, rng),
	), nil
}
