package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// Property: softmax rows are probability distributions for any finite
// logits, including extreme magnitudes.
func TestSoftmaxRowsAreDistributions(t *testing.T) {
	var l SoftmaxCrossEntropy
	f := func(seed int64, scaleRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		scale := math.Pow(10, float64(scaleRaw%7)) // 1 .. 1e6
		logits := tensor.New(4, 5)
		for i := range logits.Data() {
			logits.Data()[i] = rng.NormFloat64() * scale
		}
		labels := []int{0, 1, 2, 3}
		loss, probs, err := l.Forward(logits, labels)
		if err != nil || math.IsNaN(loss) || math.IsInf(loss, 0) {
			return false
		}
		pd := probs.Data()
		for r := 0; r < 4; r++ {
			sum := 0.0
			for c := 0; c < 5; c++ {
				p := pd[r*5+c]
				if p < 0 || p > 1 || math.IsNaN(p) {
					return false
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: the loss gradient sums to zero over each row (softmax−onehot
// has zero row sum), so total "probability mass" is conserved.
func TestLossGradientRowsSumToZero(t *testing.T) {
	var l SoftmaxCrossEntropy
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		logits := tensor.New(3, 4)
		for i := range logits.Data() {
			logits.Data()[i] = rng.NormFloat64() * 3
		}
		labels := []int{0, 1, 2}
		_, probs, err := l.Forward(logits, labels)
		if err != nil {
			return false
		}
		grad, err := l.Backward(probs, labels)
		if err != nil {
			return false
		}
		gd := grad.Data()
		for r := 0; r < 3; r++ {
			sum := 0.0
			for c := 0; c < 4; c++ {
				sum += gd[r*4+c]
			}
			if math.Abs(sum) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: WeightVector/SetWeightVector round-trips arbitrary vectors.
func TestWeightVectorRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := MLP(3, []int{4}, 2, rng)
		w := make([]float64, m.ParamCount())
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		if err := m.SetWeightVector(w); err != nil {
			return false
		}
		got := m.WeightVector()
		for i := range w {
			if got[i] != w[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: ReLU is idempotent and non-negative.
func TestReLUProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r1, r2 := NewReLU(), NewReLU()
		x := tensor.New(2, 8)
		for i := range x.Data() {
			x.Data()[i] = rng.NormFloat64() * 10
		}
		y1, err := r1.Forward(x, false)
		if err != nil {
			return false
		}
		y2, err := r2.Forward(y1, false)
		if err != nil {
			return false
		}
		for i, v := range y1.Data() {
			if v < 0 || y2.Data()[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
