package nn

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := MLP(8, []int{16}, 4, rng)
	b := MLP(8, []int{16}, 4, rand.New(rand.NewSource(2)))

	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := b.Load(&buf); err != nil {
		t.Fatal(err)
	}
	x := randTensor(rng, 3, 8)
	ya, err := a.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	yb, err := b.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(ya, yb, 1e-12) {
		t.Fatal("loaded model must match saved model")
	}
}

func TestLoadRejectsMismatchedArchitecture(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := MLP(8, []int{16}, 4, rng)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Different hidden width.
	b := MLP(8, []int{32}, 4, rng)
	if err := b.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("want schema-mismatch error")
	}
	// Different depth.
	c := MLP(8, []int{16, 16}, 4, rng)
	if err := c.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("want param-count error")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := MLP(2, nil, 2, rng)
	if err := m.Load(bytes.NewBufferString("garbage")); err == nil {
		t.Fatal("want decode error")
	}
}

func TestSaveLoadCNN(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, err := TinyCNN(1, 8, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TinyCNN(1, 8, 3, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := b.Load(&buf); err != nil {
		t.Fatal(err)
	}
	wa, wb := a.WeightVector(), b.WeightVector()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("CNN weights differ after load")
		}
	}
}
