package nn

import (
	"bytes"
	"encoding/gob"
	"io"
	"math/rand"
	"testing"

	"repro/internal/tensor"
	"repro/internal/wire"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := MLP(8, []int{16}, 4, rng)
	b := MLP(8, []int{16}, 4, rand.New(rand.NewSource(2)))

	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := b.Load(&buf); err != nil {
		t.Fatal(err)
	}
	x := randTensor(rng, 3, 8)
	ya, err := a.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	yb, err := b.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(ya, yb, 1e-12) {
		t.Fatal("loaded model must match saved model")
	}
}

func TestLoadRejectsMismatchedArchitecture(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := MLP(8, []int{16}, 4, rng)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Different hidden width.
	b := MLP(8, []int{32}, 4, rng)
	if err := b.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("want schema-mismatch error")
	}
	// Different depth.
	c := MLP(8, []int{16, 16}, 4, rng)
	if err := c.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("want param-count error")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := MLP(2, nil, 2, rng)
	if err := m.Load(bytes.NewBufferString("garbage")); err == nil {
		t.Fatal("want decode error")
	}
}

// legacyGobSave reproduces the pre-wire Save byte for byte: a gob
// encoding of the checkpoint struct. Old stored checkpoints are exactly
// this stream.
func legacyGobSave(t *testing.T, m *Model, w io.Writer) {
	t.Helper()
	names, sizes := m.schema()
	cp := checkpoint{Names: names, Sizes: sizes, Weights: m.WeightVector()}
	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		t.Fatal(err)
	}
}

// TestLoadLegacyGobCheckpoint is the read-compat contract: checkpoints
// written by the old gob Save must still load.
func TestLoadLegacyGobCheckpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := MLP(8, []int{16}, 4, rng)
	b := MLP(8, []int{16}, 4, rand.New(rand.NewSource(8)))
	var buf bytes.Buffer
	legacyGobSave(t, a, &buf)
	if err := b.Load(&buf); err != nil {
		t.Fatalf("legacy gob checkpoint rejected: %v", err)
	}
	wa, wb := a.WeightVector(), b.WeightVector()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("weights differ after legacy load")
		}
	}
	// Schema validation still applies on the legacy path.
	var buf2 bytes.Buffer
	legacyGobSave(t, a, &buf2)
	c := MLP(8, []int{32}, 4, rng)
	if err := c.Load(&buf2); err == nil {
		t.Fatal("legacy load must still reject mismatched architectures")
	}
}

// TestGobWireCheckpointEquivalence proves the two formats carry the
// same information: one model saved through both codecs restores into
// bit-identical weight vectors.
func TestGobWireCheckpointEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src, err := TinyCNN(1, 8, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	var gobBuf, wireBuf bytes.Buffer
	legacyGobSave(t, src, &gobBuf)
	if err := src.Save(&wireBuf); err != nil {
		t.Fatal(err)
	}
	if bytes.HasPrefix(gobBuf.Bytes(), []byte(wire.Magic)) {
		t.Fatal("legacy gob stream collides with the wire magic — format sniffing is broken")
	}
	if !bytes.HasPrefix(wireBuf.Bytes(), []byte(wire.Magic)) {
		t.Fatal("Save did not emit a wire frame")
	}
	fromGob, err := TinyCNN(1, 8, 3, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	fromWire, err := TinyCNN(1, 8, 3, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if err := fromGob.Load(&gobBuf); err != nil {
		t.Fatal(err)
	}
	if err := fromWire.Load(&wireBuf); err != nil {
		t.Fatal(err)
	}
	wg, ww, ws := fromGob.WeightVector(), fromWire.WeightVector(), src.WeightVector()
	for i := range ws {
		if wg[i] != ws[i] || ww[i] != ws[i] {
			t.Fatalf("weight %d: src=%v gob=%v wire=%v", i, ws[i], wg[i], ww[i])
		}
	}
}

// TestAppendCheckpointMatchesSave pins the zero-alloc encode path to
// the Save format.
func TestAppendCheckpointMatchesSave(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := MLP(4, []int{8}, 2, rng)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	frame, weights := m.AppendCheckpoint(nil, nil)
	if !bytes.Equal(frame, buf.Bytes()) {
		t.Fatal("AppendCheckpoint bytes differ from Save")
	}
	// Reuse: same buffers, same bytes, no reallocation of the scratch.
	frame2, weights2 := m.AppendCheckpoint(frame[:0], weights)
	if !bytes.Equal(frame2, buf.Bytes()) {
		t.Fatal("reused AppendCheckpoint bytes differ")
	}
	if cap(weights2) != cap(weights) || &weights2[0] != &weights[0] {
		t.Fatal("AppendCheckpoint did not reuse the weights scratch")
	}
}

func TestSaveLoadCNN(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, err := TinyCNN(1, 8, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TinyCNN(1, 8, 3, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := b.Load(&buf); err != nil {
		t.Fatal(err)
	}
	wa, wb := a.WeightVector(), b.WeightVector()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("CNN weights differ after load")
		}
	}
}
