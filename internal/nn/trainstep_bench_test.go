package nn_test

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// BenchmarkPaperCNNTrainStep measures one full training step (zero-grad,
// forward, loss, backward, Adam update) of the paper's CNN at batch 8 —
// the hot path of every federated round. Allocations should stay flat in
// steady state thanks to the layer-owned scratch workspaces.
func BenchmarkPaperCNNTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	model, err := nn.PaperCNN(3, 32, 10, rng)
	if err != nil {
		b.Fatal(err)
	}
	opt := optim.NewAdam(1e-4)
	const batch = 8
	x := tensor.New(batch, 3, 32, 32)
	for i, d := 0, x.Data(); i < len(d); i++ {
		d[i] = rng.Float64()
	}
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = rng.Intn(10)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.ZeroGrad()
		if _, err := model.Loss(x, labels); err != nil {
			b.Fatal(err)
		}
		if err := model.Backward(); err != nil {
			b.Fatal(err)
		}
		if err := opt.Step(model.Params()); err != nil {
			b.Fatal(err)
		}
	}
}
