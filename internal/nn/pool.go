package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// MaxPool2D is a p×p max pooling layer with stride p over
// [batch, channels, H, W] inputs. Trailing rows/columns that do not fill a
// complete window are dropped (floor semantics), matching the framework
// the paper's model was defined in.
type MaxPool2D struct {
	p int

	lastShape []int // input shape
	lastArg   []int // flat input index of each output's max

	out tensor.Scratch
	dx  tensor.Scratch
}

// NewMaxPool2D creates a pooling layer with window and stride p.
func NewMaxPool2D(p int) *MaxPool2D { return &MaxPool2D{p: p} }

// Name implements Layer.
func (m *MaxPool2D) Name() string { return fmt.Sprintf("MaxPool2D(%d)", m.p) }

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() != 4 {
		return nil, fmt.Errorf("nn: %s: bad input shape %v", m.Name(), x.Shape())
	}
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	outH, outW := h/m.p, w/m.p
	if outH == 0 || outW == 0 {
		return nil, fmt.Errorf("nn: %s: input %dx%d smaller than window", m.Name(), h, w)
	}
	out := m.out.Get(b, c, outH, outW)
	m.lastShape = x.AppendShape(m.lastShape[:0])
	if cap(m.lastArg) < out.Size() {
		m.lastArg = make([]int, out.Size())
	}
	m.lastArg = m.lastArg[:out.Size()]
	xd, od := x.Data(), out.Data()
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			base := (bi*c + ci) * h * w
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					best := math.Inf(-1)
					bestIdx := -1
					for dy := 0; dy < m.p; dy++ {
						iy := oy*m.p + dy
						for dx := 0; dx < m.p; dx++ {
							ix := ox*m.p + dx
							idx := base + iy*w + ix
							if xd[idx] > best {
								best, bestIdx = xd[idx], idx
							}
						}
					}
					o := ((bi*c+ci)*outH+oy)*outW + ox
					od[o] = best
					m.lastArg[o] = bestIdx
				}
			}
		}
	}
	return out, nil
}

// Backward implements Layer. The gradient routes to the argmax of each
// window; all other positions receive zero.
func (m *MaxPool2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if m.lastArg == nil {
		return nil, fmt.Errorf("nn: %s: Backward before Forward", m.Name())
	}
	if grad.Size() != len(m.lastArg) {
		return nil, fmt.Errorf("nn: %s: bad gradient shape %v", m.Name(), grad.Shape())
	}
	dx := m.dx.Get(m.lastShape...)
	dx.Zero()
	dd, gd := dx.Data(), grad.Data()
	for o, src := range m.lastArg {
		dd[src] += gd[o]
	}
	return dx, nil
}
