// Package nn implements the from-scratch neural-network stack used by the
// federated-learning experiments: dense and convolutional layers, pooling,
// dropout, ReLU, a fused softmax/cross-entropy loss and a sequential model
// container whose weights can be flattened to a vector — the representation
// exchanged by the SAC and FedAvg aggregation protocols.
//
// The paper's CIFAR-10 CNN (Fig. 5, 1,250,858 parameters) is constructible
// via PaperCNN.
package nn

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Param is a trainable parameter: a weight tensor and its gradient, which
// always share a shape. Layers expose their parameters so optimizers and
// the federated averaging code can iterate over them uniformly.
type Param struct {
	Name string
	W    *tensor.Tensor
	G    *tensor.Tensor
}

func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, W: tensor.New(shape...), G: tensor.New(shape...)}
}

// Layer is one stage of a sequential network.
//
// Forward consumes the previous activation; when train is true, layers with
// stochastic behaviour (dropout) sample a fresh mask and layers cache
// whatever Backward needs. Backward consumes dL/d(output) and returns
// dL/d(input), accumulating parameter gradients into Params().G.
type Layer interface {
	Name() string
	Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error)
	Backward(grad *tensor.Tensor) (*tensor.Tensor, error)
	Params() []*Param
}

// heInit fills t with He-normal initialization for fanIn inputs, the
// standard choice for ReLU networks.
func heInit(t *tensor.Tensor, fanIn int, rng *rand.Rand) {
	std := 1.0
	if fanIn > 0 {
		std = math.Sqrt(2.0 / float64(fanIn))
	}
	for i := range t.Data() {
		t.Data()[i] = rng.NormFloat64() * std
	}
}
