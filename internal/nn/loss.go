package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy is the fused softmax + categorical-cross-entropy
// loss used by the paper's experiments. Fusing keeps the gradient
// numerically exact: dL/dlogits = (softmax(logits) − onehot) / batch.
// The probability and gradient tensors are reusable workspaces owned by
// the loss value, valid until its next call.
type SoftmaxCrossEntropy struct {
	probs tensor.Scratch
	grad  tensor.Scratch
}

// Forward computes the mean cross-entropy of logits [batch, classes]
// against integer labels, along with the class probabilities.
func (l *SoftmaxCrossEntropy) Forward(logits *tensor.Tensor, labels []int) (loss float64, probs *tensor.Tensor, err error) {
	if logits.Rank() != 2 {
		return 0, nil, fmt.Errorf("nn: cross-entropy: logits must be rank 2, got %v", logits.Shape())
	}
	batch, classes := logits.Dim(0), logits.Dim(1)
	if len(labels) != batch {
		return 0, nil, fmt.Errorf("nn: cross-entropy: %d labels for batch %d", len(labels), batch)
	}
	probs = l.probs.GetLike(logits)
	copy(probs.Data(), logits.Data())
	pd := probs.Data()
	total := 0.0
	for i := 0; i < batch; i++ {
		if labels[i] < 0 || labels[i] >= classes {
			return 0, nil, fmt.Errorf("nn: cross-entropy: label %d out of range [0,%d)", labels[i], classes)
		}
		row := pd[i*classes : (i+1)*classes]
		// Stable softmax: subtract the row max before exponentiating.
		m := math.Inf(-1)
		for _, v := range row {
			if v > m {
				m = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - m)
			row[j] = e
			sum += e
		}
		for j := range row {
			row[j] /= sum
		}
		p := row[labels[i]]
		if p < 1e-300 {
			p = 1e-300
		}
		total -= math.Log(p)
	}
	return total / float64(batch), probs, nil
}

// Backward computes dL/dlogits from the probabilities returned by Forward.
func (l *SoftmaxCrossEntropy) Backward(probs *tensor.Tensor, labels []int) (*tensor.Tensor, error) {
	batch, classes := probs.Dim(0), probs.Dim(1)
	if len(labels) != batch {
		return nil, fmt.Errorf("nn: cross-entropy: %d labels for batch %d", len(labels), batch)
	}
	grad := l.grad.GetLike(probs)
	copy(grad.Data(), probs.Data())
	gd := grad.Data()
	inv := 1.0 / float64(batch)
	for i := 0; i < batch; i++ {
		row := gd[i*classes : (i+1)*classes]
		row[labels[i]] -= 1
		for j := range row {
			row[j] *= inv
		}
	}
	return grad, nil
}

// Accuracy returns the fraction of rows of probs (or logits — argmax is
// invariant to softmax) whose argmax equals the label.
func Accuracy(scores *tensor.Tensor, labels []int) (float64, error) {
	if scores.Rank() != 2 {
		return 0, fmt.Errorf("nn: accuracy: scores must be rank 2, got %v", scores.Shape())
	}
	batch, classes := scores.Dim(0), scores.Dim(1)
	if len(labels) != batch {
		return 0, fmt.Errorf("nn: accuracy: %d labels for batch %d", len(labels), batch)
	}
	correct := 0
	sd := scores.Data()
	for i := 0; i < batch; i++ {
		row := sd[i*classes : (i+1)*classes]
		best, bi := math.Inf(-1), -1
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		if bi == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(batch), nil
}
