package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Dense is a fully connected layer: y = x·Wᵀ + b with W of shape
// [out, in] and b of shape [out]. Inputs are [batch, in].
//
// Like Conv2D, the layer owns reusable scratch workspaces for its output
// and input gradient; the tensors it returns are valid until its next
// call, and the weight gradient accumulates straight into w.G without a
// scratch product.
type Dense struct {
	in, out int
	w, b    *Param
	lastX   *tensor.Tensor

	y  tensor.Scratch
	dx tensor.Scratch
}

// NewDense creates a Dense layer with He-normal weights and zero biases.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		in:  in,
		out: out,
		w:   newParam(fmt.Sprintf("dense_%dx%d.w", out, in), out, in),
		b:   newParam(fmt.Sprintf("dense_%dx%d.b", out, in), out),
	}
	heInit(d.w.W, in, rng)
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("Dense(%d→%d)", d.in, d.out) }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() != 2 || x.Dim(1) != d.in {
		return nil, fmt.Errorf("nn: %s: bad input shape %v", d.Name(), x.Shape())
	}
	d.lastX = x
	batch := x.Dim(0)
	y := d.y.Get(batch, d.out)
	if err := tensor.MatMulTransBInto(y, x, d.w.W); err != nil {
		return nil, err
	}
	bd := d.b.W.Data()
	yd := y.Data()
	for i := 0; i < batch; i++ {
		row := yd[i*d.out : (i+1)*d.out]
		for j := range row {
			row[j] += bd[j]
		}
	}
	return y, nil
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if d.lastX == nil {
		return nil, fmt.Errorf("nn: %s: Backward before Forward", d.Name())
	}
	if grad.Rank() != 2 || grad.Dim(1) != d.out || grad.Dim(0) != d.lastX.Dim(0) {
		return nil, fmt.Errorf("nn: %s: bad gradient shape %v", d.Name(), grad.Shape())
	}
	// dW += gradᵀ·x ([out, in]), accumulated straight into the parameter
	// gradient; db += column sums of grad.
	if err := tensor.MatMulTransAAcc(d.w.G, grad, d.lastX); err != nil {
		return nil, err
	}
	gb := d.b.G.Data()
	gd := grad.Data()
	batch := grad.Dim(0)
	for i := 0; i < batch; i++ {
		row := gd[i*d.out : (i+1)*d.out]
		for j, v := range row {
			gb[j] += v
		}
	}
	// dx = grad·W  ([batch, in]).
	dx := d.dx.Get(batch, d.in)
	if err := tensor.MatMulInto(dx, grad, d.w.W); err != nil {
		return nil, err
	}
	return dx, nil
}
