package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Padding selects the spatial padding mode of a convolution.
type Padding int

const (
	// PadValid applies no padding; output shrinks by kernel−1.
	PadValid Padding = iota
	// PadSame zero-pads so stride-1 output matches the input size.
	PadSame
)

// Conv2D is a 2-D convolution over [batch, inC, H, W] inputs, implemented
// as im2col followed by one matrix multiplication. Kernels are square
// (k×k), stride is 1 — matching every convolution in the paper's CNN.
//
// The layer owns reusable scratch workspaces for the im2col lowering and
// every intermediate product, so steady-state training performs no
// per-batch allocations in this layer (the dominant memory churn of the
// original implementation). Tensors returned by Forward/Backward alias
// those workspaces: they are valid until the layer's next call, which is
// exactly the lifetime the sequential training loop needs. A layer is
// not safe for concurrent use; in parallel training each client owns its
// model.
type Conv2D struct {
	inC, outC, k int
	pad          Padding
	w, b         *Param

	// forward cache
	lastCols            *tensor.Tensor
	lastB, lastH, lastW int
	lastOutH, lastOutW  int

	cols  tensor.Scratch // [b·oh·ow, inC·k·k] im2col, kept for backward
	flat  tensor.Scratch // [b·oh·ow, outC] pre-transpose activations
	out   tensor.Scratch // [b, outC, oh, ow]
	gflat tensor.Scratch // backward: grad rearranged to [b·oh·ow, outC]
	dcols tensor.Scratch // backward: column-space input gradient
	dx    tensor.Scratch // backward: input gradient
}

// NewConv2D creates a k×k stride-1 convolution with He-normal weights.
func NewConv2D(inC, outC, k int, pad Padding, rng *rand.Rand) *Conv2D {
	c := &Conv2D{
		inC: inC, outC: outC, k: k, pad: pad,
		w: newParam(fmt.Sprintf("conv_%dx%dx%d.w", outC, inC, k), outC, inC*k*k),
		b: newParam(fmt.Sprintf("conv_%dx%dx%d.b", outC, inC, k), outC),
	}
	heInit(c.w.W, inC*k*k, rng)
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("Conv2D(%d→%d, %dx%d)", c.inC, c.outC, c.k, c.k)
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

func (c *Conv2D) padPixels() int {
	if c.pad == PadSame {
		return (c.k - 1) / 2
	}
	return 0
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() != 4 || x.Dim(1) != c.inC {
		return nil, fmt.Errorf("nn: %s: bad input shape %v", c.Name(), x.Shape())
	}
	b, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	_, _, rows, colw := tensor.Im2ColShape(b, c.inC, h, w, c.k, c.k, 1, c.padPixels())
	cols := c.cols.Get(rows, colw)
	outH, outW, err := tensor.Im2ColInto(cols, x, c.k, c.k, 1, c.padPixels())
	if err != nil {
		return nil, fmt.Errorf("nn: %s: %w", c.Name(), err)
	}
	c.lastCols, c.lastB, c.lastH, c.lastW = cols, b, h, w
	c.lastOutH, c.lastOutW = outH, outW

	// cols: [b·outH·outW, inC·k·k]; W: [outC, inC·k·k]
	// flat = cols·Wᵀ: [b·outH·outW, outC]
	flat := c.flat.Get(rows, c.outC)
	if err := tensor.MatMulTransBInto(flat, cols, c.w.W); err != nil {
		return nil, err
	}
	bd := c.b.W.Data()
	fd := flat.Data()
	for i := 0; i < rows; i++ {
		row := fd[i*c.outC : (i+1)*c.outC]
		for j := range row {
			row[j] += bd[j]
		}
	}
	// Rearrange [b, outH, outW, outC] → [b, outC, outH, outW].
	out := c.out.Get(b, c.outC, outH, outW)
	od := out.Data()
	for bi := 0; bi < b; bi++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				src := ((bi*outH+oy)*outW + ox) * c.outC
				for ch := 0; ch < c.outC; ch++ {
					od[((bi*c.outC+ch)*outH+oy)*outW+ox] = fd[src+ch]
				}
			}
		}
	}
	return out, nil
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if c.lastCols == nil {
		return nil, fmt.Errorf("nn: %s: Backward before Forward", c.Name())
	}
	b, outH, outW := c.lastB, c.lastOutH, c.lastOutW
	if grad.Rank() != 4 || grad.Dim(0) != b || grad.Dim(1) != c.outC ||
		grad.Dim(2) != outH || grad.Dim(3) != outW {
		return nil, fmt.Errorf("nn: %s: bad gradient shape %v", c.Name(), grad.Shape())
	}
	// Rearrange grad [b, outC, outH, outW] → flat [b·outH·outW, outC].
	flat := c.gflat.Get(b*outH*outW, c.outC)
	fd := flat.Data()
	gd := grad.Data()
	for bi := 0; bi < b; bi++ {
		for ch := 0; ch < c.outC; ch++ {
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					fd[((bi*outH+oy)*outW+ox)*c.outC+ch] = gd[((bi*c.outC+ch)*outH+oy)*outW+ox]
				}
			}
		}
	}
	// dW += flatᵀ·cols ([outC, inC·k·k]), accumulated straight into the
	// parameter gradient; db += column sums of flat.
	if err := tensor.MatMulTransAAcc(c.w.G, flat, c.lastCols); err != nil {
		return nil, err
	}
	gb := c.b.G.Data()
	rows := flat.Dim(0)
	for i := 0; i < rows; i++ {
		row := fd[i*c.outC : (i+1)*c.outC]
		for j, v := range row {
			gb[j] += v
		}
	}
	// dcols = flat·W; dx = col2im(dcols).
	dcols := c.dcols.GetLike(c.lastCols)
	if err := tensor.MatMulInto(dcols, flat, c.w.W); err != nil {
		return nil, err
	}
	dx := c.dx.Get(b, c.inC, c.lastH, c.lastW)
	if err := tensor.Col2ImInto(dx, dcols, c.k, c.k, 1, c.padPixels()); err != nil {
		return nil, err
	}
	return dx, nil
}
