package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// BatchNorm2D normalizes each channel of [batch, C, H, W] activations
// over the batch and spatial dimensions, with learnable scale γ and
// shift β (Ioffe & Szegedy). Training mode uses minibatch statistics and
// maintains running estimates for evaluation mode.
//
// Federated-learning caveat: γ and β are ordinary parameters and travel
// in the aggregated weight vector, but the running statistics are local
// buffers — peers' estimates drift apart under non-IID data, which is a
// known FL issue and one reason the paper's CNN avoids BatchNorm.
type BatchNorm2D struct {
	c   int
	eps float64
	// Momentum of the running-stat update (fraction of the old value
	// kept); 0.9 by default.
	momentum float64

	gamma, beta *Param

	runMean, runVar []float64

	// forward cache (training mode)
	lastXHat *tensor.Tensor
	lastStd  []float64 // per-channel √(σ²+ε)
	lastMean []float64
	lastX    *tensor.Tensor
}

// NewBatchNorm2D creates a BatchNorm over c channels (γ=1, β=0).
func NewBatchNorm2D(c int) *BatchNorm2D {
	b := &BatchNorm2D{
		c:        c,
		eps:      1e-5,
		momentum: 0.9,
		gamma:    newParam(fmt.Sprintf("bn_%d.gamma", c), c),
		beta:     newParam(fmt.Sprintf("bn_%d.beta", c), c),
		runMean:  make([]float64, c),
		runVar:   make([]float64, c),
	}
	b.gamma.W.Fill(1)
	for i := range b.runVar {
		b.runVar[i] = 1
	}
	return b
}

// Name implements Layer.
func (b *BatchNorm2D) Name() string { return fmt.Sprintf("BatchNorm2D(%d)", b.c) }

// Params implements Layer.
func (b *BatchNorm2D) Params() []*Param { return []*Param{b.gamma, b.beta} }

// Forward implements Layer.
func (b *BatchNorm2D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() != 4 || x.Dim(1) != b.c {
		return nil, fmt.Errorf("nn: %s: bad input shape %v", b.Name(), x.Shape())
	}
	batch, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	n := batch * h * w
	y := tensor.New(x.Shape()...)
	xd, yd := x.Data(), y.Data()
	g, be := b.gamma.W.Data(), b.beta.W.Data()

	if !train {
		for ch := 0; ch < b.c; ch++ {
			inv := 1 / math.Sqrt(b.runVar[ch]+b.eps)
			for bi := 0; bi < batch; bi++ {
				base := ((bi*b.c + ch) * h) * w
				for i := 0; i < h*w; i++ {
					yd[base+i] = g[ch]*(xd[base+i]-b.runMean[ch])*inv + be[ch]
				}
			}
		}
		b.lastXHat = nil
		return y, nil
	}

	xhat := tensor.New(x.Shape()...)
	xhd := xhat.Data()
	b.lastStd = make([]float64, b.c)
	b.lastMean = make([]float64, b.c)
	for ch := 0; ch < b.c; ch++ {
		sum := 0.0
		for bi := 0; bi < batch; bi++ {
			base := ((bi*b.c + ch) * h) * w
			for i := 0; i < h*w; i++ {
				sum += xd[base+i]
			}
		}
		mean := sum / float64(n)
		ss := 0.0
		for bi := 0; bi < batch; bi++ {
			base := ((bi*b.c + ch) * h) * w
			for i := 0; i < h*w; i++ {
				d := xd[base+i] - mean
				ss += d * d
			}
		}
		variance := ss / float64(n)
		std := math.Sqrt(variance + b.eps)
		b.lastMean[ch], b.lastStd[ch] = mean, std
		b.runMean[ch] = b.momentum*b.runMean[ch] + (1-b.momentum)*mean
		b.runVar[ch] = b.momentum*b.runVar[ch] + (1-b.momentum)*variance
		for bi := 0; bi < batch; bi++ {
			base := ((bi*b.c + ch) * h) * w
			for i := 0; i < h*w; i++ {
				xh := (xd[base+i] - mean) / std
				xhd[base+i] = xh
				yd[base+i] = g[ch]*xh + be[ch]
			}
		}
	}
	b.lastXHat = xhat
	b.lastX = x
	return y, nil
}

// Backward implements Layer (training-mode statistics).
func (b *BatchNorm2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if b.lastXHat == nil {
		return nil, fmt.Errorf("nn: %s: Backward before training-mode Forward", b.Name())
	}
	if !tensor.SameShape(grad, b.lastXHat) {
		return nil, fmt.Errorf("nn: %s: bad gradient shape %v", b.Name(), grad.Shape())
	}
	batch, h, w := grad.Dim(0), grad.Dim(2), grad.Dim(3)
	n := float64(batch * h * w)
	dx := tensor.New(grad.Shape()...)
	gd, xhd, dxd := grad.Data(), b.lastXHat.Data(), dx.Data()
	g := b.gamma.W.Data()
	dgamma, dbeta := b.gamma.G.Data(), b.beta.G.Data()

	for ch := 0; ch < b.c; ch++ {
		var sumDy, sumDyXhat float64
		for bi := 0; bi < batch; bi++ {
			base := ((bi*b.c + ch) * h) * w
			for i := 0; i < h*w; i++ {
				sumDy += gd[base+i]
				sumDyXhat += gd[base+i] * xhd[base+i]
			}
		}
		dgamma[ch] += sumDyXhat
		dbeta[ch] += sumDy
		// dx = γ/std · (dy − mean(dy) − xhat·mean(dy·xhat))
		inv := g[ch] / b.lastStd[ch]
		for bi := 0; bi < batch; bi++ {
			base := ((bi*b.c + ch) * h) * w
			for i := 0; i < h*w; i++ {
				dxd[base+i] = inv * (gd[base+i] - sumDy/n - xhd[base+i]*sumDyXhat/n)
			}
		}
	}
	return dx, nil
}
