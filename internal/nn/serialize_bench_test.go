package nn

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/wire"
)

// The encode benchmarks compare the two checkpoint codecs on a
// PaperCNN-sized weight vector (CIFAR-10 configuration, ~545k params —
// the |w| that dominates the paper's cost model). The wire variant is
// gated at ≤ 0.5× the gob variant's ns/op by cmd/p2pfl-benchjson
// -pairs 'EncodeModelWire=EncodeModelGob@0.5' in `make bench-check`,
// and must stay allocation-free at steady state: the frame goes into a
// reused buffer and the flat weights into a reused scratch vector.

var (
	encBenchOnce  sync.Once
	encBenchModel *Model
)

func encodeBenchModel(b *testing.B) *Model {
	encBenchOnce.Do(func() {
		m, err := PaperCNN(3, 32, 10, rand.New(rand.NewSource(11)))
		if err == nil {
			encBenchModel = m
		}
	})
	if encBenchModel == nil {
		b.Fatal("PaperCNN construction failed")
	}
	return encBenchModel
}

func BenchmarkEncodeModelGob(b *testing.B) {
	m := encodeBenchModel(b)
	names, sizes := m.schema()
	cp := checkpoint{Names: names, Sizes: sizes, Weights: m.WeightVector()}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		// A fresh encoder per checkpoint mirrors Save: every stored
		// checkpoint must be independently decodable, so the type
		// preamble is paid every time.
		if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkEncodeModelWire(b *testing.B) {
	m := encodeBenchModel(b)
	names, sizes := m.schema()
	cp := wire.Checkpoint{Names: names, Sizes: sizes, Weights: m.WeightVector()}
	buf := wire.AppendCheckpointFrame(nil, cp) // size the buffer once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = wire.AppendCheckpointFrame(buf[:0], cp)
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkDecodeModelWire covers the receive side: decoding a
// checkpoint frame of the same model.
func BenchmarkDecodeModelWire(b *testing.B) {
	m := encodeBenchModel(b)
	names, sizes := m.schema()
	frame := wire.AppendCheckpointFrame(nil, wire.Checkpoint{Names: names, Sizes: sizes, Weights: m.WeightVector()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.DecodeCheckpointPayload(frame[wire.HeaderSize:]); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(frame)))
}
