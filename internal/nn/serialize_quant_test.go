package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// TestSaveQuantizedRoundTrip: a quantized checkpoint loads back into a
// same-architecture model with every weight within the reported
// per-coordinate bound, and the int8 frame is well under a quarter of
// the float64 frame.
func TestSaveQuantizedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := MLP(8, []int{16}, 4, rng)

	var plain bytes.Buffer
	if err := a.Save(&plain); err != nil {
		t.Fatal(err)
	}

	for _, width := range []int{1, 2} {
		var buf bytes.Buffer
		bound, err := a.SaveQuantized(&buf, width)
		if err != nil {
			t.Fatal(err)
		}
		if width == 1 && buf.Len() > plain.Len()/4 {
			t.Fatalf("int8 checkpoint %dB, want ≤ quarter of %dB", buf.Len(), plain.Len())
		}
		b := MLP(8, []int{16}, 4, rand.New(rand.NewSource(12)))
		if err := b.Load(&buf); err != nil {
			t.Fatal(err)
		}
		wa, wb := a.WeightVector(), b.WeightVector()
		if bound.Dim != len(wa) {
			t.Fatalf("bound dim %d, want %d", bound.Dim, len(wa))
		}
		maxDiff := 0.0
		for j := range wa {
			if d := math.Abs(wa[j] - wb[j]); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff == 0 {
			t.Fatal("quantized load is bit-identical — quantization did not engage")
		}
		if maxDiff > bound.MaxCoordErr+1e-15 {
			t.Fatalf("width %d: weight drifted %g, bound %g", width, maxDiff, bound.MaxCoordErr)
		}
		if bound.MeasuredMaxErr > bound.MaxCoordErr+1e-15 {
			t.Fatalf("width %d: measured error %g exceeds bound %g", width, bound.MeasuredMaxErr, bound.MaxCoordErr)
		}
	}
}

// TestSaveQuantizedRejectsMismatch: the schema check guards quantized
// checkpoints exactly as it guards plain ones.
func TestSaveQuantizedRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := MLP(8, []int{16}, 4, rng)
	var buf bytes.Buffer
	if _, err := a.SaveQuantized(&buf, 1); err != nil {
		t.Fatal(err)
	}
	b := MLP(8, []int{32}, 4, rng)
	if err := b.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("want schema-mismatch error")
	}
}

// TestSaveQuantizedBadWidth: only int8/int16 widths are accepted.
func TestSaveQuantizedBadWidth(t *testing.T) {
	a := MLP(4, nil, 2, rand.New(rand.NewSource(14)))
	var buf bytes.Buffer
	if _, err := a.SaveQuantized(&buf, 3); err == nil {
		t.Fatal("width 3 accepted")
	}
	if buf.Len() != 0 {
		t.Fatal("failed save wrote bytes")
	}
}
