package optim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// quadModel builds a trivially optimizable "model": a single parameter
// vector whose gradient we set by hand.
func quadParams(dim int) []*nn.Param {
	p := &nn.Param{Name: "p", W: tensor.New(dim), G: tensor.New(dim)}
	return []*nn.Param{p}
}

// setQuadGrad sets G = W (gradient of ½‖w‖², minimized at 0).
func setQuadGrad(params []*nn.Param) {
	copy(params[0].G.Data(), params[0].W.Data())
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	params := quadParams(4)
	copy(params[0].W.Data(), []float64{1, -2, 3, -4})
	opt := NewSGD(0.1, 0)
	for i := 0; i < 200; i++ {
		setQuadGrad(params)
		if err := opt.Step(params); err != nil {
			t.Fatal(err)
		}
	}
	if n := params[0].W.Norm2(); n > 1e-6 {
		t.Fatalf("SGD did not converge: ‖w‖ = %v", n)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	params := quadParams(4)
	copy(params[0].W.Data(), []float64{1, -2, 3, -4})
	opt := NewSGD(0.05, 0.9)
	for i := 0; i < 400; i++ {
		setQuadGrad(params)
		if err := opt.Step(params); err != nil {
			t.Fatal(err)
		}
	}
	if n := params[0].W.Norm2(); n > 1e-4 {
		t.Fatalf("momentum SGD did not converge: ‖w‖ = %v", n)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	params := quadParams(4)
	copy(params[0].W.Data(), []float64{1, -2, 3, -4})
	opt := NewAdam(0.05)
	for i := 0; i < 1000; i++ {
		setQuadGrad(params)
		if err := opt.Step(params); err != nil {
			t.Fatal(err)
		}
	}
	if n := params[0].W.Norm2(); n > 1e-3 {
		t.Fatalf("Adam did not converge: ‖w‖ = %v", n)
	}
}

func TestAdamFirstStepIsLR(t *testing.T) {
	// With bias correction, the very first Adam step has magnitude ≈ lr
	// regardless of gradient scale.
	for _, scale := range []float64{1e-4, 1, 1e4} {
		params := quadParams(1)
		params[0].W.Data()[0] = scale
		opt := NewAdam(0.01)
		setQuadGrad(params)
		if err := opt.Step(params); err != nil {
			t.Fatal(err)
		}
		moved := math.Abs(scale - params[0].W.Data()[0])
		if math.Abs(moved-0.01) > 1e-6 {
			t.Fatalf("scale %g: first step = %v, want ≈ lr", scale, moved)
		}
	}
}

func TestAdamReset(t *testing.T) {
	params := quadParams(2)
	copy(params[0].W.Data(), []float64{1, 1})
	opt := NewAdam(0.01)
	setQuadGrad(params)
	if err := opt.Step(params); err != nil {
		t.Fatal(err)
	}
	opt.Reset()
	if opt.t != 0 || len(opt.m) != 0 || len(opt.v) != 0 {
		t.Fatal("Reset must clear all state")
	}
}

func TestOptimizerNames(t *testing.T) {
	if NewSGD(0.1, 0).Name() == "" || NewAdam(0.1).Name() == "" {
		t.Fatal("empty optimizer name")
	}
}

func TestAdamOnRealModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := nn.MLP(4, []int{8}, 2, rng)
	x := tensor.New(6, 4)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	labels := []int{0, 1, 0, 1, 0, 1}
	opt := NewAdam(0.01)
	var first, last float64
	for i := 0; i < 50; i++ {
		m.ZeroGrad()
		loss, err := m.Loss(x.Clone(), labels)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Backward(); err != nil {
			t.Fatal(err)
		}
		if err := opt.Step(m.Params()); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Fatalf("Adam training did not reduce loss: %v → %v", first, last)
	}
}

func BenchmarkAdamStep(b *testing.B) {
	params := quadParams(1 << 16)
	opt := NewAdam(1e-3)
	setQuadGrad(params)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := opt.Step(params); err != nil {
			b.Fatal(err)
		}
	}
}
