// Package optim provides the gradient-descent optimizers used by the local
// training step of federated learning: Adam (the paper's choice, with the
// paper's learning rate 1e-4) and plain SGD as a baseline.
package optim

import (
	"fmt"
	"math"

	"repro/internal/nn"
)

// Optimizer updates model parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update using the gradients currently stored in the
	// parameters, then the caller typically zeroes the gradients.
	Step(params []*nn.Param) error
	// Name identifies the optimizer for logs.
	Name() string
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	velocity map[*nn.Param][]float64
}

// NewSGD creates an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*nn.Param][]float64)}
}

// Name implements Optimizer.
func (s *SGD) Name() string { return fmt.Sprintf("SGD(lr=%g, m=%g)", s.LR, s.Momentum) }

// Step implements Optimizer.
func (s *SGD) Step(params []*nn.Param) error {
	for _, p := range params {
		w, g := p.W.Data(), p.G.Data()
		if s.Momentum == 0 {
			for i := range w {
				w[i] -= s.LR * g[i]
			}
			continue
		}
		v, ok := s.velocity[p]
		if !ok {
			v = make([]float64, len(w))
			s.velocity[p] = v
		}
		for i := range w {
			v[i] = s.Momentum*v[i] + g[i]
			w[i] -= s.LR * v[i]
		}
	}
	return nil
}

// Adam implements Kingma & Ba's Adam with bias correction. The defaults
// match the paper's setup: lr=1e-4, β1=0.9, β2=0.999, ε=1e-8.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[*nn.Param][]float64
	v map[*nn.Param][]float64
}

// NewAdam creates an Adam optimizer with standard β/ε constants.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*nn.Param][]float64),
		v: make(map[*nn.Param][]float64),
	}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return fmt.Sprintf("Adam(lr=%g)", a.LR) }

// Step implements Optimizer.
func (a *Adam) Step(params []*nn.Param) error {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		w, g := p.W.Data(), p.G.Data()
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(w))
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = make([]float64, len(w))
			a.v[p] = v
		}
		if len(m) != len(w) {
			return fmt.Errorf("optim: parameter %q changed size", p.Name)
		}
		for i := range w {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g[i]
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g[i]*g[i]
			mHat := m[i] / c1
			vHat := v[i] / c2
			w[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
	return nil
}

// Reset clears all optimizer state (moments and step count), as when a
// fresh global model is installed at the start of a federated round.
func (a *Adam) Reset() {
	a.t = 0
	a.m = make(map[*nn.Param][]float64)
	a.v = make(map[*nn.Param][]float64)
}
