package live

import (
	"testing"

	"repro/internal/raft"
	"repro/internal/telemetry"
)

// TestRouterBackpressureDrop forces the loss-on-backpressure path: a
// registered inbox with capacity 1 receives two sends, so exactly one
// message must be dropped and counted (globally and per peer). Until
// this test nothing proved the silent-drop branch ever triggered.
func TestRouterBackpressureDrop(t *testing.T) {
	reg := telemetry.New()
	r := NewRouterWith(reg)
	ch := make(chan raft.Message, 1)
	if err := r.register(7, ch); err != nil {
		t.Fatal(err)
	}

	r.Send(raft.Message{To: 7}) // fills the inbox
	r.Send(raft.Message{To: 7}) // must drop: nobody is draining

	s := reg.Snapshot()
	if got := s.Counters["live/router/msgs_sent"]; got != 1 {
		t.Errorf("msgs_sent = %d, want 1", got)
	}
	if got := s.Counters["live/router/msgs_dropped"]; got != 1 {
		t.Errorf("msgs_dropped = %d, want 1", got)
	}
	if got := s.Counters["live/router/peer7/msgs_dropped"]; got != 1 {
		t.Errorf("peer7/msgs_dropped = %d, want 1", got)
	}

	// Unregistered destination: unroutable, not dropped.
	r.Send(raft.Message{To: 99})
	s = reg.Snapshot()
	if got := s.Counters["live/router/msgs_unroutable"]; got != 1 {
		t.Errorf("msgs_unroutable = %d, want 1", got)
	}
	if got := s.Counters["live/router/msgs_dropped"]; got != 1 {
		t.Errorf("msgs_dropped after unroutable send = %d, want still 1", got)
	}
}

// TestRouterNilTelemetry: the no-registry router must keep working
// through every path (send, drop, unroutable).
func TestRouterNilTelemetry(t *testing.T) {
	r := NewRouter()
	ch := make(chan raft.Message, 1)
	if err := r.register(1, ch); err != nil {
		t.Fatal(err)
	}
	r.Send(raft.Message{To: 1})
	r.Send(raft.Message{To: 1}) // drop path
	r.Send(raft.Message{To: 2}) // unroutable path
	if len(ch) != 1 {
		t.Fatalf("inbox len = %d, want 1", len(ch))
	}
}
