// Package live runs the system in real time: each Raft node is owned by
// a driver goroutine ticked by a wall-clock timer, messages travel
// through a router (in-process channels with loss-on-backpressure, or
// any transport with the same contract), and the aggregation layer reads
// leadership from the drivers' published status — the real-time
// counterpart of the discrete-event harness in internal/simnet, used
// when the system must run against actual time (as in cmd/p2pfl-node)
// rather than virtual time.
package live

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/raft"
	"repro/internal/telemetry"
)

// Router delivers raft messages between live drivers. Sends are
// non-blocking: a full inbox drops the message (Raft tolerates loss via
// retransmission), so a slow peer cannot stall the others. Every drop
// is counted — loss-on-backpressure is a designed behavior, and the
// telemetry is what proves it actually triggers (and how often).
type Router struct {
	mu     sync.RWMutex
	routes map[uint64]route

	reg            *telemetry.Registry
	msgsSent       *telemetry.Counter
	msgsDropped    *telemetry.Counter
	msgsUnroutable *telemetry.Counter
}

// route is one registered inbox plus its per-peer drop counter
// (resolved once at registration so Send stays map-lookup-free).
type route struct {
	ch      chan raft.Message
	dropped *telemetry.Counter
}

// NewRouter creates an empty router with no telemetry.
func NewRouter() *Router { return NewRouterWith(nil) }

// NewRouterWith creates an empty router recording live/router/*
// counters into reg (nil for no instrumentation).
func NewRouterWith(reg *telemetry.Registry) *Router {
	return &Router{
		routes:         make(map[uint64]route),
		reg:            reg,
		msgsSent:       reg.Counter("live/router/msgs_sent"),
		msgsDropped:    reg.Counter("live/router/msgs_dropped"),
		msgsUnroutable: reg.Counter("live/router/msgs_unroutable"),
	}
}

// register adds a driver's inbox; unregister removes it (crash).
func (r *Router) register(id uint64, ch chan raft.Message) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.routes[id]; ok {
		return fmt.Errorf("live: node %d already registered", id)
	}
	r.routes[id] = route{
		ch:      ch,
		dropped: r.reg.Counter(fmt.Sprintf("live/router/peer%d/msgs_dropped", id)),
	}
	return nil
}

func (r *Router) unregister(id uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.routes, id)
}

// Send routes one message. Unknown destinations and full inboxes drop
// it; both outcomes are counted (msgs_unroutable covers crashed or
// never-registered peers, msgs_dropped counts backpressure loss).
func (r *Router) Send(m raft.Message) {
	r.mu.RLock()
	rt, ok := r.routes[m.To]
	r.mu.RUnlock()
	if !ok {
		r.msgsUnroutable.Inc()
		return
	}
	select {
	case rt.ch <- m:
		r.msgsSent.Inc()
	default:
		r.msgsDropped.Inc()
		rt.dropped.Inc()
	}
}

// Driver owns one raft.Node on a real-time loop. All node access happens
// on the driver goroutine; callers interact through channels and the
// atomically-published status snapshot.
type Driver struct {
	id     uint64
	router *Router

	in        chan raft.Message
	proposeCh chan proposal
	stopCh    chan struct{}
	doneCh    chan struct{}
	stopOnce  sync.Once

	status atomic.Value // raft.Status

	// OnCommit, if set before Start, observes committed entries on the
	// driver goroutine.
	OnCommit func(raft.Entry)

	tick time.Duration
	node *raft.Node
}

type proposal struct {
	data []byte
	conf *raft.ConfChange
	errC chan error
}

// NewDriver wraps node (which must not be touched afterwards by the
// caller) with a real-time loop ticking every tickInterval. Call Start
// to begin.
func NewDriver(node *raft.Node, router *Router, tickInterval time.Duration) (*Driver, error) {
	if tickInterval <= 0 {
		return nil, fmt.Errorf("live: tick interval %v must be positive", tickInterval)
	}
	d := &Driver{
		id:        node.ID(),
		router:    router,
		in:        make(chan raft.Message, 256),
		proposeCh: make(chan proposal),
		stopCh:    make(chan struct{}),
		doneCh:    make(chan struct{}),
		tick:      tickInterval,
		node:      node,
	}
	d.status.Store(node.Status())
	if err := router.register(d.id, d.in); err != nil {
		return nil, err
	}
	return d, nil
}

// Start launches the driver goroutine.
func (d *Driver) Start() {
	go d.run()
}

func (d *Driver) run() {
	defer close(d.doneCh)
	ticker := time.NewTicker(d.tick)
	defer ticker.Stop()
	for {
		select {
		case <-d.stopCh:
			return
		case <-ticker.C:
			d.node.Tick()
		case m := <-d.in:
			_ = d.node.Step(m)
		case p := <-d.proposeCh:
			var err error
			if p.conf != nil {
				err = d.node.ProposeConfChange(*p.conf)
			} else {
				err = d.node.Propose(p.data)
			}
			p.errC <- err
		}
		rd := d.node.Ready()
		for _, m := range rd.Messages {
			d.router.Send(m)
		}
		if d.OnCommit != nil {
			for _, e := range rd.Committed {
				d.OnCommit(e)
			}
		}
		d.status.Store(d.node.Status())
	}
}

// ID returns the driven node's ID.
func (d *Driver) ID() uint64 { return d.id }

// Status returns the latest published snapshot (lock-free).
func (d *Driver) Status() raft.Status { return d.status.Load().(raft.Status) }

// Propose submits a command to the node; it returns the node's error
// (e.g. raft.ErrNotLeader) or ErrStopped after Stop.
func (d *Driver) Propose(data []byte) error {
	p := proposal{data: data, errC: make(chan error, 1)}
	select {
	case d.proposeCh <- p:
		return <-p.errC
	case <-d.doneCh:
		return ErrStopped
	}
}

// ProposeConfChange submits a membership change.
func (d *Driver) ProposeConfChange(cc raft.ConfChange) error {
	p := proposal{conf: &cc, errC: make(chan error, 1)}
	select {
	case d.proposeCh <- p:
		return <-p.errC
	case <-d.doneCh:
		return ErrStopped
	}
}

// ErrStopped reports an operation on a stopped driver.
var ErrStopped = fmt.Errorf("live: driver stopped")

// Stop kills the driver (simulating a crash): the loop exits and the
// router drops future messages to this node. Idempotent.
func (d *Driver) Stop() {
	d.stopOnce.Do(func() {
		d.router.unregister(d.id)
		close(d.stopCh)
	})
	<-d.doneCh
}

// WaitLeader polls a set of drivers until one publishes itself as leader
// (and returns it), or the deadline passes.
func WaitLeader(drivers []*Driver, timeout time.Duration) (*Driver, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, d := range drivers {
			if st := d.Status(); st.State == raft.Leader {
				return d, nil
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil, fmt.Errorf("live: no leader within %v", timeout)
}
