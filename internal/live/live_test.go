package live

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/raft"
)

func newLiveGroup(t *testing.T, router *Router, ids []uint64, seed int64) []*Driver {
	t.Helper()
	var drivers []*Driver
	for _, id := range ids {
		node, err := raft.NewNode(raft.Config{
			ID: id, Peers: ids,
			// Generous timeouts so the test is robust on loaded CI hosts:
			// ticks are 2 ms, so U(30,60) ticks = 60–120 ms.
			ElectionTickMin: 30, ElectionTickMax: 60, HeartbeatTick: 8,
			Rng: rand.New(rand.NewSource(seed*100 + int64(id))),
		})
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDriver(node, router, 2*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		drivers = append(drivers, d)
	}
	for _, d := range drivers {
		d.Start()
	}
	t.Cleanup(func() {
		for _, d := range drivers {
			d.Stop()
		}
	})
	return drivers
}

// waitFor polls cond at a short interval until it holds or the timeout
// passes — the only sanctioned way for these real-time tests to wait, so
// no test path depends on a fixed wall-clock sleep being "long enough".
func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLiveElectionAndReplication(t *testing.T) {
	router := NewRouter()
	drivers := newLiveGroup(t, router, []uint64{1, 2, 3}, 1)
	lead, err := WaitLeader(drivers, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Commits reach every node in real time (observed via the published
	// status snapshots — OnCommit must be set before Start).
	before := lead.Status().CommitIndex
	if err := lead.Propose([]byte("live-entry")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 20*time.Second, func() bool {
		for _, d := range drivers {
			if d.Status().CommitIndex <= before {
				return false
			}
		}
		return true
	}, "entry did not commit everywhere")
}

func TestLiveLeaderCrashRecovery(t *testing.T) {
	router := NewRouter()
	drivers := newLiveGroup(t, router, []uint64{1, 2, 3, 4, 5}, 2)
	lead, err := WaitLeader(drivers, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	lead.Stop()
	var rest []*Driver
	for _, d := range drivers {
		if d != lead {
			rest = append(rest, d)
		}
	}
	newLead, err := WaitLeader(rest, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if newLead.ID() == lead.ID() {
		t.Fatal("stopped driver cannot lead")
	}
	if newLead.Status().Term <= lead.Status().Term {
		t.Fatal("new leader must have a later term")
	}
}

func TestLiveProposeOnFollower(t *testing.T) {
	router := NewRouter()
	drivers := newLiveGroup(t, router, []uint64{1, 2, 3}, 3)
	lead, err := WaitLeader(drivers, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range drivers {
		if d == lead {
			continue
		}
		if err := d.Propose([]byte("x")); err != raft.ErrNotLeader {
			t.Fatalf("follower propose err = %v", err)
		}
		break
	}
}

func TestLiveStoppedDriver(t *testing.T) {
	router := NewRouter()
	drivers := newLiveGroup(t, router, []uint64{1}, 4)
	d := drivers[0]
	d.Stop()
	d.Stop() // idempotent
	if err := d.Propose([]byte("x")); err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if err := d.ProposeConfChange(raft.ConfChange{Add: true, NodeID: 9}); err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
}

func TestDriverValidation(t *testing.T) {
	router := NewRouter()
	node, err := raft.NewNode(raft.Config{
		ID: 1, Peers: []uint64{1},
		ElectionTickMin: 10, ElectionTickMax: 20, HeartbeatTick: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDriver(node, router, 0); err == nil {
		t.Fatal("want error for zero tick")
	}
	if _, err := NewDriver(node, router, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Duplicate registration.
	if _, err := NewDriver(node, router, time.Millisecond); err == nil {
		t.Fatal("want duplicate-registration error")
	}
}

// The full system in real time: three live Raft subgroups elect leaders
// with wall-clock timers, the elected leaders drive two-layer SAC
// aggregation rounds, a leader is killed mid-run, and rounds continue
// after re-election — no simulator involved.
func TestLiveTwoLayerAggregationWithCrash(t *testing.T) {
	router := NewRouter()
	// Independent routers per subgroup keep the raft groups isolated.
	subIDs := [][]uint64{{11, 12, 13}, {21, 22, 23}, {31, 32, 33}}
	var groups [][]*Driver
	for gi, ids := range subIDs {
		groups = append(groups, newLiveGroup(t, router, ids, int64(10+gi)))
	}
	leaders := make([]*Driver, len(groups))
	for gi, g := range groups {
		l, err := WaitLeader(g, 30*time.Second)
		if err != nil {
			t.Fatalf("subgroup %d: %v", gi, err)
		}
		leaders[gi] = l
	}

	leaderIdx := func() []int {
		idx := make([]int, len(groups))
		for gi, g := range groups {
			idx[gi] = -1
			for i, d := range g {
				if d == leaders[gi] {
					idx[gi] = i
				}
			}
		}
		return idx
	}

	sys, err := core.NewSystem(core.Config{Sizes: []int{3, 3, 3}, K: []int{2}}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(8))
	models := make([][]float64, 9)
	want := make([]float64, 16)
	for i := range models {
		m := make([]float64, 16)
		for j := range m {
			m[j] = r.NormFloat64()
			want[j] += m[j] / 9
		}
		models[i] = m
	}

	aggregate := func() []float64 {
		res, err := sys.AggregateRound(models, core.RoundSpec{Leaders: leaderIdx(), FedLeader: -1})
		if err != nil {
			t.Fatal(err)
		}
		return res.Global
	}
	g1 := aggregate()

	// Kill subgroup 1's leader; its raft group re-elects in real time.
	old := leaders[1]
	old.Stop()
	var rest []*Driver
	for _, d := range groups[1] {
		if d != old {
			rest = append(rest, d)
		}
	}
	nl, err := WaitLeader(rest, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	leaders[1] = nl

	g2 := aggregate()
	// Both rounds produce the exact mean regardless of which peers lead.
	for j := range want {
		d1, d2 := g1[j]-want[j], g2[j]-want[j]
		if d1 > 1e-9 || d1 < -1e-9 || d2 > 1e-9 || d2 < -1e-9 {
			t.Fatal("aggregation incorrect across live leadership change")
		}
	}
}
