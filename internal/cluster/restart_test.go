package cluster

import (
	"testing"

	"repro/internal/raft"
	"repro/internal/simnet"
)

func TestRestartedFollowerRejoins(t *testing.T) {
	s := mustBootstrap(t, paperOpts(50, 61))
	s.Sim.RunFor(500 * simnet.Millisecond)

	lead := s.SubgroupLeader(0)
	var victim uint64 = raft.None
	for _, id := range s.SubgroupPeers(0) {
		if id != lead {
			victim = id
			break
		}
	}
	if err := s.CrashPeer(victim); err != nil {
		t.Fatal(err)
	}
	s.Sim.RunFor(1 * simnet.Second)
	if err := s.RestartPeer(victim); err != nil {
		t.Fatal(err)
	}
	if err := s.RestartPeer(victim); err == nil {
		t.Fatal("want error restarting a live peer")
	}
	if err := s.RestartPeer(9999); err == nil {
		t.Fatal("want error for unknown peer")
	}
	s.Sim.RunFor(1 * simnet.Second)
	// The rejoined follower tracks the current config again and
	// leadership was never disturbed.
	if s.SubgroupLeader(0) != lead {
		t.Fatal("rejoin disturbed subgroup leadership")
	}
	p := s.Peer(victim)
	if p.Down() {
		t.Fatal("peer still down after restart")
	}
	if len(p.FedConfig()) != len(s.FedAvgMembers()) {
		t.Fatalf("rejoined peer knows %d FedAvg members, want %d", len(p.FedConfig()), len(s.FedAvgMembers()))
	}
}

func TestRestartedLeaderCanLeadAgain(t *testing.T) {
	// Crash a subgroup leader, let a new one take over and join the
	// FedAvg layer, then restart the old leader, crash the current one,
	// and verify the subgroup recovers regardless of who wins —
	// including the restarted peer reviving its FedAvg membership.
	s := mustBootstrap(t, paperOpts(50, 62))
	s.Sim.RunFor(500 * simnet.Millisecond)

	fed := s.FedAvgLeader()
	var victimSub int
	var oldLeader uint64
	for g := 0; g < 5; g++ {
		if l := s.SubgroupLeader(g); l != fed {
			oldLeader, victimSub = l, g
			break
		}
	}
	if err := s.CrashPeer(oldLeader); err != nil {
		t.Fatal(err)
	}
	newLeader, _, err := s.WaitSubgroupLeader(victimSub, oldLeader, 20*simnet.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitJoined(newLeader, 30*simnet.Second); err != nil {
		t.Fatal(err)
	}
	// Old leader comes back as a follower...
	if err := s.RestartPeer(oldLeader); err != nil {
		t.Fatal(err)
	}
	s.Sim.RunFor(1 * simnet.Second)
	// ...then the current leader dies.
	if err := s.CrashPeer(newLeader); err != nil {
		t.Fatal(err)
	}
	third, _, err := s.WaitSubgroupLeader(victimSub, newLeader, 30*simnet.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitJoined(third, 60*simnet.Second); err != nil {
		t.Fatal(err)
	}
	if s.Peer(third).Down() {
		t.Fatal("elected leader is down?")
	}
}
