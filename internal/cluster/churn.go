package cluster

// This file is the continuous-churn control plane (DESIGN.md §14): a
// replicated peer directory on the FedAvg-layer Raft log, mid-training
// join/leave, and graceful handoff.
//
//   - Directory. Every FedAvg-layer node applies committed directory
//     entries (wire.KindDirectory frames proposed as ordinary log data)
//     to its own directory.Directory replica. All replicas start from
//     the same bootstrap seed (the initial membership, configuration
//     exactly like raft's initial Peers list), so equal logs yield
//     equal directories; the chaos directory-convergence invariant
//     compares replica checksums.
//   - Join (AddPeer). A new peer's raft node is created with the
//     current subgroup membership and admitted in two committed steps:
//     a subgroup ConfChange{Add:true} proposed through the subgroup
//     leader, then a directory join proposed through the FedAvg leader.
//     The directory assigns the share index deterministically (lowest
//     free slot), which reassigns the subgroup's secretshare slots for
//     the NEXT SAC round — never mid-round, because rounds read the
//     directory once at start.
//   - Leave (DepartPeer). A departing peer first hands its model to a
//     co-member for safekeeping (checkpoint wire kind), then its
//     directory leave commits, then its subgroup (and, for a FedAvg
//     member, FedAvg-layer) ConfChange{Add:false} commits, and finally
//     its hosts are removed and every co-member detector forgets it.
//     Crashed peers may also depart (no handoff); mid-round failures
//     keep using the existing degraded-round/recovery paths.
//   - Handoff (ReplacePeer). A replaced peer transfers its persisted
//     raft state and its model — the model as a byte-exact checkpoint
//     frame round-trip — to a successor process that resumes the same
//     logical node (simnet.Host.RestartFrom) without retraining and
//     with zero lost training rounds.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"

	"repro/internal/directory"
	"repro/internal/health"
	"repro/internal/raft"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// Churn event kinds, recorded on the same timeline as the recovery
// events in cluster.go.
const (
	// EvPeerJoined: a new peer's admission completed — its subgroup
	// membership change and directory join both committed.
	EvPeerJoined EventKind = "peer-joined"
	// EvPeerDeparted: a peer's departure completed — directory leave and
	// membership removals committed, hosts removed, detectors scrubbed.
	EvPeerDeparted EventKind = "peer-departed"
	// EvHandoff: a peer's persisted state and model were transferred to
	// a successor (graceful handoff).
	EvHandoff EventKind = "handoff"
)

// peerAddr is the synthetic dialable address registered for a peer in
// the directory (the simulator has no real sockets; live deployments
// would register their transport address here).
func peerAddr(id uint64) string { return fmt.Sprintf("peer-%d:7100", id) }

// Addr returns the peer's directory-registered address.
func (p *Peer) Addr() string { return p.addr }

// Model returns the peer's local model vector (nil until SetModel).
func (p *Peer) Model() []float64 { return p.model }

// SetModel installs the peer's local model vector — the state a
// graceful handoff transfers.
func (p *Peer) SetModel(w []float64) { p.model = append(p.model[:0:0], w...) }

// Inherited returns the model checkpoint this peer received from a
// gracefully departing co-member, or nil.
func (p *Peer) Inherited() []float64 { return p.inherited }

// Departing reports whether the peer's graceful departure is in flight.
func (p *Peer) Departing() bool { return p.departing }

// DirectoryReplica exposes the peer's directory replica. Callers must
// treat it as read-only: it is mutated only by committed FedAvg-layer
// log entries.
func (p *Peer) DirectoryReplica() *directory.Directory { return p.dir }

// buildSeedDirectory encodes the bootstrap directory: every initial
// peer registered in its subgroup with share index = position in the
// subgroup, exactly the assignment the SAC layer used before churn
// existed.
func (s *System) buildSeedDirectory() []byte {
	d := directory.New()
	for g, ids := range s.bySub {
		for i, id := range ids {
			// Applying join frames in (subgroup, position) order cannot
			// fail and assigns exactly the proposed indices.
			_, _ = d.Apply(wire.DirectoryUpdate{
				Op: wire.DirJoin, ID: id, Subgroup: g, ShareIndex: i, Addr: peerAddr(id),
			})
		}
	}
	return d.EncodeSnapshot()
}

// applyDirectoryEntry applies one committed FedAvg-layer EntryNormal to
// p's directory replica if it is a directory frame; other normal
// entries pass through untouched. Duplicate leaves (a retried proposal
// that committed twice) are rejected by every replica identically, so
// ignoring the error preserves convergence.
func (s *System) applyDirectoryEntry(p *Peer, data []byte) {
	kind, n, err := wire.ParseHeader(data)
	if err != nil || kind != wire.KindDirectory || len(data) != wire.HeaderSize+n {
		return
	}
	u, err := wire.DecodeDirectoryPayload(data[wire.HeaderSize:])
	if err != nil {
		return
	}
	if _, err := p.dir.Apply(u); err != nil {
		s.opts.Telemetry.Counter("cluster/churn/directory_rejected").Inc()
		return
	}
	s.opts.Telemetry.Counter("cluster/churn/directory_applied").Inc()
}

// Directory returns the FedAvg leader's directory replica — the
// authoritative view round drivers read — or nil when the layer has no
// leader.
func (s *System) Directory() *directory.Directory {
	l := s.FedAvgLeader()
	if l == raft.None {
		return nil
	}
	return s.peers[l].dir
}

// DirectoryReplicas returns the peers currently holding a live
// directory replica — a running FedAvg-layer node that is a member of
// the layer — ascending. A live fed node outside the membership is an
// orphaned joiner (its addition never committed before it lost subgroup
// leadership, so the layer never replicates to it); it holds stale
// state by design and is not a replica.
func (s *System) DirectoryReplicas() []uint64 {
	members := s.FedAvgMembers()
	var out []uint64
	for _, id := range s.PeerIDs() {
		p := s.peers[id]
		if p.fedHost == nil || p.fedHost.Down() {
			continue
		}
		if members != nil && !contains(members, id) {
			continue
		}
		out = append(out, id)
	}
	return out
}

// DirectoryConverged reports whether every live directory replica holds
// the same state (equal checksums) — the chaos directory-convergence
// invariant, meaningful after quiesce.
func (s *System) DirectoryConverged() bool {
	replicas := s.DirectoryReplicas()
	if len(replicas) == 0 {
		return false
	}
	want := s.peers[replicas[0]].dir.Checksum()
	for _, id := range replicas[1:] {
		if s.peers[id].dir.Checksum() != want {
			return false
		}
	}
	return true
}

// DirectoryMatchesMembership reports whether the FedAvg leader's
// directory records exactly the admitted membership (s.bySub): same id
// set, same subgroup per id, and per-subgroup share indices sound. This
// is ground truth the directory cannot derive from its own bookkeeping.
func (s *System) DirectoryMatchesMembership() bool {
	d := s.Directory()
	if d == nil {
		return false
	}
	total := 0
	for g, ids := range s.bySub {
		total += len(ids)
		if !d.ShareIndexesSound(g) {
			return false
		}
		for _, id := range ids {
			e, ok := d.Lookup(id)
			if !ok || e.Subgroup != g {
				return false
			}
		}
	}
	return d.Len() == total
}

// ChurnIdle reports whether no admission or departure is in flight.
func (s *System) ChurnIdle() bool { return s.pendingChurn == 0 }

// proposeDirectory proposes one directory update through the current
// FedAvg leader, if any. Callers retry until their done condition holds;
// duplicate commits are harmless (joins are idempotent, duplicate
// leaves are rejected identically on every replica).
func (s *System) proposeDirectory(u wire.DirectoryUpdate) {
	l := s.FedAvgLeader()
	if l == raft.None {
		return
	}
	lp := s.peers[l]
	if lp == nil || lp.fedHost == nil || lp.fedHost.Down() {
		return
	}
	if err := lp.fedHost.Node.Propose(wire.AppendDirectoryFrame(nil, u)); err == nil {
		lp.fedHost.Pump()
	}
}

// subgroupMembers returns the subgroup leader's committed membership
// view, or nil when the subgroup currently has no live leader.
func (s *System) subgroupMembers(g int) []uint64 {
	l := s.SubgroupLeader(g)
	if l == raft.None {
		return nil
	}
	return s.peers[l].subHost.Node.Members()
}

func contains(ids []uint64, id uint64) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// refreshWatches realigns every live detector in subgroup g with the
// current membership — membership changes do not fire raft state
// changes on bystanders, so updateWatch would otherwise only catch up
// at the next election.
func (s *System) refreshWatches(g int) {
	for _, id := range s.bySub[g] {
		p := s.peers[id]
		if p == nil || p.det == nil || p.Down() {
			continue
		}
		s.updateWatch(p, p.subHost.Node.State(), p.subHost.Node.Leader())
	}
}

// AddPeer admits a brand-new peer into subgroup g mid-training. The
// peer's raft node starts from the current subgroup membership (not
// including itself, so it cannot campaign before its addition commits)
// and the admission protocol runs in the background: the subgroup
// leader is asked to commit ConfChange{Add:true}, then the FedAvg
// leader commits the directory join, which assigns the peer its share
// index for the next SAC round. WaitAdmitted blocks until both steps
// committed. Returns the new peer's id.
func (s *System) AddPeer(g int) (uint64, error) {
	if g < 0 || g >= len(s.bySub) {
		return 0, fmt.Errorf("cluster: no subgroup %d", g)
	}
	id := s.nextID
	s.nextID++
	members := append([]uint64(nil), s.bySub[g]...)
	p := &Peer{ID: id, Subgroup: g, sys: s, addr: peerAddr(id)}
	seed, err := directory.DecodeSnapshot(s.seedFrames)
	if err != nil {
		return 0, err
	}
	p.dir = seed
	if s.opts.AutoTune {
		p.rtt = health.NewRTTStats(0)
	}
	cfg := s.raftFlags(raft.Config{
		ID:              id,
		Peers:           members,
		ElectionTickMin: s.opts.ElectionTickMin,
		ElectionTickMax: s.opts.ElectionTickMax,
		HeartbeatTick:   s.opts.HeartbeatTick,
		Rng:             rand.New(rand.NewSource(s.opts.Seed*1000 + int64(id))),
		Telemetry:       s.opts.Telemetry,
	})
	if s.opts.SnapshotThreshold > 0 {
		cfg.SnapshotThreshold = s.opts.SnapshotThreshold
		cfg.SnapshotState = func() []byte {
			b, err := json.Marshal(fedConfigEntry{Members: p.fedConfig})
			if err != nil {
				return nil
			}
			return b
		}
	}
	node, err := raft.NewNode(cfg)
	if err != nil {
		return 0, err
	}
	host, err := s.subGroups[g].Add(node)
	if err != nil {
		return 0, err
	}
	p.subHost = host
	s.peers[id] = p
	s.wireSubgroupCallbacks(p)
	if s.opts.Detector {
		if err := s.setupDetector(p, append(members, id)); err != nil {
			return 0, err
		}
	}
	s.pendingChurn++
	s.opts.Telemetry.Counter("cluster/churn/joins").Inc()
	s.startAdmission(p)
	return id, nil
}

// startAdmission drives the two committed steps of a join, retrying
// every JoinPollInterval. The loop runs on behalf of the joiner (the
// actual proposals are made by the respective leaders), so it makes
// progress even while the joiner itself is briefly down.
func (s *System) startAdmission(p *Peer) {
	step := 0
	var attempt func()
	attempt = func() {
		for {
			switch step {
			case 0: // subgroup membership change committed?
				if m := s.subgroupMembers(p.Subgroup); contains(m, p.ID) {
					step++
					continue
				}
				if l := s.SubgroupLeader(p.Subgroup); l != raft.None {
					lp := s.peers[l]
					s.sendApp(func() {
						if lp == nil || lp.Down() || !lp.IsSubgroupLeader() {
							return
						}
						if err := lp.subHost.Node.ProposeConfChange(raft.ConfChange{Add: true, NodeID: p.ID}); err == nil {
							lp.subHost.Pump()
						}
					})
				}
			case 1: // directory join committed at the FedAvg leader?
				d := s.Directory()
				if d != nil {
					if _, ok := d.Lookup(p.ID); ok {
						step++
						continue
					}
					s.proposeDirectory(wire.DirectoryUpdate{
						Op: wire.DirJoin, ID: p.ID, Subgroup: p.Subgroup,
						ShareIndex: d.NextShareIndex(p.Subgroup), Addr: p.addr,
					})
				}
			case 2:
				s.finalizeAdmission(p)
				return
			}
			break
		}
		s.Sim.Schedule(s.opts.JoinPollInterval, attempt)
	}
	attempt()
}

func (s *System) finalizeAdmission(p *Peer) {
	s.bySub[p.Subgroup] = append(s.bySub[p.Subgroup], p.ID)
	s.pendingChurn--
	s.refreshWatches(p.Subgroup)
	s.record(EvPeerJoined, p.ID, p.Subgroup)
}

// Admitted reports whether the peer completed admission (initial peers
// are admitted by construction).
func (s *System) Admitted(id uint64) bool {
	p := s.peers[id]
	return p != nil && contains(s.bySub[p.Subgroup], id)
}

// WaitAdmitted runs the simulation until peer id's admission completes.
func (s *System) WaitAdmitted(id uint64, limit simnet.Duration) (simnet.Time, error) {
	deadline := s.Sim.Now() + simnet.Time(limit)
	if ok := s.Sim.RunWhileNot(func() bool { return s.Admitted(id) }, deadline); !ok {
		return 0, fmt.Errorf("cluster: peer %d was not admitted within %v ms", id, limit.Ms())
	}
	return s.Sim.Now(), nil
}

// DepartPeer starts a graceful departure: model handoff to a co-member,
// directory leave, subgroup (and FedAvg-layer, if the peer is a member)
// ConfChange{Add:false}, then host removal and detector scrubbing, in
// that order — the transfer always precedes the removal commit. Crashed
// peers may depart too (their model is unrecoverable, so the handoff is
// skipped). The subgroup must retain at least two members.
func (s *System) DepartPeer(id uint64) error {
	p := s.peers[id]
	if p == nil {
		return fmt.Errorf("cluster: unknown peer %d", id)
	}
	if p.departing {
		return nil
	}
	// The floor counts only members not already on their way out, so
	// concurrent departures cannot race past it together.
	staying := 0
	for _, mid := range s.bySub[p.Subgroup] {
		if q := s.peers[mid]; q != nil && !q.departing {
			staying++
		}
	}
	if staying < 3 {
		return fmt.Errorf("cluster: departure would shrink subgroup %d below 2 members", p.Subgroup)
	}
	if !s.Admitted(id) {
		return fmt.Errorf("cluster: peer %d is not admitted", id)
	}
	p.departing = true
	s.pendingChurn++
	s.opts.Telemetry.Counter("cluster/churn/departs").Inc()
	if !p.Down() && len(p.model) > 0 {
		if su := s.handoffSuccessor(p); su != nil {
			n, err := s.transferModel(p, su)
			if err == nil {
				s.opts.Telemetry.Counter("cluster/churn/handoff_bytes").Add(int64(n))
				s.record(EvHandoff, p.ID, p.Subgroup)
			}
		}
	}
	s.startDeparture(p)
	return nil
}

// handoffSuccessor picks the lowest-id live co-member as the recipient
// of a departing peer's model.
func (s *System) handoffSuccessor(p *Peer) *Peer {
	for _, id := range s.bySub[p.Subgroup] {
		if id == p.ID {
			continue
		}
		if su := s.peers[id]; su != nil && !su.Down() {
			return su
		}
	}
	return nil
}

// transferModel moves p's model to su through the checkpoint wire kind:
// the departing side encodes a frame, the successor decodes the exact
// bytes — the same codec a cross-process transfer would use. Returns
// the transferred byte count.
func (s *System) transferModel(p, su *Peer) (int, error) {
	frame := wire.AppendCheckpointFrame(nil, wire.Checkpoint{
		Names:   []string{"model"},
		Sizes:   []int{len(p.model)},
		Weights: append([]float64(nil), p.model...),
	})
	cp, err := wire.ReadCheckpointFrame(bytes.NewReader(frame))
	if err != nil {
		return 0, err
	}
	su.inherited = cp.Weights
	return len(frame), nil
}

// startDeparture drives the committed steps of a departure, retrying
// every JoinPollInterval: directory leave, subgroup removal, FedAvg
// removal (members only), then finalization.
func (s *System) startDeparture(p *Peer) {
	step := 0
	var attempt func()
	attempt = func() {
		for {
			switch step {
			case 0: // directory leave committed at the FedAvg leader?
				if d := s.Directory(); d != nil {
					if _, ok := d.Lookup(p.ID); !ok {
						step++
						continue
					}
					s.proposeDirectory(wire.DirectoryUpdate{Op: wire.DirLeave, ID: p.ID})
				}
			case 1: // subgroup membership removal committed?
				m := s.subgroupMembers(p.Subgroup)
				if m != nil && !contains(m, p.ID) {
					step++
					continue
				}
				if l := s.SubgroupLeader(p.Subgroup); l != raft.None {
					lp := s.peers[l]
					s.sendApp(func() {
						if lp == nil || lp.Down() || !lp.IsSubgroupLeader() {
							return
						}
						if err := lp.subHost.Node.ProposeConfChange(raft.ConfChange{Add: false, NodeID: p.ID}); err == nil {
							lp.subHost.Pump()
						}
					})
				}
			case 2: // FedAvg-layer removal (only for peers that joined it)
				if p.fedHost == nil {
					step++
					continue
				}
				l := s.FedAvgLeader()
				if l != raft.None {
					lp := s.peers[l]
					if !contains(lp.fedHost.Node.Members(), p.ID) {
						step++
						continue
					}
					if err := lp.fedHost.Node.ProposeConfChange(raft.ConfChange{Add: false, NodeID: p.ID}); err == nil {
						lp.fedHost.Pump()
					}
				}
			case 3:
				s.finalizeDeparture(p)
				return
			}
			break
		}
		s.Sim.Schedule(s.opts.JoinPollInterval, attempt)
	}
	attempt()
}

// finalizeDeparture removes the departed peer's hosts and scrubs every
// trace of it from co-members' detectors and RTT trackers — the leak
// (and stale-verdict) prevention half of the churn story.
func (s *System) finalizeDeparture(p *Peer) {
	s.subGroups[p.Subgroup].Remove(p.ID)
	if p.fedHost != nil {
		s.fedGroup.Remove(p.ID)
	}
	ids := s.bySub[p.Subgroup][:0]
	for _, id := range s.bySub[p.Subgroup] {
		if id != p.ID {
			ids = append(ids, id)
		}
	}
	s.bySub[p.Subgroup] = ids
	delete(s.peers, p.ID)
	delete(s.lastSeen, p.ID)
	for _, id := range s.PeerIDs() {
		cp := s.peers[id]
		if cp.det != nil {
			cp.det.Forget(p.ID)
		}
		if cp.rtt != nil {
			cp.rtt.Forget(p.ID)
		}
		delete(s.lastSeen[id], p.ID)
	}
	s.refreshWatches(p.Subgroup)
	s.pendingChurn--
	s.record(EvPeerDeparted, p.ID, p.Subgroup)
}

// WaitDeparted runs the simulation until peer id's departure completes.
func (s *System) WaitDeparted(id uint64, limit simnet.Duration) (simnet.Time, error) {
	deadline := s.Sim.Now() + simnet.Time(limit)
	if ok := s.Sim.RunWhileNot(func() bool { return s.peers[id] == nil }, deadline); !ok {
		return 0, fmt.Errorf("cluster: peer %d did not depart within %v ms", id, limit.Ms())
	}
	return s.Sim.Now(), nil
}

// ReplacePeer performs a graceful same-identity handoff: the running
// process captures its persisted raft state (subgroup and, if present,
// FedAvg-layer) and its model as a checkpoint wire frame, stops, and a
// successor process resumes the same logical node from the transferred
// state one link latency later — no retraining, no lost log entries, no
// membership change. Returns the transferred byte count (checkpoint
// frame plus serialized raft state).
func (s *System) ReplacePeer(id uint64) (int, error) {
	p := s.peers[id]
	if p == nil {
		return 0, fmt.Errorf("cluster: unknown peer %d", id)
	}
	if p.Down() {
		return 0, fmt.Errorf("cluster: peer %d is down", id)
	}
	subPS := p.subHost.Node.Persist()
	var fedPS *raft.PersistentState
	if p.fedHost != nil && !p.fedHost.Down() {
		ps := p.fedHost.Node.Persist()
		fedPS = &ps
	}
	frame := wire.AppendCheckpointFrame(nil, wire.Checkpoint{
		Names:   []string{"model"},
		Sizes:   []int{len(p.model)},
		Weights: append([]float64(nil), p.model...),
	})
	transferred := len(frame) + persistedSize(&subPS) + persistedSize(fedPS)
	p.subHost.Crash()
	if fedPS != nil {
		p.fedHost.Crash()
	}
	// The successor resumes after one link latency (the transfer), and
	// strictly after the stranded tick closure of the crashed process
	// has fired and died — restarting at the same instant would arm a
	// second tick loop.
	delay := s.subGroups[p.Subgroup].TickInterval + s.opts.Latency
	s.Sim.Schedule(delay, func() {
		cp, err := wire.ReadCheckpointFrame(bytes.NewReader(frame))
		if err != nil {
			return
		}
		p.model = cp.Weights
		cfg := s.raftFlags(raft.Config{
			ID:              p.ID,
			ElectionTickMin: s.opts.ElectionTickMin,
			ElectionTickMax: s.opts.ElectionTickMax,
			HeartbeatTick:   s.opts.HeartbeatTick,
			Rng:             rand.New(rand.NewSource(s.opts.Seed*6000 + int64(p.ID))),
			Telemetry:       s.opts.Telemetry,
		})
		if s.opts.SnapshotThreshold > 0 {
			cfg.SnapshotThreshold = s.opts.SnapshotThreshold
			cfg.SnapshotState = func() []byte {
				b, err := json.Marshal(fedConfigEntry{Members: p.fedConfig})
				if err != nil {
					return nil
				}
				return b
			}
		}
		if err := p.subHost.RestartFrom(cfg, subPS); err != nil {
			return
		}
		if fedPS != nil {
			_ = p.fedHost.RestartFrom(s.raftFlags(raft.Config{
				ID:              p.ID,
				ElectionTickMin: s.opts.ElectionTickMin,
				ElectionTickMax: s.opts.ElectionTickMax,
				HeartbeatTick:   s.opts.HeartbeatTick,
				Rng:             rand.New(rand.NewSource(s.opts.Seed*6000 + int64(p.ID))),
				Telemetry:       s.opts.Telemetry,
			}), *fedPS)
		}
		// The successor is a fresh process: detector and RTT history are
		// in-memory state it cannot have. Its raft state, model and
		// directory replica it does have — they were transferred.
		if p.rtt != nil {
			p.rtt.Reset()
		}
		if p.det != nil {
			p.det.Reset()
			p.det.SetWatch(nil)
			s.scheduleDetectorTick(p)
		}
		s.record(EvHandoff, p.ID, p.Subgroup)
	})
	s.opts.Telemetry.Counter("cluster/churn/handoffs").Inc()
	s.opts.Telemetry.Counter("cluster/churn/handoff_bytes").Add(int64(transferred))
	return transferred, nil
}

// persistedSize is the serialized size of a raft persistent state — the
// raft half of the handoff's transferred bytes. (The model half is an
// exact wire frame; raft state has no wire codec of its own, so its
// JSON form stands in, matching how fedcfg entries travel.)
func persistedSize(ps *raft.PersistentState) int {
	if ps == nil {
		return 0
	}
	b, err := json.Marshal(ps)
	if err != nil {
		return 0
	}
	return len(b)
}
