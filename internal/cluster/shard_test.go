package cluster

import (
	"testing"

	"repro/internal/raft"
	"repro/internal/simnet"
)

// shardOpts is a deployment for elastic-sharding tests: degree-4
// subgroups so the split threshold (2n−1 = 7) and the merge threshold
// (2·size < 4, i.e. size 1) are both reachable via AddPeer/DepartPeer.
func shardOpts(seed int64) Options {
	return Options{
		NumSubgroups:    2,
		SubgroupSize:    4,
		ElectionTickMin: 50,
		Latency:         5 * simnet.Millisecond,
		Detector:        true,
		Seed:            seed,
	}
}

const shardStepLimit = 30 * simnet.Second

// growSubgroup admits extra peers into subgroup g until it holds want
// members.
func growSubgroup(t *testing.T, s *System, g, want int) {
	t.Helper()
	for len(s.SubgroupPeers(g)) < want {
		id, err := s.AddPeer(g)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.WaitAdmitted(id, shardStepLimit); err != nil {
			t.Fatal(err)
		}
	}
	settle(s, 500*simnet.Millisecond)
}

// checkShardInvariants asserts the PR-9 churn invariants hold for the
// whole system after a re-sharding action: converged replicas, per-
// subgroup share-index soundness, directory/membership agreement.
func checkShardInvariants(t *testing.T, s *System, when string) {
	t.Helper()
	if !s.DirectoryConverged() {
		t.Fatalf("%s: directory replicas diverged", when)
	}
	if !s.DirectoryMatchesMembership() {
		t.Fatalf("%s: directory does not match membership", when)
	}
	d := s.Directory()
	for g := 0; g < s.NumSubgroups(); g++ {
		if !d.ShareIndexesSound(g) {
			t.Fatalf("%s: share indices unsound in subgroup %d", when, g)
		}
	}
}

func TestSplitSubgroup(t *testing.T) {
	s := mustBootstrap(t, shardOpts(11))
	growSubgroup(t, s, 0, 8) // past 2n−1 = 7

	plan := s.ShardPlan()
	if plan == nil || plan.Kind != ShardSplit || plan.Subgroup != 0 {
		t.Fatalf("plan = %+v, want split of subgroup 0", plan)
	}

	act, err := s.SplitSubgroup(0, shardStepLimit)
	if err != nil {
		t.Fatal(err)
	}
	if act.Target != 2 || len(act.Moved) != 4 {
		t.Fatalf("split action %+v, want 4 movers into subgroup 2", act)
	}
	settle(s, 2*simnet.Second)

	if got := len(s.SubgroupPeers(0)); got != 4 {
		t.Fatalf("source kept %d members, want 4", got)
	}
	if got := len(s.SubgroupPeers(2)); got != 4 {
		t.Fatalf("new subgroup has %d members, want 4", got)
	}
	if l := s.SubgroupLeader(2); l == raft.None {
		t.Fatal("new subgroup has no leader")
	}
	d := s.Directory()
	for i, id := range s.SubgroupPeers(2) {
		e, ok := d.Lookup(id)
		if !ok || e.Subgroup != 2 {
			t.Fatalf("mover %d: directory entry %+v ok=%v, want subgroup 2", id, e, ok)
		}
		if e.ShareIndex != i {
			t.Fatalf("mover %d: share index %d, want dense %d", id, e.ShareIndex, i)
		}
	}
	checkShardInvariants(t, s, "after split")

	if s.ShardPlan() != nil {
		t.Fatalf("shard map still unbalanced after split: %+v", s.ShardPlan())
	}

	// Both halves must still be live raft groups: each can commit a
	// membership change (exercised by admitting one more peer into each).
	for _, g := range []int{0, 2} {
		id, err := s.AddPeer(g)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.WaitAdmitted(id, shardStepLimit); err != nil {
			t.Fatalf("subgroup %d cannot admit after split: %v", g, err)
		}
	}
	settle(s, 500*simnet.Millisecond)
	checkShardInvariants(t, s, "after post-split admissions")
}

func TestMergeSubgroup(t *testing.T) {
	s := mustBootstrap(t, shardOpts(13))
	// Shrink subgroup 1 to a single member (below n/2 = 2): departures
	// keep a ≥2 floor, so go 4→3→2 via DepartPeer and retire one more by
	// crash + departure of the crashed peer... simpler: 4→3→2 by
	// departure, then the merge trigger needs size 1 — instead exercise
	// MergeSubgroup directly at size 2, which is also below the healthy
	// degree and a legal manual merge.
	for i := 0; i < 2; i++ {
		ids := s.SubgroupPeers(1)
		id := ids[len(ids)-1]
		if err := s.DepartPeer(id); err != nil {
			t.Fatal(err)
		}
		if _, err := s.WaitDeparted(id, shardStepLimit); err != nil {
			t.Fatal(err)
		}
	}
	settle(s, 500*simnet.Millisecond)
	movers := s.SubgroupPeers(1)
	if len(movers) != 2 {
		t.Fatalf("subgroup 1 has %d members, want 2", len(movers))
	}

	act, err := s.MergeSubgroup(1, shardStepLimit)
	if err != nil {
		t.Fatal(err)
	}
	if act.Target != 0 || len(act.Moved) != 2 {
		t.Fatalf("merge action %+v, want 2 movers into subgroup 0", act)
	}
	settle(s, 2*simnet.Second)

	if got := len(s.SubgroupPeers(1)); got != 0 {
		t.Fatalf("retired subgroup still lists %d members", got)
	}
	if got := len(s.SubgroupPeers(0)); got != 6 {
		t.Fatalf("target has %d members, want 6", got)
	}
	d := s.Directory()
	for _, id := range act.Moved {
		e, ok := d.Lookup(id)
		if !ok || e.Subgroup != 0 {
			t.Fatalf("mover %d: directory entry %+v ok=%v, want subgroup 0", id, e, ok)
		}
	}
	if m := s.subgroupMembers(0); len(m) != 6 {
		t.Fatalf("target raft membership %v, want 6 members", m)
	}
	checkShardInvariants(t, s, "after merge")

	// A retired slot must not read as degraded, and the merged group
	// must keep absorbing churn.
	if degraded := s.DegradedSubgroups(); len(degraded) != 0 {
		t.Fatalf("degraded subgroups after merge: %v", degraded)
	}
	id, err := s.AddPeer(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitAdmitted(id, shardStepLimit); err != nil {
		t.Fatalf("merged subgroup cannot admit: %v", err)
	}
	settle(s, 500*simnet.Millisecond)
	checkShardInvariants(t, s, "after post-merge admission")
}

func TestRebalanceSplitsUntilBounded(t *testing.T) {
	s := mustBootstrap(t, shardOpts(17))
	growSubgroup(t, s, 0, 9) // one split leaves 5 and 4 — both within 2n−1

	actions, err := s.Rebalance(shardStepLimit)
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) == 0 {
		t.Fatal("rebalance did nothing with an oversized subgroup")
	}
	for _, a := range actions {
		if a.Kind != ShardSplit {
			t.Fatalf("unexpected action %+v", a)
		}
	}
	if plan := s.ShardPlan(); plan != nil {
		t.Fatalf("still unbalanced after rebalance: %+v", plan)
	}
	settle(s, 2*simnet.Second)
	checkShardInvariants(t, s, "after rebalance")
}

func TestShardPlanQuietWhenBalanced(t *testing.T) {
	s := mustBootstrap(t, shardOpts(19))
	if plan := s.ShardPlan(); plan != nil {
		t.Fatalf("balanced system planned %+v", plan)
	}
	if actions, err := s.Rebalance(shardStepLimit); err != nil || len(actions) != 0 {
		t.Fatalf("rebalance on balanced system: actions=%v err=%v", actions, err)
	}
}
