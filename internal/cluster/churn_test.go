package cluster

import (
	"testing"

	"repro/internal/raft"
	"repro/internal/simnet"
)

// churnOpts is a compact deployment for churn protocol tests: two
// subgroups of three, detector on so departures exercise the scrubbing
// path.
func churnOpts(seed int64) Options {
	return Options{
		NumSubgroups:    2,
		SubgroupSize:    3,
		ElectionTickMin: 50,
		Latency:         5 * simnet.Millisecond,
		Detector:        true,
		Seed:            seed,
	}
}

// settle runs the simulation for d so committed entries propagate to
// every replica.
func settle(s *System, d simnet.Duration) {
	s.Sim.RunWhileNot(func() bool { return false }, s.Sim.Now()+simnet.Time(d))
}

func TestBootstrapSeedsDirectory(t *testing.T) {
	s := mustBootstrap(t, churnOpts(1))
	d := s.Directory()
	if d == nil {
		t.Fatal("no directory after bootstrap")
	}
	if d.Len() != 6 {
		t.Fatalf("directory has %d entries, want 6", d.Len())
	}
	if !s.DirectoryMatchesMembership() {
		t.Fatal("seed directory does not match membership")
	}
	// The seed assigns share index = position in subgroup, the exact
	// assignment the SAC layer used for fixed membership.
	for g := 0; g < 2; g++ {
		for i, id := range s.SubgroupPeers(g) {
			e, ok := d.Lookup(id)
			if !ok || e.Subgroup != g || e.ShareIndex != i {
				t.Fatalf("peer %d: entry %+v ok=%v, want subgroup %d index %d", id, e, ok, g, i)
			}
		}
	}
	if !s.DirectoryConverged() {
		t.Fatal("replicas diverged with no churn at all")
	}
}

func TestAddPeerAdmission(t *testing.T) {
	s := mustBootstrap(t, churnOpts(2))
	id, err := s.AddPeer(0)
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 {
		t.Fatalf("new peer id = %d, want 7", id)
	}
	if s.Admitted(id) {
		t.Fatal("admitted before the protocol ran")
	}
	if _, err := s.WaitAdmitted(id, 10*simnet.Second); err != nil {
		t.Fatal(err)
	}
	if !contains(s.SubgroupPeers(0), id) {
		t.Fatal("admitted peer missing from subgroup membership")
	}
	if m := s.subgroupMembers(0); !contains(m, id) {
		t.Fatalf("subgroup raft members %v missing %d", m, id)
	}
	e, ok := s.Directory().Lookup(id)
	if !ok {
		t.Fatal("admitted peer missing from directory")
	}
	if e.Subgroup != 0 || e.ShareIndex != 3 {
		t.Fatalf("entry %+v, want subgroup 0, next free index 3", e)
	}
	settle(s, 2*simnet.Second)
	if !s.DirectoryConverged() {
		t.Fatal("directory replicas diverged after join")
	}
	if !s.DirectoryMatchesMembership() {
		t.Fatal("directory does not match membership after join")
	}
	if !s.ChurnIdle() {
		t.Fatal("churn not idle after admission completed")
	}
	// The new member participates in its subgroup raft: crash the
	// current leader and verify the subgroup still elects (the joiner
	// votes and can win).
	l := s.SubgroupLeader(0)
	if err := s.CrashPeer(l); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.WaitSubgroupLeader(0, l, 20*simnet.Second); err != nil {
		t.Fatal(err)
	}
}

func TestDepartPeerGraceful(t *testing.T) {
	s := mustBootstrap(t, churnOpts(3))
	// Depart a follower of subgroup 0 (not the leader: that path is
	// covered separately). Give it a model so the handoff runs.
	var target uint64
	for _, id := range s.SubgroupPeers(0) {
		if id != s.SubgroupLeader(0) {
			target = id
			break
		}
	}
	s.Peer(target).SetModel([]float64{1, 2, 3})
	if err := s.DepartPeer(target); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitDeparted(target, 10*simnet.Second); err != nil {
		t.Fatal(err)
	}
	if s.Peer(target) != nil || contains(s.SubgroupPeers(0), target) {
		t.Fatal("departed peer still in membership")
	}
	if _, ok := s.Directory().Lookup(target); ok {
		t.Fatal("departed peer still in directory")
	}
	if m := s.subgroupMembers(0); contains(m, target) {
		t.Fatalf("subgroup raft members %v still hold %d", m, target)
	}
	// The model was handed to the lowest-id live co-member.
	var inherited []float64
	for _, id := range s.SubgroupPeers(0) {
		if w := s.Peer(id).Inherited(); w != nil {
			inherited = w
		}
	}
	if len(inherited) != 3 || inherited[0] != 1 || inherited[2] != 3 {
		t.Fatalf("inherited model %v, want [1 2 3]", inherited)
	}
	// Every remaining detector forgot the departed peer.
	for _, id := range s.PeerIDs() {
		if det := s.Peer(id).Detector(); det != nil {
			if _, known := det.State(target); known {
				t.Fatalf("peer %d's detector still tracks departed %d", id, target)
			}
		}
	}
	settle(s, 2*simnet.Second)
	if !s.DirectoryConverged() || !s.DirectoryMatchesMembership() {
		t.Fatal("directory wrong after departure")
	}
}

func TestDepartSubgroupLeaderRecovers(t *testing.T) {
	s := mustBootstrap(t, churnOpts(4))
	old := s.SubgroupLeader(1)
	if err := s.DepartPeer(old); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitDeparted(old, 30*simnet.Second); err != nil {
		t.Fatal(err)
	}
	// The subgroup re-elects among the two remaining members and the new
	// leader joins the FedAvg layer through the existing join protocol.
	nl, _, err := s.WaitSubgroupLeader(1, old, 20*simnet.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitJoined(nl, 30*simnet.Second); err != nil {
		t.Fatal(err)
	}
	// The departed leader was removed from the FedAvg-layer raft group,
	// not just from its subgroup.
	fl := s.FedAvgLeader()
	if fl == raft.None {
		t.Fatal("no FedAvg leader after leader departure")
	}
	if contains(s.FedAvgMembers(), old) {
		t.Fatalf("FedAvg members %v still hold departed %d", s.FedAvgMembers(), old)
	}
	settle(s, 2*simnet.Second)
	if !s.DirectoryConverged() || !s.DirectoryMatchesMembership() {
		t.Fatal("directory wrong after leader departure")
	}
}

func TestDepartRespectsSubgroupFloor(t *testing.T) {
	s := mustBootstrap(t, Options{
		NumSubgroups:    1,
		SubgroupSize:    2,
		ElectionTickMin: 50,
		Latency:         5 * simnet.Millisecond,
		Seed:            5,
	})
	if err := s.DepartPeer(1); err == nil {
		t.Fatal("want error departing from a 2-member subgroup")
	}
}

func TestRejoinAfterDepartureReusesFreedSlot(t *testing.T) {
	s := mustBootstrap(t, churnOpts(6))
	var target uint64
	for _, id := range s.SubgroupPeers(0) {
		if id != s.SubgroupLeader(0) {
			target = id
			break
		}
	}
	freed := -1
	if e, ok := s.Directory().Lookup(target); ok {
		freed = e.ShareIndex
	}
	if err := s.DepartPeer(target); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitDeparted(target, 10*simnet.Second); err != nil {
		t.Fatal(err)
	}
	id, err := s.AddPeer(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitAdmitted(id, 10*simnet.Second); err != nil {
		t.Fatal(err)
	}
	e, ok := s.Directory().Lookup(id)
	if !ok || e.ShareIndex != freed {
		t.Fatalf("rejoined peer got index %d (ok=%v), want freed slot %d", e.ShareIndex, ok, freed)
	}
	if !s.Directory().ShareIndexesSound(0) {
		t.Fatal("share indexes unsound after leave/join cycle")
	}
}
