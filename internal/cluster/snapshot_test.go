package cluster

import (
	"testing"

	"repro/internal/simnet"
)

// The periodic FedAvg-configuration commits would grow subgroup logs
// without bound; compaction keeps them bounded while preserving the
// configuration for future leaders.
func TestSubgroupLogsStayBounded(t *testing.T) {
	opts := paperOpts(50, 31)
	opts.SnapshotThreshold = 16
	opts.ConfigCommitInterval = 20 * simnet.Millisecond // commit fast
	s := mustBootstrap(t, opts)
	// ~300 config commits per subgroup leader.
	s.Sim.RunFor(6 * simnet.Second)

	for id := 1; id <= s.NumPeers(); id++ {
		p := s.Peer(uint64(id))
		logLen := len(p.subHost.Node.Log())
		if logLen > 3*opts.SnapshotThreshold {
			t.Fatalf("peer %d subgroup log has %d entries despite threshold %d",
				id, logLen, opts.SnapshotThreshold)
		}
	}
	// Compaction must not have broken the configuration tracking.
	want := len(s.FedAvgMembers())
	for id := 1; id <= s.NumPeers(); id++ {
		p := s.Peer(uint64(id))
		if len(p.FedConfig()) != want {
			t.Fatalf("peer %d lost the FedAvg config after compaction", id)
		}
	}
}

// Leader crash recovery still works when the subgroup log has been
// compacted: the new leader's configuration knowledge survives in the
// snapshot.
func TestRecoveryAfterCompaction(t *testing.T) {
	opts := paperOpts(50, 32)
	opts.SnapshotThreshold = 8
	opts.ConfigCommitInterval = 20 * simnet.Millisecond
	s := mustBootstrap(t, opts)
	s.Sim.RunFor(3 * simnet.Second) // plenty of commits + compactions

	fed := s.FedAvgLeader()
	var victim uint64
	var victimSub int
	for g := 0; g < 5; g++ {
		if l := s.SubgroupLeader(g); l != fed {
			victim, victimSub = l, g
			break
		}
	}
	if err := s.CrashPeer(victim); err != nil {
		t.Fatal(err)
	}
	newLeader, _, err := s.WaitSubgroupLeader(victimSub, victim, 20*simnet.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitJoined(newLeader, 30*simnet.Second); err != nil {
		t.Fatal(err)
	}
}
