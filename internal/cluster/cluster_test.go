package cluster

import (
	"testing"

	"repro/internal/raft"
	"repro/internal/simnet"
)

// paperOpts mirrors the paper's Sec. VI-B setup: five subgroups of five
// peers (N=25, n=5), 15 ms link delay, timeouts U(T, 2T).
func paperOpts(tMs int, seed int64) Options {
	return Options{
		NumSubgroups:    5,
		SubgroupSize:    5,
		ElectionTickMin: tMs,
		ElectionTickMax: 2 * tMs,
		Latency:         15 * simnet.Millisecond,
		Seed:            seed,
	}
}

func mustBootstrap(t *testing.T, opts Options) *System {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Bootstrap(20 * simnet.Second); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("want error for empty options")
	}
	if _, err := New(Options{Sizes: []int{3, 0}}); err == nil {
		t.Fatal("want error for zero-size subgroup")
	}
	if _, err := New(Options{NumSubgroups: 2, SubgroupSize: 3, Latency: -1}); err == nil {
		t.Fatal("want error for negative latency")
	}
}

func TestBootstrapFormsBothLayers(t *testing.T) {
	s := mustBootstrap(t, paperOpts(50, 1))
	if s.NumPeers() != 25 {
		t.Fatalf("peers = %d", s.NumPeers())
	}
	for g := 0; g < 5; g++ {
		l := s.SubgroupLeader(g)
		if l == raft.None {
			t.Fatalf("subgroup %d has no leader", g)
		}
		if !s.Peer(l).IsSubgroupLeader() {
			t.Fatalf("peer %d not reporting leadership", l)
		}
	}
	fl := s.FedAvgLeader()
	if fl == raft.None {
		t.Fatal("no FedAvg leader")
	}
	// The FedAvg leader must be one of the subgroup leaders.
	found := false
	for g := 0; g < 5; g++ {
		if s.SubgroupLeader(g) == fl {
			found = true
		}
	}
	if !found {
		t.Fatalf("FedAvg leader %d is not a subgroup leader", fl)
	}
	if got := len(s.FedAvgMembers()); got != 5 {
		t.Fatalf("FedAvg members = %d, want 5", got)
	}
}

func TestConfigCommittedToSubgroups(t *testing.T) {
	s := mustBootstrap(t, paperOpts(50, 2))
	// Let a few config-commit intervals pass.
	s.Sim.RunFor(500 * simnet.Millisecond)
	for id, want := 1, len(s.FedAvgMembers()); id <= s.NumPeers(); id++ {
		p := s.Peer(uint64(id))
		if p.Down() {
			continue
		}
		if len(p.FedConfig()) != want {
			t.Fatalf("peer %d knows %d FedAvg members, want %d", id, len(p.FedConfig()), want)
		}
	}
}

func TestSubgroupLeaderCrashRecovery(t *testing.T) {
	// Fig. 10/11 scenario: crash a subgroup leader that is NOT the
	// FedAvg leader; its subgroup elects a new leader which joins the
	// FedAvg layer.
	s := mustBootstrap(t, paperOpts(50, 3))
	s.Sim.RunFor(500 * simnet.Millisecond) // let config commits propagate
	fed := s.FedAvgLeader()
	var victim uint64
	var victimSub int
	for g := 0; g < 5; g++ {
		if l := s.SubgroupLeader(g); l != fed {
			victim, victimSub = l, g
			break
		}
	}
	crashAt := s.Sim.Now()
	if err := s.CrashPeer(victim); err != nil {
		t.Fatal(err)
	}
	newLeader, electAt, err := s.WaitSubgroupLeader(victimSub, victim, 10*simnet.Second)
	if err != nil {
		t.Fatal(err)
	}
	elect := simnet.Duration(electAt - crashAt)
	// With U(50,100)ms timeouts the paper measures ~214 ms average;
	// individual trials land well within [50ms, 1.5s].
	if elect < 50*simnet.Millisecond || elect > 3*simnet.Second {
		t.Fatalf("election took %v ms", elect.Ms())
	}
	joinAt, err := s.WaitJoined(newLeader, 10*simnet.Second)
	if err != nil {
		t.Fatal(err)
	}
	if joinAt < electAt {
		t.Fatal("join cannot precede election")
	}
	// New leader must now be a FedAvg member from the leader's view.
	s.Sim.RunFor(200 * simnet.Millisecond)
	members := s.FedAvgMembers()
	found := false
	for _, m := range members {
		if m == newLeader {
			found = true
		}
	}
	if !found {
		t.Fatalf("new leader %d not in FedAvg members %v", newLeader, members)
	}
	// FedAvg leadership was never lost.
	if s.FedAvgLeader() != fed {
		t.Fatalf("FedAvg leader changed from %d to %d", fed, s.FedAvgLeader())
	}
}

func TestFedAvgLeaderCrashRecovery(t *testing.T) {
	// Fig. 12 scenario: the FedAvg leader (also a subgroup leader)
	// crashes; both layers recover and the new subgroup leader joins.
	s := mustBootstrap(t, paperOpts(50, 4))
	s.Sim.RunFor(500 * simnet.Millisecond)
	victim := s.FedAvgLeader()
	victimSub := s.Peer(victim).Subgroup
	crashAt := s.Sim.Now()
	if err := s.CrashPeer(victim); err != nil {
		t.Fatal(err)
	}
	// New FedAvg leader among the remaining subgroup leaders.
	newFed, fedAt, err := s.WaitFedAvgLeader(victim, 10*simnet.Second)
	if err != nil {
		t.Fatal(err)
	}
	if newFed == victim {
		t.Fatal("dead peer elected")
	}
	if fedAt < crashAt {
		t.Fatal("time went backwards")
	}
	// New subgroup leader in the victim's subgroup joins the layer.
	newSub, _, err := s.WaitSubgroupLeader(victimSub, victim, 10*simnet.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitJoined(newSub, 20*simnet.Second); err != nil {
		t.Fatal(err)
	}
}

func TestFollowerCrashIsHarmless(t *testing.T) {
	// Sec. V-A2: the subgroup tolerates follower crashes as long as a
	// majority survives.
	s := mustBootstrap(t, paperOpts(50, 5))
	lead := s.SubgroupLeader(0)
	killed := 0
	for _, id := range s.SubgroupPeers(0) {
		if id != lead && killed < 2 { // 2 of 5 may die
			if err := s.CrashPeer(id); err != nil {
				t.Fatal(err)
			}
			killed++
		}
	}
	s.Sim.RunFor(2 * simnet.Second)
	if s.SubgroupLeader(0) != lead {
		t.Fatalf("leadership changed after follower crashes")
	}
	if s.FedAvgLeader() == raft.None {
		t.Fatal("FedAvg layer lost its leader")
	}
}

func TestEventsTimeline(t *testing.T) {
	s := mustBootstrap(t, paperOpts(50, 6))
	evs := s.Events()
	subLeaders, fedLeaders := 0, 0
	for _, e := range evs {
		switch e.Kind {
		case EvSubgroupLeader:
			subLeaders++
		case EvFedAvgLeader:
			fedLeaders++
		}
	}
	if subLeaders < 5 {
		t.Fatalf("subgroup leader events = %d, want ≥ 5", subLeaders)
	}
	if fedLeaders < 1 {
		t.Fatalf("fedavg leader events = %d, want ≥ 1", fedLeaders)
	}
	if _, ok := s.FirstEventAfter(0, EvSubgroupLeader, -1); !ok {
		t.Fatal("FirstEventAfter found nothing")
	}
	if _, ok := s.FirstEventAfter(s.Sim.Now()+1, EvSubgroupLeader, -1); ok {
		t.Fatal("FirstEventAfter in the future must find nothing")
	}
}

func TestUnevenSizes(t *testing.T) {
	// The paper's N=10, n=3 case: subgroups of 3, 3, 4.
	s := mustBootstrap(t, Options{
		Sizes:           []int{3, 3, 4},
		ElectionTickMin: 50,
		ElectionTickMax: 100,
		Latency:         15 * simnet.Millisecond,
		Seed:            7,
	})
	if s.NumPeers() != 10 {
		t.Fatalf("peers = %d", s.NumPeers())
	}
	if got := len(s.SubgroupPeers(2)); got != 4 {
		t.Fatalf("subgroup 2 size = %d", got)
	}
	if s.FedAvgLeader() == raft.None {
		t.Fatal("no FedAvg leader")
	}
}

func TestCrashUnknownPeer(t *testing.T) {
	s := mustBootstrap(t, Options{
		NumSubgroups: 1, SubgroupSize: 3,
		ElectionTickMin: 50, ElectionTickMax: 100,
		Latency: simnet.Millisecond, Seed: 8,
	})
	if err := s.CrashPeer(999); err == nil {
		t.Fatal("want error for unknown peer")
	}
}

func TestRepeatedLeaderCrashes(t *testing.T) {
	// Crash the subgroup-0 leader twice in a row; each time a new
	// leader must emerge and join the FedAvg layer (membership grows,
	// per Sec. VII-D). A third crash leaves 2 of 5 peers — below quorum.
	s := mustBootstrap(t, paperOpts(50, 9))
	s.Sim.RunFor(500 * simnet.Millisecond)
	for round := 0; round < 2; round++ {
		victim := s.SubgroupLeader(0)
		if victim == raft.None {
			t.Fatalf("round %d: no leader", round)
		}
		if victim == s.FedAvgLeader() {
			// Keep this test to the Fig. 10/11 case; skip rounds where
			// the victim would be the FedAvg leader.
			s.Sim.RunFor(200 * simnet.Millisecond)
		}
		if err := s.CrashPeer(victim); err != nil {
			t.Fatal(err)
		}
		nl, _, err := s.WaitSubgroupLeader(0, victim, 20*simnet.Second)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if _, err := s.WaitJoined(nl, 30*simnet.Second); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	// The third crash leaves 2 of 5 peers in subgroup 0: quorum (3) is
	// gone; no further leader can be elected there.
	victim := s.SubgroupLeader(0)
	if err := s.CrashPeer(victim); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.WaitSubgroupLeader(0, victim, 3*simnet.Second); err == nil {
		t.Fatal("subgroup without quorum must not elect a leader")
	}
}
