package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/raft"
	"repro/internal/simnet"
)

// The paper observes (Sec. VI-B2) that with 12–24 ms timeouts "even when
// a peer became a leader, its authority was not stable and elections
// were held repeatedly": the 15 ms link delay makes a vote round trip
// (~30 ms) longer than the election timeout, so candidacies keep timing
// out and terms churn.
func TestShortTimeoutsCauseInstability(t *testing.T) {
	run := func(tMs int) (maxTerm uint64, leaderSeen bool) {
		sim := simnet.New()
		g := simnet.NewGroup(sim, "unstable", 15*simnet.Millisecond, rand.New(rand.NewSource(1)))
		ids := []uint64{1, 2, 3, 4, 5}
		for _, id := range ids {
			n, err := raft.NewNode(raft.Config{
				ID: id, Peers: ids,
				ElectionTickMin: tMs,
				ElectionTickMax: 2 * tMs,
				HeartbeatTick:   maxInt(1, tMs/3),
				Rng:             rand.New(rand.NewSource(int64(tMs)*100 + int64(id))),
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := g.Add(n); err != nil {
				t.Fatal(err)
			}
		}
		sim.RunFor(3 * simnet.Second)
		for _, h := range g.Hosts() {
			if h.Node.Term() > maxTerm {
				maxTerm = h.Node.Term()
			}
		}
		return maxTerm, g.Leader() != raft.None
	}

	// 12–24 ms: vote RTT (≈30 ms) exceeds every timeout draw, so
	// elections repeat and terms churn.
	shortTerm, _ := run(12)
	// 50–100 ms: the paper's smallest healthy setting.
	healthyTerm, healthyLeader := run(50)
	if !healthyLeader {
		t.Fatal("healthy timeouts must elect a stable leader")
	}
	if healthyTerm > 10 {
		t.Fatalf("healthy setting churned %d terms in 3 s", healthyTerm)
	}
	if shortTerm < 5*healthyTerm {
		t.Fatalf("12–24 ms timeouts should churn terms: %d vs healthy %d", shortTerm, healthyTerm)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
