package cluster

import (
	"repro/internal/health"
	"repro/internal/raft"
	"repro/internal/simnet"
)

// This file wires the failure detector (internal/health) into the
// two-layer system. With Options.Detector set, every peer runs a
// last-activity detector over its subgroup co-members on the virtual
// clock, fed by simnet message deliveries. Watch sets follow Raft's
// traffic asymmetry — a follower can only judge its leader (the one
// node that talks on a quiet group), while a leader judges everyone via
// AppendResponses. Verdicts drive recovery proactively instead of
// waiting for election timeouts:
//
//   - A follower whose detector declares the subgroup leader Down
//     campaigns after a rank-staggered delay (rank among live
//     co-members × 2·latency, so vote splits are avoided and the
//     lowest-id detector moves first), unless another node's campaign
//     already bumped the term.
//   - A peer re-elected subgroup leader whose FedAvg-layer node is
//     still down revives it automatically when the layer has no leader
//     (the ReviveFedNode disaster path, previously manual).

// HealthTransition is one detector verdict with its cluster context.
type HealthTransition struct {
	health.Transition
	// Owner is the peer whose detector issued the verdict.
	Owner uint64
	// Subgroup is the owner's subgroup.
	Subgroup int
	// ShadowGapUs is the silence gap measured against the cluster's own
	// delivery ledger at verdict time — an accounting of actual simnet
	// deliveries independent of the detector's bookkeeping. Invariant
	// checkers compare it with ThresholdUs: a Down verdict with
	// ShadowGapUs < ThresholdUs would mean the detector declared a peer
	// dead while its messages were arriving within threshold.
	ShadowGapUs int64
}

// HealthTransitions returns every detector verdict so far, in emission
// order.
func (s *System) HealthTransitions() []HealthTransition {
	return append([]HealthTransition(nil), s.healthTrans...)
}

// Detector exposes the peer's failure detector (nil when Options.
// Detector is off).
func (p *Peer) Detector() *health.Detector { return p.det }

// setupDetector builds peer p's detector over its subgroup co-members.
// The watch set starts empty: before a first leader exists nobody emits
// regular traffic, so there is no one to legitimately judge.
func (s *System) setupDetector(p *Peer, members []uint64) error {
	var others []uint64
	for _, id := range members {
		if id != p.ID {
			others = append(others, id)
		}
	}
	det, err := health.New(others, health.Options{
		TickIntervalUs: int64(s.opts.HeartbeatTick) * int64(simnet.Millisecond),
		SuspectTicks:   s.opts.DetectorSuspectTicks,
		DownTicks:      s.opts.DetectorDownTicks,
		Clock:          func() int64 { return int64(s.Sim.Now()) },
		OnTransition:   func(tr health.Transition) { s.onHealthTransition(p, tr) },
		Telemetry:      s.opts.Telemetry,
		Owner:          p.ID,
	})
	if err != nil {
		return err
	}
	det.SetWatch(nil)
	p.det = det
	p.subHost.OnMessage = func(m raft.Message) {
		s.noteSeen(p.ID, m.From)
		det.Observe(m.From)
	}
	s.scheduleDetectorTick(p)
	return nil
}

// scheduleDetectorTick drives p's detector at the heartbeat cadence on
// the virtual clock. The loop stops while the peer is down and is
// re-armed by RestartPeer.
func (s *System) scheduleDetectorTick(p *Peer) {
	if p.detLoop {
		return
	}
	p.detLoop = true
	interval := simnet.Duration(s.opts.HeartbeatTick) * simnet.Millisecond
	var loop func()
	loop = func() {
		if p.Down() {
			p.detLoop = false
			return
		}
		p.det.Tick()
		s.Sim.Schedule(interval, loop)
	}
	s.Sim.Schedule(interval, loop)
}

// updateWatch aligns p's watch set with its raft role: leaders watch
// all co-members, followers watch only their leader, candidates (and
// leaderless followers) watch nobody.
func (s *System) updateWatch(p *Peer, st raft.State, leader uint64) {
	switch {
	case st == raft.Leader:
		var others []uint64
		for _, id := range s.bySub[p.Subgroup] {
			if id != p.ID {
				others = append(others, id)
			}
		}
		p.det.SetWatch(others)
	case leader != raft.None && leader != p.ID:
		p.det.SetWatch([]uint64{leader})
	default:
		p.det.SetWatch(nil)
	}
}

func (s *System) noteSeen(owner, peer uint64) {
	m := s.lastSeen[owner]
	if m == nil {
		m = make(map[uint64]simnet.Time)
		s.lastSeen[owner] = m
	}
	m[peer] = s.Sim.Now()
}

// onHealthTransition records the verdict and, for a Down verdict about
// the owner's current subgroup leader, schedules a proactive campaign.
func (s *System) onHealthTransition(p *Peer, tr health.Transition) {
	shadow := int64(s.Sim.Now()) - int64(s.lastSeen[p.ID][tr.Peer])
	s.healthTrans = append(s.healthTrans, HealthTransition{
		Transition: tr, Owner: p.ID, Subgroup: p.Subgroup, ShadowGapUs: shadow,
	})
	if tr.To != health.Down || p.Down() || p.subHost.Node.Leader() != tr.Peer {
		return
	}
	// Stagger by rank so concurrent verdicts don't split the vote, and
	// capture the term so a campaign that already happened (it would
	// have bumped the term via its vote requests) cancels ours.
	term := p.subHost.Node.Term()
	delay := simnet.Duration(s.campaignRank(p, tr.Peer)) * 2 * s.opts.Latency
	s.Sim.Schedule(delay, func() {
		if p.Down() {
			return
		}
		n := p.subHost.Node
		if n.Term() != term || n.State() == raft.Leader {
			return
		}
		if st, ok := p.det.State(tr.Peer); !ok || st != health.Down {
			return // the leader came back within the stagger window
		}
		s.record(EvProactiveCampaign, p.ID, p.Subgroup)
		n.Campaign()
		p.subHost.Pump()
	})
}

// campaignRank is p's index among its live subgroup co-members
// (ascending id, the dead leader excluded) — the stagger slot for a
// proactive campaign.
func (s *System) campaignRank(p *Peer, dead uint64) int {
	rank := 0
	for _, id := range s.bySub[p.Subgroup] {
		if id == p.ID {
			break
		}
		if id != dead && !s.peers[id].Down() {
			rank++
		}
	}
	return rank
}

// DegradedSubgroups returns the subgroups that currently lack a live
// Raft quorum, ascending — the set a round driver passes as
// core.RoundSpec.Degraded so the FedAvg leader proceeds under
// fraction p instead of stalling on them.
func (s *System) DegradedSubgroups() []int {
	var out []int
	for g, ids := range s.bySub {
		if len(ids) == 0 {
			// A retired slot (its members merged into a sibling) has no
			// quorum to lack.
			continue
		}
		live := 0
		for _, id := range ids {
			if !s.peers[id].Down() {
				live++
			}
		}
		if live < len(ids)/2+1 {
			out = append(out, g)
		}
	}
	return out
}

// DetectorsConverged reports whether no live peer currently holds a
// Suspect/Down verdict about a live peer. Verdicts about genuinely
// crashed peers are true positives and do not block convergence. Chaos
// campaigns use this as the detector re-convergence predicate after
// faults stop.
func (s *System) DetectorsConverged() bool {
	for _, id := range s.PeerIDs() {
		p := s.peers[id]
		if p.det == nil || p.Down() {
			continue
		}
		for _, st := range p.det.Snapshot() {
			if !st.Watched || st.State == health.Up.String() {
				continue
			}
			if target := s.peers[st.Peer]; target != nil && !target.Down() {
				return false
			}
		}
	}
	return true
}
