package cluster

import (
	"testing"

	"repro/internal/raft"
	"repro/internal/simnet"
)

// trainStep is a deterministic stand-in for one local training round:
// the model moves by a round-dependent increment, so a model that
// missed (or repeated) any round is numerically distinguishable from
// one that saw every round exactly once.
func trainStep(w []float64, round int) []float64 {
	out := make([]float64, len(w))
	for i := range w {
		out[i] = w[i] + float64(round+1)*0.25 + float64(i)*0.01
	}
	return out
}

// runRounds advances every live admitted peer by one training round per
// iteration, spacing rounds by interval of virtual time.
func runRounds(s *System, from, to int, interval simnet.Duration) {
	for r := from; r < to; r++ {
		for _, id := range s.PeerIDs() {
			p := s.Peer(id)
			if p.Down() {
				continue
			}
			p.SetModel(trainStep(p.Model(), r))
		}
		settle(s, interval)
	}
}

// TestReplacePeerZeroLostRounds is the graceful-handoff acceptance
// test: a peer replaced mid-training hands its persisted raft state and
// model to a successor, and the successor's model after the full
// schedule is byte-equal to an equal-seed run with no replacement —
// zero lost (and zero repeated) training rounds, no retraining.
func TestReplacePeerZeroLostRounds(t *testing.T) {
	const rounds = 10
	run := func(replaceAt int, target uint64) (*System, []float64) {
		s := mustBootstrap(t, churnOpts(7))
		for _, id := range s.PeerIDs() {
			s.Peer(id).SetModel([]float64{0, 0, 0, 0})
		}
		runRounds(s, 0, replaceAt, 50*simnet.Millisecond)
		if replaceAt < rounds {
			n, err := s.ReplacePeer(target)
			if err != nil {
				t.Fatal(err)
			}
			if n <= 0 {
				t.Fatalf("handoff transferred %d bytes", n)
			}
			// Let the successor resume (one tick + one latency).
			settle(s, 50*simnet.Millisecond)
			if s.Peer(target).Down() {
				t.Fatal("successor did not resume")
			}
			runRounds(s, replaceAt, rounds, 50*simnet.Millisecond)
		}
		return s, s.Peer(target).Model()
	}

	var target uint64 = 2 // a follower of subgroup 0 under churnOpts seeds
	base := mustBootstrap(t, churnOpts(7))
	if base.SubgroupLeader(0) == target {
		target = 3
	}

	sBase, want := func() (*System, []float64) {
		s := mustBootstrap(t, churnOpts(7))
		for _, id := range s.PeerIDs() {
			s.Peer(id).SetModel([]float64{0, 0, 0, 0})
		}
		runRounds(s, 0, rounds, 50*simnet.Millisecond)
		return s, s.Peer(target).Model()
	}()
	_ = sBase
	sRep, got := run(5, target)

	if len(got) != len(want) {
		t.Fatalf("model length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("model[%d] = %v after handoff, want %v (baseline): a training round was lost or repeated", i, got[i], want[i])
		}
	}
	// The successor's raft state survived too: it is still a voting
	// member with its log intact, so crashing the current leader must
	// still yield a new leader (possibly the successor itself).
	st := sRep.Peer(target).SubStatus()
	if st.CommitIndex == 0 && st.Term == 0 {
		t.Fatal("successor resumed with empty raft state")
	}
	l := sRep.SubgroupLeader(0)
	if err := sRep.CrashPeer(l); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sRep.WaitSubgroupLeader(0, l, 20*simnet.Second); err != nil {
		t.Fatal(err)
	}
}

// TestReplaceFedMemberKeepsLayerState replaces a subgroup leader — a
// FedAvg-layer member — and verifies the successor resumes BOTH raft
// identities from the transferred state: it remains a FedAvg member
// (joined, directory replica intact) without re-running the join
// protocol.
func TestReplaceFedMemberKeepsLayerState(t *testing.T) {
	s := mustBootstrap(t, churnOpts(8))
	target := s.SubgroupLeader(0)
	s.Peer(target).SetModel([]float64{4, 5, 6})
	preSum := s.Peer(target).DirectoryReplica().Checksum()
	if _, err := s.ReplacePeer(target); err != nil {
		t.Fatal(err)
	}
	settle(s, 100*simnet.Millisecond)
	p := s.Peer(target)
	if p.Down() {
		t.Fatal("successor did not resume")
	}
	if !p.Joined() {
		t.Fatal("successor lost FedAvg membership")
	}
	if st, ok := p.FedStatus(); !ok || st.Term == 0 && st.CommitIndex == 0 {
		t.Fatalf("fed raft state not transferred (ok=%v, st=%+v)", ok, st)
	}
	if p.DirectoryReplica().Checksum() != preSum {
		t.Fatal("directory replica changed across handoff")
	}
	if got := p.Model(); len(got) != 3 || got[0] != 4 {
		t.Fatalf("model %v not transferred", got)
	}
	// The layer keeps functioning: a directory update proposed after the
	// handoff still commits and reaches the successor's replica.
	id, err := s.AddPeer(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitAdmitted(id, 10*simnet.Second); err != nil {
		t.Fatal(err)
	}
	settle(s, 2*simnet.Second)
	if _, ok := p.DirectoryReplica().Lookup(id); !ok {
		t.Fatal("successor's replica missed a post-handoff directory commit")
	}
	if !s.DirectoryConverged() {
		t.Fatal("replicas diverged after handoff + join")
	}
	if s.FedAvgLeader() == raft.None {
		t.Fatal("FedAvg layer lost its leader")
	}
}
