package cluster

import (
	"bytes"
	"testing"

	"repro/internal/simnet"
	"repro/internal/telemetry"
)

// runTelemetryScenario bootstraps the paper topology with a registry
// attached, crashes a subgroup leader, waits for re-election and rejoin,
// and returns the registry's JSON snapshot — the scenario the
// determinism contract is pinned on.
func runTelemetryScenario(t *testing.T, seed int64) []byte {
	t.Helper()
	reg := telemetry.New()
	opts := paperOpts(150, seed)
	opts.Telemetry = reg
	s := mustBootstrap(t, opts)

	victim := s.SubgroupLeader(0)
	if err := s.CrashPeer(victim); err != nil {
		t.Fatal(err)
	}
	newLeader, _, err := s.WaitSubgroupLeader(0, victim, 20*simnet.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitJoined(newLeader, 20*simnet.Second); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTelemetryDeterministicSnapshots is the ISSUE's determinism
// regression: two identical-seed simulated runs must produce
// byte-identical telemetry JSON (virtual-clock timestamps included),
// and a different seed must produce a different snapshot (guarding
// against the trivially-constant "determinism").
func TestTelemetryDeterministicSnapshots(t *testing.T) {
	a := runTelemetryScenario(t, 42)
	b := runTelemetryScenario(t, 42)
	if !bytes.Equal(a, b) {
		t.Fatalf("identical seeds produced different telemetry snapshots:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	c := runTelemetryScenario(t, 43)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced byte-identical telemetry — snapshot is not actually recording the run")
	}
}

// TestTelemetryClusterCounters sanity-checks the wiring: a bootstrap
// with a leader crash must record elections (started and won), raft
// messages, and the cluster event counters.
func TestTelemetryClusterCounters(t *testing.T) {
	reg := telemetry.New()
	opts := paperOpts(150, 7)
	opts.Telemetry = reg
	s := mustBootstrap(t, opts)

	victim := s.SubgroupLeader(0)
	if err := s.CrashPeer(victim); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.WaitSubgroupLeader(0, victim, 20*simnet.Second); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	// 5 subgroups + FedAvg layer + the re-election ≥ 7 elections won.
	if got := snap.Counters["raft/elections_won"]; got < 7 {
		t.Errorf("raft/elections_won = %d, want >= 7", got)
	}
	if got := snap.Counters["raft/elections_started"]; got < snap.Counters["raft/elections_won"] {
		t.Errorf("elections_started %d < elections_won %d", got, snap.Counters["raft/elections_won"])
	}
	if got := snap.Counters["raft/msgs_sent"]; got == 0 {
		t.Error("raft/msgs_sent = 0, want > 0")
	}
	if got := snap.Counters["raft/entries_committed"]; got == 0 {
		t.Error("raft/entries_committed = 0, want > 0")
	}
	if got := snap.Counters["cluster/ev/subgroup-leader"]; got < 6 {
		t.Errorf("cluster/ev/subgroup-leader = %d, want >= 6", got)
	}
	if got := snap.Counters["cluster/ev/fedavg-leader"]; got < 1 {
		t.Errorf("cluster/ev/fedavg-leader = %d, want >= 1", got)
	}
	if snap.TraceTotal == 0 {
		t.Error("no trace events recorded")
	}
	// Virtual clock: every trace timestamp must be a plausible sim time
	// (well below wall-clock microseconds since the epoch).
	for _, ev := range snap.Trace {
		if ev.AtUs < 0 || ev.AtUs > int64(100*simnet.Second) {
			t.Fatalf("trace %q at %d µs: not on the virtual clock", ev.Kind, ev.AtUs)
		}
	}
}
