package cluster

import (
	"testing"

	"repro/internal/simnet"
)

// wanOpts is the WAN production profile: two subgroups of three spread
// round-robin over the wan50 regions, pre-vote + check-quorum on, and
// the RTT-driven AutoTune loop armed. The detector stays off: proactive
// campaigns are the point of the detector track, while this test pins
// down the *timeout* path the tuner governs.
func wanOpts(t *testing.T, seed int64, autoTune bool) Options {
	t.Helper()
	topo, err := simnet.Preset("wan50")
	if err != nil {
		t.Fatal(err)
	}
	return Options{
		NumSubgroups: 2,
		SubgroupSize: 3,
		Latency:      15 * simnet.Millisecond, // app-level join traffic only
		Topology:     topo,
		PreVote:      true,
		CheckQuorum:  true,
		AutoTune:     autoTune,
		Seed:         seed,
	}
}

// TestWANClusterTunesElectionBands: after bootstrap plus a settling
// window on the wan50 topology, the AutoTune loop has moved at least one
// peer's election band above the stock configuration — and no peer's
// band ever leaves the tuner's clamp range.
func TestWANClusterTunesElectionBands(t *testing.T) {
	s := mustBootstrap(t, wanOpts(t, 1, true))
	s.Sim.RunFor(10 * simnet.Second)

	tuned := 0
	for _, id := range s.PeerIDs() {
		min, max := s.Peer(id).ElectionTicks()
		if min <= 0 || max <= min {
			t.Fatalf("peer %d: degenerate band [%d,%d]", id, min, max)
		}
		if min > 5000 || max > 2*5000 {
			t.Errorf("peer %d: band [%d,%d] above the tuner clamp", id, min, max)
		}
		if min > s.opts.ElectionTickMin {
			tuned++
		}
	}
	if tuned == 0 {
		t.Fatalf("no peer tuned above the stock band after 10 s on wan50")
	}
}

// TestWANClusterFailoverRespectsTunedTimeouts is the ISSUE's cluster-level
// acceptance bound: a WAN-tuned cluster must not elect a replacement
// leader faster than 10× the (base) RTT between the new leader and the
// killed one — the tuner's whole point is that on a WAN, electing faster
// than the link allows is how spurious leadership churn starts. The
// same scenario with AutoTune off fails over on the stock (LAN-scale)
// band, proving the slowdown really comes from the feedback loop.
func TestWANClusterFailoverRespectsTunedTimeouts(t *testing.T) {
	failover := func(autoTune bool) (elapsed simnet.Duration, old, new uint64, topo *simnet.Topology) {
		s := mustBootstrap(t, wanOpts(t, 3, autoTune))
		s.Sim.RunFor(10 * simnet.Second) // let the tuner converge (no-op when off)

		old = s.SubgroupLeader(0)
		if err := s.CrashPeer(old); err != nil {
			t.Fatal(err)
		}
		t0 := s.Sim.Now()
		leader, at, err := s.WaitSubgroupLeader(0, old, 120*simnet.Second)
		if err != nil {
			t.Fatal(err)
		}
		return simnet.Duration(at - t0), old, leader, s.opts.Topology
	}

	tunedElapsed, old, leader, topo := failover(true)
	bound := 10 * topo.RTT(leader, old)
	if tunedElapsed < bound {
		t.Errorf("tuned cluster elected %d over %d in %v ms, faster than 10×RTT = %v ms",
			leader, old, tunedElapsed.Ms(), bound.Ms())
	}

	stockElapsed, _, _, _ := failover(false)
	if stockElapsed >= tunedElapsed {
		t.Errorf("stock failover (%v ms) not faster than tuned failover (%v ms) — tuning had no effect",
			stockElapsed.Ms(), tunedElapsed.Ms())
	}
}
