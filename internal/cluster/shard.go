package cluster

// This file is the elastic sharding layer on top of the continuous-churn
// control plane (churn.go): subgroups split when they grow past 2n−1
// members and merge into a sibling when they shrink below n/2, with the
// PR-9 replicated directory as the shard map. Re-sharding runs at round
// boundaries — the same moment the SAC layer re-reads the directory —
// so a round never observes a half-moved subgroup.
//
// Both operations reuse the churn machinery's building blocks: committed
// ConfChanges through the respective leaders, idempotent directory joins
// (DirJoin re-registration atomically releases the old slot and claims
// the new one), and detector rebuild + watch refresh on every peer whose
// membership view changed. A split retires no raft state — the stayers'
// group continues under its shrunk membership, and the movers form a
// brand-new raft group. A merge retires the source group wholesale: once
// every member has re-registered in the target, nobody is left to care
// about the old log, and its directory slot simply goes empty (empty
// slots are kept, not renumbered, so subgroup ids stay stable).

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"repro/internal/raft"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// Sharding event kinds, on the same timeline as churn events.
const (
	// EvSubgroupSplit: a subgroup split completed — movers committed out
	// of the source raft group, formed a new one, and re-registered.
	EvSubgroupSplit EventKind = "subgroup-split"
	// EvSubgroupMerged: a subgroup merged into a sibling — every member
	// re-registered in the target and the source group was retired.
	EvSubgroupMerged EventKind = "subgroup-merged"
)

// ShardActionKind labels one rebalance step.
type ShardActionKind string

const (
	ShardSplit ShardActionKind = "split"
	ShardMerge ShardActionKind = "merge"
)

// ShardAction is one planned (or executed) re-sharding step.
type ShardAction struct {
	Kind     ShardActionKind
	Subgroup int      // source subgroup
	Target   int      // new subgroup (split) or absorbing subgroup (merge)
	Moved    []uint64 // peers that changed subgroup
}

// shardDegree is the target subgroup size n the thresholds derive from.
func (s *System) shardDegree() int {
	if s.opts.SubgroupSize > 0 {
		return s.opts.SubgroupSize
	}
	if len(s.opts.Sizes) > 0 {
		return s.opts.Sizes[0]
	}
	return 3
}

// ShardPlan reads the directory (the shard map) and returns the next
// re-sharding action, or nil when every subgroup is within bounds:
// split when a subgroup exceeds 2n−1 members, merge when it fell below
// n/2 and a sibling exists to absorb it. One action at a time — the
// caller re-plans after executing, so plans never go stale.
func (s *System) ShardPlan() *ShardAction {
	d := s.Directory()
	if d == nil {
		return nil
	}
	n := s.shardDegree()
	for g := range s.bySub {
		size := len(d.Subgroup(g))
		if size > 2*n-1 {
			return &ShardAction{Kind: ShardSplit, Subgroup: g, Target: len(s.bySub)}
		}
		if size > 0 && 2*size < n {
			if t := s.mergeTarget(g); t >= 0 {
				return &ShardAction{Kind: ShardMerge, Subgroup: g, Target: t}
			}
		}
	}
	return nil
}

// mergeTarget picks the smallest other non-empty subgroup (lowest index
// on ties) as the absorber, or -1 when none exists.
func (s *System) mergeTarget(g int) int {
	d := s.Directory()
	if d == nil {
		return -1
	}
	best, bestSize := -1, 0
	for t := range s.bySub {
		if t == g {
			continue
		}
		size := len(d.Subgroup(t))
		if size == 0 {
			continue
		}
		if best == -1 || size < bestSize {
			best, bestSize = t, size
		}
	}
	return best
}

// Rebalance plans and executes re-sharding actions until the shard map
// is within bounds, running the simulation up to limit virtual time per
// action. Returns the executed actions.
func (s *System) Rebalance(limit simnet.Duration) ([]ShardAction, error) {
	var done []ShardAction
	maxSteps := 8*len(s.bySub) + 8 // each action strictly shrinks the imbalance
	for step := 0; step < maxSteps; step++ {
		plan := s.ShardPlan()
		if plan == nil {
			return done, nil
		}
		var (
			act *ShardAction
			err error
		)
		switch plan.Kind {
		case ShardSplit:
			act, err = s.SplitSubgroup(plan.Subgroup, limit)
		case ShardMerge:
			act, err = s.MergeSubgroup(plan.Subgroup, limit)
		}
		if err != nil {
			return done, err
		}
		done = append(done, *act)
	}
	return done, fmt.Errorf("cluster: rebalance did not converge after %d actions", maxSteps)
}

// runShardStep drives one committed step of a shard operation: it runs
// the simulation in JoinPollInterval slices, re-kicking the proposal
// each slice, until cond holds or limit expires.
func (s *System) runShardStep(what string, cond func() bool, kick func(), limit simnet.Duration) error {
	deadline := s.Sim.Now() + simnet.Time(limit)
	for !cond() {
		if s.Sim.Now() >= deadline {
			return fmt.Errorf("cluster: %s did not commit within %v ms", what, limit.Ms())
		}
		if kick != nil {
			kick()
		}
		s.Sim.RunFor(s.opts.JoinPollInterval)
	}
	return nil
}

// newShardNode builds a raft node for peer id with the given initial
// membership view, stamped with the system-wide flags — the same recipe
// AddPeer uses, under a shard-specific seed stream.
func (s *System) newShardNode(p *Peer, members []uint64) (*raft.Node, error) {
	cfg := s.raftFlags(raft.Config{
		ID:              p.ID,
		Peers:           members,
		ElectionTickMin: s.opts.ElectionTickMin,
		ElectionTickMax: s.opts.ElectionTickMax,
		HeartbeatTick:   s.opts.HeartbeatTick,
		Rng:             rand.New(rand.NewSource(s.opts.Seed*7000 + int64(p.ID))),
		Telemetry:       s.opts.Telemetry,
	})
	if s.opts.SnapshotThreshold > 0 {
		cfg.SnapshotThreshold = s.opts.SnapshotThreshold
		cfg.SnapshotState = func() []byte {
			b, err := json.Marshal(fedConfigEntry{Members: p.fedConfig})
			if err != nil {
				return nil
			}
			return b
		}
	}
	return raft.NewNode(cfg)
}

// rehome moves peer p onto a new host in group ng with the given raft
// membership view, rewiring callbacks and rebuilding its detector over
// the new co-member set. The single detector tick loop per peer keeps
// running across the swap (it dereferences p.det each tick).
func (s *System) rehome(p *Peer, ng int, members []uint64) error {
	node, err := s.newShardNode(p, members)
	if err != nil {
		return err
	}
	host, err := s.subGroups[ng].Add(node)
	if err != nil {
		return err
	}
	p.subHost = host
	p.Subgroup = ng
	s.wireSubgroupCallbacks(p)
	if s.opts.Detector {
		watch := members
		if !contains(watch, p.ID) {
			watch = append(append([]uint64(nil), members...), p.ID)
		}
		if err := s.setupDetector(p, watch); err != nil {
			return err
		}
	}
	return nil
}

// forgetAcross scrubs ids from every detector and RTT tracker of peers
// in subgroup g — after a split or merge the two sides no longer share
// a group and must not hold verdicts about each other.
func (s *System) forgetAcross(g int, ids []uint64) {
	for _, mid := range s.bySub[g] {
		p := s.peers[mid]
		if p == nil {
			continue
		}
		for _, id := range ids {
			if p.det != nil {
				p.det.Forget(id)
			}
			if p.rtt != nil {
				p.rtt.Forget(id)
			}
			delete(s.lastSeen[mid], id)
		}
	}
}

// SplitSubgroup splits subgroup g in two: the first ceil(size/2) members
// (by admission order, with the current leader kept among them) stay;
// the rest commit out of g's raft group, form a brand-new raft group,
// elect a leader, and re-register in the directory under the new
// subgroup with fresh dense share indices. Runs the simulation for at
// most limit per committed step.
func (s *System) SplitSubgroup(g int, limit simnet.Duration) (*ShardAction, error) {
	if g < 0 || g >= len(s.bySub) {
		return nil, fmt.Errorf("cluster: no subgroup %d", g)
	}
	if !s.ChurnIdle() {
		return nil, fmt.Errorf("cluster: churn in flight; split must run at a round boundary")
	}
	ids := append([]uint64(nil), s.bySub[g]...)
	if len(ids) < 4 {
		return nil, fmt.Errorf("cluster: subgroup %d has %d members; splitting needs ≥ 4", g, len(ids))
	}
	keep := (len(ids) + 1) / 2
	stay := append([]uint64(nil), ids[:keep]...)
	move := append([]uint64(nil), ids[keep:]...)
	// The current leader must stay: its raft state (and its FedAvg-layer
	// membership) anchors the shrunk group. Swap it into the stay half.
	if l := s.SubgroupLeader(g); l != raft.None && contains(move, l) {
		for i, id := range move {
			if id == l {
				move[i], stay[0] = stay[0], move[i]
				break
			}
		}
	}

	// Phase A — commit the movers out of g's raft group one by one, then
	// take their old hosts down.
	for _, id := range move {
		mid := id
		if err := s.runShardStep(
			fmt.Sprintf("split: removal of peer %d from subgroup %d", mid, g),
			func() bool {
				m := s.subgroupMembers(g)
				return m != nil && !contains(m, mid)
			},
			func() {
				l := s.SubgroupLeader(g)
				if l == raft.None {
					return
				}
				lp := s.peers[l]
				s.sendApp(func() {
					if lp == nil || lp.Down() || !lp.IsSubgroupLeader() {
						return
					}
					if err := lp.subHost.Node.ProposeConfChange(raft.ConfChange{Add: false, NodeID: mid}); err == nil {
						lp.subHost.Pump()
					}
				})
			},
			limit,
		); err != nil {
			return nil, err
		}
	}
	for _, id := range move {
		s.subGroups[g].Remove(id)
	}
	s.bySub[g] = stay

	// Phase B — the movers form a new raft group and elect a leader.
	ng := len(s.bySub)
	group := simnet.NewGroup(s.Sim, fmt.Sprintf("subgroup-%d", ng), s.opts.Latency,
		rand.New(rand.NewSource(s.opts.Seed*31+int64(ng))))
	group.Topo = s.opts.Topology
	if s.opts.AutoTune {
		group.OnDeliver = func(m raft.Message, oneWay simnet.Duration) {
			s.observeRTT(m.To, m.From, oneWay)
		}
	}
	s.subGroups = append(s.subGroups, group)
	s.bySub = append(s.bySub, append([]uint64(nil), move...))
	for _, id := range move {
		if err := s.rehome(s.peers[id], ng, move); err != nil {
			return nil, err
		}
	}
	if err := s.runShardStep(
		fmt.Sprintf("split: leader election in new subgroup %d", ng),
		func() bool { return s.SubgroupLeader(ng) != raft.None },
		nil, limit,
	); err != nil {
		return nil, err
	}

	// Phase C — re-register the movers in the directory under the new
	// subgroup with dense indices 0..len−1 (a fresh subgroup has every
	// slot free, so the proposed index always wins; re-proposals are
	// idempotent). DirJoin re-registration releases the old g slot in the
	// same committed entry, so soundness never breaks in between.
	for i, id := range move {
		mid, idx := id, i
		if err := s.runShardStep(
			fmt.Sprintf("split: directory move of peer %d to subgroup %d", mid, ng),
			func() bool {
				d := s.Directory()
				if d == nil {
					return false
				}
				e, ok := d.Lookup(mid)
				return ok && e.Subgroup == ng
			},
			func() {
				s.proposeDirectory(wire.DirectoryUpdate{
					Op: wire.DirJoin, ID: mid, Subgroup: ng,
					ShareIndex: idx, Addr: peerAddr(mid),
				})
			},
			limit,
		); err != nil {
			return nil, err
		}
	}

	// The two halves no longer share a group: scrub cross-half verdicts
	// and realign every watch set.
	s.forgetAcross(g, move)
	s.forgetAcross(ng, stay)
	s.refreshWatches(g)
	s.refreshWatches(ng)

	s.opts.Telemetry.Counter("cluster/shard/splits").Inc()
	s.opts.Telemetry.Counter("cluster/shard/moved").Add(int64(len(move)))
	s.record(EvSubgroupSplit, move[0], g)
	return &ShardAction{Kind: ShardSplit, Subgroup: g, Target: ng, Moved: move}, nil
}

// MergeSubgroup dissolves subgroup g into the smallest sibling: each
// member joins the target raft group through a committed ConfChange and
// re-registers in the directory under the target subgroup at the lowest
// free share index. The source raft group is retired wholesale — once
// its last member re-registered, nobody remains to read its log — and
// its slot stays empty (ids are never renumbered). Runs the simulation
// for at most limit per committed step.
func (s *System) MergeSubgroup(g int, limit simnet.Duration) (*ShardAction, error) {
	if g < 0 || g >= len(s.bySub) {
		return nil, fmt.Errorf("cluster: no subgroup %d", g)
	}
	if !s.ChurnIdle() {
		return nil, fmt.Errorf("cluster: churn in flight; merge must run at a round boundary")
	}
	target := s.mergeTarget(g)
	if target < 0 {
		return nil, fmt.Errorf("cluster: no sibling subgroup to absorb %d", g)
	}
	move := append([]uint64(nil), s.bySub[g]...)
	if len(move) == 0 {
		return nil, fmt.Errorf("cluster: subgroup %d is already empty", g)
	}

	// Retire the source group's hosts first: its raft state is dead
	// weight once the directory is the authority, and a half-alive source
	// group could still elect leaders and join the FedAvg layer.
	for _, id := range move {
		s.subGroups[g].Remove(id)
	}
	s.bySub[g] = nil

	for _, id := range move {
		mid := id
		p := s.peers[mid]
		// The new node starts from the target's committed membership (not
		// including itself) so it cannot campaign before its addition
		// commits — the AddPeer recipe.
		members := s.subgroupMembers(target)
		if members == nil {
			members = append([]uint64(nil), s.bySub[target]...)
		}
		if err := s.rehome(p, target, members); err != nil {
			return nil, err
		}
		if err := s.runShardStep(
			fmt.Sprintf("merge: admission of peer %d into subgroup %d", mid, target),
			func() bool { return contains(s.subgroupMembers(target), mid) },
			func() {
				l := s.SubgroupLeader(target)
				if l == raft.None {
					return
				}
				lp := s.peers[l]
				s.sendApp(func() {
					if lp == nil || lp.Down() || !lp.IsSubgroupLeader() {
						return
					}
					if err := lp.subHost.Node.ProposeConfChange(raft.ConfChange{Add: true, NodeID: mid}); err == nil {
						lp.subHost.Pump()
					}
				})
			},
			limit,
		); err != nil {
			return nil, err
		}
		if err := s.runShardStep(
			fmt.Sprintf("merge: directory move of peer %d to subgroup %d", mid, target),
			func() bool {
				d := s.Directory()
				if d == nil {
					return false
				}
				e, ok := d.Lookup(mid)
				return ok && e.Subgroup == target
			},
			func() {
				d := s.Directory()
				if d == nil {
					return
				}
				s.proposeDirectory(wire.DirectoryUpdate{
					Op: wire.DirJoin, ID: mid, Subgroup: target,
					ShareIndex: d.NextShareIndex(target), Addr: peerAddr(mid),
				})
			},
			limit,
		); err != nil {
			return nil, err
		}
		s.bySub[target] = append(s.bySub[target], mid)
		s.refreshWatches(target)
	}

	// Absorbed and absorbing peers now share one group; the only stale
	// state is verdicts the target half held about nobody — none, since
	// the movers were never watched there. Realign watches once more and
	// drop any cross-group verdicts the movers brought along.
	s.forgetAcross(target, nil)
	s.refreshWatches(target)

	s.opts.Telemetry.Counter("cluster/shard/merges").Inc()
	s.opts.Telemetry.Counter("cluster/shard/moved").Add(int64(len(move)))
	s.record(EvSubgroupMerged, move[0], g)
	return &ShardAction{Kind: ShardMerge, Subgroup: g, Target: target, Moved: move}, nil
}
