// Package cluster implements the paper's two-layer Raft (Sec. V): every
// subgroup runs its own Raft group, the subgroup leaders form a second
// Raft group (the FedAvg layer), and a post-leader-election callback
// connects a newly elected subgroup leader to the FedAvg layer:
//
//   - Subgroup leaders periodically commit the FedAvg-layer configuration
//     (member IDs) to their subgroup's replicated log, so any future
//     leader knows whom to contact (Sec. V-A1).
//   - When a subgroup leader crashes, the subgroup elects a new leader,
//     which reads the committed configuration, polls the FedAvg layer for
//     a leader (every JoinPollInterval, paper: 100 ms), and asks it to add
//     the new leader through Raft's membership-change protocol.
//   - When the FedAvg leader crashes, two elections run concurrently
//     (FedAvg layer and the crashed peer's subgroup) and the new subgroup
//     leader joins once a FedAvg leader exists (Sec. V-B1).
//
// The package runs on the discrete-event simulator (internal/simnet), so
// recovery times are measured in exact virtual milliseconds.
package cluster

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/directory"
	"repro/internal/health"
	"repro/internal/raft"
	"repro/internal/simnet"
	"repro/internal/telemetry"
)

// EventKind labels recovery-relevant events on the system timeline.
type EventKind string

// Event kinds recorded by the system.
const (
	// EvSubgroupLeader: a peer became leader of its subgroup.
	EvSubgroupLeader EventKind = "subgroup-leader"
	// EvFedAvgLeader: a peer became leader of the FedAvg layer.
	EvFedAvgLeader EventKind = "fedavg-leader"
	// EvJoinedFedAvg: a new subgroup leader's membership in the FedAvg
	// layer was committed and observed by the joiner.
	EvJoinedFedAvg EventKind = "joined-fedavg"
	// EvProactiveCampaign: a follower's failure detector declared the
	// subgroup leader Down and forced an immediate election instead of
	// waiting for the U(T,2T) timeout.
	EvProactiveCampaign EventKind = "proactive-campaign"
	// EvFedRevived: a re-elected subgroup leader's crashed FedAvg-layer
	// node was revived automatically (the ReviveFedNode disaster path).
	EvFedRevived EventKind = "fed-revived"
)

// Event is one timeline entry.
type Event struct {
	At       simnet.Time
	Kind     EventKind
	Peer     uint64
	Subgroup int
}

// Options configures a two-layer system.
type Options struct {
	// NumSubgroups (m) and SubgroupSize (n); alternatively set Sizes for
	// uneven subgroups (the paper distributes N mod m remainders evenly).
	NumSubgroups int
	SubgroupSize int
	Sizes        []int

	// ElectionTickMin/Max in milliseconds: the paper's U(T, 2T) has
	// Min = T, Max = 2T. HeartbeatTick defaults to Min/3.
	ElectionTickMin int
	ElectionTickMax int
	HeartbeatTick   int

	// Latency is the one-way link delay (paper: 15 ms).
	Latency simnet.Duration
	// Topology, when non-nil, replaces the uniform Latency with a
	// multi-region latency model on every subgroup network and the
	// FedAvg layer (see simnet.Topology / simnet.Preset). Hosts map to
	// regions round-robin by peer ID unless assigned explicitly. The
	// app-level join/accept messages keep using Latency.
	Topology *simnet.Topology

	// PreVote / CheckQuorum / LeaderLease thread the raft WAN-stability
	// flags (see raft.Config) into every subgroup and FedAvg-layer node.
	// All default off: existing seeds replay unchanged.
	PreVote     bool
	CheckQuorum bool
	LeaderLease bool
	// AutoTune arms the health→raft feedback loop: every peer tracks
	// per-sender RTTs from delivered messages and retunes its election
	// timeout band every AutoTuneInterval (default 500 ms) via
	// health.Tuning (10× the p99 RTT, clamped). Independent of Detector
	// — tuning slows elections down to WAN-safe bands, while the
	// detector's proactive campaigns speed crash recovery up; a
	// deployment can run either or both.
	AutoTune         bool
	AutoTuneInterval simnet.Duration
	// ConfigCommitInterval is how often subgroup leaders commit the
	// FedAvg-layer configuration to their subgroup log (default 50 ms).
	ConfigCommitInterval simnet.Duration
	// JoinPollInterval is how often a joining subgroup leader polls the
	// FedAvg layer for a leader (paper: 100 ms).
	JoinPollInterval simnet.Duration

	// SnapshotThreshold bounds subgroup logs: the periodic FedAvg-layer
	// configuration commits grow the log forever, so it is compacted
	// after this many applied entries, with the latest configuration
	// carried in the snapshot. 0 uses 64; negative disables compaction.
	SnapshotThreshold int

	// Telemetry, when non-nil, is threaded into every raft node and
	// records cluster/ev/* event counters and trace events. New installs
	// the simulation's virtual clock on it, so identical seeds produce
	// byte-identical snapshots.
	Telemetry *telemetry.Registry

	// Detector enables the self-healing layer: every peer runs a
	// last-activity failure detector (internal/health) over its subgroup
	// co-members on the virtual clock. Down verdicts about the subgroup
	// leader trigger rank-staggered proactive campaigns, and a
	// re-elected leader with a crashed FedAvg-layer node revives it
	// automatically when the layer is leaderless. See health.go.
	Detector bool
	// DetectorSuspectTicks/DetectorDownTicks override the detector's
	// silence thresholds in heartbeat intervals (defaults 2 and 3).
	DetectorSuspectTicks int
	DetectorDownTicks    int

	Seed int64
}

func (o *Options) normalize() error {
	if len(o.Sizes) == 0 {
		if o.NumSubgroups < 1 || o.SubgroupSize < 1 {
			return fmt.Errorf("cluster: need NumSubgroups and SubgroupSize (or Sizes)")
		}
		o.Sizes = make([]int, o.NumSubgroups)
		for i := range o.Sizes {
			o.Sizes[i] = o.SubgroupSize
		}
	}
	o.NumSubgroups = len(o.Sizes)
	for _, s := range o.Sizes {
		if s < 1 {
			return fmt.Errorf("cluster: subgroup size %d", s)
		}
	}
	if o.ElectionTickMin <= 0 {
		o.ElectionTickMin = 150
	}
	if o.ElectionTickMax <= o.ElectionTickMin {
		o.ElectionTickMax = 2 * o.ElectionTickMin
	}
	if o.HeartbeatTick <= 0 {
		o.HeartbeatTick = o.ElectionTickMin / 3
		if o.HeartbeatTick < 1 {
			o.HeartbeatTick = 1
		}
	}
	if o.Latency < 0 {
		return fmt.Errorf("cluster: negative latency")
	}
	if o.AutoTuneInterval <= 0 {
		o.AutoTuneInterval = 500 * simnet.Millisecond
	}
	if o.ConfigCommitInterval <= 0 {
		o.ConfigCommitInterval = 50 * simnet.Millisecond
	}
	if o.JoinPollInterval <= 0 {
		o.JoinPollInterval = 100 * simnet.Millisecond
	}
	if o.SnapshotThreshold == 0 {
		o.SnapshotThreshold = 64
	}
	return nil
}

// Peer is one participant: always a member of its subgroup's Raft group,
// and a member of the FedAvg layer while it leads its subgroup.
type Peer struct {
	ID       uint64
	Subgroup int

	sys     *System
	subHost *simnet.Host
	fedHost *simnet.Host

	// fedConfig is the FedAvg-layer member list most recently committed
	// to the subgroup log (Sec. V-A1).
	fedConfig []uint64
	joined    bool
	joinLoop  bool
	cfgLoop   bool

	det     *health.Detector
	detLoop bool

	// rtt tracks per-sender round-trip times observed from delivered raft
	// traffic; the AutoTune loop derives election timeout bands from it.
	rtt *health.RTTStats

	// Continuous-churn control plane state (see churn.go).
	//
	// addr is the peer's dialable address, registered in the directory.
	// model is the peer's local model vector (what a graceful handoff
	// transfers through the checkpoint wire kind). inherited holds a
	// model checkpoint received from a gracefully departing co-member.
	// dir is this peer's replica of the peer directory; it is mutated
	// only by directory entries committed on the FedAvg-layer log, so
	// every replica is a pure function of that log. departing marks a
	// peer whose departure protocol is in flight.
	addr      string
	model     []float64
	inherited []float64
	dir       *directory.Directory
	departing bool
}

// Down reports whether the peer has crashed.
func (p *Peer) Down() bool { return p.subHost.Down() }

// Joined reports whether the peer currently considers itself a member of
// the FedAvg layer (its addition committed and observed).
func (p *Peer) Joined() bool { return p.joined }

// SubStatus returns the peer's subgroup raft node status — the probe
// interface invariant checkers (internal/chaos) read.
func (p *Peer) SubStatus() raft.Status { return p.subHost.Node.Status() }

// FedStatus returns the peer's FedAvg-layer raft node status; ok is false
// when the peer has never had a FedAvg-layer node.
func (p *Peer) FedStatus() (raft.Status, bool) {
	if p.fedHost == nil {
		return raft.Status{}, false
	}
	return p.fedHost.Node.Status(), true
}

// ElectionTicks returns the peer's subgroup node's current election
// timeout band — the stock Options band until the AutoTune loop retunes
// it from observed RTTs.
func (p *Peer) ElectionTicks() (min, max int) { return p.subHost.Node.ElectionTicks() }

// IsSubgroupLeader reports whether the peer currently leads its subgroup.
func (p *Peer) IsSubgroupLeader() bool {
	return !p.Down() && p.subHost.Node.State() == raft.Leader
}

// FedConfig returns the peer's view of the FedAvg-layer membership.
func (p *Peer) FedConfig() []uint64 { return append([]uint64(nil), p.fedConfig...) }

// System is a running two-layer Raft deployment on a simulator.
type System struct {
	Sim  *simnet.Sim
	opts Options

	subGroups []*simnet.Group
	fedGroup  *simnet.Group
	peers     map[uint64]*Peer
	bySub     [][]uint64

	rng      *rand.Rand
	events   []Event
	observer Observer

	healthTrans []HealthTransition
	lastSeen    map[uint64]map[uint64]simnet.Time

	// Continuous-churn control plane state (see churn.go). nextID is the
	// next unassigned peer id for AddPeer; seedFrames is the bootstrap
	// directory (the initial membership, part of configuration exactly
	// like raft's initial Peers list) every directory replica starts
	// from; pendingChurn counts admissions/departures in flight.
	nextID       uint64
	seedFrames   []byte
	pendingChurn int
}

// Observer receives raw role transitions from every raft node in the
// system — the probe interface the chaos harness (internal/chaos) uses to
// check election safety (at most one leader per term per group)
// continuously, independent of the event timeline the system itself
// records. The callbacks run synchronously on the simulation goroutine
// and must not mutate the system.
type Observer struct {
	// SubgroupState fires on every role/term/leader change of a peer's
	// subgroup raft node.
	SubgroupState func(peer uint64, subgroup int, st raft.State, term, leader uint64)
	// FedState fires on every role/term/leader change of a peer's
	// FedAvg-layer raft node.
	FedState func(peer uint64, st raft.State, term, leader uint64)
}

// SetObserver installs the probe callbacks. Call before Bootstrap so no
// transition is missed.
func (s *System) SetObserver(o Observer) { s.observer = o }

// New builds the system: subgroup Raft groups are created immediately;
// call Bootstrap to elect initial leaders and form the FedAvg layer.
func New(opts Options) (*System, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	s := &System{
		Sim:      simnet.New(),
		opts:     opts,
		fedGroup: nil,
		peers:    make(map[uint64]*Peer),
		rng:      rand.New(rand.NewSource(opts.Seed)),
		lastSeen: make(map[uint64]map[uint64]simnet.Time),
	}
	// Telemetry timestamps follow the virtual clock: every event in a
	// seeded simulation happens at a reproducible virtual time.
	opts.Telemetry.SetClock(func() int64 { return int64(s.Sim.Now()) })
	id := uint64(1)
	for g, size := range opts.Sizes {
		group := simnet.NewGroup(s.Sim, fmt.Sprintf("subgroup-%d", g), opts.Latency, rand.New(rand.NewSource(opts.Seed*31+int64(g))))
		group.Topo = opts.Topology
		if opts.AutoTune {
			group.OnDeliver = func(m raft.Message, oneWay simnet.Duration) {
				s.observeRTT(m.To, m.From, oneWay)
			}
		}
		var ids []uint64
		for i := 0; i < size; i++ {
			ids = append(ids, id)
			id++
		}
		s.bySub = append(s.bySub, ids)
		for _, pid := range ids {
			p := &Peer{ID: pid, Subgroup: g, sys: s, addr: peerAddr(pid)}
			if opts.AutoTune {
				p.rtt = health.NewRTTStats(0)
			}
			cfg := s.raftFlags(raft.Config{
				ID:              pid,
				Peers:           ids,
				ElectionTickMin: opts.ElectionTickMin,
				ElectionTickMax: opts.ElectionTickMax,
				HeartbeatTick:   opts.HeartbeatTick,
				Rng:             rand.New(rand.NewSource(opts.Seed*1000 + int64(pid))),
				Telemetry:       opts.Telemetry,
			})
			if opts.SnapshotThreshold > 0 {
				cfg.SnapshotThreshold = opts.SnapshotThreshold
				cfg.SnapshotState = func() []byte {
					// The subgroup state machine is just the latest
					// FedAvg-layer configuration (Sec. V-A1).
					b, err := json.Marshal(fedConfigEntry{Members: p.fedConfig})
					if err != nil {
						return nil
					}
					return b
				}
			}
			node, err := raft.NewNode(cfg)
			if err != nil {
				return nil, err
			}
			host, err := group.Add(node)
			if err != nil {
				return nil, err
			}
			p.subHost = host
			s.peers[pid] = p
			s.wireSubgroupCallbacks(p)
			if opts.Detector {
				if err := s.setupDetector(p, ids); err != nil {
					return nil, err
				}
			}
		}
		s.subGroups = append(s.subGroups, group)
	}
	s.nextID = id
	// The bootstrap directory is configuration, not log: every directory
	// replica (present and future) starts from the same seed frames, so
	// replaying the FedAvg-layer log on top converges them (churn.go).
	s.seedFrames = s.buildSeedDirectory()
	for _, p := range s.peers {
		d, err := directory.DecodeSnapshot(s.seedFrames)
		if err != nil {
			return nil, err
		}
		p.dir = d
	}
	s.fedGroup = simnet.NewGroup(s.Sim, "fedavg", opts.Latency, rand.New(rand.NewSource(opts.Seed*77)))
	s.fedGroup.Topo = opts.Topology
	if opts.AutoTune {
		s.fedGroup.OnDeliver = func(m raft.Message, oneWay simnet.Duration) {
			s.observeRTT(m.To, m.From, oneWay)
		}
		s.startAutoTune()
	}
	return s, nil
}

// raftFlags stamps the system-wide WAN-stability flags onto one node's
// raft config — every construction site (initial, FedAvg join, restart,
// revive) goes through here so a restarted node never silently loses a
// flag its peers run with.
func (s *System) raftFlags(cfg raft.Config) raft.Config {
	cfg.PreVote = s.opts.PreVote
	cfg.CheckQuorum = s.opts.CheckQuorum
	cfg.LeaderLease = s.opts.LeaderLease
	return cfg
}

// observeRTT records one delivered message as an RTT sample for its
// receiver: on near-symmetric links twice the sampled one-way delay is
// the round trip the receiver would measure against that sender.
func (s *System) observeRTT(to, from uint64, oneWay simnet.Duration) {
	p := s.peers[to]
	if p == nil || p.rtt == nil {
		return
	}
	p.rtt.Observe(from, 2*int64(oneWay))
}

// startAutoTune arms the periodic health→raft feedback loop: every
// AutoTuneInterval each live peer derives an election band from its
// observed per-sender RTT quantiles (health.Tuning) and rescales its
// subgroup and FedAvg-layer nodes' timers in place. Iteration is in
// ascending peer-ID order, so equal seeds retune identically.
func (s *System) startAutoTune() {
	tuning := health.Tuning{TickUs: int64(simnet.Millisecond)}
	// Keep the tuned floor above the heartbeat interval (raft rejects
	// min ≤ HeartbeatTick) and never below the stock LAN floor.
	tuning.MinTicks = 50
	if s.opts.HeartbeatTick+1 > tuning.MinTicks {
		tuning.MinTicks = s.opts.HeartbeatTick + 1
	}
	var loop func()
	loop = func() {
		for _, id := range s.PeerIDs() {
			p := s.peers[id]
			if p.Down() || p.rtt == nil {
				continue
			}
			min, max, ok := tuning.ElectionTicks(p.rtt)
			if !ok {
				continue
			}
			_ = p.subHost.Node.SetElectionTicks(min, max)
			if p.fedHost != nil && !p.fedHost.Down() {
				_ = p.fedHost.Node.SetElectionTicks(min, max)
			}
		}
		s.Sim.Schedule(s.opts.AutoTuneInterval, loop)
	}
	s.Sim.Schedule(s.opts.AutoTuneInterval, loop)
}

// NumPeers returns the total peer count.
func (s *System) NumPeers() int { return len(s.peers) }

// Peer returns the peer with the given ID, or nil.
func (s *System) Peer(id uint64) *Peer { return s.peers[id] }

// SubgroupPeers returns the peer IDs of subgroup g.
func (s *System) SubgroupPeers(g int) []uint64 { return append([]uint64(nil), s.bySub[g]...) }

// PeerIDs returns every peer ID in ascending order — the deterministic
// iteration order fault campaigns require.
func (s *System) PeerIDs() []uint64 {
	out := make([]uint64, 0, len(s.peers))
	for id := range s.peers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumSubgroups returns the subgroup count.
func (s *System) NumSubgroups() int { return len(s.bySub) }

// SubgroupNet exposes subgroup g's simulated network so fault campaigns
// can inject partitions, loss and delay inside one subgroup.
func (s *System) SubgroupNet(g int) *simnet.Group { return s.subGroups[g] }

// FedNet exposes the FedAvg layer's simulated network.
func (s *System) FedNet() *simnet.Group { return s.fedGroup }

// Events returns the recorded timeline.
func (s *System) Events() []Event { return append([]Event(nil), s.events...) }

func (s *System) record(kind EventKind, peer uint64, subgroup int) {
	s.events = append(s.events, Event{At: s.Sim.Now(), Kind: kind, Peer: peer, Subgroup: subgroup})
	s.opts.Telemetry.Counter("cluster/ev/" + string(kind)).Inc()
	s.opts.Telemetry.Trace("cluster/"+string(kind), peer, subgroup)
}

// SubgroupLeader returns the current leader peer ID of subgroup g (from
// the simulator's omniscient view), or raft.None.
func (s *System) SubgroupLeader(g int) uint64 { return s.subGroups[g].Leader() }

// FedAvgLeader returns the current FedAvg-layer leader, or raft.None.
func (s *System) FedAvgLeader() uint64 { return s.fedGroup.Leader() }

// FedAvgMembers returns the FedAvg leader's view of the layer membership,
// or nil when no leader exists.
func (s *System) FedAvgMembers() []uint64 {
	l := s.FedAvgLeader()
	if l == raft.None {
		return nil
	}
	return s.peers[l].fedHost.Node.Members()
}

// Bootstrap elects a leader in every subgroup, forms the FedAvg layer
// from those leaders, elects the FedAvg leader, and starts the periodic
// configuration commits. It returns an error if the system does not
// stabilize within limit.
func (s *System) Bootstrap(limit simnet.Duration) error {
	deadline := s.Sim.Now() + simnet.Time(limit)
	ok := s.Sim.RunWhileNot(func() bool {
		for g := range s.subGroups {
			if s.SubgroupLeader(g) == raft.None {
				return false
			}
		}
		return true
	}, deadline)
	if !ok {
		return fmt.Errorf("cluster: subgroup elections did not complete within %v ms", limit.Ms())
	}
	// Form the FedAvg layer from the elected subgroup leaders.
	var members []uint64
	for g := range s.subGroups {
		members = append(members, s.SubgroupLeader(g))
	}
	for _, id := range members {
		if err := s.createFedNode(s.peers[id], members); err != nil {
			return err
		}
		s.peers[id].joined = true
	}
	ok = s.Sim.RunWhileNot(func() bool { return s.FedAvgLeader() != raft.None }, deadline)
	if !ok {
		return fmt.Errorf("cluster: FedAvg election did not complete within %v ms", limit.Ms())
	}
	return nil
}

// createFedNode creates and registers a peer's FedAvg-layer raft node.
// members is the membership the node starts from; a joining peer passes
// the current members (not yet including itself). A peer whose previous
// FedAvg node crashed (it led before, then failed and restarted) revives
// that node from its persisted state instead.
func (s *System) createFedNode(p *Peer, members []uint64) error {
	if p.fedHost != nil {
		if p.fedHost.Down() {
			return p.fedHost.Restart(s.raftFlags(raft.Config{
				ID:              p.ID,
				ElectionTickMin: s.opts.ElectionTickMin,
				ElectionTickMax: s.opts.ElectionTickMax,
				HeartbeatTick:   s.opts.HeartbeatTick,
				Rng:             rand.New(rand.NewSource(s.opts.Seed*3000 + int64(p.ID))),
				Telemetry:       s.opts.Telemetry,
			}))
		}
		return nil
	}
	node, err := raft.NewNode(s.raftFlags(raft.Config{
		ID:              p.ID,
		Peers:           members,
		ElectionTickMin: s.opts.ElectionTickMin,
		ElectionTickMax: s.opts.ElectionTickMax,
		HeartbeatTick:   s.opts.HeartbeatTick,
		Rng:             rand.New(rand.NewSource(s.opts.Seed*2000 + int64(p.ID))),
		Telemetry:       s.opts.Telemetry,
	}))
	if err != nil {
		return err
	}
	host, err := s.fedGroup.Add(node)
	if err != nil {
		return err
	}
	p.fedHost = host
	s.wireFedCallbacks(p)
	return nil
}

// fedConfigEntry is the payload subgroup leaders commit to their
// subgroup log.
type fedConfigEntry struct {
	Members []uint64 `json:"members"`
}

const fedConfigPrefix = "fedcfg:"

func (s *System) wireSubgroupCallbacks(p *Peer) {
	p.subHost.OnStateChange = func(st raft.State, term, leader uint64) {
		if s.observer.SubgroupState != nil {
			s.observer.SubgroupState(p.ID, p.Subgroup, st, term, leader)
		}
		if p.det != nil {
			s.updateWatch(p, st, leader)
		}
		if st != raft.Leader {
			return
		}
		s.record(EvSubgroupLeader, p.ID, p.Subgroup)
		// Post-leader-election callback (Sec. V-A1): join the FedAvg
		// layer and start committing its configuration.
		if !p.joined {
			s.startJoin(p)
		}
		s.scheduleConfigCommit(p)
		// Self-healing: a re-elected leader whose FedAvg-layer node is
		// still down revives it when the layer is leaderless — with no
		// FedAvg leader alive, the join protocol cannot commit the
		// membership change, so waiting on it would stall forever.
		if p.det != nil && p.fedHost != nil && p.fedHost.Down() && s.FedAvgLeader() == raft.None {
			if err := s.ReviveFedNode(p.ID); err == nil {
				s.record(EvFedRevived, p.ID, p.Subgroup)
			}
		}
	}
	p.subHost.OnCommit = func(e raft.Entry) {
		if e.Type != raft.EntryNormal || !strings.HasPrefix(string(e.Data), fedConfigPrefix) {
			return
		}
		var cfg fedConfigEntry
		if err := json.Unmarshal(e.Data[len(fedConfigPrefix):], &cfg); err != nil {
			return
		}
		p.fedConfig = cfg.Members
	}
	p.subHost.OnSnapshot = func(snap *raft.Snapshot) {
		// Restore the state machine (the FedAvg-layer configuration)
		// from a compacted log prefix.
		var cfg fedConfigEntry
		if err := json.Unmarshal(snap.Data, &cfg); err != nil {
			return
		}
		if len(cfg.Members) > 0 {
			p.fedConfig = cfg.Members
		}
	}
}

func (s *System) wireFedCallbacks(p *Peer) {
	p.fedHost.OnStateChange = func(st raft.State, term, leader uint64) {
		if s.observer.FedState != nil {
			s.observer.FedState(p.ID, st, term, leader)
		}
		if st == raft.Leader {
			s.record(EvFedAvgLeader, p.ID, p.Subgroup)
		}
	}
	p.fedHost.OnCommit = func(e raft.Entry) {
		switch e.Type {
		case raft.EntryConfChange:
			cc, err := raft.DecodeConfChange(e.Data)
			if err != nil {
				return
			}
			if cc.Add && cc.NodeID == p.ID && !p.joined {
				p.joined = true
				s.record(EvJoinedFedAvg, p.ID, p.Subgroup)
			}
		case raft.EntryNormal:
			// Directory updates ride the FedAvg-layer log as complete
			// KindDirectory wire frames (churn.go).
			s.applyDirectoryEntry(p, e.Data)
		}
	}
}

// scheduleConfigCommit periodically commits the FedAvg-layer membership
// to the subgroup log while p leads its subgroup and knows the layer.
func (s *System) scheduleConfigCommit(p *Peer) {
	commit := func() {
		if p.Down() || !p.IsSubgroupLeader() || p.fedHost == nil {
			return
		}
		cfg := fedConfigEntry{Members: p.fedHost.Node.Members()}
		b, err := json.Marshal(cfg)
		if err != nil {
			return
		}
		if err := p.subHost.Node.Propose(append([]byte(fedConfigPrefix), b...)); err == nil {
			p.subHost.Pump()
		}
	}
	if p.cfgLoop {
		return
	}
	p.cfgLoop = true
	var loop func()
	loop = func() {
		if p.Down() || !p.IsSubgroupLeader() {
			p.cfgLoop = false // a future re-election re-arms the loop
			return
		}
		commit()
		s.Sim.Schedule(s.opts.ConfigCommitInterval, loop)
	}
	loop()
}

// startJoin runs the join protocol: poll the known FedAvg members for a
// leader; when one responds, ask it to add us via a membership change.
// Retries every JoinPollInterval until the addition commits.
func (s *System) startJoin(p *Peer) {
	if p.joinLoop {
		return
	}
	p.joinLoop = true
	var attempt func()
	attempt = func() {
		if p.Down() || p.joined || !p.IsSubgroupLeader() {
			p.joinLoop = false
			return
		}
		candidates := p.fedConfig
		if len(candidates) == 0 {
			// No committed configuration (fresh system): fall back to
			// asking all current subgroup leaders.
			for g := range s.subGroups {
				if l := s.SubgroupLeader(g); l != raft.None {
					candidates = append(candidates, l)
				}
			}
		}
		// One-way app-level request to each candidate; a candidate that
		// is the FedAvg leader answers with an accept carrying the
		// current membership (one-way latency each direction).
		for _, c := range candidates {
			target := s.peers[c]
			if target == nil {
				continue
			}
			s.sendApp(func() {
				if target.Down() || target.fedHost == nil {
					return
				}
				if target.fedHost.Node.State() != raft.Leader {
					return
				}
				members := target.fedHost.Node.Members()
				if err := target.fedHost.Node.ProposeConfChange(raft.ConfChange{Add: true, NodeID: p.ID}); err != nil {
					return
				}
				target.fedHost.Pump()
				// Accept response back to the joiner.
				s.sendApp(func() {
					if p.Down() || p.joined {
						return
					}
					_ = s.createFedNode(p, members)
				})
			})
		}
		s.Sim.Schedule(s.opts.JoinPollInterval, attempt)
	}
	attempt()
}

// sendApp delivers an application-level (non-Raft) message after the
// one-way link latency.
func (s *System) sendApp(fn func()) {
	s.Sim.Schedule(s.opts.Latency, fn)
}

// CrashPeer fails a peer: its subgroup host and (if present) its
// FedAvg-layer host stop immediately.
func (s *System) CrashPeer(id uint64) error {
	p := s.peers[id]
	if p == nil {
		return fmt.Errorf("cluster: unknown peer %d", id)
	}
	p.subHost.Crash()
	if p.fedHost != nil {
		p.fedHost.Crash()
	}
	return nil
}

// RestartPeer revives a crashed peer from its persisted subgroup state:
// it rejoins its subgroup as a follower and catches up (Sec. III-C,
// "a crashed server [can] rejoin the cluster at any time"). Its FedAvg
// membership is only revived if it is elected subgroup leader again.
func (s *System) RestartPeer(id uint64) error {
	p := s.peers[id]
	if p == nil {
		return fmt.Errorf("cluster: unknown peer %d", id)
	}
	if !p.Down() {
		return fmt.Errorf("cluster: peer %d is not down", id)
	}
	cfg := s.raftFlags(raft.Config{
		ID:              p.ID,
		ElectionTickMin: s.opts.ElectionTickMin,
		ElectionTickMax: s.opts.ElectionTickMax,
		HeartbeatTick:   s.opts.HeartbeatTick,
		Rng:             rand.New(rand.NewSource(s.opts.Seed*4000 + int64(p.ID))),
		Telemetry:       s.opts.Telemetry,
	})
	if s.opts.SnapshotThreshold > 0 {
		cfg.SnapshotThreshold = s.opts.SnapshotThreshold
		cfg.SnapshotState = func() []byte {
			b, err := json.Marshal(fedConfigEntry{Members: p.fedConfig})
			if err != nil {
				return nil
			}
			return b
		}
	}
	if err := p.subHost.Restart(cfg); err != nil {
		return err
	}
	// The restarted peer is a follower; if it previously joined the
	// FedAvg layer that membership only matters again once re-elected.
	p.joined = false
	if p.rtt != nil {
		// RTT history is in-memory state the reborn process cannot have.
		p.rtt.Reset()
	}
	if p.det != nil {
		// A reborn node has no basis for its old verdicts: restart the
		// detector Up with fresh timers and re-arm its tick loop.
		p.det.Reset()
		p.det.SetWatch(nil)
		s.scheduleDetectorTick(p)
	}
	return nil
}

// ReviveFedNode restarts a live peer's crashed FedAvg-layer raft node
// from its persisted state without waiting for the peer to be re-elected
// subgroup leader. This is the disaster-recovery path for a FedAvg layer
// that lost a majority of its members at once — outside the paper's
// ≤ k−1 failure assumption, where the join protocol alone cannot make
// progress because no FedAvg leader survives to commit membership
// changes. The revived node rejoins as a follower with its durable
// term/vote/log intact; once the layer regains quorum, membership churn
// resumes through the normal join protocol. No-op for peers that never
// had a FedAvg-layer node or whose node is live; nodes that crashed
// before persisting anything cannot be revived (they also never voted,
// so skipping them is safe).
func (s *System) ReviveFedNode(id uint64) error {
	p := s.peers[id]
	if p == nil {
		return fmt.Errorf("cluster: unknown peer %d", id)
	}
	if p.Down() {
		return fmt.Errorf("cluster: peer %d is down", id)
	}
	if p.fedHost == nil || !p.fedHost.Down() {
		return nil
	}
	return p.fedHost.Restart(s.raftFlags(raft.Config{
		ID:              p.ID,
		ElectionTickMin: s.opts.ElectionTickMin,
		ElectionTickMax: s.opts.ElectionTickMax,
		HeartbeatTick:   s.opts.HeartbeatTick,
		Rng:             rand.New(rand.NewSource(s.opts.Seed*3000 + int64(p.ID))),
		Telemetry:       s.opts.Telemetry,
	}))
}

// WaitSubgroupLeader runs the simulation until subgroup g has a live
// leader different from exclude, returning its ID and the time, or an
// error at the deadline.
func (s *System) WaitSubgroupLeader(g int, exclude uint64, limit simnet.Duration) (uint64, simnet.Time, error) {
	deadline := s.Sim.Now() + simnet.Time(limit)
	ok := s.Sim.RunWhileNot(func() bool {
		l := s.SubgroupLeader(g)
		return l != raft.None && l != exclude
	}, deadline)
	if !ok {
		return raft.None, 0, fmt.Errorf("cluster: subgroup %d did not elect a new leader within %v ms", g, limit.Ms())
	}
	return s.SubgroupLeader(g), s.Sim.Now(), nil
}

// WaitJoined runs the simulation until peer id has joined the FedAvg
// layer (its membership change committed and observed).
func (s *System) WaitJoined(id uint64, limit simnet.Duration) (simnet.Time, error) {
	deadline := s.Sim.Now() + simnet.Time(limit)
	p := s.peers[id]
	if p == nil {
		return 0, fmt.Errorf("cluster: unknown peer %d", id)
	}
	ok := s.Sim.RunWhileNot(func() bool { return p.joined }, deadline)
	if !ok {
		return 0, fmt.Errorf("cluster: peer %d did not join the FedAvg layer within %v ms", id, limit.Ms())
	}
	return s.Sim.Now(), nil
}

// WaitFedAvgLeader runs the simulation until the FedAvg layer has a live
// leader different from exclude.
func (s *System) WaitFedAvgLeader(exclude uint64, limit simnet.Duration) (uint64, simnet.Time, error) {
	deadline := s.Sim.Now() + simnet.Time(limit)
	ok := s.Sim.RunWhileNot(func() bool {
		l := s.FedAvgLeader()
		return l != raft.None && l != exclude
	}, deadline)
	if !ok {
		return raft.None, 0, fmt.Errorf("cluster: FedAvg layer did not elect a new leader within %v ms", limit.Ms())
	}
	return s.FedAvgLeader(), s.Sim.Now(), nil
}

// FirstEventAfter returns the first recorded event of the given kind at
// or after t (optionally filtered to one subgroup with sub ≥ 0).
func (s *System) FirstEventAfter(t simnet.Time, kind EventKind, sub int) (Event, bool) {
	for _, e := range s.events {
		if e.At >= t && e.Kind == kind && (sub < 0 || e.Subgroup == sub) {
			return e, true
		}
	}
	return Event{}, false
}
