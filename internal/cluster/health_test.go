package cluster

import (
	"reflect"
	"testing"

	"repro/internal/health"
	"repro/internal/raft"
	"repro/internal/simnet"
)

// detectorOpts is paperOpts plus the self-healing layer with tight
// thresholds: Down after 2 heartbeat intervals of silence (2·T/3),
// strictly below the U(T, 2T) election-timeout floor, so a proactive
// campaign always has room to beat the timeout path.
func detectorOpts(tMs int, seed int64) Options {
	o := paperOpts(tMs, seed)
	o.Detector = true
	o.DetectorSuspectTicks = 1
	o.DetectorDownTicks = 2
	return o
}

// crashNonFedLeader picks a subgroup whose leader is not the FedAvg
// leader, crashes that leader, and returns (subgroup, old leader, crash
// time). Keeping the FedAvg leader alive isolates the measurement to
// subgroup recovery + the join protocol.
func crashNonFedLeader(t *testing.T, s *System) (int, uint64, simnet.Time) {
	t.Helper()
	fed := s.FedAvgLeader()
	for g := 0; g < s.NumSubgroups(); g++ {
		if l := s.SubgroupLeader(g); l != raft.None && l != fed {
			at := s.Sim.Now()
			if err := s.CrashPeer(l); err != nil {
				t.Fatal(err)
			}
			return g, l, at
		}
	}
	t.Fatal("no subgroup leader distinct from the FedAvg leader")
	return 0, 0, 0
}

// recoverAfterLeaderCrash measures the virtual time from a subgroup
// leader crash until the replacement leader's FedAvg membership commits.
func recoverAfterLeaderCrash(t *testing.T, s *System) (simnet.Duration, int, simnet.Time) {
	t.Helper()
	g, old, crashAt := crashNonFedLeader(t, s)
	repl, _, err := s.WaitSubgroupLeader(g, old, 10*simnet.Second)
	if err != nil {
		t.Fatal(err)
	}
	joinedAt, err := s.WaitJoined(repl, 20*simnet.Second)
	if err != nil {
		t.Fatal(err)
	}
	return simnet.Duration(joinedAt - crashAt), g, crashAt
}

// TestDetectorBeatsTimeoutRecovery runs the same leader-crash scenario
// at the same seed with and without the failure detector. The detector
// path must reach a new joined FedAvg member strictly faster in virtual
// time: its Down verdict lands after ~2·T/3 of silence while the
// timeout-only path waits out a U(T, 2T) draw.
func TestDetectorBeatsTimeoutRecovery(t *testing.T) {
	const seed = 7

	base := mustBootstrap(t, paperOpts(150, seed))
	baseDur, _, baseCrash := recoverAfterLeaderCrash(t, base)
	if _, ok := base.FirstEventAfter(baseCrash, EvProactiveCampaign, -1); ok {
		t.Fatal("timeout-only run must not record proactive campaigns")
	}

	det := mustBootstrap(t, detectorOpts(150, seed))
	detDur, g, detCrash := recoverAfterLeaderCrash(t, det)
	if detDur >= baseDur {
		t.Fatalf("detector recovery %v ms not faster than timeout-only %v ms",
			detDur.Ms(), baseDur.Ms())
	}

	// The win must come from the mechanism under test: a proactive
	// campaign in the crashed subgroup, before its new leader emerged.
	camp, ok := det.FirstEventAfter(detCrash, EvProactiveCampaign, g)
	if !ok {
		t.Fatal("detector run recorded no proactive campaign in the crashed subgroup")
	}
	lead, ok := det.FirstEventAfter(detCrash, EvSubgroupLeader, g)
	if !ok {
		t.Fatal("no new subgroup leader event recorded")
	}
	if camp.At > lead.At {
		t.Fatalf("proactive campaign at %v ms after new leader at %v ms", camp.At.Ms(), lead.At.Ms())
	}

	// Shadow-ledger invariant: every Down verdict saw a genuine silence
	// gap. A Down with ShadowGapUs below threshold would mean the
	// detector condemned a peer whose messages were still arriving.
	downs := 0
	for _, tr := range det.HealthTransitions() {
		if tr.To != health.Down {
			continue
		}
		downs++
		if tr.ShadowGapUs < tr.ThresholdUs {
			t.Fatalf("false Down: owner %d condemned %d with shadow gap %dµs < threshold %dµs",
				tr.Owner, tr.Peer, tr.ShadowGapUs, tr.ThresholdUs)
		}
	}
	if downs == 0 {
		t.Fatal("detector run recorded no Down verdicts")
	}
}

// TestDetectorRecoveryDeterministicBySeed: two systems at the same seed
// replay the same crash and produce identical event timelines and
// identical detector verdict streams.
func TestDetectorRecoveryDeterministicBySeed(t *testing.T) {
	run := func() ([]Event, []HealthTransition) {
		s := mustBootstrap(t, detectorOpts(150, 11))
		recoverAfterLeaderCrash(t, s)
		return s.Events(), s.HealthTransitions()
	}
	ev1, tr1 := run()
	ev2, tr2 := run()
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("event timelines diverge at same seed:\n%v\n%v", ev1, ev2)
	}
	if !reflect.DeepEqual(tr1, tr2) {
		t.Fatalf("health transitions diverge at same seed:\n%v\n%v", tr1, tr2)
	}
}

// TestDetectorSteadyStateQuiet: with no faults injected after bootstrap,
// the detectors must issue no Down verdicts and end converged — regular
// heartbeat traffic keeps every watched peer Up.
func TestDetectorSteadyStateQuiet(t *testing.T) {
	s := mustBootstrap(t, detectorOpts(150, 3))
	mark := len(s.HealthTransitions())
	s.Sim.RunFor(3 * simnet.Second)
	for _, tr := range s.HealthTransitions()[mark:] {
		if tr.To == health.Down {
			t.Fatalf("steady state produced a Down verdict: owner %d about %d", tr.Owner, tr.Peer)
		}
	}
	if !s.DetectorsConverged() {
		t.Fatal("detectors not converged in steady state")
	}
	for _, id := range s.PeerIDs() {
		if s.Peer(id).Detector() == nil {
			t.Fatalf("peer %d has no detector", id)
		}
	}
}

// TestAutoFedReviveAfterTotalFedLoss: both FedAvg members of a two-
// subgroup system crash at once (outside the paper's ≤ k−1 assumption).
// After restart each peer re-elects itself subgroup leader; with the
// detector enabled the leaderless FedAvg layer is revived automatically
// instead of requiring the manual ReviveFedNode call.
func TestAutoFedReviveAfterTotalFedLoss(t *testing.T) {
	o := detectorOpts(150, 5)
	o.NumSubgroups = 0
	o.SubgroupSize = 0
	o.Sizes = []int{1, 1}
	s := mustBootstrap(t, o)

	for _, id := range s.PeerIDs() {
		if err := s.CrashPeer(id); err != nil {
			t.Fatal(err)
		}
	}
	s.Sim.RunFor(500 * simnet.Millisecond)
	if l := s.FedAvgLeader(); l != raft.None {
		t.Fatalf("FedAvg leader %d survived a total crash", l)
	}
	for _, id := range s.PeerIDs() {
		if err := s.RestartPeer(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.WaitFedAvgLeader(raft.None, 20*simnet.Second); err != nil {
		t.Fatalf("FedAvg layer did not self-heal: %v", err)
	}
	if _, ok := s.FirstEventAfter(0, EvFedRevived, -1); !ok {
		t.Fatal("no fed-revived event recorded")
	}
}

// TestDegradedSubgroups: quorum math over live peers, and recovery when
// a member returns.
func TestDegradedSubgroups(t *testing.T) {
	s := mustBootstrap(t, Options{
		Sizes:           []int{3, 3},
		ElectionTickMin: 150,
		ElectionTickMax: 300,
		Latency:         15 * simnet.Millisecond,
		Seed:            9,
	})
	if got := s.DegradedSubgroups(); len(got) != 0 {
		t.Fatalf("healthy system reports degraded subgroups %v", got)
	}
	// Crash 2 of 3 peers in subgroup 1: its live count (1) drops below
	// quorum (2).
	ids := s.SubgroupPeers(1)
	for _, id := range ids[:2] {
		if err := s.CrashPeer(id); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.DegradedSubgroups(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("DegradedSubgroups = %v, want [1]", got)
	}
	if err := s.RestartPeer(ids[0]); err != nil {
		t.Fatal(err)
	}
	if got := s.DegradedSubgroups(); len(got) != 0 {
		t.Fatalf("subgroup still degraded after restart: %v", got)
	}
}
