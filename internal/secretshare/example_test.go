package secretshare_test

import (
	"fmt"
	"math/rand"

	"repro/internal/secretshare"
)

// Splitting a weight vector into additive shares and reconstructing it.
func ExampleMaskDivider_Divide() {
	rng := rand.New(rand.NewSource(1))
	secret := []float64{10, 20, 30}
	shares, err := secretshare.MaskDivider{Scale: 50}.Divide(secret, 3, rng)
	if err != nil {
		panic(err)
	}
	back, err := secretshare.Reconstruct(shares)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.0f\n", back)
	// Output: [10 20 30]
}

// Under k-out-of-n replication, each peer holds n−k+1 consecutive
// shares, so any k survivors still cover all shares.
func ExampleReplicaIndices() {
	for peer := 0; peer < 3; peer++ {
		idx, _ := secretshare.ReplicaIndices(peer, 3, 2)
		fmt.Println(peer, idx)
	}
	// Output:
	// 0 [0 1]
	// 1 [1 2]
	// 2 [2 0]
}

// HoldersOf answers the recovery question of the paper's Alg. 4: whom
// can the leader ask for a crashed peer's subtotal?
func ExampleHoldersOf() {
	holders, _ := secretshare.HoldersOf(2, 3, 2)
	fmt.Println(holders)
	// Output: [1 2]
}
