package secretshare

import (
	"fmt"
	"math/rand"
	"testing"
)

// The Divide benchmarks sweep the weight-vector dimension across three
// decades and reuse the caller-owned scratch, so ns/op isolates the
// share kernel and allocs/op stays flat — the bench-check pair
// allocs:DivideParallel/dim1e6=DivideSerial/dim1e6@1.0 gates that the
// parallel kernel adds no per-call allocations over the serial one.

const benchShares = 10

var benchDims = []struct {
	name string
	dim  int
}{
	{"dim1e3", 1_000},
	{"dim1e5", 100_000},
	{"dim1e6", 1_000_000},
}

func benchDivideInto(b *testing.B, d Divider, dim int) {
	rng := rand.New(rand.NewSource(1))
	w := make([]float64, dim)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	var (
		block []float64
		views [][]float64
		err   error
	)
	b.SetBytes(int64(8 * dim * benchShares))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		views, block, err = d.DivideInto(w, benchShares, rng, block, views)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDivideSerial(b *testing.B) {
	for _, c := range benchDims {
		b.Run(c.name, func(b *testing.B) { benchDivideInto(b, ScalarDivider{}, c.dim) })
	}
}

func BenchmarkDivideParallel(b *testing.B) {
	for _, c := range benchDims {
		b.Run(c.name, func(b *testing.B) { benchDivideInto(b, ScalarDivider{Parallel: true}, c.dim) })
	}
}

func BenchmarkDivideInto(b *testing.B) {
	for _, c := range benchDims {
		for _, d := range []Divider{ScalarDivider{}, MaskDivider{Scale: 1}} {
			name := "scalar"
			if _, ok := d.(MaskDivider); ok {
				name = "mask"
			}
			b.Run(fmt.Sprintf("%s/%s", name, c.name), func(b *testing.B) { benchDivideInto(b, d, c.dim) })
		}
	}
}
