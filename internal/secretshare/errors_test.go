package secretshare

import (
	"math/rand"
	"testing"
)

// Error-path suite: malformed arguments must be rejected before any
// arithmetic, and scratch reuse across shapes must never let stale data
// leak into a fresh division.

func TestReconstructErrorPaths(t *testing.T) {
	cases := []struct {
		name   string
		shares [][]float64
	}{
		{"no shares", nil},
		{"empty slice", [][]float64{}},
		{"second share longer", [][]float64{{1, 2}, {1, 2, 3}}},
		{"second share shorter", [][]float64{{1, 2, 3}, {1, 2}}},
		{"later share mismatched", [][]float64{{1}, {2}, {3, 4}}},
	}
	for _, tc := range cases {
		if out, err := Reconstruct(tc.shares); err == nil {
			t.Errorf("%s: accepted, got %v", tc.name, out)
		}
	}
	// Zero-dimension shares are degenerate but consistent: the sum of
	// nothing is nothing, not an error.
	out, err := Reconstruct([][]float64{{}, {}})
	if err != nil || len(out) != 0 {
		t.Fatalf("zero-dim shares: out %v err %v", out, err)
	}
}

func TestReplicationParameterErrors(t *testing.T) {
	// k > n, k = 0, and negative values must be rejected by every entry
	// point that takes the pair.
	bad := []struct{ n, k int }{
		{5, 6},  // k > n
		{5, 0},  // k = 0
		{5, -1}, // negative k
		{0, 0},  // empty group
		{-3, 1}, // negative n
	}
	for _, p := range bad {
		if _, err := ReplicaIndices(0, p.n, p.k); err == nil {
			t.Errorf("ReplicaIndices accepted n=%d k=%d", p.n, p.k)
		}
		if _, err := HoldersOf(0, p.n, p.k); err == nil {
			t.Errorf("HoldersOf accepted n=%d k=%d", p.n, p.k)
		}
		if _, err := CoversAllShares([]int{0}, p.n, p.k); err == nil {
			t.Errorf("CoversAllShares accepted n=%d k=%d", p.n, p.k)
		}
	}
	// Out-of-range peer / share index with valid (n, k).
	if _, err := ReplicaIndices(5, 5, 3); err == nil {
		t.Error("ReplicaIndices accepted peer = n")
	}
	if _, err := ReplicaIndices(-1, 5, 3); err == nil {
		t.Error("ReplicaIndices accepted negative peer")
	}
	if _, err := HoldersOf(5, 5, 3); err == nil {
		t.Error("HoldersOf accepted share index = n")
	}
	if _, err := HoldersOf(-1, 5, 3); err == nil {
		t.Error("HoldersOf accepted negative share index")
	}
}

func TestDivideIntoArgumentErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []Divider{ScalarDivider{}, MaskDivider{}} {
		if _, _, err := d.DivideInto(nil, 3, rng, nil, nil); err == nil {
			t.Errorf("%s: accepted empty secret", d.Name())
		}
		if _, _, err := d.DivideInto([]float64{1, 2}, 0, rng, nil, nil); err == nil {
			t.Errorf("%s: accepted n = 0", d.Name())
		}
		if _, _, err := d.DivideInto([]float64{1, 2}, -2, rng, nil, nil); err == nil {
			t.Errorf("%s: accepted negative n", d.Name())
		}
	}
}

// TestDirtyScratchReuseAcrossShapes drives the same scratch block and
// views through divisions of growing and shrinking (n, dim) shapes. The
// stale contents of a larger previous round must never reach the output:
// every share must carry exactly this round's fractions, summing to w.
func TestDirtyScratchReuseAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []struct{ n, dim int }{
		{6, 8}, {3, 2}, {5, 5}, {2, 16}, {6, 8}, {1, 1}, {4, 3},
	}
	for _, d := range []Divider{ScalarDivider{}, MaskDivider{Scale: 4}} {
		var block []float64
		var views [][]float64
		for _, sh := range shapes {
			w := make([]float64, sh.dim)
			for j := range w {
				w[j] = rng.NormFloat64() * 3
			}
			// Poison the scratch so any stale read is visible.
			for i := range block {
				block[i] = 1e30
			}
			shares, newBlock, err := d.DivideInto(w, sh.n, rng, block, views)
			if err != nil {
				t.Fatalf("%s %+v: %v", d.Name(), sh, err)
			}
			block, views = newBlock, shares
			if len(shares) != sh.n {
				t.Fatalf("%s %+v: %d shares", d.Name(), sh, len(shares))
			}
			got, err := Reconstruct(shares)
			if err != nil {
				t.Fatalf("%s %+v: reconstruct: %v", d.Name(), sh, err)
			}
			for j := range w {
				if diff := got[j] - w[j]; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("%s %+v: coordinate %d off by %g (stale scratch leaked?)", d.Name(), sh, j, diff)
				}
			}
			// Shares must also be exactly dim long — a view clipped from a
			// previous, wider round would smuggle extra coordinates.
			for i, s := range shares {
				if len(s) != sh.dim {
					t.Fatalf("%s %+v: share %d has %d coordinates", d.Name(), sh, i, len(s))
				}
			}
		}
	}
}

// TestViewAppendCannotCorruptNeighbour pins the capacity clipping in
// sliceBlock: growing one share view via append must copy out, not
// overwrite the adjacent share in the shared backing block.
func TestViewAppendCannotCorruptNeighbour(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	shares, _, err := ScalarDivider{}.DivideInto([]float64{1, 2, 3}, 4, rng, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), shares[1]...)
	_ = append(shares[0], 99) // would land on shares[1][0] without the cap clip
	for j, v := range shares[1] {
		if v != before[j] {
			t.Fatalf("append through share 0 corrupted share 1 at %d: %g → %g", j, before[j], v)
		}
	}
}
