// Package secretshare implements the additive secret-sharing primitives
// underlying Secure Average Computation:
//
//   - DivideScalar — the paper's Alg. 1: the weight vector is split into N
//     shares by N normalized random fractions, par_w_i = prn_i·w.
//   - DivideMask — standard additive masking: the first N−1 shares are
//     uniform random vectors and the last is w minus their sum. Every
//     proper subset of shares is (information-theoretically) independent
//     of w, which is strictly stronger than Alg. 1's collinear shares.
//   - Replicated k-out-of-n share assignment (Ito et al. [7], as used by
//     the paper's Alg. 4): peer j holds the n−k+1 consecutive shares
//     j, j+1, …, j+n−k (mod n), so any k surviving peers still cover all
//     n shares.
//
// All shares reconstruct exactly: Σ_i share_i = w (up to floating-point
// rounding, which the tests bound).
package secretshare

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Divider splits a secret vector into n additive shares.
type Divider interface {
	// Divide returns n share vectors whose elementwise sum is w.
	Divide(w []float64, n int, rng *rand.Rand) ([][]float64, error)
	// DivideInto is Divide with caller-owned scratch: all n shares are
	// written into one flat block (regrown only when too small) and the
	// returned views are slices of it, one per share. It returns the
	// views, the backing block (hand both back on the next call to
	// reuse them), and an error. Given the same rng state it produces
	// bit-identical shares to Divide.
	DivideInto(w []float64, n int, rng *rand.Rand, block []float64, views [][]float64) ([][]float64, []float64, error)
	// Name identifies the scheme for logs and benchmarks.
	Name() string
}

// sliceBlock carves an n×dim flat block into n full-capacity views.
// Both scratch arguments are reused when large enough. Views are
// capacity-clipped so an append through one share cannot corrupt its
// neighbour.
func sliceBlock(block []float64, views [][]float64, n, dim int) ([]float64, [][]float64) {
	if cap(block) < n*dim {
		block = make([]float64, n*dim)
	}
	block = block[:n*dim]
	if cap(views) < n {
		views = make([][]float64, n)
	}
	views = views[:n]
	for i := range views {
		views[i] = block[i*dim : (i+1)*dim : (i+1)*dim]
	}
	return block, views
}

// ScalarDivider is the paper's Alg. 1: draw n random numbers rn_i from
// (0,1), normalize them to fractions prn_i = rn_i/Σrn, and emit shares
// prn_i·w. Shares are collinear with w; reconstruction is exact in
// expectation and to rounding in practice.
//
// With Parallel set, the share fill fans out over the shared tensor
// worker pool, split by coordinate panels. The n RNG draws happen
// serially up front, so the draw order — and therefore every share and
// the rng state left behind — is bit-identical to the serial kernel at
// any worker count.
type ScalarDivider struct {
	Parallel bool
}

// Name implements Divider.
func (ScalarDivider) Name() string { return "scalar (Alg. 1)" }

// Divide implements Divider. All n shares live in one backing array —
// one bulk allocation instead of n per-share ones.
func (d ScalarDivider) Divide(w []float64, n int, rng *rand.Rand) ([][]float64, error) {
	shares, _, err := d.DivideInto(w, n, rng, nil, nil)
	return shares, err
}

// DivideInto implements Divider.
func (d ScalarDivider) DivideInto(w []float64, n int, rng *rand.Rand, block []float64, views [][]float64) ([][]float64, []float64, error) {
	if err := checkDivide(w, n); err != nil {
		return nil, nil, err
	}
	rn := make([]float64, n)
	sum := 0.0
	for i := range rn {
		// (0,1]: avoid an all-zero draw making the normalizer zero.
		rn[i] = 1 - rng.Float64()
		sum += rn[i]
	}
	block, shares := sliceBlock(block, views, n, len(w))
	// With a serial pool budget the fan-out cannot help; skipping it also
	// skips the closure allocation, so Parallel is alloc-free to enable.
	if d.Parallel && tensor.Parallelism() > 1 {
		tensor.ParallelRows(len(w), func(lo, hi int) {
			for i, s := range shares {
				f := rn[i] / sum
				for j := lo; j < hi; j++ {
					s[j] = f * w[j]
				}
			}
		})
		return shares, block, nil
	}
	for i, s := range shares {
		f := rn[i] / sum
		for j, v := range w {
			s[j] = f * v
		}
	}
	return shares, block, nil
}

// MaskDivider is standard additive secret sharing: shares 0..n−2 are
// uniform random vectors in [−Scale, Scale) and share n−1 is
// w − Σ(others). Scale should dominate the magnitude of the weights; the
// zero value uses Scale 1.
//
// With Parallel set, the RNG draws still happen serially — in exactly
// the serial kernel's (share-major, coordinate-minor) order, leaving the
// rng in the same state — and only the elementwise transform plus the
// residual subtraction fan out over the tensor worker pool. Each column
// subtracts its masks in ascending share order just like the serial
// loop, so the shares are bit-identical at any worker count.
type MaskDivider struct {
	Scale    float64
	Parallel bool
}

// Name implements Divider.
func (m MaskDivider) Name() string { return "mask (uniform additive)" }

// Divide implements Divider. All n shares live in one backing array —
// one bulk allocation instead of n per-share ones.
func (m MaskDivider) Divide(w []float64, n int, rng *rand.Rand) ([][]float64, error) {
	shares, _, err := m.DivideInto(w, n, rng, nil, nil)
	return shares, err
}

// DivideInto implements Divider.
func (m MaskDivider) DivideInto(w []float64, n int, rng *rand.Rand, block []float64, views [][]float64) ([][]float64, []float64, error) {
	if err := checkDivide(w, n); err != nil {
		return nil, nil, err
	}
	scale := m.Scale
	if scale == 0 {
		scale = 1
	}
	block, shares := sliceBlock(block, views, n, len(w))
	last := shares[n-1]
	if !m.Parallel || tensor.Parallelism() == 1 {
		copy(last, w)
		for i := 0; i < n-1; i++ {
			s := shares[i]
			for j := range s {
				r := (rng.Float64()*2 - 1) * scale
				s[j] = r
				last[j] -= r
			}
		}
		return shares, block, nil
	}
	// Parallel: draw the raw uniforms serially in the same
	// (share-major, coordinate-minor) order as the serial loop, then fan
	// the affine transform and the residual accumulation out by column.
	for i := 0; i < n-1; i++ {
		s := shares[i]
		for j := range s {
			s[j] = rng.Float64()
		}
	}
	tensor.ParallelRows(len(w), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			acc := w[j]
			for i := 0; i < n-1; i++ {
				r := (shares[i][j]*2 - 1) * scale
				shares[i][j] = r
				acc -= r
			}
			last[j] = acc
		}
	})
	return shares, block, nil
}

func checkDivide(w []float64, n int) error {
	if n < 1 {
		return fmt.Errorf("secretshare: cannot split into %d shares", n)
	}
	if len(w) == 0 {
		return fmt.Errorf("secretshare: empty secret")
	}
	return nil
}

// Reconstruct sums share vectors back into the secret.
func Reconstruct(shares [][]float64) ([]float64, error) {
	if len(shares) == 0 {
		return nil, fmt.Errorf("secretshare: no shares")
	}
	dim := len(shares[0])
	out := make([]float64, dim)
	for i, s := range shares {
		if len(s) != dim {
			return nil, fmt.Errorf("secretshare: share %d has %d elements, want %d", i, len(s), dim)
		}
		for j, v := range s {
			out[j] += v
		}
	}
	return out, nil
}

// ReplicaIndices returns the share indices peer holds under k-out-of-n
// replication: the n−k+1 consecutive indices peer, peer+1, …, peer+n−k,
// all mod n. With k = n each peer holds exactly its own share, recovering
// plain n-out-of-n sharing (Alg. 2).
func ReplicaIndices(peer, n, k int) ([]int, error) {
	out, err := AppendReplicaIndices(nil, peer, n, k)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AppendReplicaIndices appends peer's replica set to dst and returns the
// extended slice — the allocation-free form callers with a reusable
// backing array (the SAC scratch replica cache) build on. dst is
// returned unchanged on error.
func AppendReplicaIndices(dst []int, peer, n, k int) ([]int, error) {
	if err := checkKN(n, k); err != nil {
		return dst, err
	}
	if peer < 0 || peer >= n {
		return dst, fmt.Errorf("secretshare: peer %d out of [0,%d)", peer, n)
	}
	for j := peer; j <= peer+n-k; j++ {
		dst = append(dst, j%n)
	}
	return dst, nil
}

// HoldersOf returns the peers that hold share index idx under k-out-of-n
// replication: idx−(n−k), …, idx (mod n). Exactly n−k+1 peers hold each
// share, so the share survives any n−k simultaneous crashes.
func HoldersOf(idx, n, k int) ([]int, error) {
	if err := checkKN(n, k); err != nil {
		return nil, err
	}
	if idx < 0 || idx >= n {
		return nil, fmt.Errorf("secretshare: share %d out of [0,%d)", idx, n)
	}
	out := make([]int, 0, n-k+1)
	for j := idx - (n - k); j <= idx; j++ {
		out = append(out, ((j%n)+n)%n)
	}
	return out, nil
}

func checkKN(n, k int) error {
	if n < 1 {
		return fmt.Errorf("secretshare: n = %d", n)
	}
	if k < 1 || k > n {
		return fmt.Errorf("secretshare: threshold k = %d out of [1,%d]", k, n)
	}
	return nil
}

// CoversAllShares reports whether the given set of alive peers jointly
// holds every one of the n shares under k-out-of-n replication.
func CoversAllShares(alive []int, n, k int) (bool, error) {
	if err := checkKN(n, k); err != nil {
		return false, err
	}
	held := make([]bool, n)
	for _, p := range alive {
		idx, err := ReplicaIndices(p, n, k)
		if err != nil {
			return false, err
		}
		for _, i := range idx {
			held[i] = true
		}
	}
	for _, h := range held {
		if !h {
			return false, nil
		}
	}
	return true, nil
}
