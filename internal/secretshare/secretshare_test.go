package secretshare

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(r *rand.Rand, dim int) []float64 {
	w := make([]float64, dim)
	for i := range w {
		w[i] = r.NormFloat64() * 10
	}
	return w
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestDividersReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []Divider{ScalarDivider{}, MaskDivider{Scale: 50}} {
		for _, n := range []int{1, 2, 3, 5, 10} {
			w := randVec(rng, 32)
			shares, err := d.Divide(w, n, rng)
			if err != nil {
				t.Fatalf("%s n=%d: %v", d.Name(), n, err)
			}
			if len(shares) != n {
				t.Fatalf("%s: %d shares, want %d", d.Name(), len(shares), n)
			}
			got, err := Reconstruct(shares)
			if err != nil {
				t.Fatal(err)
			}
			if diff := maxAbsDiff(got, w); diff > 1e-9 {
				t.Fatalf("%s n=%d: reconstruction off by %v", d.Name(), n, diff)
			}
		}
	}
}

// Property: reconstruction is exact (within fp rounding) for arbitrary
// seeds and share counts.
func TestDivideReconstructProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, dimRaw uint8) bool {
		n := int(nRaw%10) + 1
		dim := int(dimRaw%64) + 1
		rng := rand.New(rand.NewSource(seed))
		w := randVec(rng, dim)
		for _, d := range []Divider{ScalarDivider{}, MaskDivider{}} {
			shares, err := d.Divide(w, n, rng)
			if err != nil {
				return false
			}
			got, err := Reconstruct(shares)
			if err != nil {
				return false
			}
			if maxAbsDiff(got, w) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDivideErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, d := range []Divider{ScalarDivider{}, MaskDivider{}} {
		if _, err := d.Divide([]float64{1}, 0, rng); err == nil {
			t.Fatalf("%s: want error for n=0", d.Name())
		}
		if _, err := d.Divide(nil, 3, rng); err == nil {
			t.Fatalf("%s: want error for empty secret", d.Name())
		}
	}
	if _, err := Reconstruct(nil); err == nil {
		t.Fatal("want error reconstructing nothing")
	}
	if _, err := Reconstruct([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("want error for ragged shares")
	}
}

func TestMaskSharesLookRandom(t *testing.T) {
	// Any single mask share must not be collinear with the secret: its
	// correlation with w should be near zero, unlike ScalarDivider.
	rng := rand.New(rand.NewSource(3))
	w := randVec(rng, 4096)
	shares, err := MaskDivider{Scale: 10}.Divide(w, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	corr := func(a, b []float64) float64 {
		var sa, sb, sab, saa, sbb float64
		for i := range a {
			sa += a[i]
			sb += b[i]
			sab += a[i] * b[i]
			saa += a[i] * a[i]
			sbb += b[i] * b[i]
		}
		n := float64(len(a))
		cov := sab/n - sa/n*sb/n
		return cov / math.Sqrt((saa/n-sa/n*sa/n)*(sbb/n-sb/n*sb/n))
	}
	if c := math.Abs(corr(shares[0], w)); c > 0.1 {
		t.Fatalf("mask share correlates with secret: %v", c)
	}
	// The paper's scalar shares ARE collinear — document that contrast.
	sshares, err := ScalarDivider{}.Divide(w, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if c := corr(sshares[0], w); c < 0.99 {
		t.Fatalf("scalar share should be collinear with secret, corr=%v", c)
	}
}

func TestReplicaIndices(t *testing.T) {
	// 2-out-of-3 (the paper's Fig. 3): each peer holds 2 consecutive shares.
	for peer, want := range [][]int{{0, 1}, {1, 2}, {2, 0}} {
		got, err := ReplicaIndices(peer, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("peer %d: %v, want %v", peer, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("peer %d: %v, want %v", peer, got, want)
			}
		}
	}
	// n-out-of-n: exactly own share.
	got, err := ReplicaIndices(2, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("n-out-of-n indices = %v", got)
	}
}

func TestHoldersOfInverseOfReplicaIndices(t *testing.T) {
	for _, nk := range [][2]int{{3, 2}, {5, 3}, {5, 5}, {7, 4}, {10, 1}} {
		n, k := nk[0], nk[1]
		for idx := 0; idx < n; idx++ {
			holders, err := HoldersOf(idx, n, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(holders) != n-k+1 {
				t.Fatalf("share %d of %d-%d held by %d peers, want %d", idx, k, n, len(holders), n-k+1)
			}
			for _, h := range holders {
				ri, err := ReplicaIndices(h, n, k)
				if err != nil {
					t.Fatal(err)
				}
				found := false
				for _, i := range ri {
					if i == idx {
						found = true
					}
				}
				if !found {
					t.Fatalf("peer %d listed as holder of share %d but does not hold it", h, idx)
				}
			}
		}
	}
}

// Property: any set of ≥ k alive peers covers all shares; the fault
// tolerance guarantee of k-out-of-n SAC.
func TestAnyKPeersCoverAllShares(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%8) + 2
		k := int(kRaw)%n + 1
		rng := rand.New(rand.NewSource(seed))
		// Random subset of exactly k alive peers.
		perm := rng.Perm(n)
		alive := perm[:k]
		ok, err := CoversAllShares(alive, n, k)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFewerThanKMayNotCover(t *testing.T) {
	// k−1 consecutive peers never cover all shares for k < n... pick the
	// concrete 2-out-of-3 case: one peer holds 2 of 3 shares.
	ok, err := CoversAllShares([]int{0}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("single peer must not cover all 3 shares in 2-out-of-3")
	}
}

func TestKNValidation(t *testing.T) {
	if _, err := ReplicaIndices(0, 0, 1); err == nil {
		t.Fatal("want error for n=0")
	}
	if _, err := ReplicaIndices(0, 3, 4); err == nil {
		t.Fatal("want error for k>n")
	}
	if _, err := ReplicaIndices(3, 3, 2); err == nil {
		t.Fatal("want error for peer out of range")
	}
	if _, err := HoldersOf(-1, 3, 2); err == nil {
		t.Fatal("want error for share out of range")
	}
	if _, err := HoldersOf(0, 3, 0); err == nil {
		t.Fatal("want error for k=0")
	}
	if _, err := CoversAllShares(nil, 3, 9); err == nil {
		t.Fatal("want error for bad k")
	}
}

func BenchmarkDivideVariants(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	w := randVec(rng, 1<<16)
	for _, d := range []Divider{ScalarDivider{}, MaskDivider{Scale: 10}} {
		b.Run(d.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := d.Divide(w, 5, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
