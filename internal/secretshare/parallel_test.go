package secretshare

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// TestParallelDivideBitIdentical pins the batched-kernel contract: at
// every worker budget, the parallel dividers produce exactly the bytes
// the serial ones do — same shares bit for bit, same rng state left
// behind — so flipping Parallel on can never change a training run.
func TestParallelDivideBitIdentical(t *testing.T) {
	defer tensor.SetParallelism(tensor.Parallelism())
	const dim, n, seed = 4099, 9, 17 // odd dim: panels cannot split evenly

	w := make([]float64, dim)
	rng := rand.New(rand.NewSource(99))
	for i := range w {
		w[i] = rng.NormFloat64()
	}

	cases := []struct {
		name             string
		serial, parallel Divider
	}{
		{"scalar", ScalarDivider{}, ScalarDivider{Parallel: true}},
		{"mask", MaskDivider{Scale: 2}, MaskDivider{Scale: 2, Parallel: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tensor.SetParallelism(1)
			refRng := rand.New(rand.NewSource(seed))
			ref, err := tc.serial.Divide(w, n, refRng)
			if err != nil {
				t.Fatal(err)
			}
			refNext := refRng.Float64()

			for _, workers := range []int{1, 2, 4, 8} {
				tensor.SetParallelism(workers)
				gotRng := rand.New(rand.NewSource(seed))
				got, _, err := tc.parallel.DivideInto(w, n, gotRng, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				for i := range ref {
					for j := range ref[i] {
						if math.Float64bits(ref[i][j]) != math.Float64bits(got[i][j]) {
							t.Fatalf("workers=%d: share %d coord %d differs: %g vs %g",
								workers, i, j, ref[i][j], got[i][j])
						}
					}
				}
				if next := gotRng.Float64(); next != refNext {
					t.Fatalf("workers=%d: rng state diverged (next draw %g, want %g)",
						workers, next, refNext)
				}
			}
		})
	}
}

// TestParallelDivideReconstructs sanity-checks that the parallel kernels
// still satisfy the additive-share contract.
func TestParallelDivideReconstructs(t *testing.T) {
	w := []float64{1.5, -2.25, 0, 3.75, 1e-3}
	for _, d := range []Divider{ScalarDivider{Parallel: true}, MaskDivider{Parallel: true}} {
		shares, err := d.Divide(w, 4, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		sum, err := Reconstruct(shares)
		if err != nil {
			t.Fatal(err)
		}
		for j := range w {
			if math.Abs(sum[j]-w[j]) > 1e-12 {
				t.Fatalf("%s: coord %d reconstructs to %g, want %g", d.Name(), j, sum[j], w[j])
			}
		}
	}
}
