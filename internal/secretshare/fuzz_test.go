package secretshare

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzDivideReconstruct: any finite secret splits and reconstructs
// within floating-point tolerance under both schemes, for any share
// count and threshold.
func FuzzDivideReconstruct(f *testing.F) {
	f.Add(int64(1), uint8(3), 1.0, 2.0)
	f.Add(int64(7), uint8(1), -1e6, 1e-9)
	f.Add(int64(42), uint8(10), 0.0, 0.0)
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint8, a, b float64) {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			t.Skip()
		}
		if math.Abs(a) > 1e12 || math.Abs(b) > 1e12 {
			t.Skip() // avoid magnitude-driven rounding blowups
		}
		n := int(nRaw%12) + 1
		w := []float64{a, b}
		rng := rand.New(rand.NewSource(seed))
		for _, d := range []Divider{ScalarDivider{}, MaskDivider{Scale: 1 + math.Abs(a)}} {
			shares, err := d.Divide(w, n, rng)
			if err != nil {
				t.Fatalf("%s: %v", d.Name(), err)
			}
			got, err := Reconstruct(shares)
			if err != nil {
				t.Fatal(err)
			}
			tol := 1e-6 * (1 + math.Abs(a) + math.Abs(b))
			if math.Abs(got[0]-a) > tol || math.Abs(got[1]-b) > tol {
				t.Fatalf("%s n=%d: reconstructed %v from (%v,%v)", d.Name(), n, got, a, b)
			}
		}
	})
}

// FuzzReplicaGeometry: for any valid (n, k), the replica assignment and
// holder sets stay mutually consistent.
func FuzzReplicaGeometry(f *testing.F) {
	f.Add(uint8(3), uint8(2))
	f.Add(uint8(10), uint8(10))
	f.Fuzz(func(t *testing.T, nRaw, kRaw uint8) {
		n := int(nRaw%16) + 1
		k := int(kRaw)%n + 1
		for peer := 0; peer < n; peer++ {
			idx, err := ReplicaIndices(peer, n, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(idx) != n-k+1 {
				t.Fatalf("peer %d of %d-%d holds %d shares", peer, k, n, len(idx))
			}
			for _, s := range idx {
				holders, err := HoldersOf(s, n, k)
				if err != nil {
					t.Fatal(err)
				}
				found := false
				for _, h := range holders {
					if h == peer {
						found = true
					}
				}
				if !found {
					t.Fatalf("holder sets inconsistent at peer %d share %d (%d-%d)", peer, s, k, n)
				}
			}
		}
	})
}
