package secretshare

import (
	"math/rand"
	"testing"
)

// Reference implementations: the original per-share-allocation Divide
// code, kept verbatim so the flat-block rewrite can be proven
// bit-identical. Same rng state in, same bits out — the flat block is
// an allocation-layout change only.

func refScalarDivide(w []float64, n int, rng *rand.Rand) [][]float64 {
	rn := make([]float64, n)
	sum := 0.0
	for i := range rn {
		rn[i] = 1 - rng.Float64()
		sum += rn[i]
	}
	shares := make([][]float64, n)
	for i := range shares {
		f := rn[i] / sum
		s := make([]float64, len(w))
		for j, v := range w {
			s[j] = f * v
		}
		shares[i] = s
	}
	return shares
}

func refMaskDivide(w []float64, n int, scale float64, rng *rand.Rand) [][]float64 {
	shares := make([][]float64, n)
	last := make([]float64, len(w))
	copy(last, w)
	for i := 0; i < n-1; i++ {
		s := make([]float64, len(w))
		for j := range s {
			r := (rng.Float64()*2 - 1) * scale
			s[j] = r
			last[j] -= r
		}
		shares[i] = s
	}
	shares[n-1] = last
	return shares
}

func requireBitIdentical(t *testing.T, got, want [][]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("share count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("share %d: dim %d, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("share %d[%d]: %v, want %v (not bit-identical)", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestDivideBitIdenticalToReference is satellite-level proof that the
// single-backing-array rewrite changed nothing observable: for every
// scheme, n, and seed tried, Divide and DivideInto (cold and with
// recycled scratch) all equal the original per-share-allocation code.
func TestDivideBitIdenticalToReference(t *testing.T) {
	w := make([]float64, 37)
	rng := rand.New(rand.NewSource(42))
	for i := range w {
		w[i] = rng.NormFloat64() * 10
	}
	for _, n := range []int{1, 2, 5, 8} {
		for seed := int64(0); seed < 5; seed++ {
			ref := refScalarDivide(w, n, rand.New(rand.NewSource(seed)))
			got, err := ScalarDivider{}.Divide(w, n, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			requireBitIdentical(t, got, ref)

			refM := refMaskDivide(w, n, 20, rand.New(rand.NewSource(seed)))
			gotM, err := MaskDivider{Scale: 20}.Divide(w, n, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			requireBitIdentical(t, gotM, refM)

			// The Into path with dirty recycled scratch must also match:
			// every element is overwritten, never accumulated into.
			block := make([]float64, n*len(w))
			for i := range block {
				block[i] = 99.25
			}
			views := make([][]float64, n)
			for _, d := range []Divider{ScalarDivider{}, MaskDivider{Scale: 20}} {
				want := ref
				if _, ok := d.(MaskDivider); ok {
					want = refM
				}
				gotI, blockOut, err := d.DivideInto(w, n, rand.New(rand.NewSource(seed)), block, views)
				if err != nil {
					t.Fatal(err)
				}
				requireBitIdentical(t, gotI, want)
				block, views = blockOut, gotI
			}
		}
	}
}

// TestDivideSingleBackingAllocation pins the allocation contract: one
// flat block + one views header (+ the small rn vector for the scalar
// scheme), regardless of n. The old code paid n+1 allocations.
func TestDivideSingleBackingAllocation(t *testing.T) {
	w := make([]float64, 256)
	for i := range w {
		w[i] = float64(i)
	}
	rng := rand.New(rand.NewSource(1))
	const n = 16
	for _, tc := range []struct {
		d      Divider
		budget float64
	}{
		{ScalarDivider{}, 3}, // block + views + rn
		{MaskDivider{Scale: 10}, 2},
	} {
		got := testing.AllocsPerRun(50, func() {
			if _, err := tc.d.Divide(w, n, rng); err != nil {
				t.Fatal(err)
			}
		})
		if got > tc.budget {
			t.Errorf("%s: %v allocs for %d shares, budget %v — shares are not flat-block backed",
				tc.d.Name(), got, n, tc.budget)
		}
	}
}

// TestDivideIntoReusesScratch: with adequate scratch the only
// per-call allocation is ScalarDivider's rn vector, and the returned
// views alias the caller's block.
func TestDivideIntoReusesScratch(t *testing.T) {
	w := make([]float64, 64)
	for i := range w {
		w[i] = float64(i) * 0.5
	}
	rng := rand.New(rand.NewSource(2))
	const n = 8
	block := make([]float64, n*len(w))
	views := make([][]float64, n)

	shares, blockOut, err := MaskDivider{Scale: 5}.DivideInto(w, n, rng, block, views)
	if err != nil {
		t.Fatal(err)
	}
	if &blockOut[0] != &block[0] {
		t.Fatal("adequate block was reallocated")
	}
	// Views alias the block: writing through the block must show
	// through the share.
	block[0] = 1234.5
	if shares[0][0] != 1234.5 {
		t.Fatal("share views do not alias the backing block")
	}
	// Capacity-clipped views: share i cannot reach share i+1 via append.
	if cap(shares[0]) != len(w) {
		t.Fatalf("share cap %d, want %d (views must be capacity-clipped)", cap(shares[0]), len(w))
	}

	got := testing.AllocsPerRun(50, func() {
		var err error
		shares, block, err = MaskDivider{Scale: 5}.DivideInto(w, n, rng, block, shares)
		if err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Errorf("MaskDivider DivideInto with warm scratch: %v allocs/op, want 0", got)
	}
	gotScalar := testing.AllocsPerRun(50, func() {
		var err error
		shares, block, err = ScalarDivider{}.DivideInto(w, n, rng, block, shares)
		if err != nil {
			t.Fatal(err)
		}
	})
	if gotScalar > 1 { // the rn vector
		t.Errorf("ScalarDivider DivideInto with warm scratch: %v allocs/op, want ≤1", gotScalar)
	}

	// Undersized scratch must regrow, not corrupt.
	small := make([]float64, 3)
	shares2, block2, err := MaskDivider{Scale: 5}.DivideInto(w, n, rng, small, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(block2) != n*len(w) {
		t.Fatalf("regrown block len %d, want %d", len(block2), n*len(w))
	}
	sum, err := Reconstruct(shares2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if diff := sum[i] - w[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("reconstruction off at %d: %v vs %v", i, sum[i], w[i])
		}
	}
}
