package directory

import (
	"math/rand"
	"testing"

	"repro/internal/wire"
)

func join(id uint64, g, idx int) wire.DirectoryUpdate {
	return wire.DirectoryUpdate{Op: wire.DirJoin, ID: id, Subgroup: g, ShareIndex: idx, Addr: "peer"}
}

func leave(id uint64) wire.DirectoryUpdate {
	return wire.DirectoryUpdate{Op: wire.DirLeave, ID: id}
}

func TestApplyAssignsLowestFreeIndex(t *testing.T) {
	d := New()
	for i, id := range []uint64{1, 2, 3} {
		e, err := d.Apply(join(id, 0, i))
		if err != nil {
			t.Fatal(err)
		}
		if e.ShareIndex != i {
			t.Fatalf("peer %d got index %d, want %d", id, e.ShareIndex, i)
		}
	}
	// Leave the middle peer; the next join must take its freed slot even
	// though the proposer asked for a stale index.
	if _, err := d.Apply(leave(2)); err != nil {
		t.Fatal(err)
	}
	e, err := d.Apply(join(4, 0, 0)) // index 0 is taken: conflict path
	if err != nil {
		t.Fatal(err)
	}
	if e.ShareIndex != 1 {
		t.Fatalf("conflicting join got index %d, want lowest free 1", e.ShareIndex)
	}
	if !d.ShareIndexesSound(0) {
		t.Fatal("share indexes not sound after conflict resolution")
	}
}

func TestLeaveUnknownPeerIsError(t *testing.T) {
	d := New()
	if _, err := d.Apply(leave(9)); err == nil {
		t.Fatal("want error for leave of unknown peer")
	}
}

func TestReplicasConvergeUnderRandomChurn(t *testing.T) {
	// The determinism claim made literal: two replicas applying the same
	// update sequence — including conflicting proposed indices — end with
	// identical checksums, and a third built from a snapshot matches too.
	rng := rand.New(rand.NewSource(42))
	a, b := New(), New()
	live := map[uint64]bool{}
	next := uint64(1)
	for step := 0; step < 500; step++ {
		var u wire.DirectoryUpdate
		if len(live) > 0 && rng.Intn(3) == 0 {
			ids := make([]uint64, 0, len(live))
			for id := range live {
				ids = append(ids, id)
			}
			// Deterministic pick despite map order: smallest id wins.
			min := ids[0]
			for _, id := range ids {
				if id < min {
					min = id
				}
			}
			u = leave(min)
			delete(live, min)
		} else {
			u = join(next, rng.Intn(4), rng.Intn(3)) // often-conflicting proposals
			live[next] = true
			next++
		}
		if _, err := a.Apply(u); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	if a.Checksum() != b.Checksum() {
		t.Fatal("replicas diverged under identical update sequences")
	}
	for _, g := range a.Subgroups() {
		if !a.ShareIndexesSound(g) {
			t.Fatalf("subgroup %d holds duplicate share indexes", g)
		}
	}
	c, err := DecodeSnapshot(a.EncodeSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if c.Checksum() != a.Checksum() {
		t.Fatal("snapshot round-trip changed the directory")
	}
}

func TestSubgroupOrderAndNextIndex(t *testing.T) {
	d := New()
	d.Apply(join(5, 1, 2))
	d.Apply(join(6, 1, 0))
	d.Apply(join(7, 1, 1))
	sub := d.Subgroup(1)
	if len(sub) != 3 {
		t.Fatalf("got %d members", len(sub))
	}
	for i, e := range sub {
		if e.ShareIndex != i {
			t.Fatalf("subgroup not in share-index order: %+v", sub)
		}
	}
	if got := d.NextShareIndex(1); got != 3 {
		t.Fatalf("NextShareIndex = %d, want 3", got)
	}
	if got := d.NextShareIndex(0); got != 0 {
		t.Fatalf("NextShareIndex(empty) = %d, want 0", got)
	}
}

func TestChecksumSensitivity(t *testing.T) {
	a, b := New(), New()
	a.Apply(join(1, 0, 0))
	b.Apply(join(1, 1, 0))
	if a.Checksum() == b.Checksum() {
		t.Fatal("checksum blind to subgroup field")
	}
}
