// Package directory is the replicated peer directory of the
// continuous-churn control plane (DESIGN.md §14): the deterministic
// state machine every FedAvg-layer member applies directory log entries
// to. An entry (wire.DirectoryUpdate, KindDirectory frames) records a
// peer's id, address, subgroup and share index; joins and leaves are
// proposed through the FedAvg-layer Raft leader, so all replicas see
// the same update sequence and Apply is a pure function of it — equal
// logs yield equal directories, which the chaos directory-convergence
// invariant checks via Checksum.
//
// Share indices are the k-out-of-n replica slots of package secretshare:
// within a subgroup every live peer must hold a distinct index and the
// set of live indices must cover all n shares (CoversAllShares). The
// directory owns the assignment: a join takes the proposer's index if
// it is still free, otherwise the lowest free index — both sides of
// that rule are deterministic, so replicas agree even when concurrent
// proposals raced at the leader.
package directory

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/wire"
)

// Entry is one directory row: a live peer's registration.
type Entry struct {
	// ID is the peer's global id (its raft node id in both layers).
	ID uint64
	// Addr is the peer's dialable address.
	Addr string
	// Subgroup is the subgroup the peer was admitted to.
	Subgroup int
	// ShareIndex is the peer's k-out-of-n replica slot within the
	// subgroup (see secretshare.ReplicaIndices).
	ShareIndex int
}

// Directory is the applied state. The zero value is empty and usable.
// It is not safe for concurrent use; drivers apply committed entries
// from a single goroutine (the simnet event loop, a node's main loop).
type Directory struct {
	entries map[uint64]Entry
	version uint64
}

// New returns an empty directory.
func New() *Directory { return &Directory{entries: make(map[uint64]Entry)} }

func (d *Directory) init() {
	if d.entries == nil {
		d.entries = make(map[uint64]Entry)
	}
}

// Version counts applied updates — a cheap staleness probe.
func (d *Directory) Version() uint64 { return d.version }

// Len returns the number of registered peers.
func (d *Directory) Len() int { return len(d.entries) }

// Lookup returns the entry for id and whether it is registered.
func (d *Directory) Lookup(id uint64) (Entry, bool) {
	e, ok := d.entries[id]
	return e, ok
}

// Apply applies one committed update and returns the resulting entry
// (the released entry for a leave). Joins are idempotent re-registrations
// when the id is already present (the entry is replaced; its old share
// index is released first); leaves of unknown ids are errors — a leader
// never proposes one, so seeing it means divergence.
func (d *Directory) Apply(u wire.DirectoryUpdate) (Entry, error) {
	d.init()
	switch u.Op {
	case wire.DirJoin:
		delete(d.entries, u.ID) // re-registration releases the old slot first
		e := Entry{ID: u.ID, Addr: u.Addr, Subgroup: u.Subgroup, ShareIndex: u.ShareIndex}
		if e.ShareIndex < 0 || d.indexTaken(u.Subgroup, e.ShareIndex) {
			e.ShareIndex = d.NextShareIndex(u.Subgroup)
		}
		d.entries[u.ID] = e
		d.version++
		return e, nil
	case wire.DirLeave:
		e, ok := d.entries[u.ID]
		if !ok {
			return Entry{}, fmt.Errorf("directory: leave for unknown peer %d", u.ID)
		}
		delete(d.entries, u.ID)
		d.version++
		return e, nil
	default:
		return Entry{}, fmt.Errorf("directory: unknown op %d", u.Op)
	}
}

func (d *Directory) indexTaken(subgroup, idx int) bool {
	for _, e := range d.entries {
		if e.Subgroup == subgroup && e.ShareIndex == idx {
			return true
		}
	}
	return false
}

// NextShareIndex returns the lowest share index not currently held in
// the subgroup — the deterministic assignment rule for joins.
func (d *Directory) NextShareIndex(subgroup int) int {
	used := make(map[int]bool)
	for _, e := range d.entries {
		if e.Subgroup == subgroup {
			used[e.ShareIndex] = true
		}
	}
	for i := 0; ; i++ {
		if !used[i] {
			return i
		}
	}
}

// Members returns every entry in ascending id order.
func (d *Directory) Members() []Entry {
	out := make([]Entry, 0, len(d.entries))
	for _, e := range d.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Subgroup returns the subgroup's entries in ascending share-index
// order — the order SAC rounds index peers by.
func (d *Directory) Subgroup(g int) []Entry {
	var out []Entry
	for _, e := range d.entries {
		if e.Subgroup == g {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ShareIndex < out[j].ShareIndex })
	return out
}

// Subgroups returns the registered subgroup indices, ascending.
func (d *Directory) Subgroups() []int {
	seen := make(map[int]bool)
	for _, e := range d.entries {
		seen[e.Subgroup] = true
	}
	out := make([]int, 0, len(seen))
	for g := range seen {
		out = append(out, g)
	}
	sort.Ints(out)
	return out
}

// ShareIndexesSound reports whether no two peers of subgroup g hold the
// same share index — the share-index-soundness invariant. (Apply
// maintains it by construction; the checker re-derives it from state so
// a bug cannot hide behind its own bookkeeping.)
func (d *Directory) ShareIndexesSound(g int) bool {
	seen := make(map[int]bool)
	for _, e := range d.entries {
		if e.Subgroup != g {
			continue
		}
		if seen[e.ShareIndex] {
			return false
		}
		seen[e.ShareIndex] = true
	}
	return true
}

// Checksum fingerprints the directory state: equal directories hash
// equal, and replicas that diverged in any entry field hash apart.
// Entries are folded in ascending id order so the hash is independent
// of map iteration.
func (d *Directory) Checksum() uint64 {
	h := fnv.New64a()
	for _, e := range d.Members() {
		var buf [8]byte
		put := func(v uint64) {
			for i := range buf {
				buf[i] = byte(v >> (8 * i))
			}
			h.Write(buf[:])
		}
		put(e.ID)
		put(uint64(int64(e.Subgroup)))
		put(uint64(int64(e.ShareIndex)))
		h.Write([]byte(e.Addr))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// EncodeSnapshot serializes the directory as a sequence of join frames
// in ascending id order — the state-transfer format for raft snapshots
// and new-member catch-up. Decoding with DecodeSnapshot reproduces the
// directory exactly (version excepted; a snapshot is a fresh history).
func (d *Directory) EncodeSnapshot() []byte {
	var out []byte
	for _, e := range d.Members() {
		out = wire.AppendDirectoryFrame(out, wire.DirectoryUpdate{
			Op: wire.DirJoin, ID: e.ID, Subgroup: e.Subgroup, ShareIndex: e.ShareIndex, Addr: e.Addr,
		})
	}
	return out
}

// DecodeSnapshot rebuilds a directory from EncodeSnapshot output.
func DecodeSnapshot(b []byte) (*Directory, error) {
	d := New()
	for len(b) > 0 {
		kind, n, err := wire.ParseHeader(b)
		if err != nil {
			return nil, err
		}
		if kind != wire.KindDirectory {
			return nil, fmt.Errorf("directory: snapshot frame kind %s", kind)
		}
		if len(b) < wire.HeaderSize+n {
			return nil, fmt.Errorf("directory: truncated snapshot frame")
		}
		u, err := wire.DecodeDirectoryPayload(b[wire.HeaderSize : wire.HeaderSize+n])
		if err != nil {
			return nil, err
		}
		if _, err := d.Apply(u); err != nil {
			return nil, err
		}
		b = b[wire.HeaderSize+n:]
	}
	return d, nil
}
