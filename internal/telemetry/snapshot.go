package telemetry

import (
	"encoding/json"
	"io"
	"sort"
)

// HistogramSnapshot is the frozen JSON form of one histogram.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of every metric and the trace ring.
// The JSON encoding is the stable schema served by /debug/telemetry and
// dumped by p2pfl-sim -telemetry: map keys serialize in sorted order and
// trace events in ascending Seq, so identical-seed simulated runs
// produce byte-identical output.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Trace      []Event                      `json:"trace"`
	// TraceTotal is the number of events emitted over the registry's
	// lifetime; when it exceeds len(Trace), the ring dropped the oldest.
	TraceTotal uint64 `json:"trace_total"`
}

// Snapshot copies the registry's current state. On a nil registry it
// returns an empty (but fully initialized) snapshot, so callers can
// serve it without nil checks.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Trace:      []Event{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.Unlock()

	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range histograms {
		hs := HistogramSnapshot{
			Bounds: append([]float64{}, h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[k] = hs
	}

	r.traceMu.Lock()
	s.Trace = append(s.Trace, r.trace...)
	s.TraceTotal = r.traceSeq
	r.traceMu.Unlock()
	sort.Slice(s.Trace, func(i, j int) bool { return s.Trace[i].Seq < s.Trace[j].Seq })
	return s
}

// WriteJSON writes the snapshot as indented JSON with a trailing
// newline. Safe on a nil registry (writes the empty snapshot).
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Diff returns cur minus old: counter deltas (omitting zero deltas),
// gauge values that changed, histogram count/sum deltas, and the trace
// events emitted after old was taken. Either argument may be nil (an
// empty snapshot is substituted).
func Diff(old, cur *Snapshot) *Snapshot {
	if old == nil {
		old = (*Registry)(nil).Snapshot()
	}
	if cur == nil {
		cur = (*Registry)(nil).Snapshot()
	}
	d := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Trace:      []Event{},
		TraceTotal: cur.TraceTotal - old.TraceTotal,
	}
	for k, v := range cur.Counters {
		if delta := v - old.Counters[k]; delta != 0 {
			d.Counters[k] = delta
		}
	}
	for k, v := range cur.Gauges {
		if ov, ok := old.Gauges[k]; !ok || ov != v {
			d.Gauges[k] = v
		}
	}
	for k, h := range cur.Histograms {
		oh, ok := old.Histograms[k]
		if ok && h.Count == oh.Count && h.Sum == oh.Sum {
			continue
		}
		dh := HistogramSnapshot{
			Bounds: append([]float64{}, h.Bounds...),
			Counts: append([]int64{}, h.Counts...),
			Count:  h.Count - oh.Count,
			Sum:    h.Sum - oh.Sum,
		}
		if ok {
			for i := range dh.Counts {
				if i < len(oh.Counts) {
					dh.Counts[i] -= oh.Counts[i]
				}
			}
		}
		d.Histograms[k] = dh
	}
	for _, ev := range cur.Trace {
		if ev.Seq > old.TraceTotal {
			d.Trace = append(d.Trace, ev)
		}
	}
	return d
}
