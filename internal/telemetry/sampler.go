package telemetry

// Sampler decides which members of a large population get their own
// per-entity instruments. Small fleets instrument everyone; past
// Threshold only every Every-th entity does, so a 100k–1M peer
// simulation keeps O(population/Every) gauges instead of O(population).
// Aggregate (fleet-wide) counters are never sampled — only the per-peer
// fan-out is.
//
// The decision is a pure function of the entity index, so it is stable
// across rounds and identical on every run of a seeded simulation.
type Sampler struct {
	// Threshold is the population size at or below which everything is
	// instrumented. ≤ 0 means "always sample everyone".
	Threshold int
	// Every is the sampling stride above Threshold; values < 1 act as 1.
	Every int
}

// Sample reports whether entity i of the given population gets
// per-entity instruments.
func (s Sampler) Sample(i, population int) bool {
	if s.Threshold <= 0 || population <= s.Threshold {
		return true
	}
	every := s.Every
	if every < 1 {
		every = 1
	}
	return i%every == 0
}

// SampledCount returns how many of population entities Sample admits —
// the instrument budget a caller should expect.
func (s Sampler) SampledCount(population int) int {
	if s.Threshold <= 0 || population <= s.Threshold {
		return population
	}
	every := s.Every
	if every < 1 {
		every = 1
	}
	if population <= 0 {
		return 0
	}
	return (population + every - 1) / every
}
