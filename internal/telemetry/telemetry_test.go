package telemetry

import (
	"sync"
	"testing"
)

// TestNilRegistryNoOps drives every entry point through a nil registry
// and nil handles: nothing may panic and reads return zero values.
func TestNilRegistryNoOps(t *testing.T) {
	var r *Registry
	r.SetClock(func() int64 { return 42 })
	r.SetTraceCap(8)
	if got := r.Now(); got != 0 {
		t.Fatalf("nil Now() = %d, want 0", got)
	}

	c := r.Counter("x")
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter Value() = %d, want 0", got)
	}

	g := r.Gauge("x")
	g.Set(1.5)
	g.Add(2.5)
	if got := g.Value(); got != 0 {
		t.Fatalf("nil gauge Value() = %v, want 0", got)
	}

	h := r.Histogram("x", []float64{1, 2})
	h.Observe(1.7)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil histogram Count/Sum = %d/%v, want 0/0", h.Count(), h.Sum())
	}

	r.Trace("kind", 1, 0, F("k", 1))
	s := r.Snapshot()
	if s == nil || len(s.Counters) != 0 || len(s.Trace) != 0 || s.TraceTotal != 0 {
		t.Fatalf("nil Snapshot() = %+v, want empty", s)
	}
}

// TestConcurrentCounterAdds checks that N goroutines hammering the same
// counter (and gauge, and histogram) sum exactly.
func TestConcurrentCounterAdds(t *testing.T) {
	const goroutines, perG = 16, 1000
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{0.5})

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Add(1)
				g.Add(1)
				h.Observe(1)
			}
		}()
	}
	wg.Wait()

	const want = goroutines * perG
	if got := c.Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := g.Value(); got != want {
		t.Errorf("gauge = %v, want %d", got, want)
	}
	if got := h.Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	if got := h.Sum(); got != want {
		t.Errorf("histogram sum = %v, want %d", got, want)
	}
}

// TestHistogramBoundaries pins the bucket rule: a value lands in the
// first bucket whose upper bound is >= the value; values above the last
// bound land in the overflow bucket.
func TestHistogramBoundaries(t *testing.T) {
	bounds := []float64{1, 10, 100}
	tests := []struct {
		name   string
		value  float64
		bucket int
	}{
		{"below first", 0.5, 0},
		{"exactly first", 1, 0},
		{"just above first", 1.0001, 1},
		{"exactly middle", 10, 1},
		{"inside last", 99.9, 2},
		{"exactly last", 100, 2},
		{"overflow", 100.0001, 3},
		{"far overflow", 1e9, 3},
		{"negative", -3, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := New()
			h := r.Histogram("h", bounds)
			h.Observe(tt.value)
			for i := range h.counts {
				want := int64(0)
				if i == tt.bucket {
					want = 1
				}
				if got := h.counts[i].Load(); got != want {
					t.Errorf("bucket[%d] = %d, want %d (value %v)", i, got, want, tt.value)
				}
			}
		})
	}
}

// TestHistogramUnsortedBounds: bounds are sorted at creation so callers
// may list them in any order.
func TestHistogramUnsortedBounds(t *testing.T) {
	r := New()
	h := r.Histogram("h", []float64{100, 1, 10})
	h.Observe(5)
	if got := h.counts[1].Load(); got != 1 {
		t.Fatalf("value 5 with bounds {1,10,100}: bucket[1] = %d, want 1", got)
	}
}

// TestTraceRingWrap fills the ring past capacity and checks that the
// snapshot keeps exactly the newest cap events in ascending seq order.
func TestTraceRingWrap(t *testing.T) {
	const cap, emitted = 8, 21
	r := New()
	r.SetClock(func() int64 { return 7 })
	r.SetTraceCap(cap)
	for i := 0; i < emitted; i++ {
		r.Trace("ev", uint64(i), -1, F("i", int64(i)))
	}
	s := r.Snapshot()
	if s.TraceTotal != emitted {
		t.Fatalf("TraceTotal = %d, want %d", s.TraceTotal, emitted)
	}
	if len(s.Trace) != cap {
		t.Fatalf("len(Trace) = %d, want %d", len(s.Trace), cap)
	}
	for i, ev := range s.Trace {
		wantSeq := uint64(emitted - cap + i + 1)
		if ev.Seq != wantSeq {
			t.Errorf("trace[%d].Seq = %d, want %d", i, ev.Seq, wantSeq)
		}
		if ev.AtUs != 7 {
			t.Errorf("trace[%d].AtUs = %d, want 7 (installed clock)", i, ev.AtUs)
		}
		if i > 0 && s.Trace[i-1].Seq >= ev.Seq {
			t.Errorf("trace not strictly ascending at %d: %d >= %d", i, s.Trace[i-1].Seq, ev.Seq)
		}
	}
}

// TestHandleIdentity: resolving the same name twice returns the same
// handle, so increments through either are visible through both.
func TestHandleIdentity(t *testing.T) {
	r := New()
	a, b := r.Counter("same"), r.Counter("same")
	if a != b {
		t.Fatal("Counter(name) returned distinct handles for one name")
	}
	a.Add(2)
	b.Add(3)
	if got := r.Snapshot().Counters["same"]; got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	h1 := r.Histogram("h", []float64{1, 2})
	h2 := r.Histogram("h", []float64{99}) // later bounds ignored
	if h1 != h2 {
		t.Fatal("Histogram(name) returned distinct handles for one name")
	}
	if len(h2.bounds) != 2 {
		t.Fatalf("second Histogram call changed bounds: %v", h2.bounds)
	}
}

// TestCounterNegativeAdds: Add takes any delta; Value reflects the sum.
func TestCounterNegativeAdds(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Add(10)
	c.Add(-4)
	if got := c.Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
}
