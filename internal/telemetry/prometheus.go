package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), hand-rolled so a
// real fleet can scrape the registry without pulling in a client
// library. The mapping from the registry's slash-hierarchical names:
//
//   - every name is sanitized to [a-zA-Z_:][a-zA-Z0-9_:]* with a
//     "p2pfl_" namespace prefix ('/' and other invalid runes → '_'),
//   - counters get the conventional "_total" suffix and TYPE counter,
//   - gauges keep their sanitized name and TYPE gauge,
//   - histograms emit cumulative "_bucket" series with an le label per
//     upper bound plus le="+Inf", then "_sum" and "_count" — exactly the
//     shape promtool and PromQL's histogram_quantile expect.
//
// Output is sorted by metric name so equal snapshots give equal bytes
// (the golden-file contract of /debug/metrics).

// PrometheusContentType is the Content-Type header for the text format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// PrometheusName sanitizes a registry metric name into a Prometheus
// metric name: the "p2pfl_" namespace prefix plus the name with every
// rune outside [a-zA-Z0-9_:] replaced by '_'.
func PrometheusName(name string) string {
	var b strings.Builder
	b.Grow(len("p2pfl_") + len(name))
	b.WriteString("p2pfl_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatPromValue renders a sample value the way Prometheus expects:
// shortest float representation, with +Inf/-Inf/NaN spelled out.
func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in the text exposition format.
// Metric families are sorted by exposed name; every family carries HELP
// (the original registry name, so a scrape can be traced back) and TYPE
// lines.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	type family struct {
		name  string // exposed (sanitized) name
		lines []string
	}
	var families []family

	for name, v := range s.Counters {
		pn := PrometheusName(name) + "_total"
		families = append(families, family{name: pn, lines: []string{
			fmt.Sprintf("# HELP %s Counter %q.", pn, name),
			fmt.Sprintf("# TYPE %s counter", pn),
			fmt.Sprintf("%s %d", pn, v),
		}})
	}
	for name, v := range s.Gauges {
		pn := PrometheusName(name)
		families = append(families, family{name: pn, lines: []string{
			fmt.Sprintf("# HELP %s Gauge %q.", pn, name),
			fmt.Sprintf("# TYPE %s gauge", pn),
			fmt.Sprintf("%s %s", pn, formatPromValue(v)),
		}})
	}
	for name, h := range s.Histograms {
		pn := PrometheusName(name)
		lines := []string{
			fmt.Sprintf("# HELP %s Histogram %q.", pn, name),
			fmt.Sprintf("# TYPE %s histogram", pn),
		}
		// The registry stores per-bucket counts; Prometheus buckets are
		// cumulative, with the +Inf bucket equal to the total count.
		var cum int64
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			lines = append(lines, fmt.Sprintf("%s_bucket{le=%q} %d", pn, formatPromValue(bound), cum))
		}
		lines = append(lines,
			fmt.Sprintf("%s_bucket{le=\"+Inf\"} %d", pn, h.Count),
			fmt.Sprintf("%s_sum %s", pn, formatPromValue(h.Sum)),
			fmt.Sprintf("%s_count %d", pn, h.Count),
		)
		families = append(families, family{name: pn, lines: lines})
	}

	sort.Slice(families, func(i, j int) bool { return families[i].name < families[j].name })
	var b strings.Builder
	for _, f := range families {
		for _, line := range f.lines {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WritePrometheus snapshots the registry and renders it in the text
// exposition format. Safe on a nil registry (writes nothing but is a
// valid, empty exposition).
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}
