// Package telemetry is a dependency-free instrumentation registry:
// named counters, gauges and fixed-bucket histograms with atomic
// hot-path updates, plus a bounded ring of structured trace events.
//
// Design rules (see DESIGN.md §8):
//
//   - A nil *Registry is a valid no-op: every method on Registry and on
//     the handles it returns (Counter, Gauge, Histogram) is safe on a
//     nil receiver, so library code instruments unconditionally and
//     un-instrumented users pay a single predictable-nil branch.
//
//   - Handles are resolved once (at construction time of the
//     instrumented component) and then updated with plain atomic ops;
//     the name→metric map is only consulted on resolution and snapshot.
//
//   - Time comes from the registry's clock (SetClock). Simulated runs
//     install the virtual clock so identical seeds produce
//     byte-identical snapshots; live binaries install WallClock.
//
// Metric names are slash-hierarchical lowercase, e.g.
// "raft/elections_won" or "transport/peer3/bytes_sent".
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// WallClock is the clock for live (non-simulated) processes: microseconds
// since the Unix epoch, matching the unit of the simnet virtual clock.
var WallClock = func() int64 { return time.Now().UnixMicro() }

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can move in either direction.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by delta. No-op on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed upper-bound buckets. A value
// v lands in the first bucket with v <= bounds[i]; values above the last
// bound land in the overflow bucket counts[len(bounds)].
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first i with bounds[i] >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Field is one key/value pair attached to a trace event. Values are
// int64 so events stay comparable and deterministic across runs.
type Field struct {
	K string `json:"k"`
	V int64  `json:"v"`
}

// F builds a trace field.
func F(k string, v int64) Field { return Field{K: k, V: v} }

// Event is one structured trace record. Subgroup is -1 when the event
// is not tied to a subgroup. AtUs is microseconds on the registry clock
// (virtual in simulations, wall in live processes).
type Event struct {
	Seq      uint64  `json:"seq"`
	AtUs     int64   `json:"at_us"`
	Kind     string  `json:"kind"`
	Node     uint64  `json:"node"`
	Subgroup int     `json:"subgroup"`
	Fields   []Field `json:"fields,omitempty"`
}

// DefaultTraceCap is the trace-ring capacity used by New.
const DefaultTraceCap = 1024

// Registry holds named metrics and the trace ring. Create with New;
// a nil *Registry is a valid no-op sink.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram

	clock func() int64

	traceMu   sync.Mutex
	trace     []Event
	traceCap  int
	traceNext int // ring write cursor, only meaningful once len(trace) == traceCap
	traceSeq  uint64
}

// New returns an empty registry with the wall clock and the default
// trace capacity.
func New() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		clock:      WallClock,
		traceCap:   DefaultTraceCap,
	}
}

// SetClock installs the timestamp source for trace events and Now.
// Simulated runs point this at the virtual clock. No-op on nil.
func (r *Registry) SetClock(clock func() int64) {
	if r == nil || clock == nil {
		return
	}
	r.mu.Lock()
	r.clock = clock
	r.mu.Unlock()
}

// Now returns the current registry time in microseconds (0 on nil), for
// callers that measure durations fed into histograms.
func (r *Registry) Now() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.clock
	r.mu.Unlock()
	return c()
}

// SetTraceCap resizes the trace ring (minimum 1), dropping buffered
// events. No-op on nil.
func (r *Registry) SetTraceCap(n int) {
	if r == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	r.traceMu.Lock()
	r.traceCap = n
	r.trace = nil
	r.traceNext = 0
	r.traceMu.Unlock()
}

// Counter returns the named counter, creating it on first use.
// Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
// Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending upper bounds on first use (later calls reuse the existing
// bounds). Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.histograms[name] = h
	}
	return h
}

// Trace appends a structured event to the bounded ring. When the ring
// is full the oldest event is overwritten; Seq keeps growing so the
// snapshot exposes how many events were emitted in total. Subgroup -1
// means "not subgroup-scoped". No-op on a nil registry.
func (r *Registry) Trace(kind string, node uint64, subgroup int, fields ...Field) {
	if r == nil {
		return
	}
	at := r.Now()
	r.traceMu.Lock()
	r.traceSeq++
	ev := Event{Seq: r.traceSeq, AtUs: at, Kind: kind, Node: node, Subgroup: subgroup, Fields: fields}
	if len(r.trace) < r.traceCap {
		r.trace = append(r.trace, ev)
	} else {
		r.trace[r.traceNext] = ev
		r.traceNext = (r.traceNext + 1) % r.traceCap
	}
	r.traceMu.Unlock()
}
