package telemetry

import "testing"

func TestSamplerBelowThresholdAdmitsAll(t *testing.T) {
	s := Sampler{Threshold: 100, Every: 10}
	for i := 0; i < 100; i++ {
		if !s.Sample(i, 100) {
			t.Fatalf("peer %d rejected below threshold", i)
		}
	}
	if got := s.SampledCount(100); got != 100 {
		t.Fatalf("SampledCount = %d, want 100", got)
	}
}

func TestSamplerStrideAboveThreshold(t *testing.T) {
	s := Sampler{Threshold: 100, Every: 10}
	admitted := 0
	for i := 0; i < 1000; i++ {
		if s.Sample(i, 1000) {
			admitted++
			if i%10 != 0 {
				t.Fatalf("peer %d admitted off-stride", i)
			}
		}
	}
	if admitted != 100 {
		t.Fatalf("admitted %d of 1000, want 100", admitted)
	}
	if got := s.SampledCount(1000); got != admitted {
		t.Fatalf("SampledCount = %d, admitted %d", got, admitted)
	}
}

func TestSamplerZeroValuesAdmitEverything(t *testing.T) {
	var s Sampler // Threshold 0: always sample
	for _, i := range []int{0, 1, 999999} {
		if !s.Sample(i, 1000000) {
			t.Fatalf("zero-value sampler rejected %d", i)
		}
	}
	s = Sampler{Threshold: 10, Every: 0} // Every < 1 acts as 1
	if !s.Sample(7, 1000) {
		t.Fatal("Every=0 must act as stride 1")
	}
	if got := s.SampledCount(1000); got != 1000 {
		t.Fatalf("SampledCount = %d, want 1000", got)
	}
}
