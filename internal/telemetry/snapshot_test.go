package telemetry

import (
	"bytes"
	"testing"
)

func populated() *Registry {
	r := New()
	r.SetClock(func() int64 { return 1000 })
	r.Counter("a/x").Add(3)
	r.Counter("a/y").Add(1)
	r.Gauge("g").Set(2.5)
	r.Histogram("h", []float64{1, 10}).Observe(5)
	r.Trace("start", 1, 0, F("round", 1))
	r.Trace("end", 2, -1)
	return r
}

func TestSnapshotCopiesState(t *testing.T) {
	r := populated()
	s := r.Snapshot()
	if s.Counters["a/x"] != 3 || s.Counters["a/y"] != 1 {
		t.Fatalf("counters = %v", s.Counters)
	}
	if s.Gauges["g"] != 2.5 {
		t.Fatalf("gauges = %v", s.Gauges)
	}
	h := s.Histograms["h"]
	if h.Count != 1 || h.Sum != 5 || h.Counts[1] != 1 {
		t.Fatalf("histogram = %+v", h)
	}
	if len(s.Trace) != 2 || s.TraceTotal != 2 || s.Trace[0].Kind != "start" {
		t.Fatalf("trace = %+v total %d", s.Trace, s.TraceTotal)
	}

	// Snapshot must be a copy: later updates do not leak into it.
	r.Counter("a/x").Add(10)
	r.Trace("late", 3, -1)
	if s.Counters["a/x"] != 3 || len(s.Trace) != 2 {
		t.Fatal("snapshot mutated by later registry updates")
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	var b1, b2 bytes.Buffer
	if err := populated().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := populated().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("two identically-populated registries serialized differently:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	if b1.Len() == 0 || b1.Bytes()[b1.Len()-1] != '\n' {
		t.Fatal("WriteJSON output must end in newline")
	}
}

func TestNilRegistryWriteJSON(t *testing.T) {
	var r *Registry
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	want := `{
  "counters": {},
  "gauges": {},
  "histograms": {},
  "trace": [],
  "trace_total": 0
}
`
	if b.String() != want {
		t.Fatalf("nil WriteJSON = %q, want %q", b.String(), want)
	}
}

func TestDiff(t *testing.T) {
	r := populated()
	old := r.Snapshot()
	r.Counter("a/x").Add(4)
	r.Counter("new").Inc()
	r.Gauge("g").Set(9)
	r.Histogram("h", nil).Observe(100)
	r.Trace("later", 5, 2)
	d := Diff(old, r.Snapshot())

	if len(d.Counters) != 2 || d.Counters["a/x"] != 4 || d.Counters["new"] != 1 {
		t.Fatalf("counter diff = %v", d.Counters)
	}
	if _, ok := d.Counters["a/y"]; ok {
		t.Fatal("unchanged counter appeared in diff")
	}
	if d.Gauges["g"] != 9 {
		t.Fatalf("gauge diff = %v", d.Gauges)
	}
	h := d.Histograms["h"]
	if h.Count != 1 || h.Sum != 100 || h.Counts[2] != 1 {
		t.Fatalf("histogram diff = %+v", h)
	}
	if len(d.Trace) != 1 || d.Trace[0].Kind != "later" || d.TraceTotal != 1 {
		t.Fatalf("trace diff = %+v total %d", d.Trace, d.TraceTotal)
	}
}

func TestDiffNilArgs(t *testing.T) {
	cur := populated().Snapshot()
	d := Diff(nil, cur)
	if d.Counters["a/x"] != 3 || d.TraceTotal != 2 {
		t.Fatalf("Diff(nil, cur) = %+v", d)
	}
	d = Diff(cur, nil)
	if len(d.Counters) != 0 {
		t.Fatalf("Diff(cur, nil).Counters = %v, want empty", d.Counters)
	}
}
