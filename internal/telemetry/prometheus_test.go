package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// TestPrometheusName: sanitization maps slash-hierarchical registry
// names into the Prometheus identifier charset under the p2pfl_ prefix.
func TestPrometheusName(t *testing.T) {
	cases := map[string]string{
		"raft/elections_won":        "p2pfl_raft_elections_won",
		"transport/peer3/bytes":     "p2pfl_transport_peer3_bytes",
		"weird name-with.runes/µs":  "p2pfl_weird_name_with_runes__s",
		"already_clean":             "p2pfl_already_clean",
		"colons:are:legal":          "p2pfl_colons:are:legal",
		"sac/phase_share_us":        "p2pfl_sac_phase_share_us",
		"round/fedavg_weight_total": "p2pfl_round_fedavg_weight_total",
	}
	for in, want := range cases {
		if got := PrometheusName(in); got != want {
			t.Errorf("PrometheusName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPrometheusCumulativeBuckets: the registry stores per-bucket
// counts; the exposition must emit cumulative buckets with the +Inf
// bucket equal to the total observation count.
func TestPrometheusCumulativeBuckets(t *testing.T) {
	reg := New()
	h := reg.Histogram("x/latency_us", []float64{100, 1000, 10000})
	h.Observe(50)    // bucket le=100
	h.Observe(500)   // bucket le=1000
	h.Observe(700)   // bucket le=1000
	h.Observe(99999) // overflow

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`p2pfl_x_latency_us_bucket{le="100"} 1`,
		`p2pfl_x_latency_us_bucket{le="1000"} 3`,
		`p2pfl_x_latency_us_bucket{le="10000"} 3`,
		`p2pfl_x_latency_us_bucket{le="+Inf"} 4`,
		`p2pfl_x_latency_us_count 4`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing line %q:\n%s", want, out)
		}
	}
}

// TestPrometheusCounterSuffixAndTypes: counters carry the _total suffix
// and a counter TYPE; gauges keep their name with a gauge TYPE.
func TestPrometheusCounterSuffixAndTypes(t *testing.T) {
	reg := New()
	reg.Counter("raft/msgs_sent").Add(7)
	reg.Gauge("round/progress").Set(0.5)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE p2pfl_raft_msgs_sent_total counter",
		"p2pfl_raft_msgs_sent_total 7",
		"# TYPE p2pfl_round_progress gauge",
		"p2pfl_round_progress 0.5",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing line %q:\n%s", want, out)
		}
	}
}

// TestPrometheusDeterministic: equal registries render byte-identical
// expositions (families sorted by name), and a nil registry renders the
// valid empty exposition.
func TestPrometheusDeterministic(t *testing.T) {
	build := func() *Registry {
		reg := New()
		reg.Counter("b/two").Add(2)
		reg.Counter("a/one").Inc()
		reg.Gauge("c/three").Set(3)
		reg.Histogram("d/four_us", []float64{10}).Observe(5)
		return reg
	}
	var b1, b2 bytes.Buffer
	if err := build().WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Errorf("equal registries rendered different bytes:\n%s\n---\n%s", b1.String(), b2.String())
	}
	idx := strings.Index(b1.String(), "p2pfl_a_one_total")
	idx2 := strings.Index(b1.String(), "p2pfl_b_two_total")
	if idx < 0 || idx2 < 0 || idx > idx2 {
		t.Errorf("families not sorted by exposed name:\n%s", b1.String())
	}

	var empty bytes.Buffer
	if err := (*Registry)(nil).WritePrometheus(&empty); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Errorf("nil registry exposition = %q, want empty", empty.String())
	}
}
