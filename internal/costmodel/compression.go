package costmodel

import "fmt"

// Closed forms for the compressed-distribution extension: when the
// FedAvg-layer model messages travel quantized or sparsified
// (internal/compress), the cost unit of those messages shrinks from
// 8·dim to the encoded block size below. The block layouts are fixed by
// the wire codec (internal/wire KindDeltaQuant/KindDeltaSparse); these
// formulas restate them independently so measured transport bytes, the
// wire encoder and this model can be cross-checked three ways.

// QuantBlockBytes returns the encoded size of a dense fixed-point block
// of dim coordinates at the given quantization width (1: int8, 2:
// int16): 13 bytes of block header (width + f64 scale + u32 count) plus
// width·dim values.
func QuantBlockBytes(width, dim int) (int64, error) {
	if width != 1 && width != 2 {
		return 0, fmt.Errorf("costmodel: quant width %d, want 1 or 2", width)
	}
	if dim < 0 {
		return 0, fmt.Errorf("costmodel: dim %d", dim)
	}
	return 13 + int64(width)*int64(dim), nil
}

// SparseBlockBytes returns the encoded size of a top-k sparse block
// keeping k of dim coordinates: u32 dim + u32 count + width byte, plus
// 4k index bytes, plus 8k value bytes at full precision (width 0) or an
// f64 scale and width·k quantized values (width 1 or 2).
func SparseBlockBytes(width, k int) (int64, error) {
	if k < 0 {
		return 0, fmt.Errorf("costmodel: k = %d", k)
	}
	switch width {
	case 0:
		return 9 + 12*int64(k), nil
	case 1, 2:
		return 17 + (4+int64(width))*int64(k), nil
	}
	return 0, fmt.Errorf("costmodel: sparse width %d, want 0, 1 or 2", width)
}

// DistributionMessages returns the number of FedAvg-layer model messages
// in one full-participation two-layer round over the given subgroup
// sizes: (m−1) uploads + (m−1) downloads + Σ(n_g−1) broadcasts, i.e.
// 2(m−1) + (N−m). These are exactly the messages compression applies to;
// the SAC-layer share/subtotal traffic stays at its 8·dim unit.
func DistributionMessages(sizes []int) (int64, error) {
	if len(sizes) == 0 {
		return 0, fmt.Errorf("costmodel: no subgroups")
	}
	total := 2 * int64(len(sizes)-1)
	for _, n := range sizes {
		if n < 1 {
			return 0, fmt.Errorf("costmodel: subgroup size %d", n)
		}
		total += int64(n - 1)
	}
	return total, nil
}

// DistributionBytes returns the FedAvg-layer distribution traffic of one
// full-participation round when every model message costs msgBytes —
// 8·dim uncompressed, or a QuantBlockBytes/SparseBlockBytes unit under
// compression. internal/core charges exactly this: the tests drive a
// round at several N and compare the fedavg/* counters against it.
func DistributionBytes(sizes []int, msgBytes int64) (int64, error) {
	if msgBytes < 0 {
		return 0, fmt.Errorf("costmodel: message bytes %d", msgBytes)
	}
	msgs, err := DistributionMessages(sizes)
	if err != nil {
		return 0, err
	}
	return msgs * msgBytes, nil
}
