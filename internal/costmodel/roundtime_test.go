package costmodel

import (
	"testing"
	"time"
)

var gigabitLink = LinkModel{BandwidthBps: 125e6, Latency: 15 * time.Millisecond} // 1 Gb/s, 15 ms

func TestRoundTimeValidation(t *testing.T) {
	if _, _, err := RoundTime(0, 3, 3, 100, gigabitLink); err == nil {
		t.Fatal("want error for m=0")
	}
	if _, _, err := RoundTime(2, 3, 4, 100, gigabitLink); err == nil {
		t.Fatal("want error for k>n")
	}
	if _, _, err := RoundTime(2, 3, 3, 100, LinkModel{}); err == nil {
		t.Fatal("want error for zero bandwidth")
	}
	if _, _, err := RoundTime(2, 3, 3, 100, LinkModel{BandwidthBps: 1, Latency: -time.Second}); err == nil {
		t.Fatal("want error for negative latency")
	}
	if _, err := BaselineRoundTime(0, 100, gigabitLink); err == nil {
		t.Fatal("want error for N=0")
	}
	if _, err := BaselineRoundTime(3, 100, LinkModel{}); err == nil {
		t.Fatal("want error for bad link")
	}
}

func TestRoundTimePhases(t *testing.T) {
	total, phases, err := RoundTime(3, 5, 5, 1000, gigabitLink)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 5 {
		t.Fatalf("phases = %d", len(phases))
	}
	sum := time.Duration(0)
	for _, p := range phases {
		if p < 0 {
			t.Fatal("negative phase")
		}
		sum += p
	}
	if sum != total {
		t.Fatalf("total %v != phase sum %v", total, sum)
	}
}

// The time story the byte counts miss: subgrouping shortens rounds both
// by moving fewer bytes AND by running subgroup SACs in parallel.
func TestTwoLayerRoundFasterThanBaseline(t *testing.T) {
	w := WeightBytes(PaperCNNParams, BytesPerParam32) // ≈ 5 MB
	base, err := BaselineRoundTime(30, w, gigabitLink)
	if err != nil {
		t.Fatal(err)
	}
	two, _, err := RoundTime(6, 5, 5, w, gigabitLink)
	if err != nil {
		t.Fatal(err)
	}
	if two >= base {
		t.Fatalf("two-layer round %v not faster than baseline %v", two, base)
	}
	// The speedup should be substantial (the paper's 10× byte reduction
	// translates to several-fold wall-clock at these parameters).
	if float64(base)/float64(two) < 3 {
		t.Fatalf("round-time speedup only %.2fx", float64(base)/float64(two))
	}
}

// Fault tolerance costs time as well as bytes: k<n ships more shares.
func TestFaultToleranceCostsTime(t *testing.T) {
	w := int64(1 << 20)
	nn, _, err := RoundTime(6, 5, 5, w, gigabitLink)
	if err != nil {
		t.Fatal(err)
	}
	kn, _, err := RoundTime(6, 5, 3, w, gigabitLink)
	if err != nil {
		t.Fatal(err)
	}
	if kn <= nn {
		t.Fatalf("k-out-of-n round %v not above n-out-of-n %v", kn, nn)
	}
}

// Latency floor: with huge bandwidth the round collapses to a few RTTs.
func TestRoundTimeLatencyFloor(t *testing.T) {
	link := LinkModel{BandwidthBps: 1e15, Latency: 10 * time.Millisecond}
	total, phases, err := RoundTime(4, 5, 5, 1<<20, link)
	if err != nil {
		t.Fatal(err)
	}
	want := time.Duration(len(phases)) * 10 * time.Millisecond
	if total < want || total > want+time.Millisecond {
		t.Fatalf("total %v, want ≈ %v (pure latency)", total, want)
	}
}

func TestDegenerateShapes(t *testing.T) {
	// m=1: no FedAvg layer phases.
	_, phases, err := RoundTime(1, 5, 5, 1000, gigabitLink)
	if err != nil {
		t.Fatal(err)
	}
	if phases[2] != 0 || phases[3] != 0 {
		t.Fatal("m=1 must skip FedAvg phases")
	}
	// n=1: no SAC phases.
	_, phases, err = RoundTime(5, 1, 1, 1000, gigabitLink)
	if err != nil {
		t.Fatal(err)
	}
	if phases[0] != 0 || phases[1] != 0 {
		t.Fatal("n=1 must skip SAC phases")
	}
	// Single-peer baseline does nothing.
	d, err := BaselineRoundTime(1, 1000, gigabitLink)
	if err != nil || d != 0 {
		t.Fatalf("baseline(1) = %v, %v", d, err)
	}
}
