package costmodel_test

import (
	"fmt"

	"repro/internal/costmodel"
)

// The paper's headline: two-layer fault-tolerant aggregation at 30 peers
// is 10.36× cheaper than one-layer SAC.
func ExampleReduction() {
	r, _ := costmodel.Reduction(30, 10, 3, 2) // N=30, m=10, n=3, k=2
	fmt.Printf("%.2fx\n", r)
	// Output: 10.36x
}

// Eq. 4: the two-layer n-out-of-n cost in units of |w|.
func ExampleTwoLayerUnits() {
	units, _ := costmodel.TwoLayerUnits(6, 5) // m=6 subgroups of n=5
	w := costmodel.WeightBytes(costmodel.PaperCNNParams, costmodel.BytesPerParam32)
	fmt.Printf("%d units = %.2f Gb for the paper's CNN\n", units, costmodel.Gigabits(units*w))
	// Output: 178 units = 7.12 Gb for the paper's CNN
}

// Eq. 10: X-layer aggregation stays O(nN) no matter the depth.
func ExampleMultiLayerUnits() {
	for x := 1; x <= 3; x++ {
		n, _ := costmodel.MultiLayerPeers(3, x)
		u, _ := costmodel.MultiLayerUnits(3, x)
		fmt.Printf("X=%d: %d peers, %d units\n", x, n, u)
	}
	// Output:
	// X=1: 3 peers, 10 units
	// X=2: 9 peers, 40 units
	// X=3: 21 peers, 100 units
}
