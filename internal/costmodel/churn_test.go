package costmodel

import (
	"testing"

	"repro/internal/wire"
)

// The churn closed forms restate the wire codec's frame layouts; these
// tests cross-check them against the encoder's own exact sizes so the
// two can never drift apart silently.

func TestDirectoryUpdateBytesMatchWireCodec(t *testing.T) {
	for _, addr := range []string{"", "p:1", "peer-1234:7100", "a-much-longer-hostname.example.com:7100"} {
		want := wire.DirectoryFrameSize(len(addr))
		got, err := DirectoryUpdateBytes(len(addr))
		if err != nil {
			t.Fatal(err)
		}
		if got != int64(want) {
			t.Fatalf("DirectoryUpdateBytes(%d) = %d, wire frame is %d", len(addr), got, want)
		}
		// And against actually encoded bytes, not just the size helper.
		frame := wire.AppendDirectoryFrame(nil, wire.DirectoryUpdate{
			Op: wire.DirJoin, ID: 42, Subgroup: 1, ShareIndex: 2, Addr: addr,
		})
		if got != int64(len(frame)) {
			t.Fatalf("DirectoryUpdateBytes(%d) = %d, encoded frame is %d bytes", len(addr), got, len(frame))
		}
	}
	if _, err := DirectoryUpdateBytes(-1); err == nil {
		t.Fatal("want error for negative address length")
	}
}

func TestDirectoryChurnBytesClosedForm(t *testing.T) {
	// 3 joins and 2 leaves on a 5-member layer with 14-byte addresses:
	// 4 followers × (3·47 + 2·33) = 4 × 207 = 828.
	got, err := DirectoryChurnBytes(3, 2, 5, 14)
	if err != nil {
		t.Fatal(err)
	}
	if got != 828 {
		t.Fatalf("DirectoryChurnBytes = %d, want 828", got)
	}
	// A single-member layer replicates to nobody.
	if got, _ := DirectoryChurnBytes(10, 10, 1, 14); got != 0 {
		t.Fatalf("single-member layer cost %d, want 0", got)
	}
	for _, bad := range [][4]int{{-1, 0, 3, 4}, {0, -1, 3, 4}, {1, 1, 0, 4}, {1, 1, 3, -1}} {
		if _, err := DirectoryChurnBytes(bad[0], bad[1], bad[2], bad[3]); err == nil {
			t.Fatalf("want error for %v", bad)
		}
	}
}

func TestHandoffModelBytesMatchWireCodec(t *testing.T) {
	for _, dim := range []int{0, 1, 5, 1024} {
		w := make([]float64, dim)
		want := wire.CheckpointFrameSize(wire.Checkpoint{
			Names: []string{"model"}, Sizes: []int{dim}, Weights: w,
		})
		got, err := HandoffModelBytes(dim)
		if err != nil {
			t.Fatal(err)
		}
		if got != int64(want) {
			t.Fatalf("HandoffModelBytes(%d) = %d, wire frame is %d", dim, got, want)
		}
	}
	if _, err := HandoffModelBytes(-1); err == nil {
		t.Fatal("want error for negative dim")
	}
}
