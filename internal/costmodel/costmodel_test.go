package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBaselineUnits(t *testing.T) {
	got, err := BaselineUnits(10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 180 { // 2·10·9
		t.Fatalf("baseline(10) = %d", got)
	}
	if _, err := BaselineUnits(0); err == nil {
		t.Fatal("want error")
	}
}

func TestTwoLayerUnitsKnown(t *testing.T) {
	// m=1 degenerates to one-layer leader-collect SAC: n²+n−2 = (n²−1)+(n−1).
	got, err := TwoLayerUnits(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 28 {
		t.Fatalf("two-layer(1,5) = %d", got)
	}
	// Consistency with Eq. 5 at k=n.
	for _, mn := range [][2]int{{2, 3}, {5, 5}, {10, 3}} {
		a, err := TwoLayerUnits(mn[0], mn[1])
		if err != nil {
			t.Fatal(err)
		}
		b, err := TwoLayerKNUnits(mn[0], mn[1], mn[1])
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("Eq.4(%v) = %d but Eq.5 with k=n = %d", mn, a, b)
		}
	}
}

func TestTwoLayerKNValidation(t *testing.T) {
	if _, err := TwoLayerKNUnits(0, 3, 2); err == nil {
		t.Fatal("want error for m=0")
	}
	if _, err := TwoLayerKNUnits(2, 3, 0); err == nil {
		t.Fatal("want error for k=0")
	}
	if _, err := TwoLayerKNUnits(2, 3, 4); err == nil {
		t.Fatal("want error for k>n")
	}
}

func TestHeadlineRatios(t *testing.T) {
	// Paper Sec. VII-B: 10.36× for n,k,N = 3,2,30.
	r, err := Reduction(30, 10, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-10.357) > 0.01 {
		t.Fatalf("reduction(3,2,30) = %.3f, want ≈ 10.36", r)
	}
	// 14.75× for n,k,N = 3,3,30.
	r, err = Reduction(30, 10, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-14.745) > 0.01 {
		t.Fatalf("reduction(3,3,30) = %.3f, want ≈ 14.75", r)
	}
	// 4.29× for n,k,N = 5,3,30.
	r, err = Reduction(30, 6, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-4.29) > 0.03 {
		t.Fatalf("reduction(5,3,30) = %.3f, want ≈ 4.29", r)
	}
	// "About 20×" for N=50 with n=k=3 (paper: 23.80× with its own
	// rounding of m): accept the 17–25 band.
	base, _ := BaselineUnits(50)
	two, err := TwoLayerUnevenKNUnits([]int{3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(base) / float64(two)
	if ratio < 17 || ratio > 26 {
		t.Fatalf("reduction at N=50 = %.2f, want ≈ 20×", ratio)
	}
}

func TestTwoLayerUnevenMatchesEvenCase(t *testing.T) {
	a, err := TwoLayerUnevenUnits([]int{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TwoLayerUnits(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("uneven(%d) != even(%d)", a, b)
	}
	// And the k-variant agrees with Eq. 5 on equal sizes.
	a, err = TwoLayerUnevenKNUnits([]int{5, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err = TwoLayerKNUnits(2, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("uneven-kn(%d) != Eq.5(%d)", a, b)
	}
	if _, err := TwoLayerUnevenUnits(nil); err == nil {
		t.Fatal("want error for no subgroups")
	}
	if _, err := TwoLayerUnevenKNUnits([]int{3}, 0); err == nil {
		t.Fatal("want error for k=0")
	}
	if _, err := TwoLayerUnevenUnits([]int{0}); err == nil {
		t.Fatal("want error for zero size")
	}
	if _, err := TwoLayerUnevenKNUnits([]int{0}, 1); err == nil {
		t.Fatal("want error for zero size")
	}
}

// Property: the Fig. 13 shape — for fixed N, the two-layer cost at
// 1 < m < N is below the m=1 (pure SAC leader-collect) cost, and cost
// decreases monotonically... not strictly (integer effects), but the
// m=1 → m=2 step must drop sharply.
func TestCostDropsWithMoreSubgroups(t *testing.T) {
	sizes := func(n, m int) []int {
		out := make([]int, m)
		base, rem := n/m, n%m
		for i := range out {
			out[i] = base
			if i < rem {
				out[i]++
			}
		}
		return out
	}
	for _, N := range []int{12, 30} {
		one, err := TwoLayerUnevenUnits(sizes(N, 1))
		if err != nil {
			t.Fatal(err)
		}
		six, err := TwoLayerUnevenUnits(sizes(N, 6))
		if err != nil {
			t.Fatal(err)
		}
		if six*2 >= one {
			t.Fatalf("N=%d: m=6 cost %d not well below m=1 cost %d", N, six, one)
		}
	}
}

func TestMultiLayerPeersKnown(t *testing.T) {
	// X=1: N=n. X=2: n + n(n−1).
	n, err := MultiLayerPeers(3, 1)
	if err != nil || n != 3 {
		t.Fatalf("peers(3,1) = %d, %v", n, err)
	}
	n, err = MultiLayerPeers(3, 2)
	if err != nil || n != 9 {
		t.Fatalf("peers(3,2) = %d, %v", n, err)
	}
	n, err = MultiLayerPeers(4, 3)
	if err != nil || n != 4+12+36 {
		t.Fatalf("peers(4,3) = %d, %v", n, err)
	}
	if _, err := MultiLayerPeers(1, 2); err == nil {
		t.Fatal("want error for n=1")
	}
}

// Eq. 10's closed form must equal the first-principles derivation
// (Eqs. 7–9) for every n and X.
func TestMultiLayerCostClosedForm(t *testing.T) {
	f := func(nRaw, xRaw uint8) bool {
		n := int(nRaw%6) + 2 // 2..7
		x := int(xRaw%4) + 1 // 1..4
		closed, err1 := MultiLayerUnits(n, x)
		derived, err2 := MultiLayerUnitsDerived(n, x)
		return err1 == nil && err2 == nil && closed == derived
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightBytesAndGigabits(t *testing.T) {
	// The paper's |w|: 1.25M params × 4 bytes ≈ 5 MB ≈ 0.04 Gb.
	w := WeightBytes(PaperCNNParams, BytesPerParam32)
	if w != 5003432 {
		t.Fatalf("|w| = %d bytes", w)
	}
	gb := Gigabits(w)
	if math.Abs(gb-0.0400) > 0.0005 {
		t.Fatalf("|w| = %.4f Gb", gb)
	}
	// Fig. 13's m=6 point: ≈ 7.12 Gb for N=30.
	units, err := TwoLayerUnevenUnits([]int{5, 5, 5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	total := Gigabits(units * w)
	if math.Abs(total-7.12) > 0.15 {
		t.Fatalf("Fig.13 m=6 cost = %.2f Gb, want ≈ 7.12", total)
	}
	// And the baseline (m=1 one-layer broadcast SAC): 2·30·29 units ≈ 69.6 Gb;
	// the paper says m=6 is "about one-tenth" of one-layer SAC.
	base, _ := BaselineUnits(30)
	if r := float64(base) / float64(units); r < 8 || r > 12 {
		t.Fatalf("m=6 reduction = %.2f, want ≈ 10", r)
	}
}

func TestMultiLayerApproachesLinear(t *testing.T) {
	// Sec. VII-C: communication complexity is O(nN); for fixed n the
	// per-peer cost (N−1)(n+2)/N approaches the constant n+2.
	for _, x := range []int{2, 3, 4, 5} {
		n := 3
		N, err := MultiLayerPeers(n, x)
		if err != nil {
			t.Fatal(err)
		}
		units, err := MultiLayerUnits(n, x)
		if err != nil {
			t.Fatal(err)
		}
		perPeer := float64(units) / float64(N)
		if perPeer > float64(n+2) {
			t.Fatalf("X=%d: per-peer cost %.2f exceeds n+2 = %d", x, perPeer, n+2)
		}
	}
}
