package costmodel_test

import (
	"math/rand"
	"testing"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/wire"
)

// TestBlockBytesMatchWireCodec cross-checks the dependency-free closed
// forms against the wire codec's own size functions.
func TestBlockBytesMatchWireCodec(t *testing.T) {
	for _, width := range []int{1, 2} {
		for _, dim := range []int{0, 1, 7, 1000, 1250858} {
			got, err := costmodel.QuantBlockBytes(width, dim)
			if err != nil {
				t.Fatal(err)
			}
			if want := int64(wire.QuantBlockSize(width, dim)); got != want {
				t.Fatalf("QuantBlockBytes(%d,%d) = %d, wire says %d", width, dim, got, want)
			}
		}
	}
	for _, width := range []int{0, 1, 2} {
		for _, k := range []int{0, 1, 100, 125085} {
			got, err := costmodel.SparseBlockBytes(width, k)
			if err != nil {
				t.Fatal(err)
			}
			if want := int64(wire.SparseBlockSize(width, k)); got != want {
				t.Fatalf("SparseBlockBytes(%d,%d) = %d, wire says %d", width, k, got, want)
			}
		}
	}
	if _, err := costmodel.QuantBlockBytes(3, 10); err == nil {
		t.Fatal("bad width accepted")
	}
	if _, err := costmodel.SparseBlockBytes(9, 10); err == nil {
		t.Fatal("bad sparse width accepted")
	}
}

// TestDistributionBytesMatchMeasured is the acceptance check: at
// N ∈ {5, 15, 45}, a full two-layer round's measured fedavg/* traffic
// equals DistributionBytes exactly — uncompressed and under every
// compression scheme (whose per-message unit is the compress closed
// form, itself pinned to the wire codec above).
func TestDistributionBytesMatchMeasured(t *testing.T) {
	const dim = 64
	for _, N := range []int{5, 15, 45} {
		m := (N + 4) / 5 // subgroups of ~5
		sizes, err := core.SplitPeers(N, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, cc := range []compress.Config{
			{},
			{Scheme: compress.Quant8},
			{Scheme: compress.Quant16},
			{Scheme: compress.TopKQuant8, Frac: 0.25},
		} {
			sys, err := core.NewSystem(core.Config{Sizes: sizes, Compression: cc}, rand.New(rand.NewSource(3)))
			if err != nil {
				t.Fatal(err)
			}
			models := make([][]float64, N)
			rng := rand.New(rand.NewSource(int64(N)))
			for i := range models {
				models[i] = make([]float64, dim)
				for j := range models[i] {
					models[i][j] = rng.NormFloat64()
				}
			}
			if _, err := sys.Aggregate(models, nil, nil); err != nil {
				t.Fatal(err)
			}
			measured := sys.Counter().Bytes(core.KindUpload) +
				sys.Counter().Bytes(core.KindDownload) +
				sys.Counter().Bytes(core.KindBroadcast)
			want, err := costmodel.DistributionBytes(sizes, cc.MessageBytes(dim))
			if err != nil {
				t.Fatal(err)
			}
			if measured != want {
				t.Fatalf("N=%d scheme=%v: measured distribution %dB, closed form %dB", N, cc.Scheme, measured, want)
			}
			msgs, err := costmodel.DistributionMessages(sizes)
			if err != nil {
				t.Fatal(err)
			}
			gotMsgs := sys.Counter().Messages(core.KindUpload) +
				sys.Counter().Messages(core.KindDownload) +
				sys.Counter().Messages(core.KindBroadcast)
			if gotMsgs != msgs {
				t.Fatalf("N=%d: %d distribution messages, closed form %d", N, gotMsgs, msgs)
			}
		}
	}
}
