package costmodel

import (
	"fmt"
	"time"
)

// LinkModel describes the per-peer network capability used by the
// round-time analysis: full-duplex bandwidth and one-way propagation
// latency. Transfers from one peer serialize on its uplink; transfers of
// different peers proceed in parallel.
type LinkModel struct {
	// BandwidthBps is the per-peer up/down bandwidth in bytes/second.
	BandwidthBps float64
	// Latency is the one-way propagation delay.
	Latency time.Duration
}

func (l LinkModel) validate() error {
	if l.BandwidthBps <= 0 {
		return fmt.Errorf("costmodel: bandwidth %v must be positive", l.BandwidthBps)
	}
	if l.Latency < 0 {
		return fmt.Errorf("costmodel: negative latency")
	}
	return nil
}

// transfer returns the wall time for one peer to push `bytes` through
// its uplink plus propagation.
func (l LinkModel) transfer(bytes int64) time.Duration {
	return l.Latency + time.Duration(float64(bytes)/l.BandwidthBps*float64(time.Second))
}

// RoundTime estimates the wall-clock duration of one two-layer
// aggregation round with k-out-of-n subgroups (the paper analyzes bytes
// only — this model adds the time dimension, which is what the
// subgrouping actually buys: subgroup SACs run in parallel).
//
// Phase model (per-peer serialized uplinks, cross-peer parallelism):
//
//  1. share exchange   — every peer uploads (n−1)(n−k+1)·|w|
//  2. subtotal collect — K−1 peers send one subtotal each in parallel
//  3. FedAvg upload    — m−1 leaders send their aggregate in parallel
//  4. FedAvg download  — the leader serializes m−1 copies of the model
//  5. broadcast        — each subgroup leader serializes n−1 copies
//
// All m subgroups run phases 1–2 concurrently. Returns the total and a
// per-phase breakdown.
func RoundTime(m, n, k int, weightBytes int64, link LinkModel) (time.Duration, []time.Duration, error) {
	if m < 1 || n < 1 {
		return 0, nil, fmt.Errorf("costmodel: m=%d n=%d", m, n)
	}
	if k < 1 || k > n {
		return 0, nil, fmt.Errorf("costmodel: k=%d out of [1,%d]", k, n)
	}
	if err := link.validate(); err != nil {
		return 0, nil, err
	}
	w := weightBytes
	phases := []time.Duration{
		// 1: each peer pushes (n−1)(n−k+1) share vectors.
		link.transfer(int64(n-1) * int64(n-k+1) * w),
		// 2: subtotal owners push one |w| each, concurrently.
		link.transfer(w),
		// 3: subgroup leaders push one |w| each, concurrently.
		link.transfer(w),
		// 4: the FedAvg leader serializes m−1 downloads.
		link.transfer(int64(m-1) * w),
		// 5: each subgroup leader serializes n−1 broadcasts.
		link.transfer(int64(n-1) * w),
	}
	if n == 1 {
		phases[0], phases[1] = 0, 0
	}
	if m == 1 {
		phases[2], phases[3] = 0, 0
	}
	total := time.Duration(0)
	for _, p := range phases {
		total += p
	}
	return total, phases, nil
}

// BaselineRoundTime estimates the wall time of the original one-layer
// SAC (Alg. 2): every peer uploads N−1 shares, then broadcasts its
// subtotal to N−1 peers, all uplinks serialized per peer.
func BaselineRoundTime(n int, weightBytes int64, link LinkModel) (time.Duration, error) {
	if n < 1 {
		return 0, fmt.Errorf("costmodel: N = %d", n)
	}
	if err := link.validate(); err != nil {
		return 0, err
	}
	if n == 1 {
		return 0, nil
	}
	shares := link.transfer(int64(n-1) * weightBytes)
	subtotals := link.transfer(int64(n-1) * weightBytes)
	return shares + subtotals, nil
}
