package costmodel

import "fmt"

// Closed forms for the continuous-churn control plane's traffic
// (DESIGN.md §14): directory updates replicated on the FedAvg-layer
// log, and graceful-handoff state transfers. As with the compression
// forms, the byte counts are fixed by the wire codec (KindDirectory and
// KindCheckpoint frames) and restated here independently so measured
// bytes, the wire encoder and this model can be cross-checked.

// DirectoryUpdateBytes returns the on-wire size of one directory update
// whose address string has addrLen bytes: the 12-byte frame header plus
// a 21-byte fixed payload (op u8, id u64, subgroup u32, shareIdx u32,
// addr length u32) plus the address itself. Leave updates carry an
// empty address, so their size is DirectoryUpdateBytes(0).
func DirectoryUpdateBytes(addrLen int) (int64, error) {
	if addrLen < 0 {
		return 0, fmt.Errorf("costmodel: address length %d", addrLen)
	}
	return 33 + int64(addrLen), nil
}

// DirectoryChurnBytes returns the FedAvg-layer replication traffic of a
// churn episode with the given join and leave counts: each committed
// update is carried once to each of the m−1 followers of an m-member
// layer (the proposing leader appends locally for free), joins at
// DirectoryUpdateBytes(addrLen) and leaves at DirectoryUpdateBytes(0).
// This is the entire steady-state cost of the directory — a membership
// change is one log entry, independent of system size N, versus the
// O(N) gossip or full-list rebroadcast a naive design would pay.
func DirectoryChurnBytes(joins, leaves, m, addrLen int) (int64, error) {
	if joins < 0 || leaves < 0 {
		return 0, fmt.Errorf("costmodel: negative churn counts (%d joins, %d leaves)", joins, leaves)
	}
	if m < 1 {
		return 0, fmt.Errorf("costmodel: FedAvg layer of %d members", m)
	}
	joinBytes, err := DirectoryUpdateBytes(addrLen)
	if err != nil {
		return 0, err
	}
	leaveBytes, _ := DirectoryUpdateBytes(0)
	return int64(m-1) * (int64(joins)*joinBytes + int64(leaves)*leaveBytes), nil
}

// HandoffModelBytes returns the checkpoint-frame size of a graceful
// handoff's model transfer under the cluster layer's single-tensor
// convention (one parameter named "model" holding the whole dim-length
// vector): 12-byte header + 4 (param count) + 9 (name) + 4 (size) +
// 4 + 8·dim (weights), i.e. 33 + 8·dim — the paper's 8·dim cost unit
// plus 33 bytes of framing.
func HandoffModelBytes(dim int) (int64, error) {
	if dim < 0 {
		return 0, fmt.Errorf("costmodel: dim %d", dim)
	}
	return 33 + 8*int64(dim), nil
}
