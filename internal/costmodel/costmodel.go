// Package costmodel implements the closed-form communication-cost
// analysis of Sec. VII of the paper, in units of |w| (the byte size of
// one weight tensor) so the formulas can be compared both against each
// other (Figs. 13, 14) and against bytes measured by internal/transport.
//
// All costs are per aggregation round, over the whole network:
//
//	baseline one-layer SAC (Alg. 2):  2N(N−1)·|w|
//	two-layer, n-out-of-n (Eq. 4):    (mn²+mn−2)·|w|
//	two-layer, k-out-of-n (Eq. 5):    {(n²−kn+k)N+km−2}·|w|
//	X-layer,  n-out-of-n (Eq. 10):    (N−1)(n+2)·|w|
package costmodel

import "fmt"

// PaperCNNParams is the parameter count of the paper's Fig. 5 CNN for
// CIFAR-10 ("1.25M parameters"; the exact count of the architecture).
const PaperCNNParams = 1250858

// BytesPerParam is the wire size of one weight. The paper plots costs in
// gigabits assuming 32-bit floats; this reproduction's transports move
// float64 (8 bytes). Both are supported: use WeightBytes to pick.
const (
	BytesPerParam32 = 4
	BytesPerParam64 = 8
)

// WeightBytes returns |w| in bytes for a model with params parameters at
// the given per-parameter width.
func WeightBytes(params, bytesPerParam int) int64 {
	return int64(params) * int64(bytesPerParam)
}

// Gigabits converts bytes to gigabits (the unit of Figs. 13–14).
func Gigabits(bytes int64) float64 { return float64(bytes) * 8 / 1e9 }

// BaselineUnits returns the one-layer SAC cost 2N(N−1) in units of |w|.
func BaselineUnits(n int) (int64, error) {
	if n < 1 {
		return 0, fmt.Errorf("costmodel: N = %d", n)
	}
	return 2 * int64(n) * int64(n-1), nil
}

// TwoLayerUnits returns Eq. 4 — (mn²+mn−2) — for m equal subgroups of
// size n (n-out-of-n sharing).
func TwoLayerUnits(m, n int) (int64, error) {
	if m < 1 || n < 1 {
		return 0, fmt.Errorf("costmodel: m=%d n=%d", m, n)
	}
	mm, nn := int64(m), int64(n)
	return mm*nn*nn + mm*nn - 2, nil
}

// TwoLayerKNUnits returns Eq. 5 — (n²−kn+k)N + km − 2 — for m equal
// subgroups of size n with threshold k, N = m·n.
func TwoLayerKNUnits(m, n, k int) (int64, error) {
	if m < 1 || n < 1 {
		return 0, fmt.Errorf("costmodel: m=%d n=%d", m, n)
	}
	if k < 1 || k > n {
		return 0, fmt.Errorf("costmodel: k=%d out of [1,%d]", k, n)
	}
	mm, nn, kk := int64(m), int64(n), int64(k)
	N := mm * nn
	return (nn*nn-kk*nn+kk)*N + kk*mm - 2, nil
}

// TwoLayerUnevenUnits computes the two-layer n-out-of-n cost for uneven
// subgroup sizes (the Fig. 13 sweep distributes N mod m evenly):
// Σ(n_g²−1) for the subgroup SACs + 2(m−1) for the FedAvg layer +
// Σ(n_g−1) for the final broadcast.
func TwoLayerUnevenUnits(sizes []int) (int64, error) {
	if len(sizes) == 0 {
		return 0, fmt.Errorf("costmodel: no subgroups")
	}
	var total int64
	for _, n := range sizes {
		if n < 1 {
			return 0, fmt.Errorf("costmodel: subgroup size %d", n)
		}
		nn := int64(n)
		total += nn*nn - 1 // subgroup SAC (leader-collect)
		total += nn - 1    // broadcast to followers
	}
	total += 2 * int64(len(sizes)-1) // FedAvg upload + download
	return total, nil
}

// TwoLayerUnevenKNUnits generalizes TwoLayerUnevenUnits to a threshold k
// per subgroup (clamped to the subgroup size).
func TwoLayerUnevenKNUnits(sizes []int, k int) (int64, error) {
	if len(sizes) == 0 {
		return 0, fmt.Errorf("costmodel: no subgroups")
	}
	if k < 1 {
		return 0, fmt.Errorf("costmodel: k = %d", k)
	}
	var total int64
	for _, n := range sizes {
		if n < 1 {
			return 0, fmt.Errorf("costmodel: subgroup size %d", n)
		}
		kk := k
		if kk > n {
			kk = n
		}
		nn, kn := int64(n), int64(kk)
		total += nn*(nn-1)*(nn-kn+1) + (kn - 1) // subgroup SAC (Alg. 4)
		total += nn - 1                         // broadcast to followers
	}
	total += 2 * int64(len(sizes)-1)
	return total, nil
}

// TwoLayerSecureUpperUnits returns the two-layer cost when the upper
// layer also uses SAC (the Sec. IV-D stronger-privacy variant this
// library implements as core.Config.SecureUpper): the 2(m−1) FedAvg
// upload is replaced by a leader-collect SAC of (m²−1), keeping the
// (m−1) download and the m(n−1) broadcast.
func TwoLayerSecureUpperUnits(m, n int) (int64, error) {
	if m < 1 || n < 1 {
		return 0, fmt.Errorf("costmodel: m=%d n=%d", m, n)
	}
	mm, nn := int64(m), int64(n)
	subgroup := mm * (nn*nn - 1)
	upper := int64(0)
	if m > 1 {
		upper = mm*mm - 1
	}
	return subgroup + upper + (mm - 1) + mm*(nn-1), nil
}

// MultiLayerPeers returns Eq. 6: the total peers of an X-layer system
// with subgroup size n, N = Σ_{x=1..X} n(n−1)^{x−1}.
func MultiLayerPeers(n, layers int) (int64, error) {
	if n < 2 || layers < 1 {
		return 0, fmt.Errorf("costmodel: n=%d X=%d", n, layers)
	}
	var total, term int64 = 0, int64(n)
	for x := 1; x <= layers; x++ {
		total += term
		term *= int64(n - 1)
	}
	return total, nil
}

// MultiLayerUnits returns Eq. 10: the X-layer aggregation cost
// (N−1)(n+2) in units of |w|, with N from MultiLayerPeers.
func MultiLayerUnits(n, layers int) (int64, error) {
	N, err := MultiLayerPeers(n, layers)
	if err != nil {
		return 0, err
	}
	return (N - 1) * int64(n+2), nil
}

// MultiLayerUnitsDerived recomputes the X-layer cost from first
// principles (Eq. 7: per-aggregation cost (n²−1)|w| times the number of
// aggregations, plus (N−1)|w| distribution) — used to verify the closed
// form of Eq. 10.
func MultiLayerUnitsDerived(n, layers int) (int64, error) {
	N, err := MultiLayerPeers(n, layers)
	if err != nil {
		return 0, err
	}
	// Number of aggregations: Σ_{x=1..X−1} n(n−1)^{x−1} + 1.
	var aggs, term int64 = 1, int64(n)
	for x := 1; x <= layers-1; x++ {
		aggs += term
		term *= int64(n - 1)
	}
	nn := int64(n)
	return (nn*nn-1)*aggs + (N - 1), nil
}

// Reduction returns the baseline/two-layer cost ratio for the given
// setting — the paper's headline numbers (e.g. 10.36× at n,k,N = 3,2,30).
func Reduction(total, m, n, k int) (float64, error) {
	base, err := BaselineUnits(total)
	if err != nil {
		return 0, err
	}
	two, err := TwoLayerKNUnits(m, n, k)
	if err != nil {
		return 0, err
	}
	return float64(base) / float64(two), nil
}

// ScaleTier names one point on the massive-scale X-layer curve: a
// subgroup degree and depth whose Eq. 6 peer count lands in the named
// magnitude band. The engine's scale tests and `p2pfl-bench -multilayer`
// walk these tiers, cross-checking measured bytes against Eq. 10 at each.
type ScaleTier struct {
	Name   string // magnitude label: "1k", "10k", "100k"
	Degree int    // subgroup size n
	Layers int    // depth X
	Peers  int64  // Eq. 6 total, denormalized for display
}

// ScaleTiers returns the standard scale ladder: degree-4 trees of depth
// 6/8/10, i.e. N = 2(3^X − 1) = 1456, 13120, and 118096 peers.
func ScaleTiers() []ScaleTier {
	tiers := []ScaleTier{
		{Name: "1k", Degree: 4, Layers: 6},
		{Name: "10k", Degree: 4, Layers: 8},
		{Name: "100k", Degree: 4, Layers: 10},
	}
	for i := range tiers {
		n, err := MultiLayerPeers(tiers[i].Degree, tiers[i].Layers)
		if err != nil {
			panic(err) // static parameters; unreachable
		}
		tiers[i].Peers = n
	}
	return tiers
}

// TierFor returns the shallowest degree-n tier holding at least peers
// peers: the depth a deployment of that size needs.
func TierFor(n int, peers int64) (ScaleTier, error) {
	if peers < 1 {
		return ScaleTier{}, fmt.Errorf("costmodel: peers = %d", peers)
	}
	for layers := 1; ; layers++ {
		total, err := MultiLayerPeers(n, layers)
		if err != nil {
			return ScaleTier{}, err
		}
		if total >= peers {
			return ScaleTier{Name: fmt.Sprintf("custom-%d", peers), Degree: n, Layers: layers, Peers: total}, nil
		}
		if layers > 64 {
			return ScaleTier{}, fmt.Errorf("costmodel: no tier of degree %d reaches %d peers", n, peers)
		}
	}
}
