package costmodel_test

import (
	"testing"

	"repro/internal/costmodel"
)

// Boundary values of the closed forms. Each degenerate setting must
// reduce to the obviously-correct count, not merely avoid an error:
// a single peer moves nothing, a single subgroup is plain SAC plus a
// vestigial FedAvg layer, and k=n collapses Eq. 5 onto Eq. 4.

func TestBaselineUnitsSinglePeer(t *testing.T) {
	// One peer aggregates with itself: 2N(N−1) = 0 transfers.
	got, err := costmodel.BaselineUnits(1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("BaselineUnits(1) = %d, want 0", got)
	}
}

func TestTwoLayerSingleSubgroup(t *testing.T) {
	// m=1: Eq. 4 degenerates to one subgroup SAC (n²−1), a no-op FedAvg
	// exchange (2(m−1) = 0) and the final broadcast (n−1) — n²+n−2.
	for _, n := range []int{1, 2, 3, 7} {
		got, err := costmodel.TwoLayerUnits(1, n)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(n*n + n - 2)
		if got != want {
			t.Fatalf("TwoLayerUnits(1,%d) = %d, want %d", n, got, want)
		}
		// The uneven form with a single size must agree exactly.
		uneven, err := costmodel.TwoLayerUnevenUnits([]int{n})
		if err != nil {
			t.Fatal(err)
		}
		if uneven != want {
			t.Fatalf("TwoLayerUnevenUnits([%d]) = %d, want %d", n, uneven, want)
		}
	}
}

func TestTwoLayerSubgroupsOfOne(t *testing.T) {
	// n=1: every subgroup is its own leader with nothing to share, so the
	// whole round is the FedAvg layer, 2(m−1) transfers.
	for _, m := range []int{1, 2, 5} {
		got, err := costmodel.TwoLayerUnits(m, 1)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(2 * (m - 1)); got != want {
			t.Fatalf("TwoLayerUnits(%d,1) = %d, want %d", m, got, want)
		}
	}
	// The fully degenerate network — one subgroup of one peer — costs
	// nothing at all.
	if got, _ := costmodel.TwoLayerUnits(1, 1); got != 0 {
		t.Fatalf("TwoLayerUnits(1,1) = %d, want 0", got)
	}
}

func TestEq5CollapsesToEq4AtFullThreshold(t *testing.T) {
	// k=n disables the replication overhead: (n²−kn+k)N+km−2 must equal
	// mn²+mn−2 identically.
	for _, mn := range [][2]int{{1, 1}, {1, 4}, {2, 3}, {3, 5}, {6, 2}} {
		m, n := mn[0], mn[1]
		eq5, err := costmodel.TwoLayerKNUnits(m, n, n)
		if err != nil {
			t.Fatal(err)
		}
		eq4, err := costmodel.TwoLayerUnits(m, n)
		if err != nil {
			t.Fatal(err)
		}
		if eq5 != eq4 {
			t.Fatalf("m=%d n=%d: Eq.5 at k=n gives %d, Eq.4 gives %d", m, n, eq5, eq4)
		}
	}
}

func TestEq5MinimumThreshold(t *testing.T) {
	// k=1 is the other extreme — maximal replication: (n²−n+1)N+m−2.
	for _, mn := range [][2]int{{2, 3}, {3, 4}} {
		m, n := mn[0], mn[1]
		got, err := costmodel.TwoLayerKNUnits(m, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := int64((n*n-n+1)*m*n + m - 2)
		if got != want {
			t.Fatalf("TwoLayerKNUnits(%d,%d,1) = %d, want %d", m, n, got, want)
		}
	}
}

func TestUnevenKNClampsOversizedThreshold(t *testing.T) {
	// A k above a subgroup's size clamps to that size (a threshold can't
	// exceed the number of shareholders): sizes {3,2} with k=3 behave as
	// k=3 in the first subgroup and k=2 in the second.
	got, err := costmodel.TwoLayerUnevenKNUnits([]int{3, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// n=3,k=3: 3·2·1+2 = 8 plus broadcast 2; n=2,k=2: 2·1·1+1 = 3 plus
	// broadcast 1; FedAvg 2(m−1) = 2.
	if want := int64(8 + 2 + 3 + 1 + 2); got != want {
		t.Fatalf("TwoLayerUnevenKNUnits([3,2],3) = %d, want %d", got, want)
	}
	// Clamped everywhere, the k-variant equals the n-out-of-n form.
	a, err := costmodel.TwoLayerUnevenKNUnits([]int{4, 3, 2}, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := costmodel.TwoLayerUnevenUnits([]int{4, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("fully clamped uneven-kn = %d, want n-out-of-n cost %d", a, b)
	}
}

func TestClosedFormRejectsDegenerateInputs(t *testing.T) {
	if _, err := costmodel.BaselineUnits(0); err == nil {
		t.Fatal("BaselineUnits(0): want error")
	}
	if _, err := costmodel.TwoLayerUnits(0, 3); err == nil {
		t.Fatal("TwoLayerUnits(0,3): want error")
	}
	if _, err := costmodel.TwoLayerUnits(3, 0); err == nil {
		t.Fatal("TwoLayerUnits(3,0): want error")
	}
	if _, err := costmodel.TwoLayerKNUnits(2, 3, 0); err == nil {
		t.Fatal("TwoLayerKNUnits k=0: want error")
	}
	if _, err := costmodel.TwoLayerKNUnits(2, 3, 4); err == nil {
		t.Fatal("TwoLayerKNUnits k>n: want error")
	}
	if _, err := costmodel.TwoLayerSecureUpperUnits(0, 3); err == nil {
		t.Fatal("TwoLayerSecureUpperUnits(0,3): want error")
	}
}
