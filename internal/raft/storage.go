package raft

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Save serializes a persistent state with gob. Real deployments write it
// through SaveFile, which is atomic (write-temp + rename).
func (ps PersistentState) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(ps); err != nil {
		return fmt.Errorf("raft: save state: %w", err)
	}
	return nil
}

// LoadState reads a persistent state written by Save.
func LoadState(r io.Reader) (PersistentState, error) {
	var ps PersistentState
	if err := gob.NewDecoder(r).Decode(&ps); err != nil {
		return PersistentState{}, fmt.Errorf("raft: load state: %w", err)
	}
	return ps, nil
}

// SaveFile atomically writes the state to path: the state is written to
// a temporary file in the same directory, synced, and renamed over the
// destination, so a crash mid-write never corrupts the previous state.
func (ps PersistentState) SaveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".raft-state-*")
	if err != nil {
		return fmt.Errorf("raft: save state: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := ps.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("raft: sync state: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("raft: close state: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("raft: replace state: %w", err)
	}
	return nil
}

// LoadStateFile reads a state file written by SaveFile. A missing file
// returns os.ErrNotExist (callers start fresh).
func LoadStateFile(path string) (PersistentState, error) {
	f, err := os.Open(path)
	if err != nil {
		return PersistentState{}, err
	}
	defer f.Close()
	return LoadState(f)
}
