package raft

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func samplePersistentState(t *testing.T) PersistentState {
	t.Helper()
	c := newCluster(t, 1, 2, 3)
	l := c.waitLeader(100)
	if err := l.Propose([]byte("saved")); err != nil {
		t.Fatal(err)
	}
	c.run(10)
	if err := l.Compact(l.CommitIndex(), []byte("app")); err != nil {
		t.Fatal(err)
	}
	if err := l.Propose([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	c.run(10)
	return l.Persist()
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ps := samplePersistentState(t)
	var buf bytes.Buffer
	if err := ps.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hard != ps.Hard {
		t.Fatalf("hard state: %+v != %+v", got.Hard, ps.Hard)
	}
	if len(got.Log) != len(ps.Log) || len(got.Peers) != len(ps.Peers) {
		t.Fatal("log/peers length mismatch")
	}
	if got.Snapshot == nil || got.Snapshot.Index != ps.Snapshot.Index || string(got.Snapshot.Data) != "app" {
		t.Fatalf("snapshot mismatch: %+v", got.Snapshot)
	}
	// The loaded state restores into a working node.
	if _, err := Restore(Config{ID: 1, ElectionTickMin: 10, ElectionTickMax: 20, HeartbeatTick: 2}, got); err != nil {
		t.Fatal(err)
	}
}

func TestSaveFileAtomicAndReloadable(t *testing.T) {
	ps := samplePersistentState(t)
	path := filepath.Join(t.TempDir(), "raft.state")
	if err := ps.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadStateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hard != ps.Hard {
		t.Fatal("file round trip lost the hard state")
	}
	// Overwriting is safe.
	ps.Hard.Term++
	if err := ps.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err = LoadStateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hard.Term != ps.Hard.Term {
		t.Fatal("overwrite not visible")
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("leftover files: %v", entries)
	}
}

func TestLoadStateFileMissing(t *testing.T) {
	_, err := LoadStateFile(filepath.Join(t.TempDir(), "nope"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestLoadStateCorrupt(t *testing.T) {
	if _, err := LoadState(bytes.NewBufferString("not gob")); err == nil {
		t.Fatal("want decode error")
	}
}
