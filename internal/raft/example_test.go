package raft_test

import (
	"fmt"
	"math/rand"

	"repro/internal/raft"
)

// A minimal three-node cluster driven by a lockstep loop: tick every
// node, deliver every pending message, repeat — the entire integration
// surface of the tick-driven design (Tick/Step/Ready) in ~30 lines.
// Real deployments replace the loop with wall-clock tickers
// (internal/live, cmd/p2pfl-node) or virtual time (internal/simnet).
func Example() {
	ids := []uint64{1, 2, 3}
	nodes := map[uint64]*raft.Node{}
	for _, id := range ids {
		n, err := raft.NewNode(raft.Config{
			ID: id, Peers: ids,
			ElectionTickMin: 10, ElectionTickMax: 20, HeartbeatTick: 2,
			Rng: rand.New(rand.NewSource(int64(id))),
		})
		if err != nil {
			panic(err)
		}
		nodes[id] = n
	}
	step := func() {
		for _, n := range nodes {
			n.Tick()
		}
		for moved := true; moved; {
			moved = false
			for _, n := range nodes {
				for _, m := range n.Ready().Messages {
					if dst, ok := nodes[m.To]; ok {
						_ = dst.Step(m)
						moved = true
					}
				}
			}
		}
	}
	var leader *raft.Node
	for i := 0; i < 100 && leader == nil; i++ {
		step()
		for _, n := range nodes {
			if n.State() == raft.Leader {
				leader = n
			}
		}
	}
	if err := leader.Propose([]byte("hello consensus")); err != nil {
		panic(err)
	}
	for i := 0; i < 5; i++ {
		step()
	}
	committed := 0
	for _, n := range nodes {
		for _, e := range n.Log() {
			if string(e.Data) == "hello consensus" && e.Index <= n.CommitIndex() {
				committed++
			}
		}
	}
	fmt.Printf("entry committed on %d/3 nodes\n", committed)
	// Output: entry committed on 3/3 nodes
}
