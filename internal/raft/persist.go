package raft

import "fmt"

// HardState is the durable part of a node's state: what Raft requires to
// be persisted before answering RPCs (currentTerm, votedFor) plus the
// commit index as an optimization for restart. Together with the log it
// lets a crashed server rejoin the cluster at any time (Sec. III-C of
// the reproduced paper).
type HardState struct {
	Term     uint64
	VotedFor uint64
	Commit   uint64
}

// PersistentState is everything needed to reconstruct a node.
type PersistentState struct {
	Hard HardState
	// Snapshot is the last compaction point (nil when the log was never
	// compacted); Log holds the entries after it.
	Snapshot *Snapshot
	Log      []Entry
	Peers    []uint64 // configuration as of the applied log
}

// Persist captures the node's durable state. Drivers call it after
// draining Ready (in a real deployment this would be fsynced; the
// simulator keeps it in memory, which is equivalent under a crash model
// that loses nothing already persisted).
func (n *Node) Persist() PersistentState {
	ps := PersistentState{
		Hard:  HardState{Term: n.term, VotedFor: n.votedFor, Commit: n.commitIndex},
		Log:   make([]Entry, len(n.log)),
		Peers: n.Members(),
	}
	copy(ps.Log, n.log)
	if n.snapshot != nil {
		s := *n.snapshot
		s.Peers = append([]uint64(nil), n.snapshot.Peers...)
		s.Data = append([]byte(nil), n.snapshot.Data...)
		ps.Snapshot = &s
	}
	return ps
}

// Restore creates a node from a persisted state, as a follower with no
// known leader — the state a rejoining server restarts into. The restored
// node keeps its ID and timing configuration from cfg; cfg.Peers is
// ignored in favour of the persisted configuration.
func Restore(cfg Config, ps PersistentState) (*Node, error) {
	cfg2 := cfg
	cfg2.Peers = ps.Peers
	n, err := NewNode(cfg2)
	if err != nil {
		return nil, err
	}
	var snapIndex uint64
	if ps.Snapshot != nil {
		snapIndex = ps.Snapshot.Index
		n.snapIndex, n.snapTerm = ps.Snapshot.Index, ps.Snapshot.Term
		s := *ps.Snapshot
		s.Peers = append([]uint64(nil), ps.Snapshot.Peers...)
		s.Data = append([]byte(nil), ps.Snapshot.Data...)
		n.snapshot = &s
	}
	last := snapIndex + uint64(len(ps.Log))
	if ps.Hard.Commit > last || ps.Hard.Commit < snapIndex {
		return nil, fmt.Errorf("raft: persisted commit %d outside [%d,%d]", ps.Hard.Commit, snapIndex, last)
	}
	n.term = ps.Hard.Term
	n.votedFor = ps.Hard.VotedFor
	n.commitIndex = ps.Hard.Commit
	n.log = make([]Entry, len(ps.Log))
	copy(n.log, ps.Log)
	// Committed entries will be re-applied through Ready; conf changes
	// in them are already reflected in ps.Peers, so skip re-application
	// by marking them applied.
	n.applied = ps.Hard.Commit
	return n, nil
}
