package raft

import (
	"math/rand"
	"testing"
)

// Networks duplicate and delay messages; Raft must be idempotent under
// replays of old RPCs.
func TestDuplicateAppendIsIdempotent(t *testing.T) {
	c := newCluster(t, 1, 2, 3)
	l := c.waitLeader(100)
	if err := l.Propose([]byte("once")); err != nil {
		t.Fatal(err)
	}
	c.run(10)
	var follower *Node
	for id, n := range c.nodes {
		if id != l.ID() {
			follower = n
			break
		}
	}
	lenBefore := len(follower.Log())
	commitBefore := follower.CommitIndex()
	// Replay a full append of the existing log several times.
	entries := l.Log()
	for i := 0; i < 5; i++ {
		if err := follower.Step(Message{
			Type: MsgAppend, From: l.ID(), To: follower.ID(), Term: l.Term(),
			PrevLogIndex: 0, PrevLogTerm: 0,
			Entries: entries, Commit: l.CommitIndex(),
		}); err != nil {
			t.Fatal(err)
		}
		follower.Ready()
	}
	if len(follower.Log()) != lenBefore {
		t.Fatalf("log grew from %d to %d under replay", lenBefore, len(follower.Log()))
	}
	if follower.CommitIndex() < commitBefore {
		t.Fatal("commit regressed under replay")
	}
	// The entry is present exactly once.
	count := 0
	for _, e := range follower.Log() {
		if string(e.Data) == "once" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("entry appears %d times", count)
	}
}

func TestDelayedVoteResponseIgnored(t *testing.T) {
	c := newCluster(t, 1, 2, 3)
	l := c.waitLeader(100)
	term := l.Term()
	// A stale vote response from an old term must not affect the leader.
	if err := l.Step(Message{Type: MsgVoteResponse, From: 2, To: l.ID(), Term: term - 1, Granted: true}); err != nil {
		t.Fatal(err)
	}
	if l.State() != Leader || l.Term() != term {
		t.Fatal("stale vote response disturbed the leader")
	}
	// A granted response arriving while already leader is harmless too.
	if err := l.Step(Message{Type: MsgVoteResponse, From: 3, To: l.ID(), Term: term, Granted: true}); err != nil {
		t.Fatal(err)
	}
	if l.State() != Leader {
		t.Fatal("vote response while leader changed state")
	}
}

func TestVoteFromNonMemberNotCounted(t *testing.T) {
	n, err := NewNode(Config{
		ID: 1, Peers: []uint64{1, 2, 3, 4, 5},
		ElectionTickMin: 10, ElectionTickMax: 20, HeartbeatTick: 2,
		Rng: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Campaign()
	n.Ready()
	// Two grants from the SAME peer plus one from a stranger: still only
	// 2 distinct member votes (self + peer 2) of the 3 needed.
	for i := 0; i < 2; i++ {
		if err := n.Step(Message{Type: MsgVoteResponse, From: 2, To: 1, Term: n.Term(), Granted: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Step(Message{Type: MsgVoteResponse, From: 99, To: 1, Term: n.Term(), Granted: true}); err != nil {
		t.Fatal(err)
	}
	if n.State() == Leader {
		t.Fatal("won election without a real quorum")
	}
	// A third distinct member completes the quorum.
	if err := n.Step(Message{Type: MsgVoteResponse, From: 3, To: 1, Term: n.Term(), Granted: true}); err != nil {
		t.Fatal(err)
	}
	if n.State() != Leader {
		t.Fatal("quorum of distinct members must elect")
	}
}

func TestLeaderRemovingItselfStepsDown(t *testing.T) {
	c := newCluster(t, 1, 2, 3, 4)
	l := c.waitLeader(100)
	if err := l.ProposeConfChange(ConfChange{Add: false, NodeID: l.ID()}); err != nil {
		t.Fatal(err)
	}
	c.run(20)
	if l.State() == Leader {
		t.Fatal("removed leader still leading — it would suppress elections forever")
	}
	// The remaining three members elect a replacement and make progress.
	var nl *Node
	for i := 0; i < 600 && nl == nil; i++ {
		c.run(1)
		for id, n := range c.nodes {
			if id != l.ID() && n.State() == Leader {
				nl = n
			}
		}
	}
	if nl == nil {
		t.Fatal("no new leader after self-removal")
	}
	if nl.IsMember(l.ID()) {
		t.Fatal("removed node still in the new leader's config")
	}
	if err := nl.Propose([]byte("post-self-removal")); err != nil {
		t.Fatal(err)
	}
	c.run(10)
	if nl.CommitIndex() == 0 {
		t.Fatal("cluster cannot commit after self-removal")
	}
}

func TestLeaderStepsDownOnHigherTermAppend(t *testing.T) {
	c := newCluster(t, 1, 2, 3)
	l := c.waitLeader(100)
	if err := l.Step(Message{
		Type: MsgAppend, From: 2, To: l.ID(), Term: l.Term() + 5,
	}); err != nil {
		t.Fatal(err)
	}
	if l.State() != Follower {
		t.Fatalf("state = %v after higher-term append", l.State())
	}
	if l.Leader() != 2 {
		t.Fatalf("leader = %d, want 2", l.Leader())
	}
}
