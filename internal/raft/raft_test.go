package raft

import (
	"math/rand"
	"testing"
)

// cluster is a lockstep test harness: ticks all nodes, then delivers all
// pending messages instantly until quiescent. Timing-sensitive behaviour
// (latency, staggered delivery) is exercised in internal/simnet.
type cluster struct {
	t         *testing.T
	nodes     map[uint64]*Node
	down      map[uint64]bool
	committed map[uint64][]Entry
	dropFrom  map[uint64]bool // messages from these nodes are dropped
	dropTo    map[uint64]bool // messages to these nodes are dropped
}

func newCluster(t *testing.T, ids ...uint64) *cluster {
	t.Helper()
	return newClusterCfg(t, nil, ids...)
}

// newClusterCfg builds a cluster whose node configs are post-processed
// by mutate — the hook the WAN-feature tests (pre-vote, check-quorum,
// leases) use to arm flags without duplicating the harness.
func newClusterCfg(t *testing.T, mutate func(*Config), ids ...uint64) *cluster {
	t.Helper()
	c := &cluster{
		t:         t,
		nodes:     make(map[uint64]*Node),
		down:      make(map[uint64]bool),
		committed: make(map[uint64][]Entry),
		dropFrom:  make(map[uint64]bool),
		dropTo:    make(map[uint64]bool),
	}
	for _, id := range ids {
		cfg := Config{
			ID:              id,
			Peers:           ids,
			ElectionTickMin: 10,
			ElectionTickMax: 20,
			HeartbeatTick:   2,
			Rng:             rand.New(rand.NewSource(int64(id) * 7)),
		}
		if mutate != nil {
			mutate(&cfg)
		}
		n, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.nodes[id] = n
	}
	return c
}

// isolate cuts a node off in both directions (a symmetric partition of
// one); heal with c.dropFrom/dropTo deletes.
func (c *cluster) isolate(id uint64) {
	c.dropFrom[id] = true
	c.dropTo[id] = true
}

func (c *cluster) heal(id uint64) {
	delete(c.dropFrom, id)
	delete(c.dropTo, id)
}

// flush delivers all pending messages until no node has output.
func (c *cluster) flush() {
	for {
		moved := false
		for id, n := range c.nodes {
			if c.down[id] || !n.HasPending() {
				continue
			}
			rd := n.Ready()
			c.committed[id] = append(c.committed[id], rd.Committed...)
			for _, m := range rd.Messages {
				if c.dropFrom[id] {
					continue
				}
				dst, ok := c.nodes[m.To]
				if !ok || c.down[m.To] || c.dropTo[m.To] {
					continue
				}
				if err := dst.Step(m); err != nil {
					c.t.Fatalf("step: %v", err)
				}
				moved = true
			}
			if len(rd.Committed) > 0 {
				moved = true
			}
		}
		if !moved {
			return
		}
	}
}

// run advances all live nodes by `ticks` ticks, flushing after each.
func (c *cluster) run(ticks int) {
	for i := 0; i < ticks; i++ {
		for id, n := range c.nodes {
			if !c.down[id] {
				n.Tick()
			}
		}
		c.flush()
	}
}

// leader returns the unique live leader, or nil.
func (c *cluster) leader() *Node {
	var lead *Node
	for id, n := range c.nodes {
		if c.down[id] || n.State() != Leader {
			continue
		}
		if lead != nil {
			// Two leaders may coexist transiently across terms but never
			// in the same term.
			if lead.Term() == n.Term() {
				c.t.Fatalf("two leaders in term %d", n.Term())
			}
			if n.Term() > lead.Term() {
				lead = n
			}
			continue
		}
		lead = n
	}
	return lead
}

func (c *cluster) waitLeader(maxTicks int) *Node {
	c.t.Helper()
	for i := 0; i < maxTicks; i++ {
		c.run(1)
		if l := c.leader(); l != nil {
			return l
		}
	}
	c.t.Fatalf("no leader after %d ticks", maxTicks)
	return nil
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{ID: 0, ElectionTickMin: 10, ElectionTickMax: 20, HeartbeatTick: 2},
		{ID: 1, ElectionTickMin: 0, ElectionTickMax: 20, HeartbeatTick: 2},
		{ID: 1, ElectionTickMin: 10, ElectionTickMax: 10, HeartbeatTick: 2},
		{ID: 1, ElectionTickMin: 10, ElectionTickMax: 20, HeartbeatTick: 0},
		{ID: 1, ElectionTickMin: 10, ElectionTickMax: 20, HeartbeatTick: 15},
		{ID: 1, Peers: []uint64{0}, ElectionTickMin: 10, ElectionTickMax: 20, HeartbeatTick: 2},
	}
	for i, cfg := range bad {
		if _, err := NewNode(cfg); err == nil {
			t.Fatalf("case %d: want config error", i)
		}
	}
}

func TestSingleNodeBecomesLeaderImmediately(t *testing.T) {
	c := newCluster(t, 1)
	l := c.waitLeader(50)
	if l.ID() != 1 {
		t.Fatalf("leader = %d", l.ID())
	}
}

func TestElectionElectsOneLeader(t *testing.T) {
	c := newCluster(t, 1, 2, 3)
	l := c.waitLeader(100)
	// All nodes agree on the leader.
	c.run(5)
	for id, n := range c.nodes {
		if n.Leader() != l.ID() {
			t.Fatalf("node %d thinks leader is %d, want %d", id, n.Leader(), l.ID())
		}
	}
}

func TestHeartbeatsSuppressElections(t *testing.T) {
	c := newCluster(t, 1, 2, 3)
	l := c.waitLeader(100)
	term := l.Term()
	c.run(200) // many election timeouts' worth of ticks
	if got := c.leader(); got == nil || got.ID() != l.ID() || got.Term() != term {
		t.Fatalf("leadership changed without failures: %v", got)
	}
}

func TestLeaderCrashTriggersReElection(t *testing.T) {
	c := newCluster(t, 1, 2, 3, 4, 5)
	l := c.waitLeader(100)
	c.down[l.ID()] = true
	nl := c.waitLeader(200)
	if nl.ID() == l.ID() {
		t.Fatal("crashed leader cannot be the new leader")
	}
	if nl.Term() <= l.Term() {
		t.Fatalf("new term %d must exceed old %d", nl.Term(), l.Term())
	}
}

func TestNoQuorumNoLeader(t *testing.T) {
	c := newCluster(t, 1, 2, 3)
	l := c.waitLeader(100)
	// Kill the leader and one follower: 1 of 3 nodes cannot elect.
	c.down[l.ID()] = true
	killed := false
	for id := range c.nodes {
		if id != l.ID() && !killed {
			c.down[id] = true
			killed = true
		}
	}
	c.run(300)
	if got := c.leader(); got != nil {
		t.Fatalf("leader %d elected without quorum", got.ID())
	}
}

func TestProposeReplicatesAndCommits(t *testing.T) {
	c := newCluster(t, 1, 2, 3)
	l := c.waitLeader(100)
	if err := l.Propose([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	c.run(10)
	for id, n := range c.nodes {
		found := false
		for _, e := range c.committed[id] {
			if e.Type == EntryNormal && string(e.Data) == "hello" {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d did not commit the entry", id)
		}
		if n.CommitIndex() < 2 { // no-op + proposal
			t.Fatalf("node %d commit index = %d", id, n.CommitIndex())
		}
	}
}

func TestProposeOnFollowerFails(t *testing.T) {
	c := newCluster(t, 1, 2, 3)
	l := c.waitLeader(100)
	for id, n := range c.nodes {
		if id == l.ID() {
			continue
		}
		if err := n.Propose(nil); err != ErrNotLeader {
			t.Fatalf("node %d: err = %v, want ErrNotLeader", id, err)
		}
		break
	}
}

func TestCommittedEntriesSurviveLeaderCrash(t *testing.T) {
	c := newCluster(t, 1, 2, 3, 4, 5)
	l := c.waitLeader(100)
	if err := l.Propose([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	c.run(10)
	c.down[l.ID()] = true
	nl := c.waitLeader(300)
	// The new leader must hold the committed entry (leader completeness).
	found := false
	for _, e := range nl.Log() {
		if string(e.Data) == "durable" {
			found = true
		}
	}
	if !found {
		t.Fatal("new leader missing a committed entry")
	}
}

func TestStaleLogCandidateCannotWin(t *testing.T) {
	c := newCluster(t, 1, 2, 3)
	l := c.waitLeader(100)
	// Partition one follower, then commit entries without it.
	var lag uint64
	for id := range c.nodes {
		if id != l.ID() {
			lag = id
			break
		}
	}
	c.down[lag] = true
	for i := 0; i < 3; i++ {
		if err := l.Propose([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c.run(10)
	// Heal the partition but kill the leader; only the up-to-date
	// follower may win.
	c.down[lag] = false
	c.down[l.ID()] = true
	nl := c.waitLeader(400)
	if nl.ID() == lag {
		t.Fatal("follower with stale log won the election")
	}
}

func TestDivergentLogTruncated(t *testing.T) {
	c := newCluster(t, 1, 2, 3)
	l := c.waitLeader(100)
	// Cut the leader off (messages dropped) and let it append orphans.
	c.dropFrom[l.ID()] = true
	if err := l.Propose([]byte("orphan1")); err != nil {
		t.Fatal(err)
	}
	if err := l.Propose([]byte("orphan2")); err != nil {
		t.Fatal(err)
	}
	// Remaining nodes elect a new leader and commit a different entry.
	// (The isolated node still believes it leads its old term, so wait
	// specifically for a different leader.)
	var nl *Node
	for i := 0; i < 600 && nl == nil; i++ {
		c.run(1)
		for id, n := range c.nodes {
			if id != l.ID() && n.State() == Leader {
				nl = n
			}
		}
	}
	if nl == nil {
		t.Fatal("no new leader elected")
	}
	if err := nl.Propose([]byte("winner")); err != nil {
		t.Fatal(err)
	}
	c.run(10)
	// Reconnect the old leader: its orphan entries must be replaced.
	c.dropFrom[l.ID()] = false
	c.run(50)
	old := c.nodes[l.ID()]
	for _, e := range old.Log() {
		if string(e.Data) == "orphan1" || string(e.Data) == "orphan2" {
			t.Fatal("uncommitted orphan entries survived reconciliation")
		}
	}
	found := false
	for _, e := range old.Log() {
		if string(e.Data) == "winner" {
			found = true
		}
	}
	if !found {
		t.Fatal("reconnected node missing the committed entry")
	}
}

func TestConfChangeAddNode(t *testing.T) {
	c := newCluster(t, 1, 2, 3)
	l := c.waitLeader(100)
	// Create node 4 knowing the current members (not itself a member yet).
	n4, err := NewNode(Config{
		ID:              4,
		Peers:           []uint64{1, 2, 3},
		ElectionTickMin: 10,
		ElectionTickMax: 20,
		HeartbeatTick:   2,
		Rng:             rand.New(rand.NewSource(44)),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.nodes[4] = n4
	if err := l.ProposeConfChange(ConfChange{Add: true, NodeID: 4}); err != nil {
		t.Fatal(err)
	}
	c.run(20)
	for id, n := range c.nodes {
		if !n.IsMember(4) {
			t.Fatalf("node %d has not applied the conf change", id)
		}
	}
	// The new node must participate: commit something and check it.
	if err := c.leader().Propose([]byte("with-4")); err != nil {
		t.Fatal(err)
	}
	c.run(10)
	found := false
	for _, e := range c.committed[4] {
		if string(e.Data) == "with-4" {
			found = true
		}
	}
	if !found {
		t.Fatal("added node did not commit new entries")
	}
}

func TestConfChangeRemoveNode(t *testing.T) {
	c := newCluster(t, 1, 2, 3, 4)
	l := c.waitLeader(100)
	var victim uint64
	for id := range c.nodes {
		if id != l.ID() {
			victim = id
			break
		}
	}
	if err := l.ProposeConfChange(ConfChange{Add: false, NodeID: victim}); err != nil {
		t.Fatal(err)
	}
	c.run(20)
	if l.IsMember(victim) {
		t.Fatal("victim still a member after removal")
	}
	if got := len(l.Members()); got != 3 {
		t.Fatalf("members = %d, want 3", got)
	}
	// Cluster stays operational with the reduced quorum. (The removed
	// node may disrupt one election before it is silenced — it never
	// learns of its own removal — so wait for leadership to settle.)
	c.down[victim] = true
	nl := c.waitLeader(400)
	if err := nl.Propose([]byte("post-removal")); err != nil {
		t.Fatal(err)
	}
	c.run(10)
	if c.leader() == nil {
		t.Fatal("no leader after removal")
	}
}

func TestNonMemberDoesNotCampaign(t *testing.T) {
	n, err := NewNode(Config{
		ID:              9,
		Peers:           []uint64{1, 2, 3}, // 9 not a member
		ElectionTickMin: 5,
		ElectionTickMax: 10,
		HeartbeatTick:   2,
		Rng:             rand.New(rand.NewSource(9)),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		n.Tick()
	}
	if n.State() != Follower {
		t.Fatalf("non-member state = %v, want follower", n.State())
	}
	if len(n.Ready().Messages) != 0 {
		t.Fatal("non-member must not send campaign messages")
	}
}

func TestVoteNotGrantedTwiceInTerm(t *testing.T) {
	n, err := NewNode(Config{
		ID: 1, Peers: []uint64{1, 2, 3},
		ElectionTickMin: 10, ElectionTickMax: 20, HeartbeatTick: 2,
		Rng: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Step(Message{Type: MsgVoteRequest, From: 2, To: 1, Term: 5}); err != nil {
		t.Fatal(err)
	}
	rd := n.Ready()
	if len(rd.Messages) != 1 || !rd.Messages[0].Granted {
		t.Fatalf("first vote: %+v", rd.Messages)
	}
	if err := n.Step(Message{Type: MsgVoteRequest, From: 3, To: 1, Term: 5}); err != nil {
		t.Fatal(err)
	}
	rd = n.Ready()
	if len(rd.Messages) != 1 || rd.Messages[0].Granted {
		t.Fatalf("second vote in same term must be denied: %+v", rd.Messages)
	}
	// Same candidate again: idempotent re-grant is allowed.
	if err := n.Step(Message{Type: MsgVoteRequest, From: 2, To: 1, Term: 5}); err != nil {
		t.Fatal(err)
	}
	rd = n.Ready()
	if len(rd.Messages) != 1 || !rd.Messages[0].Granted {
		t.Fatalf("re-vote for same candidate: %+v", rd.Messages)
	}
}

func TestStaleTermMessagesRejected(t *testing.T) {
	n, err := NewNode(Config{
		ID: 1, Peers: []uint64{1, 2},
		ElectionTickMin: 10, ElectionTickMax: 20, HeartbeatTick: 2,
		Rng: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Advance our term.
	if err := n.Step(Message{Type: MsgVoteRequest, From: 2, To: 1, Term: 10}); err != nil {
		t.Fatal(err)
	}
	n.Ready()
	// Stale append must be rejected with our term.
	if err := n.Step(Message{Type: MsgAppend, From: 2, To: 1, Term: 3}); err != nil {
		t.Fatal(err)
	}
	rd := n.Ready()
	if len(rd.Messages) != 1 || !rd.Messages[0].Reject || rd.Messages[0].Term != 10 {
		t.Fatalf("stale append response: %+v", rd.Messages)
	}
}

func TestConfChangeCodec(t *testing.T) {
	cc := ConfChange{Add: true, NodeID: 42}
	got, err := DecodeConfChange(cc.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != cc {
		t.Fatalf("round trip = %+v", got)
	}
	if _, err := DecodeConfChange([]byte("not json")); err == nil {
		t.Fatal("want decode error")
	}
}

func TestProposeConfChangeValidation(t *testing.T) {
	c := newCluster(t, 1)
	l := c.waitLeader(50)
	if err := l.ProposeConfChange(ConfChange{Add: true, NodeID: 0}); err == nil {
		t.Fatal("want error for zero node ID")
	}
}

func TestStateStrings(t *testing.T) {
	if Follower.String() != "follower" || Candidate.String() != "candidate" || Leader.String() != "leader" {
		t.Fatal("state strings wrong")
	}
	if State(9).String() == "" || MsgType(9).String() == "" {
		t.Fatal("unknown values must render")
	}
	for _, m := range []MsgType{MsgVoteRequest, MsgVoteResponse, MsgAppend, MsgAppendResponse} {
		if m.String() == "" {
			t.Fatal("empty msg type string")
		}
	}
}

func TestFiveNodeChaos(t *testing.T) {
	// Repeatedly crash and revive random nodes (keeping a quorum) while
	// proposing; the cluster must keep exactly one leader per term and
	// never lose a committed entry.
	c := newCluster(t, 1, 2, 3, 4, 5)
	r := rand.New(rand.NewSource(77))
	var committed []string
	propose := func() {
		if l := c.leader(); l != nil {
			data := []byte{byte(len(committed))}
			if err := l.Propose(data); err == nil {
				committed = append(committed, string(data))
			}
		}
	}
	for round := 0; round < 20; round++ {
		c.waitLeader(500)
		propose()
		c.run(20)
		// Crash one random live node (never dropping below quorum 3/5).
		downCount := 0
		for _, d := range c.down {
			if d {
				downCount++
			}
		}
		if downCount < 2 {
			ids := []uint64{1, 2, 3, 4, 5}
			v := ids[r.Intn(len(ids))]
			c.down[v] = true
		} else {
			// Revive everyone.
			for id := range c.down {
				c.down[id] = false
			}
		}
		c.run(30)
	}
	for id := range c.down {
		c.down[id] = false
	}
	l := c.waitLeader(500)
	c.run(50)
	// Log Matching invariant: any two logs that share (index, term) at
	// some position are identical up to that position.
	var nodes []*Node
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			a, b := nodes[i].Log(), nodes[j].Log()
			limit := len(a)
			if len(b) < limit {
				limit = len(b)
			}
			for k := limit - 1; k >= 0; k-- {
				if a[k].Term != b[k].Term {
					continue
				}
				// Same index+term ⇒ prefixes must match exactly.
				for p := 0; p <= k; p++ {
					if a[p].Term != b[p].Term || string(a[p].Data) != string(b[p].Data) {
						t.Fatalf("log matching violated between %d and %d at index %d",
							nodes[i].ID(), nodes[j].ID(), p+1)
					}
				}
				break
			}
		}
	}
	// Every proposal that was accepted while a quorum was reachable must
	// appear in the final leader's log.
	logData := map[string]bool{}
	for _, e := range l.Log() {
		logData[string(e.Data)] = true
	}
	missing := 0
	for _, d := range committed {
		if !logData[d] {
			missing++
		}
	}
	// Proposals made to a leader that lost quorum immediately afterwards
	// may legitimately be lost (they were never committed); but the vast
	// majority must survive.
	if missing > len(committed)/2 {
		t.Fatalf("%d of %d proposals missing from final log", missing, len(committed))
	}
}

func BenchmarkRaftStepThroughput(b *testing.B) {
	n, err := NewNode(Config{
		ID: 1, Peers: []uint64{1, 2, 3},
		ElectionTickMin: 10, ElectionTickMax: 20, HeartbeatTick: 2,
		Rng: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		b.Fatal(err)
	}
	// Make it leader of term 1 via single-step election.
	n.Campaign()
	n.Step(Message{Type: MsgVoteResponse, From: 2, To: 1, Term: n.Term(), Granted: true})
	n.Ready()
	if n.State() != Leader {
		b.Fatal("setup failed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.Propose([]byte{1}); err != nil {
			b.Fatal(err)
		}
		n.Step(Message{Type: MsgAppendResponse, From: 2, To: 1, Term: n.Term(), Match: n.CommitIndex() + 1})
		n.Ready()
	}
}
