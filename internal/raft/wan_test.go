package raft

import (
	"errors"
	"fmt"
	"testing"
)

// wanCfg arms the WAN-stability feature flags on a harness cluster.
func wanCfg(prevote, checkQuorum, lease bool) func(*Config) {
	return func(cfg *Config) {
		cfg.PreVote = prevote
		cfg.CheckQuorum = checkQuorum
		cfg.LeaderLease = lease
	}
}

// sortedFollowers returns the live non-leader IDs in ascending order so
// tests pick partition victims deterministically.
func (c *cluster) sortedFollowers(lead *Node) []uint64 {
	var out []uint64
	for id, n := range c.nodes {
		if n != lead && !c.down[id] {
			out = append(out, id)
		}
	}
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// TestPreVoteMinorityRejoinTermStable is the pre-vote safety property: a
// follower partitioned away from a healthy majority must not have grown
// its term while isolated (pre-vote probes without incrementing), so its
// rejoin deposes nobody. The same scenario without pre-vote shows the
// classic disruption — the rejoining node's inflated term forces the
// healthy leader to step down — proving the flag is what prevents it.
func TestPreVoteMinorityRejoinTermStable(t *testing.T) {
	for _, prevote := range []bool{true, false} {
		t.Run(fmt.Sprintf("prevote=%v", prevote), func(t *testing.T) {
			c := newClusterCfg(t, wanCfg(prevote, false, false), 1, 2, 3, 4, 5)
			lead := c.waitLeader(100)
			termBefore := lead.Term()

			iso := c.sortedFollowers(lead)[0]
			c.isolate(iso)
			c.run(200) // the isolated node times out many times over

			isoTerm := c.nodes[iso].Term()
			if prevote && isoTerm != termBefore {
				t.Fatalf("pre-vote: isolated node grew term %d → %d with no quorum", termBefore, isoTerm)
			}
			if !prevote && isoTerm <= termBefore {
				t.Fatalf("no pre-vote: isolated node should have grown its term, still %d", isoTerm)
			}

			c.heal(iso)
			c.run(60)

			final := c.leader()
			if final == nil {
				t.Fatal("no leader after rejoin")
			}
			if prevote {
				if final.Term() != termBefore {
					t.Fatalf("pre-vote: rejoin disrupted the cluster, term %d → %d", termBefore, final.Term())
				}
				if final != lead {
					t.Fatalf("pre-vote: rejoin deposed the healthy leader")
				}
			} else if final.Term() <= termBefore {
				t.Fatalf("no pre-vote: expected term disruption on rejoin, term still %d", final.Term())
			}
		})
	}
}

// TestCheckQuorumLeaderStepsDown: a leader cut off from every follower
// must abdicate within ElectionTickMax ticks when check-quorum is on —
// and linger as a stale leader forever when it is off (the failure mode
// check-quorum exists to fix: clients of the old leader would wait on a
// quorum that can never answer).
func TestCheckQuorumLeaderStepsDown(t *testing.T) {
	for _, cq := range []bool{true, false} {
		t.Run(fmt.Sprintf("checkquorum=%v", cq), func(t *testing.T) {
			c := newClusterCfg(t, wanCfg(false, cq, false), 1, 2, 3)
			lead := c.waitLeader(100)
			for _, id := range c.sortedFollowers(lead) {
				c.isolate(id)
			}
			// ElectionTickMax is 20 in the harness; give one extra round.
			c.run(25)
			if cq && lead.State() == Leader {
				t.Fatalf("check-quorum: leader still in charge %d ticks after losing every follower", 25)
			}
			if !cq && lead.State() != Leader {
				t.Fatalf("no check-quorum: leader unexpectedly stepped down to %v", lead.State())
			}
		})
	}
}

// TestReadIndexUnderConcurrentWrites drives the leader-lease ReadIndex
// through its full contract: monotone non-decreasing results that track
// the commit index while writes race in, ErrReadIndexNotReady before a
// current-term entry commits, ErrNoLease once a quorum has been silent
// for ElectionTickMin ticks, and plain errors on followers and on nodes
// without the flag.
func TestReadIndexUnderConcurrentWrites(t *testing.T) {
	c := newClusterCfg(t, wanCfg(true, true, true), 1, 2, 3)
	lead := c.waitLeader(100)
	c.flush()

	// The election no-op is committed: reads are ready immediately.
	last, err := lead.ReadIndex()
	if err != nil {
		t.Fatalf("ReadIndex after no-op commit: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := lead.Propose([]byte(fmt.Sprintf("w%d", i))); err != nil {
			t.Fatal(err)
		}
		c.flush()
		idx, err := lead.ReadIndex()
		if err != nil {
			t.Fatalf("write %d: ReadIndex: %v", i, err)
		}
		if idx < last {
			t.Fatalf("write %d: ReadIndex went backwards %d → %d", i, last, idx)
		}
		if commit := lead.CommitIndex(); idx != commit {
			t.Fatalf("write %d: ReadIndex %d != commit %d under quorum", i, idx, commit)
		}
		if app := lead.Applied(); app < idx {
			t.Fatalf("write %d: driver drained to %d, below read index %d", i, app, idx)
		}
		last = idx
	}

	// Followers refuse.
	follower := c.nodes[c.sortedFollowers(lead)[0]]
	if _, err := follower.ReadIndex(); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("follower ReadIndex = %v, want ErrNotLeader", err)
	}

	// Cut the leader off: once a quorum has been silent ElectionTickMin
	// ticks the lease is gone, well before check-quorum abdication.
	for _, id := range c.sortedFollowers(lead) {
		c.isolate(id)
	}
	c.run(12) // min=10 < 12 < max=20
	if lead.State() != Leader {
		t.Fatalf("leader abdicated before ElectionTickMax")
	}
	if _, err := lead.ReadIndex(); !errors.Is(err, ErrNoLease) {
		t.Fatalf("isolated leader ReadIndex = %v, want ErrNoLease", err)
	}
}

// TestReadIndexNotReadyBeforeNoopCommit reaches the window Raft §8 warns
// about: a freshly elected leader whose own-term no-op has not committed
// yet must refuse lease reads — its commit index could still be behind a
// newer leader's log.
func TestReadIndexNotReadyBeforeNoopCommit(t *testing.T) {
	c := newClusterCfg(t, wanCfg(false, false, true), 1, 2, 3)
	lead := c.waitLeader(100)
	c.flush()

	// Force a leadership change delivered by hand so the test can stop
	// the world between "won the election" and "no-op committed".
	next := c.nodes[c.sortedFollowers(lead)[0]]
	next.Campaign()
	requests := next.Ready().Messages
	for _, m := range requests {
		if err := c.nodes[m.To].Step(m); err != nil {
			t.Fatal(err)
		}
	}
	for id, n := range c.nodes {
		if n == next || c.down[id] {
			continue
		}
		for _, m := range n.Ready().Messages {
			if m.To != next.cfg.ID {
				continue
			}
			if err := next.Step(m); err != nil {
				t.Fatal(err)
			}
		}
	}
	if next.State() != Leader {
		t.Fatalf("hand-delivered election did not elect node %d", next.cfg.ID)
	}
	if _, err := next.ReadIndex(); !errors.Is(err, ErrReadIndexNotReady) {
		t.Fatalf("ReadIndex before no-op commit = %v, want ErrReadIndexNotReady", err)
	}

	// Let the no-op replicate: reads become available.
	c.flush()
	if _, err := next.ReadIndex(); err != nil {
		t.Fatalf("ReadIndex after no-op commit: %v", err)
	}
}

// TestReadIndexRequiresFlag: without Config.LeaderLease the API refuses
// outright rather than handing out unguarded reads.
func TestReadIndexRequiresFlag(t *testing.T) {
	c := newCluster(t, 1)
	lead := c.waitLeader(50)
	if _, err := lead.ReadIndex(); err == nil {
		t.Fatal("ReadIndex without LeaderLease flag succeeded")
	}
}
