package raft

import (
	"math/rand"
	"testing"
)

// TestConfChangeSnapshotRestart drives the full membership lifecycle the
// churn control plane relies on: add a node, compact the log so the
// membership lives only in the snapshot, restart a node from that
// persisted snapshot, then remove the added node — asserting membership
// agreement and election liveness at every step. This pins the
// interaction the individual ConfChange and snapshot tests each cover
// alone: a restarted node must recover the post-add membership from its
// snapshot (the log entries that carried the ConfChange are gone), and a
// later removal must still replicate to it.
func TestConfChangeSnapshotRestart(t *testing.T) {
	c := newCluster(t, 1, 2, 3)
	l := c.waitLeader(100)
	for i := 0; i < 4; i++ {
		if err := l.Propose([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c.run(10)

	// Add node 4: it knows the pre-add membership, not itself.
	n4, err := NewNode(Config{
		ID: 4, Peers: []uint64{1, 2, 3},
		ElectionTickMin: 10, ElectionTickMax: 20, HeartbeatTick: 2,
		Rng: rand.New(rand.NewSource(44)),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.nodes[4] = n4
	if err := l.ProposeConfChange(ConfChange{Add: true, NodeID: 4}); err != nil {
		t.Fatal(err)
	}
	c.run(20)
	for id, n := range c.nodes {
		if !n.IsMember(4) {
			t.Fatalf("node %d has not applied the add", id)
		}
	}

	// Compact a follower at its applied index: the ConfChange entry is
	// truncated away, so the 4-node membership now survives only inside
	// the snapshot.
	var fid uint64
	for id := range c.nodes {
		if id != c.leader().ID() && id != 4 {
			fid = id
			break
		}
	}
	f := c.nodes[fid]
	if err := f.Compact(f.CommitIndex(), []byte("post-add-state")); err != nil {
		t.Fatal(err)
	}
	ps := f.Persist()
	if ps.Snapshot == nil {
		t.Fatal("persisted state carries no snapshot")
	}
	snapHasFour := false
	for _, p := range ps.Snapshot.Peers {
		if p == 4 {
			snapHasFour = true
		}
	}
	if !snapHasFour {
		t.Fatalf("snapshot membership %v does not include the added node", ps.Snapshot.Peers)
	}

	// Restart that follower from its persisted snapshot + tail.
	restored, err := Restore(Config{
		ID: fid, ElectionTickMin: 10, ElectionTickMax: 20, HeartbeatTick: 2,
		Rng: rand.New(rand.NewSource(int64(fid) * 13)),
	}, ps)
	if err != nil {
		t.Fatal(err)
	}
	c.nodes[fid] = restored
	if !restored.IsMember(4) {
		t.Fatal("restarted node lost the snapshot membership")
	}
	if restored.SnapshotIndex() != f.SnapshotIndex() {
		t.Fatalf("restored snapshot index %d, want %d", restored.SnapshotIndex(), f.SnapshotIndex())
	}
	c.run(20)

	// Remove node 4 through the (possibly re-elected) leader; every
	// survivor, the restarted node included, must drop it.
	l = c.waitLeader(100)
	if err := l.ProposeConfChange(ConfChange{Add: false, NodeID: 4}); err != nil {
		t.Fatal(err)
	}
	c.run(20)
	for id, n := range c.nodes {
		if id != 4 && n.IsMember(4) {
			t.Fatalf("node %d still counts the removed node a member", id)
		}
	}
	if got := len(l.Members()); got != 3 {
		t.Fatalf("members = %d, want 3", got)
	}

	// Elections stay live on the reduced membership: silence the removed
	// node (it never learns of its own removal), kill the leader and
	// demand a successor that can still commit.
	c.down[4] = true
	c.down[l.ID()] = true
	nl := c.waitLeader(400)
	if nl.ID() == l.ID() || nl.ID() == 4 {
		t.Fatalf("new leader %d should be a surviving member", nl.ID())
	}
	if err := nl.Propose([]byte("post-removal")); err != nil {
		t.Fatal(err)
	}
	c.run(10)
	found := false
	for _, e := range c.committed[fid] {
		if string(e.Data) == "post-removal" {
			found = true
		}
	}
	if !found {
		t.Fatal("restarted node did not commit entries after the removal")
	}
}
